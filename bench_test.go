// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (one benchmark per experiment) and run the
// ablation studies DESIGN.md calls out. Each benchmark reports the
// figure's headline metric through b.ReportMetric so `go test -bench=.`
// output doubles as the experiment record.
package repro

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/arena"
	"repro/internal/benchrec"
	"repro/internal/cache"
	"repro/internal/core/hashtable"
	"repro/internal/core/heapmgr"
	"repro/internal/core/regexaccel"
	"repro/internal/core/straccel"
	"repro/internal/experiments"
	"repro/internal/hashmap"
	"repro/internal/heap"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Warmup: 30, Requests: 40}
}

func benchUarch() experiments.UarchOptions {
	return experiments.UarchOptions{Instructions: 800_000, Seed: 1}
}

// --- One benchmark per figure/table ---

func BenchmarkFigure1_LeafFunctionDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure1(benchOpts())
		for _, r := range rows {
			if r.App == "wordpress" {
				b.ReportMetric(100*r.HottestFrac, "hottest-%")
				b.ReportMetric(float64(r.FuncsFor65), "funcs@65%")
			}
		}
	}
}

func BenchmarkFigure2a_BTBSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure2a(benchUarch())
		last := rows[len(rows)-1]
		b.ReportMetric(100*last.BTBHitRate, "btb64K-hit-%")
	}
}

func BenchmarkFigure2b_CacheMPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure2b(benchUarch())
		b.ReportMetric(rows[0].L1IMPKI, "L1I-MPKI")
		b.ReportMetric(rows[0].L2MPKI, "L2-MPKI")
	}
}

func BenchmarkFigure2c_CoreWidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure2c(benchUarch())
		gain := (rows[2].NormTime - rows[3].NormTime) / rows[2].NormTime
		b.ReportMetric(100*gain, "8wide-gain-%")
	}
}

func BenchmarkBranchMPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableBranchMPKI(benchUarch())
		for _, r := range rows {
			if r.Workload == "wordpress" {
				b.ReportMetric(r.MPKI, "wp-MPKI")
			}
		}
	}
}

func BenchmarkFigure3_MitigationDiff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure3(benchOpts())
		var collapsed float64
		for _, r := range rows {
			if r.Category == sim.CatRefCount {
				collapsed += r.BeforePct - r.AfterPct
			}
		}
		b.ReportMetric(collapsed, "refcount-drop-pp")
	}
}

func BenchmarkFigure5_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure5(benchOpts())
		for _, r := range rows {
			if r.App == "wordpress" {
				four := r.Shares[sim.CatHash] + r.Shares[sim.CatHeap] +
					r.Shares[sim.CatString] + r.Shares[sim.CatRegex]
				b.ReportMetric(100*four, "wp-4cat-%")
			}
		}
	}
}

func BenchmarkFigure7_HashTableHitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure7(benchOpts())
		for _, r := range rows {
			if r.Entries == 256 {
				b.ReportMetric(100*r.GetHitRate, "hit256-%")
			}
		}
	}
}

func BenchmarkFigure8_MemoryUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure8a(benchOpts())
		b.ReportMetric(100*rows[0].Cumulative[7], "wp-<=128B-%")
	}
}

func BenchmarkFigure12_ContentSkipped(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure12(benchOpts())
		b.ReportMetric(100*rows[0].TotalFraction, "wp-skip-%")
	}
}

func BenchmarkFigure14_Headline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure14(benchOpts())
		var acc float64
		for _, r := range rows {
			acc += r.AcceleratedTime
		}
		b.ReportMetric(100*acc/float64(len(rows)), "accel-time-%")
	}
}

func BenchmarkFigure15_PerAccelerator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure15(benchOpts())
		avg := map[sim.AccelKind]float64{}
		for _, r := range rows {
			for k, v := range r.Benefit {
				avg[k] += 100 * v / float64(len(rows))
			}
		}
		b.ReportMetric(avg[sim.AccelHeapMgr], "heap-%")
		b.ReportMetric(avg[sim.AccelHashTable], "hash-%")
	}
}

// --- Ablations (§4 design-consideration studies from DESIGN.md) ---

// BenchmarkAblationProbeWindow sweeps the hash table's parallel probe
// window (§4.2: 4 consecutive entries accessed in parallel).
func BenchmarkAblationProbeWindow(b *testing.B) {
	for _, window := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("window-%d", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				feats := isa.AllAccelerators()
				feats.HTConfig.ProbeWindow = window
				rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations(), TraceCapacity: -1})
				app, _ := workload.ByName("wordpress", 1)
				workload.LoadGenerator{Warmup: 20, Requests: 30, ContextSwitchEvery: 64}.Run(rt, app)
				b.ReportMetric(100*rt.CPU().HT.Stats().HitRate(), "get-hit-%")
			}
		})
	}
}

// BenchmarkAblationKeyWidth sweeps the widest key stored inline (§4.2:
// 24 bytes captures ~95% of keys).
func BenchmarkAblationKeyWidth(b *testing.B) {
	for _, width := range []int{8, 16, 24, 48} {
		b.Run(fmt.Sprintf("keybytes-%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				feats := isa.AllAccelerators()
				feats.HTConfig.MaxKeyBytes = width
				rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations(), TraceCapacity: -1})
				app, _ := workload.ByName("wordpress", 1)
				workload.LoadGenerator{Warmup: 20, Requests: 30, ContextSwitchEvery: 64}.Run(rt, app)
				st := rt.CPU().HT.Stats()
				total := st.Gets + st.Sets + st.Bypasses
				b.ReportMetric(100*float64(st.Bypasses)/float64(total+1), "bypass-%")
			}
		})
	}
}

// BenchmarkAblationHeapListEntries sweeps the hardware free-list depth
// (§4.3: 32 entries give the prefetcher room to hide latency).
func BenchmarkAblationHeapListEntries(b *testing.B) {
	for _, entries := range []int{4, 8, 32, 128} {
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				feats := isa.AllAccelerators()
				feats.HMConfig.ListEntries = entries
				if feats.HMConfig.PrefetchLow > entries {
					feats.HMConfig.PrefetchLow = entries / 2
				}
				rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations(), TraceCapacity: -1})
				app, _ := workload.ByName("wordpress", 1)
				workload.LoadGenerator{Warmup: 20, Requests: 30, ContextSwitchEvery: 64}.Run(rt, app)
				b.ReportMetric(100*rt.CPU().HM.Stats().MallocHitRate(), "malloc-hit-%")
			}
		})
	}
}

// BenchmarkAblationStringBlockWidth sweeps the matching matrix width
// (§4.4: 64 bytes per pass versus prior single-byte designs).
func BenchmarkAblationStringBlockWidth(b *testing.B) {
	for _, width := range []int{1, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("block-%d", width), func(b *testing.B) {
			model := sim.DefaultCostModel()
			model.StrBlockBytes = width
			for i := 0; i < b.N; i++ {
				feats := isa.AllAccelerators()
				feats.SAConfig.BlockBytes = width
				rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations(), Model: model, TraceCapacity: -1})
				app, _ := workload.ByName("wordpress", 1)
				res := workload.LoadGenerator{Warmup: 20, Requests: 30, ContextSwitchEvery: 64}.Run(rt, app)
				b.ReportMetric(res.CyclesPerRequest(), "cycles/req")
			}
		})
	}
}

// BenchmarkAblationSegSize sweeps the content sifting segment granularity
// (§4.5).
func BenchmarkAblationSegSize(b *testing.B) {
	for _, seg := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("seg-%d", seg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				feats := isa.AllAccelerators()
				feats.RAConfig.SegSize = seg
				rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations(), TraceCapacity: -1})
				app, _ := workload.ByName("wordpress", 1)
				workload.LoadGenerator{Warmup: 20, Requests: 30, ContextSwitchEvery: 64}.Run(rt, app)
				st := rt.CPU().RA.Stats()
				b.ReportMetric(100*float64(st.BytesSkippedSift)/float64(st.BytesPresented+1), "sift-skip-%")
			}
		})
	}
}

// BenchmarkAblationSiftVsReuse isolates the two regexp techniques.
func BenchmarkAblationSiftVsReuse(b *testing.B) {
	run := func(b *testing.B, segSize, reuseEntries int) {
		for i := 0; i < b.N; i++ {
			feats := isa.AllAccelerators()
			feats.RAConfig.SegSize = segSize
			feats.RAConfig.ReuseEntries = reuseEntries
			rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations(), TraceCapacity: -1})
			app, _ := workload.ByName("wordpress", 1)
			res := workload.LoadGenerator{Warmup: 20, Requests: 30, ContextSwitchEvery: 64}.Run(rt, app)
			b.ReportMetric(res.CyclesPerRequest(), "cycles/req")
		}
	}
	b.Run("both", func(b *testing.B) { run(b, 32, 32) })
	b.Run("reuse-only-1seg", func(b *testing.B) { run(b, 1<<20, 32) }) // giant segments: sifting off
	b.Run("sift-only-1entry", func(b *testing.B) { run(b, 32, 1) })
}

// BenchmarkScriptedPHP runs the real PHP blog script through the
// interpreter on software vs accelerated runtimes.
func BenchmarkScriptedPHP(b *testing.B) {
	run := func(b *testing.B, feats isa.Features) {
		rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations(), TraceCapacity: -1})
		app := workload.NewBlogScript()
		for i := 0; i < 10; i++ {
			app.ServeRequest(rt)
		}
		rt.Meter().Reset()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			app.ServeRequest(rt)
		}
		b.ReportMetric(rt.Meter().TotalCycles()/float64(b.N), "simcycles/req")
	}
	b.Run("software", func(b *testing.B) { run(b, isa.Features{}) })
	b.Run("accelerated", func(b *testing.B) { run(b, isa.AllAccelerators()) })
}

// --- CI guard: sampled-tracing overhead ---

// spanOverheadRun serves one measured load through a pool whose
// collector samples span trees at the given rate, and returns the wall
// time of the run. Rate 0 exercises the identical code path (the
// per-request sampling decision still happens) with tracing never
// taken, which is the fair baseline for the overhead ratio.
func spanOverheadRun(rate float64) (time.Duration, error) {
	cfg := vm.Config{Features: isa.AllAccelerators(), Mitigations: sim.AllMitigations(), TraceCapacity: -1}
	pool, err := workload.NewPool(1, cfg, "wordpress", 1)
	if err != nil {
		return 0, err
	}
	col := obs.NewCollector(rate, nil, nil)
	col.SetTreeRing(obs.NewTreeRing(64))
	pool.SetCollector(col)
	lg := workload.LoadGenerator{Warmup: 40, Requests: 400, ContextSwitchEvery: 64}
	start := time.Now()
	pool.Run(lg, 0)
	return time.Since(start), nil
}

// TestSpanOverheadGuard asserts that sampling span trees at the default
// serving rate (1 request in 100) costs under 5% wall time versus the
// same run with sampling never taken. Wall-clock ratios are noisy on
// shared machines, so the guard is env-gated: `make ci` sets
// SPAN_OVERHEAD_GUARD=1, and a plain `go test ./...` skips it. Trials
// alternate between the two rates and the best of each side is compared,
// which cancels warmup and background-load drift.
func TestSpanOverheadGuard(t *testing.T) {
	if os.Getenv("SPAN_OVERHEAD_GUARD") != "1" {
		t.Skip("set SPAN_OVERHEAD_GUARD=1 to run the span-overhead guard (make ci does)")
	}
	const trials = 5
	var base, sampled time.Duration
	for i := 0; i < trials; i++ {
		b, err := spanOverheadRun(0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := spanOverheadRun(0.01)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || b < base {
			base = b
		}
		if i == 0 || s < sampled {
			sampled = s
		}
	}
	ratio := float64(sampled) / float64(base)
	t.Logf("span overhead: base %v, sampled@0.01 %v, ratio %.4f", base, sampled, ratio)
	if ratio > 1.05 {
		t.Errorf("sampled tracing at rate 0.01 costs %.1f%% (ratio %.4f), want <5%%",
			100*(ratio-1), ratio)
	}
}

// --- CI guard: request-scheduler overhead ---

// schedOverheadPool builds the warmed single-worker pool both sides of
// the scheduler guard serve from.
func schedOverheadPool() (*workload.Pool, error) {
	cfg := vm.Config{Features: isa.AllAccelerators(), Mitigations: sim.AllMitigations(), TraceCapacity: -1}
	pool, err := workload.NewPool(1, cfg, "wordpress", 1)
	if err != nil {
		return nil, err
	}
	pool.Run(workload.LoadGenerator{Warmup: 40, ContextSwitchEvery: 64}, 0)
	return pool, nil
}

// schedOverheadRun serves one measured load either directly through
// Pool.Run (sched=false) or through the serve.Scheduler lifecycle with
// a single closed-loop client (sched=true) — the same requests, worker
// and sampling, differing only in the admission layer under test.
func schedOverheadRun(sched bool) (time.Duration, error) {
	pool, err := schedOverheadPool()
	if err != nil {
		return 0, err
	}
	const requests = 400
	if !sched {
		start := time.Now()
		pool.Run(workload.LoadGenerator{Requests: requests, ContextSwitchEvery: 64}, 0)
		return time.Since(start), nil
	}
	s := serve.NewScheduler(pool, serve.Config{QueueDepth: 64})
	ls := serve.RunLoad(context.Background(), s, serve.LoadOptions{Requests: requests, Clients: 1, CtxSwitchEvery: 64})
	if ls.Served != requests {
		return 0, fmt.Errorf("scheduler run served %d/%d", ls.Served, requests)
	}
	return ls.Wall, nil
}

// TestSchedulerOverheadGuard asserts that routing requests through the
// lifecycle layer (admission slot, deadline bookkeeping, AcquireCtx,
// queue-wait histogram) costs under 5% wall time versus the direct pool
// loop. Env-gated like TestSpanOverheadGuard (`make ci` sets
// SCHED_OVERHEAD_GUARD=1) and measured the same way: alternating trials,
// best of each side.
func TestSchedulerOverheadGuard(t *testing.T) {
	if os.Getenv("SCHED_OVERHEAD_GUARD") != "1" {
		t.Skip("set SCHED_OVERHEAD_GUARD=1 to run the scheduler-overhead guard (make ci does)")
	}
	const trials = 5
	var direct, scheduled time.Duration
	for i := 0; i < trials; i++ {
		d, err := schedOverheadRun(false)
		if err != nil {
			t.Fatal(err)
		}
		s, err := schedOverheadRun(true)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || d < direct {
			direct = d
		}
		if i == 0 || s < scheduled {
			scheduled = s
		}
	}
	ratio := float64(scheduled) / float64(direct)
	t.Logf("scheduler overhead: direct %v, scheduled %v, ratio %.4f", direct, scheduled, ratio)
	if ratio > 1.05 {
		t.Errorf("request lifecycle layer costs %.1f%% (ratio %.4f), want <5%%",
			100*(ratio-1), ratio)
	}
}

// --- CI guard: response-cache miss-path overhead ---

// cacheOverheadRun serves one measured load through the scheduler,
// either plain (cached=false) or through DoCached with a sequential page
// key so every lookup misses (cached=true) — the worst case for the
// cache, where every request pays the shard lock, the singleflight
// bookkeeping, and the insert without ever being saved a render.
func cacheOverheadRun(cached bool) (time.Duration, error) {
	cfg := vm.Config{Features: isa.AllAccelerators(), Mitigations: sim.AllMitigations(), TraceCapacity: -1}
	pool, err := workload.NewPoolSharedSeed(1, cfg, "wordpress", 1)
	if err != nil {
		return 0, err
	}
	pool.Run(workload.LoadGenerator{Warmup: 40, ContextSwitchEvery: 64}, 0)
	const requests = 400
	s := serve.NewScheduler(pool, serve.Config{QueueDepth: 64})
	opts := serve.LoadOptions{Requests: requests, Clients: 1, CtxSwitchEvery: 64}
	if cached {
		var page int
		opts.Cache = cache.New(cache.Config{Capacity: requests * 2})
		opts.PageKey = func() int { page++; return page }
	}
	ls := serve.RunLoad(context.Background(), s, opts)
	if ls.Served != requests {
		return 0, fmt.Errorf("cache run served %d/%d", ls.Served, requests)
	}
	if cached && ls.CacheMisses != requests {
		return 0, fmt.Errorf("cache run hit %d times, want all %d requests to miss", ls.CacheHits+ls.CacheCoalesced, requests)
	}
	return ls.Wall, nil
}

// TestCacheOverheadGuard asserts that the response cache's miss path —
// every request paying the lookup and insert with no hit ever saving a
// render — costs under 5% wall time versus the same scheduler run with
// no cache. Env-gated like the other guards (`make ci` sets
// CACHE_OVERHEAD_GUARD=1): alternating trials, best of each side.
func TestCacheOverheadGuard(t *testing.T) {
	if os.Getenv("CACHE_OVERHEAD_GUARD") != "1" {
		t.Skip("set CACHE_OVERHEAD_GUARD=1 to run the cache-overhead guard (make ci does)")
	}
	const trials = 5
	var plain, missy time.Duration
	for i := 0; i < trials; i++ {
		p, err := cacheOverheadRun(false)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cacheOverheadRun(true)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || p < plain {
			plain = p
		}
		if i == 0 || m < missy {
			missy = m
		}
	}
	ratio := float64(missy) / float64(plain)
	t.Logf("cache overhead: plain %v, all-miss cached %v, ratio %.4f", plain, missy, ratio)
	if ratio > 1.05 {
		t.Errorf("response cache miss path costs %.1f%% (ratio %.4f), want <5%%",
			100*(ratio-1), ratio)
	}
}

// --- Raw accelerator micro-benchmarks ---

func BenchmarkAccelHashTableGet(b *testing.B) {
	ht := hashtable.New(hashtable.DefaultConfig())
	rt := vm.New(vm.Config{TraceCapacity: -1})
	m := rt.CPU().NewMap()
	ht.Set(m, hashmap.StrKey("key"), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Get(m, hashmap.StrKey("key"))
	}
}

func BenchmarkAccelHeapManager(b *testing.B) {
	hm := heapmgr.New(heapmgr.DefaultConfig(), heap.NewAllocator(nil, 0))
	for i := 0; i < b.N; i++ {
		blk, _ := hm.Malloc(64)
		hm.Free(blk)
	}
}

func BenchmarkAccelStringFind(b *testing.B) {
	sa := straccel.New(straccel.DefaultConfig())
	subject := make([]byte, 4096)
	for i := range subject {
		subject[i] = byte('a' + i%26)
	}
	b.SetBytes(int64(len(subject)))
	for i := 0; i < b.N; i++ {
		sa.Find(subject, []byte("needle"))
	}
}

func BenchmarkAccelRegexSift(b *testing.B) {
	ra := regexaccel.New(regexaccel.DefaultConfig())
	rt := vm.New(vm.Config{TraceCapacity: -1})
	re := rt.MustRegex("bench", `"`)
	sieve := rt.MustRegex("bench", `<`)
	content := make([]byte, 8192)
	for i := range content {
		content[i] = byte('a' + i%26)
	}
	content[4096] = '"'
	_, hv := ra.Sieve(sieve, content, nil)
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ra.Shadow(re, content, hv)
	}
}

// --- CI guard: benchmark trajectory gate ---

// TestBenchCheckGuard is the env-gated short mode of `make bench-check`
// (`make ci` sets BENCH_CHECK_GUARD=1): it proves the trajectory gate
// itself works without paying for a full-scale matrix. A quick-scale
// record must self-compare clean, a copy doctored past every tolerance
// must trip all three gates, and the canonical record must be
// reproducible — the properties that make a committed BENCH_<n>.json
// trustworthy as a regression baseline.
func TestBenchCheckGuard(t *testing.T) {
	if os.Getenv("BENCH_CHECK_GUARD") != "1" {
		t.Skip("set BENCH_CHECK_GUARD=1 to run the bench-trajectory gate check (make ci does)")
	}
	rec, err := benchrec.RunMatrix(benchrec.Options{Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	regs, err := benchrec.Compare(rec, rec, benchrec.DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-comparison reported regressions: %v", regs)
	}

	doctored := rec
	doctored.Scenarios = append([]benchrec.Scenario(nil), rec.Scenarios...)
	doctored.Scenarios[0].ReqPerSec *= 0.5
	doctored.Scenarios[1].P99US *= 2
	doctored.Scenarios[2].AllocsPerOp++
	// +0.2 allocs/op sits between the serve slack (0.1) and the direct
	// slack (0.5): it must trip on a scheduler-driven scenario, proving
	// the tighter gate is actually applied there.
	doctored.Scenarios[3].AllocsPerOp += 0.2
	regs, err = benchrec.Compare(rec, doctored, benchrec.DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 4 {
		t.Fatalf("injected 4 regressions, gate caught %d:\n%s", len(regs),
			benchrec.RenderTable(rec, doctored, regs))
	}

	again, err := benchrec.RunMatrix(benchrec.Options{Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := rec.Canonical().MarshalIndent()
	jb, _ := again.Canonical().MarshalIndent()
	if string(ja) != string(jb) {
		t.Error("canonical record not reproducible across runs")
	}
}

// --- CI guards: per-layer allocation budgets ---

// allocGuardVMConfig is the accelerated serving configuration the
// allocation guards measure under — the same shape benchrec records.
func allocGuardVMConfig() vm.Config {
	return vm.Config{Mitigations: sim.AllMitigations(), Features: isa.AllAccelerators(), TraceCapacity: 4096}
}

// TestArenaResetAllocGuard pins the arena reuse contract: once an arena
// has grown to a request's working-set size, Reset+carve cycles touch
// the Go heap zero times. Budget: 0 allocs per cycle. Env-gated with
// the other guards (`make ci` sets ALLOC_GUARD=1) — not because it is
// wall-clock noisy, but to keep the default test run's GC churn down.
func TestArenaResetAllocGuard(t *testing.T) {
	if os.Getenv("ALLOC_GUARD") != "1" {
		t.Skip("set ALLOC_GUARD=1 to run the allocation-budget guards (make ci does)")
	}
	a := arena.New(0, 0)
	for i := 0; i < 4; i++ { // warm to steady-state capacity
		a.Make(4096)
		a.Reset()
	}
	allocs := testing.AllocsPerRun(200, func() {
		a.Make(1024)
		a.Make(4096)
		buf := a.Buf(512)
		_ = append(buf, 'x')
		a.Reset()
	})
	t.Logf("arena reset cycle: %.2f allocs", allocs)
	if allocs > 0 {
		t.Errorf("warm arena reset cycle allocates %.2f times, want 0", allocs)
	}
}

// TestRenderBufferAllocGuard bounds a steady-state uncached render —
// the full page through the pooled output buffer, request arena, and
// recycled VM structures. Measured ~45 allocs/request on the
// accelerated WordPress page (down from ~1750 before the arena
// refactor); the budget of 120 leaves headroom for small drift while
// still catching any layer losing its reuse (each regression class —
// boxing, chain rebuild, map churn — costs hundreds per request).
func TestRenderBufferAllocGuard(t *testing.T) {
	if os.Getenv("ALLOC_GUARD") != "1" {
		t.Skip("set ALLOC_GUARD=1 to run the allocation-budget guards (make ci does)")
	}
	pool, err := workload.NewPool(1, allocGuardVMConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	pool.Run(workload.LoadGenerator{Warmup: 100}, 0)
	const requests = 200
	allocs := testing.AllocsPerRun(1, func() {
		pool.Run(workload.LoadGenerator{Requests: requests}, 0)
	}) / requests
	t.Logf("steady-state render: %.2f allocs/request", allocs)
	if allocs > 120 {
		t.Errorf("steady-state render allocates %.2f times/request, budget 120", allocs)
	}
}

// TestCachedHitAllocGuard bounds the cached-hit serve path: admission,
// cache lookup, and the read-only entry return, never touching a
// worker. Measured 4 allocs/hit — the per-request context.WithTimeout
// machinery — so the budget of 10 catches any reintroduced per-hit
// copying or key/stat churn.
func TestCachedHitAllocGuard(t *testing.T) {
	if os.Getenv("ALLOC_GUARD") != "1" {
		t.Skip("set ALLOC_GUARD=1 to run the allocation-budget guards (make ci does)")
	}
	pool, err := workload.NewPoolSharedSeed(1, allocGuardVMConfig(), "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	pool.Run(workload.LoadGenerator{Warmup: 50}, 0)
	s := serve.NewScheduler(pool, serve.Config{QueueDepth: 8, Timeout: 30 * time.Second})
	defer s.Drain(context.Background())
	c := cache.New(cache.Config{Capacity: 16})
	render := func(w *workload.Worker) ([]byte, error) {
		body, _, err := w.ServePageSpanCtx(context.Background(), 7, false)
		return body, err
	}
	if _, out, _, err := s.DoCached(context.Background(), c, "page:7", render); err != nil || out != cache.Miss {
		t.Fatalf("prime render: outcome %v err %v", out, err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, out, _, err := s.DoCached(context.Background(), c, "page:7", render); err != nil || out != cache.Hit {
			t.Fatalf("expected hit: outcome %v err %v", out, err)
		}
	})
	t.Logf("cached hit: %.2f allocs", allocs)
	if allocs > 10 {
		t.Errorf("cached hit allocates %.2f times, budget 10", allocs)
	}
}
