package repro

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/php"
	"repro/internal/serve"
	"repro/internal/vm"
	"repro/internal/workload"

	"context"
)

// TestTierDeterminismGuard is the env-gated end-to-end check that tier
// promotion is a pure function of the request stream (`make ci` sets
// TIER_DETERMINISM_GUARD=1): the same seeded Zipf load driven twice
// through a tiered scripted pool must produce the identical promoted
// set and identical tier counters. Promotion windows advance on request
// counts, not wall clock, and the single closed-loop client rotates
// workers FIFO, so any divergence means nondeterminism leaked into the
// tier policy — the property the benchmark trajectory's scripted
// scenarios and the committed BENCH_<n>.json records rely on.
func TestTierDeterminismGuard(t *testing.T) {
	if os.Getenv("TIER_DETERMINISM_GUARD") != "1" {
		t.Skip("set TIER_DETERMINISM_GUARD=1 to run the tier-determinism guard (make ci does)")
	}
	run := func() php.TierSnapshot {
		pool, err := workload.NewPoolSharedSeed(2, vm.Config{TraceCapacity: 1024}, "phpscript-blog", 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pool.ConfigureScriptTier(php.TierAuto, php.DefaultTierPolicy()); err != nil {
			t.Fatal(err)
		}
		pool.Run(workload.LoadGenerator{Warmup: 40}, 0)
		s := serve.NewScheduler(pool, serve.Config{QueueDepth: 64})
		keys, err := workload.NewZipfKeys(1, 1.0, 512)
		if err != nil {
			t.Fatal(err)
		}
		serve.RunLoad(context.Background(), s, serve.LoadOptions{
			Requests: 120,
			Clients:  1,
			PageKey:  keys.Next,
		})
		return pool.TierSnapshot()
	}

	a, b := run(), run()
	if a.Promotions == 0 || a.BytecodeCalls == 0 {
		t.Fatalf("guard load never promoted — it is not exercising the tier: %+v", a)
	}
	if !reflect.DeepEqual(a.PromotedSet(), b.PromotedSet()) {
		t.Errorf("promoted sets diverge across identical seeded runs:\n a %v\n b %v",
			a.PromotedSet(), b.PromotedSet())
	}
	if a.Requests != b.Requests || a.Promotions != b.Promotions || a.Demotions != b.Demotions ||
		a.BytecodeCalls != b.BytecodeCalls || a.InterpCalls != b.InterpCalls ||
		a.ICHits != b.ICHits || a.ICMisses != b.ICMisses ||
		a.TypeStableHits != b.TypeStableHits || a.TypeMisses != b.TypeMisses {
		t.Errorf("tier counters diverge across identical seeded runs:\n a %+v\n b %+v", a, b)
	}
}
