package hashmap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

type walkRec struct {
	op       Op
	probes   int
	keyBytes int
	inserted bool
}

type recObs struct {
	walks    []walkRec
	resizes  []int
	rebuilds int
}

func (r *recObs) OnWalk(op Op, probes, keyBytes int, inserted bool) {
	r.walks = append(r.walks, walkRec{op, probes, keyBytes, inserted})
}
func (r *recObs) OnResize(n int) { r.resizes = append(r.resizes, n) }
func (r *recObs) OnRebuild()     { r.rebuilds++ }

func TestGetSetBasic(t *testing.T) {
	m := New(nil)
	if _, ok := m.Get(StrKey("missing")); ok {
		t.Fatalf("empty map returned a value")
	}
	m.Set(StrKey("a"), 1)
	m.Set(IntKey(7), "seven")
	if v, ok := m.Get(StrKey("a")); !ok || v != 1 {
		t.Errorf("Get(a) = %v %v", v, ok)
	}
	if v, ok := m.Get(IntKey(7)); !ok || v != "seven" {
		t.Errorf("Get(7) = %v %v", v, ok)
	}
	if m.Size() != 2 {
		t.Errorf("Size = %d, want 2", m.Size())
	}
	m.Set(StrKey("a"), 2)
	if v, _ := m.Get(StrKey("a")); v != 2 {
		t.Errorf("update failed: %v", v)
	}
	if m.Size() != 2 {
		t.Errorf("update must not change size")
	}
}

func TestIntAndStrKeysDistinct(t *testing.T) {
	m := New(nil)
	m.Set(IntKey(1), "int")
	m.Set(StrKey("1"), "str")
	if v, _ := m.Get(IntKey(1)); v != "int" {
		t.Errorf("int key clobbered: %v", v)
	}
	if v, _ := m.Get(StrKey("1")); v != "str" {
		t.Errorf("str key clobbered: %v", v)
	}
}

func TestDelete(t *testing.T) {
	m := New(nil)
	m.Set(StrKey("x"), 1)
	if !m.Delete(StrKey("x")) {
		t.Fatalf("Delete of present key returned false")
	}
	if m.Delete(StrKey("x")) {
		t.Fatalf("double Delete returned true")
	}
	if _, ok := m.Get(StrKey("x")); ok {
		t.Errorf("deleted key still present")
	}
	if m.Size() != 0 {
		t.Errorf("Size after delete = %d", m.Size())
	}
}

func TestReinsertAfterDeleteUsesTombstone(t *testing.T) {
	m := New(nil)
	m.Set(StrKey("x"), 1)
	m.Delete(StrKey("x"))
	m.Set(StrKey("x"), 2)
	if v, ok := m.Get(StrKey("x")); !ok || v != 2 {
		t.Errorf("reinsert failed: %v %v", v, ok)
	}
	if m.Size() != 1 {
		t.Errorf("Size = %d, want 1", m.Size())
	}
}

func TestInsertionOrderIteration(t *testing.T) {
	m := New(nil)
	keys := []string{"delta", "alpha", "zulu", "bravo", "kilo"}
	for i, k := range keys {
		m.Set(StrKey(k), i)
	}
	m.Delete(StrKey("zulu"))
	m.Set(StrKey("zulu"), 99) // deleted and re-added: moves to the end
	var got []string
	m.Foreach(func(k Key, _ interface{}) bool {
		got = append(got, k.Str)
		return true
	})
	want := []string{"delta", "alpha", "bravo", "kilo", "zulu"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("iteration order = %v, want %v", got, want)
	}
}

func TestForeachEarlyStop(t *testing.T) {
	m := New(nil)
	for i := 0; i < 10; i++ {
		m.Append(i)
	}
	n := 0
	m.Foreach(func(Key, interface{}) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d entries, want 3", n)
	}
}

func TestAppendAutoKeys(t *testing.T) {
	m := New(nil)
	k0 := m.Append("a")
	k1 := m.Append("b")
	if !k0.IsInt || k0.Int != 0 || k1.Int != 1 {
		t.Errorf("auto keys wrong: %v %v", k0, k1)
	}
	m.Set(IntKey(10), "c")
	if k := m.Append("d"); k.Int != 11 {
		t.Errorf("append after explicit int key = %v, want 11", k)
	}
}

func TestGrowthPreservesContents(t *testing.T) {
	obs := &recObs{}
	m := New(obs)
	const n = 1000
	for i := 0; i < n; i++ {
		m.Set(StrKey(fmt.Sprintf("key-%04d", i)), i)
	}
	if len(obs.resizes) == 0 {
		t.Fatalf("expected at least one resize for %d inserts", n)
	}
	for i := 0; i < n; i++ {
		if v, ok := m.Get(StrKey(fmt.Sprintf("key-%04d", i))); !ok || v != i {
			t.Fatalf("lost key %d after growth: %v %v", i, v, ok)
		}
	}
	if m.Size() != n {
		t.Errorf("Size = %d, want %d", m.Size(), n)
	}
}

func TestObserverWalkEvents(t *testing.T) {
	obs := &recObs{}
	m := New(obs)
	m.Set(StrKey("abc"), 1)
	m.Get(StrKey("abc"))
	m.Get(StrKey("nope"))
	m.Delete(StrKey("abc"))

	if len(obs.walks) != 4 {
		t.Fatalf("got %d walk events, want 4", len(obs.walks))
	}
	if obs.walks[0].op != OpSet || !obs.walks[0].inserted {
		t.Errorf("first walk should be an inserting Set: %+v", obs.walks[0])
	}
	if obs.walks[1].op != OpGet || obs.walks[1].keyBytes < 3 {
		t.Errorf("hit Get should compare the key bytes: %+v", obs.walks[1])
	}
	for _, w := range obs.walks {
		if w.probes < 1 {
			t.Errorf("every walk probes at least one slot: %+v", w)
		}
	}
}

func TestStaleRebuild(t *testing.T) {
	m := New(nil)
	m.Set(StrKey("a"), 1)
	m.Set(StrKey("b"), 2)
	m.MarkStale()
	if !m.Stale() {
		t.Fatalf("MarkStale did not mark")
	}
	if v, ok := m.Get(StrKey("a")); !ok || v != 1 {
		t.Errorf("Get after stale rebuild = %v %v", v, ok)
	}
	if m.Stale() {
		t.Errorf("access should clear stale flag")
	}
	if m.Rebuilds() != 1 {
		t.Errorf("Rebuilds = %d, want 1", m.Rebuilds())
	}
}

func TestSetRawWriteback(t *testing.T) {
	m := New(nil)
	m.Set(StrKey("a"), 1)
	if !m.SetRaw(StrKey("a"), 5) {
		t.Errorf("SetRaw on present key should return true")
	}
	if v, _ := m.Get(StrKey("a")); v != 5 {
		t.Errorf("SetRaw did not update: %v", v)
	}
	if m.SetRaw(StrKey("new"), 7) {
		t.Errorf("SetRaw on absent key should return false")
	}
	if v, ok := m.Get(StrKey("new")); !ok || v != 7 {
		t.Errorf("SetRaw insert failed: %v %v", v, ok)
	}
	// Writeback insertion must land at the end of iteration order.
	keys := m.Keys()
	if keys[len(keys)-1].Str != "new" {
		t.Errorf("writeback insert not at end: %v", keys)
	}
}

func TestUniqueIDs(t *testing.T) {
	a, b := New(nil), New(nil)
	if a.ID() == b.ID() || a.ID() == 0 {
		t.Errorf("map IDs must be unique and nonzero: %d %d", a.ID(), b.ID())
	}
}

func TestRefCounting(t *testing.T) {
	m := New(nil)
	if m.RefCount() != 1 {
		t.Fatalf("fresh map refcount = %d", m.RefCount())
	}
	if m.AddRef() != 2 || m.DecRef() != 1 || m.DecRef() != 0 {
		t.Errorf("refcount sequence wrong")
	}
}

func TestKeyHashStability(t *testing.T) {
	if StrKey("wp_options").Hash() != StrKey("wp_options").Hash() {
		t.Errorf("string key hash not deterministic")
	}
	if IntKey(42).Hash() != IntKey(42).Hash() {
		t.Errorf("int key hash not deterministic")
	}
	if IntKey(42).Hash() == IntKey(43).Hash() {
		t.Errorf("adjacent int keys should not collide in 64 bits")
	}
}

func TestKeyLenAndString(t *testing.T) {
	if IntKey(5).Len() != 8 {
		t.Errorf("int key Len = %d", IntKey(5).Len())
	}
	if StrKey("abcde").Len() != 5 {
		t.Errorf("str key Len wrong")
	}
	if IntKey(5).String() != "#5" || StrKey("x").String() != "x" {
		t.Errorf("key String() wrong")
	}
}

// TestModelEquivalence drives random operation sequences against both the
// Map and a Go map + order slice model, checking full equivalence.
func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(nil)
		model := map[string]int{}
		var order []string // insertion order of live keys

		removeOrder := func(k string) {
			for i, s := range order {
				if s == k {
					order = append(order[:i], order[i+1:]...)
					return
				}
			}
		}

		for step := 0; step < 300; step++ {
			k := fmt.Sprintf("k%d", rng.Intn(40))
			switch rng.Intn(4) {
			case 0, 1: // set
				v := rng.Intn(1000)
				if _, ok := model[k]; !ok {
					order = append(order, k)
				}
				model[k] = v
				m.Set(StrKey(k), v)
			case 2: // get
				v, ok := m.Get(StrKey(k))
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 3: // delete
				ok := m.Delete(StrKey(k))
				_, mok := model[k]
				if ok != mok {
					return false
				}
				if mok {
					delete(model, k)
					removeOrder(k)
				}
			}
			if rng.Intn(20) == 0 {
				m.MarkStale() // exercise the coherence rebuild path
			}
		}
		if m.Size() != len(model) {
			return false
		}
		var got []string
		m.Foreach(func(k Key, v interface{}) bool {
			got = append(got, k.Str)
			if model[k.Str] != v {
				got = append(got, "VALUE-MISMATCH")
			}
			return true
		})
		return fmt.Sprint(got) == fmt.Sprint(order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestForeachSurvivesStaleRebuild is the regression test for the
// mid-iteration compaction panic: with tombstones in the entry table, a
// callback that marks the index stale and touches the map forces
// rebuildIndex to compact m.entries under the running iteration, which
// used to index past the shortened slice.
func TestForeachSurvivesStaleRebuild(t *testing.T) {
	m := New(nil)
	for i := 0; i < 20; i++ {
		m.Set(StrKey(fmt.Sprintf("k%02d", i)), i)
	}
	for i := 0; i < 10; i++ {
		m.Delete(StrKey(fmt.Sprintf("k%02d", i)))
	}
	visited := map[string]int{}
	m.Foreach(func(k Key, v interface{}) bool {
		// The coherence-rebuild path: the hardware flushes, the next
		// software access compacts the tombstoned entries.
		m.MarkStale()
		m.Get(k)
		visited[k.Str]++
		return true
	})
	if len(visited) != 10 {
		t.Fatalf("visited %d live keys, want 10", len(visited))
	}
	for k, n := range visited {
		if n != 1 {
			t.Errorf("key %s visited %d times, want exactly once", k, n)
		}
	}
}

// TestForeachSurvivesCallbackSet covers grows triggered by callback Sets:
// inserting new keys during iteration relocates the entry table.
func TestForeachSurvivesCallbackSet(t *testing.T) {
	m := New(nil)
	for i := 0; i < 8; i++ {
		m.Set(IntKey(int64(i)), i)
	}
	var got []Key
	i := 0
	m.Foreach(func(k Key, v interface{}) bool {
		// Enough inserts to force at least one index doubling mid-flight.
		for j := 0; j < 16; j++ {
			m.Set(StrKey(fmt.Sprintf("new-%d-%d", i, j)), j)
		}
		i++
		got = append(got, k)
		return true
	})
	if len(got) != 8 {
		t.Fatalf("visited %d keys, want the 8 pre-iteration keys", len(got))
	}
	for i, k := range got {
		if !k.IsInt || k.Int != int64(i) {
			t.Errorf("visit %d = %v, want #%d", i, k, i)
		}
	}
	if m.Size() != 8+8*16 {
		t.Errorf("Size = %d after callback inserts", m.Size())
	}
}

// TestForeachSurvivesCallbackDelete covers deletes during iteration: every
// key live at the start is still visited exactly once (copy semantics).
func TestForeachSurvivesCallbackDelete(t *testing.T) {
	m := New(nil)
	for i := 0; i < 12; i++ {
		m.Set(IntKey(int64(i)), i)
	}
	var got []int64
	m.Foreach(func(k Key, v interface{}) bool {
		m.Delete(IntKey((k.Int + 1) % 12)) // delete the next key
		got = append(got, k.Int)
		return true
	})
	if len(got) != 12 {
		t.Fatalf("visited %d keys, want 12: %v", len(got), got)
	}
}

// TestDeleteHeavyKeepsIndexBounded is the regression test for needGrow
// counting tombstones: repeated insert+delete cycles must not double the
// index when the live population stays tiny.
func TestDeleteHeavyKeepsIndexBounded(t *testing.T) {
	m := New(nil)
	for i := 0; i < 10000; i++ {
		k := StrKey(fmt.Sprintf("churn-%d", i))
		m.Set(k, i)
		m.Delete(k)
	}
	if m.Size() != 0 {
		t.Fatalf("Size = %d after balanced churn", m.Size())
	}
	if n := len(m.index); n > 64 {
		t.Errorf("index grew to %d slots under churn with ~0 live entries", n)
	}
	// The map must still work after all that compaction.
	m.Set(StrKey("alive"), 1)
	if v, ok := m.Get(StrKey("alive")); !ok || v != 1 {
		t.Errorf("map broken after churn: %v %v", v, ok)
	}
}

func BenchmarkMapGet(b *testing.B) {
	m := New(nil)
	for i := 0; i < 1024; i++ {
		m.Set(StrKey(fmt.Sprintf("key-%d", i)), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(StrKey("key-512"))
	}
}

func BenchmarkMapSet(b *testing.B) {
	m := New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Set(IntKey(int64(i&1023)), i)
	}
}
