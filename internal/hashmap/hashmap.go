// Package hashmap implements the software PHP array: an insertion-ordered
// hash table modeled on HHVM's MixedArray. It is the "software equivalent
// laid out in the conventional address space" that the paper's hardware
// hash table stays coherent with (§4.2): each key/value pair lives in a
// table ordered by insertion, plus a hash index for fast lookup, and a
// stale flag that the hardware sets when the hash index must be rebuilt
// after a flush.
//
// Every operation reports its probe count and compared key bytes to an
// optional Observer so the simulation can charge the software walk cost
// (paper average: 90.66 micro-ops per walk).
package hashmap

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Key is a PHP array key: either an integer or a string.
type Key struct {
	IsInt bool
	Int   int64
	Str   string
}

// IntKey builds an integer key.
func IntKey(i int64) Key { return Key{IsInt: true, Int: i} }

// StrKey builds a string key.
func StrKey(s string) Key { return Key{Str: s} }

// Len returns the key's length in bytes (8 for integer keys), the measure
// the paper uses for its "95% of keys are at most 24 bytes" statistic.
func (k Key) Len() int {
	if k.IsInt {
		return 8
	}
	return len(k.Str)
}

// String renders the key for debugging.
func (k Key) String() string {
	if k.IsInt {
		return fmt.Sprintf("#%d", k.Int)
	}
	return k.Str
}

// Hash returns the key's hash. String keys use FNV-1a; integer keys use a
// 64-bit mix. This mirrors the paper's observation that a simplified hash
// function suffices without compromising hit rate (§4.2).
func (k Key) Hash() uint64 {
	if k.IsInt {
		x := uint64(k.Int)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		x *= 0xc4ceb9fe1a85ec53
		x ^= x >> 33
		return x
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(k.Str); i++ {
		h ^= uint64(k.Str[i])
		h *= prime64
	}
	return h
}

// Op identifies a map operation for observer callbacks.
type Op uint8

const (
	OpGet Op = iota
	OpSet
	OpDelete
	OpIterate
	OpResize
)

// Observer receives cost events from map operations. Implementations must
// be cheap; they run on every access.
type Observer interface {
	// OnWalk is called after a hash walk: op performed, hash table entries
	// probed, key bytes compared, and whether the op inserted a new entry.
	OnWalk(op Op, probes int, keyBytes int, inserted bool)
	// OnResize is called when the table grows to newSlots slots.
	OnResize(newSlots int)
	// OnRebuild is called when a stale hash index (hardware writeback
	// without index maintenance, §4.2 coherence protocol) is rebuilt by a
	// software access. Rare in practice; counted for observability.
	OnRebuild()
}

const (
	emptySlot     = -1
	tombstoneSlot = -2
	minLgSize     = 3 // 8 slots
)

type entry struct {
	key  Key
	val  interface{}
	dead bool
	seq  uint64 // insertion sequence number (ordered-table position)
}

var nextMapID uint64

// Map is an insertion-ordered PHP array. The zero value is not usable;
// call New.
type Map struct {
	id      uint64
	entries []entry // insertion order; dead entries are tombstones
	index   []int32 // open-addressed hash index into entries
	mask    uint64
	size    int // live entries
	refs    int32
	stale   bool // hardware flushed: hash index must be rebuilt before use
	obs     Observer
	rebuilt int64 // number of stale-index rebuilds (coherence events)

	nextIntKey int64  // PHP's next automatic integer key
	nextSeq    uint64 // next insertion sequence number
	unordered  bool   // a writeback landed out of sequence order
}

// New creates an empty map. obs may be nil. The map ID comes from a
// process-wide counter; callers that need IDs deterministic under
// concurrency (one simulated core per goroutine) should use NewWithID
// with their own per-core counter.
func New(obs Observer) *Map {
	return NewWithID(atomic.AddUint64(&nextMapID, 1), obs)
}

// NewWithID creates an empty map with a caller-chosen identity. The ID
// stands in for the map structure's base address (§4.2), so it only needs
// to be unique among maps that share a hardware hash table — one
// simulated core's maps — letting each core number its maps locally and
// deterministically regardless of goroutine interleaving.
func NewWithID(id uint64, obs Observer) *Map {
	return &Map{
		id:    id,
		index: newIndex(1 << minLgSize),
		mask:  1<<minLgSize - 1,
		refs:  1,
		obs:   obs,
	}
}

func newIndex(n int) []int32 {
	ix := make([]int32, n)
	for i := range ix {
		ix[i] = emptySlot
	}
	return ix
}

// ID returns the map's unique identity, standing in for the base address
// of the hash map structure in memory that the hardware hash table hashes
// together with the key (§4.2).
func (m *Map) ID() uint64 { return m.id }

// Reset returns the map to its freshly-constructed state under a new
// identity, reusing the entry and index backing arrays. The result is
// observationally identical to NewWithID(id, obs) — the index shrinks
// back to the minimum size so probe and growth behavior replays exactly —
// which is what lets a runtime recycle request-scoped array structures
// without perturbing the simulated hash-table behavior. The caller must
// guarantee no accelerator state still references the old identity
// (i.e. the map was freed through the hardware hash table first).
func (m *Map) Reset(id uint64) {
	m.id = id
	// Clear interface values so recycled maps don't pin old values live.
	for i := range m.entries {
		m.entries[i] = entry{}
	}
	m.entries = m.entries[:0]
	if len(m.index) != 1<<minLgSize {
		m.index = m.index[:0]
		if cap(m.index) >= 1<<minLgSize {
			m.index = m.index[:1<<minLgSize]
		} else {
			m.index = make([]int32, 1<<minLgSize)
		}
	}
	for i := range m.index {
		m.index[i] = emptySlot
	}
	m.mask = 1<<minLgSize - 1
	m.size = 0
	m.refs = 1
	m.stale = false
	m.rebuilt = 0
	m.nextIntKey = 0
	m.nextSeq = 0
	m.unordered = false
}

// Size returns the number of live key/value pairs.
func (m *Map) Size() int { return m.size }

// AddRef increments the reference count (phpval.Arr).
func (m *Map) AddRef() int32 { m.refs++; return m.refs }

// DecRef decrements the reference count (phpval.Arr).
func (m *Map) DecRef() int32 { m.refs--; return m.refs }

// RefCount returns the current reference count.
func (m *Map) RefCount() int32 { return m.refs }

// MarkStale is called by the hardware hash table when it writes entries
// back to the ordered table without maintaining the hash index; the next
// software access rebuilds the index first (§4.2 coherence protocol).
func (m *Map) MarkStale() { m.stale = true }

// Stale reports whether the hash index is pending a rebuild.
func (m *Map) Stale() bool { return m.stale }

// Rebuilds returns how many stale-index rebuilds have occurred. The paper
// notes these are exceedingly rare in practice (triggered only by process
// migration); the counter lets tests and experiments confirm that.
func (m *Map) Rebuilds() int64 { return m.rebuilt }

func (m *Map) ensureFresh() {
	if !m.stale {
		return
	}
	m.stale = false
	m.rebuilt++
	if m.obs != nil {
		m.obs.OnRebuild()
	}
	m.rebuildIndex(len(m.index))
}

// rebuildIndex reconstructs the hash index over live entries with n slots
// and compacts tombstones out of the entry table.
func (m *Map) rebuildIndex(n int) {
	live := m.entries[:0]
	for _, e := range m.entries {
		if !e.dead {
			live = append(live, e)
		}
	}
	m.entries = live
	m.index = newIndex(n)
	m.mask = uint64(n - 1)
	for i := range m.entries {
		slot := m.entries[i].key.Hash() & m.mask
		for m.index[slot] != emptySlot {
			slot = (slot + 1) & m.mask
		}
		m.index[slot] = int32(i)
	}
	if m.obs != nil {
		m.obs.OnResize(n)
	}
}

// findSlot locates the key. It returns the index slot, the entry position
// (or -1), and the number of probes performed plus key bytes compared.
func (m *Map) findSlot(k Key) (slot uint64, pos int32, probes, keyBytes int) {
	h := k.Hash()
	slot = h & m.mask
	firstTomb := uint64(1<<63 - 1)
	for {
		probes++
		p := m.index[slot]
		switch p {
		case emptySlot:
			if firstTomb != 1<<63-1 {
				slot = firstTomb
			}
			return slot, -1, probes, keyBytes
		case tombstoneSlot:
			if firstTomb == 1<<63-1 {
				firstTomb = slot
			}
		default:
			e := &m.entries[p]
			if e.key.IsInt == k.IsInt {
				if k.IsInt {
					keyBytes += 8
					if e.key.Int == k.Int {
						return slot, p, probes, keyBytes
					}
				} else {
					keyBytes += min(len(k.Str), len(e.key.Str))
					if e.key.Str == k.Str {
						return slot, p, probes, keyBytes
					}
				}
			}
		}
		slot = (slot + 1) & m.mask
	}
}

// Get looks up a key, returning its value and whether it was present.
func (m *Map) Get(k Key) (interface{}, bool) {
	m.ensureFresh()
	_, pos, probes, kb := m.findSlot(k)
	if m.obs != nil {
		m.obs.OnWalk(OpGet, probes, kb, false)
	}
	if pos < 0 {
		return nil, false
	}
	return m.entries[pos].val, true
}

// Set inserts or updates a key. New keys append to the insertion order.
func (m *Map) Set(k Key, v interface{}) {
	m.ensureFresh()
	slot, pos, probes, kb := m.findSlot(k)
	inserted := pos < 0
	if inserted {
		m.entries = append(m.entries, entry{key: k, val: v, seq: m.nextSeq})
		m.nextSeq++
		m.index[slot] = int32(len(m.entries) - 1)
		m.size++
		if k.IsInt && k.Int >= m.nextIntKey {
			m.nextIntKey = k.Int + 1
		}
		if m.needGrow() {
			m.grow()
		}
	} else {
		m.entries[pos].val = v
	}
	if m.obs != nil {
		m.obs.OnWalk(OpSet, probes, kb, inserted)
	}
}

// NextIntKey returns the key Append would use (PHP's next auto-index).
func (m *Map) NextIntKey() int64 { return m.nextIntKey }

// Append inserts v under the next automatic integer key, PHP's `$a[] = v`.
func (m *Map) Append(v interface{}) Key {
	k := IntKey(m.nextIntKey)
	m.Set(k, v)
	return k
}

// Delete removes a key, reporting whether it was present.
func (m *Map) Delete(k Key) bool {
	m.ensureFresh()
	slot, pos, probes, kb := m.findSlot(k)
	if m.obs != nil {
		m.obs.OnWalk(OpDelete, probes, kb, false)
	}
	if pos < 0 {
		return false
	}
	m.entries[pos].dead = true
	m.index[slot] = tombstoneSlot
	m.size--
	return true
}

// needGrow reports whether the load factor (including tombstones recorded
// in the entry table) exceeds 3/4.
func (m *Map) needGrow() bool {
	return len(m.entries) >= len(m.index)*3/4
}

// grow resizes the index after a grow trigger. Because needGrow counts
// tombstones, a delete-heavy workload can trip it while the live load is
// low; in that case compaction alone restores the load factor, so the
// index is rebuilt at the same size instead of doubling (keeping the
// index bounded by the live population, not the churn history).
func (m *Map) grow() {
	n := len(m.index)
	if m.size > n/2 {
		n *= 2
	}
	m.rebuildIndex(n)
}

// Foreach iterates live pairs in insertion order, the invariant PHP's
// foreach guarantees and the RTT preserves in hardware (§4.2). The
// callback returns false to stop early.
//
// The callback may mutate the map: a Set that grows the index, a Delete,
// or a stale-flag rebuild (MarkStale + access) all compact or relocate
// m.entries mid-iteration, so iteration runs over a snapshot of the live
// entries taken at call time — PHP's foreach-over-a-copy semantics. Keys
// live at the start of the iteration are each visited exactly once;
// entries inserted by the callback are not visited.
func (m *Map) Foreach(f func(k Key, v interface{}) bool) {
	m.ensureFresh()
	m.ensureOrdered()
	snap := make([]entry, 0, m.size)
	for i := range m.entries {
		if !m.entries[i].dead {
			snap = append(snap, m.entries[i])
		}
	}
	n := 0
	for i := range snap {
		n++
		if !f(snap[i].key, snap[i].val) {
			break
		}
	}
	if m.obs != nil {
		m.obs.OnWalk(OpIterate, n, 0, false)
	}
}

// Keys returns the live keys in insertion order.
func (m *Map) Keys() []Key {
	out := make([]Key, 0, m.size)
	m.Foreach(func(k Key, _ interface{}) bool {
		out = append(out, k)
		return true
	})
	return out
}

// SetRaw updates or appends a key without charging an observed walk; it
// is the writeback entry point for callers that do not track sequence
// numbers. It returns true if the key was already present.
func (m *Map) SetRaw(k Key, v interface{}) bool {
	return m.WritebackSeq(k, v, m.ReserveSeq())
}

// BumpIntKey advances the auto-index watermark to cover int key i. The
// hardware hash table calls this when it accepts an int-keyed SET whose
// pair lives only in the table, so that a later append (`$a[] = v`)
// reading the software watermark does not reuse the buffered index.
func (m *Map) BumpIntKey(i int64) {
	if i >= m.nextIntKey {
		m.nextIntKey = i + 1
	}
}

// ReserveSeq hands out the next insertion sequence number. The hardware
// hash table reserves a sequence when it accepts a SET for a key that
// does not exist in the software map yet, so that a later writeback lands
// at the correct ordered-table position (§4.2 foreach guarantee).
func (m *Map) ReserveSeq() uint64 {
	s := m.nextSeq
	m.nextSeq++
	return s
}

// GetWithSeq is Get plus the entry's insertion sequence number, which the
// hardware hash table caches so writebacks preserve iteration order.
func (m *Map) GetWithSeq(k Key) (v interface{}, seq uint64, ok bool) {
	m.ensureFresh()
	_, pos, probes, kb := m.findSlot(k)
	if m.obs != nil {
		m.obs.OnWalk(OpGet, probes, kb, false)
	}
	if pos < 0 {
		return nil, 0, false
	}
	return m.entries[pos].val, m.entries[pos].seq, true
}

// WritebackSeq writes a key/value pair into the ordered table at the
// given sequence position — the hardware hash table's flush path (§4.2:
// the hardware "only writes back to the former [ordered] table"). It
// returns true if the key was already present (value updated in place,
// original position kept). Out-of-order sequence numbers are recorded and
// repaired on the next ordered access.
func (m *Map) WritebackSeq(k Key, v interface{}, seq uint64) bool {
	m.ensureFresh()
	slot, pos, _, _ := m.findSlot(k)
	if pos >= 0 {
		m.entries[pos].val = v
		return true
	}
	if n := len(m.entries); n > 0 && m.entries[n-1].seq > seq {
		m.unordered = true
	}
	m.entries = append(m.entries, entry{key: k, val: v, seq: seq})
	m.index[slot] = int32(len(m.entries) - 1)
	m.size++
	if seq >= m.nextSeq {
		m.nextSeq = seq + 1
	}
	if k.IsInt && k.Int >= m.nextIntKey {
		m.nextIntKey = k.Int + 1
	}
	if m.needGrow() {
		m.grow()
	}
	return false
}

// ensureOrdered repairs ordered-table positions after out-of-order
// writebacks by stable-sorting live entries on their sequence numbers and
// rebuilding the hash index.
func (m *Map) ensureOrdered() {
	if !m.unordered {
		return
	}
	m.unordered = false
	sort.SliceStable(m.entries, func(i, j int) bool { return m.entries[i].seq < m.entries[j].seq })
	m.rebuildIndex(len(m.index))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
