// Package arena provides a per-request bump allocator mirroring PHP's
// request-scoped memory model and the paper's §4.3 slab-class heap
// manager: every allocation made while serving one request comes from a
// small set of chunks owned by the worker, and instead of freeing
// object-by-object the whole region is recycled with one Reset between
// requests. This removes steady-state Go heap allocations (and the GC
// pressure they cause) from the serve path, which is exactly the churn
// the paper's hardware heap manager exists to absorb.
//
// Ownership contract: an Arena is single-owner and NOT safe for
// concurrent use. Bytes returned by Make/Buf/Copy remain valid only
// until the owner's next Reset; anything that must outlive the request
// (a cache entry, an HTTP response already handed to another goroutine)
// must be copied out to the ordinary heap first.
package arena

// DefaultChunk is the chunk size used when New is given a
// non-positive chunkSize. 64 KiB keeps chunk count low for typical
// rendered pages (tens of KiB) without holding megabytes per worker.
const DefaultChunk = 64 << 10

// Arena is a chunked bump allocator. The zero value is not usable; call
// New.
type Arena struct {
	chunkSize int
	// retain bounds the total chunk bytes kept across Reset; chunks
	// beyond it are released to the GC so one pathological request
	// cannot pin memory forever. <= 0 means retain everything.
	retain int
	chunks [][]byte
	// cur indexes the chunk currently being bumped; used is the bump
	// offset within it.
	cur  int
	used int

	// allocs and resets count lifetime activity for introspection.
	allocs uint64
	resets uint64
}

// New returns an arena that bumps through chunkSize-byte chunks
// (DefaultChunk when chunkSize <= 0) and retains up to retain bytes of
// chunk capacity across Reset (everything when retain <= 0).
func New(chunkSize, retain int) *Arena {
	if chunkSize <= 0 {
		chunkSize = DefaultChunk
	}
	return &Arena{chunkSize: chunkSize, retain: retain, cur: -1}
}

// Make returns a zeroed slice of length n carved from the arena.
// Requests larger than the chunk size fall back to a plain heap
// allocation (they would defeat bump reuse anyway).
func (a *Arena) Make(n int) []byte {
	b := a.Buf(n)[:n]
	clear(b)
	return b
}

// Buf returns a zero-length slice with at least the given capacity
// carved from the arena. Appending within that capacity never
// reallocates; growing past it migrates the data to the ordinary heap
// (safe, but the migrated bytes stop being arena-managed).
func (a *Arena) Buf(capacity int) []byte {
	if capacity < 0 {
		capacity = 0
	}
	a.allocs++
	if capacity > a.chunkSize {
		return make([]byte, 0, capacity)
	}
	if a.cur < 0 || a.chunkSize-a.used < capacity {
		a.grow()
	}
	c := a.chunks[a.cur]
	b := c[a.used:a.used : a.used+capacity]
	a.used += capacity
	return b
}

// Copy returns an arena-backed copy of b.
func (a *Arena) Copy(b []byte) []byte {
	out := a.Buf(len(b))[:len(b)]
	copy(out, b)
	return out
}

// grow advances to the next retained chunk or allocates a fresh one.
func (a *Arena) grow() {
	a.cur++
	a.used = 0
	if a.cur == len(a.chunks) {
		a.chunks = append(a.chunks, make([]byte, a.chunkSize))
	}
}

// Reset recycles the arena for the next request: every previously
// returned slice becomes invalid (its bytes will be handed out again),
// and chunk capacity beyond the retain bound is released to the GC.
// Reset does not zero retained chunks; Make zeroes on allocation.
func (a *Arena) Reset() {
	a.resets++
	a.cur = -1
	a.used = 0
	if a.retain > 0 {
		keep := a.retain / a.chunkSize
		if keep < 1 {
			keep = 1
		}
		if len(a.chunks) > keep {
			a.chunks = a.chunks[:keep:keep]
		}
	}
}

// Stats reports lifetime allocation count, reset count, and currently
// held chunk bytes.
func (a *Arena) Stats() (allocs, resets uint64, heldBytes int) {
	return a.allocs, a.resets, len(a.chunks) * a.chunkSize
}
