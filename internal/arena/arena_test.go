package arena

import (
	"bytes"
	"testing"
)

func TestMakeZeroesReusedMemory(t *testing.T) {
	a := New(64, 0)
	b := a.Make(32)
	for i := range b {
		b[i] = 0xAA
	}
	a.Reset()
	b2 := a.Make(32)
	if !bytes.Equal(b2, make([]byte, 32)) {
		t.Fatalf("Make after Reset returned dirty bytes: %x", b2)
	}
}

func TestBufCapacityAndIsolation(t *testing.T) {
	a := New(128, 0)
	b1 := a.Buf(16)
	b2 := a.Buf(16)
	b1 = append(b1, bytes.Repeat([]byte{1}, 16)...)
	b2 = append(b2, bytes.Repeat([]byte{2}, 16)...)
	if bytes.Contains(b1, []byte{2}) || bytes.Contains(b2, []byte{1}) {
		t.Fatal("adjacent Buf carves overlap")
	}
	if cap(b1) != 16 {
		t.Fatalf("Buf(16) cap = %d, want exactly 16 (full-slice carve)", cap(b1))
	}
}

func TestOversizeFallsBackToHeap(t *testing.T) {
	a := New(64, 0)
	b := a.Make(1024)
	if len(b) != 1024 {
		t.Fatalf("oversize Make length = %d", len(b))
	}
	_, _, held := a.Stats()
	if held != 0 {
		t.Fatalf("oversize Make should not allocate chunks; held %d bytes", held)
	}
}

func TestCopy(t *testing.T) {
	a := New(64, 0)
	src := []byte("hello arena")
	dst := a.Copy(src)
	if !bytes.Equal(dst, src) {
		t.Fatalf("Copy = %q, want %q", dst, src)
	}
	src[0] = 'X'
	if dst[0] == 'X' {
		t.Fatal("Copy aliases its source")
	}
}

func TestResetReusesChunks(t *testing.T) {
	a := New(64, 0)
	for i := 0; i < 10; i++ {
		a.Make(40)
		a.Make(40) // forces a second chunk
		a.Reset()
	}
	_, resets, held := a.Stats()
	if resets != 10 {
		t.Fatalf("resets = %d, want 10", resets)
	}
	if held != 128 {
		t.Fatalf("held = %d bytes, want 128 (two chunks, reused across resets)", held)
	}
}

func TestRetainBoundReleasesChunks(t *testing.T) {
	a := New(64, 128) // retain at most 2 chunks
	for i := 0; i < 5; i++ {
		a.Make(40) // one chunk each
	}
	_, _, held := a.Stats()
	if held != 5*64 {
		t.Fatalf("pre-reset held = %d, want %d", held, 5*64)
	}
	a.Reset()
	_, _, held = a.Stats()
	if held != 128 {
		t.Fatalf("post-reset held = %d, want 128 (retain bound)", held)
	}
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	a := New(0, 0)
	// Warm the arena so steady state needs no chunk growth.
	a.Make(1024)
	a.Reset()
	n := testing.AllocsPerRun(100, func() {
		b := a.Buf(512)
		b = append(b, "payload"...)
		_ = a.Make(256)
		_ = a.Copy(b)
		a.Reset()
	})
	if n != 0 {
		t.Fatalf("steady-state arena cycle allocates %v/op, want 0", n)
	}
}
