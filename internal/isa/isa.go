// Package isa models the ISA extensions the paper adds to invoke its
// tightly-coupled accelerators (§4.6) and the software fallback handlers
// behind their zero-flag semantics:
//
//	hashtableget / hashtableset     — hardware hash table GET/SET
//	hmmalloc / hmfree / hmflush     — hardware heap manager
//	stringop[op]                    — string accelerator, 6-bit opcode
//	strreadconfig / strwriteconfig  — matching matrix (re)configuration
//	regexp_sieve / regexp_shadow    — PCRE-replacing regexp APIs
//	regexlookup / regexset          — content reuse table access
//
// The CPU type dispatches each runtime operation either to an accelerator
// (charging its datapath cycles) or to the software substrate (charging
// the measured micro-op costs through the substrates' observer
// interfaces). Every charge is attributed to a leaf function and activity
// category on the sim.Meter, reproducing the paper's trace-driven
// accounting.
package isa

import (
	"repro/internal/core/hashtable"
	"repro/internal/core/heapmgr"
	"repro/internal/core/regexaccel"
	"repro/internal/core/straccel"
	"repro/internal/hashmap"
	"repro/internal/heap"
	"repro/internal/sim"
	"repro/internal/strlib"
)

// Features selects which accelerators the simulated core has, with their
// configurations. The zero value is a plain software core.
type Features struct {
	HashTable   bool
	HeapManager bool
	StringAccel bool
	RegexAccel  bool

	HTConfig hashtable.Config
	HMConfig heapmgr.Config
	SAConfig straccel.Config
	RAConfig regexaccel.Config
}

// AllAccelerators enables every accelerator at its paper configuration.
func AllAccelerators() Features {
	return Features{
		HashTable:   true,
		HeapManager: true,
		StringAccel: true,
		RegexAccel:  true,
		HTConfig:    hashtable.DefaultConfig(),
		HMConfig:    heapmgr.DefaultConfig(),
		SAConfig:    straccel.DefaultConfig(),
		RAConfig:    regexaccel.DefaultConfig(),
	}
}

// CPU is one simulated core: the cost meter, the software substrates, and
// whatever accelerators the Features enabled. It is not safe for
// concurrent use.
type CPU struct {
	Meter *sim.Meter

	HT *hashtable.Table
	HM *heapmgr.Manager
	SA *straccel.Accel
	RA *regexaccel.Accel

	Alloc *heap.Allocator
	Lib   strlib.Lib

	feats Features

	curFn     string
	curCat    sim.Category
	mute      bool   // suppress substrate observer charges (IC-specialized path)
	nextMapID uint64 // per-core map identity counter (deterministic under concurrency)
	rebuilds  int64  // stale-index rebuilds across this core's maps
}

// New builds a CPU with the given meter and features. The software heap
// allocator samples its timeline every sampleEvery ops (0 disables).
func New(meter *sim.Meter, feats Features, sampleEvery int) *CPU {
	c := &CPU{Meter: meter, feats: feats}
	c.Alloc = heap.NewAllocator((*heapObs)(c), sampleEvery)
	c.Lib = strlib.Lib{Obs: (*strObs)(c)}
	if feats.HashTable {
		c.HT = hashtable.New(feats.HTConfig)
	}
	if feats.HeapManager {
		c.HM = heapmgr.New(feats.HMConfig, c.Alloc)
	}
	if feats.StringAccel {
		c.SA = straccel.New(feats.SAConfig)
	}
	if feats.RegexAccel {
		c.RA = regexaccel.New(feats.RAConfig)
	}
	return c
}

// Features returns the core's accelerator feature set.
func (c *CPU) Features() Features { return c.feats }

// SetMem routes string-result allocation — the software library's and
// every configured accelerator's — through m, typically the owning
// runtime's per-request arena. Results then follow m's lifetime; the
// simulated charges are unchanged.
func (c *CPU) SetMem(m strlib.Allocator) {
	c.Lib.Mem = m
	if c.SA != nil {
		c.SA.SetMem(m)
	}
	if c.RA != nil {
		c.RA.SetMem(m)
	}
}

// MapRebuilds returns how many stale-index rebuilds have occurred across
// every hash map created on this core (hashmap.Map.Rebuilds, aggregated).
// The paper notes these coherence events are exceedingly rare; the
// serving layer exports the counter so operators can confirm that.
func (c *CPU) MapRebuilds() int64 { return c.rebuilds }

// at sets the leaf-function attribution context for subsequent charges.
func (c *CPU) at(fn string, cat sim.Category) {
	c.curFn = fn
	c.curCat = cat
}

// NewMap creates a software hash map wired to this CPU's cost accounting.
// Map IDs are assigned per core so that concurrent workers (one core per
// goroutine) produce identical hardware hash-table behavior run to run.
func (c *CPU) NewMap() *hashmap.Map {
	c.nextMapID++
	return hashmap.NewWithID(c.nextMapID, (*mapObs)(c))
}

// ResetMap recycles a previously freed map under the next map ID this
// core would have assigned, exactly as if NewMap had built it fresh. The
// map must already have been freed through HashFree so the hardware hash
// table holds no state under its old identity.
func (c *CPU) ResetMap(m *hashmap.Map) {
	c.nextMapID++
	m.Reset(c.nextMapID)
}

// --- phpval.Accounting ---

// AddTypeCheck charges dynamic type checks (suppressed by checked-load).
func (c *CPU) AddTypeCheck(n int) { c.Meter.AddTypeCheck(n) }

// AddRefCount charges reference count traffic (suppressed by hardware
// reference counting).
func (c *CPU) AddRefCount(n int) { c.Meter.AddRefCount(n) }

// --- substrate observers (defined as converted receiver types so CPU
// can implement several Observer interfaces with distinct method sets) ---

type mapObs CPU

func (o *mapObs) OnWalk(op hashmap.Op, probes, keyBytes int, inserted bool) {
	c := (*CPU)(o)
	if c.mute {
		return
	}
	m := &c.Meter.Model
	switch op {
	case hashmap.OpIterate:
		// Ordered-table iteration: cheap per-entry work, no hashing.
		c.Meter.AddUops(c.curFn, c.curCat, 6*float64(probes)+12)
	default:
		uops := m.HashWalkCost(probes, keyBytes)
		if inserted {
			uops += m.HashInsertExtra
		}
		c.Meter.AddUops(c.curFn, c.curCat, uops)
	}
}

func (o *mapObs) OnResize(newSlots int) {
	c := (*CPU)(o)
	if c.mute {
		return
	}
	c.Meter.AddUops(c.curFn, c.curCat, c.Meter.Model.HashResizePerSlot*float64(newSlots))
}

func (o *mapObs) OnRebuild() {
	// Counted even when muted: a coherence rebuild is an observability
	// event regardless of which cost path triggered the access.
	(*CPU)(o).rebuilds++
}

type heapObs CPU

func (o *heapObs) OnAlloc(class int) {
	c := (*CPU)(o)
	c.Meter.AddUops(c.curFn, sim.CatHeap, c.Meter.Model.MallocUops)
}

func (o *heapObs) OnFree(class int) {
	c := (*CPU)(o)
	c.Meter.AddUops(c.curFn, sim.CatHeap, c.Meter.Model.FreeUops)
}

func (o *heapObs) OnRefill(class, segments int) {
	c := (*CPU)(o)
	uops := c.Meter.Model.KernelAllocUops
	if c.Meter.Mit.TunedAllocator {
		// §3: tuning reduces expensive allocation calls to the kernel.
		uops /= 8
	}
	c.Meter.AddUops("kernel_alloc", sim.CatKernel, uops)
}

func (o *heapObs) OnHuge(size int) {
	c := (*CPU)(o)
	uops := c.Meter.Model.KernelAllocUops
	if c.Meter.Mit.TunedAllocator {
		uops /= 8
	}
	c.Meter.AddUops("kernel_alloc", sim.CatKernel, uops)
}

type strObs CPU

func (o *strObs) OnStringOp(op strlib.Op, subjectBytes int) {
	c := (*CPU)(o)
	c.Meter.AddUops(c.curFn, sim.CatString, c.Meter.Model.StringCost(subjectBytes))
}

type regexObs CPU

func (o *regexObs) OnScan(n int) {
	c := (*CPU)(o)
	c.Meter.AddUops(c.curFn, sim.CatRegex, c.Meter.Model.RegexScanCost(n))
}

func (o *regexObs) OnCompile(states int) {
	c := (*CPU)(o)
	m := &c.Meter.Model
	c.Meter.AddUops("pcre_compile", sim.CatRegex, m.RegexCompileFixed+m.RegexCompilePerState*float64(states))
}
