package isa

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hashmap"
	"repro/internal/heap"
	"repro/internal/sim"
)

func newCPU(feats Features) *CPU {
	return New(sim.NewMeter(sim.DefaultCostModel()), feats, 0)
}

func TestSoftwareCoreHasNoAccelerators(t *testing.T) {
	c := newCPU(Features{})
	if c.HT != nil || c.HM != nil || c.SA != nil || c.RA != nil {
		t.Errorf("zero Features should build a plain software core")
	}
}

func TestAllAcceleratorsPresent(t *testing.T) {
	c := newCPU(AllAccelerators())
	if c.HT == nil || c.HM == nil || c.SA == nil || c.RA == nil {
		t.Errorf("AllAccelerators should enable everything")
	}
}

func TestHashOpsEquivalentAcrossCores(t *testing.T) {
	run := func(c *CPU) []string {
		m := c.NewMap()
		var log []string
		for i := 0; i < 50; i++ {
			k := hashmap.StrKey(fmt.Sprintf("key%d", i%17))
			c.HashSet("wp_set", m, k, i, false)
			if v, ok := c.HashGet("wp_get", m, k, false); ok {
				log = append(log, fmt.Sprint(v))
			}
		}
		c.HashForeach("wp_each", m, func(k hashmap.Key, v interface{}) bool {
			log = append(log, fmt.Sprintf("%s=%v", k, v))
			return true
		})
		c.HashDelete("wp_del", m, hashmap.StrKey("key3"))
		if _, ok := c.HashGet("wp_get", m, hashmap.StrKey("key3"), false); ok {
			log = append(log, "DELETED-KEY-VISIBLE")
		}
		c.HashFree("wp_free", m)
		return log
	}
	sw := run(newCPU(Features{}))
	hw := run(newCPU(AllAccelerators()))
	if fmt.Sprint(sw) != fmt.Sprint(hw) {
		t.Errorf("accelerated core changed semantics:\n sw %v\n hw %v", sw, hw)
	}
}

func TestHashAccelerationReducesUops(t *testing.T) {
	run := func(c *CPU) float64 {
		rng := rand.New(rand.NewSource(21))
		m := c.NewMap()
		for i := 0; i < 2000; i++ {
			k := hashmap.StrKey(fmt.Sprintf("k%d", rng.Intn(20)))
			if rng.Intn(5) == 0 {
				c.HashSet("f", m, k, i, false)
			} else {
				c.HashGet("f", m, k, false)
			}
		}
		return c.Meter.TotalCycles()
	}
	sw := run(newCPU(Features{}))
	hw := run(newCPU(Features{HashTable: true}))
	if hw >= sw*0.5 {
		t.Errorf("hash table should cut hash cycles substantially: sw %.0f hw %.0f", sw, hw)
	}
}

func TestInlineCachingShortCircuitsStaticKeys(t *testing.T) {
	c := newCPU(Features{})
	c.Meter.Mit = sim.AllMitigations()
	m := c.NewMap()
	c.HashSet("f", m, hashmap.StrKey("static_prop"), 1, true)
	c.HashGet("f", m, hashmap.StrKey("static_prop"), true)
	total := c.Meter.TotalUops()
	want := 2 * c.Meter.Model.ICHitUops
	if total != want {
		t.Errorf("IC path uops = %.1f, want %.1f", total, want)
	}
}

func TestHeapOpsEquivalentAndCheaper(t *testing.T) {
	run := func(c *CPU) float64 {
		rng := rand.New(rand.NewSource(9))
		var live []heap.Block
		for i := 0; i < 5000; i++ {
			if len(live) < 16 || rng.Intn(2) == 0 {
				live = append(live, c.Malloc("smart_malloc", 16+rng.Intn(8)*16))
			} else {
				j := rng.Intn(len(live))
				c.Free("smart_free", live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		return c.Meter.TotalCycles()
	}
	sw := run(newCPU(Features{}))
	hw := run(newCPU(Features{HeapManager: true}))
	if hw >= sw*0.3 {
		t.Errorf("heap manager should dominate malloc/free cost: sw %.0f hw %.0f", sw, hw)
	}
}

func TestStringOpsEquivalentAcrossCores(t *testing.T) {
	subject := []byte(`The <b>quick</b> "brown" fox's   tail `)
	run := func(c *CPU) string {
		var sb strings.Builder
		sb.Write(c.StrToUpper("f", subject))
		sb.Write(c.StrToLower("f", subject))
		sb.Write(c.StrHTMLEscape("f", subject))
		sb.Write(c.StrTrim("f", subject))
		sb.Write(c.StrReplace("f", subject, []byte("fox"), []byte("wolf")))
		sb.Write(c.StrTranslate("f", subject, []byte("aeiou"), []byte("AEIOU")))
		fmt.Fprint(&sb, c.StrFind("f", subject, []byte("brown")))
		fmt.Fprint(&sb, c.StrCompare("f", subject, []byte("The")))
		sb.Write(c.StrConcat("f", subject, []byte("!")))
		return sb.String()
	}
	sw := run(newCPU(Features{}))
	hw := run(newCPU(AllAccelerators()))
	if sw != hw {
		t.Errorf("string results differ:\n sw %q\n hw %q", sw, hw)
	}
}

func TestStringAccelerationReducesCycles(t *testing.T) {
	subject := []byte(strings.Repeat("plain text without anything special ", 300))
	run := func(c *CPU) float64 {
		for i := 0; i < 50; i++ {
			c.StrToUpper("f", subject)
			c.StrFind("f", subject, []byte("needle"))
		}
		return c.Meter.TotalCycles()
	}
	sw := run(newCPU(Features{}))
	hw := run(newCPU(Features{StringAccel: true}))
	if hw >= sw {
		t.Errorf("string accelerator should win on large subjects: sw %.0f hw %.0f", sw, hw)
	}
}

func TestRegexSieveShadowEquivalence(t *testing.T) {
	content := []byte(strings.Repeat("regular text segment ", 40) + `with 'quotes' and <tags> sprinkled`)
	swCPU := newCPU(Features{})
	hwCPU := newCPU(AllAccelerators())

	for _, c := range []*CPU{swCPU, hwCPU} {
		sieve, err := c.RegexCompile("pcre", `<`)
		if err != nil {
			t.Fatal(err)
		}
		shadow, err := c.RegexCompile("pcre", `'`)
		if err != nil {
			t.Fatal(err)
		}
		ms, hv := c.RegexSieve("f", sieve, content)
		ms2 := c.RegexShadow("f", shadow, content, hv)
		want := sieve.FindAll(content)
		if fmt.Sprint(ms) != fmt.Sprint(want) {
			t.Errorf("sieve matches differ from plain scan")
		}
		want2 := shadow.FindAll(content)
		if fmt.Sprint(ms2) != fmt.Sprint(want2) {
			t.Errorf("shadow matches differ from plain scan")
		}
	}
}

func TestRegexReuseReducesUops(t *testing.T) {
	pattern := `https://[a-z]+/\?author=[a-z0-9]+`
	run := func(c *CPU) float64 {
		re, err := c.RegexCompile("pcre", pattern)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			url := []byte(fmt.Sprintf("https://localhost/?author=name%d", i%10))
			if end := c.RegexScanReuse("f", re, 0x400, url); end != len(url) {
				t.Fatalf("scan end = %d, want %d", end, len(url))
			}
		}
		return c.Meter.TotalUops()
	}
	sw := run(newCPU(Features{}))
	hw := run(newCPU(Features{RegexAccel: true}))
	if hw >= sw*0.6 {
		t.Errorf("content reuse should skip most prefix work: sw %.0f hw %.0f", sw, hw)
	}
}

func TestContextSwitchProtocol(t *testing.T) {
	c := newCPU(AllAccelerators())
	m := c.NewMap()
	c.HashSet("f", m, hashmap.StrKey("pending"), 1, false)
	b := c.Malloc("f", 64)
	c.Free("f", b)

	c.ContextSwitch()

	// Hardware state flushed: the software map sees the pair.
	if v, ok := m.Get(hashmap.StrKey("pending")); !ok || v != 1 {
		t.Errorf("context switch lost dirty hash entry: %v %v", v, ok)
	}
	if c.HT.Len() != 0 {
		t.Errorf("hash table not empty after context switch")
	}
	for cls := 0; cls < heap.NumSmallClasses; cls++ {
		if c.HM.ListLen(cls) != 0 {
			t.Errorf("heap manager list %d not flushed", cls)
		}
	}
	if c.SA.Stats().ConfigSaves != 1 || c.SA.Stats().ConfigLoads != 1 {
		t.Errorf("string accelerator config not saved/restored")
	}
	// Post-switch operation still works.
	if v, ok := c.HashGet("f", m, hashmap.StrKey("pending"), false); !ok || v != 1 {
		t.Errorf("post-switch access broken: %v %v", v, ok)
	}
}

func TestMitigationsReduceBaseline(t *testing.T) {
	run := func(mit sim.Mitigations) float64 {
		c := newCPU(Features{})
		c.Meter.Mit = mit
		m := c.NewMap()
		for i := 0; i < 500; i++ {
			c.AddRefCount(3)
			c.AddTypeCheck(2)
			c.HashGet("f", m, hashmap.StrKey("config_option"), true)
			b := c.Malloc("f", 64)
			c.Free("f", b)
		}
		return c.Meter.TotalCycles()
	}
	base := run(sim.Mitigations{})
	mitigated := run(sim.AllMitigations())
	if mitigated >= base {
		t.Errorf("mitigations should reduce cycles: %.0f vs %.0f", mitigated, base)
	}
}

func TestAccelAttributionLandsInRightCategory(t *testing.T) {
	c := newCPU(AllAccelerators())
	m := c.NewMap()
	c.HashSet("f", m, hashmap.StrKey("k"), 1, false)
	b := c.Malloc("g", 32)
	c.Free("g", b)
	c.StrToUpper("h", []byte("abc"))

	cc := c.Meter.CategoryCycles()
	if cc[sim.CatHash] == 0 || cc[sim.CatHeap] == 0 || cc[sim.CatString] == 0 {
		t.Errorf("category attribution missing: %v", cc)
	}
	if c.Meter.AccelCalls(sim.AccelHashTable) == 0 ||
		c.Meter.AccelCalls(sim.AccelHeapMgr) == 0 ||
		c.Meter.AccelCalls(sim.AccelString) == 0 {
		t.Errorf("accelerator call counters not incremented")
	}
}
