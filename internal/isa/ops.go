package isa

import (
	"repro/internal/core/regexaccel"
	"repro/internal/hashmap"
	"repro/internal/heap"
	"repro/internal/regex"
	"repro/internal/sim"
)

// HV re-exports the regexp accelerator's hint vector so CPU callers only
// need to import isa.
type HV = regexaccel.HV

// --- Hash table instructions (§4.2, §4.6) ---

// HashGet performs a hash map lookup attributed to fn. static marks
// accesses with static literal key names, which inline caching / hash map
// inlining (§3) specialize to offset accesses when that mitigation is on;
// dynamic-key accesses cannot be specialized and are where the hardware
// hash table earns its keep.
func (c *CPU) HashGet(fn string, m *hashmap.Map, k hashmap.Key, static bool) (interface{}, bool) {
	c.at(fn, sim.CatHash)
	if static && c.Meter.Mit.InlineCaching {
		// IC/HMI-specialized access: a type-checked offset access. The
		// load still snoops the hardware table — a dirty copy buffered
		// by an earlier dynamic-key SET is written back first so the
		// offset read sees current data.
		c.mute = true
		wb := c.HT != nil && c.HT.CoherentRead(m, k)
		v, ok := m.Get(k)
		c.mute = false
		c.Meter.AddUops(fn, sim.CatHash, c.Meter.Model.ICHitUops)
		if wb {
			c.Meter.AddUops(fn, sim.CatHash, c.Meter.Model.HTWritebackUops)
		}
		c.Meter.AddTypeCheck(1)
		return v, ok
	}
	if c.HT != nil {
		mdl := &c.Meter.Model
		c.Meter.AddAccel(fn, sim.CatHash, sim.AccelHashTable, mdl.HTHashCycles+mdl.HTLookupCycles)
		v, res := c.HT.Get(m, k)
		// On a miss the zero flag branches to the software walk, which the
		// map observer charged already (the accelerator called m.Get).
		if res.EvictedDirty {
			c.Meter.AddUops(fn, sim.CatHash, mdl.HTWritebackUops)
		}
		return v, res.Found
	}
	return m.Get(k)
}

// HashSet performs a hash map store attributed to fn.
func (c *CPU) HashSet(fn string, m *hashmap.Map, k hashmap.Key, v interface{}, static bool) {
	c.at(fn, sim.CatHash)
	if static && c.Meter.Mit.InlineCaching {
		c.mute = true
		if c.HT != nil {
			// The offset store snoops the table: any cached copy is
			// invalidated so later hashtablegets refetch from memory.
			c.HT.CoherentWrite(m, k)
		}
		m.Set(k, v)
		c.mute = false
		c.Meter.AddUops(fn, sim.CatHash, c.Meter.Model.ICHitUops)
		c.Meter.AddTypeCheck(1)
		return
	}
	if c.HT != nil {
		mdl := &c.Meter.Model
		c.Meter.AddAccel(fn, sim.CatHash, sim.AccelHashTable, mdl.HTHashCycles+mdl.HTLookupCycles)
		// Silence the seq-coherence read: it rides on the same access.
		c.mute = true
		res := c.HT.Set(m, k, v)
		c.mute = false
		if res.EvictedDirty {
			c.Meter.AddUops(fn, sim.CatHash, mdl.HTWritebackUops)
		}
		return
	}
	m.Set(k, v)
}

// HashDelete removes a key (PHP unset).
func (c *CPU) HashDelete(fn string, m *hashmap.Map, k hashmap.Key) bool {
	c.at(fn, sim.CatHash)
	if c.HT != nil {
		mdl := &c.Meter.Model
		c.Meter.AddAccel(fn, sim.CatHash, sim.AccelHashTable, mdl.HTHashCycles+mdl.HTLookupCycles)
		return c.HT.Delete(m, k)
	}
	return m.Delete(k)
}

// HashForeach iterates the map in insertion order.
func (c *CPU) HashForeach(fn string, m *hashmap.Map, f func(k hashmap.Key, v interface{}) bool) {
	c.at(fn, sim.CatHash)
	if c.HT != nil {
		mdl := &c.Meter.Model
		written := c.HT.FlushMap(m)
		c.Meter.AddUops(fn, sim.CatHash, float64(written)*mdl.HTWritebackUops)
		c.Meter.AddAccel(fn, sim.CatHash, sim.AccelHashTable, float64(written)*mdl.HTLookupCycles)
		m.Foreach(f)
		return
	}
	m.Foreach(f)
}

// HashSize reads the map's element count (PHP count() and array
// truthiness). With the hardware table present, buffered SET inserts
// have not reached the software size field yet, so the read first
// flushes the map's dirty pairs.
func (c *CPU) HashSize(fn string, m *hashmap.Map) int {
	c.at(fn, sim.CatHash)
	if c.HT != nil {
		mdl := &c.Meter.Model
		written := c.HT.FlushMap(m)
		c.Meter.AddUops(fn, sim.CatHash, float64(written)*mdl.HTWritebackUops)
		c.Meter.AddAccel(fn, sim.CatHash, sim.AccelHashTable, float64(written)*mdl.HTLookupCycles)
	}
	return m.Size()
}

// HashFree deallocates a hash map (the map structure itself is freed by
// software; the accelerator just invalidates its entries through the
// RTT).
func (c *CPU) HashFree(fn string, m *hashmap.Map) {
	c.at(fn, sim.CatHash)
	if c.HT != nil {
		res := c.HT.Free(m)
		cycles := float64(res.Invalidated) * c.Meter.Model.HTLookupCycles
		if res.Scanned {
			cycles += float64(c.HT.Config().Entries) / 64 // burst scan
		}
		c.Meter.AddAccel(fn, sim.CatHash, sim.AccelHashTable, cycles+1)
	}
}

// RemoteCoherence models a remote core's coherence request (or an L2
// eviction enforcing inclusion) hitting the map's address range: the
// accelerator flushes and invalidates everything it holds for the map
// (§4.2), after which any software reader sees the up-to-date ordered
// table.
func (c *CPU) RemoteCoherence(fn string, m *hashmap.Map) {
	c.at(fn, sim.CatHash)
	if c.HT == nil {
		return
	}
	before := c.HT.Stats().Writebacks
	c.HT.OnRemoteCoherence(m)
	written := c.HT.Stats().Writebacks - before
	c.Meter.AddUops(fn, sim.CatHash, float64(written)*c.Meter.Model.HTWritebackUops)
}

// --- Heap manager instructions (§4.3, §4.6) ---

// Malloc allocates size bytes attributed to fn.
func (c *CPU) Malloc(fn string, size int) heap.Block {
	c.at(fn, sim.CatHeap)
	if c.HM != nil {
		mdl := &c.Meter.Model
		b, res := c.HM.Malloc(size)
		if res.Bypass {
			// Comparator rejected the size; the software malloc ran and the
			// heap observer charged it.
			return b
		}
		c.Meter.AddAccel(fn, sim.CatHeap, sim.AccelHeapMgr, mdl.HMCycles)
		if !res.Hit {
			c.Meter.AddUops(fn, sim.CatHeap, mdl.HMMissUops)
		}
		return b
	}
	return c.Alloc.Alloc(size)
}

// Free releases a block attributed to fn.
func (c *CPU) Free(fn string, b heap.Block) {
	c.at(fn, sim.CatHeap)
	if c.HM != nil {
		mdl := &c.Meter.Model
		res := c.HM.Free(b)
		if res.Bypass {
			return
		}
		c.Meter.AddAccel(fn, sim.CatHeap, sim.AccelHeapMgr, mdl.HMCycles)
		if res.Overflow {
			c.Meter.AddUops(fn, sim.CatHeap, mdl.HMSpillUops)
		}
		return
	}
	c.Alloc.Free(b)
}

// --- String instructions (§4.4, §4.6) ---

// saDelta runs an accelerated string operation and charges its datapath
// cycles from the accelerator's block counter delta.
func (c *CPU) saDelta(fn string, run func()) {
	mdl := &c.Meter.Model
	before := c.SA.Stats().Blocks
	run()
	blocks := c.SA.Stats().Blocks - before
	c.Meter.AddAccel(fn, sim.CatString, sim.AccelString,
		mdl.StrInvokeCycles+float64(blocks)*mdl.StrBlockCycles)
}

// StrFind locates pattern in subject (stringop[find]).
func (c *CPU) StrFind(fn string, subject, pattern []byte) int {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var pos int
		var hw bool
		c.saDelta(fn, func() { pos, hw = c.SA.Find(subject, pattern) })
		if !hw {
			c.Meter.AddUops(fn, sim.CatString, c.Meter.Model.StringCost(len(subject)))
		}
		return pos
	}
	return c.Lib.Find(subject, pattern)
}

// StrReplace substitutes old with new (stringop[replace]).
func (c *CPU) StrReplace(fn string, subject, old, new []byte) []byte {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var out []byte
		var hw bool
		c.saDelta(fn, func() { out, _, hw = c.SA.Replace(subject, old, new) })
		if !hw {
			c.Meter.AddUops(fn, sim.CatString, c.Meter.Model.StringCost(len(subject)))
		}
		return out
	}
	out, _ := c.Lib.Replace(subject, old, new)
	return out
}

// StrCompare compares two strings (stringop[compare]).
func (c *CPU) StrCompare(fn string, a, b []byte) int {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var r int
		c.saDelta(fn, func() { r = c.SA.Compare(a, b) })
		return r
	}
	return c.Lib.Compare(a, b)
}

// StrToUpper upper-cases subject (stringop[toupper], a complex function
// configured via strreadconfig).
func (c *CPU) StrToUpper(fn string, subject []byte) []byte {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var out []byte
		c.saDelta(fn, func() { out = c.SA.ToUpper(subject) })
		return out
	}
	return c.Lib.ToUpper(subject)
}

// StrToLower lower-cases subject (stringop[tolower]).
func (c *CPU) StrToLower(fn string, subject []byte) []byte {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var out []byte
		c.saDelta(fn, func() { out = c.SA.ToLower(subject) })
		return out
	}
	return c.Lib.ToLower(subject)
}

// StrTranslate maps characters through from/to tables (stringop[translate]).
func (c *CPU) StrTranslate(fn string, subject, from, to []byte) []byte {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var out []byte
		var hw bool
		c.saDelta(fn, func() { out, hw = c.SA.Translate(subject, from, to) })
		if !hw {
			c.Meter.AddUops(fn, sim.CatString, c.Meter.Model.StringCost(len(subject)))
		}
		return out
	}
	return c.Lib.Translate(subject, from, to)
}

// StrTrim strips default whitespace (stringop[trim]).
func (c *CPU) StrTrim(fn string, subject []byte) []byte {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var out []byte
		c.saDelta(fn, func() { out = c.SA.Trim(subject, []byte(" \t\n\r\x00\x0b")) })
		return out
	}
	return c.Lib.Trim(subject)
}

// StrNL2BR inserts HTML line breaks (stringop[nl2br]).
func (c *CPU) StrNL2BR(fn string, subject []byte) []byte {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var out []byte
		c.saDelta(fn, func() { out = c.SA.NL2BR(subject) })
		return out
	}
	return c.Lib.NL2BR(subject)
}

// StrAddSlashes backslash-escapes quotes (stringop[addslashes]).
func (c *CPU) StrAddSlashes(fn string, subject []byte) []byte {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var out []byte
		c.saDelta(fn, func() { out = c.SA.AddSlashes(subject) })
		return out
	}
	return c.Lib.AddSlashes(subject)
}

// StrHTMLEscape escapes HTML metacharacters (stringop[htmlspecialchars]).
func (c *CPU) StrHTMLEscape(fn string, subject []byte) []byte {
	c.at(fn, sim.CatString)
	if c.SA != nil {
		var out []byte
		c.saDelta(fn, func() { out = c.SA.HTMLSpecialChars(subject) })
		return out
	}
	return c.Lib.HTMLSpecialChars(subject)
}

// StrConcat joins parts; pure data movement stays on the core.
func (c *CPU) StrConcat(fn string, parts ...[]byte) []byte {
	c.at(fn, sim.CatString)
	return c.Lib.Concat(parts...)
}

// --- Regexp instructions (§4.5, §4.6) ---

// RegexCompile compiles a pattern with compile cost attribution.
func (c *CPU) RegexCompile(fn, pattern string) (*regex.Regex, error) {
	c.at(fn, sim.CatRegex)
	return regex.CompileObserved(pattern, (*regexObs)(c))
}

// RegexFindAll is the plain PCRE-style scan (no acceleration).
func (c *CPU) RegexFindAll(fn string, re *regex.Regex, content []byte) []regex.MatchRange {
	c.at(fn, sim.CatRegex)
	return re.FindAll(content)
}

// RegexReplaceAll is the plain PCRE-style replace.
func (c *CPU) RegexReplaceAll(fn string, re *regex.Regex, content, repl []byte) ([]byte, int) {
	c.at(fn, sim.CatRegex)
	return re.ReplaceAll(content, repl)
}

// RegexSieve runs the sieve regexp: a full scan plus HV generation
// through the string accelerator (regexp_sieve).
func (c *CPU) RegexSieve(fn string, re *regex.Regex, content []byte) ([]regex.MatchRange, *HV) {
	c.at(fn, sim.CatRegex)
	if c.RA == nil {
		return re.FindAll(content), nil
	}
	var hvGen func([]byte, int) []uint64
	if c.SA != nil {
		hvGen = func(b []byte, seg int) []uint64 {
			var out []uint64
			c.saDelta(fn, func() { out = c.SA.HintVector(b, seg) })
			return out
		}
	}
	ms, hv := c.RA.Sieve(re, content, hvGen)
	return ms, hv
}

// RegexShadow runs a shadow regexp under the HV (regexp_shadow). The
// regex observer is suspended during the sifted scan — shadow work is a
// single hardware-assisted pass, so the software per-call overhead is
// charged once over the bytes actually examined, not once per candidate
// window.
func (c *CPU) RegexShadow(fn string, re *regex.Regex, content []byte, hv *HV) []regex.MatchRange {
	c.at(fn, sim.CatRegex)
	if c.RA == nil || hv == nil {
		return re.FindAll(content)
	}
	c.chargeHVConsult(fn, len(content))
	saved := re.Obs
	re.Obs = nil
	ms, examined := c.RA.Shadow(re, content, hv)
	re.Obs = saved
	c.Meter.AddUops(fn, sim.CatRegex, c.Meter.Model.RegexScanCost(examined))
	return ms
}

// RegexShadowReplace replaces matches under the HV with whitespace
// padding, returning the new content and HV.
func (c *CPU) RegexShadowReplace(fn string, re *regex.Regex, content, repl []byte, hv *HV) ([]byte, *HV, int) {
	c.at(fn, sim.CatRegex)
	if c.RA == nil || hv == nil {
		out, n := re.ReplaceAll(content, repl)
		return out, nil, n
	}
	c.chargeHVConsult(fn, len(content))
	saved := re.Obs
	re.Obs = nil
	out, newHV, n, examined := c.RA.ShadowReplace(re, content, repl, hv)
	re.Obs = saved
	c.Meter.AddUops(fn, sim.CatRegex, c.Meter.Model.RegexScanCost(examined))
	// The splice itself moves bytes through the core.
	c.Meter.AddUops(fn, sim.CatRegex, float64(n)*4)
	return out, newHV, n
}

// RegexScanReuse performs an anchored traversal through the content reuse
// table (regexlookup/regexset). It returns the longest accepted prefix
// end, or -1.
func (c *CPU) RegexScanReuse(fn string, re *regex.Regex, pc uint64, content []byte) int {
	c.at(fn, sim.CatRegex)
	mdl := &c.Meter.Model
	if c.RA == nil {
		c.Meter.AddUops(fn, sim.CatRegex, mdl.RegexScanCost(len(content)))
		return anchoredScan(re, content)
	}
	end, res := c.RA.ScanWithReuse(re, pc, asid, content)
	c.Meter.AddAccel(fn, sim.CatRegex, sim.AccelRegex, mdl.ReuseLookupCycles)
	c.Meter.AddUops(fn, sim.CatRegex, mdl.RegexScanCost(len(content)-res.Skipped))
	return end
}

// chargeHVConsult charges the CLZ stepping over the hint vector words.
func (c *CPU) chargeHVConsult(fn string, contentLen int) {
	segs := (contentLen + c.RA.Config().SegSize - 1) / c.RA.Config().SegSize
	words := float64(segs+63) / 64
	c.Meter.AddAccel(fn, sim.CatRegex, sim.AccelRegex, words*c.Meter.Model.HVWordCycles)
}

// anchoredScan is the software reference for RegexScanReuse.
func anchoredScan(re *regex.Regex, content []byte) int {
	d := re.FSM()
	best := -1
	st := d.Start()
	if d.Accepting(st) {
		best = 0
	}
	for i, b := range content {
		st = d.Step(st, b)
		if st == regex.Dead {
			break
		}
		if d.Accepting(st) {
			best = i + 1
		}
	}
	return best
}

// asid is the simulated address-space identifier; the simulation runs one
// process.
const asid uint32 = 1

// --- Context switch protocol (§4.6) ---

// ContextSwitch models the OS preempting the simulated process: the hash
// table's hardware-coherent state needs no cleanup beyond its flush
// protocol, hmflush writes the heap manager's free lists back, and the
// string accelerator's configuration is saved with strwriteconfig and
// restored with strreadconfig.
func (c *CPU) ContextSwitch() {
	mdl := &c.Meter.Model
	if c.HT != nil {
		written := c.HT.FlushAll()
		c.Meter.AddUops("context_switch", sim.CatOther, float64(written)*mdl.HTWritebackUops)
	}
	if c.HM != nil {
		flushed := c.HM.Flush()
		c.Meter.AddUops("context_switch", sim.CatOther, float64(flushed)*mdl.FlushPerEntryUops)
	}
	if c.SA != nil {
		cfg := c.SA.SaveConfig()
		c.SA.LoadConfig(cfg)
		c.Meter.AddUops("context_switch", sim.CatOther, 16)
	}
}
