package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Router shed reasons, exported so the metrics layer and tests name the
// same strings. They parallel the scheduler's shed vocabulary one level
// up: the router sheds before a backend saturates, the scheduler sheds
// when it does anyway.
const (
	// RouterShedOverload: the key's owner is up but at its inflight cap.
	RouterShedOverload = "overload"
	// RouterShedNoBackend: no healthy backend remained for the key.
	RouterShedNoBackend = "no_backend"
	// RouterShedDraining: the router itself is draining for shutdown.
	RouterShedDraining = "draining"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// RingReplicas is the virtual-node count per backend on the
	// affinity ring (<= 0 selects cache.DefaultRingReplicas).
	RingReplicas int
	// MaxInflight caps concurrently proxied requests per backend;
	// beyond it the router sheds 503 rather than queueing onto a
	// saturated backend (<= 0 means unlimited).
	MaxInflight int
	// Client issues proxied and health requests (nil selects a
	// keep-alive-enabled default with a 30s request timeout).
	Client *http.Client
	// HealthTimeout bounds one /healthz probe (<= 0 selects 1s).
	HealthTimeout time.Duration

	// SampleRate is the fraction of proxied requests that record a
	// router-side span tree in TreeRing — and, when the backend sampled
	// the same request, stitch the backend's tree under the proxy span.
	// 0 disables tree recording; request-ID propagation stays on.
	SampleRate float64
	// TreeRing retains sampled router trees for GET /tracez (nil
	// disables tree recording regardless of SampleRate).
	TreeRing *obs.TreeRing
	// AccessLog, when non-nil, receives one JSON line per sampled proxy
	// and per shed, carrying the router fields (request_id, backend,
	// rerouted, shed_reason) alongside the phpserve line schema.
	AccessLog *obs.AccessLog
	// Events, when non-nil, records cluster lifecycle transitions
	// (backend up/down, ring membership changes) for GET /eventz.
	Events *obs.EventRing
}

// routerBackend is the router's view of one backend process.
type routerBackend struct {
	id   string
	addr string // host:port

	up       bool
	inflight int

	requests  int64 // proxied requests answered by this backend
	errors    int64 // transport failures against this backend
	shed      int64 // requests shed at this backend's inflight cap
	cacheHits int64 // responses this backend answered with X-Cache: HIT
	lat       *obs.Histogram
}

// Router is the cluster front: it owns the cache-affinity ring over
// healthy backends and proxies each request to its key's owner, with
// the PR-4 lifecycle vocabulary applied one level up — typed 503 sheds
// before backends saturate, health-driven membership, and retry-on-
// refused so a mid-restart backend costs a reroute, never a client-
// visible connection error. Safe for concurrent use.
type Router struct {
	cfg    RouterConfig
	client *http.Client

	// ids mints X-Request-Id values for requests that arrive without
	// one; sampler decides which proxies record a span tree. Both are
	// concurrency-safe and live outside mu.
	ids     *obs.IDSource
	sampler *obs.Sampler

	mu       sync.Mutex
	ring     *cache.Ring
	backends map[string]*routerBackend
	order    []string // registration order, for stable reporting
	draining bool

	shedOverload  int64
	shedNoBackend int64
	shedDraining  int64
	retries       int64
	stitched      int64 // backend trees grafted under a router proxy span
	stitchErrors  int64 // stitch fetches that failed or found no tree
}

// NewRouter builds a router with no backends; register them with
// AddBackend.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Router{
		cfg:      cfg,
		client:   client,
		ids:      obs.NewIDSource(),
		sampler:  obs.NewSampler(cfg.SampleRate),
		ring:     cache.NewRing(cfg.RingReplicas),
		backends: make(map[string]*routerBackend),
	}
}

// AddBackend registers a backend at addr (host:port) and admits it to
// the ring as up. Registering an existing id updates its address.
func (r *Router) AddBackend(id, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.backends[id]; ok {
		b.addr = addr
		return
	}
	r.backends[id] = &routerBackend{
		id: id, addr: addr, up: true,
		lat: obs.NewHistogram(obs.DefLatencyBuckets()),
	}
	r.order = append(r.order, id)
	r.ring.Add(id)
	r.cfg.Events.Add(time.Now(), obs.EventRingChange, id, "joined ring")
}

// SetBackendUp flips a backend's health state, adjusting ring
// membership: marking down removes its virtual nodes (its key range
// rebalances to ring successors), marking up re-admits them (the same
// range returns — ring assignment is deterministic). Returns true when
// the state actually changed.
func (r *Router) SetBackendUp(id string, up bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.backends[id]
	if !ok || b.up == up {
		return false
	}
	b.up = up
	now := time.Now()
	if up {
		r.ring.Add(id)
		r.cfg.Events.Add(now, obs.EventBackendUp, id, "")
		r.cfg.Events.Add(now, obs.EventRingChange, id, "virtual nodes re-admitted")
	} else {
		r.ring.Remove(id)
		r.cfg.Events.Add(now, obs.EventBackendDown, id, "")
		r.cfg.Events.Add(now, obs.EventRingChange, id, "virtual nodes removed")
	}
	return true
}

// BackendUp reports a backend's current health state.
func (r *Router) BackendUp(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.backends[id]
	return ok && b.up
}

// SetDraining moves the router to the draining state: every subsequent
// request is shed with 503 + Retry-After while in-flight proxies
// finish (http.Server.Shutdown provides the barrier).
func (r *Router) SetDraining() {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
}

// errRerouted marks attempt outcomes that should move on to the next
// ring owner instead of answering the client.
var errRerouted = errors.New("serve: attempt rerouted")

// Proxy forwards req to the healthy ring owner of key, walking the
// ring-order fallback sequence on connection failure or backend-side
// 503 (a draining or overloaded backend), so rolling restarts cost
// reroutes, never client-visible connection errors. Requests are shed
// with typed 503s when the router is draining, the owner is at its
// inflight cap, or no healthy backend remains.
func (r *Router) Proxy(w http.ResponseWriter, req *http.Request, key string) {
	po := r.beginProxyObs(w, req)
	defer r.finishProxyObs(po)

	r.mu.Lock()
	if r.draining {
		r.shedDraining++
		r.mu.Unlock()
		po.noteShed(RouterShedDraining)
		shedHTTP(w, RouterShedDraining, "router draining")
		return
	}
	candidates := r.ring.Owners(key, len(r.backends))
	r.mu.Unlock()
	po.noteRoute()

	// Buffer a small request body once so reroutes can replay it; the
	// workload is GET-only, so this path is a correctness guard, not a
	// hot path.
	var body []byte
	if req.Body != nil && req.Body != http.NoBody {
		body, _ = io.ReadAll(io.LimitReader(req.Body, 1<<20))
		req.Body.Close()
	}

	var lastStatus int
	var lastBody []byte
	for try, id := range candidates {
		status, respBody, err := r.attempt(w, req, id, body, po, try)
		if err == nil {
			return // answered the client
		}
		if !errors.Is(err, errRerouted) {
			// Shed decided inside the attempt (inflight cap).
			return
		}
		lastStatus, lastBody = status, respBody
	}
	if lastStatus != 0 {
		// Every candidate answered 503 (all draining/overloaded): relay
		// the final backend's typed shed rather than inventing one.
		po.noteRelayedShed(lastStatus)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(lastStatus)
		w.Write(lastBody)
		return
	}
	r.mu.Lock()
	r.shedNoBackend++
	r.mu.Unlock()
	po.noteShed(RouterShedNoBackend)
	shedHTTP(w, RouterShedNoBackend, "no healthy backend for key")
}

// attempt proxies one try against backend id. It returns nil when the
// client was answered (success or terminal failure), errRerouted when
// the caller should try the next candidate (with the 503 status/body
// to relay if no candidate remains), and handles shed accounting for
// the inflight cap internally.
func (r *Router) attempt(w http.ResponseWriter, req *http.Request, id string, body []byte, po *proxyObs, try int) (int, []byte, error) {
	r.mu.Lock()
	b, ok := r.backends[id]
	if !ok || !b.up {
		r.mu.Unlock()
		return 0, nil, errRerouted
	}
	if r.cfg.MaxInflight > 0 && b.inflight >= r.cfg.MaxInflight {
		b.shed++
		r.shedOverload++
		r.mu.Unlock()
		// The key's owner is saturated. Shedding (not rerouting) is
		// deliberate: rerouting overload would duplicate the owner's key
		// range onto its neighbour's cache and melt the ring's affinity
		// exactly when the cluster is hottest.
		po.noteShed(RouterShedOverload)
		shedHTTP(w, RouterShedOverload, "backend "+id+" at inflight cap")
		return 0, nil, nil
	}
	b.inflight++
	addr := b.addr
	r.mu.Unlock()

	spanStart := po.sinceStart()
	t0 := time.Now()
	resp, err := r.forward(req, addr, body)
	elapsed := time.Since(t0)
	po.noteAttempt(id, try, spanStart, elapsed)

	r.mu.Lock()
	b.inflight--
	if err != nil {
		b.errors++
	}
	r.mu.Unlock()

	if err != nil {
		if retryableNetErr(err) {
			// Connection refused/reset: the process is restarting or
			// gone. Evict it from the ring (the health loop re-admits it)
			// and walk to the next owner.
			r.SetBackendUp(id, false)
			r.bumpRetries()
			return 0, nil, errRerouted
		}
		po.noteStatus(http.StatusBadGateway)
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return 0, nil, nil
	}
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusServiceUnavailable {
		// The backend itself shed — it is draining or saturated below
		// our inflight view. Its key range is better served elsewhere
		// until health checks catch up.
		respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		r.bumpRetries()
		return resp.StatusCode, respBody, errRerouted
	}

	r.mu.Lock()
	b.requests++
	b.lat.Observe(elapsed.Seconds())
	if resp.Header.Get("X-Cache") == "HIT" {
		b.cacheHits++
	}
	r.mu.Unlock()

	for k, vs := range resp.Header {
		if k == obs.HeaderRequestID || k == obs.HeaderTraceSampled {
			// The client's X-Request-Id was already set from the router's
			// authoritative value; the trace-sampled handshake is
			// router-internal signalling.
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Routed-Backend", id)
	w.WriteHeader(resp.StatusCode)
	n, _ := io.Copy(w, resp.Body)
	po.noteServed(id, addr, try > 0, resp.StatusCode, int(n),
		resp.Header.Get(obs.HeaderTraceSampled) == "1")
	return 0, nil, nil
}

// forward issues the outbound copy of req against addr.
func (r *Router) forward(req *http.Request, addr string, body []byte) (*http.Response, error) {
	url := "http://" + addr + req.URL.RequestURI()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(req.Context(), req.Method, url, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range req.Header {
		out.Header[k] = vs
	}
	return r.client.Do(out)
}

// bumpRetries counts one reroute.
func (r *Router) bumpRetries() {
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
}

// retryableNetErr reports whether a transport error indicates the
// backend process is unreachable (restarting, not yet listening) —
// the cases where trying the next ring owner is safe and right.
func retryableNetErr(err error) bool {
	var opErr *net.OpError
	if errors.As(err, &opErr) {
		return true // dial/read/write against a dead process
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// shedHTTP writes a typed router shed: 503, Retry-After, and the
// reason in X-Router-Shed so tests and operators can tell router sheds
// from backend sheds.
func shedHTTP(w http.ResponseWriter, reason, msg string) {
	w.Header().Set("Retry-After", "1")
	w.Header().Set("X-Router-Shed", reason)
	http.Error(w, "503 service unavailable: "+msg, http.StatusServiceUnavailable)
}

// HealthTransition records one backend health flip observed by a check
// sweep.
type HealthTransition struct {
	// ID is the backend whose state changed.
	ID string
	// Up is the new state.
	Up bool
	// Err is the probe failure that caused a down transition (nil on
	// up transitions).
	Err error
}

// CheckBackends probes every backend's /healthz once and applies the
// results to ring membership, returning the transitions (empty when
// nothing changed). A 2xx answer is healthy; anything else — including
// a 503 from a draining backend — is not.
func (r *Router) CheckBackends(ctx context.Context) []HealthTransition {
	r.mu.Lock()
	type probe struct{ id, addr string }
	probes := make([]probe, 0, len(r.order))
	for _, id := range r.order {
		probes = append(probes, probe{id, r.backends[id].addr})
	}
	r.mu.Unlock()

	var out []HealthTransition
	for _, p := range probes {
		up, err := r.probeHealth(ctx, p.addr)
		if r.SetBackendUp(p.id, up) {
			out = append(out, HealthTransition{ID: p.id, Up: up, Err: err})
		}
	}
	return out
}

// probeHealth issues one GET /healthz against addr.
func (r *Router) probeHealth(ctx context.Context, addr string) (bool, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return false, fmt.Errorf("healthz %s: %s", addr, resp.Status)
	}
	return true, nil
}

// HealthLoop runs CheckBackends every interval until ctx is done,
// reporting each transition to onChange (nil disables reporting).
func (r *Router) HealthLoop(ctx context.Context, interval time.Duration, onChange func(HealthTransition)) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			for _, tr := range r.CheckBackends(ctx) {
				if onChange != nil {
					onChange(tr)
				}
			}
		}
	}
}

// WaitHealthy polls addr's /healthz every interval until it answers
// 2xx or ctx expires — the readmission barrier a rolling restart uses
// before putting a backend back on the ring.
func (r *Router) WaitHealthy(ctx context.Context, addr string, interval time.Duration) error {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		if up, _ := r.probeHealth(ctx, addr); up {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: backend %s not healthy: %w", addr, ctx.Err())
		case <-time.After(interval):
		}
	}
}

// BackendStats is one backend's row in RouterStats.
type BackendStats struct {
	// ID and Addr identify the backend.
	ID   string
	Addr string
	// Up is the router's current health view.
	Up bool
	// Inflight is the number of requests currently proxied to it.
	Inflight int
	// Requests, Errors, Shed, CacheHits count proxied answers,
	// transport failures, inflight-cap sheds, and X-Cache: HIT answers.
	Requests  int64
	Errors    int64
	Shed      int64
	CacheHits int64
	// Latency is the backend's proxied-request latency distribution in
	// seconds.
	Latency obs.HistogramSnapshot
}

// RouterStats is a consistent snapshot of the router's state for
// /metrics, /backends, and tests.
type RouterStats struct {
	// Draining reports the router-level lifecycle state.
	Draining bool
	// ShedOverload, ShedNoBackend, ShedDraining count router-level
	// sheds by reason; Retries counts reroutes to a fallback owner.
	ShedOverload  int64
	ShedNoBackend int64
	ShedDraining  int64
	Retries       int64
	// Stitched counts backend span trees grafted under a router proxy
	// span; StitchErrors counts stitch fetches that failed or found no
	// matching tree at the backend.
	Stitched     int64
	StitchErrors int64
	// Backends holds per-backend rows in registration order.
	Backends []BackendStats
}

// Requests sums proxied requests across backends.
func (rs RouterStats) Requests() int64 {
	var n int64
	for _, b := range rs.Backends {
		n += b.Requests
	}
	return n
}

// UpCount returns how many backends are currently up.
func (rs RouterStats) UpCount() int {
	n := 0
	for _, b := range rs.Backends {
		if b.Up {
			n++
		}
	}
	return n
}

// Stats returns a consistent snapshot of router and per-backend
// counters.
func (r *Router) Stats() RouterStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := RouterStats{
		Draining:      r.draining,
		ShedOverload:  r.shedOverload,
		ShedNoBackend: r.shedNoBackend,
		ShedDraining:  r.shedDraining,
		Retries:       r.retries,
		Stitched:      r.stitched,
		StitchErrors:  r.stitchErrors,
	}
	for _, id := range r.order {
		b := r.backends[id]
		rs.Backends = append(rs.Backends, BackendStats{
			ID: b.id, Addr: b.addr, Up: b.up, Inflight: b.inflight,
			Requests: b.requests, Errors: b.errors, Shed: b.shed,
			CacheHits: b.cacheHits, Latency: b.lat.Snapshot(),
		})
	}
	return rs
}

// Owners exposes the ring's fallback sequence for a key (primarily for
// tests and the /backends endpoint).
func (r *Router) Owners(key string, n int) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.Owners(key, n)
}

// MemberIDs returns all registered backend ids, sorted.
func (r *Router) MemberIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}
