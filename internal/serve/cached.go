package serve

import (
	"context"
	"errors"
	"time"

	"repro/internal/cache"
	"repro/internal/workload"
)

// DoCached is Do with a response cache between admission and worker
// acquisition: the request passes the same admission gate (drain state,
// deadline, bounded token), then consults the cache. A hit returns the
// cached bytes without ever touching the pool — no worker slot, no
// queue wait. A miss acquires a worker inside the cache's singleflight
// fill, so concurrent misses for the same key render once and the rest
// wait for that render instead of piling onto the pool (dogpile
// protection). The admission token is held for the full call either
// way, which keeps the number of requests inside the scheduler bounded
// exactly as for Do.
//
// The returned body is the cache-owned entry on every outcome and must
// be treated as read-only (the cache package's ownership contract);
// the fill path copies the render output to stable heap bytes while it
// still holds the worker, so recycled render buffers can never alias a
// live cache entry.
//
// The returned duration is the time the request waited for a worker
// (zero for hits and coalesced waiters). Error mapping matches Do:
// deadline expiry anywhere — at admission, queued, or while waiting on
// another caller's render — becomes ErrDeadline, and a canceled context
// (client abandoned) becomes ErrCanceled.
func (s *Scheduler) DoCached(ctx context.Context, c *cache.Cache, key string, render func(w *workload.Worker) ([]byte, error)) ([]byte, cache.Outcome, time.Duration, error) {
	s.mu.Lock()
	if s.state != StateRunning {
		s.mu.Unlock()
		s.count(&s.shedDraining)
		return nil, cache.Bypass, 0, ErrDraining
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, cache.Bypass, 0, s.shedCtx(err)
	}

	select {
	case s.slots <- struct{}{}:
	default:
		s.count(&s.shedOverload)
		return nil, cache.Bypass, 0, ErrOverloaded
	}
	defer func() { <-s.slots }()

	s.statsMu.Lock()
	s.admitted++
	s.statsMu.Unlock()

	// Only the fill path — the elected leader of a miss — queues for a
	// worker; hits and coalesced waiters never enter the pool.
	var wait time.Duration
	body, outcome, err := c.GetOrFill(ctx, key, func() ([]byte, error) {
		s.statsMu.Lock()
		s.queued++
		s.statsMu.Unlock()
		t0 := time.Now()
		w, aerr := s.pool.AcquireCtx(ctx)
		wait = time.Since(t0)
		s.statsMu.Lock()
		s.queued--
		s.waitHist.Observe(wait.Seconds())
		s.statsMu.Unlock()
		if aerr != nil {
			return nil, aerr
		}
		defer s.pool.Release(w)
		page, rerr := render(w)
		if rerr != nil || page == nil {
			return nil, rerr
		}
		// The single defensive copy of the serve path: render's return
		// aliases the worker's recycled buffers, valid only while the
		// worker is held — so copy to stable heap bytes here, before the
		// deferred Release lets another request reuse them. Ownership of
		// the copy transfers to the cache, which is also why it must be
		// a plain allocation, never a pooled buffer: an evicted entry
		// may still have live readers, and only the GC can tell.
		stable := make([]byte, len(page))
		copy(stable, page)
		return stable, nil
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, outcome, wait, s.shedCtx(err)
		}
		return nil, outcome, wait, err
	}
	s.count(&s.served)
	return body, outcome, wait, nil
}
