package serve

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// ProcSpec describes one supervised backend process.
type ProcSpec struct {
	// ID names the process in logs and metrics (the backend id).
	ID string
	// Binary and Args are the command line to run.
	Binary string
	Args   []string
	// Stdout and Stderr receive the child's output (nil inherits the
	// supervisor's).
	Stdout io.Writer
	Stderr io.Writer
}

// Proc is one supervised process: started, optionally respawned on
// crash, and stopped with SIGTERM-then-SIGKILL graceful semantics —
// the per-backend half of a rolling restart. Safe for concurrent use.
type Proc struct {
	spec ProcSpec

	mu       sync.Mutex
	cmd      *exec.Cmd
	exited   chan struct{} // closed when the current incarnation exits
	stopping bool          // deliberate stop in progress: don't respawn
	starts   int           // total incarnations started
}

// StartProc launches the process described by spec.
func StartProc(spec ProcSpec) (*Proc, error) {
	p := &Proc{spec: spec}
	if err := p.start(); err != nil {
		return nil, err
	}
	return p, nil
}

// start launches one incarnation. Caller must not hold p.mu.
func (p *Proc) start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.startLocked()
}

func (p *Proc) startLocked() error {
	cmd := exec.Command(p.spec.Binary, p.spec.Args...)
	cmd.Stdout = p.spec.Stdout
	cmd.Stderr = p.spec.Stderr
	if cmd.Stdout == nil {
		cmd.Stdout = os.Stdout
	}
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("serve: start %s: %w", p.spec.ID, err)
	}
	p.cmd = cmd
	p.starts++
	p.stopping = false
	exited := make(chan struct{})
	p.exited = exited
	go func() {
		cmd.Wait()
		close(exited)
	}()
	return nil
}

// ID returns the process's spec ID.
func (p *Proc) ID() string { return p.spec.ID }

// Starts returns how many incarnations have been started (1 after
// StartProc, +1 per Restart or respawn).
func (p *Proc) Starts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.starts
}

// Running reports whether the current incarnation is still alive.
func (p *Proc) Running() bool {
	p.mu.Lock()
	exited := p.exited
	p.mu.Unlock()
	if exited == nil {
		return false
	}
	select {
	case <-exited:
		return false
	default:
		return true
	}
}

// Exited returns a channel closed when the current incarnation exits
// (for respawn loops).
func (p *Proc) Exited() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited
}

// Stop terminates the process gracefully: SIGTERM, wait for exit until
// ctx expires, then SIGKILL. It marks the stop deliberate so respawn
// loops stand down. Returns nil when the process ends either way.
func (p *Proc) Stop(ctx context.Context) error {
	p.mu.Lock()
	p.stopping = true
	cmd, exited := p.cmd, p.exited
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	select {
	case <-exited:
		return nil // already gone
	default:
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return nil // raced with exit
	}
	select {
	case <-exited:
		return nil
	case <-ctx.Done():
		cmd.Process.Kill()
		<-exited
		return fmt.Errorf("serve: %s did not drain in time, killed", p.spec.ID)
	}
}

// Restart starts a fresh incarnation; the previous one must have
// exited (use Stop first).
func (p *Proc) Restart() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.exited != nil {
		select {
		case <-p.exited:
		default:
			return fmt.Errorf("serve: %s still running, stop it before restarting", p.spec.ID)
		}
	}
	return p.startLocked()
}

// stoppingNow reports whether the current exit was deliberate.
func (p *Proc) stoppingNow() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopping
}

// respawn restarts a crashed process unless a deliberate Stop has
// landed or it is somehow running again — both checked under the lock,
// so a Stop racing the respawn decision always wins.
func (p *Proc) respawn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopping {
		return nil
	}
	if p.exited != nil {
		select {
		case <-p.exited:
		default:
			return nil // already running
		}
	}
	return p.startLocked()
}

// Supervisor owns a set of backend processes: it respawns crashed ones
// (with a fixed backoff) and stops them all gracefully on shutdown —
// the process-management half of `phprouter -spawn`. Safe for
// concurrent use.
type Supervisor struct {
	// Backoff is the delay before respawning a crashed process
	// (default 500ms; tests shorten it).
	Backoff time.Duration
	// Logf reports supervision events (nil discards them).
	Logf func(format string, args ...any)

	mu    sync.Mutex
	procs []*Proc
}

// NewSupervisor builds an empty supervisor.
func NewSupervisor() *Supervisor {
	return &Supervisor{Backoff: 500 * time.Millisecond}
}

// Add starts a process from spec and begins supervising it.
func (s *Supervisor) Add(spec ProcSpec) (*Proc, error) {
	p, err := StartProc(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.procs = append(s.procs, p)
	s.mu.Unlock()
	return p, nil
}

// Procs returns the supervised processes in add order.
func (s *Supervisor) Procs() []*Proc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Proc(nil), s.procs...)
}

// Watch respawns crashed processes until ctx is done. Deliberate stops
// (Proc.Stop) are not respawned, so rolling restarts and shutdown can
// proceed underneath a running Watch.
func (s *Supervisor) Watch(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range s.Procs() {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			for {
				exited := p.Exited()
				select {
				case <-ctx.Done():
					return
				case <-exited:
				}
				if p.stoppingNow() {
					// Deliberate stop: wait for a restart (new exited
					// channel) or shutdown rather than respawning.
					select {
					case <-ctx.Done():
						return
					case <-time.After(s.Backoff):
					}
					continue
				}
				s.logf("backend %s exited unexpectedly, respawning in %v", p.ID(), s.Backoff)
				select {
				case <-ctx.Done():
					return
				case <-time.After(s.Backoff):
				}
				if ctx.Err() != nil {
					return
				}
				if err := p.respawn(); err != nil {
					s.logf("backend %s respawn failed: %v", p.ID(), err)
				}
			}
		}(p)
	}
	wg.Wait()
}

// StopAll stops every process gracefully, in parallel, bounded by ctx.
func (s *Supervisor) StopAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range s.Procs() {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			if err := p.Stop(ctx); err != nil {
				s.logf("%v", err)
			}
		}(p)
	}
	wg.Wait()
}

func (s *Supervisor) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}
