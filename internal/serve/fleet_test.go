package serve

import (
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// metricsBackend is a stub phpserve exposing just /healthz, /metrics,
// and /profilez with fixed numbers, for scraper tests.
type metricsBackend struct {
	addr     string
	requests float64
	hits     float64
	misses   float64
	// funcs maps function name -> cycles (all category "hash").
	funcs map[string]float64
}

func startMetricsBackend(t *testing.T, b *metricsBackend) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		h := obs.NewHistogram([]float64{0.01, 0.1})
		for i := 0.0; i < b.requests; i++ {
			h.Observe(0.005)
		}
		e := obs.NewEncoder(w)
		e.Counter("phpserve_requests_total", "Requests served.",
			obs.Sample{Labels: []obs.Label{{Name: "app", Value: "wordpress"}}, Value: b.requests})
		e.Counter("phpserve_cache_hits_total", "Cache hits.", obs.Sample{Value: b.hits})
		e.Counter("phpserve_cache_misses_total", "Cache misses.", obs.Sample{Value: b.misses})
		e.Histogram("phpserve_request_latency_seconds", "Latency.", nil, h.Snapshot())
	})
	mux.HandleFunc("/profilez", func(w http.ResponseWriter, _ *http.Request) {
		type entry struct {
			Name     string  `json:"name"`
			Category string  `json:"category"`
			Cycles   float64 `json:"cycles"`
		}
		var top []entry
		for name, cyc := range b.funcs {
			top = append(top, entry{Name: name, Category: "hash", Cycles: cyc})
		}
		json.NewEncoder(w).Encode(map[string]any{"top": top})
	})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	b.addr = lis.Addr().String()
	return b.addr
}

// TestScrapeFleetMerges: the merged fleet view equals the element-wise
// sum of the backends' expositions, the aggregate hit ratio is computed
// from merged counters, and profiles merge by function.
func TestScrapeFleetMerges(t *testing.T) {
	b0 := &metricsBackend{requests: 10, hits: 6, misses: 4,
		funcs: map[string]float64{"zend_hash_find": 500, "only_b0": 100}}
	b1 := &metricsBackend{requests: 30, hits: 9, misses: 21,
		funcs: map[string]float64{"zend_hash_find": 1500, "only_b1": 400}}
	r := NewRouter(RouterConfig{Client: &http.Client{Timeout: 5 * time.Second}})
	r.AddBackend("0", startMetricsBackend(t, b0))
	r.AddBackend("1", startMetricsBackend(t, b1))

	fs := r.ScrapeFleet(context.Background())
	if fs.Scraped() != 2 {
		for _, b := range fs.Backends {
			t.Logf("backend %s: err=%v", b.ID, b.Err)
		}
		t.Fatalf("scraped = %d, want 2", fs.Scraped())
	}
	if got := fs.Requests(); got != 40 {
		t.Fatalf("merged requests = %g, want 40", got)
	}
	// Aggregate hit ratio = (6+9)/(6+9+4+21) = 15/40, NOT the mean of
	// per-backend ratios (0.6 and 0.3 would average to 0.45).
	if got, want := fs.CacheHitRatio(), 15.0/40.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("hit ratio = %g, want %g", got, want)
	}
	// Per-backend rows keep the skew visible.
	if got := fs.Backends[0].Requests(); got != 10 {
		t.Fatalf("backend 0 requests = %g, want 10", got)
	}
	if got := fs.Backends[1].Requests(); got != 30 {
		t.Fatalf("backend 1 requests = %g, want 30", got)
	}
	// Merged latency histogram counts all 40 observations.
	if got := fs.Latency().Count; got != 40 {
		t.Fatalf("merged latency count = %d, want 40", got)
	}
	// Profile merged by function: zend_hash_find = 2000 of 2500 total.
	if fs.Profile.Total != 2500 {
		t.Fatalf("profile total = %g, want 2500", fs.Profile.Total)
	}
	if fs.Profile.Entries[0].Name != "zend_hash_find" || fs.Profile.Entries[0].Cycles != 2000 {
		t.Fatalf("hottest = %+v", fs.Profile.Entries[0])
	}
	if got, want := fs.Profile.HottestFrac(), 2000.0/2500.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("hottest frac = %g, want %g", got, want)
	}
	if fs.Profile.NumFunctions() != 3 {
		t.Fatalf("merged functions = %d, want 3", fs.Profile.NumFunctions())
	}
}

// TestScrapeFleetSkipsDownBackends: a down backend is not probed and
// contributes nothing; a failing backend appears with Err set.
func TestScrapeFleetSkipsDownBackends(t *testing.T) {
	b0 := &metricsBackend{requests: 10, funcs: map[string]float64{"f": 1}}
	r := NewRouter(RouterConfig{Client: &http.Client{Timeout: 2 * time.Second}})
	r.AddBackend("0", startMetricsBackend(t, b0))
	r.AddBackend("1", "127.0.0.1:1") // nothing listens here
	r.SetBackendUp("1", false)

	fs := r.ScrapeFleet(context.Background())
	if len(fs.Backends) != 1 || fs.Backends[0].ID != "0" {
		t.Fatalf("backends scraped = %+v, want only backend 0", fs.Backends)
	}
	if fs.Requests() != 10 {
		t.Fatalf("requests = %g, want 10", fs.Requests())
	}

	// Re-admit the dead backend: the scrape runs, fails, and reports.
	r.SetBackendUp("1", true)
	fs = r.ScrapeFleet(context.Background())
	if len(fs.Backends) != 2 {
		t.Fatalf("backends = %d, want 2", len(fs.Backends))
	}
	if fs.Backends[1].Err == nil {
		t.Fatal("dead backend scrape should report an error")
	}
	if fs.Scraped() != 1 || fs.Requests() != 10 {
		t.Fatalf("scraped=%d requests=%g, want 1/10", fs.Scraped(), fs.Requests())
	}
}

// TestScrapeFleetEmptyRouter: no backends, no panic, empty views.
func TestScrapeFleetEmptyRouter(t *testing.T) {
	r := NewRouter(RouterConfig{Client: &http.Client{Timeout: time.Second}})
	fs := r.ScrapeFleet(context.Background())
	if fs.Scraped() != 0 || fs.Requests() != 0 || fs.CacheHitRatio() != 0 {
		t.Fatalf("empty fleet: %+v", fs)
	}
	_ = httptest.NewServer // keep import stable if helpers move
}
