package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// obsBackend is a phpserve stand-in for the observability contract: it
// echoes X-Request-Id (minting standalone is phpserve's job, not
// exercised here), signals X-Trace-Sampled, retains a per-request span
// tree with simulated cycles, serves it at /tracez?rid=&format=tree,
// and writes a JSON access-log line per request.
type obsBackend struct {
	id   string
	addr string
	srv  *http.Server

	mu      sync.Mutex
	sample  bool // answer every request as sampled
	seenIDs []string
	trees   map[string]*obs.Tree
	log     bytes.Buffer
}

func newObsBackend(t *testing.T, id string, sample bool) *obsBackend {
	t.Helper()
	b := &obsBackend{id: id, sample: sample, trees: make(map[string]*obs.Tree)}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.addr = lis.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		rid := r.URL.Query().Get("rid")
		b.mu.Lock()
		tree := b.trees[rid]
		b.mu.Unlock()
		var trees []*obs.Tree
		if tree != nil {
			trees = append(trees, tree)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(trees)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get(obs.HeaderRequestID)
		b.mu.Lock()
		b.seenIDs = append(b.seenIDs, rid)
		sampled := b.sample
		if sampled {
			// The real backend retains its tree *before* writing the
			// response body (ObserveHTTP runs first), which is what makes
			// the router's post-response stitch fetch race-free.
			b.trees[rid] = backendVMTree(rid, time.Now())
		}
		json.NewEncoder(&b.log).Encode(map[string]any{
			"request_id": rid, "backend": b.id, "sampled": sampled,
		})
		b.mu.Unlock()
		w.Header().Set(obs.HeaderRequestID, rid)
		if sampled {
			w.Header().Set(obs.HeaderTraceSampled, "1")
		}
		w.Header().Set("X-Backend", b.id)
		io.WriteString(w, "page body")
	})
	b.srv = &http.Server{Handler: mux}
	go b.srv.Serve(lis)
	t.Cleanup(func() { b.srv.Close() })
	return b
}

// backendVMTree builds a backend-side render tree carrying simulated
// cycles, shaped like phpserve's request→render trees.
func backendVMTree(rid string, start time.Time) *obs.Tree {
	var v sim.CategoryVec
	v[sim.CatHash] = 700
	var root sim.CategoryVec
	root[sim.CatHash] = 700
	root[sim.CatOther] = 300
	render := &obs.TreeSpan{Name: "render", Start: 50 * time.Microsecond,
		Dur: 2 * time.Millisecond, Cycles: 700, Categories: v}
	return &obs.Tree{
		ID: rid, Worker: 0, Start: start,
		Root: &obs.TreeSpan{Name: "request", Dur: 3 * time.Millisecond,
			Cycles: 1000, Categories: root, Children: []*obs.TreeSpan{render}},
	}
}

func (b *obsBackend) lastSeenID() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.seenIDs) == 0 {
		return ""
	}
	return b.seenIDs[len(b.seenIDs)-1]
}

// logLines decodes the backend's JSON access-log lines.
func (b *obsBackend) logLines(t *testing.T) []map[string]any {
	b.mu.Lock()
	defer b.mu.Unlock()
	return decodeJSONLines(t, b.log.String())
}

func decodeJSONLines(t *testing.T, s string) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad log line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

// obsRouter builds a router with the full observability plane on.
func obsRouter(logBuf *bytes.Buffer, backends ...*obsBackend) (*Router, *obs.TreeRing, *obs.EventRing) {
	ring := obs.NewTreeRing(64)
	events := obs.NewEventRing(64)
	cfg := RouterConfig{
		Client:        &http.Client{Timeout: 5 * time.Second},
		HealthTimeout: time.Second,
		SampleRate:    1,
		TreeRing:      ring,
		Events:        events,
	}
	if logBuf != nil {
		cfg.AccessLog = obs.NewAccessLog(logBuf)
	}
	r := NewRouter(cfg)
	for _, b := range backends {
		r.AddBackend(b.id, b.addr)
	}
	return r, ring, events
}

// TestRequestIDPropagation is the e2e correlation gate: one request ID
// appears in the client response header, the router's access-log line,
// the backend's access-log line, and the router's span-tree root.
func TestRequestIDPropagation(t *testing.T) {
	b := newObsBackend(t, "0", true)
	var logBuf bytes.Buffer
	r, ring, _ := obsRouter(&logBuf, b)
	front := routerServer(t, r)

	resp, err := http.Get(front.URL + "/?page=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	rid := resp.Header.Get(obs.HeaderRequestID)
	if rid == "" {
		t.Fatal("client response missing X-Request-Id")
	}
	if got := resp.Header.Get(obs.HeaderTraceSampled); got != "" {
		t.Fatalf("internal X-Trace-Sampled header leaked to client: %q", got)
	}
	if got := b.lastSeenID(); got != rid {
		t.Fatalf("backend saw id %q, client saw %q", got, rid)
	}
	routerLines := decodeJSONLines(t, logBuf.String())
	if len(routerLines) != 1 {
		t.Fatalf("router log lines = %d, want 1", len(routerLines))
	}
	if got := routerLines[0]["request_id"]; got != rid {
		t.Fatalf("router log request_id = %v, want %s", got, rid)
	}
	if got := routerLines[0]["backend"]; got != "0" {
		t.Fatalf("router log backend = %v, want 0", got)
	}
	backendLines := b.logLines(t)
	if len(backendLines) != 1 || backendLines[0]["request_id"] != rid {
		t.Fatalf("backend log lines = %+v, want one with request_id %s", backendLines, rid)
	}
	trees := ring.Last(0)
	if len(trees) != 1 || trees[0].ID != rid {
		t.Fatalf("router trees = %d, want 1 with ID %s", len(trees), rid)
	}
}

// TestRequestIDInboundPreserved: a client-supplied ID is kept (after
// sanitization) rather than replaced, so an upstream LB's ID survives.
func TestRequestIDInboundPreserved(t *testing.T) {
	b := newObsBackend(t, "0", false)
	r, _, _ := obsRouter(nil, b)
	front := routerServer(t, r)

	req, _ := http.NewRequest(http.MethodGet, front.URL+"/?page=1", nil)
	req.Header.Set(obs.HeaderRequestID, "lb-abc123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.HeaderRequestID); got != "lb-abc123" {
		t.Fatalf("inbound id not preserved: got %q", got)
	}
	if got := b.lastSeenID(); got != "lb-abc123" {
		t.Fatalf("backend saw %q, want lb-abc123", got)
	}
}

// TestStitchBackendTree: a sampled request on a sampled backend yields
// one stitched tree — backend request grafted under the router's proxy
// span, cycles propagated up, telescoping invariant intact.
func TestStitchBackendTree(t *testing.T) {
	b := newObsBackend(t, "0", true)
	r, ring, _ := obsRouter(nil, b)
	front := routerServer(t, r)

	resp, err := http.Get(front.URL + "/?page=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	trees := ring.Last(0)
	if len(trees) != 1 {
		t.Fatalf("trees = %d, want 1", len(trees))
	}
	tree := trees[0]
	chain := obs.FindSpan(tree, "proxy:0")
	if chain == nil {
		t.Fatalf("no proxy:0 span in router tree")
	}
	proxy := chain[len(chain)-1]
	if len(proxy.Children) != 1 || proxy.Children[0].Name != "request" {
		t.Fatalf("proxy span children = %+v, want one backend request span", proxy.Children)
	}
	if proxy.Cycles != 1000 || tree.Root.Cycles != 1000 {
		t.Fatalf("cycles: proxy %g root %g, want 1000/1000", proxy.Cycles, tree.Root.Cycles)
	}
	// Telescoping: summed self vectors equal the root inclusive vector.
	var selfSum sim.CategoryVec
	tree.Root.Walk(func(sp *obs.TreeSpan, _ int) { selfSum = selfSum.Add(sp.SelfCategories()) })
	if selfSum.Total() != tree.Root.Categories.Total() {
		t.Fatalf("telescoping broken: %g != %g", selfSum.Total(), tree.Root.Categories.Total())
	}
	st := r.Stats()
	if st.Stitched != 1 || st.StitchErrors != 0 {
		t.Fatalf("stitched=%d errors=%d, want 1/0", st.Stitched, st.StitchErrors)
	}
}

// TestRouterShedLogged: sheds are always logged (sampling-independent)
// with a request ID and typed reason.
func TestRouterShedLogged(t *testing.T) {
	b := newObsBackend(t, "0", false)
	var logBuf bytes.Buffer
	r, _, _ := obsRouter(&logBuf, b)
	r.SetDraining()
	front := routerServer(t, r)

	resp, err := http.Get(front.URL + "/?page=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	lines := decodeJSONLines(t, logBuf.String())
	if len(lines) != 1 {
		t.Fatalf("log lines = %d, want 1", len(lines))
	}
	if lines[0]["shed_reason"] != RouterShedDraining {
		t.Fatalf("shed_reason = %v, want %s", lines[0]["shed_reason"], RouterShedDraining)
	}
	if lines[0]["request_id"] == "" || lines[0]["request_id"] == nil {
		t.Fatal("shed line missing request_id")
	}
}

// TestRouterEventsOnHealthFlips: SetBackendUp transitions land in the
// event ring with per-kind counts.
func TestRouterEventsOnHealthFlips(t *testing.T) {
	b0, b1 := newObsBackend(t, "0", false), newObsBackend(t, "1", false)
	r, _, events := obsRouter(nil, b0, b1)

	if got := events.Counts()[obs.EventRingChange]; got != 2 {
		t.Fatalf("ring_change after registration = %d, want 2", got)
	}
	r.SetBackendUp("1", false)
	r.SetBackendUp("1", true)
	counts := events.Counts()
	if counts[obs.EventBackendDown] != 1 || counts[obs.EventBackendUp] != 1 {
		t.Fatalf("counts = %+v", counts)
	}
	if counts[obs.EventRingChange] != 4 {
		t.Fatalf("ring_change = %d, want 4 (2 joins + down + up)", counts[obs.EventRingChange])
	}
	last := events.Last(2)
	if len(last) != 2 || last[0].Kind != obs.EventBackendUp || last[1].Kind != obs.EventRingChange {
		t.Fatalf("last events = %+v", last)
	}
}
