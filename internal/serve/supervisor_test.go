package serve

import (
	"context"
	"io"
	"testing"
	"time"
)

// TestProcGracefulStop: SIGTERM reaches the child and Stop returns
// cleanly once it exits (the per-backend half of a rolling restart).
func TestProcGracefulStop(t *testing.T) {
	p, err := StartProc(ProcSpec{
		ID:     "term",
		Binary: "/bin/sh",
		Args:   []string{"-c", `trap 'exit 0' TERM; while :; do sleep 0.05; done`},
		Stdout: io.Discard, Stderr: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Running() {
		t.Fatal("process not running after start")
	}
	time.Sleep(150 * time.Millisecond) // let the shell install its trap
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Stop(ctx); err != nil {
		t.Fatalf("graceful stop escalated to kill: %v", err)
	}
	if p.Running() {
		t.Fatal("process still running after stop")
	}
	if err := p.Restart(); err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
	defer p.Stop(ctx)
	if p.Starts() != 2 || !p.Running() {
		t.Fatalf("after restart: starts=%d running=%v", p.Starts(), p.Running())
	}
}

// TestProcStopEscalatesToKill: a child that ignores SIGTERM is killed
// when the drain context expires, and Stop reports it.
func TestProcStopEscalatesToKill(t *testing.T) {
	p, err := StartProc(ProcSpec{
		ID:     "stubborn",
		Binary: "/bin/sh",
		Args:   []string{"-c", `trap '' TERM; while :; do sleep 0.05; done`},
		Stdout: io.Discard, Stderr: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Give the shell time to install its TERM trap; signalling earlier
	// hits the default disposition and the test measures nothing.
	time.Sleep(150 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if err := p.Stop(ctx); err == nil {
		t.Fatal("Stop should report the escalation to SIGKILL")
	}
	if p.Running() {
		t.Fatal("process survived SIGKILL escalation")
	}
}

// TestSupervisorRespawnsCrashes: a crashing child is respawned by
// Watch; a deliberately stopped one is not.
func TestSupervisorRespawnsCrashes(t *testing.T) {
	s := NewSupervisor()
	s.Backoff = 20 * time.Millisecond
	p, err := s.Add(ProcSpec{
		ID:     "crasher",
		Binary: "/bin/sh",
		Args:   []string{"-c", "exit 1"},
		Stdout: io.Discard, Stderr: io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Watch(ctx); close(done) }()

	waitFor(t, 5*time.Second, func() bool { return p.Starts() >= 3 })

	// A deliberate stop stands the respawner down.
	stopCtx, stopCancel := context.WithTimeout(context.Background(), time.Second)
	defer stopCancel()
	p.Stop(stopCtx)
	starts := p.Starts()
	time.Sleep(5 * s.Backoff)
	if p.Starts() > starts+1 { // at most one in-flight respawn may race the stop
		t.Fatalf("respawner kept restarting after deliberate stop: %d -> %d", starts, p.Starts())
	}

	cancel()
	<-done
	s.StopAll(stopCtx)
}
