package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/vm"
)

func testClusterOpts(backends int) ClusterOptions {
	return ClusterOptions{
		Backends:          backends,
		WorkersPerBackend: 1,
		Config:            vm.Config{},
		App:               "wordpress",
		Seed:              7,
		QueueDepth:        16,
		Timeout:           30 * time.Second,
		CacheCapacity:     64,
		Pages:             128,
		ZipfS:             1.0,
	}
}

// TestClusterDisjointOwnershipAndDeterminism: the ring partitions the
// page stream so no page is served by two backends, outcome counts are
// exact, and a second identical cluster reproduces them bit-for-bit.
func TestClusterDisjointOwnershipAndDeterminism(t *testing.T) {
	run := func() (ClusterStats, *Cluster) {
		opts := testClusterOpts(4)
		// Generous capacity (the cache is sharded LRU, so bare
		// capacity == distinct keys can still evict within an unlucky
		// shard): with no eviction pressure, each distinct page misses
		// exactly once, making ownership exact.
		opts.CacheCapacity = opts.Pages * 8
		cl, err := NewCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		cl.Warm(2)
		cs, err := cl.RunZipf(context.Background(), 120)
		if err != nil {
			t.Fatal(err)
		}
		return cs, cl
	}
	cs, cl := run()

	agg := cs.Aggregate
	if agg.Served != 120 || agg.Submitted != 120 {
		t.Fatalf("served %d submitted %d, want 120/120", agg.Served, agg.Submitted)
	}
	if agg.Shed() != 0 {
		t.Fatalf("cluster run shed %d requests", agg.Shed())
	}
	if agg.CacheHits+agg.CacheMisses+agg.CacheCoalesced != agg.Served {
		t.Fatalf("cache outcomes %d+%d+%d don't partition served %d",
			agg.CacheHits, agg.CacheMisses, agg.CacheCoalesced, agg.Served)
	}
	if agg.CacheCoalesced != 0 {
		t.Fatalf("serial per-backend serving coalesced %d requests", agg.CacheCoalesced)
	}
	if agg.CacheHits == 0 {
		t.Fatal("Zipf stream produced no cache hits")
	}

	// Every backend's cache saw only pages the ring assigned to it, and
	// per-backend cache stats agree with the harness's own counts.
	served := 0
	for i, pb := range cs.PerBackend {
		st := cl.Backends[i].Cache.Stats()
		if int(st.Hits) != pb.Load.CacheHits || int(st.Misses) != pb.Load.CacheMisses {
			t.Fatalf("backend %d: cache stats %d/%d vs harness %d/%d",
				i, st.Hits, st.Misses, pb.Load.CacheHits, pb.Load.CacheMisses)
		}
		// With capacity >= pages owned, every distinct page misses
		// exactly once; the rest are hits.
		if pb.Load.CacheMisses != pb.Pages {
			t.Fatalf("backend %d: %d misses for %d distinct pages", i, pb.Load.CacheMisses, pb.Pages)
		}
		served += pb.Load.Served
	}
	if served != agg.Served {
		t.Fatalf("per-backend served sums to %d, aggregate says %d", served, agg.Served)
	}

	// Determinism: a fresh identical cluster reproduces every count and
	// every simulated cycle (the benchrec canonical-record property
	// depends on the latter).
	cs2, cl2 := run()
	for i := range cs.PerBackend {
		a, b := cs.PerBackend[i].Load, cs2.PerBackend[i].Load
		if a.Served != b.Served || a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses {
			t.Fatalf("backend %d not deterministic: %+v vs %+v", i, a, b)
		}
	}
	// Compare via the dense category vector (deterministic summation
	// order) — the same path benchrec's canonical records use.
	if a, b := cl.MergedMeter().CategoryCyclesVec().Total(), cl2.MergedMeter().CategoryCyclesVec().Total(); a != b {
		t.Fatalf("simulated totals differ across identical runs: %g vs %g", a, b)
	}
}

// TestClusterAggregateHitRatioParity: splitting one capacity budget
// across N hash-partitioned backends keeps the aggregate hit ratio
// close to the single-backend ratio — the acceptance bound is 5
// percentage points.
func TestClusterAggregateHitRatioParity(t *testing.T) {
	ratio := func(backends int) float64 {
		cl, err := NewCluster(testClusterOpts(backends))
		if err != nil {
			t.Fatal(err)
		}
		cl.Warm(2)
		cs, err := cl.RunZipf(context.Background(), 400)
		if err != nil {
			t.Fatal(err)
		}
		return cs.Aggregate.CacheHitRatio()
	}
	single := ratio(1)
	for _, n := range []int{2, 4} {
		got := ratio(n)
		diff := got - single
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05 {
			t.Fatalf("hit ratio at %d backends = %.3f, single = %.3f (drift %.3f > 0.05)", n, got, single, diff)
		}
	}
}

// TestClusterDBWaitOverlaps: with a per-render I/O stall, N backends
// overlap their stalls, so 4 backends finish the same miss-heavy
// stream in well under 4x one backend's serial stall time.
func TestClusterDBWaitOverlaps(t *testing.T) {
	// The stall must dominate render CPU for overlap to show: on a
	// single host core the CPU part serializes no matter how many
	// backends run, exactly like real FPM fleets sized for I/O-bound
	// pages.
	const dbWait = 20 * time.Millisecond
	wall := func(backends int) time.Duration {
		opts := testClusterOpts(backends)
		opts.DBWait = dbWait
		cl, err := NewCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		cl.Warm(2)
		cs, err := cl.RunZipf(context.Background(), 60)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Aggregate.Served != 60 {
			t.Fatalf("served %d", cs.Aggregate.Served)
		}
		return cs.Aggregate.Wall
	}
	w1, w4 := wall(1), wall(4)
	// The exact speedup depends on the straggler backend's share; even
	// a conservative bound (>1.5x) proves the stalls overlap rather
	// than serialize.
	if speedup := float64(w1) / float64(w4); speedup < 1.5 {
		t.Fatalf("4-backend speedup %.2fx (w1=%v w4=%v): stalls are not overlapping", speedup, w1, w4)
	}
}

func TestClusterOptionValidation(t *testing.T) {
	bad := []func(*ClusterOptions){
		func(o *ClusterOptions) { o.Backends = 0 },
		func(o *ClusterOptions) { o.WorkersPerBackend = 0 },
		func(o *ClusterOptions) { o.CacheCapacity = 0 },
		func(o *ClusterOptions) { o.Pages = 0 },
		func(o *ClusterOptions) { o.DBWait = -time.Second },
	}
	for i, mutate := range bad {
		opts := testClusterOpts(1)
		mutate(&opts)
		if _, err := NewCluster(opts); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
	cl, err := NewCluster(testClusterOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RunZipf(context.Background(), 0); err == nil {
		t.Fatal("zero-request run accepted")
	}
}
