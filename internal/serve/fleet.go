package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/sim"
)

// Fleet aggregation: the router scrapes each healthy backend's /metrics
// and /profilez and merges them into one cluster view — counters
// summed, histograms bucket-wise merged, profiles merged by function —
// which GET /clusterz serves and the router's own /metrics summarizes
// as cluster-level gauges (the whole-fleet version of the paper's
// Fig. 1 headline numbers).

// BackendScrape is one backend's contribution to a fleet scrape.
type BackendScrape struct {
	// ID and Addr identify the backend.
	ID   string
	Addr string
	// Err is the scrape failure, nil on success. A failed backend
	// contributes nothing to the merged views.
	Err error
	// Families is the backend's parsed /metrics exposition.
	Families []*obs.MetricFamily
	// Profile is the backend's windowed flat profile from
	// /profilez?format=json.
	Profile profile.Profile
}

// Requests returns the backend's served-request count from its metrics.
func (b BackendScrape) Requests() float64 {
	return obs.FindFamily(b.Families, "phpserve_requests_total").Sum()
}

// CacheHits and CacheLookups read the backend's response-cache counters
// (both 0 when the backend runs cache-less).
func (b BackendScrape) CacheHits() float64 {
	return obs.FindFamily(b.Families, "phpserve_cache_hits_total").Sum()
}

// CacheLookups returns hits + misses + coalesced waits.
func (b BackendScrape) CacheLookups() float64 {
	return b.CacheHits() +
		obs.FindFamily(b.Families, "phpserve_cache_misses_total").Sum() +
		obs.FindFamily(b.Families, "phpserve_cache_coalesced_total").Sum()
}

// FleetScrape is one pass over every healthy backend plus the merged
// cluster views.
type FleetScrape struct {
	// Time is when the scrape ran.
	Time time.Time
	// Backends holds per-backend results in registration order, healthy
	// backends only (down backends are not probed).
	Backends []BackendScrape
	// Merged is the fleet-wide exposition: every successful backend's
	// families folded together (counters summed, histogram buckets
	// merged).
	Merged []*obs.MetricFamily
	// Profile is the cluster-wide flat profile, merged by (function,
	// category) with recomputed shares.
	Profile profile.Profile
}

// Scraped returns how many backends answered both endpoints.
func (f FleetScrape) Scraped() int {
	n := 0
	for _, b := range f.Backends {
		if b.Err == nil {
			n++
		}
	}
	return n
}

// CacheHitRatio returns the aggregate response-cache hit ratio across
// the fleet (0 when no lookups), computed from merged counters — the
// correct way; averaging per-backend ratios would weight idle backends
// equally with loaded ones.
func (f FleetScrape) CacheHitRatio() float64 {
	hits := obs.FindFamily(f.Merged, "phpserve_cache_hits_total").Sum()
	lookups := hits +
		obs.FindFamily(f.Merged, "phpserve_cache_misses_total").Sum() +
		obs.FindFamily(f.Merged, "phpserve_cache_coalesced_total").Sum()
	if lookups == 0 {
		return 0
	}
	return hits / lookups
}

// Requests returns the fleet-wide served-request total.
func (f FleetScrape) Requests() float64 {
	return obs.FindFamily(f.Merged, "phpserve_requests_total").Sum()
}

// Latency returns the merged fleet latency distribution.
func (f FleetScrape) Latency() obs.HistogramSnapshot {
	return obs.FindFamily(f.Merged, "phpserve_request_latency_seconds").Histogram()
}

// ScrapeFleet pulls /metrics and /profilez?format=json from every
// backend the router currently considers up, concurrently, and merges
// the successes. Down backends are skipped entirely (their last-known
// numbers would double-count restarts); failed scrapes appear in
// Backends with Err set.
func (r *Router) ScrapeFleet(ctx context.Context) FleetScrape {
	r.mu.Lock()
	type target struct{ id, addr string }
	var targets []target
	for _, id := range r.order {
		if b := r.backends[id]; b.up {
			targets = append(targets, target{id, b.addr})
		}
	}
	r.mu.Unlock()

	out := FleetScrape{Time: time.Now(), Backends: make([]BackendScrape, len(targets))}
	var wg sync.WaitGroup
	for i, tg := range targets {
		wg.Add(1)
		go func(i int, tg target) {
			defer wg.Done()
			out.Backends[i] = r.scrapeBackend(ctx, tg.id, tg.addr)
		}(i, tg)
	}
	wg.Wait()

	var profiles []profile.Profile
	for _, b := range out.Backends {
		if b.Err != nil {
			continue
		}
		out.Merged = obs.MergeFamilies(out.Merged, b.Families)
		profiles = append(profiles, b.Profile)
	}
	out.Profile = profile.Merge(profiles...)
	return out
}

// scrapeBackend pulls one backend's /metrics and /profilez.
func (r *Router) scrapeBackend(ctx context.Context, id, addr string) BackendScrape {
	b := BackendScrape{ID: id, Addr: addr}
	body, err := r.fetchBody(ctx, "http://"+addr+"/metrics")
	if err != nil {
		b.Err = err
		return b
	}
	b.Families, err = obs.ParsePromText(body)
	body.Close()
	if err != nil {
		b.Err = err
		return b
	}
	pb, err := r.fetchBody(ctx, "http://"+addr+"/profilez?format=json&n=0")
	if err != nil {
		b.Err = err
		return b
	}
	b.Profile, err = decodeProfilez(pb)
	pb.Close()
	if err != nil {
		b.Err = err
	}
	return b
}

// fetchBody issues one GET and returns the response body reader, or an
// error for any non-200 answer.
func (r *Router) fetchBody(ctx context.Context, url string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return nil, fmt.Errorf("serve: scrape %s: %s", url, resp.Status)
	}
	return resp.Body, nil
}

// profilezDoc is the subset of phpserve's /profilez?format=json shape
// the merger needs: the complete per-function cycle rows.
type profilezDoc struct {
	Top []struct {
		Name     string  `json:"name"`
		Category string  `json:"category"`
		Cycles   float64 `json:"cycles"`
	} `json:"top"`
}

// decodeProfilez rebuilds a profile.Profile from a backend's
// /profilez?format=json body (requested with n=0, so Top holds every
// function). Unknown category names fold into CatOther rather than
// failing the scrape: profiles merge by cycles, and a version-skewed
// backend's new category should not blind the fleet view.
func decodeProfilez(r io.Reader) (profile.Profile, error) {
	var doc profilezDoc
	if err := json.NewDecoder(io.LimitReader(r, 8<<20)).Decode(&doc); err != nil {
		return profile.Profile{}, fmt.Errorf("serve: profilez decode: %w", err)
	}
	raw := make([]profile.RawEntry, 0, len(doc.Top))
	for _, e := range doc.Top {
		cat, _ := sim.CategoryByName(e.Category)
		raw = append(raw, profile.RawEntry{Name: e.Name, Category: cat, Cycles: e.Cycles})
	}
	return profile.FromCycles(raw), nil
}
