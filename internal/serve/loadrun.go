package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// LoadOptions drives RunLoad: a closed-loop client fleet submitting
// requests through the scheduler, the way cmd/loadgen exercises the
// lifecycle layer.
type LoadOptions struct {
	// Requests is the total number of submissions across all clients.
	Requests int
	// Clients is how many closed-loop submitters run concurrently
	// (<= 0 means one per pool worker). More clients than
	// workers+queue forces shedding, which is how overload is made
	// measurable on purpose.
	Clients int
	// CtxSwitchEvery injects a context switch on a worker every n
	// requests it serves (0 disables), matching LoadGenerator.
	CtxSwitchEvery int
	// Collector, when non-nil, observes every served request and
	// samples span trees the way Pool.Run's collector path does.
	Collector *obs.Collector
}

// LoadStats is what a scheduler-driven load run observed: per-outcome
// counts and the queue-wait distribution. Simulated costs for the same
// run come from Pool.GatherResult afterwards.
type LoadStats struct {
	// Submitted is how many requests the clients actually issued
	// (less than Requests when the run was cancelled mid-flight).
	Submitted int
	// Served, ShedOverload, ShedDeadline, ShedDraining partition
	// Submitted by outcome.
	Served       int
	ShedOverload int
	ShedDeadline int
	ShedDraining int
	// QueueWait summarizes the time admitted requests waited for a
	// worker.
	QueueWait workload.LatencyStats
	// Wall is the run's wall-clock duration.
	Wall time.Duration
}

// Shed returns the total requests rejected for any reason.
func (ls LoadStats) Shed() int { return ls.ShedOverload + ls.ShedDeadline + ls.ShedDraining }

// RunLoad submits opts.Requests requests through the scheduler from a
// closed-loop client fleet and reports the admission outcomes. Clients
// stop submitting when ctx is done (in-flight requests finish first),
// so a SIGINT-cancelled run returns the partial stats for everything
// that completed.
func RunLoad(ctx context.Context, s *Scheduler, opts LoadOptions) LoadStats {
	clients := opts.Clients
	if clients <= 0 {
		clients = s.pool.Size()
	}
	if clients > opts.Requests {
		clients = opts.Requests
	}

	var next int64 // next request index to claim; claims beyond Requests stop the client
	var mu sync.Mutex
	var ls LoadStats
	var waits []time.Duration

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if atomic.AddInt64(&next, 1) > int64(opts.Requests) {
					return
				}
				wait, err := s.Do(ctx, func(w *workload.Worker) error {
					if opts.Collector != nil {
						page, sp, err := w.ServeSpanCtx(ctx, opts.Collector.ShouldSample())
						if err != nil {
							return err
						}
						opts.Collector.Observe(sp, len(page))
					} else if _, err := w.ServeOneCtx(ctx); err != nil {
						return err
					}
					if opts.CtxSwitchEvery > 0 && w.Served()%opts.CtxSwitchEvery == 0 {
						w.Runtime().ContextSwitch()
					}
					return nil
				})
				mu.Lock()
				ls.Submitted++
				switch err {
				case nil:
					ls.Served++
					waits = append(waits, wait)
				case ErrOverloaded:
					ls.ShedOverload++
				case ErrDeadline:
					ls.ShedDeadline++
				case ErrDraining:
					ls.ShedDraining++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	ls.Wall = time.Since(start)
	ls.QueueWait = workload.LatencyStatsFrom(waits)
	return ls
}
