package serve

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/workload"
)

// LoadOptions drives RunLoad: a closed-loop client fleet submitting
// requests through the scheduler, the way cmd/loadgen exercises the
// lifecycle layer.
type LoadOptions struct {
	// Requests is the total number of submissions across all clients.
	Requests int
	// Clients is how many closed-loop submitters run concurrently
	// (<= 0 means one per pool worker). More clients than
	// workers+queue forces shedding, which is how overload is made
	// measurable on purpose.
	Clients int
	// CtxSwitchEvery injects a context switch on a worker every n
	// requests it serves (0 disables), matching LoadGenerator.
	CtxSwitchEvery int
	// Collector, when non-nil, observes every served request and
	// samples span trees the way Pool.Run's collector path does.
	Collector *obs.Collector
	// Cache, when non-nil, routes every request through the response
	// cache (Scheduler.DoCached) instead of a plain render. Requires
	// PageKey and a pool whose workload has page identity.
	Cache *cache.Cache
	// PageKey draws the next request's page index (e.g. ZipfKeys.Next);
	// it is what gives requests their popularity distribution. With a
	// Cache it also names the cache key; without one, each render still
	// goes through the drawn page's identity (requires a PageApp pool) —
	// the uncached page-keyed traffic shape the scripted tier scenarios
	// use.
	PageKey func() int
	// IDs mints per-request correlation IDs (the X-Request-Id form):
	// every submission carries an ID, sampled access-log lines record
	// it, and failed submissions retain it in LoadStats.ErrorSamples so
	// operators can grep logs by ID. Nil with a Collector set gets a
	// fresh source; nil without one disables minting entirely — with no
	// observer there is nothing to correlate against, and the bare
	// benchmark path must not pay an allocation per request for an ID
	// nobody records.
	IDs *obs.IDSource
}

// ErrorSample is one failed submission's correlation ID and error,
// retained so a run's error report names greppable request IDs.
type ErrorSample struct {
	ID  string
	Err error
}

// maxErrorSamples bounds LoadStats.ErrorSamples; overload runs shed
// thousands of requests and a sample is all an operator needs.
const maxErrorSamples = 8

// LoadStats is what a scheduler-driven load run observed: per-outcome
// counts and the queue-wait distribution. Simulated costs for the same
// run come from Pool.GatherResult afterwards.
type LoadStats struct {
	// Submitted is how many requests the clients actually issued
	// (less than Requests when the run was cancelled mid-flight).
	Submitted int
	// Served, ShedOverload, ShedDeadline, ShedCanceled, ShedDraining
	// partition Submitted by outcome.
	Served       int
	ShedOverload int
	ShedDeadline int
	ShedCanceled int
	ShedDraining int
	// QueueWait summarizes the time admitted requests waited for a
	// worker.
	QueueWait workload.LatencyStats
	// Latency is the end-to-end submit-to-response distribution over
	// served requests, cached or not — queue wait plus render (or cache
	// lookup). It is the client-visible latency benchrec records.
	Latency workload.LatencyStats
	// Wall is the run's wall-clock duration.
	Wall time.Duration

	// CacheHits, CacheMisses, CacheCoalesced partition served requests
	// by cache outcome (all zero when the run had no cache).
	CacheHits      int
	CacheMisses    int
	CacheCoalesced int
	// HitLatency and MissLatency split end-to-end request latency by
	// cache outcome; coalesced waiters count as misses (they waited for
	// a render, just not their own).
	HitLatency  workload.LatencyStats
	MissLatency workload.LatencyStats

	// ErrorSamples retains the first maxErrorSamples failed submissions'
	// correlation IDs and errors (see LoadOptions.IDs).
	ErrorSamples []ErrorSample

	// rawLatencies retains the individual served-request latencies so a
	// cluster run can recompute percentiles across backends.
	rawLatencies []time.Duration
}

// CacheHitRatio returns the fraction of served requests answered
// directly from the cache (0 when the run had no cache traffic).
func (ls LoadStats) CacheHitRatio() float64 {
	total := ls.CacheHits + ls.CacheMisses + ls.CacheCoalesced
	if total == 0 {
		return 0
	}
	return float64(ls.CacheHits) / float64(total)
}

// Shed returns the total requests rejected for any reason.
func (ls LoadStats) Shed() int {
	return ls.ShedOverload + ls.ShedDeadline + ls.ShedCanceled + ls.ShedDraining
}

// RunLoad submits opts.Requests requests through the scheduler from a
// closed-loop client fleet and reports the admission outcomes. Clients
// stop submitting when ctx is done (in-flight requests finish first),
// so a SIGINT-cancelled run returns the partial stats for everything
// that completed.
func RunLoad(ctx context.Context, s *Scheduler, opts LoadOptions) LoadStats {
	clients := opts.Clients
	if clients <= 0 {
		clients = s.pool.Size()
	}
	if clients > opts.Requests {
		clients = opts.Requests
	}
	ids := opts.IDs
	if ids == nil && opts.Collector != nil {
		ids = obs.NewIDSource()
	}

	var next int64 // next request index to claim; claims beyond Requests stop the client
	var mu sync.Mutex
	var ls LoadStats
	var waits, lats, hitLats, missLats []time.Duration
	// Sized up front so the append-under-mutex in the hot loop never
	// reallocates mid-run.
	waits = make([]time.Duration, 0, opts.Requests)
	lats = make([]time.Duration, 0, opts.Requests)
	if opts.Cache != nil {
		hitLats = make([]time.Duration, 0, opts.Requests)
		missLats = make([]time.Duration, 0, opts.Requests)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-client loop state is hoisted so the render callbacks
			// below are allocated once per client, not once per request:
			// the closures read page/rid through these variables, which
			// are only rewritten between (synchronous) submissions.
			var (
				page     int
				rid      string
				pageKeys []string // lazy page-index -> "page:N" table; Zipf traffic repays it fast
			)
			keyFor := func(p int) string {
				for p >= len(pageKeys) {
					pageKeys = append(pageKeys, "")
				}
				if pageKeys[p] == "" {
					pageKeys[p] = "page:" + strconv.Itoa(p)
				}
				return pageKeys[p]
			}
			cachedRender := func(w *workload.Worker) ([]byte, error) {
				profile := opts.Collector != nil && opts.Collector.ShouldSample()
				body, sp, rerr := w.ServePageSpanCtx(ctx, page, profile)
				if rerr != nil {
					return nil, rerr
				}
				if opts.Collector != nil {
					opts.Collector.ObserveHTTP(sp, len(body), obs.RequestMeta{RequestID: rid})
				}
				if opts.CtxSwitchEvery > 0 && w.Served()%opts.CtxSwitchEvery == 0 {
					w.Runtime().ContextSwitch()
				}
				return body, nil
			}
			plainRender := func(w *workload.Worker) error {
				profile := opts.Collector != nil && opts.Collector.ShouldSample()
				var (
					body []byte
					sp   obs.Span
					err  error
				)
				if opts.PageKey != nil {
					body, sp, err = w.ServePageSpanCtx(ctx, page, profile)
				} else {
					body, sp, err = w.ServeSpanCtx(ctx, profile)
				}
				if err != nil {
					return err
				}
				if opts.Collector != nil {
					opts.Collector.ObserveHTTP(sp, len(body), obs.RequestMeta{RequestID: rid})
				}
				if opts.CtxSwitchEvery > 0 && w.Served()%opts.CtxSwitchEvery == 0 {
					w.Runtime().ContextSwitch()
				}
				return nil
			}
			for ctx.Err() == nil {
				if atomic.AddInt64(&next, 1) > int64(opts.Requests) {
					return
				}
				rid = ""
				if ids != nil {
					rid = ids.Next()
				}
				var wait time.Duration
				var err error
				var outcome cache.Outcome
				var lat time.Duration
				if opts.PageKey != nil {
					page = opts.PageKey()
				}
				if opts.Cache != nil {
					t0 := time.Now()
					_, outcome, wait, err = s.DoCached(ctx, opts.Cache, keyFor(page), cachedRender)
					lat = time.Since(t0)
				} else {
					t0 := time.Now()
					wait, err = s.Do(ctx, plainRender)
					lat = time.Since(t0)
				}
				mu.Lock()
				ls.Submitted++
				switch err {
				case nil:
					ls.Served++
					waits = append(waits, wait)
					lats = append(lats, lat)
					if opts.Cache != nil {
						switch outcome {
						case cache.Hit:
							ls.CacheHits++
							hitLats = append(hitLats, lat)
						case cache.Coalesced:
							ls.CacheCoalesced++
							missLats = append(missLats, lat)
						default:
							ls.CacheMisses++
							missLats = append(missLats, lat)
						}
					}
				case ErrOverloaded:
					ls.ShedOverload++
				case ErrDeadline:
					ls.ShedDeadline++
				case ErrCanceled:
					ls.ShedCanceled++
				case ErrDraining:
					ls.ShedDraining++
				}
				if err != nil && ids != nil && len(ls.ErrorSamples) < maxErrorSamples {
					ls.ErrorSamples = append(ls.ErrorSamples, ErrorSample{ID: rid, Err: err})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	ls.Wall = time.Since(start)
	ls.QueueWait = workload.LatencyStatsFrom(waits)
	ls.Latency = workload.LatencyStatsFrom(lats)
	ls.HitLatency = workload.LatencyStatsFrom(hitLats)
	ls.MissLatency = workload.LatencyStatsFrom(missLats)
	return ls
}
