package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// ClusterOptions configures an in-process FPM-style cluster: N complete
// backend stacks (pool + scheduler + response cache) behind one
// consistent-hash ring, the same topology cmd/phprouter builds out of
// real processes. The in-process form exists for benchmarks and tests,
// where process spawning would cost determinism and wall clock.
type ClusterOptions struct {
	// Backends is the number of backend stacks (>= 1).
	Backends int
	// WorkersPerBackend sizes each backend's pool (>= 1).
	WorkersPerBackend int
	// Config is the per-worker VM configuration.
	Config vm.Config
	// App names the workload every backend serves (must support pages).
	App string
	// Seed is the base RNG seed; backends share it so page identity is
	// cluster-wide (page N renders identically on every backend).
	Seed int64
	// QueueDepth and Timeout configure each backend's scheduler.
	QueueDepth int
	Timeout    time.Duration
	// CacheCapacity is the TOTAL cached-response budget across the
	// cluster, split evenly per backend (minimum 1 each). Fixing the
	// total keeps the aggregate hit ratio comparable across backend
	// counts: the ring partitions pages by hash, not popularity, so
	// each backend sees a popularity-scaled slice of the same Zipf
	// curve and a proportional slice of the capacity.
	CacheCapacity int
	// Pages and ZipfS describe the page popularity distribution.
	Pages int
	ZipfS float64
	// DBWait is the simulated per-render backend I/O stall (database
	// round trips) each miss holds its worker for — the reason FPM
	// fleets run many processes per core. Zero disables it.
	DBWait time.Duration
	// RingReplicas is the virtual-node count per backend (<= 0 selects
	// cache.DefaultRingReplicas).
	RingReplicas int
}

func (o *ClusterOptions) normalize() error {
	if o.Backends <= 0 {
		return fmt.Errorf("serve: cluster needs at least 1 backend, got %d", o.Backends)
	}
	if o.WorkersPerBackend <= 0 {
		return fmt.Errorf("serve: cluster needs at least 1 worker per backend, got %d", o.WorkersPerBackend)
	}
	if o.CacheCapacity <= 0 {
		return fmt.Errorf("serve: cluster needs a positive total cache capacity, got %d", o.CacheCapacity)
	}
	if o.Pages <= 0 {
		return fmt.Errorf("serve: cluster needs a positive page count, got %d", o.Pages)
	}
	if o.DBWait < 0 {
		return fmt.Errorf("serve: cluster dbwait must be >= 0, got %v", o.DBWait)
	}
	return nil
}

// ClusterBackend is one backend stack of an in-process Cluster.
type ClusterBackend struct {
	// ID is the backend's ring member name ("0", "1", ...).
	ID string
	// Pool, Sched, Cache are the backend's serving stack.
	Pool  *workload.Pool
	Sched *Scheduler
	Cache *cache.Cache
}

// Cluster is the in-process cluster harness: the benchrec cluster_zipf
// scenarios and the cluster e2e tests drive it directly, with no
// processes or sockets between router math and backend stacks.
type Cluster struct {
	// Opts echoes the normalized construction options.
	Opts ClusterOptions
	// Backends holds the stacks, index == backend id.
	Backends []*ClusterBackend
	// Ring is the cache-affinity ring over backend ids.
	Ring *cache.Ring
}

// NewCluster builds the backend stacks and ring. Pools share the base
// seed (page identity is cluster-wide); each backend's cache gets an
// even share of the total capacity.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	cl := &Cluster{Opts: opts, Ring: cache.NewRing(opts.RingReplicas)}
	for i := 0; i < opts.Backends; i++ {
		cl.Ring.Add(strconv.Itoa(i))
	}
	// Split the total capacity budget proportionally to each backend's
	// owned share of the page universe (which the cluster, unlike a
	// generic router, knows exactly). A plain total/N split leaves the
	// backend that hashes slightly more pages under-provisioned, which
	// shows up directly as an aggregate hit-ratio gap vs. single-process.
	owned := make([]int, opts.Backends)
	for p := 0; p < opts.Pages; p++ {
		owned[cl.OwnerOf(p)]++
	}
	for i := 0; i < opts.Backends; i++ {
		perCache := opts.CacheCapacity * owned[i] / opts.Pages
		if perCache < 1 {
			perCache = 1
		}
		pool, err := workload.NewPoolSharedSeed(opts.WorkersPerBackend, opts.Config, opts.App, opts.Seed)
		if err != nil {
			return nil, err
		}
		b := &ClusterBackend{
			ID:    strconv.Itoa(i),
			Pool:  pool,
			Sched: NewScheduler(pool, Config{QueueDepth: opts.QueueDepth, Timeout: opts.Timeout}),
			Cache: cache.New(cache.Config{Capacity: perCache}),
		}
		cl.Backends = append(cl.Backends, b)
	}
	return cl, nil
}

// PageKey returns the cache key for a page index — the same "page:N"
// form phpserve and RunLoad use, so ring ownership matches what a real
// router would compute.
func PageKey(page int) string { return "page:" + strconv.Itoa(page) }

// OwnerOf returns the backend index owning a page's key.
func (c *Cluster) OwnerOf(page int) int {
	m, _ := c.Ring.Owner(PageKey(page))
	i, _ := strconv.Atoi(m)
	return i
}

// Warm runs warmup requests on every backend pool concurrently (each
// pool's warmup stream is deterministic on its own, so overlapping them
// costs nothing but saves wall clock).
func (c *Cluster) Warm(warmup int) {
	var wg sync.WaitGroup
	for _, b := range c.Backends {
		wg.Add(1)
		go func(b *ClusterBackend) {
			defer wg.Done()
			b.Pool.Run(workload.LoadGenerator{Warmup: warmup}, 0)
		}(b)
	}
	wg.Wait()
}

// BackendClusterStats pairs one backend with what it observed during a
// RunZipf: its own LoadStats plus the distinct pages routed to it.
type BackendClusterStats struct {
	// ID is the backend's ring member name.
	ID string
	// Pages is how many distinct pages the ring assigned this backend
	// during the run.
	Pages int
	// Load is the backend's own closed-loop stats (Wall covers only
	// this backend's serving span).
	Load LoadStats
}

// ClusterStats aggregates a RunZipf across backends.
type ClusterStats struct {
	// Aggregate sums outcome counts across backends; its Wall is the
	// whole run's span (max over backends), so Aggregate throughput is
	// cluster throughput.
	Aggregate LoadStats
	// PerBackend holds each backend's own view, index == backend id.
	PerBackend []BackendClusterStats
}

// RunZipf draws `requests` pages from the cluster's Zipf distribution,
// partitions them by ring owner, and serves each backend's share on
// that backend — one closed-loop client per backend, pages in draw
// order. Serial-per-backend serving keeps every cache outcome
// deterministic (no cross-client races, no coalescing) while backends
// overlap in wall clock; with a DBWait stall per render, N backends
// overlap N stalls, which is the cluster's near-linear scaling claim.
func (c *Cluster) RunZipf(ctx context.Context, requests int) (ClusterStats, error) {
	if requests <= 0 {
		return ClusterStats{}, fmt.Errorf("serve: cluster run needs a positive request count, got %d", requests)
	}
	keys, err := workload.NewZipfKeys(c.Opts.Seed, c.Opts.ZipfS, c.Opts.Pages)
	if err != nil {
		return ClusterStats{}, err
	}
	// Partition the draw stream up front: request k goes to the ring
	// owner of its page key, preserving draw order within each backend.
	streams := make([][]int, len(c.Backends))
	pageSets := make([]map[int]bool, len(c.Backends))
	for i := range pageSets {
		pageSets[i] = make(map[int]bool)
	}
	for k := 0; k < requests; k++ {
		page := keys.Next()
		owner := c.OwnerOf(page)
		streams[owner] = append(streams[owner], page)
		pageSets[owner][page] = true
	}

	stats := ClusterStats{PerBackend: make([]BackendClusterStats, len(c.Backends))}
	start := time.Now()
	var wg sync.WaitGroup
	for i, b := range c.Backends {
		wg.Add(1)
		go func(i int, b *ClusterBackend) {
			defer wg.Done()
			stats.PerBackend[i] = BackendClusterStats{
				ID:    b.ID,
				Pages: len(pageSets[i]),
				Load:  serveStream(ctx, b, streams[i], c.Opts.DBWait),
			}
		}(i, b)
	}
	wg.Wait()
	wall := time.Since(start)

	agg := &stats.Aggregate
	var lats []time.Duration
	for _, pb := range stats.PerBackend {
		agg.Submitted += pb.Load.Submitted
		agg.Served += pb.Load.Served
		agg.ShedOverload += pb.Load.ShedOverload
		agg.ShedDeadline += pb.Load.ShedDeadline
		agg.ShedCanceled += pb.Load.ShedCanceled
		agg.ShedDraining += pb.Load.ShedDraining
		agg.CacheHits += pb.Load.CacheHits
		agg.CacheMisses += pb.Load.CacheMisses
		agg.CacheCoalesced += pb.Load.CacheCoalesced
		lats = append(lats, pb.Load.rawLatencies...)
	}
	agg.Wall = wall
	agg.Latency = workload.LatencyStatsFrom(lats)
	return stats, nil
}

// serveStream serves one backend's page stream serially through its
// scheduler and cache, stalling dbWait per successful render (the
// simulated database round trips, charged while the worker is held —
// FPM semantics).
func serveStream(ctx context.Context, b *ClusterBackend, pages []int, dbWait time.Duration) LoadStats {
	var ls LoadStats
	start := time.Now()
	for _, page := range pages {
		if ctx.Err() != nil {
			break
		}
		page := page
		t0 := time.Now()
		_, outcome, _, err := b.Sched.DoCached(ctx, b.Cache, PageKey(page),
			func(w *workload.Worker) ([]byte, error) {
				body, _, rerr := w.ServePageSpanCtx(ctx, page, false)
				if rerr != nil {
					return nil, rerr
				}
				if err := sleepCtx(ctx, dbWait); err != nil {
					return nil, err
				}
				return body, nil
			})
		lat := time.Since(t0)
		ls.Submitted++
		switch err {
		case nil:
			ls.Served++
			ls.rawLatencies = append(ls.rawLatencies, lat)
			switch outcome {
			case cache.Hit:
				ls.CacheHits++
			case cache.Coalesced:
				ls.CacheCoalesced++
			default:
				ls.CacheMisses++
			}
		case ErrOverloaded:
			ls.ShedOverload++
		case ErrDeadline:
			ls.ShedDeadline++
		case ErrCanceled:
			ls.ShedCanceled++
		case ErrDraining:
			ls.ShedDraining++
		}
	}
	ls.Wall = time.Since(start)
	ls.Latency = workload.LatencyStatsFrom(ls.rawLatencies)
	return ls
}

// sleepCtx sleeps for d or until ctx is done, returning the ctx error
// when the sleep was cut short. A non-positive d returns immediately.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// MergedMeter aggregates simulated costs across every backend: all pool
// meters merged in backend order, then each backend cache's lookup
// charges, so cluster totals stay exact the way single-process totals
// are.
func (c *Cluster) MergedMeter() *sim.Meter {
	mt := sim.NewMeter(sim.DefaultCostModel())
	for _, b := range c.Backends {
		mt.Merge(b.Pool.MergedMeter())
		b.Cache.MergeMeter(mt)
	}
	return mt
}
