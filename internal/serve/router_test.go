package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
)

// testBackend is a minimal phpserve stand-in: a real response cache
// behind an HTTP handler with /healthz, draining state, X-Cache and
// X-Backend headers, and a restartable listener on a stable address —
// everything the router contract needs, none of the VM cost.
type testBackend struct {
	id   string
	addr string

	mu       sync.Mutex
	draining bool
	pages    map[int]int // page -> times rendered or served here
	cache    *cache.Cache
	srv      *http.Server
	lis      net.Listener
}

func newTestBackend(t *testing.T, id string) *testBackend {
	t.Helper()
	b := &testBackend{
		id:    id,
		pages: make(map[int]int),
		cache: cache.New(cache.Config{Capacity: 1024}),
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.addr = lis.Addr().String()
	b.serveOn(lis)
	t.Cleanup(func() { b.stop() })
	return b
}

func (b *testBackend) serveOn(lis net.Listener) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		draining := b.draining
		b.mu.Unlock()
		if draining {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		draining := b.draining
		b.mu.Unlock()
		if draining {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		page, _ := strconv.Atoi(r.URL.Query().Get("page"))
		body, outcome, err := b.cache.GetOrFill(r.Context(), "page:"+strconv.Itoa(page), func() ([]byte, error) {
			return []byte(fmt.Sprintf("page %d body", page)), nil
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		b.mu.Lock()
		b.pages[page]++
		b.mu.Unlock()
		w.Header().Set("X-Cache", map[bool]string{true: "HIT", false: "MISS"}[outcome == cache.Hit])
		w.Header().Set("X-Backend", b.id)
		w.Write(body)
	})
	srv := &http.Server{Handler: mux}
	b.mu.Lock()
	b.srv, b.lis = srv, lis
	b.mu.Unlock()
	go srv.Serve(lis)
}

func (b *testBackend) setDraining(v bool) {
	b.mu.Lock()
	b.draining = v
	b.mu.Unlock()
}

// stop closes the listener and all connections — subsequent dials are
// refused, like a process mid-restart.
func (b *testBackend) stop() {
	b.mu.Lock()
	srv := b.srv
	b.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// restart re-listens on the same address with fresh draining=false
// (cache retained, as a warm restart would not be — irrelevant to
// these tests, which assert routing, not backend warmth).
func (b *testBackend) restart(t *testing.T) {
	t.Helper()
	b.setDraining(false)
	var lis net.Listener
	var err error
	for i := 0; i < 50; i++ { // the old socket can linger briefly
		lis, err = net.Listen("tcp", b.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("relisten %s: %v", b.addr, err)
	}
	b.serveOn(lis)
}

func (b *testBackend) pagesSeen() map[int]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int]int, len(b.pages))
	for k, v := range b.pages {
		out[k] = v
	}
	return out
}

func newTestRouter(backends ...*testBackend) *Router {
	r := NewRouter(RouterConfig{
		Client:        &http.Client{Timeout: 5 * time.Second},
		HealthTimeout: time.Second,
	})
	for _, b := range backends {
		r.AddBackend(b.id, b.addr)
	}
	return r
}

func routerServer(t *testing.T, r *Router) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		key := "page:" + req.URL.Query().Get("page")
		r.Proxy(w, req, key)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestRouterDisjointCacheOwnership is the tentpole e2e property: with
// two backends, every page key is owned by exactly one backend (checked
// via X-Backend), repeat requests for a page are HITs on that same
// backend (checked via X-Cache and the backends' own hit counters), and
// the two backends' page sets are disjoint.
func TestRouterDisjointCacheOwnership(t *testing.T) {
	b0, b1 := newTestBackend(t, "0"), newTestBackend(t, "1")
	r := newTestRouter(b0, b1)
	front := routerServer(t, r)

	const pages = 32
	ownerOf := make(map[int]string)
	for round := 0; round < 3; round++ {
		for page := 0; page < pages; page++ {
			resp, err := http.Get(front.URL + "/?page=" + strconv.Itoa(page))
			if err != nil {
				t.Fatalf("round %d page %d: %v", round, page, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d page %d: status %d", round, page, resp.StatusCode)
			}
			backend := resp.Header.Get("X-Backend")
			xc := resp.Header.Get("X-Cache")
			if prev, ok := ownerOf[page]; ok && prev != backend {
				t.Fatalf("page %d moved from backend %s to %s with stable membership", page, prev, backend)
			}
			ownerOf[page] = backend
			if round == 0 && xc != "MISS" {
				t.Fatalf("first request for page %d: X-Cache = %s, want MISS", page, xc)
			}
			if round > 0 && xc != "HIT" {
				t.Fatalf("repeat request for page %d on backend %s: X-Cache = %s, want HIT", page, backend, xc)
			}
		}
	}

	// Disjoint ownership, observed server-side.
	seen0, seen1 := b0.pagesSeen(), b1.pagesSeen()
	for p := range seen0 {
		if _, both := seen1[p]; both {
			t.Fatalf("page %d served by both backends", p)
		}
	}
	if len(seen0)+len(seen1) != pages {
		t.Fatalf("page sets cover %d pages, want %d", len(seen0)+len(seen1), pages)
	}
	if len(seen0) == 0 || len(seen1) == 0 {
		t.Fatalf("degenerate split: %d vs %d pages", len(seen0), len(seen1))
	}

	// Per-backend hit counters: each backend saw 3 requests per owned
	// page, 1 miss + 2 hits.
	for i, b := range []*testBackend{b0, b1} {
		st := b.cache.Stats()
		owned := len(b.pagesSeen())
		if int(st.Misses) != owned || int(st.Hits) != 2*owned {
			t.Fatalf("backend %d cache stats: hits %d misses %d, want %d/%d", i, st.Hits, st.Misses, 2*owned, owned)
		}
	}

	// Router-side per-backend accounting agrees.
	rs := r.Stats()
	if rs.Requests() != 3*pages {
		t.Fatalf("router requests = %d, want %d", rs.Requests(), 3*pages)
	}
	for _, bs := range rs.Backends {
		want := map[string]int{"0": len(seen0), "1": len(seen1)}[bs.ID]
		if int(bs.CacheHits) != 2*want {
			t.Fatalf("router view of backend %s hits = %d, want %d", bs.ID, bs.CacheHits, 2*want)
		}
	}
}

// TestRouterRetryOnRefused: a dead backend (connection refused) is
// evicted and its keys rerouted to the surviving backend within the
// same request — the client sees 200, not a transport error.
func TestRouterRetryOnRefused(t *testing.T) {
	b0, b1 := newTestBackend(t, "0"), newTestBackend(t, "1")
	r := newTestRouter(b0, b1)
	front := routerServer(t, r)

	// Find a page owned by b0, then kill b0.
	var page int
	for p := 0; p < 1000; p++ {
		if owners := r.Owners("page:"+strconv.Itoa(p), 1); len(owners) == 1 && owners[0] == "0" {
			page = p
			break
		}
	}
	b0.stop()

	resp, err := http.Get(front.URL + "/?page=" + strconv.Itoa(page))
	if err != nil {
		t.Fatalf("client saw transport error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via reroute", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Backend"); got != "1" {
		t.Fatalf("rerouted to backend %q, want 1", got)
	}
	if r.BackendUp("0") {
		t.Fatal("dead backend still marked up after refused connection")
	}
	if rs := r.Stats(); rs.Retries == 0 {
		t.Fatal("reroute not counted in Retries")
	}
}

// TestRouterShedOverload: the owner at its inflight cap sheds with a
// typed 503 instead of queueing or rerouting (rerouting overload would
// break cache affinity exactly under peak load).
func TestRouterShedOverload(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			io.WriteString(w, "ok")
			return
		}
		<-release
		io.WriteString(w, "slow body")
	}))
	defer slow.Close()
	defer close(release)

	r := NewRouter(RouterConfig{MaxInflight: 1, Client: &http.Client{Timeout: 5 * time.Second}})
	r.AddBackend("0", slow.Listener.Addr().String())
	front := routerServer(t, r)

	go http.Get(front.URL + "/?page=1") // occupies the single inflight slot
	waitFor(t, time.Second, func() bool { return r.Stats().Backends[0].Inflight == 1 })

	resp, err := http.Get(front.URL + "/?page=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed without Retry-After")
	}
	if got := resp.Header.Get("X-Router-Shed"); got != RouterShedOverload {
		t.Fatalf("shed reason %q, want %q", got, RouterShedOverload)
	}
	if rs := r.Stats(); rs.ShedOverload != 1 || rs.Backends[0].Shed != 1 {
		t.Fatalf("shed accounting: router %d backend %d, want 1/1", rs.ShedOverload, rs.Backends[0].Shed)
	}
}

// TestRouterDrainingShed: a draining router sheds every request with a
// typed 503.
func TestRouterDrainingShed(t *testing.T) {
	b0 := newTestBackend(t, "0")
	r := newTestRouter(b0)
	front := routerServer(t, r)
	r.SetDraining()

	resp, err := http.Get(front.URL + "/?page=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable ||
		resp.Header.Get("X-Router-Shed") != RouterShedDraining {
		t.Fatalf("status %d shed %q, want 503/%s", resp.StatusCode, resp.Header.Get("X-Router-Shed"), RouterShedDraining)
	}
	if rs := r.Stats(); rs.ShedDraining != 1 || !rs.Draining {
		t.Fatalf("draining accounting: %+v", rs)
	}
}

// TestRouterHealthTransitions: CheckBackends evicts a draining backend
// (healthz 503) from the ring and re-admits it when it recovers, with
// the same key range restored.
func TestRouterHealthTransitions(t *testing.T) {
	b0, b1 := newTestBackend(t, "0"), newTestBackend(t, "1")
	r := newTestRouter(b0, b1)
	ctx := context.Background()

	keysOf := func() map[string]string {
		out := make(map[string]string)
		for p := 0; p < 64; p++ {
			k := "page:" + strconv.Itoa(p)
			if o := r.Owners(k, 1); len(o) == 1 {
				out[k] = o[0]
			}
		}
		return out
	}
	before := keysOf()

	if tr := r.CheckBackends(ctx); len(tr) != 0 {
		t.Fatalf("healthy sweep produced transitions: %+v", tr)
	}
	b0.setDraining(true)
	tr := r.CheckBackends(ctx)
	if len(tr) != 1 || tr[0].ID != "0" || tr[0].Up {
		t.Fatalf("drain sweep transitions: %+v", tr)
	}
	for k, owner := range keysOf() {
		if owner != "1" {
			t.Fatalf("key %s still owned by %s after eviction", k, owner)
		}
		if before[k] == "1" && owner != "1" {
			t.Fatalf("unrelated key %s moved", k)
		}
	}

	b0.setDraining(false)
	tr = r.CheckBackends(ctx)
	if len(tr) != 1 || tr[0].ID != "0" || !tr[0].Up {
		t.Fatalf("recovery sweep transitions: %+v", tr)
	}
	after := keysOf()
	for k := range before {
		if after[k] != before[k] {
			t.Fatalf("key %s owned by %s after readmission, want %s", k, after[k], before[k])
		}
	}
}

// TestRouterRollingRestartZeroDrops is the acceptance-criteria test: a
// full rolling restart (drain → evict → kill → restart → readmit) of
// each backend in turn, under continuous client load, with zero
// transport errors — every response is 200 or a typed 503 with
// Retry-After.
func TestRouterRollingRestartZeroDrops(t *testing.T) {
	b0, b1 := newTestBackend(t, "0"), newTestBackend(t, "1")
	backends := []*testBackend{b0, b1}
	r := newTestRouter(b0, b1)
	front := routerServer(t, r)

	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	go r.HealthLoop(hctx, 10*time.Millisecond, nil)

	var (
		wg                      sync.WaitGroup
		mu                      sync.Mutex
		transportErrs           []error
		badStatus               []int
		served, shed, untypedOK = 0, 0, true
	)
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(front.URL + "/?page=" + strconv.Itoa((c*31+i)%24))
				mu.Lock()
				if err != nil {
					transportErrs = append(transportErrs, err)
				} else {
					switch resp.StatusCode {
					case http.StatusOK:
						served++
					case http.StatusServiceUnavailable:
						shed++
						if resp.Header.Get("Retry-After") == "" {
							untypedOK = false
						}
					default:
						badStatus = append(badStatus, resp.StatusCode)
					}
				}
				mu.Unlock()
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(c)
	}

	// Roll each backend: drain (healthz 503) → health loop evicts →
	// hard stop (refused) → restart → health loop readmits.
	for _, b := range backends {
		b.setDraining(true)
		waitFor(t, 2*time.Second, func() bool { return !r.BackendUp(b.id) })
		b.stop()
		time.Sleep(50 * time.Millisecond) // clients hit the refused window
		b.restart(t)
		waitFor(t, 2*time.Second, func() bool { return r.BackendUp(b.id) })
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if len(transportErrs) > 0 {
		t.Fatalf("%d client-visible transport errors during rolling restart; first: %v", len(transportErrs), transportErrs[0])
	}
	if len(badStatus) > 0 {
		t.Fatalf("unexpected statuses during rolling restart: %v", badStatus)
	}
	if !untypedOK {
		t.Fatal("a 503 was missing Retry-After")
	}
	if served == 0 {
		t.Fatal("no requests served during the roll")
	}
	t.Logf("rolling restart: %d served, %d typed sheds, 0 transport errors", served, shed)

	// Both backends are back on the ring and own keys again.
	if !r.BackendUp("0") || !r.BackendUp("1") {
		t.Fatalf("backends not readmitted: up0=%v up1=%v", r.BackendUp("0"), r.BackendUp("1"))
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
