package serve

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

func cachedPool(t *testing.T, workers int) *workload.Pool {
	t.Helper()
	p, err := workload.NewPoolSharedSeed(workers, vm.Config{}, "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func renderPage(page int) func(w *workload.Worker) ([]byte, error) {
	return func(w *workload.Worker) ([]byte, error) {
		body, _, err := w.ServePageSpanCtx(context.Background(), page, false)
		return body, err
	}
}

func TestDoCachedHitMissAndEquivalence(t *testing.T) {
	pool := cachedPool(t, 1)
	s := NewScheduler(pool, Config{QueueDepth: 4})
	c := cache.New(cache.Config{Capacity: 16})
	ctx := context.Background()

	b1, out, _, err := s.DoCached(ctx, c, "page:3", renderPage(3))
	if err != nil || out != cache.Miss {
		t.Fatalf("first = %v, %v; want Miss, nil", out, err)
	}
	b2, out, wait, err := s.DoCached(ctx, c, "page:3", renderPage(3))
	if err != nil || out != cache.Hit {
		t.Fatalf("second = %v, %v; want Hit, nil", out, err)
	}
	if wait != 0 {
		t.Errorf("hit reported queue wait %v, want 0 (never queued)", wait)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("hit returned different bytes than the original render")
	}
	st := s.Stats()
	if st.Served != 2 || st.Admitted != 2 {
		t.Errorf("scheduler stats = %+v, want 2 admitted, 2 served", st)
	}
}

// TestDoCachedHitNeedsNoWorker is the tentpole property: a cache hit is
// served while every pool worker is busy.
func TestDoCachedHitNeedsNoWorker(t *testing.T) {
	pool := cachedPool(t, 1)
	s := NewScheduler(pool, Config{QueueDepth: 4})
	c := cache.New(cache.Config{Capacity: 16})
	ctx := context.Background()

	if _, _, _, err := s.DoCached(ctx, c, "page:1", renderPage(1)); err != nil {
		t.Fatal(err)
	}
	// Hold the only worker so no render can possibly run.
	w := pool.Acquire()
	defer pool.Release(w)

	done := make(chan struct{})
	go func() {
		defer close(done)
		_, out, _, err := s.DoCached(ctx, c, "page:1", renderPage(1))
		if err != nil || out != cache.Hit {
			t.Errorf("hit with busy pool = %v, %v; want Hit, nil", out, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cache hit blocked on worker acquisition")
	}
}

func TestDoCachedCoalesces(t *testing.T) {
	pool := cachedPool(t, 2)
	s := NewScheduler(pool, Config{QueueDepth: 8})
	c := cache.New(cache.Config{Capacity: 16})
	ctx := context.Background()

	const callers = 6
	var renders int
	var renderMu sync.Mutex
	gate := make(chan struct{})
	leaderIn := make(chan struct{}, 1)

	render := func(w *workload.Worker) ([]byte, error) {
		renderMu.Lock()
		renders++
		renderMu.Unlock()
		leaderIn <- struct{}{}
		<-gate // hold the render open so the others must coalesce
		body, _, err := w.ServePageSpanCtx(ctx, 5, false)
		return body, err
	}

	var wg sync.WaitGroup
	outcomes := make([]cache.Outcome, callers)
	errs := make([]error, callers)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, outcomes[0], _, errs[0] = s.DoCached(ctx, c, "page:5", render)
	}()
	<-leaderIn
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, outcomes[i], _, errs[i] = s.DoCached(ctx, c, "page:5", render)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()

	if renders != 1 {
		t.Fatalf("render ran %d times for one key, want 1", renders)
	}
	var coalesced int
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if outcomes[i] == cache.Coalesced {
			coalesced++
		}
	}
	if coalesced != callers-1 {
		t.Errorf("coalesced callers = %d, want %d", coalesced, callers-1)
	}
	if st := s.Stats(); st.Served != callers {
		t.Errorf("served = %d, want %d", st.Served, callers)
	}
}

// TestDoCachedHitMatchesFreshRender is the semantics-preservation
// property: for every page, the bytes a cache hit returns through the
// full DoCached path are identical to what a never-cached render of the
// same page produces — with the accelerated datapaths both off and on
// (a cached response must not depend on which core config or worker
// rendered it, only on the page identity).
func TestDoCachedHitMatchesFreshRender(t *testing.T) {
	configs := map[string]vm.Config{
		"baseline":    {},
		"accelerated": {Mitigations: sim.AllMitigations(), Features: isa.AllAccelerators()},
	}
	pages := []int{1, 4, 33, 4, 1} // repeats exercise the hit path
	for name, cfg := range configs {
		pool, err := workload.NewPoolSharedSeed(2, cfg, "wordpress", 9)
		if err != nil {
			t.Fatal(err)
		}
		s := NewScheduler(pool, Config{QueueDepth: 8})
		c := cache.New(cache.Config{Capacity: 64})
		// The reference pool renders every page fresh, never cached.
		fresh, err := workload.NewPoolSharedSeed(1, cfg, "wordpress", 9)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		for _, page := range pages {
			got, out, _, err := s.DoCached(context.Background(), c, "page:"+strconv.Itoa(page), renderPage(page))
			if err != nil {
				t.Fatalf("%s page %d: %v", name, page, err)
			}
			if seen[page] && out != cache.Hit {
				t.Errorf("%s page %d: repeat lookup was %v, want Hit", name, page, out)
			}
			seen[page] = true
			fw := fresh.Acquire()
			want, _, err := fw.ServePageSpanCtx(context.Background(), page, false)
			fresh.Release(fw)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s page %d (%v): cached bytes differ from a fresh render (%d vs %d bytes)",
					name, page, out, len(got), len(want))
			}
		}
	}
}

func TestDoCachedShedsWhileDraining(t *testing.T) {
	pool := cachedPool(t, 1)
	s := NewScheduler(pool, Config{})
	c := cache.New(cache.Config{Capacity: 4})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, out, _, err := s.DoCached(context.Background(), c, "page:1", renderPage(1))
	if !errors.Is(err, ErrDraining) || out != cache.Bypass {
		t.Errorf("draining DoCached = %v, %v; want Bypass, ErrDraining", out, err)
	}
}

func TestDoCachedDeadlineMapsToErrDeadline(t *testing.T) {
	pool := cachedPool(t, 1)
	s := NewScheduler(pool, Config{QueueDepth: 2})
	c := cache.New(cache.Config{Capacity: 4})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, _, err := s.DoCached(ctx, c, "page:1", renderPage(1))
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("expired-context DoCached error = %v, want ErrDeadline", err)
	}
	if st := s.Stats(); st.ShedDeadline != 1 {
		t.Errorf("shedDeadline = %d, want 1", st.ShedDeadline)
	}
}

// TestDoCachedCanceledMapsToErrCanceled pins the cached path's half of
// the canceled/deadline split: an abandoned request sheds as
// ErrCanceled and bumps only the canceled counter.
func TestDoCachedCanceledMapsToErrCanceled(t *testing.T) {
	pool := cachedPool(t, 1)
	s := NewScheduler(pool, Config{QueueDepth: 2})
	c := cache.New(cache.Config{Capacity: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := s.DoCached(ctx, c, "page:1", renderPage(1))
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled-context DoCached error = %v, want ErrCanceled", err)
	}
	if st := s.Stats(); st.ShedCanceled != 1 || st.ShedDeadline != 0 {
		t.Errorf("sheds = canceled %d, deadline %d; want 1, 0", st.ShedCanceled, st.ShedDeadline)
	}
}

// TestDoCachedEntryStableAcrossRecycle is the aliasing regression test
// for the pooled render path: the render buffer a worker hands back is
// recycled on the very next request through that worker, so the cache
// entry must be a stable copy taken before the worker is released.
// Render unrelated pages through the same single worker (forcing buffer
// reuse), scribble over a previously returned body, then re-read its
// key — the stored entry must be byte-for-byte the original render.
// Run under -race this also catches any write to a recycled buffer
// racing a concurrent hit reader.
func TestDoCachedEntryStableAcrossRecycle(t *testing.T) {
	pool := cachedPool(t, 1)
	s := NewScheduler(pool, Config{QueueDepth: 4})
	c := cache.New(cache.Config{Capacity: 16})
	ctx := context.Background()

	// Capture the raw render output — the worker-owned, recycled slice —
	// alongside what DoCached stores.
	var raw []byte
	captureRender := func(w *workload.Worker) ([]byte, error) {
		body, _, err := w.ServePageSpanCtx(ctx, 7, false)
		raw = body
		return body, err
	}

	first, out, _, err := s.DoCached(ctx, c, "page:7", captureRender)
	if err != nil || out != cache.Miss {
		t.Fatalf("first lookup = %v, %v; want Miss, nil", out, err)
	}
	want := append([]byte(nil), first...)

	// Drive other pages through the same (only) worker so its recycled
	// output buffer and arena are reused for different content. If the
	// cache entry aliased the worker's buffers these renders would
	// overwrite it in place.
	for p := 8; p < 12; p++ {
		if _, _, _, err := s.DoCached(ctx, c, "page:"+strconv.Itoa(p), renderPage(p)); err != nil {
			t.Fatal(err)
		}
	}

	// Mutate the raw render buffer itself — the slice the fill closure
	// saw before copying, now recycled — and confirm the stored entry is
	// untouched. This is the direct regression for the pre-copy bug,
	// where the entry aliased exactly these bytes.
	if raw != nil {
		for i := range raw {
			raw[i] = 'X'
		}
	}

	hit, out, _, err := s.DoCached(ctx, c, "page:7", renderPage(7))
	if err != nil || out != cache.Hit {
		t.Fatalf("re-read = %v, %v; want Hit, nil", out, err)
	}
	if !bytes.Equal(hit, want) {
		t.Fatal("cache entry changed after the worker's render buffer was recycled and scribbled on")
	}
}

func TestRunLoadCachedZipf(t *testing.T) {
	pool := cachedPool(t, 2)
	s := NewScheduler(pool, Config{QueueDepth: 16})
	c := cache.New(cache.Config{Capacity: 256})
	keys, err := workload.NewZipfKeys(11, 1.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	ls := RunLoad(context.Background(), s, LoadOptions{
		Requests: 300,
		Clients:  2,
		Cache:    c,
		PageKey:  keys.Next,
	})
	if ls.Served != 300 {
		t.Fatalf("served = %d/%d (shed %d)", ls.Served, ls.Submitted, ls.Shed())
	}
	if got := ls.CacheHits + ls.CacheMisses + ls.CacheCoalesced; got != 300 {
		t.Fatalf("outcome partition sums to %d, want 300", got)
	}
	// 64 Zipf(1.0) pages into an uncapped cache: at most 64 misses, so
	// the hit ratio is at least (300-64)/300 ≈ 0.78 minus coalescing.
	if ls.CacheHits < 200 {
		t.Errorf("hits = %d over 300 zipf requests across 64 pages, expected >= 200", ls.CacheHits)
	}
	if ls.HitLatency.P50 <= 0 || ls.MissLatency.P50 <= 0 {
		t.Errorf("latency split missing: hit p50 %v, miss p50 %v", ls.HitLatency.P50, ls.MissLatency.P50)
	}
	if ls.HitLatency.P50 >= ls.MissLatency.P50 {
		t.Errorf("hit p50 %v not below miss p50 %v", ls.HitLatency.P50, ls.MissLatency.P50)
	}
	cs := c.Stats()
	if int(cs.Hits) != ls.CacheHits || int(cs.Misses) != ls.CacheMisses {
		t.Errorf("cache stats (%d hits, %d misses) disagree with load stats (%d, %d)",
			cs.Hits, cs.Misses, ls.CacheHits, ls.CacheMisses)
	}
}
