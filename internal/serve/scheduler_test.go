package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// testPool builds a small software-config pool (no warmup — lifecycle
// tests care about admission, not steady-state costs).
func testPool(t *testing.T, workers int) *workload.Pool {
	t.Helper()
	p, err := workload.NewPool(workers, vm.Config{Mitigations: sim.AllMitigations(), TraceCapacity: -1}, "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkPoolIntact fails the test if any worker was lost or
// double-released: exactly Size distinct workers must be on the free
// list.
func checkPoolIntact(t *testing.T, p *workload.Pool) {
	t.Helper()
	if idle := p.Idle(); idle != p.Size() {
		t.Fatalf("pool has %d/%d workers free", idle, p.Size())
	}
	seen := map[int]bool{}
	var held []*workload.Worker
	for i := 0; i < p.Size(); i++ {
		w := p.Acquire()
		if seen[w.ID()] {
			t.Fatalf("worker %d on the free list twice", w.ID())
		}
		seen[w.ID()] = true
		held = append(held, w)
	}
	for _, w := range held {
		p.Release(w)
	}
}

// block parks the scheduler's in-flight function until released,
// simulating a long render without burning CPU.
type block struct {
	entered chan struct{}
	release chan struct{}
}

func newBlock() *block {
	return &block{entered: make(chan struct{}), release: make(chan struct{})}
}

func (b *block) fn(*workload.Worker) error {
	close(b.entered)
	<-b.release
	return nil
}

func TestShedWhenQueueFull(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{QueueDepth: 0})

	b := newBlock()
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), b.fn)
		done <- err
	}()
	<-b.entered // the single admission token is now held

	if _, err := s.Do(context.Background(), func(*workload.Worker) error { return nil }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: err = %v, want ErrOverloaded", err)
	}
	close(b.release)
	if err := <-done; err != nil {
		t.Fatalf("blocked request: %v", err)
	}

	st := s.Stats()
	if st.Served != 1 || st.ShedOverload != 1 || st.Admitted != 1 {
		t.Errorf("stats = %+v", st)
	}
	checkPoolIntact(t, s.Pool())
}

func TestDeadlineWhileQueued(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{QueueDepth: 2, Timeout: 10 * time.Millisecond})

	b := newBlock()
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), b.fn)
		done <- err
	}()
	<-b.entered

	// Queued behind the blocked worker; the 10ms admission deadline
	// expires first.
	wait, err := s.Do(context.Background(), func(*workload.Worker) error { return nil })
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("queued past deadline: err = %v, want ErrDeadline", err)
	}
	if wait < 10*time.Millisecond {
		t.Errorf("reported queue wait %v shorter than the deadline", wait)
	}
	close(b.release)
	<-done

	st := s.Stats()
	if st.ShedDeadline != 1 {
		t.Errorf("shed_deadline = %d, want 1", st.ShedDeadline)
	}
	// The timed-out request was admitted, so its wait is in the
	// histogram alongside the served one's.
	if st.QueueWait.Count != 2 {
		t.Errorf("queue-wait observations = %d, want 2", st.QueueWait.Count)
	}
	checkPoolIntact(t, s.Pool())
}

func TestExpiredBeforeAdmission(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{QueueDepth: 1})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.Do(ctx, func(*workload.Worker) error { return nil }); !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired ctx: err = %v, want ErrDeadline", err)
	}
	// The shed must not leak its admission token: a live request still
	// gets through.
	if _, err := s.Do(context.Background(), func(w *workload.Worker) error {
		_, err := w.ServeOneCtx(context.Background())
		return err
	}); err != nil {
		t.Fatalf("after expired shed: %v", err)
	}
	checkPoolIntact(t, s.Pool())
}

// TestCanceledBeforeAdmission: a context the client already abandoned
// is a canceled outcome, not a deadline shed — the regression the
// conflated mapping used to hide (disconnects inflating 504 metrics).
func TestCanceledBeforeAdmission(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{QueueDepth: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Do(ctx, func(*workload.Worker) error { return nil }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	}
	st := s.Stats()
	if st.ShedCanceled != 1 || st.ShedDeadline != 0 {
		t.Errorf("sheds = canceled %d, deadline %d; want 1, 0", st.ShedCanceled, st.ShedDeadline)
	}
	if st.Shed() != 1 {
		t.Errorf("Shed() = %d, want 1 (canceled must count)", st.Shed())
	}
	checkPoolIntact(t, s.Pool())
}

// TestCanceledWhileQueued: a client disconnecting while its request is
// queued for a worker sheds with ErrCanceled and bumps only the
// canceled counter, even with a per-request Timeout configured (the
// cancel races no deadline here — the parent context was canceled).
func TestCanceledWhileQueued(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{QueueDepth: 2, Timeout: time.Hour})

	b := newBlock()
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), b.fn)
		done <- err
	}()
	<-b.entered

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, func(*workload.Worker) error { return nil })
		queued <- err
	}()
	// Wait until the second request is measurably queued, then hang up.
	for s.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-queued; !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled while queued: err = %v, want ErrCanceled", err)
	}
	close(b.release)
	if err := <-done; err != nil {
		t.Fatalf("blocked request: %v", err)
	}
	st := s.Stats()
	if st.ShedCanceled != 1 || st.ShedDeadline != 0 {
		t.Errorf("sheds = canceled %d, deadline %d; want 1, 0", st.ShedCanceled, st.ShedDeadline)
	}
	checkPoolIntact(t, s.Pool())
}

// TestFnCanceledMapsToErrCanceled: a worker function reporting a
// canceled context surfaces as ErrCanceled, distinct from the deadline
// mapping TestFnContextErrorMapsToDeadline pins.
func TestFnCanceledMapsToErrCanceled(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{QueueDepth: 1})
	if _, err := s.Do(context.Background(), func(*workload.Worker) error {
		return context.Canceled
	}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("fn canceled error: %v, want ErrCanceled", err)
	}
	if st := s.Stats(); st.ShedCanceled != 1 || st.ShedDeadline != 0 || st.Served != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestFnContextErrorMapsToDeadline: a worker function reporting context
// expiry (deadline spent queueing, checked at pickup) surfaces as
// ErrDeadline, not a raw context error.
func TestFnContextErrorMapsToDeadline(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{QueueDepth: 1})
	if _, err := s.Do(context.Background(), func(*workload.Worker) error {
		return context.DeadlineExceeded
	}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("fn ctx error: %v, want ErrDeadline", err)
	}
	if st := s.Stats(); st.ShedDeadline != 1 || st.Served != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDrainDuringLoad is the drain acceptance criterion under -race:
// with a client fleet mid-flight, Drain finishes every admitted request
// (no lost worker, no double release), sheds the rest with ErrDraining,
// and repeated drains stay idempotent.
func TestDrainDuringLoad(t *testing.T) {
	s := NewScheduler(testPool(t, 4), Config{QueueDepth: 8})

	const clients = 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := map[error]int{}
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := s.Do(context.Background(), func(w *workload.Worker) error {
					_, err := w.ServeOneCtx(context.Background())
					return err
				})
				mu.Lock()
				outcomes[err]++
				mu.Unlock()
				if errors.Is(err, ErrDraining) {
					return
				}
			}
		}()
	}

	// Let some traffic through, then drain while clients are active.
	for s.Stats().Served < 8 {
		time.Sleep(time.Millisecond)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	if st := s.State(); st != StateDrained {
		t.Errorf("state = %v, want drained", st)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Errorf("second drain: %v", err)
	}
	if outcomes[nil] == 0 {
		t.Errorf("no requests served before drain: %v", outcomes)
	}
	st := s.Stats()
	if got := int64(outcomes[nil]); st.Served != got {
		t.Errorf("served counter %d != observed %d", st.Served, got)
	}
	if st.ShedDraining != int64(outcomes[ErrDraining]) {
		t.Errorf("draining counter %d != observed %d", st.ShedDraining, outcomes[ErrDraining])
	}
	checkPoolIntact(t, s.Pool())

	if _, err := s.Do(context.Background(), func(*workload.Worker) error { return nil }); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain Do: err = %v, want ErrDraining", err)
	}
}

// TestDrainTimeout: a drain bounded by an already-short context returns
// the context error and leaves the state Draining (not falsely
// Drained) while a request is still in flight.
func TestDrainTimeout(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{})

	b := newBlock()
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), b.fn)
		done <- err
	}()
	<-b.entered

	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.Drain(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with stuck request: err = %v", err)
	}
	if st := s.State(); st != StateDraining {
		t.Errorf("state = %v, want draining", st)
	}
	close(b.release)
	<-done
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain after unblock: %v", err)
	}
	if st := s.State(); st != StateDrained {
		t.Errorf("state = %v, want drained", st)
	}
}

// TestDrainLateQuiescence is the regression test for the stuck-Draining
// bug: when the drain context expires before the last request finishes,
// quiescence arriving later must still move the state machine to
// Drained on its own — no further Drain call — and a repeated Drain
// whose own context is already expired must still report success.
func TestDrainLateQuiescence(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{})

	b := newBlock()
	done := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), b.fn)
		done <- err
	}()
	<-b.entered

	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.Drain(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded drain with stuck request: err = %v", err)
	}
	if st := s.State(); st != StateDraining {
		t.Fatalf("state = %v, want draining", st)
	}

	// Quiescence arrives after the drain caller gave up. Before the fix
	// nobody owned the Draining→Drained transition anymore and the state
	// stuck at Draining forever (health checks report draining, the
	// process never observes completion).
	close(b.release)
	if err := <-done; err != nil {
		t.Fatalf("blocked request: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.State() != StateDrained {
		if time.Now().After(deadline) {
			t.Fatalf("state stuck at %v after quiescence", s.State())
		}
		time.Sleep(time.Millisecond)
	}

	// Re-drain with an expired context: quiescence already happened, so
	// this must be a success, not ctx.Err().
	ectx, ecancel := context.WithCancel(context.Background())
	ecancel()
	if err := s.Drain(ectx); err != nil {
		t.Errorf("re-drain after quiescence with expired ctx: %v", err)
	}
	checkPoolIntact(t, s.Pool())
}

// TestRunLoadServesAll: an unsaturated closed loop serves everything,
// measures queue waits, and GatherResult agrees with the stats.
func TestRunLoadServesAll(t *testing.T) {
	pool := testPool(t, 2)
	s := NewScheduler(pool, Config{QueueDepth: 4})
	col := obs.NewCollector(1, nil, nil)
	ls := RunLoad(context.Background(), s, LoadOptions{Requests: 12, Clients: 2, CtxSwitchEvery: 4, Collector: col})
	if ls.Submitted != 12 || ls.Served != 12 || ls.Shed() != 0 {
		t.Fatalf("load stats = %+v", ls)
	}
	if ls.QueueWait.Count != 12 {
		t.Errorf("queue-wait count = %d, want 12", ls.QueueWait.Count)
	}
	res := pool.GatherResult(ls.Wall)
	if res.Requests != 12 || res.Cycles <= 0 {
		t.Errorf("gathered result = %+v", res)
	}
	if snap := col.Snapshot(); snap.Requests != 12 || snap.SampledSpans != 12 {
		t.Errorf("collector saw %d/%d", snap.Requests, snap.SampledSpans)
	}
	checkPoolIntact(t, pool)
}

// TestRunLoadOverload: submissions against a scheduler with no free
// capacity shed overload (typed, counted, partition intact), and the
// same scheduler serves again once capacity frees. The only slot is
// held explicitly for the first run — on a single-CPU host 8 clients
// racing a free worker can serialize perfectly and never collide, so
// overload is forced rather than hoped for.
func TestRunLoadOverload(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{QueueDepth: 0})

	release := make(chan struct{})
	blocked := make(chan struct{})
	blockerDone := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), func(w *workload.Worker) error {
			close(blocked)
			<-release
			return nil
		})
		blockerDone <- err
	}()
	<-blocked

	ls := RunLoad(context.Background(), s, LoadOptions{Requests: 60, Clients: 8})
	if ls.Submitted != 60 {
		t.Fatalf("submitted %d, want 60", ls.Submitted)
	}
	if ls.Served+ls.Shed() != ls.Submitted {
		t.Errorf("outcomes don't partition: %+v", ls)
	}
	if ls.ShedOverload != 60 {
		t.Errorf("60 submissions against a held slot shed %d, want 60: %+v", ls.ShedOverload, ls)
	}

	close(release)
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker request failed: %v", err)
	}

	ls2 := RunLoad(context.Background(), s, LoadOptions{Requests: 12, Clients: 8})
	if ls2.Served+ls2.Shed() != ls2.Submitted {
		t.Errorf("post-release outcomes don't partition: %+v", ls2)
	}
	if ls2.Served == 0 {
		t.Errorf("overload starved everything after release: %+v", ls2)
	}
	checkPoolIntact(t, s.Pool())
}

// TestRunLoadErrorSamples: with an ID source set, shed submissions
// retain bounded (ID, error) samples; with neither IDs nor a collector,
// minting is off and no samples are recorded (the bare benchmark path
// must stay allocation-free).
func TestRunLoadErrorSamples(t *testing.T) {
	s := NewScheduler(testPool(t, 1), Config{QueueDepth: 0})

	release := make(chan struct{})
	blocked := make(chan struct{})
	blockerDone := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), func(w *workload.Worker) error {
			close(blocked)
			<-release
			return nil
		})
		blockerDone <- err
	}()
	<-blocked

	ls := RunLoad(context.Background(), s, LoadOptions{Requests: 30, Clients: 4, IDs: obs.NewIDSource()})
	if ls.ShedOverload != 30 {
		t.Fatalf("shed %d, want 30", ls.ShedOverload)
	}
	if len(ls.ErrorSamples) == 0 || len(ls.ErrorSamples) > maxErrorSamples {
		t.Fatalf("error samples = %d, want 1..%d", len(ls.ErrorSamples), maxErrorSamples)
	}
	seen := map[string]bool{}
	for _, es := range ls.ErrorSamples {
		if es.ID == "" || es.Err != ErrOverloaded {
			t.Fatalf("bad sample: %+v", es)
		}
		if seen[es.ID] {
			t.Fatalf("duplicate sampled ID %s", es.ID)
		}
		seen[es.ID] = true
	}

	ls2 := RunLoad(context.Background(), s, LoadOptions{Requests: 10, Clients: 4})
	if len(ls2.ErrorSamples) != 0 {
		t.Fatalf("samples recorded without an ID source: %+v", ls2.ErrorSamples)
	}

	close(release)
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker request failed: %v", err)
	}
}

// TestRunLoadCancelled: cancelling mid-run stops submissions and still
// returns consistent partial stats.
func TestRunLoadCancelled(t *testing.T) {
	pool := testPool(t, 1)
	s := NewScheduler(pool, Config{QueueDepth: 2})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for s.Stats().Served < 3 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	ls := RunLoad(ctx, s, LoadOptions{Requests: 100000, Clients: 2})
	if ls.Submitted >= 100000 {
		t.Fatalf("cancellation did not stop the run: %+v", ls)
	}
	if ls.Served+ls.Shed() != ls.Submitted {
		t.Errorf("outcomes don't partition: %+v", ls)
	}
	checkPoolIntact(t, pool)
}
