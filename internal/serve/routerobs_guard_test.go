package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRouterObsOverheadGuard proves the observability plane is cheap:
// median proxy latency with ID propagation, access logging, and span
// sampling on (rate 0.01, the production default) must stay within 2%
// of the plain proxy path. Latency-sensitive and scheduler-dependent,
// so it runs only under ROUTER_OBS_GUARD=1 (wired into `make ci`).
func TestRouterObsOverheadGuard(t *testing.T) {
	if os.Getenv("ROUTER_OBS_GUARD") == "" {
		t.Skip("set ROUTER_OBS_GUARD=1 to run the router observability overhead guard")
	}

	// A backend with a realistic (few-ms) render time: the guard bounds
	// relative overhead on the proxy path a real cluster runs, not on a
	// zero-latency stub where scheduler noise dominates.
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		io.WriteString(w, "page body")
	}))
	defer backend.Close()
	addr := backend.Listener.Addr().String()

	measure := func(r *Router) time.Duration {
		front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			r.Proxy(w, req, "page:1")
		}))
		defer front.Close()
		const warm, n = 20, 200
		lats := make([]time.Duration, 0, n)
		for i := 0; i < warm+n; i++ {
			t0 := time.Now()
			resp, err := http.Get(front.URL + "/")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if i >= warm {
				lats = append(lats, time.Since(t0))
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2]
	}

	plain := NewRouter(RouterConfig{Client: &http.Client{Timeout: 5 * time.Second}})
	plain.AddBackend("0", addr)

	instrumented := NewRouter(RouterConfig{
		Client:     &http.Client{Timeout: 5 * time.Second},
		SampleRate: 0.01,
		TreeRing:   obs.NewTreeRing(64),
		AccessLog:  obs.NewAccessLog(io.Discard),
		Events:     obs.NewEventRing(256),
	})
	instrumented.AddBackend("0", addr)

	base := measure(plain)
	withObs := measure(instrumented)

	limit := time.Duration(float64(base) * 1.02)
	t.Logf("plain median %v, instrumented median %v, limit %v", base, withObs, limit)
	if withObs > limit {
		t.Fatalf("observability overhead too high: %v > %v (plain %v + 2%%)", withObs, limit, base)
	}
}
