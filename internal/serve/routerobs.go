package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/obs"
)

// Router-side request observability: every proxied request gets an
// X-Request-Id (inbound one sanitized and kept, otherwise minted) that
// is forwarded to the backend and echoed to the client, so one ID ties
// the router's access-log line, the backend's line, and both processes'
// span trees together. A sampled fraction of requests additionally
// record a router span tree — route / proxy / retry phases with wall
// durations — and, when the backend sampled the same request (signalled
// via the X-Trace-Sampled response header), the router fetches the
// backend's tree by ID and grafts it under its own proxy span, so
// /tracez shows socket → router → backend → VM as one timeline.

// proxyObs threads one proxied request's observability state through
// Proxy and its attempts. It is always non-nil (ID propagation is
// unconditional); sampled and the router config decide how much else is
// recorded. Owned by the request goroutine — no locking.
type proxyObs struct {
	rid     string
	start   time.Time
	sampled bool

	// spans are the router-phase spans recorded so far, in order:
	// "route", then one "proxy:<id>" / "retry:<id>" per attempt.
	spans []*obs.TreeSpan

	backend        string // id of the backend that answered, "" if none
	backendAddr    string
	backendSampled bool // backend retained a tree for this request
	rerouted       bool
	status         int
	bytes          int
	shedReason     string
}

// beginProxyObs starts a request's observability: it resolves the
// request ID (inbound header, sanitized, else minted), stamps it on the
// outbound request headers (forward copies them) and on the client
// response, and draws the sampling decision.
func (r *Router) beginProxyObs(w http.ResponseWriter, req *http.Request) *proxyObs {
	po := &proxyObs{start: time.Now()}
	rid := obs.SanitizeRequestID(req.Header.Get(obs.HeaderRequestID))
	if rid == "" {
		rid = r.ids.Next()
	}
	po.rid = rid
	req.Header.Set(obs.HeaderRequestID, rid)
	w.Header().Set(obs.HeaderRequestID, rid)
	po.sampled = r.cfg.TreeRing != nil && r.sampler.Sample()
	return po
}

// sinceStart returns the offset from the request's start, the span
// clock. Nil-safe (background health probes call attempt paths without
// a proxyObs).
func (po *proxyObs) sinceStart() time.Duration {
	if po == nil {
		return 0
	}
	return time.Since(po.start)
}

// noteRoute closes the implicit "route" phase: ring lookup and
// candidate selection, spanning from request start to now.
func (po *proxyObs) noteRoute() {
	if po == nil || !po.sampled {
		return
	}
	po.spans = append(po.spans, &obs.TreeSpan{Name: "route", Start: 0, Dur: time.Since(po.start)})
}

// noteAttempt records one proxy attempt's span: "proxy:<id>" for the
// first try, "retry:<id>" for ring-order fallbacks.
func (po *proxyObs) noteAttempt(id string, try int, start, dur time.Duration) {
	if po == nil || !po.sampled {
		return
	}
	name := "proxy:" + id
	if try > 0 {
		name = "retry:" + id
	}
	po.spans = append(po.spans, &obs.TreeSpan{Name: name, Start: start, Dur: dur})
}

// noteServed records the answering backend and response outcome.
func (po *proxyObs) noteServed(id, addr string, rerouted bool, status, bytes int, backendSampled bool) {
	if po == nil {
		return
	}
	po.backend = id
	po.backendAddr = addr
	po.rerouted = rerouted
	po.status = status
	po.bytes = bytes
	po.backendSampled = backendSampled
}

// noteStatus records a terminal non-shed status (bad gateway).
func (po *proxyObs) noteStatus(status int) {
	if po == nil {
		return
	}
	po.status = status
}

// noteShed records a router-decided shed by reason.
func (po *proxyObs) noteShed(reason string) {
	if po == nil {
		return
	}
	po.shedReason = reason
	po.status = http.StatusServiceUnavailable
}

// noteRelayedShed records the every-candidate-shed outcome, where the
// router relays the final backend's 503 instead of minting its own.
func (po *proxyObs) noteRelayedShed(status int) {
	if po == nil {
		return
	}
	po.shedReason = "backend_shed"
	po.status = status
}

// finishProxyObs completes a request's observability after the client
// was answered: it assembles the router span tree for sampled requests
// (stitching the backend's tree under the proxy span when the backend
// retained one), retains it in the tree ring, and writes the access-log
// line (sampled requests, plus every shed).
func (r *Router) finishProxyObs(po *proxyObs) {
	if po == nil {
		return
	}
	wall := time.Since(po.start)

	if po.sampled && r.cfg.TreeRing != nil {
		tree := po.buildTree(wall)
		if po.backendSampled && po.backendAddr != "" {
			if sub, err := r.fetchBackendTree(po.backendAddr, po.rid); err == nil {
				// Attach under the span of the attempt that answered —
				// the last proxy/retry span, found by its ancestor chain.
				chain := obs.FindSpan(tree, po.attemptSpanName())
				obs.Graft(tree, chain, sub)
				r.mu.Lock()
				r.stitched++
				r.mu.Unlock()
			} else {
				r.mu.Lock()
				r.stitchErrors++
				r.mu.Unlock()
			}
		}
		r.cfg.TreeRing.Add(tree)
	}

	if r.cfg.AccessLog != nil && (po.sampled || po.shedReason != "") {
		r.cfg.AccessLog.WriteMeta(
			obs.Span{Worker: -1, Wall: wall, Sampled: po.sampled},
			po.bytes,
			obs.RequestMeta{
				RequestID:  po.rid,
				Backend:    po.backend,
				Status:     po.status,
				Rerouted:   po.rerouted,
				ShedReason: po.shedReason,
			})
	}
}

// attemptSpanName returns the span name of the answering attempt.
func (po *proxyObs) attemptSpanName() string {
	if po.rerouted {
		return "retry:" + po.backend
	}
	return "proxy:" + po.backend
}

// buildTree assembles the router's span tree. The router has no
// sim.Meter — it does no simulated work — so every router span carries
// zero cycles and the tree trivially holds the telescoping self-cycles
// invariant; grafting a backend tree preserves it (obs.Graft propagates
// the backend's inclusive vector up the ancestor chain).
func (po *proxyObs) buildTree(wall time.Duration) *obs.Tree {
	root := &obs.TreeSpan{Name: "request", Dur: wall, Children: po.spans}
	return &obs.Tree{ID: po.rid, Worker: -1, Start: po.start, Root: root}
}

// stitchFetchTimeout bounds the post-response fetch of a backend's span
// tree. The client is already answered when it runs, so the bound
// protects the router goroutine, not request latency.
const stitchFetchTimeout = 2 * time.Second

// fetchBackendTree retrieves the backend's span tree for a request ID
// from its /tracez?rid=<id>&format=tree endpoint. The backend adds the
// tree to its ring before writing the response body, so a fetch issued
// after the proxied response completes always finds it (absent ring
// eviction under extreme sampled load).
func (r *Router) fetchBackendTree(addr, rid string) (*obs.Tree, error) {
	ctx, cancel := context.WithTimeout(context.Background(), stitchFetchTimeout)
	defer cancel()
	u := "http://" + addr + "/tracez?format=tree&rid=" + url.QueryEscape(rid)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, fmt.Errorf("serve: tracez %s: %s", addr, resp.Status)
	}
	var trees []*obs.Tree
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&trees); err != nil {
		return nil, fmt.Errorf("serve: tracez %s: %w", addr, err)
	}
	for i := len(trees) - 1; i >= 0; i-- {
		if trees[i] != nil && trees[i].ID == rid && trees[i].Root != nil {
			return trees[i], nil
		}
	}
	return nil, fmt.Errorf("serve: tracez %s: no tree for id %s", addr, rid)
}
