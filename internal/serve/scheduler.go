// Package serve is the request-lifecycle layer between an ingress
// frontend (cmd/phpserve) and the worker pool: bounded admission,
// per-request deadlines, overload shedding, and graceful drain.
//
// The paper's evaluation stack (§5.1) is a real server — nginx in front
// of a pool of HHVM request workers — and real servers do not let
// overload turn into unbounded queueing: they bound the line at the
// door, shed what will not fit with a retryable error, time out
// requests that would be stale by the time they ran, and drain in-flight
// work before exiting. Scheduler makes those behaviours explicit so the
// frontend stays a thin HTTP mapping: admission (one token per request,
// capacity workers+queue), queueing (context-aware worker acquisition),
// execution (the caller's function on an owned worker), and completion
// (token back, counters updated). Everything the layer decides is
// observable: per-outcome shed counters, an instantaneous queue-depth
// gauge, and a queue-wait histogram.
package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// Typed admission outcomes. Frontends map these to their protocol:
// phpserve returns 503 + Retry-After for ErrOverloaded and ErrDraining
// (the client should back off and retry) and 504 for ErrDeadline (the
// request's own deadline passed before a worker could run it).
var (
	// ErrOverloaded reports that the admission queue was full: the
	// request was shed immediately instead of joining an unbounded line.
	ErrOverloaded = errors.New("serve: overloaded, admission queue full")
	// ErrDeadline reports that the request's deadline expired before a
	// worker picked it up (or it arrived already expired).
	ErrDeadline = errors.New("serve: deadline exceeded before execution")
	// ErrCanceled reports that the client abandoned the request (its
	// context was canceled) before a worker ran it. Distinct from
	// ErrDeadline: the server was not too slow, the caller walked away.
	ErrCanceled = errors.New("serve: canceled by client before execution")
	// ErrDraining reports that the scheduler has stopped admitting
	// because the server is shutting down.
	ErrDraining = errors.New("serve: draining, not admitting requests")
)

// State is the drain state machine's position: Running admits,
// Draining refuses new work while in-flight requests finish, Drained
// means the last in-flight request has completed.
type State int32

// Drain state machine positions, in lifecycle order.
const (
	StateRunning State = iota
	StateDraining
	StateDrained
)

// String returns the state name /healthz reports.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "ready"
	case StateDraining:
		return "draining"
	case StateDrained:
		return "drained"
	}
	return "unknown"
}

// Config sizes the lifecycle layer.
type Config struct {
	// QueueDepth is how many admitted requests may wait for a worker
	// beyond the worker count. 0 means no queue: a request is shed
	// unless a worker slot is immediately grantable.
	QueueDepth int
	// Timeout is the per-request deadline applied at admission (0
	// disables). If the caller's context already carries an earlier
	// deadline, the earlier one wins.
	Timeout time.Duration
}

// Stats is a consistent snapshot of the scheduler's lifetime counters.
type Stats struct {
	// Admitted counts requests that passed admission (they were served,
	// or timed out while queued).
	Admitted int64
	// Served counts requests whose worker function ran to completion.
	Served int64
	// ShedOverload counts requests rejected because the queue was full.
	ShedOverload int64
	// ShedDeadline counts requests whose deadline expired before
	// execution (at admission, while queued, or at worker pickup).
	ShedDeadline int64
	// ShedCanceled counts requests whose client abandoned them (context
	// canceled) before execution — disconnects, not server slowness.
	ShedCanceled int64
	// ShedDraining counts requests rejected during shutdown.
	ShedDraining int64
	// QueueWait is the histogram of time admitted requests spent
	// waiting for a worker.
	QueueWait obs.HistogramSnapshot
}

// Shed returns the total requests rejected for any reason.
func (s Stats) Shed() int64 {
	return s.ShedOverload + s.ShedDeadline + s.ShedCanceled + s.ShedDraining
}

// Scheduler owns the request lifecycle in front of a workload.Pool.
// Safe for concurrent use by any number of request goroutines.
type Scheduler struct {
	pool *workload.Pool
	cfg  Config
	// slots is the admission semaphore: capacity pool.Size()+QueueDepth
	// tokens, one held per request from admission to completion. A full
	// channel is the "queue full" signal, so goroutine pile-up under
	// overload is bounded by the token count.
	slots chan struct{}

	// mu guards state and the inflight Add/Wait handoff (an Add racing
	// a Wait after the state flip would be a WaitGroup misuse).
	mu       sync.Mutex
	state    State
	inflight sync.WaitGroup
	// drainDone is created (under mu) by the first Drain call and closed
	// by the single waiter goroutine once the last in-flight request
	// completes — after it has flipped the state to Drained. Keeping the
	// transition on the waiter, not in Drain's select, means quiescence
	// that arrives after a drain context expired still lands the state
	// machine in Drained instead of sticking at Draining forever.
	drainDone chan struct{}

	statsMu      sync.Mutex
	queued       int
	admitted     int64
	served       int64
	shedOverload int64
	shedDeadline int64
	shedCanceled int64
	shedDraining int64
	waitHist     *obs.Histogram
}

// NewScheduler builds the lifecycle layer over pool. The pool must not
// be driven through Run while the scheduler is serving (offline
// experiments use one or the other at a time).
func NewScheduler(pool *workload.Pool, cfg Config) *Scheduler {
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	return &Scheduler{
		pool:     pool,
		cfg:      cfg,
		slots:    make(chan struct{}, pool.Size()+cfg.QueueDepth),
		waitHist: obs.NewHistogram(obs.DefLatencyBuckets()),
	}
}

// Pool returns the worker pool the scheduler serves from.
func (s *Scheduler) Pool() *workload.Pool { return s.pool }

// QueueDepth returns the instantaneous number of admitted requests
// waiting for a worker — the /metrics queue-depth gauge.
func (s *Scheduler) QueueDepth() int {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.queued
}

// QueueLimit returns the configured waiting-line capacity beyond the
// worker count.
func (s *Scheduler) QueueLimit() int { return s.cfg.QueueDepth }

// State returns the drain state machine's current position.
func (s *Scheduler) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Stats returns a consistent snapshot of the lifetime counters and the
// queue-wait histogram.
func (s *Scheduler) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return Stats{
		Admitted:     s.admitted,
		Served:       s.served,
		ShedOverload: s.shedOverload,
		ShedDeadline: s.shedDeadline,
		ShedCanceled: s.shedCanceled,
		ShedDraining: s.shedDraining,
		QueueWait:    s.waitHist.Snapshot(),
	}
}

// shedCtx maps a context failure observed before or at execution to its
// typed shed outcome and bumps the matching counter: a canceled context
// is the client abandoning the request (ErrCanceled), anything else is
// the deadline running out (ErrDeadline). Conflating the two would let
// client disconnects inflate the deadline-shed metrics and surface as
// 504s for requests nobody was waiting on.
func (s *Scheduler) shedCtx(err error) error {
	if errors.Is(err, context.Canceled) {
		s.count(&s.shedCanceled)
		return ErrCanceled
	}
	s.count(&s.shedDeadline)
	return ErrDeadline
}

// Do runs one request through the full lifecycle: admission (shed with
// ErrDraining or ErrOverloaded), queueing for a worker (bounded by the
// request's deadline; shed with ErrDeadline), execution of fn on the
// owned worker, and release. The returned duration is the time spent
// waiting for a worker, valid whenever admission succeeded (including
// ErrDeadline sheds — the wait is what expired the request). fn's error
// is returned as-is, except context failure: an expired deadline maps
// to ErrDeadline regardless of where the clock ran out, and a canceled
// context (the client abandoned the request) maps to ErrCanceled.
func (s *Scheduler) Do(ctx context.Context, fn func(w *workload.Worker) error) (time.Duration, error) {
	s.mu.Lock()
	if s.state != StateRunning {
		s.mu.Unlock()
		s.count(&s.shedDraining)
		return 0, ErrDraining
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return 0, s.shedCtx(err)
	}

	select {
	case s.slots <- struct{}{}:
	default:
		s.count(&s.shedOverload)
		return 0, ErrOverloaded
	}
	defer func() { <-s.slots }()

	s.statsMu.Lock()
	s.admitted++
	s.queued++
	s.statsMu.Unlock()
	t0 := time.Now()
	w, err := s.pool.AcquireCtx(ctx)
	wait := time.Since(t0)
	s.statsMu.Lock()
	s.queued--
	s.waitHist.Observe(wait.Seconds())
	s.statsMu.Unlock()
	if err != nil {
		return wait, s.shedCtx(err)
	}
	defer s.pool.Release(w)

	if err := fn(w); err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return wait, s.shedCtx(err)
		}
		return wait, err
	}
	s.count(&s.served)
	return wait, nil
}

// count bumps one lifetime counter under statsMu.
func (s *Scheduler) count(c *int64) {
	s.statsMu.Lock()
	*c++
	s.statsMu.Unlock()
}

// Drain runs the shutdown state machine: stop admitting (new requests
// shed with ErrDraining), then wait — bounded by ctx — for every
// in-flight request to complete. On success the state is Drained and
// every worker is back on the free list; if ctx expires first the
// state stays Draining and the context's error is returned. Drain is
// idempotent: concurrent or repeated calls all wait for the same
// quiescence, and quiescence that arrives after a bounded Drain already
// gave up still moves the state to Drained — the transition belongs to
// the single waiter goroutine, not to whichever Drain call happened to
// be watching. A repeated Drain after quiescence returns nil even if
// its own context has already expired.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.state == StateRunning {
		s.state = StateDraining
	}
	if s.drainDone == nil {
		done := make(chan struct{})
		s.drainDone = done
		go func() {
			s.inflight.Wait()
			s.mu.Lock()
			if s.state == StateDraining {
				s.state = StateDrained
			}
			s.mu.Unlock()
			close(done)
		}()
	}
	done := s.drainDone
	s.mu.Unlock()

	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Both channels may be ready at once (a re-drain with an already
		// expired context after quiescence); success must win the race.
		select {
		case <-done:
			return nil
		default:
		}
		return ctx.Err()
	}
}
