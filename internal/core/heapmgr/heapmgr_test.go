package heapmgr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/heap"
)

func newMgr() (*Manager, *heap.Allocator) {
	sw := heap.NewAllocator(nil, 0)
	return New(DefaultConfig(), sw), sw
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.ListEntries != 32 || c.MaxSize != 128 {
		t.Errorf("paper config is 8 classes x 32 entries, 128B limit: %+v", c)
	}
}

func TestConfigSanitize(t *testing.T) {
	c := Config{MaxSize: 4096, PrefetchLow: 100}.sanitized()
	if c.MaxSize != heap.MaxSmallSize {
		t.Errorf("MaxSize must clamp to the hardware limit: %d", c.MaxSize)
	}
	if c.PrefetchLow > c.ListEntries {
		t.Errorf("PrefetchLow must not exceed capacity: %+v", c)
	}
}

func TestMallocColdMissThenHits(t *testing.T) {
	h, _ := newMgr()
	b, res := h.Malloc(64)
	if res.Hit {
		t.Errorf("first malloc of a class must miss (empty hardware list)")
	}
	if b.Class != heap.ClassFor(64) {
		t.Errorf("block class = %d", b.Class)
	}
	// The prefetcher refilled; subsequent requests hit.
	for i := 0; i < 10; i++ {
		_, res := h.Malloc(64)
		if !res.Hit {
			t.Fatalf("malloc %d should hit after prefetch", i)
		}
	}
	st := h.Stats()
	if st.MallocHits != 10 || st.Mallocs != 11 {
		t.Errorf("stats = %+v", st)
	}
	if st.Prefetches == 0 {
		t.Errorf("prefetcher never ran")
	}
}

func TestLargeRequestsBypass(t *testing.T) {
	h, _ := newMgr()
	b, res := h.Malloc(256)
	if !res.Bypass || res.Hit {
		t.Fatalf("256B exceeds the comparator limit: %+v", res)
	}
	fr := h.Free(b)
	if !fr.Bypass {
		t.Errorf("large free should bypass: %+v", fr)
	}
	if h.Stats().Bypasses != 2 {
		t.Errorf("Bypasses = %d", h.Stats().Bypasses)
	}
	if h.Stats().Mallocs != 0 {
		t.Errorf("bypasses must not count as hardware requests")
	}
}

func TestMemoryReuseThroughHardware(t *testing.T) {
	// The strong-reuse pattern: free then malloc of the same class must
	// recycle the freed block from the hardware list without software.
	h, _ := newMgr()
	b, _ := h.Malloc(32)
	h.Free(b)
	b2, res := h.Malloc(32)
	if !res.Hit {
		t.Errorf("reuse malloc should hit")
	}
	if b2.Addr != b.Addr {
		t.Errorf("freed block not recycled: %#x then %#x", b.Addr, b2.Addr)
	}
}

func TestFreeOverflowSpills(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrefetchLow = 0 // keep lists from refilling so we control fill
	h := New(cfg, heap.NewAllocator(nil, 0))
	// Allocate enough blocks, then free them all: the list holds 32, the
	// rest must overflow to memory one by one.
	var blocks []heap.Block
	for i := 0; i < 40; i++ {
		b, _ := h.Malloc(16)
		blocks = append(blocks, b)
	}
	overflows := 0
	for _, b := range blocks {
		if h.Free(b).Overflow {
			overflows++
		}
	}
	if h.ListLen(0) != cfg.ListEntries {
		t.Errorf("list length = %d, want %d", h.ListLen(0), cfg.ListEntries)
	}
	if overflows != 40-cfg.ListEntries {
		t.Errorf("overflows = %d, want %d", overflows, 40-cfg.ListEntries)
	}
}

func TestFlushReturnsEverything(t *testing.T) {
	h, sw := newMgr()
	for i := 0; i < 5; i++ {
		b, _ := h.Malloc(48)
		h.Free(b)
	}
	inHW := 0
	for c := 0; c < heap.NumSmallClasses; c++ {
		inHW += h.ListLen(c)
	}
	n := h.Flush()
	if n != inHW {
		t.Errorf("Flush returned %d, want %d", n, inHW)
	}
	for c := 0; c < heap.NumSmallClasses; c++ {
		if h.ListLen(c) != 0 {
			t.Errorf("class %d list not empty after flush", c)
		}
	}
	if sw.LiveCount() != 0 {
		t.Errorf("no blocks should be live after free+flush")
	}
	// Post-flush allocation still works (cold path again).
	if _, res := h.Malloc(48); res.Hit {
		t.Errorf("first malloc after flush should miss")
	}
}

func TestNoDoubleAllocationAcrossBoundary(t *testing.T) {
	// Hardware-held blocks must never also be handed out by the software
	// allocator. heap.Allocator panics on double allocation, so simply
	// interleaving both paths exercises the invariant.
	h, sw := newMgr()
	seen := map[uint64]bool{}
	var live []heap.Block
	for i := 0; i < 200; i++ {
		var b heap.Block
		if i%3 == 0 {
			b = sw.Alloc(64) // direct software allocation
		} else {
			b, _ = h.Malloc(64)
		}
		if seen[b.Addr] {
			t.Fatalf("address %#x handed out twice", b.Addr)
		}
		seen[b.Addr] = true
		live = append(live, b)
	}
	for _, b := range live {
		h.Free(b)
		delete(seen, b.Addr)
	}
}

func TestHitRateIsHighUnderReuse(t *testing.T) {
	// The paper's premise: strong memory reuse means the common case is
	// served from the hardware free list.
	h, _ := newMgr()
	rng := rand.New(rand.NewSource(11))
	var live []heap.Block
	for op := 0; op < 50000; op++ {
		if len(live) < 20 || rng.Intn(2) == 0 {
			b, _ := h.Malloc(16 + rng.Intn(8)*16)
			live = append(live, b)
		} else {
			i := rng.Intn(len(live))
			h.Free(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if hr := h.Stats().MallocHitRate(); hr < 0.95 {
		t.Errorf("malloc hit rate %0.3f, want >= 0.95 under strong reuse", hr)
	}
}

func TestStatsZero(t *testing.T) {
	if (Stats{}).MallocHitRate() != 0 {
		t.Errorf("zero mallocs should have zero hit rate")
	}
}

// TestIntegrityProperty interleaves hardware malloc/free, flushes, and
// random sizes; allocator invariants (enforced by panics in heap) plus
// live accounting must hold throughout.
func TestIntegrityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sw := heap.NewAllocator(nil, 0)
		h := New(DefaultConfig(), sw)
		live := map[uint64]heap.Block{}
		for step := 0; step < 400; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4:
				b, _ := h.Malloc(1 + rng.Intn(200))
				if _, dup := live[b.Addr]; dup {
					return false
				}
				live[b.Addr] = b
			case 5, 6, 7, 8:
				for addr, b := range live {
					h.Free(b)
					delete(live, addr)
					break
				}
			case 9:
				h.Flush()
			}
			if sw.LiveCount() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHWMallocFree(b *testing.B) {
	h, _ := newMgr()
	for i := 0; i < b.N; i++ {
		blk, _ := h.Malloc(64)
		h.Free(blk)
	}
}

func TestFlushStepResumable(t *testing.T) {
	h, sw := newMgr()
	// Populate several lists.
	var blocks []heap.Block
	for i := 0; i < 60; i++ {
		b, _ := h.Malloc(16 + (i%8)*16)
		blocks = append(blocks, b)
	}
	for _, b := range blocks {
		h.Free(b)
	}
	inHW := 0
	for c := 0; c < heap.NumSmallClasses; c++ {
		inHW += h.ListLen(c)
	}

	// Flush in small steps, as if interrupted by page faults.
	var cur FlushCursor
	total, steps := 0, 0
	for !cur.Done() {
		var n int
		cur, n = h.FlushStep(cur, 7)
		total += n
		steps++
		if steps > 1000 {
			t.Fatalf("flush not making forward progress")
		}
	}
	if total != inHW {
		t.Errorf("resumable flush wrote %d blocks, want %d", total, inHW)
	}
	for c := 0; c < heap.NumSmallClasses; c++ {
		if h.ListLen(c) != 0 {
			t.Errorf("class %d not drained", c)
		}
	}
	if sw.LiveCount() != 0 {
		t.Errorf("blocks leaked across resumable flush")
	}
	// Idempotent after completion.
	if cur2, n := h.FlushStep(cur, 7); n != 0 || !cur2.Done() {
		t.Errorf("completed cursor should be a no-op")
	}
}

func TestFlushStepInterleavedAllocation(t *testing.T) {
	// Forward progress must hold even if the process resumes and
	// allocates between steps (the hardware stays consistent).
	h, _ := newMgr()
	b, _ := h.Malloc(64)
	h.Free(b)
	var cur FlushCursor
	cur, _ = h.FlushStep(cur, 1)
	b2, _ := h.Malloc(32) // interleaved work
	for !cur.Done() {
		cur, _ = h.FlushStep(cur, 4)
	}
	h.Free(b2)
	if h.Stats().Mallocs == 0 {
		t.Fatalf("sanity")
	}
}
