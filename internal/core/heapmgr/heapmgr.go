// Package heapmgr implements the paper's hardware heap manager (§4.3):
// the most frequently accessed components of the VM's slab allocator —
// the size class table and a few free lists — held in a small hardware
// structure that satisfies most allocation and deallocation requests in
// one cycle.
//
// Reproduced design points:
//
//   - A comparator limits hardware service to requests of at most 128
//     bytes; 8 size classes, each with a 32-entry hardware free list with
//     head and tail pointers. The core pops and pushes at the head; the
//     prefetcher refills at the tail.
//   - A pointer-chasing prefetcher pulls the next available blocks from
//     the software heap manager's free lists so a hardware miss is rare
//     and refill latency hides behind the common case.
//   - On hmfree overflow, the software handler spills one block back to
//     the memory free list (a single pointer store). Memory's heap
//     structures are otherwise updated lazily — only on overflow or at
//     context switches (hmflush) — unlike eagerly-coherent concurrent
//     work (Mallacc), exploiting the workloads' strong memory reuse.
package heapmgr

import (
	"repro/internal/heap"
)

// Config sizes the hardware heap manager.
type Config struct {
	// ListEntries is each hardware free list's capacity (paper: 32).
	ListEntries int
	// MaxSize is the comparator's request-size limit (paper: 128 bytes).
	MaxSize int
	// PrefetchLow triggers the prefetcher when a list drops below it.
	PrefetchLow int
	// PrefetchBatch is how many blocks one prefetch pulls in.
	PrefetchBatch int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{ListEntries: 32, MaxSize: heap.MaxSmallSize, PrefetchLow: 8, PrefetchBatch: 16}
}

func (c Config) sanitized() Config {
	if c.ListEntries <= 0 {
		c.ListEntries = 32
	}
	if c.MaxSize <= 0 || c.MaxSize > heap.MaxSmallSize {
		c.MaxSize = heap.MaxSmallSize
	}
	if c.PrefetchLow < 0 {
		c.PrefetchLow = 0
	}
	if c.PrefetchLow > c.ListEntries {
		c.PrefetchLow = c.ListEntries
	}
	if c.PrefetchBatch <= 0 {
		c.PrefetchBatch = 16
	}
	return c
}

// Stats counts hardware heap manager activity.
type Stats struct {
	Mallocs      int64 // hmmalloc requests within the comparator limit
	MallocHits   int64 // served from a hardware free list
	Frees        int64 // hmfree requests within the comparator limit
	FreeHits     int64 // absorbed by a hardware free list
	Overflows    int64 // hmfree spills to memory (software handler)
	Bypasses     int64 // requests above MaxSize (software path)
	Prefetches   int64 // prefetcher refill operations
	PrefetchedBl int64 // blocks brought in by the prefetcher
	Flushes      int64 // hmflush invocations
}

// MallocHitRate returns the fraction of eligible mallocs served in
// hardware.
func (s Stats) MallocHitRate() float64 {
	if s.Mallocs == 0 {
		return 0
	}
	return float64(s.MallocHits) / float64(s.Mallocs)
}

// Manager is the hardware heap manager bound to the software slab
// allocator it stays lazily coherent with.
type Manager struct {
	cfg     Config
	sw      *heap.Allocator
	lists   [][]uint64 // per small class; index 0 is the head end
	scratch []uint64   // prefetch prepend staging, reused across refills
	stats   Stats
}

// New builds a manager over the given software allocator.
func New(cfg Config, sw *heap.Allocator) *Manager {
	cfg = cfg.sanitized()
	return &Manager{
		cfg:   cfg,
		sw:    sw,
		lists: make([][]uint64, heap.NumSmallClasses),
	}
}

// Config returns the manager's configuration.
func (h *Manager) Config() Config { return h.cfg }

// Stats returns a snapshot of the activity counters.
func (h *Manager) Stats() Stats { return h.stats }

// ResetStats clears the activity counters.
func (h *Manager) ResetStats() { h.stats = Stats{} }

// ListLen returns the current length of class c's hardware free list.
func (h *Manager) ListLen(c int) int { return len(h.lists[c]) }

// MallocResult reports how an allocation was served.
type MallocResult struct {
	Hit      bool // popped from the hardware free list (1 cycle)
	Bypass   bool // size above the comparator limit; software path
	Prefetch bool // the prefetcher refilled after this request
}

// Malloc performs an hmmalloc. Requests above the comparator limit set
// the zero flag (Bypass) and take the software path entirely.
func (h *Manager) Malloc(size int) (heap.Block, MallocResult) {
	if size > h.cfg.MaxSize {
		h.stats.Bypasses++
		return h.sw.Alloc(size), MallocResult{Bypass: true}
	}
	c := heap.ClassFor(size)
	h.stats.Mallocs++
	res := MallocResult{}
	if len(h.lists[c]) == 0 {
		// Zero flag raised: the software handler pulls the next free block
		// from the software heap manager.
		h.lists[c] = h.sw.PopFree(c, 1, h.lists[c])
	} else {
		res.Hit = true
		h.stats.MallocHits++
	}
	// Pop at the head.
	addr := h.lists[c][len(h.lists[c])-1]
	h.lists[c] = h.lists[c][:len(h.lists[c])-1]
	h.sw.MarkLive(addr, c)

	// The prefetcher tops the list back up through the tail pointer.
	if len(h.lists[c]) < h.cfg.PrefetchLow {
		n := h.cfg.PrefetchBatch
		if room := h.cfg.ListEntries - len(h.lists[c]); n > room {
			n = room
		}
		if n > 0 {
			// Refilled blocks go at the tail end (the front of the slice)
			// ahead of whatever survived; staged through h.scratch so the
			// prepend reuses the list's own backing instead of allocating.
			h.scratch = append(h.scratch[:0], h.lists[c]...)
			refilled := h.sw.PopFree(c, n, h.lists[c][:0])
			got := len(refilled)
			h.lists[c] = append(refilled, h.scratch...)
			h.stats.Prefetches++
			h.stats.PrefetchedBl += int64(got)
			res.Prefetch = true
		}
	}
	return heap.Block{Addr: addr, Class: c, Size: size}, res
}

// FreeResult reports how a deallocation was served.
type FreeResult struct {
	Hit      bool // absorbed by the hardware free list
	Bypass   bool // block above the comparator limit
	Overflow bool // software handler spilled a block to memory
}

// Free performs an hmfree. An overflowing list sets the zero flag and the
// software handler links the evicted block back into the memory free
// list.
func (h *Manager) Free(b heap.Block) FreeResult {
	if b.Class < 0 || b.Class >= heap.NumSmallClasses || b.Size > h.cfg.MaxSize {
		h.stats.Bypasses++
		h.sw.Free(b)
		return FreeResult{Bypass: true}
	}
	h.stats.Frees++
	h.sw.MarkDead(b.Addr, b.Class)
	res := FreeResult{Hit: true}
	h.stats.FreeHits++
	if len(h.lists[b.Class]) >= h.cfg.ListEntries {
		// Overflow: spill the tail block (the coldest) to memory.
		h.stats.Overflows++
		res.Overflow = true
		spill := h.lists[b.Class][0]
		h.lists[b.Class] = h.lists[b.Class][1:]
		h.sw.PushFree(b.Class, []uint64{spill})
	}
	h.lists[b.Class] = append(h.lists[b.Class], b.Addr)
	return res
}

// Flush implements hmflush: every hardware free list entry is written
// back to the software heap manager's data structure, as required at
// context switches. It returns the number of blocks flushed.
func (h *Manager) Flush() int {
	h.stats.Flushes++
	n := 0
	for c := range h.lists {
		if len(h.lists[c]) == 0 {
			continue
		}
		h.sw.PushFree(c, h.lists[c])
		n += len(h.lists[c])
		h.lists[c] = nil
	}
	return n
}

// FlushCursor tracks the progress of a resumable hmflush. §4.6: "hmflush
// is resumable in order to guarantee forward progress in the case that
// multiple page faults occur during the flush." A zero FlushCursor starts
// a fresh flush.
type FlushCursor struct {
	class int
	done  bool
}

// Done reports whether the flush has completed.
func (c FlushCursor) Done() bool { return c.done }

// FlushStep writes back at most maxBlocks hardware free-list blocks,
// returning the updated cursor and the number of blocks written. Calling
// it repeatedly until Done drains every list; the hardware state stays
// consistent at every step, so a page fault (or preemption) between steps
// loses nothing.
func (h *Manager) FlushStep(cur FlushCursor, maxBlocks int) (FlushCursor, int) {
	if cur.done {
		return cur, 0
	}
	if maxBlocks <= 0 {
		maxBlocks = 1
	}
	written := 0
	for cur.class < len(h.lists) && written < maxBlocks {
		fl := h.lists[cur.class]
		if len(fl) == 0 {
			cur.class++
			continue
		}
		n := maxBlocks - written
		if n > len(fl) {
			n = len(fl)
		}
		// Spill from the tail end (the coldest blocks) first.
		h.sw.PushFree(cur.class, fl[:n])
		h.lists[cur.class] = fl[n:]
		written += n
	}
	if cur.class >= len(h.lists) {
		cur.done = true
		h.stats.Flushes++
	}
	return cur, written
}
