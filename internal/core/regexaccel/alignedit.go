package regexaccel

import (
	"repro/internal/regex"
	"repro/internal/strlib"
)

// ShadowReplace performs a regexp replacement under an existing hint
// vector and keeps the HV usable for the remaining shadow regexps by
// whitespace padding (§4.5): the HTML specification allows an arbitrary
// number of linear white spaces in the response body, so each edited
// segment group is padded with spaces up to a segment boundary. Segment
// boundaries of unedited content therefore stay aligned with the HV, and
// only the bits of edited segments are recomputed.
//
// It returns the edited content, the updated HV (valid for the new
// content), the number of replacements, and the engine scanned-byte cost
// of the underlying shadow scan. Apart from the inserted padding spaces,
// the result text equals an ordinary ReplaceAll.
func (a *Accel) ShadowReplace(re *regex.Regex, content []byte, repl []byte, hv *HV) ([]byte, *HV, int, int) {
	ms, examined := a.shadowAppend(a.shadowMS[:0], re, content, hv)
	a.shadowMS = ms
	if len(ms) == 0 {
		if hv != nil && hv.Covers(len(content)) {
			return content, hv, 0, examined
		}
		bits := strlib.ClassScanRef(content, a.cfg.SegSize)
		return content, &HV{bits: bits, segSize: a.cfg.SegSize, n: len(content)}, 0, examined
	}
	seg := a.cfg.SegSize
	nseg := (len(content) + seg - 1) / seg

	// Mark segments touched by any match (reused scratch).
	if cap(a.touched) < nseg {
		a.touched = make([]bool, nseg)
	}
	touched := a.touched[:nseg]
	clear(touched)
	for _, m := range ms {
		lo := m.Start / seg
		hi := lo
		if m.End > m.Start {
			hi = (m.End - 1) / seg
		}
		for s := lo; s <= hi && s < nseg; s++ {
			touched[s] = true
		}
	}

	// Worst case the output holds the content, every replacement, and
	// up to a segment of padding per match group.
	out := a.buf(len(content) + len(ms)*(len(repl)+seg))
	flags := a.flags[:0]
	mi := 0
	for s := 0; s < nseg; {
		lo := s * seg
		if !touched[s] {
			hi := lo + seg
			if hi > len(content) {
				hi = len(content)
			}
			out = append(out, content[lo:hi]...)
			flags = append(flags, hv != nil && hv.Covers(len(content)) && hv.flagged(s))
			s++
			continue
		}
		// Extend over the contiguous touched group.
		e := s
		for e+1 < nseg && touched[e+1] {
			e++
		}
		hi := (e + 1) * seg
		if hi > len(content) {
			hi = len(content)
		}
		// Apply the replacements inside [lo, hi) (reused scratch).
		edited := a.edited[:0]
		prev := lo
		for mi < len(ms) && ms[mi].Start < hi {
			m := ms[mi]
			edited = append(edited, content[prev:m.Start]...)
			edited = append(edited, repl...)
			prev = m.End
			mi++
		}
		edited = append(edited, content[prev:hi]...)
		// Whitespace padding to the next segment boundary keeps all later
		// boundaries aligned with the original HV.
		if hi == (e+1)*seg { // only pad interior groups, not a trailing partial
			for len(edited)%seg != 0 {
				edited = append(edited, ' ')
			}
		}
		out = append(out, edited...)
		// Recompute flags for just the edited group's segments.
		sub := strlib.ClassScanRef(edited, seg)
		for i := 0; i < (len(edited)+seg-1)/seg; i++ {
			flags = append(flags, sub[i/64]&(1<<uint(i%64)) != 0)
		}
		a.edited = edited
		s = e + 1
	}
	a.flags = flags

	bits := make([]uint64, (len(flags)+63)/64)
	for i, f := range flags {
		if f {
			bits[i/64] |= 1 << uint(i%64)
		}
	}
	return out, &HV{bits: bits, segSize: seg, n: len(out)}, len(ms), examined
}
