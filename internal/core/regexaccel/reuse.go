package regexaccel

import (
	"repro/internal/regex"
)

// reuseEntry is one row of the hardware content reuse table (Fig. 13):
// indexed by regexp PC and address-space identifier, it stores the
// matching content seen last time, its size, and the FSM state the
// regexp can jump to when the incoming content matches the stored prefix.
type reuseEntry struct {
	valid    bool
	pc       uint64
	asid     uint32
	content  []byte // at most MaxReuseContent bytes
	size     int    // matched prefix length the FSM state corresponds to
	fsmState int32
	fsmValid bool
	lru      uint64
}

// ReuseResult describes how a reuse lookup resolved, mirroring the three
// scenarios in §4.5.
type ReuseResult struct {
	// Hit: PC, ASID, and content match — the FSM jumped over Skipped
	// bytes directly to the stored state.
	Hit bool
	// InvalidMiss: PC/ASID miss or first content byte differs; the entry
	// was (re)installed and the FSM ran normally.
	InvalidMiss bool
	// Resized: PC+ASID hit but the matching size changed; the entry was
	// updated and the software traversal recorded the new FSM state.
	Resized bool
	// Skipped is the number of content bytes the FSM did not re-process.
	Skipped int
}

// lookupEntry finds the reuse table row for (pc, asid), or a victim row
// to install into (LRU).
func (a *Accel) lookupEntry(pc uint64, asid uint32) (match *reuseEntry, victim *reuseEntry) {
	victim = &a.reuse[0]
	for i := range a.reuse {
		e := &a.reuse[i]
		if e.valid && e.pc == pc && e.asid == asid {
			return e, nil
		}
		if !e.valid {
			if victim.valid || e.lru < victim.lru {
				victim = e
			}
			continue
		}
		if !victim.valid {
			continue
		}
		if e.lru < victim.lru {
			victim = e
		}
	}
	return nil, victim
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// ScanWithReuse performs an anchored FSM traversal of content for the
// regexp identified by (pc, asid), consulting and updating the content
// reuse table. It returns the final FSM state (regex.Dead if the
// traversal died), whether an accepting state was ever reached and where
// the longest accepted prefix ends, plus the reuse outcome.
//
// The traversal is exactly equivalent to running the FSM from the start
// over the whole content; a hit merely jumps the FSM forward over the
// remembered prefix (the regexlookup instruction), and after a size
// change the software stores the new state with regexset.
func (a *Accel) ScanWithReuse(re *regex.Regex, pc uint64, asid uint32, content []byte) (accEnd int, res ReuseResult) {
	a.stats.ReuseLookups++
	a.clock++
	d := re.FSM()

	e, victim := a.lookupEntry(pc, asid)
	limit := a.cfg.MaxReuseContent

	install := func(slot *reuseEntry) {
		n := len(content)
		if n > limit {
			n = limit
		}
		*slot = reuseEntry{
			valid:   true,
			pc:      pc,
			asid:    asid,
			content: append([]byte(nil), content[:n]...),
			lru:     a.clock,
		}
	}

	scanFrom := func(state int32, from int) int {
		// Software FSM traversal from the given state/offset, tracking the
		// longest accepting prefix end (anchored semantics).
		best := -1
		if d.Accepting(state) {
			best = from
		}
		st := state
		for i := from; i < len(content); i++ {
			st = d.Step(st, content[i])
			if st == regex.Dead {
				break
			}
			if d.Accepting(st) {
				best = i + 1
			}
		}
		return best
	}

	switch {
	case e == nil:
		// PC/ASID miss: invalid-miss, install fresh entry.
		a.stats.ReuseInvalid++
		res.InvalidMiss = true
		install(victim)
		e = victim
	case len(content) == 0 || len(e.content) == 0 || e.content[0] != content[0]:
		// First byte differs: invalid-miss, overwrite in place.
		a.stats.ReuseInvalid++
		res.InvalidMiss = true
		install(e)
	default:
		p := commonPrefix(e.content, content)
		if p > limit {
			p = limit
		}
		e.lru = a.clock
		if e.fsmValid && e.size > 0 && p >= e.size {
			// Full hit: jump to the stored FSM state past size bytes.
			a.stats.ReuseHits++
			res.Hit = true
			res.Skipped = e.size
			a.stats.BytesPresented += int64(len(content))
			a.stats.BytesSkippedReuse += int64(e.size)
			accEnd = scanFrom(e.fsmState, e.size)
			return accEnd, res
		}
		// Size mismatch (or cleared): update content and size, traverse in
		// software, and store the state at the new prefix for next time.
		a.stats.ReuseResizes++
		res.Resized = true
		n := len(content)
		if n > limit {
			n = limit
		}
		e.content = append(e.content[:0], content[:n]...)
		e.size = p
		st := d.Run(d.Start(), content[:p])
		if st != regex.Dead {
			e.fsmState = st
			e.fsmValid = true
		} else {
			e.fsmValid = false
			e.size = 0
		}
		a.stats.BytesPresented += int64(len(content))
		accEnd = scanFrom(d.Start(), 0)
		return accEnd, res
	}

	// Invalid-miss path: size and FSM fields cleared, traverse normally.
	a.stats.BytesPresented += int64(len(content))
	accEnd = scanFrom(d.Start(), 0)
	return accEnd, res
}
