package regexaccel

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/regex"
	"repro/internal/strlib"
)

// genContent builds HTML-ish content: mostly regular characters with
// occasional special characters, the texture the paper's workloads see.
func genContent(rng *rand.Rand, n int) []byte {
	specials := []byte(`'"<>&\n();!`)
	out := make([]byte, n)
	for i := range out {
		if rng.Intn(20) == 0 {
			out[i] = specials[rng.Intn(len(specials))]
		} else {
			out[i] = byte('a' + rng.Intn(26))
		}
	}
	return out
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.ReuseEntries != 32 || c.MaxReuseContent != 32 {
		t.Errorf("paper: 32-entry reuse table, 32-byte content field: %+v", c)
	}
}

func TestMaxRegularPrefix(t *testing.T) {
	cases := []struct {
		pattern string
		want    int
	}{
		{`'`, 0},        // starts with a special
		{`<[a-z]+>`, 0}, // starts with '<'
		{`[a-z]'`, 1},   // one regular char then the special
		{`ab<`, 2},      // two regular chars
		{`a?b?<`, 2},    // optional regulars: still bounded
		{`\w+'`, -1},    // unbounded regular run before the quote
		{`[a-z]*<`, -1}, // unbounded
	}
	for _, c := range cases {
		re := regex.MustCompile(c.pattern)
		got := maxRegularPrefix(re.FSM(), strlib.IsRegular)
		if got != c.want {
			t.Errorf("maxRegularPrefix(%q) = %d, want %d", c.pattern, got, c.want)
		}
	}
}

func TestSiftable(t *testing.T) {
	a := New(DefaultConfig())
	cases := []struct {
		pattern string
		want    bool
	}{
		{`'`, true},
		{`<[a-z]+>`, true},
		{`[a-z]+`, false}, // no special required
		{`\w+'`, false},   // unbounded prefix
		{`"`, true},
	}
	for _, c := range cases {
		re := regex.MustCompile(c.pattern)
		if got := a.Siftable(re); got != c.want {
			t.Errorf("Siftable(%q) = %v, want %v", c.pattern, got, c.want)
		}
	}
}

func TestSieveProducesReferenceHV(t *testing.T) {
	a := New(DefaultConfig())
	re := regex.MustCompile(`'`)
	content := []byte("abcd'efgh" + strings.Repeat("x", 100))
	ms, hv := a.Sieve(re, content, nil)
	if len(ms) != 1 || ms[0].Start != 4 {
		t.Fatalf("sieve matches wrong: %v", ms)
	}
	want := strlib.ClassScanRef(content, a.cfg.SegSize)
	for i := range want {
		if hv.bits[i] != want[i] {
			t.Errorf("HV word %d = %b, want %b", i, hv.bits[i], want[i])
		}
	}
	if !hv.Covers(len(content)) {
		t.Errorf("HV should cover the content")
	}
}

func TestShadowSkipsCleanContent(t *testing.T) {
	a := New(DefaultConfig())
	sieve := regex.MustCompile(`'`)
	shadow := regex.MustCompile(`"`)
	// 4KB of purely regular content: every segment clean.
	content := bytes.Repeat([]byte("cleantext "), 410)
	_, hv := a.Sieve(sieve, content, nil)
	ms, examined := a.Shadow(shadow, content, hv)
	if len(ms) != 0 {
		t.Fatalf("no quotes in content: %v", ms)
	}
	if examined != 0 {
		t.Errorf("clean content should be skipped entirely, examined %d", examined)
	}
	if a.Stats().BytesSkippedSift != int64(len(content)) {
		t.Errorf("BytesSkippedSift = %d, want %d", a.Stats().BytesSkippedSift, len(content))
	}
}

func TestShadowFindsMatchesNearFlags(t *testing.T) {
	a := New(DefaultConfig())
	sieve := regex.MustCompile(`'`)
	shadow := regex.MustCompile(`"[a-z]*"`)
	content := append(bytes.Repeat([]byte("r"), 200), []byte(`"quoted"`)...)
	content = append(content, bytes.Repeat([]byte("r"), 200)...)
	_, hv := a.Sieve(sieve, content, nil)
	ms, examined := a.Shadow(shadow, content, hv)
	if len(ms) != 1 || ms[0].Start != 200 || ms[0].End != 208 {
		t.Fatalf("shadow matches = %v", ms)
	}
	// The quoted span sits in one flagged segment; the candidate windows
	// around it are far smaller than the content.
	full, fullScanned := a.fullScan(nil, shadow, content)
	if len(full) != 1 {
		t.Fatalf("full scan matches = %v", full)
	}
	if examined >= fullScanned {
		t.Errorf("shadow examined %d, full scan %d; sifting should win", examined, fullScanned)
	}
}

func TestShadowEquivalenceProperty(t *testing.T) {
	a := New(DefaultConfig())
	patterns := []*regex.Regex{
		regex.MustCompile(`'`),
		regex.MustCompile(`"[a-z]*"`),
		regex.MustCompile(`<[a-z]+>`),
		regex.MustCompile(`&`),
		regex.MustCompile(`[a-z]'`),
		regex.MustCompile(`[a-z]+`), // non-siftable: full scan path
	}
	f := func(seed int64, size uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		content := genContent(rng, int(size%2000))
		sieve := regex.MustCompile(`<`)
		_, hv := a.Sieve(sieve, content, nil)
		for _, re := range patterns {
			got, _ := a.Shadow(re, content, hv)
			want := re.FindAll(content)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestShadowWithoutHVFallsBack(t *testing.T) {
	a := New(DefaultConfig())
	re := regex.MustCompile(`'`)
	content := []byte("it's")
	ms, examined := a.Shadow(re, content, nil)
	if len(ms) != 1 || examined <= 0 {
		t.Errorf("no-HV shadow should scan fully: %v %d", ms, examined)
	}
	if a.Stats().NonSiftable != 1 {
		t.Errorf("NonSiftable = %d", a.Stats().NonSiftable)
	}
}

func TestShadowStaleHVRejected(t *testing.T) {
	a := New(DefaultConfig())
	sieve := regex.MustCompile(`<`)
	content := []byte(strings.Repeat("x", 100))
	_, hv := a.Sieve(sieve, content, nil)
	// Content changed length: the HV no longer covers it.
	longer := append(content, []byte("'")...)
	ms, _ := a.Shadow(regex.MustCompile(`'`), longer, hv)
	if len(ms) != 1 {
		t.Errorf("stale HV must not hide matches: %v", ms)
	}
}

func TestScanWithReusePaperScenario(t *testing.T) {
	// Fig. 13: scanning author URLs where only the name field changes.
	a := New(DefaultConfig())
	re := regex.MustCompile(`https://[a-z]+/\?author=[a-z]+`)
	const pc, asid = 0x401000, 7

	u1 := []byte("https://localhost/?author=abc")
	end, res := a.ScanWithReuse(re, pc, asid, u1)
	if !res.InvalidMiss || end != len(u1) {
		t.Fatalf("first scan: %+v end=%d", res, end)
	}
	u2 := []byte("https://localhost/?author=xyz")
	end, res = a.ScanWithReuse(re, pc, asid, u2)
	if !res.Resized || end != len(u2) {
		t.Fatalf("second scan should resize: %+v end=%d", res, end)
	}
	u3 := []byte("https://localhost/?author=qrs")
	end, res = a.ScanWithReuse(re, pc, asid, u3)
	if !res.Hit || end != len(u3) {
		t.Fatalf("third scan should hit: %+v end=%d", res, end)
	}
	if res.Skipped != 26 {
		t.Errorf("skipped %d bytes, want 26 (the paper's stored size)", res.Skipped)
	}
}

func TestScanWithReuseFirstByteMismatch(t *testing.T) {
	a := New(DefaultConfig())
	re := regex.MustCompile(`[a-z]+`)
	a.ScanWithReuse(re, 1, 1, []byte("aaaa"))
	_, res := a.ScanWithReuse(re, 1, 1, []byte("zzzz"))
	if !res.InvalidMiss {
		t.Errorf("first-byte mismatch should be an invalid miss: %+v", res)
	}
}

func TestScanWithReuseEquivalenceProperty(t *testing.T) {
	// Whatever the table state, the accepted-prefix end must equal a
	// direct anchored traversal.
	re := regex.MustCompile(`https://[a-z]+/\?[a-z]+=[a-z0-9]+`)
	ref := func(content []byte) int {
		d := re.FSM()
		best := -1
		st := d.Start()
		if d.Accepting(st) {
			best = 0
		}
		for i, b := range content {
			st = d.Step(st, b)
			if st == regex.Dead {
				break
			}
			if d.Accepting(st) {
				best = i + 1
			}
		}
		return best
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(DefaultConfig())
		hosts := []string{"localhost", "example", "wiki"}
		keys := []string{"author", "page", "id"}
		for step := 0; step < 200; step++ {
			u := fmt.Sprintf("https://%s/?%s=%s%d",
				hosts[rng.Intn(3)], keys[rng.Intn(3)],
				string(rune('a'+rng.Intn(26))), rng.Intn(100))
			content := []byte(u)
			pc := uint64(rng.Intn(3))
			end, _ := a.ScanWithReuse(re, pc, 1, content)
			if end != ref(content) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReuseTableLRUEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReuseEntries = 4
	a := New(cfg)
	re := regex.MustCompile(`[a-z]+`)
	// Fill the table with 4 PCs, then a 5th evicts the LRU (pc=1).
	for pc := uint64(1); pc <= 5; pc++ {
		a.ScanWithReuse(re, pc, 1, []byte("abc"))
	}
	// PC 5 must be resident now: scanning again with same content resizes
	// or hits rather than invalid-missing.
	_, res := a.ScanWithReuse(re, 5, 1, []byte("abc"))
	if res.InvalidMiss {
		t.Errorf("recently installed entry was evicted: %+v", res)
	}
	_, res = a.ScanWithReuse(re, 1, 1, []byte("abc"))
	if !res.InvalidMiss {
		t.Errorf("LRU entry should have been evicted: %+v", res)
	}
}

func TestReuseASIDIsolation(t *testing.T) {
	a := New(DefaultConfig())
	re := regex.MustCompile(`[a-z]+`)
	a.ScanWithReuse(re, 1, 100, []byte("abc"))
	_, res := a.ScanWithReuse(re, 1, 200, []byte("abc"))
	if !res.InvalidMiss {
		t.Errorf("different ASID must not hit: %+v", res)
	}
}

func TestShadowReplaceKeepsTextModuloPadding(t *testing.T) {
	a := New(DefaultConfig())
	sieve := regex.MustCompile(`<`)
	re := regex.MustCompile(`'`)
	content := []byte("it's a test with 'quotes' spread " + strings.Repeat("padding ", 20) + "and more'")
	_, hv := a.Sieve(sieve, content, nil)

	got, newHV, n, _ := a.ShadowReplace(re, content, []byte("&#039;"), hv)
	want, wantN := re.ReplaceAll(content, []byte("&#039;"))
	if n != wantN {
		t.Fatalf("replacement count %d, want %d", n, wantN)
	}
	// Identical after stripping the alignment padding.
	if strings.ReplaceAll(string(got), " ", "") != strings.ReplaceAll(string(want), " ", "") {
		t.Errorf("text mismatch:\n got %q\nwant %q", got, want)
	}
	// The updated HV must be exactly the reference HV of the new content.
	ref := strlib.ClassScanRef(got, a.cfg.SegSize)
	if !newHV.Covers(len(got)) {
		t.Fatalf("new HV does not cover new content")
	}
	for i := range ref {
		if newHV.bits[i] != ref[i] {
			t.Errorf("new HV word %d = %b, want %b", i, newHV.bits[i], ref[i])
		}
	}
}

func TestShadowReplaceChainProperty(t *testing.T) {
	// A chain of shadow replacements (the Fig. 11 pattern) must keep HVs
	// sound: after each edit, shadow scans with the updated HV find the
	// same matches as full scans.
	chain := []struct {
		pattern string
		repl    string
	}{
		{`'`, "&#039;"},
		{`"`, "&quot;"},
		{`<`, "&lt;"},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(DefaultConfig())
		content := genContent(rng, 600)
		sieve := regex.MustCompile(`&`)
		_, hv := a.Sieve(sieve, content, nil)
		for _, step := range chain {
			re := regex.MustCompile(step.pattern)
			// Check scan equivalence first.
			got, _ := a.Shadow(re, content, hv)
			want := re.FindAll(content)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				return false
			}
			content, hv, _, _ = a.ShadowReplace(re, content, []byte(step.repl), hv)
			// HV soundness: every special char's segment is flagged.
			ref := strlib.ClassScanRef(content, a.cfg.SegSize)
			for i := range ref {
				if hv.bits[i]&ref[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSkipFraction(t *testing.T) {
	if (Stats{}).SkipFraction() != 0 {
		t.Errorf("zero presented bytes should give zero fraction")
	}
	s := Stats{BytesPresented: 100, BytesSkippedSift: 30, BytesSkippedReuse: 20}
	if s.SkipFraction() != 0.5 {
		t.Errorf("SkipFraction = %v", s.SkipFraction())
	}
}

func BenchmarkShadowVsFull(b *testing.B) {
	a := New(DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	content := genContent(rng, 65536)
	sieve := regex.MustCompile(`<`)
	_, hv := a.Sieve(sieve, content, nil)
	shadow := regex.MustCompile(`"[a-z]*"`)

	b.Run("shadow-sifted", func(b *testing.B) {
		b.SetBytes(int64(len(content)))
		for i := 0; i < b.N; i++ {
			a.Shadow(shadow, content, hv)
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.SetBytes(int64(len(content)))
		for i := 0; i < b.N; i++ {
			shadow.FindAll(content)
		}
	})
}
