// Package regexaccel implements the paper's two regular expression
// acceleration techniques (§4.5): Content Sifting and Content Reuse.
// Both avoid repetitive character-at-a-time processing of textual data by
// exploiting content locality across the regexps of real PHP
// applications, rather than building a parallel matching engine.
//
// Content Sifting: the first regexp over a piece of content (the sieve)
// scans it fully while the string accelerator produces a hint vector (HV)
// — one bit per fixed-size segment, set when the segment may contain a
// special character. Later regexps over the same content (the shadows)
// that provably need a special character to match consult the HV and skip
// unflagged segments wholesale, using a count-leading-zeros step to find
// the next flagged segment.
//
// Content Reuse: a small table remembers, per regexp PC and address-space
// ID, the last content prefix scanned and the FSM state the scan reached;
// when nearly identical content arrives again (URLs differing only in the
// last field, repeated HTML attribute values), the FSM jumps straight to
// the remembered state, skipping the shared prefix even when it contains
// special characters.
package regexaccel

import (
	"repro/internal/regex"
	"repro/internal/strlib"
)

// Config sizes the accelerator.
type Config struct {
	// SegSize is the sifting segment granularity in bytes.
	SegSize int
	// ReuseEntries is the content reuse table capacity (paper: 32).
	ReuseEntries int
	// MaxReuseContent caps the stored content prefix (paper: 32 bytes).
	MaxReuseContent int
	// MaxRegularPrefix bounds how many leading regular characters a
	// shadow regexp's match may have and still be sift-eligible.
	MaxRegularPrefix int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{SegSize: 32, ReuseEntries: 32, MaxReuseContent: 32, MaxRegularPrefix: 64}
}

func (c Config) sanitized() Config {
	if c.SegSize <= 0 {
		c.SegSize = 32
	}
	if c.ReuseEntries <= 0 {
		c.ReuseEntries = 32
	}
	if c.MaxReuseContent <= 0 {
		c.MaxReuseContent = 32
	}
	if c.MaxRegularPrefix <= 0 {
		c.MaxRegularPrefix = 64
	}
	return c
}

// Stats counts the content each technique allowed regexps to skip, the
// data behind Fig. 12.
type Stats struct {
	SieveScans        int64 // full scans that also produced an HV
	ShadowScans       int64 // scans served under an HV
	BytesPresented    int64 // content bytes offered to shadow/reuse regexps
	BytesSkippedSift  int64 // bytes never scanned thanks to the HV
	BytesSkippedReuse int64 // bytes skipped by FSM state jumps
	ReuseLookups      int64
	ReuseHits         int64 // PC+ASID+content match with a valid FSM state
	ReuseInvalid      int64 // invalid-miss: entry (re)installed
	ReuseResizes      int64 // size-mismatch updates
	NonSiftable       int64 // shadow scans that had to run in full
}

// SkipFraction returns the fraction of presented bytes skipped by either
// technique.
func (s Stats) SkipFraction() float64 {
	if s.BytesPresented == 0 {
		return 0
	}
	return float64(s.BytesSkippedSift+s.BytesSkippedReuse) / float64(s.BytesPresented)
}

// Accel is the regexp accelerator front end. Like the string
// accelerator it is a single-owner per-core structure, which makes its
// private scratch buffers safe to reuse across operations.
type Accel struct {
	cfg   Config
	reuse []reuseEntry
	clock uint64
	stats Stats
	mem   strlib.Allocator
	// ShadowReplace scratch, reused across calls.
	touched []bool
	flags   []bool
	edited  []byte
	wins    []window
	// Match-range scratch: sieveMS backs Sieve results, shadowMS backs
	// the shadow scan inside ShadowReplace. Both are consumed before the
	// next call on this (single-owner) accelerator.
	sieveMS  []regex.MatchRange
	shadowMS []regex.MatchRange
	// meta memoizes per-regexp sift eligibility and margin — both are
	// pure functions of the (immutable) FSM, and recomputing them walks
	// the DFA with fresh visit bookkeeping on every shadow scan.
	meta map[*regex.Regex]siftMeta
}

// siftMeta is the memoized per-regexp sifting analysis.
type siftMeta struct {
	siftable bool
	margin   int // maxRegularPrefix result (-1 when unbounded)
}

// siftInfo returns (computing once) the regexp's sift eligibility and
// regular-prefix margin.
func (a *Accel) siftInfo(re *regex.Regex) siftMeta {
	if m, ok := a.meta[re]; ok {
		return m
	}
	p := maxRegularPrefix(re.FSM(), strlib.IsRegular)
	m := siftMeta{
		margin:   p,
		siftable: re.RequiresSpecial(strlib.IsRegular) && p >= 0 && p <= a.cfg.MaxRegularPrefix,
	}
	if a.meta == nil {
		a.meta = make(map[*regex.Regex]siftMeta)
	}
	a.meta[re] = m
	return m
}

// SetMem routes edited-content allocation through m — typically the
// owning core's request arena. Results then follow m's lifetime; see
// strlib.Allocator.
func (a *Accel) SetMem(m strlib.Allocator) { a.mem = m }

// buf allocates a zero-length, capacity-c result slice.
func (a *Accel) buf(c int) []byte {
	if a.mem != nil {
		return a.mem.Buf(c)
	}
	return make([]byte, 0, c)
}

// New builds the accelerator.
func New(cfg Config) *Accel {
	cfg = cfg.sanitized()
	return &Accel{cfg: cfg, reuse: make([]reuseEntry, cfg.ReuseEntries)}
}

// Config returns the configuration.
func (a *Accel) Config() Config { return a.cfg }

// Stats returns a snapshot of the counters.
func (a *Accel) Stats() Stats { return a.stats }

// ResetStats clears the counters.
func (a *Accel) ResetStats() { a.stats = Stats{} }

// HV is a hint vector over a specific content length.
type HV struct {
	bits    []uint64
	segSize int
	n       int // content length the HV covers
}

// Covers reports whether the HV is still valid for content of this length.
func (h *HV) Covers(n int) bool { return h != nil && h.n == n }

// flagged reports whether segment s may contain a special character.
func (h *HV) flagged(s int) bool {
	if s < 0 || s >= h.segments() {
		return false
	}
	return h.bits[s/64]&(1<<uint(s%64)) != 0
}

func (h *HV) segments() int { return (h.n + h.segSize - 1) / h.segSize }

// nextFlagged returns the first flagged segment index >= s, or -1. In
// hardware this is the count-leading-zeros step over the HV (§4.6).
func (h *HV) nextFlagged(s int) int {
	for ; s < h.segments(); s++ {
		w := h.bits[s/64] >> uint(s%64)
		if w == 0 {
			// Skip the rest of this word.
			s = (s/64+1)*64 - 1
			continue
		}
		if w&1 != 0 {
			return s
		}
	}
	return -1
}

// Sieve fully scans content with re — the sieve regexp processes
// everything — and produces the HV for the shadows via the string
// accelerator's classification rows. hvGen lets the caller route HV
// generation through its straccel instance; passing nil uses the software
// reference.
// The returned matches alias a reused scratch slice, valid until the
// next Sieve call on this accelerator.
func (a *Accel) Sieve(re *regex.Regex, content []byte, hvGen func([]byte, int) []uint64) ([]regex.MatchRange, *HV) {
	a.stats.SieveScans++
	a.sieveMS = re.FindAllAppend(a.sieveMS[:0], content)
	ms := a.sieveMS
	var bits []uint64
	if hvGen != nil {
		bits = hvGen(content, a.cfg.SegSize)
	} else {
		bits = strlib.ClassScanRef(content, a.cfg.SegSize)
	}
	return ms, &HV{bits: bits, segSize: a.cfg.SegSize, n: len(content)}
}

// Siftable reports whether a shadow regexp can use the HV to skip
// unflagged segments: every match must contain a special character, and
// the number of regular characters a match can start with must be
// bounded (so candidate start positions stay near flagged segments).
func (a *Accel) Siftable(re *regex.Regex) bool {
	return a.siftInfo(re).siftable
}

// Shadow scans content under the hint vector. Match attempts start only
// inside candidate windows: flagged segments expanded left by the
// pattern's maximum regular prefix (a match must reach its first special
// character, which lives in a flagged segment, within that many bytes).
// Results are identical to a full scan — only the work differs. It
// returns the matches and the number of bytes actually examined.
func (a *Accel) Shadow(re *regex.Regex, content []byte, hv *HV) ([]regex.MatchRange, int) {
	return a.shadowAppend(nil, re, content, hv)
}

// shadowAppend is Shadow appending matches into dst — ShadowReplace
// passes the accelerator's reused scratch.
func (a *Accel) shadowAppend(dst []regex.MatchRange, re *regex.Regex, content []byte, hv *HV) ([]regex.MatchRange, int) {
	a.stats.ShadowScans++
	a.stats.BytesPresented += int64(len(content))
	if hv == nil || !hv.Covers(len(content)) || !a.Siftable(re) {
		a.stats.NonSiftable++
		return a.fullScan(dst, re, content)
	}
	margin := a.siftInfo(re).margin
	if margin < 0 {
		margin = 0
	}
	windows := a.candidateWindows(hv, margin, len(content))

	out := dst
	examined := 0 // engine scanned-byte metric over the windows
	pos := 0      // next allowed match start (non-overlap rule)
	for _, w := range windows {
		from := w.start
		if from < pos {
			from = pos
		}
		for from <= w.end {
			s, e, scanned := re.FindInRangeScanned(content, from, w.end)
			examined += scanned
			if s < 0 {
				break
			}
			out = append(out, regex.MatchRange{Start: s, End: e})
			if e == s {
				from = s + 1
			} else {
				from = e
			}
			pos = from
		}
	}
	covered := 0
	for _, w := range windows {
		covered += w.end - w.start
	}
	if skipped := len(content) - covered; skipped > 0 {
		a.stats.BytesSkippedSift += int64(skipped)
	}
	if examined > len(content) {
		examined = len(content)
	}
	return out, examined
}

// fullScan is the unsifted scan, reporting the same engine scanned-byte
// metric a plain FindAll would cost.
func (a *Accel) fullScan(dst []regex.MatchRange, re *regex.Regex, content []byte) ([]regex.MatchRange, int) {
	out := dst
	examined := 0
	pos := 0
	for pos <= len(content) {
		s, e, scanned := re.FindInRangeScanned(content, pos, len(content))
		examined += scanned
		if s < 0 {
			break
		}
		out = append(out, regex.MatchRange{Start: s, End: e})
		if e == s {
			pos = s + 1
		} else {
			pos = e
		}
		if re.Anchored() {
			break
		}
	}
	return out, examined
}

type window struct{ start, end int }

// candidateWindows merges [segStart-margin, segEnd) ranges of flagged
// segments into disjoint windows.
// The returned slice aliases the accelerator's reusable scratch; it is
// only valid until the next candidateWindows call.
func (a *Accel) candidateWindows(hv *HV, margin, n int) []window {
	ws := a.wins[:0]
	for s := hv.nextFlagged(0); s >= 0; s = hv.nextFlagged(s + 1) {
		lo := s*hv.segSize - margin
		hi := (s + 1) * hv.segSize
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if len(ws) > 0 && lo <= ws[len(ws)-1].end {
			if hi > ws[len(ws)-1].end {
				ws[len(ws)-1].end = hi
			}
			continue
		}
		ws = append(ws, window{lo, hi})
	}
	a.wins = ws
	return ws
}

// maxRegularPrefix returns the maximum number of regular characters a
// match can consume before its first special character, or -1 if
// unbounded (a regular-character loop precedes a special transition).
func maxRegularPrefix(d *regex.DFA, isRegular func(byte) bool) int {
	type color uint8
	const (
		white color = iota
		gray
		black
	)
	n := d.NumStates()
	colors := make([]color, n)
	memo := make([]int, n) // -2 unset, -1 no special edge reachable, else depth
	for i := range memo {
		memo[i] = -2
	}
	unbounded := false

	// hasSpecialEdge: state can consume a special character next.
	hasSpecialEdge := func(s int32) bool {
		for b := 0; b < 256; b++ {
			if !isRegular(byte(b)) && d.Step(s, byte(b)) != regex.Dead {
				return true
			}
		}
		return false
	}

	var dfs func(s int32) int
	dfs = func(s int32) int {
		if unbounded {
			return -1
		}
		if colors[s] == gray {
			unbounded = true
			return -1
		}
		if memo[s] != -2 {
			return memo[s]
		}
		colors[s] = gray
		best := -1
		if hasSpecialEdge(s) {
			best = 0
		}
		for b := 0; b < 256; b++ {
			if !isRegular(byte(b)) {
				continue
			}
			t := d.Step(s, byte(b))
			if t == regex.Dead {
				continue
			}
			sub := dfs(t)
			if unbounded {
				colors[s] = black
				return -1
			}
			if sub >= 0 && sub+1 > best {
				best = sub + 1
			}
		}
		colors[s] = black
		memo[s] = best
		return best
	}
	r := dfs(d.Start())
	if unbounded {
		return -1
	}
	if r < 0 {
		return 0
	}
	return r
}
