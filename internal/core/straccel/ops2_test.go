package straccel

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/strlib"
)

func TestNL2BREquivalence(t *testing.T) {
	a := New(DefaultConfig())
	var ref strlib.Lib
	f := func(s []byte) bool {
		return string(a.NL2BR(s)) == string(ref.NL2BR(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Targeted \r\n handling, including a pair at a block boundary.
	in := []byte(strings.Repeat("x", 63) + "\r\n" + "tail")
	if string(a.NL2BR(in)) != string(ref.NL2BR(in)) {
		t.Errorf("\\r\\n across block boundary mishandled")
	}
}

func TestAddSlashesEquivalence(t *testing.T) {
	a := New(DefaultConfig())
	var ref strlib.Lib
	f := func(s []byte) bool {
		return string(a.AddSlashes(s)) == string(ref.AddSlashes(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNL2BRChargesBlocks(t *testing.T) {
	a := New(DefaultConfig())
	a.NL2BR(make([]byte, 200))
	if a.Stats().Blocks != 4 {
		t.Errorf("200 bytes should stream 4 blocks, got %d", a.Stats().Blocks)
	}
	a.ResetStats()
	a.NL2BR(nil)
	if a.Stats().Blocks != 1 {
		t.Errorf("empty subject still issues one pass, got %d", a.Stats().Blocks)
	}
}

func TestConfigureRowsAndApply(t *testing.T) {
	a := New(DefaultConfig())
	// A strtoupper built from an explicit range-row configuration: the
	// strreadconfig path for complex functions.
	cfg := RangeRow('a', 'z', 0xE0) // two's-complement -32: lowercase -> uppercase
	a.ConfigureRows(cfg)
	out, hw := a.ApplyConfigured([]byte("Hello, World_9!"))
	if !hw {
		t.Fatalf("configured rows should run in hardware")
	}
	if string(out) != "HELLO, WORLD_9!" {
		t.Errorf("ApplyConfigured = %q", out)
	}
}

func TestApplyConfiguredMergedRows(t *testing.T) {
	a := New(DefaultConfig())
	// Merge equality substitutions with a range shift.
	cfg := Merge(EqRow('-', '_'), EqRow(' ', '+'), RangeRow('A', 'Z', 32))
	if cfg.RowCount() != 3 {
		t.Fatalf("RowCount = %d", cfg.RowCount())
	}
	a.ConfigureRows(cfg)
	out, hw := a.ApplyConfigured([]byte("Query Param-Name"))
	if !hw || string(out) != "query+param_name" {
		t.Errorf("merged rows = %q hw=%v", out, hw)
	}
}

func TestApplyConfiguredFallsBack(t *testing.T) {
	a := New(DefaultConfig())
	a.ConfigureRows(MatrixConfig{}) // nothing configured
	if _, hw := a.ApplyConfigured([]byte("x")); hw {
		t.Errorf("empty configuration must fall back to software")
	}
	// Too many rows for the matrix.
	small := New(Config{Rows: 2, BlockBytes: 64})
	small.ConfigureRows(Merge(EqRow('a', 'b'), EqRow('c', 'd'), EqRow('e', 'f')))
	if _, hw := small.ApplyConfigured([]byte("x")); hw {
		t.Errorf("oversized configuration must fall back")
	}
}

func TestConfigSurvivesSaveRestore(t *testing.T) {
	a := New(DefaultConfig())
	a.ConfigureRows(EqRow('x', 'y'))
	saved := a.SaveConfig()
	a.ConfigureRows(EqRow('1', '2')) // another process's configuration
	a.LoadConfig(saved)              // context switch back
	out, hw := a.ApplyConfigured([]byte("axbx"))
	if !hw || string(out) != "ayby" {
		t.Errorf("restored configuration wrong: %q hw=%v", out, hw)
	}
}
