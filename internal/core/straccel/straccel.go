// Package straccel implements the paper's generalized string accelerator
// (§4.4): a single datapath that serves many PHP string functions by
// sharing common hardware sub-blocks instead of dedicating an accelerator
// per function.
//
// Modeled sub-blocks (Fig. 10):
//
//   - ASCII compare plane: a matching matrix of configurable pattern rows
//     by subject-block columns, populated combinationally — every cell is
//     independent, so a whole block is compared per cycle.
//   - Diagonal AND gates: consecutive-character matches for multi-byte
//     patterns (string_find of "abc" in "babc" in the paper's example).
//   - Priority encoder: index of the first valid match.
//   - Output logic: forwards substituted ASCII values for functions that
//     write a result string (translate, case conversion, escaping).
//   - Shifting logic: aligns results to the destination offset.
//   - Wrap-around buffering: diagonal state carried between blocks so
//     matches spanning block boundaries are found.
//   - Six matrix rows support inequality (range) comparisons for
//     case-conversion and character-class operations.
//
// The accelerator processes Config.BlockBytes subject bytes per
// invocation step (the synthesized design handles a 64-character block in
// at most 3 cycles at 2 GHz); Stats records blocks and active matrix
// cells so the simulation can charge cycles and clock-gated energy.
package straccel

import (
	"repro/internal/strlib"
)

// Config sizes the matching matrix.
type Config struct {
	// Rows is the number of pattern rows (the longest pattern the matrix
	// holds at once).
	Rows int
	// InequalityRows is how many rows support range comparisons
	// (paper: 6).
	InequalityRows int
	// BlockBytes is the subject bytes processed per matrix pass
	// (paper: 64).
	BlockBytes int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{Rows: 32, InequalityRows: 6, BlockBytes: 64}
}

func (c Config) sanitized() Config {
	if c.Rows <= 0 {
		c.Rows = 32
	}
	if c.InequalityRows < 0 {
		c.InequalityRows = 0
	}
	if c.InequalityRows > c.Rows {
		c.InequalityRows = c.Rows
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 64
	}
	return c
}

// rowKind is a matching matrix row's comparison mode.
type rowKind uint8

const (
	rowEq    rowKind = iota // equality against one byte
	rowRange                // lo <= c <= hi (uses an inequality row)
	rowSet                  // membership in a small byte set (trim sets)
)

// row is one configured matrix row.
type row struct {
	kind rowKind
	eq   byte
	lo   byte
	hi   byte
	set  []byte
	sub  byte // substitution output for this row, when used
}

func (r row) matches(c byte) bool {
	switch r.kind {
	case rowEq:
		return c == r.eq
	case rowRange:
		return c >= r.lo && c <= r.hi
	default:
		for _, s := range r.set {
			if c == s {
				return true
			}
		}
		return false
	}
}

// MatrixConfig is a saved matching-matrix configuration. strwriteconfig
// stores one before a context switch and strreadconfig restores it
// (§4.6); complex functions also load their row setup through it.
type MatrixConfig struct {
	rows []row
}

// Stats counts accelerator activity for cycle and energy accounting.
type Stats struct {
	Ops         int64 // accelerated string operations
	Blocks      int64 // matrix passes (one block of subject bytes each)
	Bytes       int64 // subject bytes streamed through the matrix
	ActiveCells int64 // matrix cells that actually switched
	GatedCells  int64 // cells clock-gated off (unused rows)
	Bypasses    int64 // operations that fell back to software
	ConfigLoads int64 // strreadconfig invocations
	ConfigSaves int64 // strwriteconfig invocations
}

// Accel is the string accelerator. Not safe for concurrent use; it is a
// per-core structure — which is also what makes its private scratch
// buffers (diagonal state) safe to reuse across operations.
type Accel struct {
	cfg   Config
	cur   MatrixConfig
	stats Stats
	sw    strlib.Lib // reference implementation for software fallback
	mem   strlib.Allocator
	diag  []bool // matchScan diagonal state, reused across scans
}

// New builds an accelerator.
func New(cfg Config) *Accel {
	return &Accel{cfg: cfg.sanitized()}
}

// SetMem routes result-string allocation (here and in the software
// fallback) through m — typically the owning core's request arena.
// Results then follow m's lifetime; see strlib.Allocator.
func (a *Accel) SetMem(m strlib.Allocator) {
	a.mem = m
	a.sw.Mem = m
}

// mk allocates a length-n result slice via the configured allocator.
func (a *Accel) mk(n int) []byte {
	if a.mem != nil {
		return a.mem.Make(n)
	}
	return make([]byte, n)
}

// buf allocates a zero-length, capacity-c result slice.
func (a *Accel) buf(c int) []byte {
	if a.mem != nil {
		return a.mem.Buf(c)
	}
	return make([]byte, 0, c)
}

// Config returns the accelerator configuration.
func (a *Accel) Config() Config { return a.cfg }

// Stats returns a snapshot of the activity counters.
func (a *Accel) Stats() Stats { return a.stats }

// ResetStats clears the counters.
func (a *Accel) ResetStats() { a.stats = Stats{} }

// SaveConfig implements strwriteconfig: it returns the current matrix
// configuration for the OS to stash across a context switch.
func (a *Accel) SaveConfig() MatrixConfig {
	a.stats.ConfigSaves++
	saved := MatrixConfig{rows: append([]row(nil), a.cur.rows...)}
	return saved
}

// LoadConfig implements strreadconfig: it repopulates the matching matrix
// rows if they are not already configured.
func (a *Accel) LoadConfig(c MatrixConfig) {
	a.stats.ConfigLoads++
	a.cur = MatrixConfig{rows: append([]row(nil), c.rows...)}
}

// charge accounts one matrix pass over the block for nRows active rows.
func (a *Accel) charge(blockLen, nRows int) {
	a.stats.Blocks++
	a.stats.Bytes += int64(blockLen)
	a.stats.ActiveCells += int64(blockLen * nRows)
	a.stats.GatedCells += int64(blockLen * (a.cfg.Rows - nRows))
}

// Find implements stringop[find] (PHP strpos): the matrix rows hold the
// pattern, diagonal ANDs detect consecutive matches, and the priority
// encoder returns the first full-match position. Patterns longer than the
// matrix fall back to software.
func (a *Accel) Find(subject, pattern []byte) (int, bool) {
	if len(pattern) > a.cfg.Rows || len(pattern) == 0 {
		a.stats.Bypasses++
		return a.sw.Find(subject, pattern), false
	}
	a.stats.Ops++
	return a.matchScan(subject, pattern), true
}

// matchScan runs the matching matrix over subject looking for pattern,
// charging per-block costs but not the per-op counter.
func (a *Accel) matchScan(subject, pattern []byte) int {
	// Diagonal state: diag[k] means the first k pattern bytes matched
	// ending at the previous byte; buffered across blocks (wrap-around).
	m := len(pattern)
	if cap(a.diag) < m {
		a.diag = make([]bool, m)
	}
	diag := a.diag[:m] // diag[k]: k leading pattern bytes matched so far
	clear(diag)
	diag0 := true // zero-length prefix always matches
	for base := 0; base < len(subject); base += a.cfg.BlockBytes {
		end := base + a.cfg.BlockBytes
		if end > len(subject) {
			end = len(subject)
		}
		block := subject[base:end]
		a.charge(len(block), m)
		for i, c := range block {
			// One column of the matching matrix: compare c against every
			// pattern row in parallel, then AND with the diagonal.
			for k := m - 1; k >= 1; k-- {
				diag[k] = diag[k-1] && pattern[k] == c
			}
			diag[0] = diag0 && pattern[0] == c
			if diag[m-1] {
				return base + i - m + 1
			}
		}
	}
	return -1
}

// Compare implements stringop[compare]: blocks of both strings are
// XOR-compared in parallel; the priority encoder finds the first
// difference.
func (a *Accel) Compare(x, y []byte) int {
	a.stats.Ops++
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for base := 0; base < n; base += a.cfg.BlockBytes {
		end := base + a.cfg.BlockBytes
		if end > n {
			end = n
		}
		a.charge(end-base, 1)
		for i := base; i < end; i++ {
			switch {
			case x[i] < y[i]:
				return -1
			case x[i] > y[i]:
				return 1
			}
		}
	}
	switch {
	case len(x) < len(y):
		return -1
	case len(x) > len(y):
		return 1
	}
	return 0
}

// ToUpper implements stringop[toupper] using an inequality row pair
// ('a' <= c <= 'z') and the output substitution logic.
func (a *Accel) ToUpper(subject []byte) []byte {
	return a.caseConvert(subject, 'a', 'z', -32)
}

// ToLower implements stringop[tolower].
func (a *Accel) ToLower(subject []byte) []byte {
	return a.caseConvert(subject, 'A', 'Z', +32)
}

func (a *Accel) caseConvert(subject []byte, lo, hi byte, delta int) []byte {
	a.stats.Ops++
	out := a.mk(len(subject))
	for base := 0; base < len(subject); base += a.cfg.BlockBytes {
		end := base + a.cfg.BlockBytes
		if end > len(subject) {
			end = len(subject)
		}
		a.charge(end-base, 1)
		for i := base; i < end; i++ {
			c := subject[i]
			if c >= lo && c <= hi {
				c = byte(int(c) + delta)
			}
			out[i] = c
		}
	}
	if len(subject) == 0 {
		a.charge(0, 1)
	}
	return out
}

// Translate implements stringop[translate] (PHP strtr with equal-length
// tables): one equality row per source character with its substitution
// output. Tables wider than the matrix fall back to software.
func (a *Accel) Translate(subject, from, to []byte) ([]byte, bool) {
	if len(from) != len(to) {
		panic("straccel: translate tables must have equal length")
	}
	if len(from) > a.cfg.Rows {
		a.stats.Bypasses++
		return a.sw.Translate(subject, from, to), false
	}
	a.stats.Ops++
	out := a.mk(len(subject))
	for base := 0; base < len(subject); base += a.cfg.BlockBytes {
		end := base + a.cfg.BlockBytes
		if end > len(subject) {
			end = len(subject)
		}
		a.charge(end-base, max(len(from), 1))
		for i := base; i < end; i++ {
			c := subject[i]
			for r := range from {
				if c == from[r] {
					c = to[r]
					break
				}
			}
			out[i] = c
		}
	}
	return out, true
}

// Trim implements stringop[trim]: set-membership rows detect the trim
// characters; only the string's edges stream through the matrix.
func (a *Accel) Trim(subject []byte, cutset []byte) []byte {
	a.stats.Ops++
	inCut := func(c byte) bool {
		for _, s := range cutset {
			if c == s {
				return true
			}
		}
		return false
	}
	lo, hi := 0, len(subject)
	edge := 0
	for lo < hi && inCut(subject[lo]) {
		lo++
		edge++
	}
	for hi > lo && inCut(subject[hi-1]) {
		hi--
		edge++
	}
	blocks := (edge+a.cfg.BlockBytes-1)/a.cfg.BlockBytes + 1
	for i := 0; i < blocks; i++ {
		n := edge
		if n > a.cfg.BlockBytes {
			n = a.cfg.BlockBytes
		}
		a.charge(n, max(len(cutset), 1))
		edge -= n
	}
	return subject[lo:hi]
}

// Replace implements stringop[replace] (PHP str_replace) by combining the
// matching matrix with the shifting logic. Patterns wider than the matrix
// fall back to software.
func (a *Accel) Replace(subject, old, new []byte) ([]byte, int, bool) {
	if len(old) > a.cfg.Rows || len(old) == 0 {
		a.stats.Bypasses++
		out, n := a.sw.Replace(subject, old, new)
		return out, n, false
	}
	a.stats.Ops++
	out := a.buf(len(subject))
	count := 0
	pos := 0
	for pos < len(subject) {
		rel := a.matchScan(subject[pos:], old)
		if rel < 0 {
			out = append(out, subject[pos:]...)
			break
		}
		out = append(out, subject[pos:pos+rel]...)
		out = append(out, new...)
		pos += rel + len(old)
		count++
	}
	return out, count, true
}

// HTMLSpecialChars implements the escaping operation PHP workloads run
// constantly: equality rows detect & < > ", the priority encoder locates
// them, and the shifting logic splices the entities into the output.
func (a *Accel) HTMLSpecialChars(subject []byte) []byte {
	a.stats.Ops++
	// Pre-size exactly (host-side pass; simulated charges are unchanged)
	// so the result never grows out of its allocator.
	extra := 0
	for _, c := range subject {
		switch c {
		case '&':
			extra += len("&amp;") - 1
		case '<', '>':
			extra += len("&lt;") - 1
		case '"':
			extra += len("&quot;") - 1
		}
	}
	out := a.buf(len(subject) + extra)
	for base := 0; base < len(subject); base += a.cfg.BlockBytes {
		end := base + a.cfg.BlockBytes
		if end > len(subject) {
			end = len(subject)
		}
		a.charge(end-base, 4)
		for i := base; i < end; i++ {
			switch subject[i] {
			case '&':
				out = append(out, "&amp;"...)
			case '<':
				out = append(out, "&lt;"...)
			case '>':
				out = append(out, "&gt;"...)
			case '"':
				out = append(out, "&quot;"...)
			default:
				out = append(out, subject[i])
			}
		}
	}
	return out
}

// HintVector generates the content-sifting HV for the regexp accelerator
// (§4.5): range rows classify each byte as regular or special, and the
// per-segment OR reduction produces one bit per segment. This is one of
// the "complex string functions" configured via strreadconfig.
func (a *Accel) HintVector(subject []byte, segSize int) []uint64 {
	a.stats.Ops++
	if segSize <= 0 {
		segSize = 32
	}
	nblocks := (len(subject) + a.cfg.BlockBytes - 1) / a.cfg.BlockBytes
	if nblocks == 0 {
		nblocks = 1
	}
	for i := 0; i < nblocks; i++ {
		n := a.cfg.BlockBytes
		if rem := len(subject) - i*a.cfg.BlockBytes; rem < n {
			n = rem
		}
		a.charge(n, a.cfg.InequalityRows)
	}
	return strlib.ClassScanRef(subject, segSize)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
