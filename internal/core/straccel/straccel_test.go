package straccel

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/strlib"
)

var cutset = []byte(" \t\n\r\x00\x0b")

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.BlockBytes != 64 || c.InequalityRows != 6 {
		t.Errorf("paper config: 64-byte blocks, 6 inequality rows: %+v", c)
	}
}

func TestConfigSanitize(t *testing.T) {
	c := Config{InequalityRows: 100, Rows: 8}.sanitized()
	if c.InequalityRows > c.Rows {
		t.Errorf("inequality rows must fit the matrix: %+v", c)
	}
	c = Config{}.sanitized()
	if c.Rows <= 0 || c.BlockBytes <= 0 {
		t.Errorf("zero config not sanitized: %+v", c)
	}
}

func TestFindPaperExample(t *testing.T) {
	// Fig. 10's worked example: string_find of "abc" in "babc".
	a := New(DefaultConfig())
	pos, hw := a.Find([]byte("babc"), []byte("abc"))
	if pos != 1 || !hw {
		t.Errorf("Find(babc, abc) = %d hw=%v, want 1 true", pos, hw)
	}
}

func TestFindCrossesBlockBoundary(t *testing.T) {
	// The wrap-around glue logic: a match spanning two 64-byte blocks.
	a := New(DefaultConfig())
	subject := append(bytes.Repeat([]byte("x"), 62), []byte("needle")...)
	pos, hw := a.Find(subject, []byte("needle"))
	if pos != 62 || !hw {
		t.Errorf("boundary Find = %d hw=%v, want 62 true", pos, hw)
	}
}

func TestFindLongPatternBypasses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows = 4
	a := New(cfg)
	pos, hw := a.Find([]byte("xxhello"), []byte("hello"))
	if pos != 2 || hw {
		t.Errorf("long pattern should fall back to software: %d %v", pos, hw)
	}
	if a.Stats().Bypasses != 1 {
		t.Errorf("bypass not counted")
	}
}

func TestFindEquivalenceProperty(t *testing.T) {
	a := New(DefaultConfig())
	var ref strlib.Lib
	f := func(subject []byte, pat []byte) bool {
		if len(pat) > 8 {
			pat = pat[:8]
		}
		if len(pat) == 0 {
			return true
		}
		got, _ := a.Find(subject, pat)
		return got == ref.Find(subject, pat)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareEquivalence(t *testing.T) {
	a := New(DefaultConfig())
	var ref strlib.Lib
	f := func(x, y []byte) bool {
		return a.Compare(x, y) == ref.Compare(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if a.Compare([]byte("same"), []byte("same")) != 0 {
		t.Errorf("equal strings should compare 0")
	}
}

func TestCaseConversionEquivalence(t *testing.T) {
	a := New(DefaultConfig())
	var ref strlib.Lib
	f := func(s []byte) bool {
		return string(a.ToUpper(s)) == string(ref.ToUpper(s)) &&
			string(a.ToLower(s)) == string(ref.ToLower(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateEquivalence(t *testing.T) {
	a := New(DefaultConfig())
	var ref strlib.Lib
	from, to := []byte("lo<>"), []byte("01[]")
	f := func(s []byte) bool {
		got, hw := a.Translate(s, from, to)
		return hw && string(got) == string(ref.Translate(s, from, to))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateWideTableBypasses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rows = 2
	a := New(cfg)
	from := []byte("abcd")
	to := []byte("wxyz")
	got, hw := a.Translate([]byte("dcba"), from, to)
	if hw || string(got) != "zyxw" {
		t.Errorf("wide translate: %q hw=%v", got, hw)
	}
}

func TestTrimEquivalence(t *testing.T) {
	a := New(DefaultConfig())
	var ref strlib.Lib
	f := func(pad1, pad2 uint8, body string) bool {
		in := strings.Repeat(" ", int(pad1%20)) + body + strings.Repeat("\t", int(pad2%20))
		return string(a.Trim([]byte(in), cutset)) == string(ref.Trim([]byte(in)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplaceEquivalence(t *testing.T) {
	a := New(DefaultConfig())
	var ref strlib.Lib
	f := func(s []byte, sel uint8) bool {
		old := [][]byte{[]byte("a"), []byte("ab"), []byte("<b>"), []byte("xy")}[sel%4]
		new := []byte("ZZ")
		got, gotN, hw := a.Replace(s, old, new)
		want, wantN := ref.Replace(s, old, new)
		return hw && gotN == wantN && string(got) == string(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHTMLSpecialCharsEquivalence(t *testing.T) {
	a := New(DefaultConfig())
	var ref strlib.Lib
	f := func(s []byte) bool {
		return string(a.HTMLSpecialChars(s)) == string(ref.HTMLSpecialChars(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHintVectorEquivalence(t *testing.T) {
	a := New(DefaultConfig())
	f := func(s []byte) bool {
		got := a.HintVector(s, 32)
		want := strlib.ClassScanRef(s, 32)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockAccounting(t *testing.T) {
	a := New(DefaultConfig())
	subject := bytes.Repeat([]byte("a"), 200) // 4 blocks of 64
	a.ToUpper(subject)
	st := a.Stats()
	if st.Blocks != 4 {
		t.Errorf("Blocks = %d, want 4", st.Blocks)
	}
	if st.Bytes != 200 {
		t.Errorf("Bytes = %d, want 200", st.Bytes)
	}
	if st.ActiveCells != 200 { // one active row
		t.Errorf("ActiveCells = %d, want 200", st.ActiveCells)
	}
	if st.GatedCells != int64(200*(a.Config().Rows-1)) {
		t.Errorf("GatedCells = %d", st.GatedCells)
	}
}

func TestClockGatingReflectsPatternWidth(t *testing.T) {
	a := New(DefaultConfig())
	a.Find(bytes.Repeat([]byte("x"), 64), []byte("abcd"))
	st := a.Stats()
	if st.ActiveCells != 64*4 {
		t.Errorf("4-row pattern should activate 4 rows: %d", st.ActiveCells)
	}
}

func TestSaveLoadConfig(t *testing.T) {
	a := New(DefaultConfig())
	saved := a.SaveConfig()
	a.LoadConfig(saved)
	st := a.Stats()
	if st.ConfigSaves != 1 || st.ConfigLoads != 1 {
		t.Errorf("config ops not counted: %+v", st)
	}
}

func TestTranslatePanicsOnBadTables(t *testing.T) {
	a := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Errorf("mismatched tables should panic")
		}
	}()
	a.Translate([]byte("x"), []byte("ab"), []byte("a"))
}

func TestThroughputAdvantage(t *testing.T) {
	// The accelerator's whole point: blocks, not bytes. Streaming 64KB
	// must cost 1024 matrix passes, each standing for <=3 cycles, versus
	// 64K sequential character steps in prior single-byte designs.
	a := New(DefaultConfig())
	subject := bytes.Repeat([]byte("payload "), 8192)
	a.Find(subject, []byte("needle!"))
	st := a.Stats()
	if st.Blocks != int64(len(subject)/64) {
		t.Errorf("Blocks = %d, want %d", st.Blocks, len(subject)/64)
	}
}

func BenchmarkAccelFind64KB(b *testing.B) {
	a := New(DefaultConfig())
	subject := bytes.Repeat([]byte("the quick brown fox "), 3277)
	pattern := []byte("lazy dog")
	b.SetBytes(int64(len(subject)))
	for i := 0; i < b.N; i++ {
		a.Find(subject, pattern)
	}
}

func BenchmarkAccelHTMLEscape(b *testing.B) {
	a := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	subject := make([]byte, 4096)
	for i := range subject {
		subject[i] = byte('a' + rng.Intn(26))
		if rng.Intn(40) == 0 {
			subject[i] = '<'
		}
	}
	b.SetBytes(int64(len(subject)))
	for i := 0; i < b.N; i++ {
		a.HTMLSpecialChars(subject)
	}
}
