package straccel

// Additional stringop implementations sharing the same sub-blocks:
// equality rows detect the characters of interest, the priority encoder
// locates them, and the output/shifting logic splices the expansions.

// NL2BR implements stringop[nl2br] (PHP nl2br): equality rows match \r
// and \n; the shifting logic inserts "<br />" before each break. \r\n
// pairs receive one break, as in PHP.
func (a *Accel) NL2BR(subject []byte) []byte {
	a.stats.Ops++
	a.chargeBlocks(len(subject), 2)
	breaks := 0
	for i := 0; i < len(subject); i++ {
		if subject[i] == '\n' || subject[i] == '\r' {
			breaks++
			if subject[i] == '\r' && i+1 < len(subject) && subject[i+1] == '\n' {
				i++
			}
		}
	}
	out := a.buf(len(subject) + breaks*len("<br />"))
	for i := 0; i < len(subject); i++ {
		c := subject[i]
		if c == '\r' || c == '\n' {
			out = append(out, "<br />"...)
			out = append(out, c)
			// The wrap-around glue logic pairs a \r\n even across a block
			// boundary, so the pair is handled uniformly here.
			if c == '\r' && i+1 < len(subject) && subject[i+1] == '\n' {
				out = append(out, '\n')
				i++
			}
			continue
		}
		out = append(out, c)
	}
	return out
}

// chargeBlocks accounts a whole-subject streaming pass with nRows active.
func (a *Accel) chargeBlocks(n, nRows int) {
	for rem := n; ; {
		blk := a.cfg.BlockBytes
		if rem < blk {
			blk = rem
		}
		a.charge(blk, nRows)
		rem -= blk
		if rem <= 0 {
			break
		}
	}
}

// AddSlashes implements stringop[addslashes]: equality rows for quote,
// double quote, backslash, and NUL; output logic emits the escape pairs.
func (a *Accel) AddSlashes(subject []byte) []byte {
	a.stats.Ops++
	extra := 0
	for _, c := range subject {
		switch c {
		case '\'', '"', '\\', 0:
			extra++
		}
	}
	out := a.buf(len(subject) + extra)
	for base := 0; base < len(subject); base += a.cfg.BlockBytes {
		end := base + a.cfg.BlockBytes
		if end > len(subject) {
			end = len(subject)
		}
		a.charge(end-base, 4)
		for i := base; i < end; i++ {
			switch c := subject[i]; c {
			case '\'', '"', '\\':
				out = append(out, '\\', c)
			case 0:
				out = append(out, '\\', '0')
			default:
				out = append(out, c)
			}
		}
	}
	return out
}

// ConfigureRows loads an explicit matching-matrix configuration — the
// strreadconfig path for complex functions whose rows are "large and may
// not be practical or feasible to pass as a source operand" (§4.6). The
// rows persist until the next LoadConfig/ConfigureRows.
func (a *Accel) ConfigureRows(rows MatrixConfig) {
	a.stats.ConfigLoads++
	a.cur = MatrixConfig{rows: append([]row(nil), rows.rows...)}
}

// EqRow builds an equality row with a substitution output.
func EqRow(match, sub byte) MatrixConfig {
	return MatrixConfig{rows: []row{{kind: rowEq, eq: match, sub: sub}}}
}

// RangeRow builds an inequality (range) row with a substitution delta.
func RangeRow(lo, hi byte, sub byte) MatrixConfig {
	return MatrixConfig{rows: []row{{kind: rowRange, lo: lo, hi: hi, sub: sub}}}
}

// Merge concatenates matrix configurations into one row set.
func Merge(cfgs ...MatrixConfig) MatrixConfig {
	var out MatrixConfig
	for _, c := range cfgs {
		out.rows = append(out.rows, c.rows...)
	}
	return out
}

// RowCount returns the number of configured rows.
func (m MatrixConfig) RowCount() int { return len(m.rows) }

// ApplyConfigured runs the currently configured rows over the subject:
// any byte matching a row is replaced by the row's substitution output
// (equality rows) or shifted by the substitution delta (range rows).
// This is the generic datapath behind translate-style complex functions.
// It returns false (software fallback) when no rows are configured or
// the configuration exceeds the matrix.
func (a *Accel) ApplyConfigured(subject []byte) ([]byte, bool) {
	if len(a.cur.rows) == 0 || len(a.cur.rows) > a.cfg.Rows {
		a.stats.Bypasses++
		return nil, false
	}
	a.stats.Ops++
	out := a.mk(len(subject))
	for base := 0; base < len(subject); base += a.cfg.BlockBytes {
		end := base + a.cfg.BlockBytes
		if end > len(subject) {
			end = len(subject)
		}
		a.charge(end-base, len(a.cur.rows))
		for i := base; i < end; i++ {
			c := subject[i]
			for _, r := range a.cur.rows {
				if r.matches(c) {
					switch r.kind {
					case rowEq, rowSet:
						c = r.sub
					case rowRange:
						c = byte(int(c) + int(int8(r.sub)))
					}
					break
				}
			}
			out[i] = c
		}
	}
	return out, true
}
