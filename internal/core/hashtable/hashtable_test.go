package hashtable

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hashmap"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.Entries != 512 || c.ProbeWindow != 4 || c.MaxKeyBytes != 24 {
		t.Errorf("paper config is 512 entries, 4-entry window, 24-byte keys: %+v", c)
	}
}

func TestConfigSanitize(t *testing.T) {
	c := Config{}.sanitized()
	if c.Entries <= 0 || c.ProbeWindow <= 0 || c.MaxKeyBytes <= 0 || c.RTTPointers <= 0 {
		t.Errorf("sanitized zero config invalid: %+v", c)
	}
	c = Config{Entries: 2, ProbeWindow: 10}.sanitized()
	if c.ProbeWindow > c.Entries {
		t.Errorf("probe window must not exceed entries: %+v", c)
	}
}

func TestGetMissThenHit(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	m.Set(hashmap.StrKey("title"), "Hello")

	v, res := ht.Get(m, hashmap.StrKey("title"))
	if v != "Hello" || res.Hit || !res.Found {
		t.Fatalf("first Get should miss but find: %v %+v", v, res)
	}
	v, res = ht.Get(m, hashmap.StrKey("title"))
	if v != "Hello" || !res.Hit {
		t.Fatalf("second Get should hit: %v %+v", v, res)
	}
	st := ht.Stats()
	if st.Gets != 2 || st.GetHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGetAbsentKey(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	v, res := ht.Get(m, hashmap.StrKey("nope"))
	if v != nil || res.Found || res.Hit {
		t.Errorf("absent key: %v %+v", v, res)
	}
}

func TestSetNeverMisses(t *testing.T) {
	// §4.2: "SET operations never miss in our design" — an insert always
	// lands in the table without software involvement.
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	res := ht.Set(m, hashmap.StrKey("k"), 1)
	if res.Bypass || res.Hit {
		t.Fatalf("fresh SET: %+v", res)
	}
	// The pair is visible through the accelerator immediately...
	v, g := ht.Get(m, hashmap.StrKey("k"))
	if v != 1 || !g.Hit {
		t.Fatalf("SET pair not readable: %v %+v", v, g)
	}
	// ...but memory has not been updated (silent SET).
	if _, ok := m.Get(hashmap.StrKey("k")); ok {
		t.Errorf("SET must not write through to memory")
	}
}

func TestSetHitUpdatesValue(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	ht.Set(m, hashmap.StrKey("k"), 1)
	res := ht.Set(m, hashmap.StrKey("k"), 2)
	if !res.Hit {
		t.Fatalf("second SET should hit: %+v", res)
	}
	if v, _ := ht.Get(m, hashmap.StrKey("k")); v != 2 {
		t.Errorf("value not updated: %v", v)
	}
}

func TestLongKeysBypass(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	long := hashmap.StrKey(strings.Repeat("k", 25))
	ht.Set(m, long, "v")
	if v, ok := m.Get(long); !ok || v != "v" {
		t.Fatalf("bypassed SET must write memory directly: %v %v", v, ok)
	}
	_, res := ht.Get(m, long)
	if !res.Bypass || !res.Found {
		t.Errorf("long-key GET should bypass: %+v", res)
	}
	if ht.Stats().Bypasses != 2 {
		t.Errorf("bypass count = %d", ht.Stats().Bypasses)
	}
	if ht.Stats().Gets != 0 || ht.Stats().Sets != 0 {
		t.Errorf("bypasses must not count as hardware requests")
	}
}

func TestExactly24ByteKeyIsCached(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	k := hashmap.StrKey(strings.Repeat("x", 24))
	ht.Set(m, k, 1)
	if _, res := ht.Get(m, k); !res.Hit {
		t.Errorf("24-byte key should be hardware eligible")
	}
}

func TestFreeInvalidatesViaRTT(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	for i := 0; i < 10; i++ {
		ht.Set(m, hashmap.IntKey(int64(i)), i)
	}
	res := ht.Free(m)
	if res.Scanned {
		t.Errorf("10 entries fit the RTT; no scan expected")
	}
	if res.Invalidated != 10 {
		t.Errorf("invalidated %d entries, want 10", res.Invalidated)
	}
	if ht.Len() != 0 {
		t.Errorf("table should be empty after Free, len=%d", ht.Len())
	}
	// A freed short-lived map never touched memory.
	if m.Size() != 0 {
		t.Errorf("short-lived map leaked %d pairs to memory", m.Size())
	}
}

func TestRTTOverflowFallsBackToScan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTTPointers = 4
	ht := New(cfg)
	m := hashmap.New(nil)
	for i := 0; i < 10; i++ {
		ht.Set(m, hashmap.IntKey(int64(i)), i)
	}
	res := ht.Free(m)
	if !res.Scanned {
		t.Errorf("RTT overflow should force a scan")
	}
	if ht.Len() != 0 {
		t.Errorf("scan must still invalidate everything, len=%d", ht.Len())
	}
	if ht.Stats().FreeScans != 1 {
		t.Errorf("FreeScans = %d", ht.Stats().FreeScans)
	}
}

func TestForeachInsertionOrder(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	keys := []string{"zeta", "alpha", "mid", "last"}
	for i, k := range keys {
		ht.Set(m, hashmap.StrKey(k), i)
	}
	var got []string
	ht.Foreach(m, func(k hashmap.Key, v interface{}) bool {
		got = append(got, k.Str)
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint(keys) {
		t.Errorf("foreach order = %v, want %v", got, keys)
	}
}

func TestForeachOrderSurvivesEvictions(t *testing.T) {
	// A tiny table forces constant evictions; the RTT's ordered-position
	// writeback must still produce insertion order (§4.2).
	cfg := Config{Entries: 4, ProbeWindow: 2, MaxKeyBytes: 24, RTTPointers: 128}
	ht := New(cfg)
	m := hashmap.New(nil)
	var want []string
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("key%02d", i)
		want = append(want, k)
		ht.Set(m, hashmap.StrKey(k), i)
	}
	var got []string
	ht.Foreach(m, func(k hashmap.Key, v interface{}) bool {
		got = append(got, k.Str)
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("order broken by evictions:\n got %v\nwant %v", got, want)
	}
	if ht.Stats().EvictDirty == 0 {
		t.Errorf("test should have forced dirty evictions")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := Config{Entries: 2, ProbeWindow: 2, MaxKeyBytes: 24, RTTPointers: 64}
	ht := New(cfg)
	m := hashmap.New(nil)
	for i := 0; i < 8; i++ {
		ht.Set(m, hashmap.IntKey(int64(i)), i)
	}
	// 8 inserts into a 2-entry table: at least 6 dirty evictions, each
	// writing its pair back to memory.
	if ht.Stats().EvictDirty < 6 {
		t.Errorf("EvictDirty = %d, want >= 6", ht.Stats().EvictDirty)
	}
	// Every evicted pair must be recoverable through the accelerator.
	for i := 0; i < 8; i++ {
		v, res := ht.Get(m, hashmap.IntKey(int64(i)))
		if v != i || !res.Found {
			t.Errorf("pair %d lost after eviction: %v %+v", i, v, res)
		}
	}
}

func TestDeleteDropsCachedCopy(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	ht.Set(m, hashmap.StrKey("k"), 1)
	if !ht.Delete(m, hashmap.StrKey("k")) {
		// The pair only lived in hardware; memory delete reports false but
		// the key must be gone either way.
		if _, res := ht.Get(m, hashmap.StrKey("k")); res.Found {
			t.Errorf("deleted key still readable")
		}
	}
	if _, res := ht.Get(m, hashmap.StrKey("k")); res.Found {
		t.Errorf("deleted key still readable")
	}
}

func TestFlushAllMarksStale(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	ht.Set(m, hashmap.StrKey("a"), 1)
	ht.Set(m, hashmap.StrKey("b"), 2)
	n := ht.FlushAll()
	if n != 2 {
		t.Errorf("FlushAll wrote %d, want 2", n)
	}
	if !m.Stale() {
		t.Errorf("context-switch flush must mark the software index stale")
	}
	if v, ok := m.Get(hashmap.StrKey("a")); !ok || v != 1 {
		t.Errorf("software access after flush should rebuild and find: %v %v", v, ok)
	}
	if m.Rebuilds() != 1 {
		t.Errorf("expected one index reconstruction, got %d", m.Rebuilds())
	}
	if ht.Len() != 0 {
		t.Errorf("table not empty after FlushAll")
	}
}

func TestRemoteCoherenceFlushes(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	ht.Set(m, hashmap.StrKey("x"), 42)
	ht.OnRemoteCoherence(m)
	if ht.Len() != 0 {
		t.Errorf("coherence request must flush the map's entries")
	}
	if v, ok := m.Get(hashmap.StrKey("x")); !ok || v != 42 {
		t.Errorf("remote reader must see the flushed value: %v %v", v, ok)
	}
	if ht.Stats().CoherenceEv != 1 {
		t.Errorf("CoherenceEv = %d", ht.Stats().CoherenceEv)
	}
}

func TestHitRateGrowsWithCapacity(t *testing.T) {
	// Fig. 7's shape: bigger tables give higher GET hit rates on a
	// working set with reuse.
	workload := func(entries int) float64 {
		cfg := DefaultConfig()
		cfg.Entries = entries
		ht := New(cfg)
		rng := rand.New(rand.NewSource(3))
		maps := make([]*hashmap.Map, 6)
		for i := range maps {
			maps[i] = hashmap.New(nil)
		}
		for op := 0; op < 20000; op++ {
			m := maps[rng.Intn(len(maps))]
			k := hashmap.StrKey(fmt.Sprintf("key%d", rng.Intn(40)))
			if rng.Intn(5) == 0 {
				ht.Set(m, k, op)
			} else {
				ht.Get(m, k)
			}
		}
		return ht.Stats().HitRate()
	}
	small, large := workload(16), workload(512)
	if large <= small {
		t.Errorf("hit rate should grow with capacity: %0.3f (16) vs %0.3f (512)", small, large)
	}
	if large < 0.9 {
		t.Errorf("512-entry table should capture this working set: %0.3f", large)
	}
}

func TestStatsHitRateZeroGets(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Errorf("zero gets should have zero hit rate")
	}
}

// TestCoherenceProperty drives random operations through the accelerator
// against a model map, with random flushes, foreaches, and coherence
// events interleaved. The accelerator must be semantically invisible.
func TestCoherenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Entries: 8, ProbeWindow: 2, MaxKeyBytes: 24, RTTPointers: 16}
		ht := New(cfg)

		type ctx struct {
			m     *hashmap.Map
			model map[string]int
			order []string
		}
		mk := func() *ctx { return &ctx{m: hashmap.New(nil), model: map[string]int{}} }
		ctxs := []*ctx{mk(), mk(), mk()}

		for step := 0; step < 400; step++ {
			c := ctxs[rng.Intn(len(ctxs))]
			key := fmt.Sprintf("k%d", rng.Intn(12))
			switch rng.Intn(10) {
			case 0, 1, 2: // set
				v := rng.Intn(1 << 20)
				if _, ok := c.model[key]; !ok {
					c.order = append(c.order, key)
				}
				c.model[key] = v
				ht.Set(c.m, hashmap.StrKey(key), v)
			case 3, 4, 5, 6: // get
				v, res := ht.Get(c.m, hashmap.StrKey(key))
				mv, mok := c.model[key]
				if res.Found != mok {
					return false
				}
				if mok && v != mv {
					return false
				}
			case 7: // delete
				_, mok := c.model[key]
				delete(c.model, key)
				for i, s := range c.order {
					if s == key {
						c.order = append(c.order[:i], c.order[i+1:]...)
						break
					}
				}
				got := ht.Delete(c.m, hashmap.StrKey(key))
				_ = got
				_ = mok
			case 8: // foreach order check
				var got []string
				ht.Foreach(c.m, func(k hashmap.Key, v interface{}) bool {
					got = append(got, k.Str)
					if c.model[k.Str] != v {
						got = append(got, "VALUE-MISMATCH")
					}
					return true
				})
				if fmt.Sprint(got) != fmt.Sprint(c.order) {
					return false
				}
			case 9: // context switch or remote coherence
				if rng.Intn(2) == 0 {
					ht.FlushAll()
				} else {
					ht.OnRemoteCoherence(c.m)
				}
			}
		}
		// Final check: flush everything, software view must equal model.
		ht.FlushAll()
		for _, c := range ctxs {
			if c.m.Size() != len(c.model) {
				return false
			}
			ok := true
			c.m.Foreach(func(k hashmap.Key, v interface{}) bool {
				if c.model[k.Str] != v {
					ok = false
				}
				return ok
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGetHit(b *testing.B) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	ht.Set(m, hashmap.StrKey("key"), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Get(m, hashmap.StrKey("key"))
	}
}

func BenchmarkSet(b *testing.B) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	keys := make([]hashmap.Key, 64)
	for i := range keys {
		keys[i] = hashmap.StrKey(fmt.Sprintf("key%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Set(m, keys[i&63], i)
	}
}

func TestCoherentReadWritesBackDirtyPair(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	ht.Set(m, hashmap.StrKey("k"), "v")

	if _, ok := m.Get(hashmap.StrKey("k")); ok {
		t.Fatal("buffered SET must not reach the software map")
	}
	if !ht.CoherentRead(m, hashmap.StrKey("k")) {
		t.Fatal("CoherentRead should write the dirty pair back")
	}
	if v, ok := m.Get(hashmap.StrKey("k")); !ok || v != "v" {
		t.Fatalf("software map after snoop: %v %v", v, ok)
	}
	if ht.CoherentRead(m, hashmap.StrKey("k")) {
		t.Error("second CoherentRead should find the entry clean")
	}
	// The entry stays cached: a later hardware GET still hits.
	if _, res := ht.Get(m, hashmap.StrKey("k")); !res.Hit {
		t.Error("snooped entry should remain valid in the table")
	}
}

func TestCoherentWriteInvalidatesCachedPair(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	ht.Set(m, hashmap.StrKey("k"), "old")

	if !ht.CoherentWrite(m, hashmap.StrKey("k")) {
		t.Fatal("CoherentWrite should drop the cached pair")
	}
	m.Set(hashmap.StrKey("k"), "new")
	v, res := ht.Get(m, hashmap.StrKey("k"))
	if res.Hit {
		t.Error("invalidated entry must not serve the stale value")
	}
	if v != "new" || !res.Found {
		t.Errorf("software fallback should return the stored value: %v %+v", v, res)
	}
}

func TestSetBumpsAppendWatermark(t *testing.T) {
	ht := New(DefaultConfig())
	m := hashmap.New(nil)
	ht.Set(m, hashmap.IntKey(5), "x")

	// The buffered insert must advance the software append index even
	// though the pair itself has not been written back yet.
	if got := m.NextIntKey(); got != 6 {
		t.Errorf("NextIntKey after buffered Set(5) = %d, want 6", got)
	}
}
