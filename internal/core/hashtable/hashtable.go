// Package hashtable implements the paper's hardware hash table
// accelerator (§4.2): a small associative structure that serves both GET
// and SET requests entirely in hardware for the short-lived, small-keyed
// hash maps PHP applications access with dynamic key names.
//
// Design points reproduced from the paper:
//
//   - 512 entries by default; a lookup hashes the combination of the hash
//     map's base address and the key, then examines a window of 4
//     consecutive entries in parallel (constant 1-cycle access).
//   - Keys of at most 24 bytes are stored inline in the table (about 95%
//     of keys in the studied applications); longer keys bypass to
//     software.
//   - Each entry carries valid and dirty bits and an LRU timestamp.
//     Replacement prefers invalid entries, then clean entries, and only
//     then the LRU dirty entry, whose writeback needs software help.
//   - SET inserts silently without updating memory; the Reverse
//     Translation Table (RTT) tracks which table entries belong to each
//     map (circular buffer of back pointers with a write pointer) so
//     Free invalidates them without scanning, and foreach can write the
//     map back in insertion order.
//   - Writebacks go only to the software map's ordered table, carrying
//     the entry's reserved sequence position so the foreach insertion-
//     order invariant holds even across evictions and re-insertions.
package hashtable

import (
	"repro/internal/hashmap"
)

// Config sizes the accelerator.
type Config struct {
	// Entries is the hash table capacity (paper: 512).
	Entries int
	// ProbeWindow is how many consecutive entries one lookup examines in
	// parallel (paper: 4).
	ProbeWindow int
	// MaxKeyBytes is the widest key stored inline (paper: 24).
	MaxKeyBytes int
	// RTTPointers is each RTT entry's circular buffer capacity. When a
	// map has more live table entries than this, the RTT entry overflows
	// and Free/foreach fall back to a table scan.
	RTTPointers int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{Entries: 512, ProbeWindow: 4, MaxKeyBytes: 24, RTTPointers: 64}
}

func (c Config) sanitized() Config {
	if c.Entries <= 0 {
		c.Entries = 512
	}
	if c.ProbeWindow <= 0 {
		c.ProbeWindow = 4
	}
	if c.ProbeWindow > c.Entries {
		c.ProbeWindow = c.Entries
	}
	if c.MaxKeyBytes <= 0 {
		c.MaxKeyBytes = 24
	}
	if c.RTTPointers <= 0 {
		c.RTTPointers = 64
	}
	return c
}

// entry is one hardware hash table row.
type entry struct {
	valid  bool
	dirty  bool
	mapID  uint64 // 8-byte base address of the software hash map
	key    hashmap.Key
	val    interface{}
	seq    uint64 // ordered-table position for writeback
	lru    uint64 // last-access timestamp
	rttPos int    // back-pointer slot in the RTT entry, -1 if untracked
	m      *hashmap.Map
}

// rttEntry is the Reverse Translation Table row for one hash map: a
// circular buffer of back pointers into the hash table, filled through a
// write pointer in insertion order.
type rttEntry struct {
	back     []int32 // hash table indexes, -1 when invalidated
	writePtr int
	overflow bool
	m        *hashmap.Map
}

// Stats counts accelerator activity for the evaluation (Fig. 7, Fig. 15).
type Stats struct {
	Gets        int64 // GET requests
	GetHits     int64 // served without software
	Sets        int64 // SET requests
	SetHits     int64 // SET found the key already cached
	Bypasses    int64 // keys too long for the hardware
	EvictClean  int64 // clean-entry replacements (hardware only)
	EvictDirty  int64 // dirty-entry replacements (software writeback)
	Frees       int64 // Free requests
	FreeScans   int64 // Frees that scanned the table (RTT overflow)
	Foreaches   int64 // foreach flush requests
	Writebacks  int64 // pairs written back to software maps
	CoherenceEv int64 // flushes triggered by remote coherence requests
}

// Add folds another counter snapshot into this one — the fleet
// aggregation primitive for multi-worker pools, where each worker owns a
// private table.
func (s *Stats) Add(o Stats) {
	s.Gets += o.Gets
	s.GetHits += o.GetHits
	s.Sets += o.Sets
	s.SetHits += o.SetHits
	s.Bypasses += o.Bypasses
	s.EvictClean += o.EvictClean
	s.EvictDirty += o.EvictDirty
	s.Frees += o.Frees
	s.FreeScans += o.FreeScans
	s.Foreaches += o.Foreaches
	s.Writebacks += o.Writebacks
	s.CoherenceEv += o.CoherenceEv
}

// HitRate returns the GET hit fraction (SETs never miss, §4.2/Fig. 7).
func (s Stats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.GetHits) / float64(s.Gets)
}

// Table is the hardware hash table plus its RTT.
type Table struct {
	cfg     Config
	entries []entry
	rtt     map[uint64]*rttEntry
	// rttFree recycles rttEntry structures (and their back-pointer
	// backing) as maps die and are born; request-scoped arrays otherwise
	// allocate a fresh tracking entry per map.
	rttFree []*rttEntry
	clock   uint64
	stats   Stats
}

// New builds a table with the given configuration.
func New(cfg Config) *Table {
	cfg = cfg.sanitized()
	t := &Table{
		cfg:     cfg,
		entries: make([]entry, cfg.Entries),
		rtt:     make(map[uint64]*rttEntry),
	}
	for i := range t.entries {
		t.entries[i].rttPos = -1
	}
	return t
}

// Config returns the table's configuration.
func (t *Table) Config() Config { return t.cfg }

// Stats returns a snapshot of the activity counters.
func (t *Table) Stats() Stats { return t.stats }

// ResetStats clears the activity counters.
func (t *Table) ResetStats() { t.stats = Stats{} }

// hash combines the map base address and the key, mirroring the paper's
// simplified hardware hash function.
func (t *Table) hash(mapID uint64, k hashmap.Key) uint64 {
	h := k.Hash() ^ (mapID * 0x9e3779b97f4a7c15)
	h ^= h >> 29
	return h
}

func (t *Table) tick() uint64 {
	t.clock++
	return t.clock
}

// GetResult reports how a GET was served, for cost accounting.
type GetResult struct {
	Hit          bool // served entirely in hardware
	Bypass       bool // key too long; pure software access
	Found        bool // key exists (in hardware or software)
	EvictedDirty bool // installing the loaded pair wrote back a dirty entry
}

// Get performs a hashtableget. On a hit the value comes straight from the
// table. On a miss, control falls back to software (the map walk), and
// the retrieved pair is installed in the table.
func (t *Table) Get(m *hashmap.Map, k hashmap.Key) (interface{}, GetResult) {
	if k.Len() > t.cfg.MaxKeyBytes {
		t.stats.Bypasses++
		v, ok := m.Get(k)
		return v, GetResult{Bypass: true, Found: ok}
	}
	t.stats.Gets++
	if idx := t.lookup(m.ID(), k); idx >= 0 {
		t.stats.GetHits++
		t.entries[idx].lru = t.tick()
		return t.entries[idx].val, GetResult{Hit: true, Found: true}
	}
	// Software fallback: regular hash map access in memory.
	v, seq, ok := m.GetWithSeq(k)
	if !ok {
		return nil, GetResult{}
	}
	res := GetResult{Found: true}
	res.EvictedDirty = t.install(m, k, v, seq, false)
	return v, res
}

// SetResult reports how a SET was served.
type SetResult struct {
	Hit          bool // key was already cached (value pointer updated)
	Bypass       bool // key too long; software path
	EvictedDirty bool // made room by writing back a dirty entry
}

// Set performs a hashtableset. The pair lands in the table with the dirty
// bit set; memory is updated lazily (§4.2: "a SET operation silently
// updates the hash table ... without updating the memory").
func (t *Table) Set(m *hashmap.Map, k hashmap.Key, v interface{}) SetResult {
	if k.Len() > t.cfg.MaxKeyBytes {
		t.stats.Bypasses++
		m.Set(k, v)
		return SetResult{Bypass: true}
	}
	t.stats.Sets++
	if k.IsInt {
		// Coherence of the map's auto-index watermark rides on the same
		// access (like the seqOf read below): an int-keyed pair that
		// lives only in the table must still advance the index a
		// software append reads from memory.
		m.BumpIntKey(k.Int)
	}
	if idx := t.lookup(m.ID(), k); idx >= 0 {
		e := &t.entries[idx]
		e.val = v
		e.dirty = true
		e.lru = t.tick()
		t.stats.SetHits++
		return SetResult{Hit: true}
	}
	// The key may already exist in the software map; reuse its ordered
	// position so a future writeback does not duplicate or reorder it.
	seq, existed := t.seqOf(m, k)
	if !existed {
		seq = m.ReserveSeq()
	}
	evicted := t.install(m, k, v, seq, true)
	return SetResult{EvictedDirty: evicted}
}

// seqOf returns the ordered-table position of k in m if present. This is
// the hardware's coherence read of the software structure; it happens on
// the SET-miss path that already pays a memory access.
func (t *Table) seqOf(m *hashmap.Map, k hashmap.Key) (uint64, bool) {
	_, seq, ok := m.GetWithSeq(k)
	return seq, ok
}

// Delete removes a key from both the table and the software map (PHP
// unset). The cached copy is dropped without writeback since the pair is
// being destroyed.
func (t *Table) Delete(m *hashmap.Map, k hashmap.Key) bool {
	if idx := t.lookup(m.ID(), k); idx >= 0 {
		t.invalidate(idx)
	}
	return m.Delete(k)
}

// FreeResult reports how a Free was served.
type FreeResult struct {
	// Scanned is true when the RTT overflowed and the whole table had to
	// be scanned (the "seemingly expensive operation" the RTT avoids).
	Scanned bool
	// Invalidated is how many table entries belonged to the map.
	Invalidated int
}

// Free invalidates every table entry belonging to the map in response to
// the map's deallocation. Short-lived maps thereby live and die entirely
// inside the hardware without ever touching memory (§4.2).
func (t *Table) Free(m *hashmap.Map) FreeResult {
	t.stats.Frees++
	re := t.rtt[m.ID()]
	var res FreeResult
	if re == nil {
		return res
	}
	if re.overflow {
		t.stats.FreeScans++
		res.Scanned = true
		for i := range t.entries {
			if t.entries[i].valid && t.entries[i].mapID == m.ID() {
				t.invalidate(i)
				res.Invalidated++
			}
		}
	} else {
		for _, bp := range re.back {
			if bp >= 0 {
				t.invalidate(int(bp))
				res.Invalidated++
			}
		}
	}
	t.recycleRTT(m.ID())
	return res
}

// Foreach flushes the map's dirty pairs to memory in insertion order via
// the RTT, then runs the software foreach over the now-coherent map.
func (t *Table) Foreach(m *hashmap.Map, f func(k hashmap.Key, v interface{}) bool) int {
	t.stats.Foreaches++
	n := t.FlushMap(m)
	m.Foreach(f)
	return n
}

// CoherentRead makes a software read of (m, k) coherent with the table:
// a dirty cached copy of the pair is written back and cleaned first, as
// the snoop/inclusion logic does when a demand load hits an address the
// table holds (§4.2). It reports whether a writeback happened — software
// methods that specialize static-key accesses to offset reads (inline
// caching, §3) still see values buffered by dynamic-key SETs.
func (t *Table) CoherentRead(m *hashmap.Map, k hashmap.Key) bool {
	if k.Len() > t.cfg.MaxKeyBytes {
		return false
	}
	idx := t.lookup(m.ID(), k)
	if idx < 0 || !t.entries[idx].dirty {
		return false
	}
	e := &t.entries[idx]
	e.m.WritebackSeq(e.key, e.val, e.seq)
	e.dirty = false
	t.stats.Writebacks++
	return true
}

// CoherentWrite makes a software store of (m, k) coherent with the
// table: any cached copy of the pair is invalidated so later
// hashtablegets refetch the stored value from memory instead of serving
// a stale hardware copy. It reports whether an entry was dropped.
func (t *Table) CoherentWrite(m *hashmap.Map, k hashmap.Key) bool {
	if k.Len() > t.cfg.MaxKeyBytes {
		return false
	}
	idx := t.lookup(m.ID(), k)
	if idx < 0 {
		return false
	}
	t.invalidate(idx)
	return true
}

// FlushMap writes the map's dirty entries back to the software map and
// cleans them. It returns the number of pairs written back.
func (t *Table) FlushMap(m *hashmap.Map) int {
	re := t.rtt[m.ID()]
	if re == nil {
		return 0
	}
	written := 0
	flush := func(i int) {
		e := &t.entries[i]
		if e.valid && e.mapID == m.ID() && e.dirty {
			m.WritebackSeq(e.key, e.val, e.seq)
			e.dirty = false
			written++
			t.stats.Writebacks++
		}
	}
	if re.overflow {
		for i := range t.entries {
			flush(i)
		}
	} else {
		for _, bp := range re.back {
			if bp >= 0 {
				flush(int(bp))
			}
		}
	}
	return written
}

// OnRemoteCoherence handles a remote coherence request (or L2 eviction
// enforcing inclusion) for the map's address range: the accelerator
// flushes and invalidates everything it holds for that map (§4.2).
func (t *Table) OnRemoteCoherence(m *hashmap.Map) {
	t.stats.CoherenceEv++
	t.FlushMap(m)
	if re := t.rtt[m.ID()]; re != nil {
		if re.overflow {
			for i := range t.entries {
				if t.entries[i].valid && t.entries[i].mapID == m.ID() {
					t.invalidate(i)
				}
			}
		} else {
			for _, bp := range re.back {
				if bp >= 0 {
					t.invalidate(int(bp))
				}
			}
		}
		t.recycleRTT(m.ID())
	}
}

// FlushAll writes back every dirty entry and invalidates the whole table
// — the context-switch protocol. The software maps' hash indexes are
// marked stale, exercising the reconstruction path the paper notes is
// needed only for correctness.
func (t *Table) FlushAll() int {
	written := 0
	staled := map[uint64]*hashmap.Map{}
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		if e.dirty {
			e.m.WritebackSeq(e.key, e.val, e.seq)
			t.stats.Writebacks++
			written++
			staled[e.mapID] = e.m
		}
		t.invalidate(i)
	}
	for _, m := range staled {
		m.MarkStale()
	}
	t.rtt = make(map[uint64]*rttEntry)
	return written
}

// Len returns the number of valid entries.
func (t *Table) Len() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}

// lookup probes the window for (mapID, key), returning the entry index or
// -1. Hardware examines the window's entries in parallel; cost is
// constant regardless of where in the window the key sits.
func (t *Table) lookup(mapID uint64, k hashmap.Key) int {
	h := t.hash(mapID, k)
	base := int(h % uint64(len(t.entries)))
	for w := 0; w < t.cfg.ProbeWindow; w++ {
		i := (base + w) % len(t.entries)
		e := &t.entries[i]
		if e.valid && e.mapID == mapID && keyEq(e.key, k) {
			return i
		}
	}
	return -1
}

func keyEq(a, b hashmap.Key) bool {
	if a.IsInt != b.IsInt {
		return false
	}
	if a.IsInt {
		return a.Int == b.Int
	}
	return a.Str == b.Str
}

// install places a pair into the table, choosing a victim within the
// probe window: invalid first, then LRU clean, then LRU dirty (which
// costs a software writeback). It reports whether a dirty writeback
// happened.
func (t *Table) install(m *hashmap.Map, k hashmap.Key, v interface{}, seq uint64, dirty bool) bool {
	h := t.hash(m.ID(), k)
	base := int(h % uint64(len(t.entries)))

	victim, victimKind := -1, 3 // 0 invalid, 1 clean, 2 dirty
	var victimLRU uint64
	for w := 0; w < t.cfg.ProbeWindow; w++ {
		i := (base + w) % len(t.entries)
		e := &t.entries[i]
		kind := 2
		if !e.valid {
			kind = 0
		} else if !e.dirty {
			kind = 1
		}
		if kind < victimKind || (kind == victimKind && e.lru < victimLRU) {
			victim, victimKind, victimLRU = i, kind, e.lru
		}
	}

	evictedDirty := false
	if victimKind == 2 {
		// LRU dirty entry: software writes it back before replacement.
		e := &t.entries[victim]
		e.m.WritebackSeq(e.key, e.val, e.seq)
		t.stats.Writebacks++
		t.stats.EvictDirty++
		evictedDirty = true
	} else if victimKind == 1 {
		t.stats.EvictClean++
	}
	if victimKind != 0 {
		t.invalidate(victim)
	}

	e := &t.entries[victim]
	e.valid = true
	e.dirty = dirty
	e.mapID = m.ID()
	e.key = k
	e.val = v
	e.seq = seq
	e.lru = t.tick()
	e.m = m
	e.rttPos = t.rttTrack(m, victim)
	return evictedDirty
}

// invalidate clears an entry and its RTT back pointer.
func (t *Table) invalidate(i int) {
	e := &t.entries[i]
	if e.valid && e.rttPos >= 0 {
		if re := t.rtt[e.mapID]; re != nil && e.rttPos < len(re.back) && re.back[e.rttPos] == int32(i) {
			re.back[e.rttPos] = -1
		}
	}
	*e = entry{rttPos: -1}
}

// recycleRTT removes the map's tracking entry and pushes it on the free
// list for the next rttTrack to reuse.
func (t *Table) recycleRTT(id uint64) {
	if re := t.rtt[id]; re != nil {
		re.back = re.back[:0]
		re.writePtr = 0
		re.overflow = false
		re.m = nil
		t.rttFree = append(t.rttFree, re)
	}
	delete(t.rtt, id)
}

// rttTrack records a back pointer for the newly installed entry through
// the map's RTT write pointer, returning the slot used (or -1 after
// overflow).
func (t *Table) rttTrack(m *hashmap.Map, tableIdx int) int {
	re := t.rtt[m.ID()]
	if re == nil {
		if n := len(t.rttFree); n > 0 {
			re = t.rttFree[n-1]
			t.rttFree[n-1] = nil
			t.rttFree = t.rttFree[:n-1]
			re.m = m
		} else {
			re = &rttEntry{back: make([]int32, 0, 8), m: m}
		}
		t.rtt[m.ID()] = re
	}
	if re.overflow {
		return -1
	}
	if re.writePtr >= t.cfg.RTTPointers {
		// Circular buffer exhausted: stop tracking order precisely; Free
		// and flush fall back to scanning.
		re.overflow = true
		return -1
	}
	re.back = append(re.back, int32(tableIdx))
	pos := re.writePtr
	re.writePtr++
	return pos
}
