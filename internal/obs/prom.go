package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one name="value" pair on a metric sample. Labels are emitted
// in the order given, so callers control (and tests can assert) the
// exact exposition text.
type Label struct {
	Name  string
	Value string
}

// Sample is one series of a metric family: its labels and current value.
type Sample struct {
	Labels []Label
	Value  float64
}

// Quantile is one φ-quantile of a summary metric.
type Quantile struct {
	Q     float64 // e.g. 0.5, 0.95, 0.99
	Value float64
}

// Encoder writes metric families in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE header per family followed
// by one line per series. Errors are sticky; check Err once at the end.
//
// The encoder is deliberately snapshot-oriented: the serving layer keeps
// plain counters and histograms on the hot path and renders them here
// only at scrape time, so exposition cost is never paid per request.
type Encoder struct {
	w   io.Writer
	err error
}

// NewEncoder builds an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first write error, if any.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) printf(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value ("+Inf"/"-Inf"/"NaN" spelled the
// way the exposition format requires).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {a="b",c="d"}, or "" for no labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (e *Encoder) header(name, help, typ string) {
	e.printf("# HELP " + name + " " + escapeHelp(help) + "\n")
	e.printf("# TYPE " + name + " " + typ + "\n")
}

func (e *Encoder) series(name string, labels []Label, v float64) {
	e.printf(name + labelString(labels) + " " + formatValue(v) + "\n")
}

// Counter writes one counter family with the given samples.
func (e *Encoder) Counter(name, help string, samples ...Sample) {
	e.header(name, help, "counter")
	for _, s := range samples {
		e.series(name, s.Labels, s.Value)
	}
}

// Gauge writes one gauge family with the given samples.
func (e *Encoder) Gauge(name, help string, samples ...Sample) {
	e.header(name, help, "gauge")
	for _, s := range samples {
		e.series(name, s.Labels, s.Value)
	}
}

// Histogram writes one histogram family from a cumulative snapshot:
// name_bucket{le="..."} lines (cumulative counts, +Inf last), then
// name_sum and name_count. labels are prepended to every bucket's le
// label. A zero-sample snapshot is valid and exports all-zero series.
func (e *Encoder) Histogram(name, help string, labels []Label, s HistogramSnapshot) {
	e.header(name, help, "histogram")
	for i, b := range s.Bounds {
		le := append(append([]Label(nil), labels...), Label{"le", formatValue(b)})
		e.series(name+"_bucket", le, float64(s.Counts[i]))
	}
	inf := append(append([]Label(nil), labels...), Label{"le", "+Inf"})
	e.series(name+"_bucket", inf, float64(s.Count))
	e.series(name+"_sum", labels, s.Sum)
	e.series(name+"_count", labels, float64(s.Count))
}

// Summary writes one summary family: name{quantile="..."} lines followed
// by name_sum and name_count. Used for the pool's precomputed
// p50/p95/p99 latency quantiles.
func (e *Encoder) Summary(name, help string, labels []Label, quantiles []Quantile, sum float64, count uint64) {
	e.header(name, help, "summary")
	for _, q := range quantiles {
		ql := append(append([]Label(nil), labels...), Label{"quantile", formatValue(q.Q)})
		e.series(name, ql, q.Value)
	}
	e.series(name+"_sum", labels, sum)
	e.series(name+"_count", labels, float64(count))
}
