package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// Label is one name="value" pair on a metric sample. Labels are emitted
// in the order given, so callers control (and tests can assert) the
// exact exposition text.
type Label struct {
	Name  string
	Value string
}

// Sample is one series of a metric family: its labels and current value.
type Sample struct {
	Labels []Label
	Value  float64
}

// Quantile is one φ-quantile of a summary metric.
type Quantile struct {
	Q     float64 // e.g. 0.5, 0.95, 0.99
	Value float64
}

// Encoder writes metric families in the Prometheus text exposition
// format (version 0.0.4): a # HELP and # TYPE header per family followed
// by one line per series. Errors are sticky; check Err once at the end.
//
// The encoder is deliberately snapshot-oriented: the serving layer keeps
// plain counters and histograms on the hot path and renders them here
// only at scrape time, so exposition cost is never paid per request.
// Lines are assembled with strconv.Append* into a buffer the encoder
// reuses across series, so a scrape's exposition cost is bounded by the
// write path, not by per-line string assembly. An Encoder is
// single-goroutine, like the scrape handler that owns it.
type Encoder struct {
	w   io.Writer
	buf []byte  // per-line assembly buffer, reused
	lbl []Label // scratch for derived label sets (le=, quantile=)
	err error
}

// NewEncoder builds an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first write error, if any.
func (e *Encoder) Err() error { return e.err }

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// appendEscapedLabel appends a label value escaping backslash, double
// quote, and newline per the exposition format.
func appendEscapedLabel(b []byte, s string) []byte {
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' && c != '"' && c != '\n' {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		}
		start = i + 1
	}
	return append(b, s[start:]...)
}

// appendValue appends a sample value ("+Inf"/"-Inf"/"NaN" spelled the
// way the exposition format requires).
func appendValue(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// formatValue renders a sample value as a string (the parse-side tests
// and merge keys still want the string form).
func formatValue(v float64) string {
	return string(appendValue(nil, v))
}

// appendLabelBlock appends {a="b",c="d"}, or nothing for no labels.
func appendLabelBlock(b []byte, labels []Label) []byte {
	if len(labels) == 0 {
		return b
	}
	b = append(b, '{')
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Name...)
		b = append(b, '=', '"')
		b = appendEscapedLabel(b, l.Value)
		b = append(b, '"')
	}
	return append(b, '}')
}

// labelString renders {a="b",c="d"}, or "" for no labels — the merge
// identity used by the parse side.
func labelString(labels []Label) string {
	return string(appendLabelBlock(nil, labels))
}

func (e *Encoder) write(b []byte) {
	e.buf = b
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *Encoder) header(name, help, typ string) {
	b := e.buf[:0]
	b = append(b, "# HELP "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, escapeHelp(help)...)
	b = append(b, '\n')
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	e.write(b)
}

func (e *Encoder) series(name string, labels []Label, v float64) {
	b := e.buf[:0]
	b = append(b, name...)
	b = appendLabelBlock(b, labels)
	b = append(b, ' ')
	b = appendValue(b, v)
	b = append(b, '\n')
	e.write(b)
}

// derived builds labels + one extra pair in the encoder's scratch label
// slice (valid until the next derived call — series consumes it
// synchronously).
func (e *Encoder) derived(labels []Label, name, value string) []Label {
	e.lbl = append(e.lbl[:0], labels...)
	e.lbl = append(e.lbl, Label{name, value})
	return e.lbl
}

// Counter writes one counter family with the given samples.
func (e *Encoder) Counter(name, help string, samples ...Sample) {
	e.header(name, help, "counter")
	for _, s := range samples {
		e.series(name, s.Labels, s.Value)
	}
}

// Gauge writes one gauge family with the given samples.
func (e *Encoder) Gauge(name, help string, samples ...Sample) {
	e.header(name, help, "gauge")
	for _, s := range samples {
		e.series(name, s.Labels, s.Value)
	}
}

// Histogram writes one histogram family from a cumulative snapshot:
// name_bucket{le="..."} lines (cumulative counts, +Inf last), then
// name_sum and name_count. labels are prepended to every bucket's le
// label. A zero-sample snapshot is valid and exports all-zero series.
func (e *Encoder) Histogram(name, help string, labels []Label, s HistogramSnapshot) {
	e.header(name, help, "histogram")
	for i, b := range s.Bounds {
		e.series(name+"_bucket", e.derived(labels, "le", formatValue(b)), float64(s.Counts[i]))
	}
	e.series(name+"_bucket", e.derived(labels, "le", "+Inf"), float64(s.Count))
	e.series(name+"_sum", labels, s.Sum)
	e.series(name+"_count", labels, float64(s.Count))
}

// Summary writes one summary family: name{quantile="..."} lines followed
// by name_sum and name_count. Used for the pool's precomputed
// p50/p95/p99 latency quantiles.
func (e *Encoder) Summary(name, help string, labels []Label, quantiles []Quantile, sum float64, count uint64) {
	e.header(name, help, "summary")
	for _, q := range quantiles {
		e.series(name, e.derived(labels, "quantile", formatValue(q.Q)), q.Value)
	}
	e.series(name+"_sum", labels, sum)
	e.series(name+"_count", labels, float64(count))
}
