package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestSamplerRates(t *testing.T) {
	tests := []struct {
		rate float64
		n    int
		want int
	}{
		{1, 100, 100},    // every request
		{0, 100, 0},      // disabled
		{-0.5, 100, 0},   // negative clamps to disabled
		{0.01, 1000, 10}, // deterministic: every 100th
		{0.25, 100, 25},
		{2, 10, 10},    // >=1 clamps to every request
		{0.7, 100, 50}, // ceil(1/0.7) = 2: realized rate never exceeds requested
		{0.4, 99, 33},  // ceil(1/0.4) = 3
	}
	for _, tt := range tests {
		s := NewSampler(tt.rate)
		got := 0
		for i := 0; i < tt.n; i++ {
			if s.Sample() {
				got++
			}
		}
		if got != tt.want {
			t.Errorf("rate %v over %d: sampled %d, want %d", tt.rate, tt.n, got, tt.want)
		}
	}
}

func TestSamplerConcurrent(t *testing.T) {
	// The counter is atomic: with rate 0.1, 40 goroutines x 25 requests
	// must sample exactly 100.
	s := NewSampler(0.1)
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0
	for g := 0; g < 40; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			for i := 0; i < 25; i++ {
				if s.Sample() {
					n++
				}
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != 100 {
		t.Errorf("sampled %d of 1000 at rate 0.1, want exactly 100", total)
	}
}

func TestSamplerTinyRateNoOverflow(t *testing.T) {
	// 1/rate overflows uint64 here; the interval must clamp to a huge
	// finite value instead of hitting undefined float→uint conversion.
	s := NewSampler(1e-300)
	if s.Interval() == 0 {
		t.Fatal("tiny positive rate must not disable sampling")
	}
	if s.Sample() {
		t.Error("sampled a request at an astronomically small rate")
	}
}

func TestNilSampler(t *testing.T) {
	var s *Sampler
	if s.Sample() {
		t.Error("nil sampler must never sample")
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3})
	for _, v := range []float64{0.5, 1, 1.5, 2.5, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in le=1 (boundary inclusive), 1.5 in le=2, 2.5 in
	// le=3, 10 overflows.
	if s.Counts[0] != 2 || s.Counts[1] != 3 || s.Counts[2] != 4 || s.Count != 5 {
		t.Errorf("cumulative counts = %v count %d", s.Counts, s.Count)
	}
	if s.Sum != 15.5 {
		t.Errorf("sum = %v, want 15.5", s.Sum)
	}
}

func TestCollectorObserve(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector(1, &buf, nil)

	var sp Span
	sp.Worker = 3
	sp.Wall = 2 * time.Millisecond
	sp.Sampled = c.ShouldSample()
	sp.Categories[sim.CatHash] = 700
	sp.Categories[sim.CatRegex] = 300
	sp.Cycles = sp.Categories.Total()
	out := c.Observe(sp, 512)
	if out.Request != 1 {
		t.Errorf("first request number = %d", out.Request)
	}
	c.Observe(Span{Wall: time.Millisecond, Sampled: c.ShouldSample()}, 100)

	snap := c.Snapshot()
	if snap.Requests != 2 || snap.ResponseBytes != 612 || snap.SampledSpans != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Latency.Count != 2 {
		t.Errorf("histogram count = %d", snap.Latency.Count)
	}
	if len(snap.Latencies) != 2 {
		t.Errorf("reservoir = %v", snap.Latencies)
	}

	var e LogEntry
	if err := json.Unmarshal(bytes.Split(buf.Bytes(), []byte("\n"))[0], &e); err != nil {
		t.Fatal(err)
	}
	if e.Worker != 3 || e.Request != 1 || e.LatencyUS != 2000 || e.Bytes != 512 {
		t.Errorf("log entry = %+v", e)
	}
	if e.Breakdown["hash"] != 700 || e.Breakdown["regex"] != 300 {
		t.Errorf("breakdown = %v", e.Breakdown)
	}
	if _, ok := e.Breakdown["heap"]; ok {
		t.Errorf("zero categories should be omitted: %v", e.Breakdown)
	}
}

func TestCollectorReservoirBounded(t *testing.T) {
	c := NewCollector(0, nil, nil)
	for i := 0; i < maxRetainedLatencies+100; i++ {
		c.Observe(Span{Wall: time.Microsecond}, 1)
	}
	snap := c.Snapshot()
	if len(snap.Latencies) > maxRetainedLatencies {
		t.Errorf("reservoir grew past cap: %d", len(snap.Latencies))
	}
	if snap.Requests != maxRetainedLatencies+100 {
		t.Errorf("requests = %d", snap.Requests)
	}
	// The histogram keeps exact totals even after reservoir halving.
	if snap.Latency.Count != maxRetainedLatencies+100 {
		t.Errorf("histogram count = %d", snap.Latency.Count)
	}
}

func TestAccessLogConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				l.Write(Span{Request: uint64(g*20 + i), Worker: g, Wall: time.Millisecond, Sampled: true}, 64)
			}
		}(g)
	}
	wg.Wait()
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e LogEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("interleaved or corrupt line %d: %v: %s", lines, err, sc.Text())
		}
		lines++
	}
	if lines != 160 {
		t.Errorf("log lines = %d, want 160", lines)
	}
}

// TestCollectorObserveShed: sheds are counted separately from served
// requests and always produce an access-log line (no sampling — they
// are rare and operator-relevant) carrying the lifecycle fields.
func TestCollectorObserveShed(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector(0, &buf, nil) // sample rate 0: served requests unlogged
	c.Observe(Span{Wall: time.Millisecond}, 100)
	c.ObserveShed(RequestMeta{
		Path:      "/overloaded",
		Status:    503,
		Outcome:   "shed_overload",
		QueueWait: 3 * time.Millisecond,
	})

	snap := c.Snapshot()
	if snap.Requests != 1 || snap.Shed != 1 {
		t.Errorf("snapshot requests/shed = %d/%d, want 1/1", snap.Requests, snap.Shed)
	}

	var e LogEntry
	if err := json.Unmarshal(bytes.Split(buf.Bytes(), []byte("\n"))[0], &e); err != nil {
		t.Fatalf("shed line not logged or invalid: %v", err)
	}
	if e.Outcome != "shed_overload" || e.Status != 503 || e.Worker != -1 {
		t.Errorf("shed entry = %+v", e)
	}
	if e.QueueUS != 3000 {
		t.Errorf("queue_us = %d, want 3000", e.QueueUS)
	}
	if e.Path != "/overloaded" {
		t.Errorf("path = %q", e.Path)
	}

	// A collector without a log writer must not panic on sheds.
	NewCollector(0, nil, nil).ObserveShed(RequestMeta{Outcome: "timeout"})
}

func TestDefLatencyBucketsCoverOverloadTail(t *testing.T) {
	// -timeout/-drain permit multi-second waits; a 10s observation must
	// land in a finite bucket, not fall through to +Inf.
	bounds := DefLatencyBuckets()
	h := NewHistogram(bounds)
	h.Observe(10.0)
	s := h.Snapshot()
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("10s observation not within the largest finite bucket (max bound %g)", bounds[len(bounds)-1])
	}
	for i, b := range bounds {
		if b >= 10.0 {
			if s.Counts[i] != 1 {
				t.Errorf("cumulative count at bound %g = %d, want 1", b, s.Counts[i])
			}
			return
		}
		if s.Counts[i] != 0 {
			t.Errorf("cumulative count at bound %g = %d, want 0", b, s.Counts[i])
		}
	}
}
