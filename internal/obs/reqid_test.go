package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestIDSourceUniqueConcurrent is the satellite acceptance test: 64
// goroutines minting IDs concurrently never collide, and every ID is
// well-formed.
func TestIDSourceUniqueConcurrent(t *testing.T) {
	const goroutines, perG = 64, 512
	src := NewIDSource()
	ids := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]string, perG)
			for i := range out {
				out[i] = src.Next()
			}
			ids[g] = out
		}(g)
	}
	wg.Wait()

	seen := make(map[string]bool, goroutines*perG)
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate request ID %q", id)
			}
			seen[id] = true
			if len(id) != 25 || id[16] != '-' {
				t.Fatalf("malformed ID %q", id)
			}
			if SanitizeRequestID(id) != id {
				t.Fatalf("minted ID %q does not survive sanitization", id)
			}
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("minted %d unique IDs, want %d", len(seen), goroutines*perG)
	}
}

// TestIDSourcesDistinctPrefixes: two sources (two processes) almost
// surely differ in prefix, so cross-process IDs stay distinct too.
func TestIDSourcesDistinctPrefixes(t *testing.T) {
	a, b := NewIDSource(), NewIDSource()
	if a.Next()[:16] == b.Next()[:16] {
		t.Fatal("two fresh ID sources share a prefix (entropy failure?)")
	}
}

func TestIDSourceNil(t *testing.T) {
	var s *IDSource
	if got := s.Next(); got != "" {
		t.Fatalf("nil source minted %q", got)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"abc-123", "abc-123"},
		{"evil\"quote", "evil_quote"},
		{"back\\slash", "back_slash"},
		{"new\nline\ttab", "new_line_tab"},
		{"caf\xc3\xa9", "caf__"}, // non-ASCII bytes neutralized
		{strings.Repeat("x", 200), strings.Repeat("x", 64)},
	}
	for _, c := range cases {
		if got := SanitizeRequestID(c.in); got != c.want {
			t.Fatalf("SanitizeRequestID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
