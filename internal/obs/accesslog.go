package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/sim"
)

// AccessLog writes one JSON object per logged request — sampled renders
// plus every shed — to an injectable io.Writer (a file in production, a
// bytes.Buffer in tests). Writes are serialized by an internal mutex so
// concurrent workers never interleave lines.
type AccessLog struct {
	mu      sync.Mutex
	enc     *json.Encoder
	backend string
}

// NewAccessLog builds an access log writing JSON lines to w.
func NewAccessLog(w io.Writer) *AccessLog {
	return &AccessLog{enc: json.NewEncoder(w), backend: "-"}
}

// SetBackend stamps every subsequent line's backend field with id — the
// cluster-mode process identity ("0", "1", ...). Standalone processes
// keep the default "-", so multi-process log merges stay unambiguous.
func (l *AccessLog) SetBackend(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id == "" {
		id = "-"
	}
	l.backend = id
}

// maxLogFieldLen bounds request-controlled string fields (path, user
// agent) in a log line. A hostile request with a megabyte URL or UA
// header otherwise turns every sampled line into a megabyte of JSON;
// beyond the cap the field is cut and marked with a trailing "…".
const maxLogFieldLen = 256

// truncateField caps a request-controlled string for logging, marking
// cut fields with a trailing ellipsis. Truncation counts bytes, backing
// up over a split UTF-8 rune so the output stays valid JSON text.
func truncateField(s string) string {
	if len(s) <= maxLogFieldLen {
		return s
	}
	cut := maxLogFieldLen
	for cut > 0 && s[cut]&0xC0 == 0x80 { // don't split a rune
		cut--
	}
	return s[:cut] + "…"
}

// LogEntry is the JSON shape of one access-log line. Cycle fields are
// present only on sampled spans; latency is reported in microseconds to
// match /stats. Path and UserAgent are truncated to maxLogFieldLen.
type LogEntry struct {
	Time      string             `json:"ts"`
	Request   uint64             `json:"request"`
	RequestID string             `json:"request_id,omitempty"`
	Worker    int                `json:"worker"`
	Backend   string             `json:"backend"`
	Path      string             `json:"path,omitempty"`
	UserAgent string             `json:"user_agent,omitempty"`
	LatencyUS int64              `json:"latency_us"`
	QueueUS   int64              `json:"queue_us,omitempty"`
	Status    int                `json:"status,omitempty"`
	Outcome   string             `json:"outcome,omitempty"`
	Bytes     int                `json:"bytes"`
	Sampled   bool               `json:"sampled"`
	Rerouted  bool               `json:"rerouted,omitempty"`
	ShedReason string            `json:"shed_reason,omitempty"`
	Cycles    float64            `json:"cycles,omitempty"`
	Breakdown map[string]float64 `json:"cycles_by_category,omitempty"`
}

// Write emits one line for the span. Unsampled spans log only identity
// and latency; sampled spans add the per-category cycle breakdown.
func (l *AccessLog) Write(sp Span, respBytes int) error {
	return l.WriteMeta(sp, respBytes, RequestMeta{})
}

// WriteMeta is Write plus HTTP request metadata. Request-controlled
// fields are truncated so one request cannot bloat the log.
func (l *AccessLog) WriteMeta(sp Span, respBytes int, meta RequestMeta) error {
	e := LogEntry{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		Request:    sp.Request,
		RequestID:  meta.RequestID,
		Worker:     sp.Worker,
		Path:       truncateField(meta.Path),
		UserAgent:  truncateField(meta.UserAgent),
		LatencyUS:  sp.Wall.Microseconds(),
		QueueUS:    meta.QueueWait.Microseconds(),
		Status:     meta.Status,
		Outcome:    meta.Outcome,
		Bytes:      respBytes,
		Sampled:    sp.Sampled,
		Rerouted:   meta.Rerouted,
		ShedReason: meta.ShedReason,
	}
	if sp.Sampled {
		e.Cycles = sp.Cycles
		e.Breakdown = make(map[string]float64, sim.NumCategories)
		for _, c := range sim.Categories() {
			if v := sp.Categories[c]; v != 0 {
				e.Breakdown[c.String()] = v
			}
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Backend = l.backend
	if meta.Backend != "" {
		// A per-request backend (the router logging which backend served
		// the proxied request) overrides the process-level identity.
		e.Backend = meta.Backend
	}
	return l.enc.Encode(e)
}
