package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
	"time"

	"repro/internal/sim"
)

// AccessLog writes one JSON object per logged request — sampled renders
// plus every shed — to an injectable io.Writer (a file in production, a
// bytes.Buffer in tests). Writes are serialized by an internal mutex so
// concurrent workers never interleave lines. Lines are encoded by hand
// with strconv.Append* into a buffer reused across calls (guarded by
// the same mutex), so a log write costs no per-call reflection or
// intermediate allocations; the emitted object matches LogEntry
// field-for-field.
type AccessLog struct {
	mu      sync.Mutex
	w       io.Writer
	buf     []byte
	backend string
}

// NewAccessLog builds an access log writing JSON lines to w.
func NewAccessLog(w io.Writer) *AccessLog {
	return &AccessLog{w: w, backend: "-"}
}

// SetBackend stamps every subsequent line's backend field with id — the
// cluster-mode process identity ("0", "1", ...). Standalone processes
// keep the default "-", so multi-process log merges stay unambiguous.
func (l *AccessLog) SetBackend(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id == "" {
		id = "-"
	}
	l.backend = id
}

// maxLogFieldLen bounds request-controlled string fields (path, user
// agent) in a log line. A hostile request with a megabyte URL or UA
// header otherwise turns every sampled line into a megabyte of JSON;
// beyond the cap the field is cut and marked with a trailing "…".
const maxLogFieldLen = 256

// truncateField caps a request-controlled string for logging, marking
// cut fields with a trailing ellipsis. Truncation counts bytes, backing
// up over a split UTF-8 rune so the output stays valid JSON text.
func truncateField(s string) string {
	if s == "" || len(s) <= maxLogFieldLen {
		return s
	}
	cut := maxLogFieldLen
	for cut > 0 && s[cut]&0xC0 == 0x80 { // don't split a rune
		cut--
	}
	return s[:cut] + "…"
}

// LogEntry is the JSON shape of one access-log line (the decode side;
// the writer emits the same fields without going through reflection).
// Cycle fields are present only on sampled spans; latency is reported
// in microseconds to match /stats. Path and UserAgent are truncated to
// maxLogFieldLen.
type LogEntry struct {
	Time      string             `json:"ts"`
	Request   uint64             `json:"request"`
	RequestID string             `json:"request_id,omitempty"`
	Worker    int                `json:"worker"`
	Backend   string             `json:"backend"`
	Path      string             `json:"path,omitempty"`
	UserAgent string             `json:"user_agent,omitempty"`
	LatencyUS int64              `json:"latency_us"`
	QueueUS   int64              `json:"queue_us,omitempty"`
	Status    int                `json:"status,omitempty"`
	Outcome   string             `json:"outcome,omitempty"`
	Bytes     int                `json:"bytes"`
	Sampled   bool               `json:"sampled"`
	Rerouted  bool               `json:"rerouted,omitempty"`
	ShedReason string            `json:"shed_reason,omitempty"`
	Cycles    float64            `json:"cycles,omitempty"`
	Breakdown map[string]float64 `json:"cycles_by_category,omitempty"`
}

// appendJSONString appends s as a quoted JSON string, escaping the
// characters encoding/json escapes by default (quotes, backslashes,
// control characters, and the HTML-sensitive <, >, &) so hand-encoded
// lines stay drop-in compatible with the reflective encoder's output.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xF])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f the way encoding/json renders floats:
// shortest decimal form, scientific notation only for extreme
// magnitudes.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	return strconv.AppendFloat(b, f, format, -1, 64)
}

// Write emits one line for the span. Unsampled spans log only identity
// and latency; sampled spans add the per-category cycle breakdown.
func (l *AccessLog) Write(sp Span, respBytes int) error {
	return l.WriteMeta(sp, respBytes, RequestMeta{})
}

// WriteMeta is Write plus HTTP request metadata. Request-controlled
// fields are truncated so one request cannot bloat the log.
func (l *AccessLog) WriteMeta(sp Span, respBytes int, meta RequestMeta) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buf[:0]
	b = append(b, `{"ts":"`...)
	b = time.Now().UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","request":`...)
	b = strconv.AppendUint(b, sp.Request, 10)
	if meta.RequestID != "" {
		b = append(b, `,"request_id":`...)
		b = appendJSONString(b, meta.RequestID)
	}
	b = append(b, `,"worker":`...)
	b = strconv.AppendInt(b, int64(sp.Worker), 10)
	b = append(b, `,"backend":`...)
	backend := l.backend
	if meta.Backend != "" {
		// A per-request backend (the router logging which backend served
		// the proxied request) overrides the process-level identity.
		backend = meta.Backend
	}
	b = appendJSONString(b, backend)
	if meta.Path != "" {
		b = append(b, `,"path":`...)
		b = appendJSONString(b, truncateField(meta.Path))
	}
	if meta.UserAgent != "" {
		b = append(b, `,"user_agent":`...)
		b = appendJSONString(b, truncateField(meta.UserAgent))
	}
	b = append(b, `,"latency_us":`...)
	b = strconv.AppendInt(b, sp.Wall.Microseconds(), 10)
	if us := meta.QueueWait.Microseconds(); us != 0 {
		b = append(b, `,"queue_us":`...)
		b = strconv.AppendInt(b, us, 10)
	}
	if meta.Status != 0 {
		b = append(b, `,"status":`...)
		b = strconv.AppendInt(b, int64(meta.Status), 10)
	}
	if meta.Outcome != "" {
		b = append(b, `,"outcome":`...)
		b = appendJSONString(b, meta.Outcome)
	}
	b = append(b, `,"bytes":`...)
	b = strconv.AppendInt(b, int64(respBytes), 10)
	b = append(b, `,"sampled":`...)
	b = strconv.AppendBool(b, sp.Sampled)
	if meta.Rerouted {
		b = append(b, `,"rerouted":true`...)
	}
	if meta.ShedReason != "" {
		b = append(b, `,"shed_reason":`...)
		b = appendJSONString(b, meta.ShedReason)
	}
	if sp.Sampled {
		if sp.Cycles != 0 {
			b = append(b, `,"cycles":`...)
			b = appendJSONFloat(b, sp.Cycles)
		}
		first := true
		for _, c := range sim.Categories() {
			v := sp.Categories[c]
			if v == 0 {
				continue
			}
			if first {
				b = append(b, `,"cycles_by_category":{`...)
				first = false
			} else {
				b = append(b, ',')
			}
			b = appendJSONString(b, c.String())
			b = append(b, ':')
			b = appendJSONFloat(b, v)
		}
		if !first {
			b = append(b, '}')
		}
	}
	b = append(b, '}', '\n')
	l.buf = b
	_, err := l.w.Write(b)
	return err
}
