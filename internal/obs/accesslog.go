package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/sim"
)

// AccessLog writes one JSON object per sampled request to an injectable
// io.Writer (a file in production, a bytes.Buffer in tests). Writes are
// serialized by an internal mutex so concurrent workers never interleave
// lines.
type AccessLog struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewAccessLog builds an access log writing JSON lines to w.
func NewAccessLog(w io.Writer) *AccessLog {
	return &AccessLog{enc: json.NewEncoder(w)}
}

// LogEntry is the JSON shape of one access-log line. Cycle fields are
// present only on sampled spans; latency is reported in microseconds to
// match /stats.
type LogEntry struct {
	Time      string             `json:"ts"`
	Request   uint64             `json:"request"`
	Worker    int                `json:"worker"`
	LatencyUS int64              `json:"latency_us"`
	Bytes     int                `json:"bytes"`
	Sampled   bool               `json:"sampled"`
	Cycles    float64            `json:"cycles,omitempty"`
	Breakdown map[string]float64 `json:"cycles_by_category,omitempty"`
}

// Write emits one line for the span. Unsampled spans log only identity
// and latency; sampled spans add the per-category cycle breakdown.
func (l *AccessLog) Write(sp Span, respBytes int) error {
	e := LogEntry{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		Request:   sp.Request,
		Worker:    sp.Worker,
		LatencyUS: sp.Wall.Microseconds(),
		Bytes:     respBytes,
		Sampled:   sp.Sampled,
	}
	if sp.Sampled {
		e.Cycles = sp.Cycles
		e.Breakdown = make(map[string]float64, sim.NumCategories)
		for _, c := range sim.Categories() {
			if v := sp.Categories[c]; v != 0 {
				e.Breakdown[c.String()] = v
			}
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.enc.Encode(e)
}
