package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// traceEvent is one Chrome trace_event record. Only "X" (complete)
// events are emitted: each span becomes one event with ts/dur in
// microseconds, which both chrome://tracing and Perfetto load directly.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the trace_event JSON object format (the array format is
// also valid, but the object form lets viewers know the time unit).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTreesJSON renders the trees verbatim as a JSON array — the
// cross-process interchange form: the router's stitcher decodes it back
// into []*Tree with no lossy conversion (format=tree on /tracez).
func WriteTreesJSON(w io.Writer, trees []*Tree) error {
	if trees == nil {
		trees = []*Tree{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(trees)
}

// WriteTraceEvents renders the trees as Chrome trace_event JSON, one "X"
// (complete) event per span. Timestamps are absolute wall-clock
// microseconds so trees from different requests land on a shared
// timeline; tid is the serving worker, so each worker's requests stack
// on their own track. Each event's args carry the span's inclusive and
// exclusive simulated cycles plus the non-zero per-category breakdown.
func WriteTraceEvents(w io.Writer, trees []*Tree) error {
	f := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	for _, t := range trees {
		if t == nil || t.Root == nil {
			continue
		}
		base := float64(t.Start.UnixNano()) / 1e3
		t.Root.Walk(func(sp *TreeSpan, depth int) {
			args := map[string]any{
				"cycles":      sp.Cycles,
				"self_cycles": sp.SelfCycles(),
			}
			for _, c := range sim.Categories() {
				if v := sp.Categories[c]; v != 0 {
					args["cycles_"+c.String()] = v
				}
			}
			if depth == 0 {
				args["request"] = t.Request
				if t.Dropped > 0 {
					args["dropped_spans"] = t.Dropped
				}
			}
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: sp.Name,
				Ph:   "X",
				Ts:   base + float64(sp.Start.Microseconds()),
				Dur:  durUS(sp),
				Pid:  1,
				Tid:  t.Worker,
				Cat:  "phpserve",
				Args: args,
			})
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// durUS returns the span duration in microseconds, floored at a sliver
// so zero-length spans stay visible (and clickable) in trace viewers.
func durUS(sp *TreeSpan) float64 {
	us := float64(sp.Dur.Nanoseconds()) / 1e3
	if us < 0.001 {
		us = 0.001
	}
	return us
}

// WriteFolded renders the trees as folded stacks — one "a;b;c value"
// line per unique span path, weighted by the path's exclusive simulated
// cycles — the input format of flamegraph.pl and speedscope. Identical
// paths across trees merge, so the output is the aggregate flame shape
// of the exported sample. Lines are sorted for deterministic output.
func WriteFolded(w io.Writer, trees []*Tree) error {
	agg := make(map[string]float64)
	var stack []string
	var walk func(sp *TreeSpan)
	walk = func(sp *TreeSpan) {
		stack = append(stack, foldedFrame(sp.Name))
		if self := sp.SelfCycles(); self > 0 {
			agg[strings.Join(stack, ";")] += self
		}
		for _, c := range sp.Children {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, t := range trees {
		if t == nil || t.Root == nil {
			continue
		}
		walk(t.Root)
	}
	paths := make([]string, 0, len(agg))
	for p := range agg {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := fmt.Fprintf(w, "%s %.0f\n", p, agg[p]); err != nil {
			return err
		}
	}
	return nil
}

// foldedFrame sanitizes a span name for the folded-stack format, whose
// frame separator is ';' and whose count separator is ' '.
func foldedFrame(name string) string {
	name = strings.ReplaceAll(name, ";", ":")
	return strings.ReplaceAll(name, " ", "_")
}
