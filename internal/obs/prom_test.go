package obs

import (
	"math"
	"strings"
	"testing"
)

func TestEncoderCounterAndGauge(t *testing.T) {
	tests := []struct {
		name    string
		write   func(e *Encoder)
		want    []string
		exactly string // when set, the full expected output
	}{
		{
			name: "bare counter",
			write: func(e *Encoder) {
				e.Counter("requests_total", "Requests served.", Sample{Value: 42})
			},
			exactly: "# HELP requests_total Requests served.\n" +
				"# TYPE requests_total counter\n" +
				"requests_total 42\n",
		},
		{
			name: "labeled gauge",
			write: func(e *Encoder) {
				e.Gauge("workers", "Pool size.", Sample{
					Labels: []Label{{Name: "app", Value: "wordpress"}, {Name: "config", Value: "accelerated"}},
					Value:  4,
				})
			},
			want: []string{`workers{app="wordpress",config="accelerated"} 4`, "# TYPE workers gauge"},
		},
		{
			name: "multi-series family has one header",
			write: func(e *Encoder) {
				e.Counter("cycles_total", "Cycles.",
					Sample{Labels: []Label{{Name: "category", Value: "hash"}}, Value: 1},
					Sample{Labels: []Label{{Name: "category", Value: "heap"}}, Value: 2})
			},
			exactly: "# HELP cycles_total Cycles.\n" +
				"# TYPE cycles_total counter\n" +
				"cycles_total{category=\"hash\"} 1\n" +
				"cycles_total{category=\"heap\"} 2\n",
		},
		{
			name: "help escaping",
			write: func(e *Encoder) {
				e.Counter("x_total", "line one\nback\\slash", Sample{Value: 0})
			},
			want: []string{`# HELP x_total line one\nback\\slash`},
		},
		{
			name: "label value escaping",
			write: func(e *Encoder) {
				e.Counter("x_total", "h", Sample{
					Labels: []Label{{Name: "path", Value: `a"b\c` + "\nd"}},
					Value:  1,
				})
			},
			want: []string{`x_total{path="a\"b\\c\nd"} 1`},
		},
		{
			name: "non-finite values spelled out",
			write: func(e *Encoder) {
				e.Gauge("g", "h",
					Sample{Labels: []Label{{Name: "k", Value: "inf"}}, Value: math.Inf(1)},
					Sample{Labels: []Label{{Name: "k", Value: "ninf"}}, Value: math.Inf(-1)},
					Sample{Labels: []Label{{Name: "k", Value: "nan"}}, Value: math.NaN()})
			},
			want: []string{`g{k="inf"} +Inf`, `g{k="ninf"} -Inf`, `g{k="nan"} NaN`},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			e := NewEncoder(&b)
			tt.write(e)
			if err := e.Err(); err != nil {
				t.Fatal(err)
			}
			got := b.String()
			if tt.exactly != "" && got != tt.exactly {
				t.Errorf("got:\n%s\nwant:\n%s", got, tt.exactly)
			}
			for _, w := range tt.want {
				if !strings.Contains(got, w) {
					t.Errorf("output missing %q:\n%s", w, got)
				}
			}
		})
	}
}

func TestEncoderHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.05, 0.3, 0.9, 7} {
		h.Observe(v)
	}
	var b strings.Builder
	e := NewEncoder(&b)
	e.Histogram("lat_seconds", "Latency.", nil, h.Snapshot())
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	want := "# HELP lat_seconds Latency.\n" +
		"# TYPE lat_seconds histogram\n" +
		"lat_seconds_bucket{le=\"0.1\"} 2\n" +
		"lat_seconds_bucket{le=\"0.5\"} 3\n" +
		"lat_seconds_bucket{le=\"1\"} 4\n" +
		"lat_seconds_bucket{le=\"+Inf\"} 5\n" +
		"lat_seconds_sum 8.3\n" +
		"lat_seconds_count 5\n"
	if got := b.String(); got != want {
		t.Errorf("histogram exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestEncoderHistogramCumulative(t *testing.T) {
	// Bucket counts in the exposition must be non-decreasing even though
	// the histogram stores per-bucket counts internally.
	h := NewHistogram(DefLatencyBuckets())
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%17) / 100)
	}
	s := h.Snapshot()
	var last uint64
	for i, c := range s.Counts {
		if c < last {
			t.Fatalf("bucket %d count %d < previous %d", i, c, last)
		}
		last = c
	}
	if s.Count < last {
		t.Fatalf("+Inf count %d < last bucket %d", s.Count, last)
	}
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
}

func TestEncoderZeroSampleSeries(t *testing.T) {
	var b strings.Builder
	e := NewEncoder(&b)
	e.Histogram("empty_seconds", "Never observed.", nil, NewHistogram([]float64{1, 2}).Snapshot())
	e.Counter("zero_total", "Zero.", Sample{Value: 0})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, w := range []string{
		`empty_seconds_bucket{le="1"} 0`,
		`empty_seconds_bucket{le="2"} 0`,
		`empty_seconds_bucket{le="+Inf"} 0`,
		"empty_seconds_sum 0",
		"empty_seconds_count 0",
		"zero_total 0",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("zero-sample output missing %q:\n%s", w, got)
		}
	}
}

func TestEncoderSummary(t *testing.T) {
	var b strings.Builder
	e := NewEncoder(&b)
	e.Summary("lat", "Quantiles.", nil,
		[]Quantile{{Q: 0.5, Value: 0.01}, {Q: 0.99, Value: 0.2}}, 1.5, 30)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, w := range []string{
		"# TYPE lat summary",
		`lat{quantile="0.5"} 0.01`,
		`lat{quantile="0.99"} 0.2`,
		"lat_sum 1.5",
		"lat_count 30",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("summary missing %q:\n%s", w, got)
		}
	}
}
