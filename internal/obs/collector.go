package obs

import (
	"io"
	"sync"
	"time"
)

// maxRetainedLatencies bounds the collector's latency reservoir; beyond
// it the oldest half is discarded so quantiles track recent traffic.
const maxRetainedLatencies = 1 << 16

// Collector is the serving stack's aggregation point. Every request
// flows through Observe, which assigns the request sequence number,
// updates the counters and the latency histogram, and retains the
// latency in a bounded reservoir for quantile reporting; sampled spans
// are additionally written to the access log. Safe for concurrent use.
type Collector struct {
	sampler *Sampler
	log     *AccessLog // nil when access logging is disabled
	trees   *TreeRing  // nil when span-tree retention is disabled

	mu        sync.Mutex
	requests  int64
	respBytes int64
	sampled   int64
	shed      int64
	hist      *Histogram
	latencies []time.Duration
}

// NewCollector builds a collector sampling spans at rate (0 disables
// spans, 1 profiles every request), logging sampled requests as JSON
// lines to logW (nil disables the access log), with a latency histogram
// over buckets (nil selects DefLatencyBuckets).
func NewCollector(rate float64, logW io.Writer, buckets []float64) *Collector {
	if buckets == nil {
		buckets = DefLatencyBuckets()
	}
	c := &Collector{
		sampler: NewSampler(rate),
		hist:    NewHistogram(buckets),
	}
	if logW != nil {
		c.log = NewAccessLog(logW)
	}
	return c
}

// SetBackend stamps the access log's backend field with this process's
// cluster identity (see AccessLog.SetBackend). A nil-log collector
// ignores it. Call before serving starts.
func (c *Collector) SetBackend(id string) {
	if c.log != nil {
		c.log.SetBackend(id)
	}
}

// ShouldSample reports whether the next request should be served through
// the profiled path (Worker.ServeOneProfiled), advancing the sampling
// counter.
func (c *Collector) ShouldSample() bool { return c.sampler.Sample() }

// SetTreeRing attaches a ring retaining sampled requests' span trees
// (the /tracez backing store). Must be called before serving starts; a
// nil ring disables retention.
func (c *Collector) SetTreeRing(r *TreeRing) { c.trees = r }

// TreeRing returns the attached span-tree ring, or nil.
func (c *Collector) TreeRing() *TreeRing { return c.trees }

// RequestMeta carries per-request context an HTTP front end knows but
// the worker pool does not: identity (truncated for the access log, so
// callers can pass it straight from the request) plus the lifecycle
// outcome the serve layer decided.
type RequestMeta struct {
	Path      string
	UserAgent string
	// RequestID is the cross-process correlation ID (X-Request-Id):
	// minted by the router or the standalone server, echoed to the
	// client, and stamped on sampled span trees so one ID ties the
	// router log line, backend log line, and trace together.
	RequestID string
	// Backend, when non-empty, overrides the log's process-level
	// backend field for this line — the router uses it to record which
	// backend served each proxied request.
	Backend string
	// Status is the HTTP status the frontend answered with (0 is
	// logged as omitted, for entries that predate status reporting).
	Status int
	// Outcome names a non-served lifecycle result ("shed_overload",
	// "timeout", "draining"); empty for served requests.
	Outcome string
	// Rerouted marks requests the router answered from a ring-order
	// fallback owner after the primary refused or shed.
	Rerouted bool
	// ShedReason carries the router-level shed reason ("overload",
	// "no_backend", "draining") on shed lines; empty otherwise.
	ShedReason string
	// QueueWait is the time the request spent waiting for a worker
	// before rendering (or before being shed).
	QueueWait time.Duration
}

// Observe records one served request: it assigns the span's request
// sequence number, bumps the fleet counters, feeds the latency histogram
// and reservoir, and writes sampled spans to the access log. The
// completed span is returned.
func (c *Collector) Observe(sp Span, respBytes int) Span {
	return c.ObserveHTTP(sp, respBytes, RequestMeta{})
}

// ObserveHTTP is Observe plus HTTP request metadata for the access log.
// It also stamps the span's tree (if any) with the assigned request
// number and retains it in the tree ring.
func (c *Collector) ObserveHTTP(sp Span, respBytes int, meta RequestMeta) Span {
	c.mu.Lock()
	c.requests++
	sp.Request = uint64(c.requests)
	c.respBytes += int64(respBytes)
	if sp.Sampled {
		c.sampled++
	}
	c.hist.Observe(sp.Wall.Seconds())
	if len(c.latencies) >= maxRetainedLatencies {
		c.latencies = append(c.latencies[:0], c.latencies[len(c.latencies)/2:]...)
	}
	c.latencies = append(c.latencies, sp.Wall)
	c.mu.Unlock()

	if sp.Tree != nil {
		sp.Tree.Request = sp.Request
		if c.trees != nil {
			c.trees.Add(sp.Tree)
		}
	}
	if c.log != nil && sp.Sampled {
		c.log.WriteMeta(sp, respBytes, meta)
	}
	return sp
}

// ObserveShed records a request the lifecycle layer rejected before it
// reached a worker. Sheds bypass the latency histogram (there was no
// render) but bump the shed counter, and — unlike served requests,
// which are sampled — every shed is written to the access log: sheds
// are rare, and each one is an operator-relevant event.
func (c *Collector) ObserveShed(meta RequestMeta) {
	c.mu.Lock()
	c.shed++
	c.mu.Unlock()
	if c.log != nil {
		c.log.WriteMeta(Span{Worker: -1, Wall: meta.QueueWait}, 0, meta)
	}
}

// Snapshot is a consistent copy of the collector's state for a /stats or
// /metrics render.
type Snapshot struct {
	Requests      int64
	ResponseBytes int64
	SampledSpans  int64
	// Shed counts requests rejected by the lifecycle layer (recorded
	// via ObserveShed; not included in Requests).
	Shed    int64
	Latency HistogramSnapshot
	// Latencies is a copy of the bounded recent-latency reservoir, for
	// quantile computation (workload.LatencyStatsFrom).
	Latencies []time.Duration
}

// Snapshot returns a consistent copy of the counters, histogram, and
// latency reservoir.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Requests:      c.requests,
		ResponseBytes: c.respBytes,
		SampledSpans:  c.sampled,
		Shed:          c.shed,
		Latency:       c.hist.Snapshot(),
		Latencies:     append([]time.Duration(nil), c.latencies...),
	}
}
