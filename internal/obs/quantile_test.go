package obs

import (
	"math"
	"testing"
)

func TestHistogramSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	// 10 observations in (0, 0.01], 80 in (0.01, 0.1], 10 in (0.1, 1].
	for i := 0; i < 10; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 80; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	s := h.Snapshot()
	// Median rank 50 falls in the second bucket: 0.01 + 0.09*(50-10)/80.
	if got, want := s.Quantile(0.5), 0.01+0.09*40/80; math.Abs(got-want) > 1e-12 {
		t.Fatalf("p50 = %g, want %g", got, want)
	}
	// p95 rank 95 falls in the third bucket: 0.1 + 0.9*(95-90)/10.
	if got, want := s.Quantile(0.95), 0.1+0.9*5/10; math.Abs(got-want) > 1e-12 {
		t.Fatalf("p95 = %g, want %g", got, want)
	}
	if got := s.Quantile(0); got != 0.01*0/10+0 && got > 0.01 {
		t.Fatalf("p0 = %g, want within first bucket", got)
	}
	if got := s.Quantile(1); got != 1 {
		t.Fatalf("p100 = %g, want 1", got)
	}
}

func TestHistogramSnapshotQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g", got)
	}
	h := NewHistogram([]float64{0.01, 0.1})
	h.Observe(5) // +Inf bucket only
	s := h.Snapshot()
	// Everything is past the last finite bound: clamp there.
	if got := s.Quantile(0.5); got != 0.1 {
		t.Fatalf("overflow quantile = %g, want 0.1", got)
	}
	// Out-of-range q clamps instead of panicking.
	if got := s.Quantile(2); got != 0.1 {
		t.Fatalf("q=2 -> %g", got)
	}
	// q=-1 clamps to 0; rank 0 lands in the empty first bucket, whose
	// bound is the degenerate-interpolation answer.
	if got := s.Quantile(-1); got != 0.01 {
		t.Fatalf("q=-1 -> %g, want 0.01", got)
	}
}
