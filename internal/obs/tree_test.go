package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// chargedMeter builds a meter and a helper that charges a known number
// of uops to a category, so tests can interleave charges with span
// boundaries and check the attributed deltas exactly.
func chargedMeter() (*sim.Meter, func(cat sim.Category, uops float64)) {
	mt := sim.NewMeter(sim.DefaultCostModel())
	return mt, func(cat sim.Category, uops float64) {
		mt.AddUops("test_fn", cat, uops)
	}
}

func TestTreeBuilderAttribution(t *testing.T) {
	mt, charge := chargedMeter()
	b := NewTreeBuilder(mt, 0)

	charge(sim.CatOther, 100) // root-exclusive work
	b.Begin("render")
	charge(sim.CatHash, 155) // render-exclusive
	b.Begin("php:foo")
	charge(sim.CatString, 310) // leaf
	b.End()
	charge(sim.CatHash, 155) // more render-exclusive
	b.End()
	tree := b.Finish(7)

	if tree.Worker != 7 {
		t.Errorf("worker = %d", tree.Worker)
	}
	root := tree.Root
	if root.Name != "request" || len(root.Children) != 1 {
		t.Fatalf("root = %+v", root)
	}
	render := root.Children[0]
	if render.Name != "render" || len(render.Children) != 1 {
		t.Fatalf("render = %+v", render)
	}
	leaf := render.Children[0]
	if leaf.Name != "php:foo" || len(leaf.Children) != 0 {
		t.Fatalf("leaf = %+v", leaf)
	}

	// Inclusive totals must nest: root ⊇ render ⊇ leaf.
	ipc := sim.DefaultCostModel().IPC
	wantLeaf := 310 / ipc
	wantRender := (155 + 310 + 155) / ipc
	wantRoot := (100 + 155 + 310 + 155) / ipc
	for _, tc := range []struct {
		name string
		got  float64
		want float64
	}{
		{"leaf", leaf.Cycles, wantLeaf},
		{"render", render.Cycles, wantRender},
		{"root", root.Cycles, wantRoot},
	} {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("%s cycles = %v, want %v", tc.name, tc.got, tc.want)
		}
	}

	// Self cycles telescope: the sum over all spans equals the root's
	// inclusive total (the /tracez acceptance invariant).
	var selfSum float64
	root.Walk(func(sp *TreeSpan, _ int) { selfSum += sp.SelfCycles() })
	if math.Abs(selfSum-root.Cycles) > 1e-9 {
		t.Errorf("Σ self = %v, root inclusive = %v", selfSum, root.Cycles)
	}

	// Category attribution lands where the charge happened.
	if got := leaf.SelfCategories()[sim.CatString]; math.Abs(got-310/ipc) > 1e-9 {
		t.Errorf("leaf string self = %v", got)
	}
	if got := render.SelfCategories()[sim.CatHash]; math.Abs(got-310/ipc) > 1e-9 {
		t.Errorf("render hash self = %v", got)
	}
	if got := root.SelfCategories()[sim.CatOther]; math.Abs(got-100/ipc) > 1e-9 {
		t.Errorf("root other self = %v", got)
	}
	if root.NumSpans() != 3 {
		t.Errorf("NumSpans = %d", root.NumSpans())
	}
}

func TestTreeBuilderNilSafe(t *testing.T) {
	var b *TreeBuilder
	b.Begin("x") // must not panic
	b.End()
	if tree := b.Finish(0); tree != nil {
		t.Errorf("nil builder produced tree %+v", tree)
	}
}

func TestTreeBuilderUnbalanced(t *testing.T) {
	mt, charge := chargedMeter()

	// Extra Ends are ignored; open spans are closed by Finish.
	b := NewTreeBuilder(mt, 0)
	b.End()
	b.End()
	b.Begin("a")
	b.Begin("b")
	charge(sim.CatHeap, 31)
	tree := b.Finish(0)
	if got := tree.Root.NumSpans(); got != 3 {
		t.Fatalf("spans = %d, want 3", got)
	}
	a := tree.Root.Children[0]
	if a.Name != "a" || len(a.Children) != 1 || a.Children[0].Name != "b" {
		t.Fatalf("tree shape: %+v", tree.Root)
	}
	// Work charged inside the open spans is still attributed to them.
	if a.Children[0].Cycles <= 0 {
		t.Errorf("open leaf lost its charge: %v", a.Children[0].Cycles)
	}
}

func TestTreeBuilderSpanCap(t *testing.T) {
	mt, charge := chargedMeter()
	b := NewTreeBuilder(mt, 4)
	// Two siblings fit (root + 2 + 1 = cap of 4)…
	b.Begin("kept1")
	b.End()
	b.Begin("kept2")
	b.Begin("kept3")
	// …anything deeper or later is dropped, and nested Begin/End pairs
	// inside a dropped span must stay balanced.
	b.Begin("dropped1")
	b.Begin("dropped2")
	charge(sim.CatRegex, 62)
	b.End()
	b.End()
	b.End() // closes kept3
	b.Begin("dropped3")
	b.End()
	tree := b.Finish(0)

	if tree.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", tree.Dropped)
	}
	if got := tree.Root.NumSpans(); got != 4 {
		t.Errorf("retained spans = %d, want 4", got)
	}
	// The dropped spans' work still lands in the innermost kept span, so
	// no cycles vanish from the tree.
	kept2 := tree.Root.Children[1]
	if kept2.Name != "kept2" || len(kept2.Children) != 1 {
		t.Fatalf("kept2 = %+v", kept2)
	}
	if kept2.Children[0].Cycles <= 0 {
		t.Errorf("dropped-span work vanished")
	}
	var selfSum float64
	tree.Root.Walk(func(sp *TreeSpan, _ int) { selfSum += sp.SelfCycles() })
	if math.Abs(selfSum-tree.Root.Cycles) > 1e-9 {
		t.Errorf("Σ self = %v, root = %v", selfSum, tree.Root.Cycles)
	}
}

func TestTreeRingBounded(t *testing.T) {
	r := NewTreeRing(3)
	for i := 0; i < 5; i++ {
		mt, _ := chargedMeter()
		b := NewTreeBuilder(mt, 0)
		tree := b.Finish(i)
		tree.Request = uint64(i)
		r.Add(tree)
	}
	r.Add(nil) // ignored

	if r.Total() != 5 {
		t.Errorf("total = %d", r.Total())
	}
	got := r.Last(0)
	if len(got) != 3 {
		t.Fatalf("retained = %d", len(got))
	}
	// Oldest-first: requests 2, 3, 4 survive.
	for i, want := range []uint64{2, 3, 4} {
		if got[i].Request != want {
			t.Errorf("Last[%d].Request = %d, want %d", i, got[i].Request, want)
		}
	}
	if last1 := r.Last(1); len(last1) != 1 || last1[0].Request != 4 {
		t.Errorf("Last(1) = %+v", last1)
	}
	if lastBig := r.Last(10); len(lastBig) != 3 {
		t.Errorf("Last(10) = %d trees", len(lastBig))
	}
}

// buildSampleTree makes a small two-level tree with known cycle charges
// for the exporter tests.
func buildSampleTree(req uint64, worker int) *Tree {
	mt, charge := chargedMeter()
	b := NewTreeBuilder(mt, 0)
	charge(sim.CatOther, 50)
	b.Begin("render")
	b.Begin("php:the content") // space + nothing exotic
	charge(sim.CatString, 100)
	b.End()
	charge(sim.CatHash, 25)
	b.End()
	tree := b.Finish(worker)
	tree.Request = req
	return tree
}

func TestWriteTraceEventsValid(t *testing.T) {
	trees := []*Tree{buildSampleTree(1, 0), buildSampleTree(2, 1), nil}
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, trees); err != nil {
		t.Fatal(err)
	}

	var f struct {
		TraceEvents []struct {
			Name string             `json:"name"`
			Ph   string             `json:"ph"`
			Ts   float64            `json:"ts"`
			Dur  float64            `json:"dur"`
			Pid  int                `json:"pid"`
			Tid  int                `json:"tid"`
			Args map[string]float64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) != 6 { // 3 spans per tree × 2 trees
		t.Fatalf("events = %d, want 6", len(f.TraceEvents))
	}
	// Per tree: self cycles across events sum to the root's inclusive
	// total (the acceptance criterion).
	selfByTid := map[int]float64{}
	rootByTid := map[int]float64{}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event phase %q, want X", ev.Ph)
		}
		if ev.Dur <= 0 {
			t.Errorf("event %q has non-positive dur %v", ev.Name, ev.Dur)
		}
		selfByTid[ev.Tid] += ev.Args["self_cycles"]
		if ev.Name == "request" {
			rootByTid[ev.Tid] = ev.Args["cycles"]
		}
	}
	for tid, root := range rootByTid {
		if math.Abs(selfByTid[tid]-root) > 1e-6 {
			t.Errorf("tid %d: Σ self = %v, root total = %v", tid, selfByTid[tid], root)
		}
	}
}

func TestWriteFolded(t *testing.T) {
	trees := []*Tree{buildSampleTree(1, 0), buildSampleTree(2, 0)}
	var buf bytes.Buffer
	if err := WriteFolded(&buf, trees); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("folded lines:\n%s", out)
	}
	// Frame names are sanitized and identical paths across trees merge.
	if !strings.Contains(out, "request;render;php:the_content ") {
		t.Errorf("missing merged leaf path:\n%s", out)
	}
	var total float64
	for _, ln := range lines {
		parts := strings.Split(ln, " ")
		if len(parts) != 2 {
			t.Fatalf("malformed line %q", ln)
		}
		var v float64
		if _, err := fmt.Sscanf(parts[1], "%f", &v); err != nil {
			t.Fatalf("bad weight in %q: %v", ln, err)
		}
		total += v
	}
	wantTotal := trees[0].Root.Cycles + trees[1].Root.Cycles
	// Weights are rounded to integers per line; tolerance accounts for it.
	if math.Abs(total-wantTotal) > float64(len(lines)) {
		t.Errorf("folded total = %v, trees total = %v", total, wantTotal)
	}
}

func TestCollectorTreeRing(t *testing.T) {
	c := NewCollector(1, nil, nil)
	ring := NewTreeRing(8)
	c.SetTreeRing(ring)

	tree := buildSampleTree(0, 2)
	sp := Span{Worker: 2, Sampled: true, Tree: tree}
	out := c.ObserveHTTP(sp, 10, RequestMeta{Path: "/"})
	if out.Request != 1 {
		t.Fatalf("request = %d", out.Request)
	}
	got := ring.Last(0)
	if len(got) != 1 || got[0].Request != 1 {
		t.Fatalf("ring = %+v", got)
	}
	if c.TreeRing() != ring {
		t.Error("TreeRing accessor mismatch")
	}
}

// TestAddQueueSpan: the synthetic queued span extends the request
// backwards in time without disturbing cycle attribution — the
// telescoping self-cycles invariant and the absolute start of the
// render work must both survive.
func TestAddQueueSpan(t *testing.T) {
	mt, charge := chargedMeter()
	b := NewTreeBuilder(mt, 0)
	charge(sim.CatOther, 100)
	b.Begin("render")
	charge(sim.CatHash, 200)
	b.End()
	tree := b.Finish(0)

	renderAbs := tree.Start.Add(tree.Root.Children[0].Start)
	total := tree.Root.Cycles
	const wait = 40 * time.Millisecond
	tree.AddQueueSpan(wait)

	if got := tree.Root.Children[0]; got.Name != "queued" || got.Start != 0 || got.Dur != wait || got.Cycles != 0 {
		t.Fatalf("queued span = %+v", got)
	}
	render := tree.Root.Children[1]
	if render.Name != "render" || render.Start < wait {
		t.Errorf("render not shifted past the queue: %+v", render)
	}
	if gotAbs := tree.Start.Add(render.Start); !gotAbs.Equal(renderAbs) {
		t.Errorf("render absolute start moved: %v -> %v", renderAbs, gotAbs)
	}
	if tree.Root.Dur < wait {
		t.Errorf("root duration %v does not cover the wait", tree.Root.Dur)
	}
	// Cycle attribution is untouched: zero-cycle queued span, same
	// telescoped total.
	var selfSum float64
	tree.Root.Walk(func(sp *TreeSpan, _ int) { selfSum += sp.SelfCycles() })
	if math.Abs(selfSum-total) > 1e-9 {
		t.Errorf("self-cycles sum %v != root total %v after queue span", selfSum, total)
	}

	// Nil and zero-wait forms are no-ops.
	var nilTree *Tree
	nilTree.AddQueueSpan(time.Second)
	before := len(tree.Root.Children)
	tree.AddQueueSpan(0)
	if len(tree.Root.Children) != before {
		t.Errorf("zero wait added a span")
	}
}

func TestNewTreeBuilderAtSharesClock(t *testing.T) {
	mt, charge := chargedMeter()
	start := time.Now()
	b := NewTreeBuilderAt(mt, 0, start)
	charge(sim.CatOther, 100)
	tree := b.Finish(0)
	wall := time.Since(start)
	if !tree.Start.Equal(start) {
		t.Errorf("tree start = %v, want the supplied instant %v", tree.Start, start)
	}
	// Root Dur is measured from the supplied t0, so it can never exceed a
	// wall measurement taken from the same instant afterwards.
	if tree.Root.Dur > wall {
		t.Errorf("root Dur %v exceeds wall %v measured from the same clock", tree.Root.Dur, wall)
	}
}

func TestCacheHitTreeInvariant(t *testing.T) {
	var lookup sim.CategoryVec
	lookup[sim.CatHash] = 142.0
	start := time.Now()
	tree := CacheHitTree(start, 3*time.Microsecond, lookup)

	if tree.Worker != -1 {
		t.Errorf("worker = %d, want -1 (no pool worker)", tree.Worker)
	}
	root := tree.Root
	if root.Name != "request" || len(root.Children) != 1 || root.Children[0].Name != "cache_hit" {
		t.Fatalf("tree shape = %+v", root)
	}
	hit := root.Children[0]
	if hit.Cycles != 142.0 || root.Cycles != 142.0 {
		t.Errorf("cycles: hit %v root %v, want 142 each (inclusive)", hit.Cycles, root.Cycles)
	}
	// The telescoping invariant: Σ self over the tree equals the root's
	// inclusive total, with the root's own self at zero.
	var selfSum float64
	root.Walk(func(sp *TreeSpan, _ int) { selfSum += sp.SelfCycles() })
	if math.Abs(selfSum-root.Cycles) > 1e-9 {
		t.Errorf("Σ self = %v, root inclusive = %v", selfSum, root.Cycles)
	}
	if self := root.SelfCycles(); math.Abs(self) > 1e-9 {
		t.Errorf("root self = %v, want 0 (all cost in the cache_hit leaf)", self)
	}
	if got := hit.SelfCategories()[sim.CatHash]; math.Abs(got-142.0) > 1e-9 {
		t.Errorf("cache_hit hash self = %v, want 142", got)
	}
	// A queue span composes with the synthetic tree like any other.
	tree.AddQueueSpan(time.Millisecond)
	if tree.Root.Children[0].Name != "queued" || tree.Root.Dur != time.Millisecond+3*time.Microsecond {
		t.Errorf("after AddQueueSpan: first child %q, root dur %v", tree.Root.Children[0].Name, tree.Root.Dur)
	}
}
