// Package obs is the serving stack's observability layer: per-request
// cost attribution spans, bounded-overhead sampling, a latency
// histogram, a JSON-lines access log, and a Prometheus text-format
// encoder for the /metrics endpoint of cmd/phpserve.
//
// The design follows the paper's own argument: its contribution rests on
// *attribution* — knowing that hash map access, heap management, string
// manipulation, and regexp processing dominate the post-mitigation
// profile (§4–5). A Span captures exactly that breakdown for one request
// by diffing the worker's sim.Meter around the render, so an operator
// can see where simulated cycles go per request while the fleet is under
// load, not just in the merged totals.
//
// Overhead is bounded two ways: spans are sampled (Sampler, default rate
// 0.01 in phpserve) so the meter snapshot cost is paid on a small
// fraction of requests, and everything on the per-request path is
// counter arithmetic — encoding happens only at scrape time. The
// Collector is the aggregation point: every request feeds its counters
// and latency histogram; sampled spans additionally go to the access
// log. Fleet-exact per-category totals come from sim.Meter.Merge /
// trace.Recorder.Merge at scrape time, not from the sampled spans, so
// sampling never biases the exported counters.
package obs

import (
	"time"

	"repro/internal/sim"
)

// Span is the per-request cost attribution record: simulated cycles
// broken down by activity category (the paper's four accelerator
// categories plus the abstraction/kernel/other remainder) and wall
// latency. A span is produced by workload.Worker.ServeOneProfiled when
// the request is sampled; unsampled requests carry a zero-valued span
// with only Wall and Worker set.
type Span struct {
	// Request is the server-assigned request sequence number (set by
	// Collector.Observe).
	Request uint64
	// Worker is the pool worker that served the request.
	Worker int
	// Wall is the request's wall-clock latency.
	Wall time.Duration
	// Sampled marks spans that carry a category breakdown.
	Sampled bool
	// Cycles is the request's total simulated cycle cost (sampled only).
	Cycles float64
	// Categories breaks Cycles down by sim.Category (sampled only).
	Categories sim.CategoryVec
	// Tree is the request's span tree (sampled only, nil otherwise): the
	// same cycle total as Cycles, decomposed hierarchically into the
	// phases and calls that accumulated it.
	Tree *Tree
}
