package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Shared /tracez endpoint. Both phpserve and phprouter expose their
// span-tree rings through this handler, so the formats and parameters
// stay identical on both sides of the proxy boundary — which is what
// lets the router fetch a backend's tree for stitching with the same
// endpoint an operator curls.

// ServeTracez renders the ring's retained span trees for a GET /tracez
// request. Parameters:
//
//	n       last K trees (default 16, <= 0 for all retained)
//	rid     only trees whose correlation ID equals rid (searches the
//	        whole ring, ignoring n — an ID names one request)
//	format  json (Chrome trace_event, default) | folded (flamegraph
//	        stacks) | text (indented listing) | tree (raw []*Tree JSON,
//	        the cross-process stitching interchange form)
func ServeTracez(w http.ResponseWriter, r *http.Request, ring *TreeRing) {
	trees := ring.Last(queryTracezInt(r, "n", 16))
	if rid := r.URL.Query().Get("rid"); rid != "" {
		matched := make([]*Tree, 0, 1)
		for _, t := range ring.Last(0) {
			if t != nil && t.ID == rid {
				matched = append(matched, t)
			}
		}
		trees = matched
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		WriteTraceEvents(w, trees)
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteFolded(w, trees)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteTreeText(w, trees)
	case "tree":
		w.Header().Set("Content-Type", "application/json")
		WriteTreesJSON(w, trees)
	default:
		http.Error(w, fmt.Sprintf("tracez: unknown format %q (want json, folded, text, or tree)", format), http.StatusBadRequest)
	}
}

// WriteTreeText renders trees as indented span listings for quick
// terminal inspection (curl /tracez?format=text).
func WriteTreeText(w io.Writer, trees []*Tree) {
	for _, t := range trees {
		if t == nil || t.Root == nil {
			continue
		}
		fmt.Fprintf(w, "request %d  worker %d  start %s  spans %d",
			t.Request, t.Worker, t.Start.UTC().Format(time.RFC3339Nano), t.Root.NumSpans())
		if t.ID != "" {
			fmt.Fprintf(w, "  id %s", t.ID)
		}
		if t.Dropped > 0 {
			fmt.Fprintf(w, "  dropped %d", t.Dropped)
		}
		fmt.Fprintln(w)
		t.Root.Walk(func(sp *TreeSpan, depth int) {
			fmt.Fprintf(w, "%s%-24s %10s  %12.0f cycles  (self %.0f)\n",
				strings.Repeat("  ", depth+1), sp.Name, sp.Dur.Round(time.Microsecond),
				sp.Cycles, sp.SelfCycles())
		})
	}
}

// queryTracezInt parses an integer query parameter with a default.
func queryTracezInt(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}
