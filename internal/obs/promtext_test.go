package obs

import (
	"math"
	"strings"
	"testing"
)

// encodeSnapshot renders a small exposition the way a backend's /metrics
// does: a counter with labels, an unlabelled gauge, and a histogram.
func encodeSnapshot(t *testing.T, requests float64, workers float64, h *Histogram) string {
	t.Helper()
	var b strings.Builder
	e := NewEncoder(&b)
	e.Counter("phpserve_requests_total", "Requests served.",
		Sample{Labels: []Label{{"app", "wordpress"}}, Value: requests})
	e.Gauge("phpserve_workers", "Configured workers.", Sample{Value: workers})
	e.Histogram("phpserve_request_latency_seconds", "Render latency.", nil, h.Snapshot())
	if err := e.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b.String()
}

// TestMergeEqualsCombinedLoad is the merge-correctness gate: parsing N
// per-backend expositions and merging them must yield exactly the
// exposition of one backend that saw the combined load.
func TestMergeEqualsCombinedLoad(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1, 1}
	loads := [][]float64{
		{0.0005, 0.002, 0.05, 0.5},
		{0.003, 0.004, 2.5}, // 2.5 lands in +Inf
		{0.0001, 0.9},
	}

	var merged []*MetricFamily
	combined := NewHistogram(bounds)
	var totalReqs, totalWorkers float64
	for i, load := range loads {
		h := NewHistogram(bounds)
		for _, v := range load {
			h.Observe(v)
			combined.Observe(v)
		}
		reqs := float64(len(load))
		totalReqs += reqs
		totalWorkers += 4
		text := encodeSnapshot(t, reqs, 4, h)
		fams, err := ParsePromText(strings.NewReader(text))
		if err != nil {
			t.Fatalf("parse backend %d: %v", i, err)
		}
		merged = MergeFamilies(merged, fams)
	}

	var wantB strings.Builder
	ew := NewEncoder(&wantB)
	ew.Counter("phpserve_requests_total", "Requests served.",
		Sample{Labels: []Label{{"app", "wordpress"}}, Value: totalReqs})
	ew.Gauge("phpserve_workers", "Configured workers.", Sample{Value: totalWorkers})
	ew.Histogram("phpserve_request_latency_seconds", "Render latency.", nil, combined.Snapshot())

	var gotB strings.Builder
	if err := WriteFamilies(&gotB, merged); err != nil {
		t.Fatalf("write merged: %v", err)
	}
	if gotB.String() != wantB.String() {
		t.Fatalf("merged exposition differs from combined-load exposition:\n--- merged:\n%s\n--- combined:\n%s",
			gotB.String(), wantB.String())
	}

	// The reconstructed histogram must also match the combined snapshot.
	f := FindFamily(merged, "phpserve_request_latency_seconds")
	if f == nil {
		t.Fatal("histogram family missing after merge")
	}
	got, want := f.Histogram(), combined.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum {
		t.Fatalf("histogram count/sum: got %d/%g want %d/%g", got.Count, got.Sum, want.Count, want.Sum)
	}
	if len(got.Bounds) != len(want.Bounds) {
		t.Fatalf("bounds: got %v want %v", got.Bounds, want.Bounds)
	}
	for i := range got.Bounds {
		if got.Bounds[i] != want.Bounds[i] || got.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: got (%g,%d) want (%g,%d)",
				i, got.Bounds[i], got.Counts[i], want.Bounds[i], want.Counts[i])
		}
	}
	if got := FindFamily(merged, "phpserve_requests_total").Sum(); got != totalReqs {
		t.Fatalf("requests sum: got %g want %g", got, totalReqs)
	}
}

func TestParsePromTextDetails(t *testing.T) {
	text := "# HELP m A metric with a \\\\ slash.\n" +
		"# TYPE m counter\n" +
		"m{path=\"/a\\\"b\",ua=\"line\\nbreak\"} 3\n" +
		"m{path=\"/plain\"} 2.5\n" +
		"# TYPE s summary\n" +
		"s{quantile=\"0.5\"} 0.1\n" +
		"s_sum 7\n" +
		"s_count 10\n" +
		"stray_series 1\n"
	fams, err := ParsePromText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m := FindFamily(fams, "m")
	if m == nil || m.Type != "counter" || len(m.Samples) != 2 {
		t.Fatalf("family m: %+v", m)
	}
	if got := m.Samples[0].Labels[0].Value; got != `/a"b` {
		t.Fatalf("escaped quote: got %q", got)
	}
	if got := m.Samples[0].Labels[1].Value; got != "line\nbreak" {
		t.Fatalf("escaped newline: got %q", got)
	}
	if got := m.Sum(Label{"path", "/plain"}); got != 2.5 {
		t.Fatalf("matched sum: got %g", got)
	}
	s := FindFamily(fams, "s")
	if s == nil || s.Type != "summary" {
		t.Fatalf("family s: %+v", s)
	}
	// Summary quantile lines are excluded from Sum; _sum/_count are
	// suffixed series and excluded too.
	if got := s.Sum(); got != 0 {
		t.Fatalf("summary Sum: got %g want 0", got)
	}
	stray := FindFamily(fams, "stray_series")
	if stray == nil || stray.Type != "untyped" || stray.Sum() != 1 {
		t.Fatalf("stray family: %+v", stray)
	}
}

func TestParsePromTextNonFinite(t *testing.T) {
	fams, err := ParsePromText(strings.NewReader("# TYPE g gauge\ng{k=\"inf\"} +Inf\ng{k=\"nan\"} NaN\n"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g := FindFamily(fams, "g")
	if !math.IsInf(g.Samples[0].Value, 1) || !math.IsNaN(g.Samples[1].Value) {
		t.Fatalf("non-finite values: %+v", g.Samples)
	}
}

func TestParsePromTextErrors(t *testing.T) {
	for _, bad := range []string{
		"m{unterminated=\"x\n",
		"m{noquote=x} 1\n",
		"m notanumber\n",
	} {
		if _, err := ParsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("expected parse error for %q", bad)
		}
	}
}

func TestMergeDisjointFamilies(t *testing.T) {
	a, err := ParsePromText(strings.NewReader("# TYPE a counter\na 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParsePromText(strings.NewReader("# TYPE b counter\nb 2\na 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeFamilies(nil, a)
	merged = MergeFamilies(merged, b)
	if got := FindFamily(merged, "a").Sum(); got != 6 {
		t.Fatalf("a: got %g want 6", got)
	}
	if got := FindFamily(merged, "b").Sum(); got != 2 {
		t.Fatalf("b: got %g want 2", got)
	}
}
