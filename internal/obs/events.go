package obs

import (
	"sync"
	"time"
)

// Cluster lifecycle events. The router records state transitions that
// explain why the serving picture changed — a backend went down, ring
// ownership moved, a rolling restart advanced — in a bounded ring that
// GET /eventz serves as JSON. Events answer the operator question
// "what happened around 12:04?" that counters alone cannot: a latency
// blip lines up with a backend_down/backend_up pair, a hit-ratio dip
// with a ring_change.

// Event kinds recorded by the router.
const (
	// EventBackendUp: a backend transitioned unhealthy -> healthy.
	EventBackendUp = "backend_up"
	// EventBackendDown: a backend transitioned healthy -> unhealthy.
	EventBackendDown = "backend_down"
	// EventRingChange: cache-affinity ring ownership changed (a backend
	// joined or left the consistent-hash ring).
	EventRingChange = "ring_change"
	// EventRestartPhase: a rolling restart advanced one phase (drain,
	// restart, wait-healthy) on some backend.
	EventRestartPhase = "restart_phase"
)

// Event is one recorded cluster lifecycle transition.
type Event struct {
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Backend is the affected backend's ID, empty for cluster-wide
	// events.
	Backend string `json:"backend,omitempty"`
	// Detail is a human-readable elaboration ("health check failed:
	// connection refused", "phase=drain").
	Detail string `json:"detail,omitempty"`
}

// EventRing retains the most recent cluster events in a bounded ring and
// counts every event ever recorded by kind (the backing for
// phprouter_events_total{kind}). Safe for concurrent use.
type EventRing struct {
	mu     sync.Mutex
	cap    int
	events []Event
	start  int
	counts map[string]int64
}

// NewEventRing builds a ring keeping at most capacity events (<=0
// selects a capacity of 1).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &EventRing{cap: capacity, counts: make(map[string]int64)}
}

// Add records an event at time now. Nil-safe, so callers without an
// event plane configured skip recording with one branch.
func (r *EventRing) Add(now time.Time, kind, backend, detail string) {
	if r == nil {
		return
	}
	e := Event{Time: now, Kind: kind, Backend: backend, Detail: detail}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[kind]++
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.cap
}

// Last returns up to n retained events, oldest first. n <= 0 returns
// every retained event. Nil-safe.
func (r *EventRing) Last(n int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ordered := make([]Event, 0, len(r.events))
	ordered = append(ordered, r.events[r.start:]...)
	ordered = append(ordered, r.events[:r.start]...)
	if n > 0 && n < len(ordered) {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}

// Counts returns a copy of the per-kind totals over every event ever
// recorded, including evicted ones. Nil-safe.
func (r *EventRing) Counts() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// Total returns how many events were ever recorded. Nil-safe.
func (r *EventRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var t int64
	for _, v := range r.counts {
		t += v
	}
	return t
}
