package obs

import (
	"sync"
	"testing"
	"time"
)

func TestEventRingBoundedAndCounted(t *testing.T) {
	r := NewEventRing(3)
	t0 := time.Unix(1700000000, 0)
	r.Add(t0, EventBackendUp, "b0", "")
	r.Add(t0.Add(1*time.Second), EventBackendUp, "b1", "")
	r.Add(t0.Add(2*time.Second), EventBackendDown, "b0", "health check failed")
	r.Add(t0.Add(3*time.Second), EventRestartPhase, "b1", "phase=drain")

	last := r.Last(0)
	if len(last) != 3 {
		t.Fatalf("retained %d events, want 3", len(last))
	}
	// Oldest (b0 up) was evicted; order is oldest-first.
	if last[0].Kind != EventBackendUp || last[0].Backend != "b1" {
		t.Fatalf("last[0] = %+v", last[0])
	}
	if last[2].Kind != EventRestartPhase || last[2].Detail != "phase=drain" {
		t.Fatalf("last[2] = %+v", last[2])
	}
	if got := r.Last(1); len(got) != 1 || got[0].Kind != EventRestartPhase {
		t.Fatalf("Last(1) = %+v", got)
	}

	counts := r.Counts()
	if counts[EventBackendUp] != 2 || counts[EventBackendDown] != 1 || counts[EventRestartPhase] != 1 {
		t.Fatalf("counts = %+v", counts)
	}
	if r.Total() != 4 {
		t.Fatalf("total = %d, want 4", r.Total())
	}
}

func TestEventRingNilSafe(t *testing.T) {
	var r *EventRing
	r.Add(time.Now(), EventRingChange, "", "")
	if r.Last(0) != nil || r.Counts() != nil || r.Total() != 0 {
		t.Fatal("nil ring should be inert")
	}
}

func TestEventRingConcurrent(t *testing.T) {
	r := NewEventRing(8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Add(time.Now(), EventBackendDown, "b", "")
				r.Last(0)
				r.Counts()
			}
		}()
	}
	wg.Wait()
	if r.Total() != 1600 {
		t.Fatalf("total = %d, want 1600", r.Total())
	}
}
