package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
	"unicode/utf8"
)

func TestAccessLogTruncatesHostileFields(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)

	hostilePath := "/posts?q=" + strings.Repeat("A", 1<<20)
	hostileUA := strings.Repeat("Mozilla/5.0 ", 1<<16)
	err := l.WriteMeta(Span{Request: 1, Wall: time.Millisecond, Sampled: true}, 64,
		RequestMeta{Path: hostilePath, UserAgent: hostileUA})
	if err != nil {
		t.Fatal(err)
	}

	line := buf.Bytes()
	if len(line) > 2048 {
		t.Errorf("log line is %d bytes; hostile fields were not bounded", len(line))
	}
	var e LogEntry
	if err := json.Unmarshal(line, &e); err != nil {
		t.Fatalf("truncated line is not valid JSON: %v", err)
	}
	if !strings.HasSuffix(e.Path, "…") || !strings.HasSuffix(e.UserAgent, "…") {
		t.Errorf("truncated fields should be marked: path=%q ua=%q", e.Path, e.UserAgent)
	}
	if !strings.HasPrefix(e.Path, "/posts?q=AAA") {
		t.Errorf("path prefix lost: %q", e.Path)
	}
	if len(e.Path) > maxLogFieldLen+len("…") {
		t.Errorf("path still %d bytes", len(e.Path))
	}
}

func TestAccessLogShortFieldsUntouched(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	if err := l.WriteMeta(Span{Request: 2}, 0, RequestMeta{Path: "/", UserAgent: "curl/8.0"}); err != nil {
		t.Fatal(err)
	}
	var e LogEntry
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Path != "/" || e.UserAgent != "curl/8.0" {
		t.Errorf("fields altered: %+v", e)
	}
}

func TestTruncateFieldRuneBoundary(t *testing.T) {
	// Fill to just under the cap, then place a multi-byte rune straddling
	// it: truncation must back up to the rune start, not emit a torn rune.
	s := strings.Repeat("x", maxLogFieldLen-1) + "日本語"
	got := truncateField(s)
	if !utf8.ValidString(got) {
		t.Errorf("truncation split a rune: %q", got[len(got)-8:])
	}
	if !strings.HasSuffix(got, "…") {
		t.Errorf("missing ellipsis: %q", got)
	}
	if len(got) > maxLogFieldLen+len("…") {
		t.Errorf("len = %d", len(got))
	}
}

// TestAccessLogBackendFieldSchema is the regression test for the
// multi-process log-line schema: every line carries a backend field —
// "-" for standalone processes, the backend id in cluster mode — and
// the raw JSON always includes the key so downstream parsers can rely
// on it.
func TestAccessLogBackendFieldSchema(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf)
	if err := l.WriteMeta(Span{Request: 1}, 0, RequestMeta{Path: "/"}); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if got, ok := raw["backend"]; !ok || got != "-" {
		t.Fatalf("standalone line backend = %v (present %v), want \"-\"", got, ok)
	}

	buf.Reset()
	l.SetBackend("3")
	if err := l.WriteMeta(Span{Request: 2}, 0, RequestMeta{Path: "/"}); err != nil {
		t.Fatal(err)
	}
	var e LogEntry
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Backend != "3" {
		t.Fatalf("cluster line backend = %q, want \"3\"", e.Backend)
	}

	// Sheds go through the same writer and must carry the id too.
	buf.Reset()
	c := NewCollector(0, &buf, nil)
	c.SetBackend("7")
	c.ObserveShed(RequestMeta{Status: 503, Outcome: "shed_overload"})
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Backend != "7" || e.Outcome != "shed_overload" {
		t.Fatalf("shed line = %+v, want backend 7 outcome shed_overload", e)
	}

	// Empty id resets to the standalone marker rather than logging "".
	l.SetBackend("")
	buf.Reset()
	_ = l.WriteMeta(Span{Request: 3}, 0, RequestMeta{})
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Backend != "-" {
		t.Fatalf("reset backend = %q, want \"-\"", e.Backend)
	}
}
