package obs

import (
	"math"
	"sync/atomic"
)

// Sampler decides which requests carry a full attribution span. It is
// deterministic (every nth request) rather than randomized, so a given
// request count always yields the same number of spans — the property
// the <5% overhead bound and the tests rely on. Safe for concurrent use.
type Sampler struct {
	every uint64 // sample every nth request; 0 disables sampling
	n     uint64 // atomic request counter
}

// NewSampler builds a sampler from a rate in [0, 1]: rate 1 samples
// every request, 0.01 every hundredth, and rates <= 0 disable sampling
// entirely. The interval is ceil(1/rate), so the realized rate never
// exceeds the requested one.
func NewSampler(rate float64) *Sampler {
	s := &Sampler{}
	switch {
	case rate <= 0:
		s.every = 0
	case rate >= 1:
		s.every = 1
	default:
		// Clamp before converting: for tiny rates 1/rate can exceed the
		// range where float64→uint64 conversion is defined.
		f := math.Ceil(1 / rate)
		if f >= math.MaxUint64/2 {
			f = math.MaxUint64 / 2
		}
		s.every = uint64(f)
	}
	return s
}

// Interval returns the sampling interval n (every nth request sampled),
// 0 when sampling is disabled.
func (s *Sampler) Interval() uint64 { return s.every }

// Sample reports whether the current request should carry a span,
// advancing the request counter.
func (s *Sampler) Sample() bool {
	if s == nil || s.every == 0 {
		return false
	}
	return atomic.AddUint64(&s.n, 1)%s.every == 0
}
