package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format parsing and merging — the read side of the
// Encoder in prom.go. A cluster router scrapes each backend's /metrics,
// parses the exposition with ParsePromText, and folds the fleet together
// with MergeFamilies: counters and gauges sum, and histograms merge
// bucket-wise because their _bucket/_sum/_count series are themselves
// counters keyed by the shared `le` bounds. The merged families can be
// re-encoded with WriteFamilies, so /clusterz can serve the whole fleet
// as one exposition.

// PromSample is one parsed sample line: its full series name (which for
// histogram families includes the _bucket/_sum/_count suffix), labels in
// exposition order, and value.
type PromSample struct {
	Name   string
	Labels []Label
	Value  float64
}

// MetricFamily is one parsed metric family: the # HELP/# TYPE header
// plus every sample line that belongs to it.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram | summary | untyped
	Samples []PromSample
}

// Sum returns the sum of the family's base-name samples whose labels
// include every match pair. Suffixed series (_bucket, _sum, _count) and
// summary quantile lines are excluded, so summing a histogram family
// yields 0 — use Histogram for those.
func (f *MetricFamily) Sum(match ...Label) float64 {
	if f == nil {
		return 0
	}
	var total float64
	for _, s := range f.Samples {
		if s.Name != f.Name || !labelsInclude(s.Labels, match) {
			continue
		}
		if f.Type == "summary" && hasLabel(s.Labels, "quantile") {
			continue
		}
		total += s.Value
	}
	return total
}

// Histogram reconstructs a cumulative HistogramSnapshot from the
// family's _bucket/_sum/_count samples, aggregating across label sets
// (per-backend labelled histograms fold into one fleet distribution).
// Bounds are the union of observed finite `le` values, ascending.
func (f *MetricFamily) Histogram() HistogramSnapshot {
	var snap HistogramSnapshot
	if f == nil {
		return snap
	}
	byLE := map[float64]uint64{}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := leBound(s.Labels)
			if !ok || math.IsInf(le, 1) {
				continue
			}
			byLE[le] += uint64(s.Value)
		case f.Name + "_sum":
			snap.Sum += s.Value
		case f.Name + "_count":
			snap.Count += uint64(s.Value)
		}
	}
	snap.Bounds = make([]float64, 0, len(byLE))
	for le := range byLE {
		snap.Bounds = append(snap.Bounds, le)
	}
	sort.Float64s(snap.Bounds)
	snap.Counts = make([]uint64, len(snap.Bounds))
	for i, le := range snap.Bounds {
		snap.Counts[i] = byLE[le]
	}
	return snap
}

// leBound extracts and parses a bucket sample's `le` label.
func leBound(labels []Label) (float64, bool) {
	for _, l := range labels {
		if l.Name == "le" {
			v, err := strconv.ParseFloat(l.Value, 64)
			return v, err == nil
		}
	}
	return 0, false
}

// hasLabel reports whether labels contain a label with the given name.
func hasLabel(labels []Label, name string) bool {
	for _, l := range labels {
		if l.Name == name {
			return true
		}
	}
	return false
}

// labelsInclude reports whether labels contain every pair in want.
func labelsInclude(labels, want []Label) bool {
	for _, w := range want {
		found := false
		for _, l := range labels {
			if l.Name == w.Name && l.Value == w.Value {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ParsePromText parses a Prometheus text-format exposition (version
// 0.0.4, the format the Encoder writes) into metric families in
// exposition order. Samples that appear without a preceding # TYPE
// header get an implicit untyped family. Unparseable lines fail fast —
// scrapes are machine-to-machine, so corruption is a bug, not noise.
func ParsePromText(r io.Reader) ([]*MetricFamily, error) {
	var fams []*MetricFamily
	byName := map[string]*MetricFamily{}
	var cur *MetricFamily

	family := func(name, typ string) *MetricFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &MetricFamily{Name: name, Type: typ}
		byName[name] = f
		fams = append(fams, f)
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				f := family(fields[2], "untyped")
				if fields[1] == "TYPE" && len(fields) >= 4 {
					f.Type = strings.TrimSpace(fields[3])
					cur = f
				} else if fields[1] == "HELP" {
					if len(fields) >= 4 {
						f.Help = fields[3]
					}
					cur = f
				}
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: prom parse line %d: %w", lineNo, err)
		}
		f := cur
		if f == nil || (s.Name != f.Name && !strings.HasPrefix(s.Name, f.Name+"_")) {
			f = family(s.Name, "untyped")
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: prom parse: %w", err)
	}
	return fams, nil
}

// parseSampleLine parses `name{a="b",...} value [timestamp]`.
func parseSampleLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return s, fmt.Errorf("missing value in %q", line)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parsePromValue parses a sample value, including the exposition
// spellings of the non-finite values.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a `{a="b",c="d"}` block starting at s[0] == '{',
// returning the index just past the closing brace. Escaped `\"`, `\\`,
// and `\n` inside values are unescaped.
func parseLabels(s string) (int, []Label, error) {
	var labels []Label
	i := 1
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block in %q", s)
		}
		name := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing quote
		labels = append(labels, Label{Name: name, Value: val.String()})
	}
}

// sampleKey is the merge identity of a sample: full series name plus the
// exact label rendering.
func sampleKey(s PromSample) string {
	return s.Name + labelString(s.Labels)
}

// MergeFamilies folds src into dst and returns dst: samples with the
// same series name and label set have their values summed (counters
// accumulate; histogram _bucket/_sum/_count series are counters, so
// histograms merge bucket-wise), new samples and families are appended
// in first-seen order. Gauges sum too — the fleet view of `workers` or
// `cache_entries` is the total across backends — so gauges that are
// ratios should be recomputed from merged counters rather than read off
// the merged exposition. dst's samples are mutated in place.
func MergeFamilies(dst, src []*MetricFamily) []*MetricFamily {
	byName := make(map[string]*MetricFamily, len(dst))
	for _, f := range dst {
		byName[f.Name] = f
	}
	for _, sf := range src {
		df, ok := byName[sf.Name]
		if !ok {
			cp := &MetricFamily{Name: sf.Name, Help: sf.Help, Type: sf.Type,
				Samples: append([]PromSample(nil), sf.Samples...)}
			byName[sf.Name] = cp
			dst = append(dst, cp)
			continue
		}
		if df.Help == "" {
			df.Help = sf.Help
		}
		idx := make(map[string]int, len(df.Samples))
		for i, s := range df.Samples {
			idx[sampleKey(s)] = i
		}
		for _, s := range sf.Samples {
			if i, ok := idx[sampleKey(s)]; ok {
				df.Samples[i].Value += s.Value
			} else {
				idx[sampleKey(s)] = len(df.Samples)
				df.Samples = append(df.Samples, s)
			}
		}
	}
	return dst
}

// FindFamily returns the family with the given name, or nil.
func FindFamily(fams []*MetricFamily, name string) *MetricFamily {
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// WriteFamilies re-encodes parsed (typically merged) families in the
// text exposition format, preserving family and sample order.
func WriteFamilies(w io.Writer, fams []*MetricFamily) error {
	e := NewEncoder(w)
	for _, f := range fams {
		typ := f.Type
		if typ == "" {
			typ = "untyped"
		}
		e.header(f.Name, f.Help, typ)
		for _, s := range f.Samples {
			e.series(s.Name, s.Labels, s.Value)
		}
	}
	return e.Err()
}
