package obs

import (
	"io"
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkAccessLogWriteMeta measures one sampled access-log line end
// to end — the hand-rolled encoder holds this near zero allocs/op
// (the only remaining cost is the time formatting), where the previous
// encoding/json path paid reflection plus a breakdown map per line.
func BenchmarkAccessLogWriteMeta(b *testing.B) {
	l := NewAccessLog(io.Discard)
	sp := Span{Request: 42, Worker: 3, Wall: 1500 * time.Microsecond, Sampled: true, Cycles: 123456}
	for _, c := range sim.Categories() {
		sp.Categories[c] = float64(1000 + int(c))
	}
	meta := RequestMeta{
		Path:      "/?page=17",
		UserAgent: "bench/1.0",
		RequestID: "req-0000002a",
		Status:    200,
		QueueWait: 30 * time.Microsecond,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.WriteMeta(sp, 4096, meta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessLogUnsampled is the cheaper shed/unsampled line shape.
func BenchmarkAccessLogUnsampled(b *testing.B) {
	l := NewAccessLog(io.Discard)
	sp := Span{Worker: -1, Wall: 200 * time.Microsecond}
	meta := RequestMeta{Path: "/", Status: 503, Outcome: "shed_overload"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.WriteMeta(sp, 0, meta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPromEncoder measures a representative /metrics scrape
// fragment: labelled counters, a gauge, and a histogram. The reused
// line buffer keeps allocs/op flat regardless of series count.
func BenchmarkPromEncoder(b *testing.B) {
	labels := []Label{{Name: "app", Value: "wordpress"}, {Name: "config", Value: "accelerated"}}
	h := NewHistogram(DefLatencyBuckets())
	for i := 0; i < 64; i++ {
		h.Observe(float64(i) / 100)
	}
	snap := h.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(io.Discard)
		e.Counter("bench_requests_total", "Requests served.",
			Sample{Labels: labels, Value: 12345},
			Sample{Labels: []Label{{Name: "reason", Value: "overload"}}, Value: 17})
		e.Gauge("bench_queue_depth", "Queue depth.", Sample{Value: 3})
		e.Histogram("bench_latency_seconds", "Latency.", nil, snap)
		if err := e.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
