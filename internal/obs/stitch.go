package obs

// Cross-process trace stitching: a router that sampled a request can
// fetch the backend's span tree for the same X-Request-Id and graft it
// under its own proxy span, producing one timeline from socket through
// router to backend VM. The graft rebases the backend tree's clock onto
// the host tree's and propagates the backend's simulated cycle totals up
// the host's ancestor chain, so the telescoping self-cycles invariant
// (sum of self vectors == root inclusive vector) keeps holding on the
// stitched tree: the router's own spans carry zero simulated cycles and
// telescope to zero; every simulated cycle in the stitched tree belongs
// to a backend span.

// Graft attaches sub's root span as a child of the last span in
// ancestors, which must be the chain from host.Root down to the attach
// point (host.Root first). Sub's span offsets — relative to sub.Start —
// are rebased onto host's clock; if the two processes' clocks disagree
// enough that sub would begin before the attach span does, the subtree
// is clamped to the attach span's start so viewers never show a backend
// render beginning before its proxy call. Sub's inclusive cycle vector
// is added to every ancestor, preserving the self-cycles telescoping
// invariant. No-op when any argument is nil/empty.
func Graft(host *Tree, ancestors []*TreeSpan, sub *Tree) {
	if host == nil || host.Root == nil || sub == nil || sub.Root == nil || len(ancestors) == 0 {
		return
	}
	attach := ancestors[len(ancestors)-1]
	offset := sub.Start.Sub(host.Start)
	if offset < attach.Start {
		offset = attach.Start
	}
	sub.Root.shiftStart(offset)
	attach.Children = append(attach.Children, sub.Root)
	for _, a := range ancestors {
		a.Categories = a.Categories.Add(sub.Root.Categories)
		a.Cycles += sub.Root.Cycles
	}
	host.Dropped += sub.Dropped
}

// FindSpan returns the ancestor chain from the tree's root to the first
// span (depth-first, start order) whose name matches, or nil when no
// span matches. The returned slice is the ancestors argument Graft
// expects.
func FindSpan(t *Tree, name string) []*TreeSpan {
	if t == nil || t.Root == nil {
		return nil
	}
	var path []*TreeSpan
	var found []*TreeSpan
	var walk func(sp *TreeSpan)
	walk = func(sp *TreeSpan) {
		if found != nil {
			return
		}
		path = append(path, sp)
		if sp.Name == name {
			found = append([]*TreeSpan(nil), path...)
		} else {
			for _, c := range sp.Children {
				walk(c)
			}
		}
		path = path[:len(path)-1]
	}
	walk(t.Root)
	return found
}
