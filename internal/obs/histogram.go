package obs

// Histogram is a fixed-bucket histogram in the Prometheus style: each
// observation lands in the first bucket whose upper bound is >= the
// value, with an implicit +Inf overflow bucket. It stores per-bucket
// (non-cumulative) counts; Snapshot produces the cumulative view the
// text exposition format requires. Not safe for concurrent use on its
// own — the Collector serializes access.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// DefLatencyBuckets are the default request-latency bucket bounds in
// seconds. The ladder spans the microsecond range a simulated render
// covers and continues through 30s so overload-length waits (long
// -timeout/-drain settings) still land in finite buckets instead of
// collapsing into +Inf exactly when the tail matters.
func DefLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bounds slice is not copied; callers must not mutate it.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// HistogramSnapshot is an immutable cumulative view of a histogram, the
// shape the Prometheus text format exports: Counts[i] is the number of
// observations <= Bounds[i], and Count (the +Inf bucket) covers all.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // cumulative, same length as Bounds
	Sum    float64
	Count  uint64
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the cumulative
// bucket counts by linear interpolation within the containing bucket,
// the standard Prometheus histogram_quantile estimate. Observations in
// the +Inf bucket clamp to the highest finite bound (there is no upper
// edge to interpolate toward), and an empty snapshot returns 0. It lets
// a scraper report latency quantiles for a merged fleet histogram,
// where no per-observation reservoir exists.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, c := range s.Counts {
		if float64(c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Bounds[i-1]
			}
			prev := uint64(0)
			if i > 0 {
				prev = s.Counts[i-1]
			}
			inBucket := float64(c - prev)
			if inBucket == 0 {
				return s.Bounds[i]
			}
			return lower + (s.Bounds[i]-lower)*(rank-float64(prev))/inBucket
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot returns the cumulative view of the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)),
		Sum:    h.sum,
		Count:  h.count,
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i]
		s.Counts[i] = cum
	}
	return s
}
