package obs

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// DefaultMaxTreeSpans bounds how many spans one request's tree may hold
// before further Begin calls are counted but not recorded. A hostile or
// pathological request (a script looping over millions of builtin calls)
// therefore costs bounded memory on the sampled path.
const DefaultMaxTreeSpans = 512

// TreeSpan is one timed node of a request's span tree: a named phase of
// execution (render, a PHP function call, a texturize chain) carrying
// its wall-clock interval and the simulated cycles charged while it was
// open, broken down by activity category. Cycles and Categories are
// inclusive of children; SelfCycles/SelfCategories subtract them.
type TreeSpan struct {
	// Name identifies the phase ("request", "render", "php:texturize").
	Name string
	// Start is the offset from the request's start.
	Start time.Duration
	// Dur is the span's wall-clock duration.
	Dur time.Duration
	// Cycles is the simulated cycle total charged while the span was
	// open, children included.
	Cycles float64
	// Categories breaks Cycles down by sim.Category (inclusive).
	Categories sim.CategoryVec
	// Children are the spans opened (and closed) while this one was open.
	Children []*TreeSpan
}

// SelfCategories returns the span's exclusive per-category cycles: the
// inclusive vector minus every direct child's. Summed over a whole tree,
// the self vectors telescope back to the root's inclusive total, which
// is the invariant the flamegraph export relies on.
func (s *TreeSpan) SelfCategories() sim.CategoryVec {
	out := s.Categories
	for _, c := range s.Children {
		out = out.Sub(c.Categories)
	}
	return out
}

// SelfCycles returns the span's exclusive simulated cycle total.
func (s *TreeSpan) SelfCycles() float64 {
	t := s.Cycles
	for _, c := range s.Children {
		t -= c.Cycles
	}
	return t
}

// Walk visits the span and its descendants depth-first in start order,
// passing each node's depth (0 for the receiver).
func (s *TreeSpan) Walk(f func(sp *TreeSpan, depth int)) {
	s.walk(f, 0)
}

func (s *TreeSpan) walk(f func(sp *TreeSpan, depth int), depth int) {
	f(s, depth)
	for _, c := range s.Children {
		c.walk(f, depth+1)
	}
}

// NumSpans returns the number of nodes in the subtree rooted at s.
func (s *TreeSpan) NumSpans() int {
	n := 1
	for _, c := range s.Children {
		n += c.NumSpans()
	}
	return n
}

// Tree is one sampled request's complete span tree. Root is always the
// "request" span, so Root.Cycles is the request's total simulated cycle
// cost and Root.Dur its render wall time.
type Tree struct {
	// Request is the server-assigned request sequence number (set by
	// Collector.Observe, 0 until then).
	Request uint64
	// ID is the cross-process request correlation ID (X-Request-Id),
	// empty for trees that predate ID propagation. It is what lets the
	// router find this tree at the backend's /tracez?rid= and stitch it
	// under its own proxy span.
	ID string
	// Worker is the pool worker that served the request.
	Worker int
	// Start is the wall-clock time the request began.
	Start time.Time
	// Root is the request span.
	Root *TreeSpan
	// Dropped counts Begin calls that exceeded the tree's span budget
	// and were recorded only as this count.
	Dropped int
}

// SetID stamps the tree with its request correlation ID. No-op on a nil
// tree, which keeps the unsampled caller path branch-free.
func (t *Tree) SetID(id string) {
	if t == nil {
		return
	}
	t.ID = id
}

// AddQueueSpan extends the tree backwards in time with a synthetic
// "queued" first child covering the wait seconds the request spent in
// the admission queue before its render began. The queued span carries
// zero cycles (no simulated work happens while waiting), so the
// self-cycles telescoping invariant is untouched; the root's wall
// duration grows by wait and its start moves back, so exported
// timelines show request = queued + render with absolute times intact.
// No-op on a nil tree or non-positive wait, which keeps the unqueued
// path branch-free for callers.
func (t *Tree) AddQueueSpan(wait time.Duration) {
	if t == nil || t.Root == nil || wait <= 0 {
		return
	}
	for _, c := range t.Root.Children {
		c.shiftStart(wait)
	}
	q := &TreeSpan{Name: "queued", Start: 0, Dur: wait}
	t.Root.Children = append([]*TreeSpan{q}, t.Root.Children...)
	t.Root.Dur += wait
	t.Start = t.Start.Add(-wait)
}

// CacheHitTree builds the span tree of a request answered from the
// response cache: a "request" root whose only child is a "cache_hit"
// span, both spanning the whole (tiny) wall interval and both carrying
// the cache's fixed lookup cost vector — no render span exists because
// no render happened. The root's self vector telescopes to zero and the
// leaf carries the full inclusive total, so flamegraph and trace
// exports hold the same self-cycles invariant as rendered trees.
// Worker is -1: no pool worker served the request.
func CacheHitTree(start time.Time, wall time.Duration, lookup sim.CategoryVec) *Tree {
	hit := &TreeSpan{
		Name:       "cache_hit",
		Dur:        wall,
		Cycles:     lookup.Total(),
		Categories: lookup,
	}
	root := &TreeSpan{
		Name:       "request",
		Dur:        wall,
		Cycles:     lookup.Total(),
		Categories: lookup,
		Children:   []*TreeSpan{hit},
	}
	return &Tree{Worker: -1, Start: start, Root: root}
}

// shiftStart moves a span and its descendants later by d (offsets are
// all relative to the request start).
func (s *TreeSpan) shiftStart(d time.Duration) {
	s.Start += d
	for _, c := range s.Children {
		c.shiftStart(d)
	}
}

// treeFrame is one open span plus the category snapshot taken when it
// was opened.
type treeFrame struct {
	span     *TreeSpan
	beginVec sim.CategoryVec
}

// TreeBuilder assembles one request's span tree. It is owned by a
// single goroutine (the worker serving the request) and is attached to
// the runtime only for sampled requests; every Begin/End snapshots the
// meter's O(NumCategories) category vector, so a span costs two vector
// reads and one small allocation. A nil *TreeBuilder is a valid no-op
// receiver, which is what keeps the unsampled hook path to one branch.
type TreeBuilder struct {
	meter   *sim.Meter
	t0      time.Time
	stack   []treeFrame
	spans   int
	max     int
	dropped int
	skip    int
}

// NewTreeBuilder opens a builder whose root "request" span starts now,
// charging against mt. maxSpans bounds the tree (<=0 selects
// DefaultMaxTreeSpans).
func NewTreeBuilder(mt *sim.Meter, maxSpans int) *TreeBuilder {
	return NewTreeBuilderAt(mt, maxSpans, time.Now())
}

// NewTreeBuilderAt is NewTreeBuilder with an explicit root start
// instant, letting callers share one clock reading between the tree and
// their own wall measurement so the root's Dur and the request's Wall
// agree exactly.
func NewTreeBuilderAt(mt *sim.Meter, maxSpans int, t0 time.Time) *TreeBuilder {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxTreeSpans
	}
	b := &TreeBuilder{meter: mt, t0: t0, max: maxSpans}
	b.stack = append(b.stack, treeFrame{
		span:     &TreeSpan{Name: "request"},
		beginVec: mt.CategoryCyclesVec(),
	})
	b.spans = 1
	return b
}

// Begin opens a child span of the innermost open span. Past the span
// budget the call is counted as dropped and the matching End becomes a
// no-op, so deep or runaway instrumentation degrades to a counter
// instead of unbounded memory.
func (b *TreeBuilder) Begin(name string) {
	if b == nil {
		return
	}
	if b.skip > 0 || b.spans >= b.max {
		b.skip++
		b.dropped++
		return
	}
	b.spans++
	b.stack = append(b.stack, treeFrame{
		span:     &TreeSpan{Name: name, Start: time.Since(b.t0)},
		beginVec: b.meter.CategoryCyclesVec(),
	})
}

// End closes the innermost open span, computing its duration and its
// inclusive category cycle delta. Ends without a matching Begin are
// ignored, as is the root span (only Finish closes it).
func (b *TreeBuilder) End() {
	if b == nil {
		return
	}
	if b.skip > 0 {
		b.skip--
		return
	}
	if len(b.stack) <= 1 {
		return // root closes in Finish; unbalanced End is a no-op
	}
	f := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	f.span.Dur = time.Since(b.t0) - f.span.Start
	f.span.Categories = b.meter.CategoryCyclesVec().Sub(f.beginVec)
	f.span.Cycles = f.span.Categories.Total()
	parent := b.stack[len(b.stack)-1].span
	parent.Children = append(parent.Children, f.span)
}

// Finish closes every span still open (innermost first), closes the
// root, and returns the completed tree for worker. The builder must not
// be used afterwards.
func (b *TreeBuilder) Finish(worker int) *Tree {
	if b == nil {
		return nil
	}
	for len(b.stack) > 1 {
		b.End()
	}
	root := b.stack[0]
	root.span.Dur = time.Since(b.t0)
	root.span.Categories = b.meter.CategoryCyclesVec().Sub(root.beginVec)
	root.span.Cycles = root.span.Categories.Total()
	b.stack = nil
	return &Tree{Worker: worker, Start: b.t0, Root: root.span, Dropped: b.dropped}
}

// TreeRing retains the most recent sampled span trees in a bounded ring
// for the /tracez endpoint. Safe for concurrent use.
type TreeRing struct {
	mu    sync.Mutex
	cap   int
	trees []*Tree
	start int
	total int64
}

// NewTreeRing builds a ring keeping at most capacity trees (<=0 selects
// a capacity of 1).
func NewTreeRing(capacity int) *TreeRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &TreeRing{cap: capacity}
}

// Add retains t, evicting the oldest tree when the ring is full. A nil
// tree is ignored.
func (r *TreeRing) Add(t *Tree) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.trees) < r.cap {
		r.trees = append(r.trees, t)
		return
	}
	r.trees[r.start] = t
	r.start = (r.start + 1) % r.cap
}

// Total returns how many trees were ever added, including evicted ones.
func (r *TreeRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns up to n retained trees, oldest first, newest last. n <= 0
// returns every retained tree.
func (r *TreeRing) Last(n int) []*Tree {
	r.mu.Lock()
	defer r.mu.Unlock()
	ordered := make([]*Tree, 0, len(r.trees))
	ordered = append(ordered, r.trees[r.start:]...)
	ordered = append(ordered, r.trees[:r.start]...)
	if n > 0 && n < len(ordered) {
		ordered = ordered[len(ordered)-n:]
	}
	return ordered
}
