package obs

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// vec builds a CategoryVec with the given cycles in CatVM.
func vec(cycles float64) sim.CategoryVec {
	var v sim.CategoryVec
	v[sim.CatHash] = cycles
	return v
}

// routerTree builds the host side of a stitch: a hand-assembled router
// tree (no sim.Meter exists in a router process) with zero cycles.
func routerTree(start time.Time) *Tree {
	proxy := &TreeSpan{Name: "proxy:b0", Start: 1 * time.Millisecond, Dur: 10 * time.Millisecond}
	route := &TreeSpan{Name: "route", Start: 0, Dur: 1 * time.Millisecond}
	root := &TreeSpan{Name: "request", Dur: 12 * time.Millisecond,
		Children: []*TreeSpan{route, proxy}}
	return &Tree{ID: "rid-1", Start: start, Root: root}
}

// backendTree builds the sub side: a backend render tree carrying
// simulated cycles, as phpserve's TreeBuilder would produce.
func backendTree(start time.Time) *Tree {
	render := &TreeSpan{Name: "render", Start: 100 * time.Microsecond,
		Dur: 8 * time.Millisecond, Cycles: 900, Categories: vec(900)}
	root := &TreeSpan{Name: "request", Dur: 9 * time.Millisecond,
		Cycles: 1000, Categories: vec(1000), Children: []*TreeSpan{render}}
	return &Tree{ID: "rid-1", Start: start, Root: root, Dropped: 2}
}

// checkTelescope verifies the stitched tree's self-cycles invariant: the
// sum of every span's exclusive vector equals the root's inclusive one.
func checkTelescope(t *testing.T, tree *Tree) {
	t.Helper()
	var selfSum sim.CategoryVec
	tree.Root.Walk(func(sp *TreeSpan, _ int) {
		selfSum = selfSum.Add(sp.SelfCategories())
	})
	if got, want := selfSum.Total(), tree.Root.Categories.Total(); got != want {
		t.Fatalf("telescoping broken: self sum %g != root inclusive %g", got, want)
	}
	tree.Root.Walk(func(sp *TreeSpan, _ int) {
		if sp.SelfCycles() < 0 {
			t.Fatalf("span %q has negative self cycles %g", sp.Name, sp.SelfCycles())
		}
	})
}

func TestGraftStitchesAndPreservesInvariant(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	host := routerTree(t0)
	sub := backendTree(t0.Add(2 * time.Millisecond))

	chain := FindSpan(host, "proxy:b0")
	if len(chain) != 2 || chain[0].Name != "request" || chain[1].Name != "proxy:b0" {
		t.Fatalf("FindSpan chain = %v", spanNames(chain))
	}
	Graft(host, chain, sub)

	proxy := chain[1]
	if len(proxy.Children) != 1 || proxy.Children[0].Name != "request" {
		t.Fatalf("backend root not attached under proxy: %v", spanNames(proxy.Children))
	}
	// Backend started 2ms after the router's request: its spans are
	// rebased onto the host clock.
	if got := proxy.Children[0].Start; got != 2*time.Millisecond {
		t.Fatalf("backend root start = %v, want 2ms", got)
	}
	if got := proxy.Children[0].Children[0].Start; got != 2*time.Millisecond+100*time.Microsecond {
		t.Fatalf("backend render start = %v", got)
	}
	// The backend's inclusive cycles propagated up both ancestors, so the
	// router spans (zero own cycles) telescope to zero self.
	if host.Root.Cycles != 1000 || proxy.Cycles != 1000 {
		t.Fatalf("ancestor cycles = root %g proxy %g, want 1000/1000", host.Root.Cycles, proxy.Cycles)
	}
	if host.Root.SelfCycles() != 0 || proxy.SelfCycles() != 0 {
		t.Fatalf("router self cycles = root %g proxy %g, want 0/0",
			host.Root.SelfCycles(), proxy.SelfCycles())
	}
	if host.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", host.Dropped)
	}
	checkTelescope(t, host)
}

func TestGraftClampsClockSkew(t *testing.T) {
	t0 := time.Unix(1700000000, 0)
	host := routerTree(t0)
	// Backend clock reads *before* the router's request start: without
	// clamping the backend render would appear to begin before the proxy
	// call that caused it.
	sub := backendTree(t0.Add(-5 * time.Millisecond))
	chain := FindSpan(host, "proxy:b0")
	Graft(host, chain, sub)
	if got, want := chain[1].Children[0].Start, chain[1].Start; got != want {
		t.Fatalf("skewed backend root start = %v, want clamped to proxy start %v", got, want)
	}
	checkTelescope(t, host)
}

func TestGraftNilSafe(t *testing.T) {
	host := routerTree(time.Now())
	Graft(nil, FindSpan(host, "proxy:b0"), backendTree(time.Now()))
	Graft(host, nil, backendTree(time.Now()))
	Graft(host, FindSpan(host, "proxy:b0"), nil)
	if len(FindSpan(host, "proxy:b0")[1].Children) != 0 {
		t.Fatal("nil-argument Graft mutated the host tree")
	}
}

func TestFindSpanMissing(t *testing.T) {
	host := routerTree(time.Now())
	if got := FindSpan(host, "nope"); got != nil {
		t.Fatalf("FindSpan(nope) = %v", spanNames(got))
	}
	if got := FindSpan(nil, "request"); got != nil {
		t.Fatal("FindSpan(nil) should be nil")
	}
}

func spanNames(spans []*TreeSpan) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}
