package obs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"
)

// HeaderRequestID is the HTTP header carrying a request's correlation
// ID across the router → backend boundary and back to the client. The
// router mints one per request (unless the client supplied its own) and
// the backend echoes it into its access log and sampled span tree, so a
// single ID ties together the client response, the router log line, the
// backend log line, and the stitched trace at /tracez.
const HeaderRequestID = "X-Request-Id"

// HeaderTraceSampled is the response header a backend sets when it
// retained a span tree for the request, signalling the router that a
// stitchable tree exists at the backend's /tracez?rid=<id>.
const HeaderTraceSampled = "X-Trace-Sampled"

// maxRequestIDLen bounds inbound request IDs: anything longer is
// truncated so a hostile header cannot bloat logs or span trees.
const maxRequestIDLen = 64

// IDSource mints process-unique request IDs. Each source draws a random
// 64-bit prefix at construction (crypto/rand, falling back to the clock
// if the system entropy pool fails) and appends an atomic counter, so
// IDs are unique across concurrent goroutines without locks and unique
// across processes with overwhelming probability — and there is no
// dependence on math/rand's global, lockable state.
type IDSource struct {
	prefix uint64
	ctr    atomic.Uint64
}

// NewIDSource builds an ID source with a fresh random prefix.
func NewIDSource() *IDSource {
	var b [8]byte
	var prefix uint64
	if _, err := cryptorand.Read(b[:]); err == nil {
		prefix = binary.LittleEndian.Uint64(b[:])
	} else {
		prefix = uint64(time.Now().UnixNano())
	}
	return &IDSource{prefix: prefix}
}

// Next returns the next ID: 16 hex chars of process prefix, a dash, and
// 8 hex chars of per-source sequence ("3fa85f64c91e07b2-0000002a").
// Safe for concurrent use; a nil source returns "".
func (s *IDSource) Next() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("%016x-%08x", s.prefix, s.ctr.Add(1))
}

// SanitizeRequestID makes an inbound (client- or router-supplied)
// request ID safe to log and echo: non-printable and JSON/label-hostile
// bytes are replaced with '_' and the result is truncated to a bounded
// length. An empty input stays empty (the caller should mint instead).
func SanitizeRequestID(id string) string {
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	out := []byte(id)
	for i := 0; i < len(out); i++ {
		c := out[i]
		if c < 0x21 || c > 0x7e || c == '"' || c == '\\' {
			out[i] = '_'
		}
	}
	return string(out)
}
