package experiments

import (
	"repro/internal/uarch"
)

// UarchOptions sizes the microarchitectural characterization runs.
type UarchOptions struct {
	Instructions int64
	Seed         int64
}

// QuickUarch returns a fast characterization size.
func QuickUarch() UarchOptions { return UarchOptions{Instructions: 1_500_000, Seed: 1} }

// FullUarch returns the evaluation-scale characterization size.
func FullUarch() UarchOptions { return UarchOptions{Instructions: 4_000_000, Seed: 1} }

// BranchMPKIRow is the §2 branch predictor characterization for one
// workload.
type BranchMPKIRow struct {
	Workload  string
	MPKI      float64
	PaperMPKI float64
}

// TableBranchMPKI reproduces the §2 TAGE measurements: 17.26 / 14.48 /
// 15.14 MPKI for the PHP apps against ~2.9 for SPEC CPU2006.
func TableBranchMPKI(opt UarchOptions) []BranchMPKIRow {
	paper := map[string]float64{
		"wordpress": 17.26, "drupal": 14.48, "mediawiki": 15.14, "spec": 2.9,
	}
	profiles := []uarch.Profile{
		uarch.PHPProfile("wordpress"),
		uarch.PHPProfile("drupal"),
		uarch.PHPProfile("mediawiki"),
		uarch.SPECProfile(),
	}
	var out []BranchMPKIRow
	for _, p := range profiles {
		cfg := uarch.DefaultCharacterizeConfig()
		cfg.Instructions = opt.Instructions
		cfg.Seed = opt.Seed
		ch := uarch.Characterize(p, cfg)
		out = append(out, BranchMPKIRow{Workload: p.Name, MPKI: ch.Stats.BranchMPKI, PaperMPKI: paper[p.Name]})
	}
	return out
}

// Figure2a reproduces Fig. 2a: WordPress execution time versus BTB size
// for several instruction cache sizes. Execution cycles are normalized to
// the smallest configuration.
type Fig2aRow struct {
	BTBEntries int
	L1ISize    int
	NormTime   float64
	BTBHitRate float64
}

// Figure2a runs the BTB and I-cache sweep.
func Figure2a(opt UarchOptions) []Fig2aRow {
	p := uarch.PHPProfile("wordpress")
	points := uarch.SweepBTB(p,
		[]int{4096, 8192, 16384, 32768, 65536},
		[]int{32 << 10, 64 << 10, 128 << 10},
		opt.Instructions)
	base := points[0].ExecCycles
	var out []Fig2aRow
	for _, pt := range points {
		out = append(out, Fig2aRow{
			BTBEntries: pt.BTBEntries,
			L1ISize:    pt.L1ISize,
			NormTime:   pt.ExecCycles / base,
			BTBHitRate: pt.BTBHitRate,
		})
	}
	return out
}

// Fig2bRow is the cache MPKI characterization for one workload.
type Fig2bRow struct {
	Workload string
	L1IMPKI  float64
	L1DMPKI  float64
	L2MPKI   float64
}

// Figure2b reproduces Fig. 2b: cache performance of the PHP applications
// — L1 behaviour typical of SPEC-like workloads, L2 MPKI very low.
func Figure2b(opt UarchOptions) []Fig2bRow {
	var out []Fig2bRow
	for _, app := range PHPApps {
		cfg := uarch.DefaultCharacterizeConfig()
		cfg.Instructions = opt.Instructions
		cfg.Seed = opt.Seed
		ch := uarch.Characterize(uarch.PHPProfile(app), cfg)
		out = append(out, Fig2bRow{
			Workload: app,
			L1IMPKI:  ch.Stats.L1IMPKI,
			L1DMPKI:  ch.Stats.L1DMPKI,
			L2MPKI:   ch.Stats.L2MPKI,
		})
	}
	return out
}

// Fig2cRow is one core configuration's normalized execution time.
type Fig2cRow struct {
	Core     string
	NormTime float64
}

// Figure2c reproduces Fig. 2c: 2-wide in-order through 8-wide OoO, with
// the 8-wide gain under 3%.
func Figure2c(opt UarchOptions) []Fig2cRow {
	points := uarch.SweepCores(uarch.PHPProfile("wordpress"), opt.Instructions)
	base := points[0].ExecCycles
	var out []Fig2cRow
	for _, pt := range points {
		out = append(out, Fig2cRow{Core: pt.Core.Name, NormTime: pt.ExecCycles / base})
	}
	return out
}

// --- Extension: indirect target prediction (§2's suggested remedy) ---

// IndirectRow compares the plain BTB against an added ITTAGE-style
// indirect target predictor on the megamorphic dispatch sites — the
// front-end improvement the paper's §2 analysis points to for the
// data-dependent control flow of VM dispatch.
type IndirectRow struct {
	Workload        string
	IndirectPerKI   float64
	BTBMissRate     float64 // dispatch-site miss rate, BTB alone
	ITTAGEMissRate  float64 // dispatch-site miss rate with ITTAGE
	BubblePKIBefore float64 // front-end bubbles per 1K instrs, BTB alone
	BubblePKIAfter  float64 // with ITTAGE rescuing dispatch targets
	RASMissRate     float64 // return-address stack mispredict rate
}

// TableIndirectPredictor runs the extension study.
func TableIndirectPredictor(opt UarchOptions) []IndirectRow {
	var out []IndirectRow
	for _, app := range PHPApps {
		cfg := uarch.DefaultCharacterizeConfig()
		// Indirect dispatches are rare (~1.4/KI); train over a longer
		// stream so the predictor tables see enough samples per context.
		cfg.Instructions = opt.Instructions * 3
		cfg.Seed = opt.Seed
		base := uarch.Characterize(uarch.PHPProfile(app), cfg)
		cfg.WithITTAGE = true
		ext := uarch.Characterize(uarch.PHPProfile(app), cfg)
		out = append(out, IndirectRow{
			Workload:        app,
			IndirectPerKI:   base.Stats.IndirectPerKI,
			BTBMissRate:     base.Stats.IndirectBTBMiss,
			ITTAGEMissRate:  ext.Stats.ITTAGEMiss,
			BubblePKIBefore: base.Stats.BTBMissPKI,
			BubblePKIAfter:  ext.Stats.BTBMissPKI,
			RASMissRate:     base.Stats.RASMispredicts,
		})
	}
	return out
}
