package experiments

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// The experiment tests assert the *shape* of every reproduced figure
// against the paper's reported values: who wins, by roughly what factor,
// and where the crossovers fall. Absolute cycle counts are not asserted —
// the substrate is a model, not the authors' testbed.

func TestFigure1Shape(t *testing.T) {
	rows := Figure1(Quick())
	if len(rows) != 5 {
		t.Fatalf("Figure1 rows = %d", len(rows))
	}
	byApp := map[string]Fig1Series{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	for _, app := range PHPApps {
		s := byApp[app]
		// Paper: hottest (JIT-compiled code) ~10-12% of cycles.
		if s.HottestFrac < 0.06 || s.HottestFrac > 0.18 {
			t.Errorf("%s hottest %0.3f, want ~0.10-0.12", app, s.HottestFrac)
		}
		// Paper: about 100 functions for ~65% of cycles.
		if s.FuncsFor65 < 40 || s.FuncsFor65 > 160 {
			t.Errorf("%s needs %d functions for 65%%, want a flat profile", app, s.FuncsFor65)
		}
	}
	for _, app := range []string{"specweb-banking", "specweb-ecommerce"} {
		s := byApp[app]
		// Paper: very few functions cover ~90%.
		if s.FuncsFor65 > 3 {
			t.Errorf("%s needs %d functions for 65%%, want hotspots", app, s.FuncsFor65)
		}
	}
}

func TestFigure3MitigationsShrinkOverheads(t *testing.T) {
	rows := Figure3(Quick())
	if len(rows) == 0 {
		t.Fatal("no Figure3 rows")
	}
	var refBefore, refAfter float64
	for _, r := range rows {
		if r.Category == sim.CatRefCount || r.Category == sim.CatTypeCheck {
			refBefore += r.BeforePct
			refAfter += r.AfterPct
		}
	}
	if refBefore == 0 {
		t.Fatal("baseline shows no abstraction overheads")
	}
	if refAfter >= refBefore/4 {
		t.Errorf("mitigations should collapse overhead functions: %0.2f%% -> %0.2f%%", refBefore, refAfter)
	}
}

func TestFigure4CategoriesPresent(t *testing.T) {
	rows := Figure4(Quick())
	seen := map[sim.Category]bool{}
	for _, r := range rows {
		seen[r.Category] = true
	}
	for _, c := range []sim.Category{sim.CatHash, sim.CatHeap, sim.CatString, sim.CatRegex} {
		if !seen[c] {
			t.Errorf("category %v missing from the hottest functions", c)
		}
	}
}

func TestFigure5Breakdown(t *testing.T) {
	rows := Figure5(Quick())
	byApp := map[string]Fig5Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	for _, app := range PHPApps {
		shares := byApp[app].Shares
		four := shares[sim.CatHash] + shares[sim.CatHeap] + shares[sim.CatString] + shares[sim.CatRegex]
		// The four categories must be a substantial minority of time.
		if four < 0.15 || four > 0.45 {
			t.Errorf("%s four-category share %0.3f, want 0.15-0.45", app, four)
		}
	}
	// Paper: Drupal shows the least string+regexp opportunity.
	dr := byApp["drupal"].Shares
	wp := byApp["wordpress"].Shares
	if dr[sim.CatString]+dr[sim.CatRegex] >= wp[sim.CatString]+wp[sim.CatRegex] {
		t.Errorf("drupal should have the least string+regex time")
	}
}

func TestFigure7HitRates(t *testing.T) {
	rows := Figure7(Quick())
	if len(rows) != 10 {
		t.Fatalf("Figure7 rows = %d", len(rows))
	}
	// Monotone non-decreasing hit rate with capacity.
	for i := 1; i < len(rows); i++ {
		if rows[i].GetHitRate+0.02 < rows[i-1].GetHitRate {
			t.Errorf("hit rate dropped with capacity: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	// Paper: ~80% at 256 entries.
	var at256, at512 float64
	for _, r := range rows {
		if r.Entries == 256 {
			at256 = r.GetHitRate
		}
		if r.Entries == 512 {
			at512 = r.GetHitRate
		}
	}
	if at256 < 0.65 {
		t.Errorf("256-entry hit rate %0.3f, paper ~0.80", at256)
	}
	if at512 < at256 {
		t.Errorf("512 entries should not be worse than 256")
	}
	// SETs must be a meaningful share of requests (they never miss).
	last := rows[len(rows)-1]
	if last.Sets == 0 || last.Gets == 0 {
		t.Errorf("workload must exercise both GETs and SETs: %+v", last)
	}
}

func TestFigure8aSmallAllocationsDominate(t *testing.T) {
	rows := Figure8a(Quick())
	for _, r := range rows {
		// Paper: a majority of requests retrieve at most 128 bytes.
		cum128 := r.Cumulative[7] // class 7 = 128B
		if cum128 < 0.60 {
			t.Errorf("%s: <=128B cumulative %0.3f, want >= 0.60", r.App, cum128)
		}
		if r.Cumulative[len(r.Cumulative)-1] < 0.999 {
			t.Errorf("%s: cumulative must end at 1", r.App)
		}
	}
}

func TestFigure8bcFlatReuse(t *testing.T) {
	series := Figure8bc(Quick())
	for _, s := range series {
		if len(s.Ops) < 10 {
			t.Fatalf("%s: too few timeline samples (%d)", s.App, len(s.Ops))
		}
		// Strong reuse: the small-band live bytes in the second half of
		// the run stay within a modest band (no unbounded growth).
		half := len(s.Ops) / 2
		var lo, hi int64 = math.MaxInt64, 0
		for i := half; i < len(s.Ops); i++ {
			small := s.Bands[0][i] + s.Bands[1][i] + s.Bands[2][i] + s.Bands[3][i]
			if small < lo {
				lo = small
			}
			if small > hi {
				hi = small
			}
		}
		if lo == 0 && hi == 0 {
			t.Errorf("%s: no live small allocations sampled", s.App)
			continue
		}
		if float64(hi) > 3.0*float64(lo+1) {
			t.Errorf("%s: small-slab usage not flat: min %d max %d", s.App, lo, hi)
		}
	}
}

func TestFigure12SkipFractions(t *testing.T) {
	rows := Figure12(Quick())
	for _, r := range rows {
		if r.TotalFraction <= 0.2 {
			t.Errorf("%s: regexps skip only %0.3f of content", r.App, r.TotalFraction)
		}
		if r.TotalFraction > 0.98 {
			t.Errorf("%s: skip fraction %0.3f implausibly high", r.App, r.TotalFraction)
		}
		if r.SiftFraction <= r.ReuseFraction {
			t.Errorf("%s: sifting should dominate reuse: %+v", r.App, r)
		}
	}
}

func TestFigure14HeadlineNumbers(t *testing.T) {
	rows := Figure14(Quick())
	var mitSum, accSum, engSum float64
	for _, r := range rows {
		mitSum += r.MitigatedTime
		accSum += r.AcceleratedTime
		engSum += r.EnergySaving
		if r.AcceleratedTime >= r.MitigatedTime {
			t.Errorf("%s: accelerators must improve on mitigations: %+v", r.App, r)
		}
		if r.MitigatedTime >= 1 {
			t.Errorf("%s: mitigations must improve on baseline: %+v", r.App, r)
		}
	}
	mitAvg, accAvg, engAvg := mitSum/3, accSum/3, engSum/3
	// Paper: 88.15% and 70.22% average normalized times; 21.01% energy.
	if math.Abs(mitAvg-0.8815) > 0.05 {
		t.Errorf("average mitigated time %0.4f, paper 0.8815", mitAvg)
	}
	if math.Abs(accAvg-0.7022) > 0.06 {
		t.Errorf("average accelerated time %0.4f, paper 0.7022", accAvg)
	}
	if math.Abs(engAvg-0.2101) > 0.07 {
		t.Errorf("average energy saving %0.4f, paper 0.2101", engAvg)
	}
}

func TestFigure15Breakdown(t *testing.T) {
	rows := Figure15(Quick())
	avg := map[sim.AccelKind]float64{}
	for _, r := range rows {
		for k, v := range r.Benefit {
			avg[k] += v / 3
		}
		if r.Total <= 0 {
			t.Errorf("%s: total accelerator benefit not positive", r.App)
		}
	}
	// Paper averages: heap 7.29%, hash 6.45%, string 4.51%, regexp 1.96%.
	checks := []struct {
		kind  sim.AccelKind
		paper float64
		tol   float64
	}{
		{sim.AccelHeapMgr, 0.0729, 0.035},
		{sim.AccelHashTable, 0.0645, 0.035},
		{sim.AccelString, 0.0451, 0.030},
		{sim.AccelRegex, 0.0196, 0.025},
	}
	for _, c := range checks {
		if math.Abs(avg[c.kind]-c.paper) > c.tol {
			t.Errorf("%v average benefit %0.4f, paper %0.4f", c.kind, avg[c.kind], c.paper)
		}
	}
	// Ordering: heap and hash are the big two; regexp the smallest.
	if avg[sim.AccelRegex] >= avg[sim.AccelHeapMgr] || avg[sim.AccelRegex] >= avg[sim.AccelHashTable] {
		t.Errorf("regexp accelerator should deliver the smallest benefit: %v", avg)
	}
}

func TestTableKeyStats(t *testing.T) {
	rows := TableKeyStats(Quick())
	for _, r := range rows {
		if r.ShortKeyFrac < 0.90 {
			t.Errorf("%s: short-key fraction %0.3f, paper ~0.95", r.App, r.ShortKeyFrac)
		}
		if r.SetRatio < 0.10 || r.SetRatio > 0.30 {
			t.Errorf("%s: SET ratio %0.3f, paper 0.15-0.25", r.App, r.SetRatio)
		}
	}
}

func TestTableMicroOps(t *testing.T) {
	for _, r := range TableMicroOps() {
		if math.Abs(r.ModelVal-r.PaperVal) > r.PaperVal*0.2 {
			t.Errorf("%s: model %0.2f, paper %0.2f", r.Name, r.ModelVal, r.PaperVal)
		}
	}
}

func TestTableBranchMPKI(t *testing.T) {
	rows := TableBranchMPKI(QuickUarch())
	for _, r := range rows {
		tol := 4.5
		if r.Workload == "spec" {
			tol = 2.5
		}
		if math.Abs(r.MPKI-r.PaperMPKI) > tol {
			t.Errorf("%s MPKI %0.2f, paper %0.2f", r.Workload, r.MPKI, r.PaperMPKI)
		}
	}
}

func TestFigure2aShape(t *testing.T) {
	rows := Figure2a(QuickUarch())
	// For each I-cache size, time must fall (weakly) as the BTB grows.
	byIC := map[int][]Fig2aRow{}
	for _, r := range rows {
		byIC[r.L1ISize] = append(byIC[r.L1ISize], r)
	}
	for ic, series := range byIC {
		for i := 1; i < len(series); i++ {
			if series[i].NormTime > series[i-1].NormTime*1.005 {
				t.Errorf("I$=%d: time rose with BTB growth: %+v", ic, series)
			}
		}
		last := series[len(series)-1]
		// Paper: even 64K entries only reaches ~95.85% hit rate.
		if last.BTBEntries == 65536 && (last.BTBHitRate < 0.90 || last.BTBHitRate > 0.995) {
			t.Errorf("I$=%d: 64K-entry BTB hit rate %0.4f, paper ~0.9585", ic, last.BTBHitRate)
		}
	}
}

func TestFigure2bCachesHealthy(t *testing.T) {
	rows := Figure2b(QuickUarch())
	for _, r := range rows {
		// Paper: L1 behaviour typical of SPEC-like workloads; L2 MPKI very
		// low because L1 filters most references.
		if r.L1IMPKI > 25 {
			t.Errorf("%s: L1I MPKI %0.2f implausibly high", r.Workload, r.L1IMPKI)
		}
		if r.L2MPKI > r.L1DMPKI+r.L1IMPKI {
			t.Errorf("%s: L2 MPKI should be filtered by L1: %+v", r.Workload, r)
		}
	}
}

func TestFigure2cShape(t *testing.T) {
	rows := Figure2c(QuickUarch())
	if len(rows) != 4 {
		t.Fatalf("Figure2c rows = %d", len(rows))
	}
	if rows[1].NormTime >= rows[0].NormTime {
		t.Errorf("OoO should beat in-order")
	}
	if rows[2].NormTime >= rows[1].NormTime {
		t.Errorf("4-wide should beat 2-wide")
	}
	gain := (rows[2].NormTime - rows[3].NormTime) / rows[2].NormTime
	if gain < 0 || gain > 0.06 {
		t.Errorf("8-wide gain %0.3f, paper <3%%", gain)
	}
}

func TestTableIndirectPredictor(t *testing.T) {
	rows := TableIndirectPredictor(QuickUarch())
	for _, r := range rows {
		if r.IndirectPerKI <= 0 {
			t.Errorf("%s: no indirect dispatch in stream", r.Workload)
		}
		if r.ITTAGEMissRate >= r.BTBMissRate {
			t.Errorf("%s: ITTAGE should beat the BTB on dispatch: %0.3f vs %0.3f",
				r.Workload, r.ITTAGEMissRate, r.BTBMissRate)
		}
		if r.BubblePKIAfter > r.BubblePKIBefore {
			t.Errorf("%s: bubbles increased with ITTAGE", r.Workload)
		}
		if r.RASMissRate > 0.25 {
			t.Errorf("%s: RAS mispredict rate %0.3f implausible", r.Workload, r.RASMissRate)
		}
	}
}

func TestTableGeneralization(t *testing.T) {
	rows := TableGeneralization(Quick())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AcceleratedTime >= r.MitigatedTime {
			t.Errorf("%s: accelerators should help framework workloads too: %+v", r.App, r)
		}
		if r.RelativeGain < 0.05 || r.RelativeGain > 0.45 {
			t.Errorf("%s: relative gain %0.3f out of plausible band", r.App, r.RelativeGain)
		}
	}
}
