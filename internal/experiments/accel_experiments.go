package experiments

import (
	"repro/internal/core/hashtable"
	"repro/internal/heap"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// --- Figure 7: hardware hash table hit rate vs. capacity ---

// Fig7Row is one hash table size's hit behaviour across the PHP apps.
type Fig7Row struct {
	Entries    int
	GetHitRate float64 // GETs served in hardware (SETs never miss)
	Gets       int64
	Sets       int64
}

// Figure7 reproduces Fig. 7: even small tables show decent rates because
// SETs never miss; 256 entries reach about 80% on GETs.
func Figure7(opt Options) []Fig7Row {
	sizes := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	var out []Fig7Row
	for _, n := range sizes {
		feats := isa.AllAccelerators()
		feats.HTConfig.Entries = n
		if feats.HTConfig.ProbeWindow > n {
			feats.HTConfig.ProbeWindow = n
		}
		var gets, hits, sets int64
		for _, app := range PHPApps {
			rt := vm.New(vm.Config{Features: feats, Mitigations: sim.AllMitigations(), TraceCapacity: -1})
			a, _ := workload.ByName(app, opt.Seed)
			lg := workload.LoadGenerator{Warmup: opt.Warmup, Requests: opt.Requests, ContextSwitchEvery: 64}
			lg.Run(rt, a)
			st := rt.CPU().HT.Stats()
			gets += st.Gets
			hits += st.GetHits
			sets += st.Sets
		}
		rate := 0.0
		if gets > 0 {
			rate = float64(hits) / float64(gets)
		}
		out = append(out, Fig7Row{Entries: n, GetHitRate: rate, Gets: gets, Sets: sets})
	}
	return out
}

// --- Figure 8: memory usage pattern ---

// Fig8aRow is the cumulative allocation fraction per slab class.
type Fig8aRow struct {
	App        string
	ClassSizes []int
	Cumulative []float64
}

// Figure8a reproduces Fig. 8a: the cumulative distribution of memory
// allocations over slab sizes — requests of at most 128 bytes dominate.
func Figure8a(opt Options) []Fig8aRow {
	var out []Fig8aRow
	for _, app := range PHPApps {
		rt, _ := run(app, opt, true, false)
		frac := rt.CPU().Alloc.CumulativeSmallFraction()
		sizes := make([]int, len(frac))
		for c := range frac {
			sizes[c] = heap.ClassSize(c)
		}
		out = append(out, Fig8aRow{App: app, ClassSizes: sizes, Cumulative: frac})
	}
	return out
}

// Fig8bcSeries is the live-memory timeline per slab band for one app.
type Fig8bcSeries struct {
	App   string
	Ops   []int64
	Bands [5][]int64 // 0-32, 32-64, 64-96, 96-128, >128 bytes
}

// Figure8bc reproduces Figs. 8b/8c: live bytes per small slab band over
// the course of execution — flat lines demonstrate strong memory reuse.
func Figure8bc(opt Options, apps ...string) []Fig8bcSeries {
	if len(apps) == 0 {
		apps = []string{"wordpress", "mediawiki"}
	}
	var out []Fig8bcSeries
	for _, app := range apps {
		rt, _ := run(app, opt, true, false)
		tl := rt.CPU().Alloc.Timeline()
		s := Fig8bcSeries{App: app}
		for _, p := range tl {
			s.Ops = append(s.Ops, p.Op)
			for b := 0; b < 5; b++ {
				s.Bands[b] = append(s.Bands[b], p.Bands[b])
			}
		}
		out = append(out, s)
	}
	return out
}

// --- Figure 12: content sifting / reuse opportunity ---

// Fig12Row is the fraction of presented content the regexp accelerator
// skipped for one app.
type Fig12Row struct {
	App           string
	SiftFraction  float64
	ReuseFraction float64
	TotalFraction float64
}

// Figure12 reproduces Fig. 12: the percentage of textual content regexps
// skip through content sifting and content reuse.
func Figure12(opt Options) []Fig12Row {
	var out []Fig12Row
	for _, app := range PHPApps {
		rt, _ := run(app, opt, true, true)
		st := rt.CPU().RA.Stats()
		var sift, reuse float64
		if st.BytesPresented > 0 {
			sift = float64(st.BytesSkippedSift) / float64(st.BytesPresented)
			reuse = float64(st.BytesSkippedReuse) / float64(st.BytesPresented)
		}
		out = append(out, Fig12Row{App: app, SiftFraction: sift, ReuseFraction: reuse, TotalFraction: sift + reuse})
	}
	return out
}

// --- Figures 14 and 15: the headline results ---

// Fig14Row is one application's normalized execution time and energy.
type Fig14Row struct {
	App string
	// Execution time normalized to unmodified HHVM (baseline = 1.0).
	MitigatedTime   float64 // prior research proposals applied (§3)
	AcceleratedTime float64 // plus the four accelerators
	// Improvement of the accelerators relative to the mitigated build
	// ("even more prominent as future server processors incorporate the
	// prior optimizations").
	RelativeGain float64
	// Energy of the accelerated build relative to the mitigated build
	// (the paper's energy savings are quoted on top of the prior
	// proposals' savings).
	EnergySaving float64
}

// Figure14 reproduces Fig. 14: execution time normalized to unmodified
// HHVM for the mitigated and accelerated configurations, plus the energy
// savings (paper: 88.15% and 70.22% average times; 21.01% energy).
func Figure14(opt Options) []Fig14Row {
	var out []Fig14Row
	for _, app := range PHPApps {
		_, base := run(app, opt, false, false)
		_, mit := run(app, opt, true, false)
		_, acc := run(app, opt, true, true)
		row := Fig14Row{
			App:             app,
			MitigatedTime:   mit.Cycles / base.Cycles,
			AcceleratedTime: acc.Cycles / base.Cycles,
			RelativeGain:    1 - acc.Cycles/mit.Cycles,
			EnergySaving:    1 - acc.EnergyPJ/mit.EnergyPJ,
		}
		out = append(out, row)
	}
	return out
}

// Fig15Row is one application's per-accelerator benefit breakdown.
type Fig15Row struct {
	App string
	// Benefit is the execution time saved by each accelerator alone,
	// as a fraction of the mitigated build's time.
	Benefit map[sim.AccelKind]float64
	Total   float64 // all four together
}

// Figure15 reproduces Fig. 15's breakdown: the hardware heap manager
// delivers the biggest benefit (7.29% average), then the hash table
// (6.45%), string accelerator (4.51%), and regexp accelerator (1.96%).
func Figure15(opt Options) []Fig15Row {
	single := []struct {
		kind sim.AccelKind
		mk   func() isa.Features
	}{
		{sim.AccelHashTable, func() isa.Features {
			return isa.Features{HashTable: true, HTConfig: hashtable.DefaultConfig()}
		}},
		{sim.AccelHeapMgr, func() isa.Features {
			f := isa.AllAccelerators()
			return isa.Features{HeapManager: true, HMConfig: f.HMConfig}
		}},
		{sim.AccelString, func() isa.Features {
			f := isa.AllAccelerators()
			return isa.Features{StringAccel: true, SAConfig: f.SAConfig}
		}},
		{sim.AccelRegex, func() isa.Features {
			f := isa.AllAccelerators()
			// Content sifting needs the string accelerator's HV rows, as
			// in the paper; include it but attribute the combined gain.
			return isa.Features{RegexAccel: true, StringAccel: true, SAConfig: f.SAConfig, RAConfig: f.RAConfig}
		}},
	}
	var out []Fig15Row
	for _, app := range PHPApps {
		_, mit := run(app, opt, true, false)
		row := Fig15Row{App: app, Benefit: map[sim.AccelKind]float64{}}
		for _, s := range single {
			rt := vm.New(vm.Config{Features: s.mk(), Mitigations: sim.AllMitigations(), TraceCapacity: -1})
			a, _ := workload.ByName(app, opt.Seed)
			lg := workload.LoadGenerator{Warmup: opt.Warmup, Requests: opt.Requests, ContextSwitchEvery: 64}
			res := lg.Run(rt, a)
			gain := 1 - res.Cycles/mit.Cycles
			if s.kind == sim.AccelRegex {
				// Subtract the string accelerator's standalone share so the
				// regexp bar reflects sifting/reuse alone.
				gain -= row.Benefit[sim.AccelString]
			}
			row.Benefit[s.kind] = gain
		}
		_, acc := run(app, opt, true, true)
		row.Total = 1 - acc.Cycles/mit.Cycles
		out = append(out, row)
	}
	return out
}

// --- Text-table experiments ---

// KeyStatsRow is the §4.2 key statistics for one app.
type KeyStatsRow struct {
	App          string
	ShortKeyFrac float64 // keys <= 24 bytes (paper: ~95%)
	SetRatio     float64 // SET share of hash requests (paper: 15-25%)
	DynamicFrac  float64
}

// TableKeyStats verifies the workload exhibits the paper's §4.2 key
// observations.
func TableKeyStats(opt Options) []KeyStatsRow {
	var out []KeyStatsRow
	for _, app := range PHPApps {
		_, res := run(app, opt, true, true)
		out = append(out, KeyStatsRow{
			App:          app,
			ShortKeyFrac: res.Keys.ShortKeyFrac(),
			SetRatio:     res.Keys.SetRatio(),
			DynamicFrac:  res.Keys.DynamicFrac(),
		})
	}
	return out
}

// MicroOpsRow reports the §5.2 software-path micro-op costs.
type MicroOpsRow struct {
	Name     string
	PaperVal float64
	ModelVal float64
}

// TableMicroOps reports the modeled software costs against the paper's
// measurements (malloc 69, free 37, hash walk 90.66 micro-ops).
func TableMicroOps() []MicroOpsRow {
	m := sim.DefaultCostModel()
	return []MicroOpsRow{
		{Name: "malloc uops", PaperVal: 69, ModelVal: m.MallocUops},
		{Name: "free uops", PaperVal: 37, ModelVal: m.FreeUops},
		{Name: "hash walk uops (typical)", PaperVal: 90.66, ModelVal: m.HashWalkCost(2, 12)},
	}
}

// --- Extension: the conclusion's generalization claim ---

// GeneralizationRow is one framework workload's accelerated improvement.
type GeneralizationRow struct {
	App             string
	MitigatedTime   float64
	AcceleratedTime float64
	RelativeGain    float64
}

// TableGeneralization exercises the paper's conclusion: the behavioral
// characteristics (and therefore the accelerator gains) extend beyond the
// three studied applications to other PHP frameworks (Laravel, Symfony,
// Yii, Phalcon, ...).
func TableGeneralization(opt Options) []GeneralizationRow {
	var out []GeneralizationRow
	for _, app := range []string{"laravel", "symfony"} {
		_, base := run(app, opt, false, false)
		_, mit := run(app, opt, true, false)
		_, acc := run(app, opt, true, true)
		out = append(out, GeneralizationRow{
			App:             app,
			MitigatedTime:   mit.Cycles / base.Cycles,
			AcceleratedTime: acc.Cycles / base.Cycles,
			RelativeGain:    1 - acc.Cycles/mit.Cycles,
		})
	}
	return out
}
