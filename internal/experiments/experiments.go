// Package experiments contains one driver per table and figure in the
// paper's evaluation. Each driver returns typed rows; cmd/figures renders
// them as text, bench_test.go wraps them as benchmarks, and EXPERIMENTS.md
// records paper-versus-measured values.
package experiments

import (
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Options sizes an experiment run.
type Options struct {
	Seed     int64
	Warmup   int
	Requests int
}

// Quick returns options sized for tests and iterative work.
func Quick() Options { return Options{Seed: 1, Warmup: 40, Requests: 60} }

// Full returns options matching the paper's methodology scale
// (oss-performance: 300 warmup requests, then a measured window).
func Full() Options { return Options{Seed: 1, Warmup: 300, Requests: 200} }

// PHPApps lists the three studied applications in paper order.
var PHPApps = []string{"wordpress", "drupal", "mediawiki"}

// runtimeFor builds a Runtime for one of the three evaluation configs.
func runtimeFor(mit bool, accel bool) *vm.Runtime {
	cfg := vm.Config{TraceCapacity: 0, HeapSampleEvery: 256}
	if mit {
		cfg.Mitigations = sim.AllMitigations()
	}
	if accel {
		cfg.Features = isa.AllAccelerators()
	}
	return vm.New(cfg)
}

func run(app string, opt Options, mit, accel bool) (*vm.Runtime, workload.Result) {
	rt := runtimeFor(mit, accel)
	a, err := workload.ByName(app, opt.Seed)
	if err != nil {
		panic(err)
	}
	lg := workload.LoadGenerator{Warmup: opt.Warmup, Requests: opt.Requests, ContextSwitchEvery: 64}
	return rt, lg.Run(rt, a)
}

// --- Figure 1: cycle distribution over leaf functions ---

// Fig1Series is one workload's cumulative leaf-function distribution.
type Fig1Series struct {
	App          string
	HottestFrac  float64
	FuncsFor65   int
	NumFunctions int
	Xs           []int     // hottest-N function counts
	CDF          []float64 // cumulative cycle fraction at each X
}

// Figure1 reproduces Fig. 1: the flat profiles of the PHP applications
// against the hotspotted SPECWeb2005 workloads.
func Figure1(opt Options) []Fig1Series {
	apps := append(append([]string{}, PHPApps...), "specweb-banking", "specweb-ecommerce")
	xs := []int{1, 6, 11, 16, 21, 26, 31, 41, 51, 61, 81, 101, 126, 151}
	var out []Fig1Series
	for _, app := range apps {
		rt, _ := run(app, opt, false, false)
		p := profile.FromMeter(rt.Meter())
		out = append(out, Fig1Series{
			App:          app,
			HottestFrac:  p.HottestFrac(),
			FuncsFor65:   p.FuncsForFrac(0.65),
			NumFunctions: p.NumFunctions(),
			Xs:           xs,
			CDF:          p.CDF(xs),
		})
	}
	return out
}

// --- Figures 3 and 4: mitigation effect and categorization ---

// Fig3Row is one leaf function's share before and after the §3
// mitigations.
type Fig3Row struct {
	Name      string
	Category  sim.Category
	BeforePct float64
	AfterPct  float64
}

// Figure3 reproduces Fig. 3 for WordPress: applying the prior-work
// optimizations shrinks the mitigated functions and raises everyone
// else's share.
func Figure3(opt Options) []Fig3Row {
	before, _ := run("wordpress", opt, false, false)
	after, _ := run("wordpress", opt, true, false)
	diffs := profile.Diff(profile.FromMeter(before.Meter()), profile.FromMeter(after.Meter()))
	out := make([]Fig3Row, 0, 40)
	for _, d := range diffs[:min(40, len(diffs))] {
		out = append(out, Fig3Row{
			Name:      d.Name,
			Category:  d.Category,
			BeforePct: 100 * d.BeforeFrac,
			AfterPct:  100 * d.AfterFrac,
		})
	}
	return out
}

// Fig4Row is one post-mitigation leaf function with its category color.
type Fig4Row struct {
	Name     string
	Category sim.Category
	Pct      float64
}

// Figure4 reproduces Fig. 4: the hottest WordPress leaf functions after
// mitigation, colored by the four target categories.
func Figure4(opt Options) []Fig4Row {
	rt, _ := run("wordpress", opt, true, false)
	p := profile.FromMeter(rt.Meter())
	var out []Fig4Row
	for _, e := range p.TopN(40) {
		out = append(out, Fig4Row{Name: e.Name, Category: e.Category, Pct: 100 * e.Frac})
	}
	return out
}

// --- Figure 5: post-mitigation execution time breakdown ---

// Fig5Row is one application's category breakdown.
type Fig5Row struct {
	App    string
	Shares map[sim.Category]float64 // fractions of total cycles
}

// Figure5 reproduces Fig. 5: execution time breakdown after mitigating
// the abstraction overheads.
func Figure5(opt Options) []Fig5Row {
	var out []Fig5Row
	for _, app := range PHPApps {
		rt, _ := run(app, opt, true, false)
		p := profile.FromMeter(rt.Meter())
		out = append(out, Fig5Row{App: app, Shares: p.CategoryShares()})
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
