package vm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hashmap"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
)

func swRuntime() *Runtime {
	return New(Config{})
}

func hwRuntime() *Runtime {
	return New(Config{Features: isa.AllAccelerators(), Mitigations: sim.AllMitigations()})
}

func TestArrayLifecycle(t *testing.T) {
	r := hwRuntime()
	a := r.NewArray("f")
	r.ASet("f", a, hashmap.StrKey("k"), []byte("v"), true)
	if v, ok := r.AGet("f", a, hashmap.StrKey("k"), true); !ok || string(v.([]byte)) != "v" {
		t.Errorf("AGet = %v %v", v, ok)
	}
	if !r.ADelete("f", a, hashmap.StrKey("k")) {
		// With the hardware hash table a silent SET lives only in hardware;
		// Delete still must make it unobservable.
		if _, ok := r.AGet("f", a, hashmap.StrKey("k"), true); ok {
			t.Errorf("deleted key visible")
		}
	}
	r.FreeArray("f", a)
}

func TestFreeArrayPanicsOnDoubleFree(t *testing.T) {
	r := swRuntime()
	a := r.NewArray("f")
	r.FreeArray("f", a)
	defer func() {
		if recover() == nil {
			t.Errorf("double FreeArray should panic")
		}
	}()
	r.FreeArray("f", a)
}

func TestExtractImportsAllPairs(t *testing.T) {
	r := hwRuntime()
	src := r.NewArray("f")
	dst := r.NewArray("f")
	for i := 0; i < 10; i++ {
		r.ASet("f", src, hashmap.StrKey(fmt.Sprintf("var%d", i)), i, false)
	}
	if n := r.Extract("extract", dst, src); n != 10 {
		t.Fatalf("Extract moved %d pairs", n)
	}
	var order []string
	r.AForeach("f", dst, func(k hashmap.Key, v interface{}) bool {
		order = append(order, k.Str)
		return true
	})
	if len(order) != 10 || order[0] != "var0" || order[9] != "var9" {
		t.Errorf("extract order wrong: %v", order)
	}
}

func TestStrLifecycle(t *testing.T) {
	r := hwRuntime()
	s := r.NewStr("f", []byte("hello"))
	if s.Len() != 5 || string(s.Bytes()) != "hello" {
		t.Errorf("Str accessors wrong")
	}
	r.FreeStr("f", s)
	defer func() {
		if recover() == nil {
			t.Errorf("double FreeStr should panic")
		}
	}()
	r.FreeStr("f", s)
}

func TestRegexManagerCaches(t *testing.T) {
	r := hwRuntime()
	re1 := r.MustRegex("f", `<[a-z]+>`)
	re2 := r.MustRegex("f", `<[a-z]+>`)
	if re1 != re2 {
		t.Errorf("regex manager should return the cached FSM")
	}
	// Compilation charged once.
	var compiles int64
	for _, f := range r.Meter().Functions() {
		if f.Name == "pcre_compile" {
			compiles = f.Calls
		}
	}
	if compiles != 1 {
		t.Errorf("pcre_compile calls = %d, want 1", compiles)
	}
}

func TestOutputBuffer(t *testing.T) {
	r := swRuntime()
	ob := r.NewOutputBuffer("render")
	ob.WriteString("<html>")
	ob.Write([]byte("body"))
	ob.WriteString("</html>")
	if string(ob.Bytes()) != "<html>body</html>" || ob.Len() != 17 {
		t.Errorf("buffer = %q", ob.Bytes())
	}
	if r.Meter().TotalUops() == 0 {
		t.Errorf("buffer writes must be charged")
	}
}

func TestBuildTagEquivalence(t *testing.T) {
	build := func(r *Runtime) string {
		attrs := r.NewArray("f")
		r.ASet("f", attrs, hashmap.StrKey("href"), []byte(`/page?a=1&b=2`), false)
		r.ASet("f", attrs, hashmap.StrKey("title"), []byte(`say "hi"`), false)
		out := r.BuildTag("f", "a", attrs, []byte("link"))
		r.FreeArray("f", attrs)
		return string(out)
	}
	sw := build(swRuntime())
	hw := build(hwRuntime())
	want := `<a href="/page?a=1&amp;b=2" title="say &quot;hi&quot;">link</a>`
	if sw != want {
		t.Errorf("software tag = %q, want %q", sw, want)
	}
	if sw != hw {
		t.Errorf("accelerated tag differs:\n sw %q\n hw %q", sw, hw)
	}
}

func TestChainEquivalenceModuloPadding(t *testing.T) {
	steps := []ChainStep{
		{Pattern: `'`, Repl: "&#039;"},
		{Pattern: `"`, Repl: "&quot;"},
		{Pattern: "\n", Repl: "<br/>"},
		{Pattern: `<`, Repl: "&lt;"},
	}
	content := []byte("it's a \"test\"\nwith " + strings.Repeat("filler text ", 30) + "'ends'")

	apply := func(r *Runtime) (string, int) {
		ch, err := r.NewChain("wptexturize", steps)
		if err != nil {
			t.Fatal(err)
		}
		out, n := ch.Apply("wptexturize", content)
		return string(out), n
	}
	swOut, swN := apply(swRuntime())
	hwOut, hwN := apply(hwRuntime())
	if swN != hwN {
		t.Errorf("replacement counts differ: %d vs %d", swN, hwN)
	}
	norm := func(s string) string { return strings.ReplaceAll(s, " ", "") }
	if norm(swOut) != norm(hwOut) {
		t.Errorf("chain output differs beyond padding:\n sw %q\n hw %q", swOut, hwOut)
	}
}

func TestChainPropertyEquivalence(t *testing.T) {
	// Chain steps must be padding-insensitive (see Chain doc); the Fig. 11
	// set of single special characters is the canonical example.
	steps := []ChainStep{
		{Pattern: `'`, Repl: "&#039;"},
		{Pattern: `&`, Repl: "&amp;"},
		{Pattern: `<`, Repl: "&lt;"},
	}
	f := func(seed int64) bool {
		content := genText(seed, 500)
		sw, swN := func() ([]byte, int) {
			r := swRuntime()
			ch, _ := r.NewChain("f", steps)
			return ch.Apply("f", append([]byte(nil), content...))
		}()
		hw, hwN := func() ([]byte, int) {
			r := hwRuntime()
			ch, _ := r.NewChain("f", steps)
			return ch.Apply("f", append([]byte(nil), content...))
		}()
		if swN != hwN {
			return false
		}
		return strings.ReplaceAll(string(sw), " ", "") == strings.ReplaceAll(string(hw), " ", "")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// genText produces deterministic HTML-flavored text.
func genText(seed int64, n int) []byte {
	state := uint64(seed)*2654435761 + 1
	next := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % m
	}
	specials := []byte(`'"<>&`)
	out := make([]byte, n)
	for i := range out {
		if next(15) == 0 {
			out[i] = specials[next(len(specials))]
		} else {
			out[i] = byte('a' + next(26))
		}
	}
	return out
}

func TestScanURLEquivalence(t *testing.T) {
	pattern := `https://[a-z]+/\?author=[a-z0-9]+`
	for i := 0; i < 20; i++ {
		url := []byte(fmt.Sprintf("https://localhost/?author=user%d", i))
		sw := swRuntime()
		hw := hwRuntime()
		swEnd := sw.ScanURL("f", sw.MustRegex("f", pattern), 7, url)
		hwEnd := hw.ScanURL("f", hw.MustRegex("f", pattern), 7, url)
		if swEnd != hwEnd {
			t.Errorf("url %d: sw %d hw %d", i, swEnd, hwEnd)
		}
	}
}

func TestTraceRecording(t *testing.T) {
	r := New(Config{TraceCapacity: 0})
	r.BeginRequest()
	a := r.NewArray("f")
	r.ASet("f", a, hashmap.StrKey("k"), 1, true)
	r.AGet("f", a, hashmap.StrKey("k"), true)
	r.EscapeHTML("f", []byte("<x>"))
	ev := r.Trace().Events()
	kinds := map[trace.Kind]int{}
	for _, e := range ev {
		kinds[e.Kind]++
	}
	if kinds[trace.KindRequest] != 1 || kinds[trace.KindHashSet] != 1 ||
		kinds[trace.KindHashGet] != 1 || kinds[trace.KindStringOp] != 1 ||
		kinds[trace.KindAlloc] == 0 {
		t.Errorf("trace kinds = %v", kinds)
	}
}

// TestRegexCacheLookupTraced is the regression test for regex manager
// cache hits bypassing the trace: both the miss (compile) and the hit
// must record the dynamic-key hash access attributed to the manager.
func TestRegexCacheLookupTraced(t *testing.T) {
	r := New(Config{TraceCapacity: 0})
	pattern := `<[a-z]+>`
	r.MustRegex("f", pattern) // miss: get + compile + set
	r.MustRegex("f", pattern) // hit: get only
	var gets, sets int
	for _, e := range r.Trace().Events() {
		if e.Fn != "regex_cache_lookup" {
			continue
		}
		if e.C != 1 {
			t.Errorf("regex manager access not marked dynamic: %+v", e)
		}
		if e.B != uint64(len(pattern)) {
			t.Errorf("key length %d, want %d", e.B, len(pattern))
		}
		switch e.Kind {
		case trace.KindHashGet:
			gets++
		case trace.KindHashSet:
			sets++
		}
	}
	if gets != 2 || sets != 1 {
		t.Errorf("regex manager trace: %d gets, %d sets; want 2 gets (miss+hit), 1 set", gets, sets)
	}
}

func TestTracingDisabled(t *testing.T) {
	r := New(Config{TraceCapacity: -1})
	if r.Trace() != nil {
		t.Errorf("TraceCapacity -1 should disable tracing")
	}
	r.BeginRequest() // must not panic
}

func TestStringWrappersEquivalent(t *testing.T) {
	subject := []byte("  The <b>Quick</b> fox's \"day\"  ")
	ops := func(r *Runtime) string {
		var sb strings.Builder
		sb.Write(r.EscapeHTML("f", subject))
		sb.Write(r.ToUpper("f", subject))
		sb.Write(r.ToLower("f", subject))
		sb.Write(r.Trim("f", subject))
		sb.Write(r.Replace("f", subject, []byte("fox"), []byte("wolf")))
		sb.Write(r.Translate("f", subject, []byte("aeiou"), []byte("AEIOU")))
		fmt.Fprint(&sb, r.Find("f", subject, []byte("Quick")))
		fmt.Fprint(&sb, r.Compare("f", subject, []byte("zzz")))
		sb.Write(r.Concat("f", subject, []byte("|end")))
		return sb.String()
	}
	if ops(swRuntime()) != ops(hwRuntime()) {
		t.Errorf("string wrapper results differ between cores")
	}
}

func TestContextSwitchPreservesState(t *testing.T) {
	r := hwRuntime()
	a := r.NewArray("f")
	r.ASet("f", a, hashmap.StrKey("persist"), 42, true)
	r.ContextSwitch()
	if v, ok := r.AGet("f", a, hashmap.StrKey("persist"), true); !ok || v != 42 {
		t.Errorf("value lost across context switch: %v %v", v, ok)
	}
}

func TestRemoteCoherenceScenario(t *testing.T) {
	// A worker caches silent SETs in the hardware hash table; a remote
	// core's access forces a flush; direct software reads (the remote
	// core's view) must observe every pair, and the worker keeps going.
	r := hwRuntime()
	a := r.NewArray("f")
	for i := 0; i < 12; i++ {
		r.ASet("f", a, hashmap.StrKey(fmt.Sprintf("shared%d", i)), i, true)
	}
	// Remote view before coherence: the silent SETs are not in memory.
	// (Not asserted — some may have been written back by evictions.)
	r.RemoteTouch("remote_reader", a)
	for i := 0; i < 12; i++ {
		v, ok := a.Map().Get(hashmap.StrKey(fmt.Sprintf("shared%d", i)))
		if !ok || v != i {
			t.Fatalf("remote reader missed shared%d: %v %v", i, v, ok)
		}
	}
	// The worker continues through the accelerator unharmed.
	r.ASet("f", a, hashmap.StrKey("after"), 99, true)
	if v, ok := r.AGet("f", a, hashmap.StrKey("after"), true); !ok || v != 99 {
		t.Errorf("worker broken after coherence event: %v %v", v, ok)
	}
	r.FreeArray("f", a)
}

func TestRemoteCoherenceNoAccelIsNoop(t *testing.T) {
	r := swRuntime()
	a := r.NewArray("f")
	r.ASet("f", a, hashmap.StrKey("k"), 1, true)
	r.RemoteTouch("remote_reader", a) // must not panic without hardware
	if v, ok := r.AGet("f", a, hashmap.StrKey("k"), true); !ok || v != 1 {
		t.Errorf("software map affected by remote touch: %v %v", v, ok)
	}
}

// TestRegexNegativeCaching is the regression test for failed compiles
// bypassing the regex manager: an invalid pattern must pay pcre_compile
// once, with every later lookup a cache hit replaying the stored error.
func TestRegexNegativeCaching(t *testing.T) {
	r := New(Config{TraceCapacity: 0})
	const bad = `(unclosed`
	_, err1 := r.Regex("f", bad)
	if err1 == nil {
		t.Fatalf("pattern %q should fail to compile", bad)
	}
	lookups0, hits0 := r.RegexCacheStats()
	_, err2 := r.Regex("f", bad)
	if err2 == nil {
		t.Fatal("cached failure must still return the error")
	}
	if err2.Error() != err1.Error() {
		t.Errorf("replayed error %q differs from original %q", err2, err1)
	}
	lookups1, hits1 := r.RegexCacheStats()
	if lookups1 != lookups0+1 || hits1 != hits0+1 {
		t.Errorf("second lookup of a failed pattern must be a cache hit: lookups %d->%d, hits %d->%d",
			lookups0, lookups1, hits0, hits1)
	}
	// The trace shows exactly one manager store (the cached failure) and
	// two probes — the second lookup never re-entered the compiler.
	var gets, sets int
	for _, e := range r.Trace().Events() {
		if e.Fn != "regex_cache_lookup" {
			continue
		}
		switch e.Kind {
		case trace.KindHashGet:
			gets++
		case trace.KindHashSet:
			sets++
		}
	}
	if gets != 2 || sets != 1 {
		t.Errorf("regex manager trace: %d gets, %d sets; want 2 gets, 1 set (error compiled once)", gets, sets)
	}
	// A valid pattern still works alongside the cached failure.
	if _, err := r.Regex("f", `<[a-z]+>`); err != nil {
		t.Errorf("valid pattern after cached failure: %v", err)
	}
}
