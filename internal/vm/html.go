package vm

import (
	"repro/internal/hashmap"
	"repro/internal/isa"
	"repro/internal/regex"
	"repro/internal/sim"
	"repro/internal/strlib"
	"repro/internal/trace"
)

// --- String function wrappers (trace-recording) ---

func (r *Runtime) recStr(fn string, op strlib.Op, n int) {
	r.record(trace.Event{Kind: trace.KindStringOp, Fn: fn, A: uint64(op), B: uint64(n)})
}

// EscapeHTML escapes HTML metacharacters (htmlspecialchars).
func (r *Runtime) EscapeHTML(fn string, content []byte) []byte {
	r.recStr(fn, strlib.OpHTMLSpecial, len(content))
	return r.cpu.StrHTMLEscape(fn, content)
}

// Find locates pattern in subject (strpos).
func (r *Runtime) Find(fn string, subject, pattern []byte) int {
	r.recStr(fn, strlib.OpFind, len(subject))
	return r.cpu.StrFind(fn, subject, pattern)
}

// Replace substitutes old with new (str_replace).
func (r *Runtime) Replace(fn string, subject, old, new []byte) []byte {
	r.recStr(fn, strlib.OpReplace, len(subject))
	return r.cpu.StrReplace(fn, subject, old, new)
}

// ToUpper upper-cases (strtoupper).
func (r *Runtime) ToUpper(fn string, subject []byte) []byte {
	r.recStr(fn, strlib.OpToUpper, len(subject))
	return r.cpu.StrToUpper(fn, subject)
}

// ToLower lower-cases (strtolower).
func (r *Runtime) ToLower(fn string, subject []byte) []byte {
	r.recStr(fn, strlib.OpToLower, len(subject))
	return r.cpu.StrToLower(fn, subject)
}

// Trim strips whitespace (trim).
func (r *Runtime) Trim(fn string, subject []byte) []byte {
	r.recStr(fn, strlib.OpTrim, len(subject))
	return r.cpu.StrTrim(fn, subject)
}

// NL2BR inserts "<br />" before newlines (nl2br).
func (r *Runtime) NL2BR(fn string, subject []byte) []byte {
	r.recStr(fn, strlib.OpNL2BR, len(subject))
	return r.cpu.StrNL2BR(fn, subject)
}

// AddSlashes backslash-escapes quotes and backslashes (addslashes).
func (r *Runtime) AddSlashes(fn string, subject []byte) []byte {
	r.recStr(fn, strlib.OpAddSlashes, len(subject))
	return r.cpu.StrAddSlashes(fn, subject)
}

// Translate maps characters (strtr).
func (r *Runtime) Translate(fn string, subject, from, to []byte) []byte {
	r.recStr(fn, strlib.OpTranslate, len(subject))
	return r.cpu.StrTranslate(fn, subject, from, to)
}

// Compare compares strings (strcmp).
func (r *Runtime) Compare(fn string, a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	r.recStr(fn, strlib.OpCompare, n)
	return r.cpu.StrCompare(fn, a, b)
}

// Concat joins byte slices (the `.` operator / implode).
func (r *Runtime) Concat(fn string, parts ...[]byte) []byte {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	r.recStr(fn, strlib.OpConcat, total)
	return r.cpu.StrConcat(fn, parts...)
}

// --- Output buffer ---

// OutputBuffer accumulates the response body (PHP's ob_* layer).
type OutputBuffer struct {
	r   *Runtime
	fn  string
	buf []byte
}

// NewOutputBuffer starts a response buffer attributed to fn.
func (r *Runtime) NewOutputBuffer(fn string) *OutputBuffer {
	return &OutputBuffer{r: r, fn: fn}
}

// Reset re-arms the buffer for a new response attributed to fn,
// retaining its capacity — the render-output recycling hook. Bytes
// returned by earlier Bytes() calls become invalid (they alias the
// buffer about to be overwritten).
func (o *OutputBuffer) Reset(fn string) {
	o.fn = fn
	o.buf = o.buf[:0]
}

// Write appends raw bytes.
func (o *OutputBuffer) Write(b []byte) {
	o.r.recStr(o.fn, strlib.OpConcat, len(b))
	o.r.cpu.Meter.AddUops(o.fn, sim.CatString, o.r.cpu.Meter.Model.StringCost(len(b)))
	o.buf = append(o.buf, b...)
}

// WriteString appends a string.
func (o *OutputBuffer) WriteString(s string) { o.Write([]byte(s)) }

// Bytes returns the accumulated response.
func (o *OutputBuffer) Bytes() []byte { return o.buf }

// Len returns the buffered length.
func (o *OutputBuffer) Len() int { return len(o.buf) }

// --- Tag generation ---

// BuildTag renders an HTML tag with escaped attribute values pulled from
// attrs in insertion order — the "retrieve attribute values, store them
// in string objects, concatenate" pattern behind the heap manager's
// strong memory reuse observation (§4.3).
func (r *Runtime) BuildTag(fn string, name string, attrs *Array, body []byte) []byte {
	r.spans.Begin("vm:build_tag")
	defer r.spans.End()
	out := r.Concat(fn, []byte("<"), []byte(name))
	r.AForeach(fn, attrs, func(k hashmap.Key, v interface{}) bool {
		vb, _ := v.([]byte)
		val := r.NewStr(fn, r.EscapeHTML(fn, vb))
		out = r.Concat(fn, out, []byte(" "), []byte(k.Str), []byte(`="`), val.Bytes(), []byte(`"`))
		r.FreeStr(fn, val)
		return true
	})
	if body == nil {
		return r.Concat(fn, out, []byte(" />"))
	}
	out = r.Concat(fn, out, []byte(">"), body, []byte("</"), []byte(name), []byte(">"))
	return out
}

// --- Regexp chains (Fig. 11) ---

// ChainStep is one regexp in a consecutive-replacement chain.
type ChainStep struct {
	Pattern string
	Repl    string
}

// Chain is a series of consecutive regexps over the same content, the
// structure the VM's function-level dataflow analysis discovers to enable
// content sifting (§4.5): the first regexp is the sieve, the rest are
// shadows.
//
// The whitespace-padding realignment assumes — exactly as the paper does
// when invoking the HTML specification — that the chain's patterns are
// insensitive to inserted linear whitespace. Single-special-character
// patterns like the Fig. 11 set (apostrophe, double quote, newline,
// opening angle bracket) satisfy this trivially; a pattern that must
// match a multi-character run without intervening spaces (for example
// `<[a-z]+>`) is not eligible for a replacement chain and should be run
// through RegexShadow as a scan instead.
type Chain struct {
	r     *Runtime
	steps []ChainStep
	res   []*regex.Regex
	repl  [][]byte // replacement bytes, converted once at build time
}

// NewChain compiles a chain through the regexp manager.
func (r *Runtime) NewChain(fn string, steps []ChainStep) (*Chain, error) {
	return r.RefreshChain(nil, fn, steps)
}

// RefreshChain is NewChain reusing a previously built chain's structure:
// the regexp-manager lookups (and their simulated cost) run exactly as
// in NewChain, but the Go-side slices are rebuilt in place. Passing nil
// builds a fresh chain. A caller that re-derives the same chain every
// request — the dataflow analysis runs per invocation even though its
// result is stable — keeps one Chain per runtime and refreshes it.
func (r *Runtime) RefreshChain(c *Chain, fn string, steps []ChainStep) (*Chain, error) {
	if c == nil {
		c = &Chain{}
	}
	c.r = r
	c.steps = steps
	c.res = c.res[:0]
	sameRepl := len(c.repl) == len(steps)
	for i, s := range steps {
		re, err := r.Regex(fn, s.Pattern)
		if err != nil {
			return nil, err
		}
		c.res = append(c.res, re)
		if sameRepl && string(c.repl[i]) != s.Repl {
			sameRepl = false
		}
	}
	if !sameRepl {
		c.repl = c.repl[:0]
		for _, s := range steps {
			c.repl = append(c.repl, []byte(s.Repl))
		}
	}
	return c, nil
}

// Apply runs the chain over content: the sieve scans everything and
// produces the HV; every replacement (including the sieve's own) runs as
// a shadow under the evolving HV with whitespace-padded alignment. The
// returned content equals the unaccelerated chain output modulo the
// padding the HTML specification permits. The total replacement count is
// also returned.
func (c *Chain) Apply(fn string, content []byte) ([]byte, int) {
	if len(c.res) == 0 {
		return content, 0
	}
	c.r.spans.Begin("vm:chain_apply")
	defer c.r.spans.End()
	c.r.record(trace.Event{Kind: trace.KindRegexScan, Fn: fn, B: uint64(len(content))})
	total := 0
	_, hv := c.r.cpu.RegexSieve(fn, c.res[0], content)
	for i, re := range c.res {
		var n int
		var newHV *isa.HV
		content, newHV, n = c.r.cpu.RegexShadowReplace(fn, re, content, c.repl[i], hv)
		hv = newHV
		total += n
	}
	return content, total
}

// ScanURL runs an anchored, reuse-accelerated scan of a URL-like content
// string (the Fig. 13 pattern). pc identifies the call site. It returns
// the length of the longest accepted prefix, or -1.
func (r *Runtime) ScanURL(fn string, re *regex.Regex, pc uint64, content []byte) int {
	r.record(trace.Event{Kind: trace.KindRegexScan, Fn: fn, A: pc, B: uint64(len(content))})
	return r.cpu.RegexScanReuse(fn, re, pc, content)
}
