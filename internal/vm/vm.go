// Package vm is the PHP-like runtime the workloads execute on — the Go
// stand-in for HHVM in the paper's evaluation stack. It binds the
// software substrates (dynamic values, ordered hash maps, slab heap,
// string library, regex engine) and the four accelerators behind one
// Runtime API, meters every operation through the trace-driven cost
// model, and records an operation trace.
//
// The accelerators are semantically invisible by design principle (a) of
// §4.1: a Runtime with every accelerator enabled renders byte-identical
// output to a software-only Runtime (modulo the whitespace padding that
// content sifting is explicitly allowed to insert by the HTML spec).
package vm

import (
	"repro/internal/arena"
	"repro/internal/hashmap"
	"repro/internal/heap"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/phpval"
	"repro/internal/regex"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config assembles a Runtime.
type Config struct {
	// Features selects the accelerators (zero = software-only core).
	Features isa.Features
	// Mitigations selects the §3 prior-work optimizations.
	Mitigations sim.Mitigations
	// Model is the cost model; zero value selects the default.
	Model sim.CostModel
	// TraceCapacity bounds the in-memory operation trace (0 = unbounded,
	// -1 = tracing disabled).
	TraceCapacity int
	// HeapSampleEvery sets the allocator timeline sampling period for
	// Fig. 8 (0 disables).
	HeapSampleEvery int
	// ArenaRetain bounds the request arena's chunk bytes retained across
	// BeginRequest resets (0 = retain everything; phpserve exposes it as
	// -arenacap). The arena itself is always on — it backs every string
	// result the runtime produces, mirroring PHP's request-scoped memory.
	ArenaRetain int
}

// Runtime is one simulated PHP execution context (one worker).
//
// Memory ownership: every byte slice the runtime's string operations
// return (EscapeHTML, Replace, Concat, chain Apply, ...) is carved from
// a per-request arena that BeginRequest resets. Such results are valid
// only until the owner's next BeginRequest; anything that must outlive
// the request must be copied to the ordinary heap first.
type Runtime struct {
	cpu *isa.CPU
	rec *trace.Recorder
	// mem is the request arena backing string results; reset by
	// BeginRequest.
	mem *arena.Arena
	// strFree recycles Str handles request to request (PHP's strong
	// request-scoped reuse, §4.3); FreeStr pushes, NewStr pops.
	strFree []*Str
	// arrFree recycles Array structures the same way; FreeArray pushes
	// (after the accelerator has invalidated the map), NewArray pops and
	// resets the map under a fresh identity.
	arrFree []*Array

	// spans is the current request's span-tree builder. It is non-nil
	// only while a sampled request is being served (the worker attaches
	// it before the render and detaches it after), so on the unsampled
	// path every hook costs a single nil check.
	spans *obs.TreeBuilder

	regexMgr   *hashmap.Map // the regexp manager's pattern -> FSM hash map
	requestSeq uint64

	regexLookups int64 // regexp manager cache probes
	regexHits    int64 // probes that found a compiled FSM
}

// New builds a Runtime.
func New(cfg Config) *Runtime {
	if cfg.Model.IPC == 0 {
		cfg.Model = sim.DefaultCostModel()
	}
	meter := sim.NewMeter(cfg.Model)
	meter.Mit = cfg.Mitigations
	cpu := isa.New(meter, cfg.Features, cfg.HeapSampleEvery)
	r := &Runtime{cpu: cpu, mem: arena.New(0, cfg.ArenaRetain)}
	cpu.SetMem(r.mem)
	if cfg.TraceCapacity >= 0 {
		r.rec = trace.NewRecorder(cfg.TraceCapacity)
	}
	r.regexMgr = cpu.NewMap()
	return r
}

// Arena exposes the request arena so the owning worker can carve
// request-lifetime scratch from it (same reset discipline applies).
func (r *Runtime) Arena() *arena.Arena { return r.mem }

// CPU exposes the simulated core.
func (r *Runtime) CPU() *isa.CPU { return r.cpu }

// Meter exposes the cost meter.
func (r *Runtime) Meter() *sim.Meter { return r.cpu.Meter }

// Trace returns the recorded operation trace (nil if disabled).
func (r *Runtime) Trace() *trace.Recorder { return r.rec }

// SetSpans attaches (or, with nil, detaches) the span-tree builder for
// the request about to be served. Only the worker that owns this runtime
// may call it, and only between requests.
func (r *Runtime) SetSpans(b *obs.TreeBuilder) { r.spans = b }

// Tracing reports whether a span-tree builder is attached. Callers use
// it to skip building dynamic span names (string concatenation) on the
// unsampled path.
func (r *Runtime) Tracing() bool { return r.spans != nil }

// BeginSpan opens a named span in the current request's tree. It is safe
// to call unconditionally: with no builder attached (every unsampled
// request) it is a single nil check.
func (r *Runtime) BeginSpan(name string) { r.spans.Begin(name) }

// EndSpan closes the innermost open span. A nil builder makes it a no-op.
func (r *Runtime) EndSpan() { r.spans.End() }

func (r *Runtime) record(e trace.Event) {
	if r.rec != nil {
		r.rec.Record(e)
	}
}

// BeginRequest marks a request boundary in the trace and returns its
// sequence number. It also resets the request arena: every byte slice a
// string operation returned during the previous request becomes invalid
// here (its backing memory will be handed out again).
func (r *Runtime) BeginRequest() uint64 {
	r.mem.Reset()
	r.requestSeq++
	r.record(trace.Event{Kind: trace.KindRequest, Fn: "request", A: r.requestSeq})
	return r.requestSeq
}

// ContextSwitch models preemption of this worker (accelerator flush
// protocol, §4.6).
func (r *Runtime) ContextSwitch() { r.cpu.ContextSwitch() }

// RemoteTouch models another core accessing the array's memory: the
// hardware hash table gives up its cached entries so the remote reader
// observes a coherent software map (§4.1 design principle e / §4.2).
func (r *Runtime) RemoteTouch(fn string, a *Array) {
	r.cpu.RemoteCoherence(fn, a.m)
}

// --- Arrays (PHP hash maps) ---

// Array is a PHP array handle: the ordered hash map plus its heap
// allocation.
type Array struct {
	m     *hashmap.Map
	block heap.Block
	freed bool
}

// Map exposes the underlying ordered hash map.
func (a *Array) Map() *hashmap.Map { return a.m }

// Size returns the number of live pairs.
func (a *Array) Size() int { return a.m.Size() }

// NewArray allocates a PHP array (the map structure itself comes from the
// heap, as in the VM). The structure is recycled from the runtime's free
// list when one is available: the simulated work — heap Malloc, map
// identity assignment, trace event — is identical either way, only the Go
// allocation is saved.
func (r *Runtime) NewArray(fn string) *Array {
	b := r.cpu.Malloc(fn, 96) // MixedArray header-sized allocation
	var a *Array
	if n := len(r.arrFree); n > 0 {
		a = r.arrFree[n-1]
		r.arrFree[n-1] = nil
		r.arrFree = r.arrFree[:n-1]
		r.cpu.ResetMap(a.m)
		a.block = b
		a.freed = false
	} else {
		a = &Array{m: r.cpu.NewMap(), block: b}
	}
	r.record(trace.Event{Kind: trace.KindAlloc, Fn: fn, A: b.Addr, B: uint64(b.Size)})
	return a
}

// FreeArray deallocates the array: the accelerator invalidates its
// entries through the RTT and the heap reclaims the structure. The Go
// structure goes on the runtime's free list — the *Array must not be
// used after this call (the freed flag catches double frees, and a
// recycled structure would otherwise alias a later array).
func (r *Runtime) FreeArray(fn string, a *Array) {
	if a.freed {
		panic("vm: double free of array")
	}
	a.freed = true
	r.record(trace.Event{Kind: trace.KindFree, Fn: fn, A: a.block.Addr, B: uint64(a.block.Size)})
	r.cpu.HashFree(fn, a.m)
	r.cpu.Free(fn, a.block)
	r.arrFree = append(r.arrFree, a)
}

// AGet reads a key. dynamic marks dynamic key names that software methods
// cannot specialize (§4.2).
func (r *Runtime) AGet(fn string, a *Array, k hashmap.Key, dynamic bool) (interface{}, bool) {
	v, ok := r.cpu.HashGet(fn, a.m, k, !dynamic)
	dyn := uint64(0)
	if dynamic {
		dyn = 1
	}
	r.record(trace.Event{Kind: trace.KindHashGet, Fn: fn, A: a.m.ID(), B: uint64(k.Len()), C: dyn})
	return v, ok
}

// ASet writes a key.
func (r *Runtime) ASet(fn string, a *Array, k hashmap.Key, v interface{}, dynamic bool) {
	r.cpu.HashSet(fn, a.m, k, v, !dynamic)
	dyn := uint64(0)
	if dynamic {
		dyn = 1
	}
	r.record(trace.Event{Kind: trace.KindHashSet, Fn: fn, A: a.m.ID(), B: uint64(k.Len()), C: dyn})
}

// ADelete removes a key (PHP unset).
func (r *Runtime) ADelete(fn string, a *Array, k hashmap.Key) bool {
	r.record(trace.Event{Kind: trace.KindHashDelete, Fn: fn, A: a.m.ID(), B: uint64(k.Len())})
	return r.cpu.HashDelete(fn, a.m, k)
}

// ASize returns the array's element count, flushing hardware-buffered
// inserts first so the software size field is current (PHP count() and
// array truthiness).
func (r *Runtime) ASize(fn string, a *Array) int {
	return r.cpu.HashSize(fn, a.m)
}

// AForeach iterates in insertion order (PHP foreach).
func (r *Runtime) AForeach(fn string, a *Array, f func(k hashmap.Key, v interface{}) bool) {
	r.record(trace.Event{Kind: trace.KindHashIterate, Fn: fn, A: a.m.ID()})
	r.cpu.HashForeach(fn, a.m, f)
}

// Extract implements the PHP extract command: it imports every key/value
// pair of src into the symbol table dst using dynamic key names — the
// access pattern the paper highlights as unspecializable in software.
func (r *Runtime) Extract(fn string, dst *Array, src *Array) int {
	n := 0
	r.AForeach(fn, src, func(k hashmap.Key, v interface{}) bool {
		r.ASet(fn, dst, k, v, true)
		n++
		return true
	})
	return n
}

// --- Strings (counted, heap-backed) ---

// Str is a PHP string handle: counted bytes plus the heap block backing
// them. Handles are recycled through the runtime's free list, so a
// handle is only valid between its NewStr and the matching FreeStr.
type Str struct {
	val   phpval.Str
	block heap.Block
	freed bool
}

// Bytes exposes the string contents.
func (s *Str) Bytes() []byte { return s.val.Bytes }

// Len returns the byte length.
func (s *Str) Len() int { return s.val.Len() }

// NewStr allocates a PHP string object holding b (not copied). The
// handle comes from the runtime's free list when one is available —
// the simulated Malloc charge is identical either way.
func (r *Runtime) NewStr(fn string, b []byte) *Str {
	size := len(b) + 16 // header + payload
	blk := r.cpu.Malloc(fn, size)
	r.record(trace.Event{Kind: trace.KindAlloc, Fn: fn, A: blk.Addr, B: uint64(size)})
	var s *Str
	if n := len(r.strFree); n > 0 {
		s = r.strFree[n-1]
		r.strFree = r.strFree[:n-1]
	} else {
		s = &Str{}
	}
	s.val.Reset(b)
	s.block = blk
	s.freed = false
	return s
}

// FreeStr releases a string object and recycles its handle.
func (r *Runtime) FreeStr(fn string, s *Str) {
	if s.freed {
		panic("vm: double free of string")
	}
	s.freed = true
	r.record(trace.Event{Kind: trace.KindFree, Fn: fn, A: s.block.Addr, B: uint64(s.block.Size)})
	r.cpu.Free(fn, s.block)
	r.strFree = append(r.strFree, s)
}

// --- Regex manager ---

// Regex compiles (or fetches from the regexp manager's hash map) a
// pattern. The manager shares patterns and FSM tables with other
// functions through a hash map accessed with dynamic key names (§4.2);
// that lookup is attributed to the manager itself, the compile to the
// caller. Failed compiles are cached too (negative caching): an invalid
// pattern pays pcre_compile once and its error is replayed from the
// manager afterwards, so one bad pattern in a hot path cannot defeat
// the cache.
func (r *Runtime) Regex(fn, pattern string) (*regex.Regex, error) {
	const mgrFn = "regex_cache_lookup"
	k := hashmap.StrKey(pattern)
	v, ok := r.cpu.HashGet(mgrFn, r.regexMgr, k, true)
	r.record(trace.Event{Kind: trace.KindHashGet, Fn: mgrFn, A: r.regexMgr.ID(), B: uint64(k.Len()), C: 1})
	r.regexLookups++
	if ok {
		r.regexHits++
		if err, bad := v.(error); bad {
			return nil, err
		}
		return v.(*regex.Regex), nil
	}
	r.spans.Begin("regex:compile")
	re, err := r.cpu.RegexCompile(fn, pattern)
	r.spans.End()
	if err != nil {
		r.cpu.HashSet(mgrFn, r.regexMgr, k, err, true)
		r.record(trace.Event{Kind: trace.KindHashSet, Fn: mgrFn, A: r.regexMgr.ID(), B: uint64(k.Len()), C: 1})
		return nil, err
	}
	r.cpu.HashSet(mgrFn, r.regexMgr, k, re, true)
	r.record(trace.Event{Kind: trace.KindHashSet, Fn: mgrFn, A: r.regexMgr.ID(), B: uint64(k.Len()), C: 1})
	return re, nil
}

// RegexCacheStats returns how many regexp manager cache probes this
// runtime has made and how many found an already-compiled FSM. The hit
// ratio is an observability signal: a cold or thrashing pattern cache
// shows up as repeated pcre_compile charges in the regex category.
func (r *Runtime) RegexCacheStats() (lookups, hits int64) {
	return r.regexLookups, r.regexHits
}

// MustRegex is Regex for statically known patterns.
func (r *Runtime) MustRegex(fn, pattern string) *regex.Regex {
	re, err := r.Regex(fn, pattern)
	if err != nil {
		panic(err)
	}
	return re
}
