// Package phpval models PHP's dynamic value system ("zvals"): tagged
// values with null/bool/int/float/string/array types, reference counting,
// and the run-time type checks that the paper identifies as scripting-
// language abstraction overheads (§3).
//
// Values deliberately mirror how HHVM represents data: every access to a
// dynamically-typed value implies a type check, and every copy or drop of
// a counted value implies reference-count traffic. Both are surfaced
// through the Accounting interface so the simulation can charge (or, with
// the §3 mitigations enabled, waive) their cost.
package phpval

import (
	"fmt"
	"strconv"
)

// Kind is a PHP value's dynamic type tag.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindArray
)

// String returns the PHP-facing type name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "boolean"
	case KindInt:
		return "integer"
	case KindFloat:
		return "double"
	case KindString:
		return "string"
	case KindArray:
		return "array"
	default:
		return "unknown"
	}
}

// Accounting receives type-check and reference-count events. The sim
// package's Meter satisfies it; a nil Accounting is silently ignored so
// the value system can be used standalone.
type Accounting interface {
	AddTypeCheck(n int)
	AddRefCount(n int)
}

// Str is a counted PHP string. PHP strings carry an explicit length
// (never NUL-terminated), which the paper notes makes the string
// accelerator's coherence logic straightforward (§4.4).
type Str struct {
	Bytes    []byte
	refCount int32
}

// NewStr builds a counted string from a byte slice (not copied).
func NewStr(b []byte) *Str { return &Str{Bytes: b, refCount: 1} }

// NewStrCopy builds a counted string from a Go string.
func NewStrCopy(s string) *Str { return &Str{Bytes: []byte(s), refCount: 1} }

// Reset re-initializes the string in place to hold b (not copied) with a
// fresh reference count — the recycling hook for VMs that pool string
// headers per request instead of allocating a new one per NewStr.
func (s *Str) Reset(b []byte) {
	s.Bytes = b
	s.refCount = 1
}

// Len returns the string length in bytes.
func (s *Str) Len() int { return len(s.Bytes) }

// RefCount returns the current reference count.
func (s *Str) RefCount() int32 { return s.refCount }

// Arr is the interface a PHP array implementation provides to the value
// system. The concrete implementation lives in internal/hashmap; using an
// interface here keeps the dependency arrow pointing the right way.
type Arr interface {
	// Size returns the number of live key/value pairs.
	Size() int
	// AddRef and DecRef adjust the array's reference count, returning the
	// new count.
	AddRef() int32
	DecRef() int32
}

// Value is a tagged PHP value. The zero Value is PHP null.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    *Str
	a    Arr
}

// Null returns the PHP null value.
func Null() Value { return Value{} }

// Bool wraps a boolean.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Int wraps an integer.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float wraps a float.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String wraps a counted string.
func String(s *Str) Value { return Value{kind: KindString, s: s} }

// StringOf wraps a Go string into a fresh counted string value.
func StringOf(s string) Value { return String(NewStrCopy(s)) }

// Array wraps an array.
func Array(a Arr) Value { return Value{kind: KindArray, a: a} }

// Kind returns the dynamic type tag. Reading the tag is free; acting on
// it is what costs a type check (see Check*).
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is PHP null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Counted reports whether the value holds reference-counted payload.
func (v Value) Counted() bool {
	return (v.kind == KindString && v.s != nil) || (v.kind == KindArray && v.a != nil)
}

// CheckBool performs a checked read of a boolean, charging one dynamic
// type check to acct.
func (v Value) CheckBool(acct Accounting) (bool, error) {
	charge(acct, 1)
	if v.kind != KindBool {
		return false, typeErr(KindBool, v.kind)
	}
	return v.b, nil
}

// CheckInt performs a checked read of an integer.
func (v Value) CheckInt(acct Accounting) (int64, error) {
	charge(acct, 1)
	if v.kind != KindInt {
		return 0, typeErr(KindInt, v.kind)
	}
	return v.i, nil
}

// CheckFloat performs a checked read of a float.
func (v Value) CheckFloat(acct Accounting) (float64, error) {
	charge(acct, 1)
	if v.kind != KindFloat {
		return 0, typeErr(KindFloat, v.kind)
	}
	return v.f, nil
}

// CheckString performs a checked read of a counted string.
func (v Value) CheckString(acct Accounting) (*Str, error) {
	charge(acct, 1)
	if v.kind != KindString {
		return nil, typeErr(KindString, v.kind)
	}
	return v.s, nil
}

// CheckArray performs a checked read of an array.
func (v Value) CheckArray(acct Accounting) (Arr, error) {
	charge(acct, 1)
	if v.kind != KindArray {
		return nil, typeErr(KindArray, v.kind)
	}
	return v.a, nil
}

// Copy duplicates the value, incrementing the reference count of counted
// payload and charging the refcount traffic to acct.
func (v Value) Copy(acct Accounting) Value {
	switch v.kind {
	case KindString:
		if v.s != nil {
			v.s.refCount++
			if acct != nil {
				acct.AddRefCount(1)
			}
		}
	case KindArray:
		if v.a != nil {
			v.a.AddRef()
			if acct != nil {
				acct.AddRefCount(1)
			}
		}
	}
	return v
}

// Release drops one reference from counted payload, charging the refcount
// traffic, and reports whether the payload became dead (count reached 0).
func (v Value) Release(acct Accounting) bool {
	switch v.kind {
	case KindString:
		if v.s != nil {
			if acct != nil {
				acct.AddRefCount(1)
			}
			v.s.refCount--
			return v.s.refCount <= 0
		}
	case KindArray:
		if v.a != nil {
			if acct != nil {
				acct.AddRefCount(1)
			}
			return v.a.DecRef() <= 0
		}
	}
	return false
}

// ToPHPString renders the value the way PHP string conversion does, for
// template interpolation. It charges one type check (the dispatch on the
// tag) to acct.
func (v Value) ToPHPString(acct Accounting) string {
	charge(acct, 1)
	switch v.kind {
	case KindNull:
		return ""
	case KindBool:
		if v.b {
			return "1"
		}
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'G', 14, 64)
	case KindString:
		if v.s == nil {
			return ""
		}
		return string(v.s.Bytes)
	case KindArray:
		return "Array"
	default:
		return ""
	}
}

// Equal reports deep equality for scalar values and identity for counted
// values (PHP's === on non-arrays, identity on arrays). It charges two
// type checks (one per operand).
func (v Value) Equal(o Value, acct Accounting) bool {
	charge(acct, 2)
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	case KindString:
		if v.s == nil || o.s == nil {
			return v.s == o.s
		}
		return string(v.s.Bytes) == string(o.s.Bytes)
	case KindArray:
		return v.a == o.a
	default:
		return false
	}
}

func charge(acct Accounting, n int) {
	if acct != nil {
		acct.AddTypeCheck(n)
	}
}

func typeErr(want, got Kind) error {
	return fmt.Errorf("phpval: type check failed: want %s, got %s", want, got)
}
