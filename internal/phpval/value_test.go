package phpval

import (
	"testing"
	"testing/quick"
)

// countAcct is a test double for the Accounting interface.
type countAcct struct {
	typeChecks int
	refCounts  int
}

func (c *countAcct) AddTypeCheck(n int) { c.typeChecks += n }
func (c *countAcct) AddRefCount(n int)  { c.refCounts += n }

// fakeArr is a minimal Arr implementation.
type fakeArr struct {
	size int
	refs int32
}

func (f *fakeArr) Size() int     { return f.size }
func (f *fakeArr) AddRef() int32 { f.refs++; return f.refs }
func (f *fakeArr) DecRef() int32 { f.refs--; return f.refs }

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "boolean",
		KindInt:    "integer",
		KindFloat:  "double",
		KindString: "string",
		KindArray:  "array",
		Kind(99):   "unknown",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KindNull {
		t.Errorf("zero Value should be null")
	}
	if Null() != (Value{}) {
		t.Errorf("Null() should equal zero Value")
	}
}

func TestCheckedReads(t *testing.T) {
	acct := &countAcct{}
	if b, err := Bool(true).CheckBool(acct); err != nil || !b {
		t.Errorf("CheckBool: %v %v", b, err)
	}
	if i, err := Int(42).CheckInt(acct); err != nil || i != 42 {
		t.Errorf("CheckInt: %v %v", i, err)
	}
	if f, err := Float(2.5).CheckFloat(acct); err != nil || f != 2.5 {
		t.Errorf("CheckFloat: %v %v", f, err)
	}
	if s, err := StringOf("hi").CheckString(acct); err != nil || string(s.Bytes) != "hi" {
		t.Errorf("CheckString: %v %v", s, err)
	}
	arr := &fakeArr{size: 3}
	if a, err := Array(arr).CheckArray(acct); err != nil || a.Size() != 3 {
		t.Errorf("CheckArray: %v %v", a, err)
	}
	if acct.typeChecks != 5 {
		t.Errorf("expected 5 type checks, got %d", acct.typeChecks)
	}
}

func TestCheckedReadsFailAcrossKinds(t *testing.T) {
	if _, err := Int(1).CheckBool(nil); err == nil {
		t.Errorf("CheckBool on int should fail")
	}
	if _, err := Bool(true).CheckInt(nil); err == nil {
		t.Errorf("CheckInt on bool should fail")
	}
	if _, err := StringOf("x").CheckFloat(nil); err == nil {
		t.Errorf("CheckFloat on string should fail")
	}
	if _, err := Int(1).CheckString(nil); err == nil {
		t.Errorf("CheckString on int should fail")
	}
	if _, err := Null().CheckArray(nil); err == nil {
		t.Errorf("CheckArray on null should fail")
	}
}

func TestCopyReleaseStringRefCounting(t *testing.T) {
	acct := &countAcct{}
	s := NewStrCopy("hello")
	v := String(s)
	v2 := v.Copy(acct)
	if s.RefCount() != 2 {
		t.Errorf("refcount after copy = %d, want 2", s.RefCount())
	}
	if dead := v2.Release(acct); dead {
		t.Errorf("first release should not kill the string")
	}
	if dead := v.Release(acct); !dead {
		t.Errorf("second release should kill the string")
	}
	if acct.refCounts != 3 {
		t.Errorf("refcount traffic = %d, want 3", acct.refCounts)
	}
}

func TestCopyReleaseArrayRefCounting(t *testing.T) {
	arr := &fakeArr{refs: 1}
	v := Array(arr)
	v.Copy(nil)
	if arr.refs != 2 {
		t.Errorf("array refs after copy = %d, want 2", arr.refs)
	}
	v.Release(nil)
	v.Release(nil)
	if arr.refs != 0 {
		t.Errorf("array refs after releases = %d, want 0", arr.refs)
	}
}

func TestScalarCopyHasNoRefTraffic(t *testing.T) {
	acct := &countAcct{}
	Int(7).Copy(acct)
	Bool(true).Copy(acct)
	Float(1.5).Copy(acct)
	Null().Copy(acct)
	Int(7).Release(acct)
	if acct.refCounts != 0 {
		t.Errorf("scalars must not generate refcount traffic, got %d", acct.refCounts)
	}
}

func TestCountedPredicate(t *testing.T) {
	if Int(1).Counted() || Null().Counted() || Bool(true).Counted() || Float(1).Counted() {
		t.Errorf("scalars are not counted")
	}
	if !StringOf("x").Counted() {
		t.Errorf("strings are counted")
	}
	if !Array(&fakeArr{}).Counted() {
		t.Errorf("arrays are counted")
	}
}

func TestToPHPString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), ""},
		{Bool(true), "1"},
		{Bool(false), ""},
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{StringOf("abc"), "abc"},
		{Array(&fakeArr{}), "Array"},
	}
	for _, c := range cases {
		if got := c.v.ToPHPString(nil); got != c.want {
			t.Errorf("ToPHPString(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestToPHPStringChargesTypeCheck(t *testing.T) {
	acct := &countAcct{}
	Int(1).ToPHPString(acct)
	if acct.typeChecks != 1 {
		t.Errorf("ToPHPString should charge 1 type check, got %d", acct.typeChecks)
	}
}

func TestEqual(t *testing.T) {
	a := &fakeArr{}
	cases := []struct {
		x, y Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // strict: kinds differ
		{Null(), Null(), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Float(1.5), Float(1.5), true},
		{StringOf("a"), StringOf("a"), true},
		{StringOf("a"), StringOf("b"), false},
		{Array(a), Array(a), true},
		{Array(a), Array(&fakeArr{}), false},
	}
	for i, c := range cases {
		if got := c.x.Equal(c.y, nil); got != c.want {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.want)
		}
	}
}

func TestEqualPropertyReflexiveScalars(t *testing.T) {
	f := func(i int64) bool { return Int(i).Equal(Int(i), nil) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool { return StringOf(s).Equal(StringOf(s), nil) }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCopyReleaseBalanceProperty(t *testing.T) {
	// Property: after n copies and n+1 releases, a fresh string is dead and
	// the accounting saw 2n+1 refcount events.
	f := func(n uint8) bool {
		copies := int(n % 20)
		acct := &countAcct{}
		s := NewStrCopy("payload")
		v := String(s)
		for i := 0; i < copies; i++ {
			v.Copy(acct)
		}
		dead := false
		for i := 0; i <= copies; i++ {
			dead = v.Release(acct)
		}
		return dead && s.RefCount() == 0 && acct.refCounts == 2*copies+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrLen(t *testing.T) {
	if NewStr([]byte("abcd")).Len() != 4 {
		t.Errorf("Str.Len wrong")
	}
	if NewStrCopy("").Len() != 0 {
		t.Errorf("empty Str.Len wrong")
	}
}
