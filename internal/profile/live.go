package profile

import (
	"sort"
	"time"

	"repro/internal/sim"
)

// DefaultLiveEpochs is how many cumulative snapshots a Live keeps: the
// windowed profile spans at most DefaultLiveEpochs-1 rotation periods.
const DefaultLiveEpochs = 16

// epoch is one cumulative per-function snapshot: the fleet meter's state
// at a rotation instant. Function rows are keyed by name+category like
// the meter itself so windowed deltas stay category-exact.
type epoch struct {
	at   time.Time
	fns  map[epochKey]epochRow
	boot bool // the synthetic zero epoch planted at construction
}

type epochKey struct {
	name string
	cat  sim.Category
}

type epochRow struct {
	cycles float64
	calls  int64
}

// Live maintains a windowed flat profile over a running fleet. Callers
// periodically hand it a fresh cumulative merged meter (typically under
// the pool's snapshot barrier); Live retains a bounded ring of these
// cumulative epochs and reports the profile of the *window* — the delta
// between the newest and oldest retained epoch — so /profilez tracks
// current traffic instead of diluting it with everything since boot.
//
// The ring is seeded with a synthetic zero epoch, so until it fills the
// window stretches back to server start and the live profile equals the
// offline FromMeter result for the same meter — which is what makes the
// live and batch views directly comparable (the acceptance criterion).
type Live struct {
	max    int
	epochs []epoch // oldest first
}

// NewLive builds a live profile keeping up to maxEpochs cumulative
// snapshots (<=0 selects DefaultLiveEpochs; 2 is the useful minimum —
// one window). The ring starts with a zero epoch at time now.
func NewLive(maxEpochs int, now time.Time) *Live {
	if maxEpochs <= 0 {
		maxEpochs = DefaultLiveEpochs
	}
	if maxEpochs < 2 {
		maxEpochs = 2
	}
	return &Live{
		max:    maxEpochs,
		epochs: []epoch{{at: now, fns: map[epochKey]epochRow{}, boot: true}},
	}
}

// Observe records the fleet's cumulative state at time now as a new
// epoch, evicting the oldest when the ring is full. The meter must be a
// merged cumulative snapshot (never reset between observations); Live
// only reads it.
func (l *Live) Observe(mt *sim.Meter, now time.Time) {
	e := epoch{at: now, fns: make(map[epochKey]epochRow, 256)}
	for _, f := range mt.Functions() {
		e.fns[epochKey{f.Name, f.Category}] = epochRow{cycles: f.Cycles(&mt.Model), calls: f.Calls}
	}
	l.epochs = append(l.epochs, e)
	if len(l.epochs) > l.max {
		l.epochs = l.epochs[1:]
	}
}

// WindowInfo describes the span of the current window.
type WindowInfo struct {
	// Since is the oldest retained epoch's timestamp: the window start.
	// When SinceBoot is true this is server start.
	Since time.Time
	// Until is the newest epoch's timestamp.
	Until time.Time
	// Epochs is how many cumulative snapshots the window spans.
	Epochs int
	// SinceBoot reports that the ring has not evicted yet, so the window
	// still covers everything since construction.
	SinceBoot bool
}

// Window returns the flat profile of the current window — the cycles
// charged between the oldest and newest retained epochs — plus window
// metadata. Counters are cumulative and meters are never reset, so every
// per-function delta is non-negative; functions with no cycles in the
// window are dropped.
func (l *Live) Window() (Profile, WindowInfo) {
	oldest, newest := l.epochs[0], l.epochs[len(l.epochs)-1]
	info := WindowInfo{
		Since:     oldest.at,
		Until:     newest.at,
		Epochs:    len(l.epochs),
		SinceBoot: oldest.boot,
	}

	type row struct {
		key    epochKey
		cycles float64
	}
	rows := make([]row, 0, len(newest.fns))
	var total float64
	for k, nw := range newest.fns {
		d := nw.cycles - oldest.fns[k].cycles
		if d <= 0 {
			continue
		}
		rows = append(rows, row{key: k, cycles: d})
		total += d
	}
	// Hottest-first with a name tiebreak, matching sim.Meter.Functions so
	// live and offline profiles rank identically.
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cycles != rows[j].cycles {
			return rows[i].cycles > rows[j].cycles
		}
		return rows[i].key.name < rows[j].key.name
	})

	p := Profile{Entries: make([]Entry, 0, len(rows)), Total: total}
	cum := 0.0
	for _, r := range rows {
		frac := 0.0
		if total > 0 {
			frac = r.cycles / total
		}
		cum += frac
		p.Entries = append(p.Entries, Entry{
			Name:     r.key.name,
			Category: r.key.cat,
			Cycles:   r.cycles,
			Frac:     frac,
			Cum:      cum,
		})
	}
	return p, info
}
