// Package profile turns the simulation meter's per-function cost
// attribution into the leaf-function execution profiles of the paper's
// analysis: the flat cycle distributions of Fig. 1, the before/after
// mitigation comparison of Fig. 3, the category coloring of Fig. 4, and
// the execution-time breakdowns of Figs. 5 and 15.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Entry is one leaf function's share of execution.
type Entry struct {
	Name     string
	Category sim.Category
	Cycles   float64
	Frac     float64 // fraction of total cycles
	Cum      float64 // cumulative fraction up to and including this entry
}

// Profile is a leaf-function execution profile sorted hottest-first.
type Profile struct {
	Entries []Entry
	Total   float64
}

// FromMeter builds a profile from the meter's current attribution.
func FromMeter(mt *sim.Meter) Profile {
	fns := mt.Functions()
	p := Profile{Entries: make([]Entry, 0, len(fns))}
	for _, f := range fns {
		p.Total += f.Cycles(&mt.Model)
	}
	cum := 0.0
	for _, f := range fns {
		cyc := f.Cycles(&mt.Model)
		frac := 0.0
		if p.Total > 0 {
			frac = cyc / p.Total
		}
		cum += frac
		p.Entries = append(p.Entries, Entry{
			Name:     f.Name,
			Category: f.Category,
			Cycles:   cyc,
			Frac:     frac,
			Cum:      cum,
		})
	}
	return p
}

// HottestFrac returns the hottest function's share (Fig. 1: ~10–12% for
// the PHP applications, far higher for SPECWeb).
func (p Profile) HottestFrac() float64 {
	if len(p.Entries) == 0 {
		return 0
	}
	return p.Entries[0].Frac
}

// FuncsForFrac returns how many of the hottest functions are needed to
// cover the given fraction of cycles (Fig. 1: ~100 functions for 65%).
func (p Profile) FuncsForFrac(target float64) int {
	for i, e := range p.Entries {
		if e.Cum >= target {
			return i + 1
		}
	}
	return len(p.Entries)
}

// CDF returns the cumulative fraction covered by the hottest n functions
// for each n in ns.
func (p Profile) CDF(ns []int) []float64 {
	out := make([]float64, len(ns))
	for i, n := range ns {
		if n <= 0 {
			continue
		}
		if n > len(p.Entries) {
			n = len(p.Entries)
		}
		if n > 0 {
			out[i] = p.Entries[n-1].Cum
		}
	}
	return out
}

// CategoryShares returns each activity category's share of total cycles
// (Figs. 4 and 5).
func (p Profile) CategoryShares() map[sim.Category]float64 {
	out := make(map[sim.Category]float64)
	for _, e := range p.Entries {
		out[e.Category] += e.Frac
	}
	return out
}

// TopN returns the hottest n entries; n <= 0 returns every entry, which
// is how a fleet scraper asks a backend for its complete profile. The
// result is a copy: callers may sort or mutate it without silently
// reordering the live profile (or anything Merge produced).
func (p Profile) TopN(n int) []Entry {
	if n <= 0 || n > len(p.Entries) {
		n = len(p.Entries)
	}
	out := make([]Entry, n)
	copy(out, p.Entries[:n])
	return out
}

// NumFunctions returns the number of distinct leaf functions.
func (p Profile) NumFunctions() int { return len(p.Entries) }

// Render prints the hottest n functions as an aligned table.
func (p Profile) Render(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-10s %8s %8s\n", "function", "category", "frac%", "cum%")
	for _, e := range p.TopN(n) {
		fmt.Fprintf(&b, "%-34s %-10s %8.2f %8.2f\n", e.Name, e.Category, 100*e.Frac, 100*e.Cum)
	}
	return b.String()
}

// Folded renders the flat profile as folded stacks — one
// "category;function cycles" line per entry, hottest first — so a live
// /profilez scrape feeds flamegraph.pl / speedscope directly. The
// category is the root frame, which makes the flame's first tier the
// paper's Fig. 4 breakdown.
func (p Profile) Folded() string {
	var b strings.Builder
	for _, e := range p.Entries {
		name := strings.ReplaceAll(e.Name, ";", ":")
		name = strings.ReplaceAll(name, " ", "_")
		fmt.Fprintf(&b, "%s;%s %.0f\n", e.Category, name, e.Cycles)
	}
	return b.String()
}

// Diff compares two profiles by function name (Fig. 3's before/after
// mitigation bars). Functions absent from one side report zero.
type DiffEntry struct {
	Name       string
	Category   sim.Category
	BeforeFrac float64
	AfterFrac  float64
}

// Diff returns per-function fraction changes sorted by before-share.
func Diff(before, after Profile) []DiffEntry {
	idx := map[string]*DiffEntry{}
	var order []string
	for _, e := range before.Entries {
		idx[e.Name] = &DiffEntry{Name: e.Name, Category: e.Category, BeforeFrac: e.Frac}
		order = append(order, e.Name)
	}
	for _, e := range after.Entries {
		d := idx[e.Name]
		if d == nil {
			d = &DiffEntry{Name: e.Name, Category: e.Category}
			idx[e.Name] = d
			order = append(order, e.Name)
		}
		d.AfterFrac = e.Frac
	}
	out := make([]DiffEntry, 0, len(order))
	for _, name := range order {
		out = append(out, *idx[name])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].BeforeFrac > out[j].BeforeFrac })
	return out
}
