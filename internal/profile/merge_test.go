package profile

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// chargeLoad charges a deterministic slice of work to a meter.
func chargeLoad(mt *sim.Meter, scale float64) {
	mt.AddUops("zend_hash_find", sim.CatHash, 4000*scale)
	mt.AddUops("_emalloc", sim.CatHeap, 3000*scale)
	mt.AddUops("texturize", sim.CatString, 2000*scale)
	mt.AddUops("app_code", sim.CatOther, 1000*scale)
}

// TestMergeEqualsCombinedLoad: merging per-backend profiles must equal
// the profile of one meter that observed the combined load.
func TestMergeEqualsCombinedLoad(t *testing.T) {
	model := sim.DefaultCostModel()
	combined := sim.NewMeter(model)
	var parts []Profile
	for i := 0; i < 3; i++ {
		mt := sim.NewMeter(model)
		chargeLoad(mt, float64(i+1))
		chargeLoad(combined, float64(i+1))
		parts = append(parts, FromMeter(mt))
	}
	got := Merge(parts...)
	want := FromMeter(combined)

	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("entry count: got %d want %d", len(got.Entries), len(want.Entries))
	}
	if math.Abs(got.Total-want.Total) > 1e-6*want.Total {
		t.Fatalf("total: got %g want %g", got.Total, want.Total)
	}
	for i := range got.Entries {
		g, w := got.Entries[i], want.Entries[i]
		if g.Name != w.Name || g.Category != w.Category {
			t.Fatalf("entry %d: got %s/%s want %s/%s", i, g.Name, g.Category, w.Name, w.Category)
		}
		if math.Abs(g.Cycles-w.Cycles) > 1e-6*w.Cycles {
			t.Fatalf("entry %d cycles: got %g want %g", i, g.Cycles, w.Cycles)
		}
		if math.Abs(g.Frac-w.Frac) > 1e-9 || math.Abs(g.Cum-w.Cum) > 1e-9 {
			t.Fatalf("entry %d frac/cum: got %g/%g want %g/%g", i, g.Frac, g.Cum, w.Frac, w.Cum)
		}
	}
	// Summation order differs between the merged and combined paths, so
	// fractions can disagree in the last ULP; compare with tolerance.
	if math.Abs(got.HottestFrac()-want.HottestFrac()) > 1e-9 {
		t.Fatalf("hottest frac: got %g want %g", got.HottestFrac(), want.HottestFrac())
	}
	if got.FuncsForFrac(0.65) != want.FuncsForFrac(0.65) {
		t.Fatalf("funcs for 65%%: got %d want %d", got.FuncsForFrac(0.65), want.FuncsForFrac(0.65))
	}
}

func TestFromCyclesSumsDuplicates(t *testing.T) {
	p := FromCycles([]RawEntry{
		{Name: "f", Category: sim.CatHash, Cycles: 10},
		{Name: "f", Category: sim.CatHash, Cycles: 30},
		{Name: "f", Category: sim.CatHeap, Cycles: 20}, // distinct category = distinct row
		{Name: "g", Category: sim.CatOther, Cycles: 40},
	})
	if len(p.Entries) != 3 || p.Total != 100 {
		t.Fatalf("entries=%d total=%g", len(p.Entries), p.Total)
	}
	// Tie at 40 cycles breaks by name: "f" before "g".
	if p.Entries[0].Name != "f" || p.Entries[0].Cycles != 40 || p.Entries[1].Name != "g" {
		t.Fatalf("order: %+v", p.Entries)
	}
	if got := p.Entries[len(p.Entries)-1].Cum; math.Abs(got-1) > 1e-12 {
		t.Fatalf("final cum = %g, want 1", got)
	}
}

func TestMergeEmpty(t *testing.T) {
	p := Merge()
	if p.Total != 0 || len(p.Entries) != 0 || p.HottestFrac() != 0 {
		t.Fatalf("empty merge: %+v", p)
	}
}

func TestTopNAll(t *testing.T) {
	p := FromCycles([]RawEntry{{Name: "f", Category: sim.CatHash, Cycles: 1}})
	if got := len(p.TopN(0)); got != 1 {
		t.Fatalf("TopN(0) = %d entries, want all (1)", got)
	}
	if got := len(p.TopN(-5)); got != 1 {
		t.Fatalf("TopN(-5) = %d entries, want all (1)", got)
	}
}
