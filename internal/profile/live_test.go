package profile

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// meterAt builds a cumulative meter charged with the given per-function
// uops (name -> uops, all CatOther unless prefixed "hash:").
func meterAt(charges map[string]float64) *sim.Meter {
	mt := sim.NewMeter(sim.DefaultCostModel())
	chargeMeter(mt, charges)
	return mt
}

func chargeMeter(mt *sim.Meter, charges map[string]float64) {
	for name, uops := range charges {
		cat := sim.CatOther
		if n, ok := strings.CutPrefix(name, "hash:"); ok {
			name, cat = n, sim.CatHash
		}
		mt.AddUops(name, cat, uops)
	}
}

func TestLiveFirstWindowEqualsOffline(t *testing.T) {
	// Before the ring evicts anything, the live window must equal the
	// offline FromMeter profile for the same cumulative meter — that is
	// the /profilez acceptance criterion.
	t0 := time.Unix(1000, 0)
	mt := meterAt(map[string]float64{"jit": 500, "hash:ht_get": 300, "escape": 200})
	l := NewLive(4, t0)
	l.Observe(mt, t0.Add(time.Second))

	live, info := l.Window()
	off := FromMeter(mt)
	if !info.SinceBoot || info.Epochs != 2 || !info.Since.Equal(t0) {
		t.Errorf("window info = %+v", info)
	}
	if live.NumFunctions() != off.NumFunctions() {
		t.Fatalf("live %d functions, offline %d", live.NumFunctions(), off.NumFunctions())
	}
	if math.Abs(live.HottestFrac()-off.HottestFrac()) > 1e-12 {
		t.Errorf("hottest: live %v offline %v", live.HottestFrac(), off.HottestFrac())
	}
	for i := range off.Entries {
		lo, of := live.Entries[i], off.Entries[i]
		if lo.Name != of.Name || math.Abs(lo.Frac-of.Frac) > 1e-12 {
			t.Errorf("entry %d: live %+v offline %+v", i, lo, of)
		}
	}
}

func TestLiveWindowTracksRecentTraffic(t *testing.T) {
	t0 := time.Unix(2000, 0)
	mt := sim.NewMeter(sim.DefaultCostModel())
	l := NewLive(2, t0) // zero epoch + 1 retained: window = last interval

	chargeMeter(mt, map[string]float64{"old_hot": 1000})
	l.Observe(mt, t0.Add(time.Second)) // evicts the zero epoch next time

	chargeMeter(mt, map[string]float64{"new_hot": 900})
	l.Observe(mt, t0.Add(2*time.Second))

	p, info := l.Window()
	if info.SinceBoot {
		t.Error("ring evicted the boot epoch but still reports since-boot")
	}
	// old_hot stopped accruing, so the window contains only new_hot.
	if p.NumFunctions() != 1 || p.Entries[0].Name != "new_hot" {
		t.Fatalf("window = %+v", p.Entries)
	}
	if math.Abs(p.Entries[0].Frac-1) > 1e-12 {
		t.Errorf("new_hot frac = %v", p.Entries[0].Frac)
	}
}

func TestLiveEpochRingBounded(t *testing.T) {
	t0 := time.Unix(0, 0)
	mt := sim.NewMeter(sim.DefaultCostModel())
	l := NewLive(3, t0)
	for i := 1; i <= 10; i++ {
		chargeMeter(mt, map[string]float64{"fn": 100})
		l.Observe(mt, t0.Add(time.Duration(i)*time.Second))
	}
	p, info := l.Window()
	if info.Epochs != 3 {
		t.Errorf("epochs = %d, want 3", info.Epochs)
	}
	if !info.Since.Equal(t0.Add(8 * time.Second)) {
		t.Errorf("since = %v", info.Since)
	}
	// Window covers epochs 8..10: two intervals of 100 uops each.
	ipc := sim.DefaultCostModel().IPC
	if math.Abs(p.Total-200/ipc) > 1e-9 {
		t.Errorf("window total = %v, want %v", p.Total, 200/ipc)
	}
}

func TestLiveMinEpochs(t *testing.T) {
	l := NewLive(1, time.Unix(0, 0)) // clamps to 2 so a window exists
	mt := meterAt(map[string]float64{"fn": 50})
	l.Observe(mt, time.Unix(1, 0))
	p, _ := l.Window()
	if p.NumFunctions() != 1 {
		t.Errorf("window = %+v", p.Entries)
	}
}

func TestProfileFolded(t *testing.T) {
	mt := meterAt(map[string]float64{"jit code": 500, "hash:ht;get": 300})
	p := FromMeter(mt)
	out := p.Folded()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("folded:\n%s", out)
	}
	// Hottest first, category as root frame, separators sanitized.
	if !strings.HasPrefix(lines[0], "other;jit_code ") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "hash;ht:get ") {
		t.Errorf("line 1 = %q", lines[1])
	}
}
