package profile

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func meterWith(fracs map[string]float64) *sim.Meter {
	mt := sim.NewMeter(sim.DefaultCostModel())
	for name, share := range fracs {
		mt.AddUops(name, sim.CatOther, share*1000)
	}
	return mt
}

func TestFromMeterFractions(t *testing.T) {
	mt := meterWith(map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2})
	p := FromMeter(mt)
	if p.NumFunctions() != 3 {
		t.Fatalf("NumFunctions = %d", p.NumFunctions())
	}
	if p.Entries[0].Name != "a" || math.Abs(p.Entries[0].Frac-0.5) > 1e-9 {
		t.Errorf("hottest entry wrong: %+v", p.Entries[0])
	}
	if math.Abs(p.Entries[2].Cum-1.0) > 1e-9 {
		t.Errorf("cumulative should end at 1: %v", p.Entries[2].Cum)
	}
	if math.Abs(p.HottestFrac()-0.5) > 1e-9 {
		t.Errorf("HottestFrac = %v", p.HottestFrac())
	}
}

func TestFuncsForFrac(t *testing.T) {
	mt := meterWith(map[string]float64{"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.1})
	p := FromMeter(mt)
	if got := p.FuncsForFrac(0.65); got != 2 {
		t.Errorf("FuncsForFrac(0.65) = %d, want 2", got)
	}
	if got := p.FuncsForFrac(0.95); got != 4 {
		t.Errorf("FuncsForFrac(0.95) = %d, want 4", got)
	}
	if got := p.FuncsForFrac(2.0); got != 4 {
		t.Errorf("unreachable target should return all functions: %d", got)
	}
}

func TestCDF(t *testing.T) {
	mt := meterWith(map[string]float64{"a": 0.4, "b": 0.3, "c": 0.2, "d": 0.1})
	p := FromMeter(mt)
	cdf := p.CDF([]int{1, 2, 10, 0})
	if math.Abs(cdf[0]-0.4) > 1e-9 || math.Abs(cdf[1]-0.7) > 1e-9 {
		t.Errorf("CDF wrong: %v", cdf)
	}
	if math.Abs(cdf[2]-1.0) > 1e-9 {
		t.Errorf("CDF beyond length should saturate: %v", cdf[2])
	}
	if cdf[3] != 0 {
		t.Errorf("CDF(0) should be 0")
	}
}

func TestCategoryShares(t *testing.T) {
	mt := sim.NewMeter(sim.DefaultCostModel())
	mt.AddUops("h1", sim.CatHash, 300)
	mt.AddUops("h2", sim.CatHash, 100)
	mt.AddUops("s1", sim.CatString, 600)
	p := FromMeter(mt)
	cs := p.CategoryShares()
	if math.Abs(cs[sim.CatHash]-0.4) > 1e-9 || math.Abs(cs[sim.CatString]-0.6) > 1e-9 {
		t.Errorf("shares wrong: %v", cs)
	}
}

func TestTopNAndRender(t *testing.T) {
	mt := meterWith(map[string]float64{"a": 0.6, "b": 0.4})
	p := FromMeter(mt)
	if len(p.TopN(1)) != 1 || len(p.TopN(10)) != 2 {
		t.Errorf("TopN clamping wrong")
	}
	r := p.Render(2)
	if !strings.Contains(r, "a") || !strings.Contains(r, "cum%") {
		t.Errorf("render missing content:\n%s", r)
	}
}

func TestEmptyProfile(t *testing.T) {
	p := FromMeter(sim.NewMeter(sim.DefaultCostModel()))
	if p.HottestFrac() != 0 || p.NumFunctions() != 0 || p.FuncsForFrac(0.5) != 0 {
		t.Errorf("empty profile accessors wrong")
	}
}

func TestDiff(t *testing.T) {
	before := FromMeter(meterWith(map[string]float64{"refcount": 0.5, "hash": 0.3, "other": 0.2}))
	after := FromMeter(meterWith(map[string]float64{"hash": 0.6, "other": 0.4}))
	d := Diff(before, after)
	if len(d) != 3 {
		t.Fatalf("Diff entries = %d", len(d))
	}
	if d[0].Name != "refcount" || d[0].AfterFrac != 0 {
		t.Errorf("mitigated function should drop to zero: %+v", d[0])
	}
	var hash DiffEntry
	for _, e := range d {
		if e.Name == "hash" {
			hash = e
		}
	}
	if hash.AfterFrac <= hash.BeforeFrac {
		t.Errorf("surviving function's share should rise: %+v", hash)
	}
}

func TestFlatVsHotspotShape(t *testing.T) {
	// Synthetic check of the Fig. 1 contrast logic: a flat profile needs
	// many more functions to reach 65% than a hotspotted one.
	flat := sim.NewMeter(sim.DefaultCostModel())
	for i := 0; i < 200; i++ {
		flat.AddUops(fmt.Sprintf("f%03d", i), sim.CatOther, 10)
	}
	hot := sim.NewMeter(sim.DefaultCostModel())
	hot.AddUops("hot1", sim.CatOther, 800)
	hot.AddUops("hot2", sim.CatOther, 100)
	for i := 0; i < 50; i++ {
		hot.AddUops(fmt.Sprintf("cold%02d", i), sim.CatOther, 2)
	}
	fp, hp := FromMeter(flat), FromMeter(hot)
	if fp.FuncsForFrac(0.65) < 50 {
		t.Errorf("flat profile should need many functions: %d", fp.FuncsForFrac(0.65))
	}
	if hp.FuncsForFrac(0.65) > 2 {
		t.Errorf("hotspot profile should need few functions: %d", hp.FuncsForFrac(0.65))
	}
}

func TestDiffEdgeCases(t *testing.T) {
	some := FromMeter(meterWith(map[string]float64{"a": 0.6, "b": 0.4}))
	empty := FromMeter(sim.NewMeter(sim.DefaultCostModel()))

	// Both sides empty: nothing to report.
	if d := Diff(empty, empty); len(d) != 0 {
		t.Errorf("empty/empty diff = %+v", d)
	}

	// Empty before: every function is new, BeforeFrac zero.
	d := Diff(empty, some)
	if len(d) != 2 {
		t.Fatalf("diff = %+v", d)
	}
	for _, e := range d {
		if e.BeforeFrac != 0 || e.AfterFrac <= 0 {
			t.Errorf("new function entry = %+v", e)
		}
	}

	// Empty after: every function vanished, AfterFrac zero, sorted by
	// before-share.
	d = Diff(some, empty)
	if len(d) != 2 || d[0].Name != "a" || d[0].AfterFrac != 0 || d[1].AfterFrac != 0 {
		t.Errorf("vanished diff = %+v", d)
	}

	// Single-function profile diffed against itself: shares unchanged.
	one := FromMeter(meterWith(map[string]float64{"solo": 1}))
	d = Diff(one, one)
	if len(d) != 1 || d[0].BeforeFrac != 1 || d[0].AfterFrac != 1 {
		t.Errorf("identity diff = %+v", d)
	}

	// Disjoint function sets: both sides' functions appear, each with a
	// zero on the side it is absent from.
	other := FromMeter(meterWith(map[string]float64{"x": 0.5, "y": 0.5}))
	d = Diff(some, other)
	if len(d) != 4 {
		t.Fatalf("disjoint diff = %+v", d)
	}
	byName := map[string]DiffEntry{}
	for _, e := range d {
		byName[e.Name] = e
	}
	if byName["a"].AfterFrac != 0 || byName["x"].BeforeFrac != 0 {
		t.Errorf("disjoint shares wrong: %+v", byName)
	}
	// Before-side functions sort ahead of after-only ones (before-share
	// descending, zero last).
	if d[0].Name != "a" || d[1].Name != "b" {
		t.Errorf("diff order = %+v", d)
	}
}

func TestCDFEdgeCases(t *testing.T) {
	empty := FromMeter(sim.NewMeter(sim.DefaultCostModel()))
	// Empty profile: every requested n covers nothing.
	got := empty.CDF([]int{0, 1, 100})
	for i, v := range got {
		if v != 0 {
			t.Errorf("empty CDF[%d] = %v", i, v)
		}
	}

	// Single-function profile: any positive n covers everything, zero and
	// negative n cover nothing.
	one := FromMeter(meterWith(map[string]float64{"solo": 1}))
	got = one.CDF([]int{-1, 0, 1, 2, 1000})
	want := []float64{0, 0, 1, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("single CDF = %v, want %v", got, want)
		}
	}
	if one.FuncsForFrac(0.65) != 1 || one.HottestFrac() != 1 {
		t.Errorf("single-function headline numbers: %d, %v",
			one.FuncsForFrac(0.65), one.HottestFrac())
	}

	// n beyond the profile clamps to the full set (cum = 1).
	three := FromMeter(meterWith(map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2}))
	got = three.CDF([]int{2, 3, 50})
	if math.Abs(got[0]-0.8) > 1e-12 || math.Abs(got[1]-1) > 1e-12 || math.Abs(got[2]-1) > 1e-12 {
		t.Errorf("CDF = %v", got)
	}
}

// TestTopNReturnsCopy is the regression test for TopN aliasing the
// profile's backing array: sorting or mutating the returned slice must
// not reorder the live profile (or anything Merge produced).
func TestTopNReturnsCopy(t *testing.T) {
	mt := meterWith(map[string]float64{"a": 0.5, "b": 0.3, "c": 0.2})
	p := FromMeter(mt)
	top := p.TopN(2)
	if len(top) != 2 || top[0].Name != "a" {
		t.Fatalf("TopN(2) = %+v", top)
	}
	top[0].Name = "mutated"
	top[0].Cycles = -1
	top[0], top[1] = top[1], top[0]
	if p.Entries[0].Name != "a" || p.Entries[1].Name != "b" {
		t.Fatalf("mutating TopN result changed the profile: %+v", p.Entries[:2])
	}
	if p.Entries[0].Cycles < 0 {
		t.Fatal("mutating TopN result changed live entry fields")
	}
	// n <= 0 (the fleet-scraper "everything" form) must copy too.
	all := p.TopN(0)
	if len(all) != len(p.Entries) {
		t.Fatalf("TopN(0) len = %d, want %d", len(all), len(p.Entries))
	}
	all[0].Name = "clobbered"
	if p.Entries[0].Name != "a" {
		t.Fatal("TopN(0) aliases the profile's backing array")
	}
}
