package profile

import (
	"sort"

	"repro/internal/sim"
)

// Fleet aggregation of leaf-function profiles. Each backend in a cluster
// owns a private meter and serves its own /profilez; the router scrapes
// every backend's profile and merges them here into the cluster-wide
// execution profile — the whole-fleet version of the paper's Fig. 1
// flat distribution. Merging raw cycles by (function, category) and
// recomputing the shares is exact: it equals the profile a single meter
// would have produced had it observed the combined load.

// RawEntry is one function's absolute cycle total, the merge currency
// (fractions are not mergeable; cycles are).
type RawEntry struct {
	Name     string
	Category sim.Category
	Cycles   float64
}

// FromCycles builds a Profile from absolute per-function cycle totals,
// summing duplicate (name, category) rows, sorting hottest-first with a
// name tiebreak (the Meter.Functions order), and recomputing Frac/Cum.
func FromCycles(entries []RawEntry) Profile {
	type key struct {
		name string
		cat  sim.Category
	}
	sums := make(map[key]float64, len(entries))
	for _, e := range entries {
		sums[key{e.Name, e.Category}] += e.Cycles
	}
	p := Profile{Entries: make([]Entry, 0, len(sums))}
	for k, cyc := range sums {
		p.Entries = append(p.Entries, Entry{Name: k.name, Category: k.cat, Cycles: cyc})
		p.Total += cyc
	}
	sort.Slice(p.Entries, func(i, j int) bool {
		if p.Entries[i].Cycles != p.Entries[j].Cycles {
			return p.Entries[i].Cycles > p.Entries[j].Cycles
		}
		return p.Entries[i].Name < p.Entries[j].Name
	})
	cum := 0.0
	for i := range p.Entries {
		if p.Total > 0 {
			p.Entries[i].Frac = p.Entries[i].Cycles / p.Total
		}
		cum += p.Entries[i].Frac
		p.Entries[i].Cum = cum
	}
	return p
}

// Merge folds profiles into one by summing per-(function, category)
// cycles and recomputing shares. Merging per-backend profiles equals
// profiling the combined load on one meter, so cluster-level Fig. 1
// statistics (hottest fraction, functions-for-65%) read off the result
// directly.
func Merge(profiles ...Profile) Profile {
	var raw []RawEntry
	for _, p := range profiles {
		for _, e := range p.Entries {
			raw = append(raw, RawEntry{Name: e.Name, Category: e.Category, Cycles: e.Cycles})
		}
	}
	return FromCycles(raw)
}
