// Package strlib implements the PHP string functions the paper's
// workloads exercise while turning unstructured text into HTML (§4.4):
// finding, matching, replacing, trimming, comparing, case conversion,
// character translation, and the escaping helpers (htmlspecialchars,
// addslashes, nl2br). These are the software baselines the string
// accelerator is measured against; each call reports the subject bytes it
// touched to an optional Observer so the simulation can charge the
// SSE-optimized software cost.
//
// PHP strings carry explicit lengths, so all functions operate on byte
// slices and never assume NUL termination.
package strlib

import "bytes"

// Op identifies a string operation for cost accounting and for the
// stringop[op] ISA extension's 6-bit opcode (§4.6).
type Op uint8

const (
	OpFind Op = iota
	OpReplace
	OpCompare
	OpTrim
	OpToUpper
	OpToLower
	OpTranslate
	OpHTMLSpecial
	OpAddSlashes
	OpNL2BR
	OpConcat
	OpClassScan

	NumOps
)

// String returns the PHP-facing function name.
func (o Op) String() string {
	switch o {
	case OpFind:
		return "strpos"
	case OpReplace:
		return "str_replace"
	case OpCompare:
		return "strcmp"
	case OpTrim:
		return "trim"
	case OpToUpper:
		return "strtoupper"
	case OpToLower:
		return "strtolower"
	case OpTranslate:
		return "strtr"
	case OpHTMLSpecial:
		return "htmlspecialchars"
	case OpAddSlashes:
		return "addslashes"
	case OpNL2BR:
		return "nl2br"
	case OpConcat:
		return "concat"
	case OpClassScan:
		return "class_scan"
	default:
		return "unknown"
	}
}

// Observer receives one event per string library call.
type Observer interface {
	OnStringOp(op Op, subjectBytes int)
}

// Allocator supplies backing memory for the byte slices the library
// returns — typically a request-scoped arena owned by the calling
// worker. Results allocated through it inherit the allocator's
// lifetime: with an arena they are valid only until the owner's next
// reset, so callers that keep bytes across requests must copy them out.
type Allocator interface {
	// Make returns a zeroed slice of length n.
	Make(n int) []byte
	// Buf returns a zero-length slice with at least the given capacity.
	Buf(capacity int) []byte
}

// Lib is the string library bound to an optional cost observer and an
// optional result allocator. The zero value is usable (no accounting,
// ordinary heap allocation).
type Lib struct {
	Obs Observer
	Mem Allocator
}

func (l *Lib) emit(op Op, n int) {
	if l.Obs != nil {
		l.Obs.OnStringOp(op, n)
	}
}

// mk allocates a length-n result slice via Mem, or the heap without one.
func (l *Lib) mk(n int) []byte {
	if l.Mem != nil {
		return l.Mem.Make(n)
	}
	return make([]byte, n)
}

// buf allocates a zero-length, capacity-c result slice via Mem, or the
// heap without one. Appending past c migrates the data to the ordinary
// heap — correct, just no longer arena-managed.
func (l *Lib) buf(c int) []byte {
	if l.Mem != nil {
		return l.Mem.Buf(c)
	}
	return make([]byte, 0, c)
}

// Find returns the byte index of the first occurrence of pattern in
// subject, or -1 (PHP strpos).
func (l *Lib) Find(subject, pattern []byte) int {
	l.emit(OpFind, len(subject))
	return find(subject, pattern)
}

// find delegates to bytes.Index (two-way/Rabin-Karp with SIMD-accelerated
// single-byte scans) instead of a naive O(n·m) walk. The simulated cost is
// unaffected: emit already charged the SSE-optimized software model for
// the subject bytes; this only speeds up the host running the simulation.
func find(subject, pattern []byte) int {
	if len(pattern) == 1 {
		return bytes.IndexByte(subject, pattern[0])
	}
	return bytes.Index(subject, pattern)
}

// findRef is the naive O(n·m) reference scan, kept for equivalence tests
// and as the benchmark baseline.
func findRef(subject, pattern []byte) int {
	if len(pattern) == 0 {
		return 0
	}
	if len(pattern) > len(subject) {
		return -1
	}
	first := pattern[0]
	for i := 0; i+len(pattern) <= len(subject); i++ {
		if subject[i] != first {
			continue
		}
		j := 1
		for ; j < len(pattern); j++ {
			if subject[i+j] != pattern[j] {
				break
			}
		}
		if j == len(pattern) {
			return i
		}
	}
	return -1
}

// Replace substitutes every occurrence of old with new in subject,
// returning a fresh slice (PHP str_replace) and the replacement count.
func (l *Lib) Replace(subject, old, new []byte) ([]byte, int) {
	l.emit(OpReplace, len(subject))
	if len(old) == 0 {
		out := l.mk(len(subject))
		copy(out, subject)
		return out, 0
	}
	out := l.buf(len(subject))
	count := 0
	i := 0
	for i <= len(subject)-len(old) {
		if match(subject[i:], old) {
			out = append(out, new...)
			i += len(old)
			count++
		} else {
			out = append(out, subject[i])
			i++
		}
	}
	out = append(out, subject[i:]...)
	return out, count
}

func match(s, p []byte) bool {
	if len(s) < len(p) {
		return false
	}
	for i := range p {
		if s[i] != p[i] {
			return false
		}
	}
	return true
}

// Compare returns -1, 0, or 1 comparing a and b lexicographically.
func (l *Lib) Compare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	l.emit(OpCompare, n)
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// defaultTrimSet is PHP trim's default character set.
var defaultTrimSet = []byte(" \t\n\r\x00\x0b")

// Trim strips default whitespace from both ends (PHP trim). The result
// aliases subject.
func (l *Lib) Trim(subject []byte) []byte {
	l.emit(OpTrim, len(subject))
	lo, hi := 0, len(subject)
	for lo < hi && inSet(subject[lo], defaultTrimSet) {
		lo++
	}
	for hi > lo && inSet(subject[hi-1], defaultTrimSet) {
		hi--
	}
	return subject[lo:hi]
}

func inSet(c byte, set []byte) bool {
	for _, s := range set {
		if c == s {
			return true
		}
	}
	return false
}

// ToUpper returns an upper-cased copy (ASCII, PHP strtoupper).
func (l *Lib) ToUpper(subject []byte) []byte {
	l.emit(OpToUpper, len(subject))
	out := l.mk(len(subject))
	for i, c := range subject {
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

// ToLower returns a lower-cased copy (ASCII, PHP strtolower).
func (l *Lib) ToLower(subject []byte) []byte {
	l.emit(OpToLower, len(subject))
	out := l.mk(len(subject))
	for i, c := range subject {
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		out[i] = c
	}
	return out
}

// Translate maps single characters from -> to, PHP strtr with equal-length
// from/to strings. Panics if the tables differ in length.
func (l *Lib) Translate(subject, from, to []byte) []byte {
	l.emit(OpTranslate, len(subject))
	if len(from) != len(to) {
		panic("strlib: strtr tables must have equal length")
	}
	var tbl [256]byte
	for i := range tbl {
		tbl[i] = byte(i)
	}
	for i := range from {
		tbl[from[i]] = to[i]
	}
	out := l.mk(len(subject))
	for i, c := range subject {
		out[i] = tbl[c]
	}
	return out
}

// HTMLSpecialChars escapes &, <, >, and double quote as HTML entities
// (PHP htmlspecialchars with default flags, minus single-quote handling
// differences).
func (l *Lib) HTMLSpecialChars(subject []byte) []byte {
	l.emit(OpHTMLSpecial, len(subject))
	// Pre-size exactly so the result never grows out of its allocator.
	extra := 0
	for _, c := range subject {
		switch c {
		case '&':
			extra += len("&amp;") - 1
		case '<', '>':
			extra += len("&lt;") - 1
		case '"':
			extra += len("&quot;") - 1
		}
	}
	out := l.buf(len(subject) + extra)
	for _, c := range subject {
		switch c {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, c)
		}
	}
	return out
}

// AddSlashes backslash-escapes quotes, backslashes, and NULs (PHP
// addslashes).
func (l *Lib) AddSlashes(subject []byte) []byte {
	l.emit(OpAddSlashes, len(subject))
	extra := 0
	for _, c := range subject {
		switch c {
		case '\'', '"', '\\', 0:
			extra++
		}
	}
	out := l.buf(len(subject) + extra)
	for _, c := range subject {
		switch c {
		case '\'', '"', '\\':
			out = append(out, '\\', c)
		case 0:
			out = append(out, '\\', '0')
		default:
			out = append(out, c)
		}
	}
	return out
}

// NL2BR inserts "<br />" before each newline (PHP nl2br). \r\n pairs get
// a single break.
func (l *Lib) NL2BR(subject []byte) []byte {
	l.emit(OpNL2BR, len(subject))
	breaks := 0
	for i := 0; i < len(subject); i++ {
		if subject[i] == '\n' || subject[i] == '\r' {
			breaks++
			if subject[i] == '\r' && i+1 < len(subject) && subject[i+1] == '\n' {
				i++
			}
		}
	}
	out := l.buf(len(subject) + breaks*len("<br />"))
	for i := 0; i < len(subject); i++ {
		c := subject[i]
		if c == '\r' || c == '\n' {
			out = append(out, "<br />"...)
			out = append(out, c)
			if c == '\r' && i+1 < len(subject) && subject[i+1] == '\n' {
				out = append(out, '\n')
				i++
			}
			continue
		}
		out = append(out, c)
	}
	return out
}

// Concat joins the parts into a fresh slice, charging for the total bytes
// moved (PHP's `.` operator and implode).
func (l *Lib) Concat(parts ...[]byte) []byte {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	l.emit(OpConcat, total)
	out := l.buf(total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// IsRegular reports whether c is a "regular" character under the paper's
// classification for content sifting (§4.5): {A-Z a-z 0-9 _ . , -} plus,
// in our HTML-oriented workloads, space. Everything else is "special".
func IsRegular(c byte) bool {
	switch {
	case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '.' || c == ',' || c == '-' || c == ' ':
		return true
	}
	return false
}

// ClassScan returns a bitmap with one bit per segment of segSize bytes,
// set when the segment contains at least one special (non-regular)
// character. This is the software reference for the hint vector (HV) the
// string accelerator produces for the sieve regexp (§4.5).
func (l *Lib) ClassScan(subject []byte, segSize int) []uint64 {
	l.emit(OpClassScan, len(subject))
	return ClassScanRef(subject, segSize)
}

// ClassScanRef is the pure reference implementation of ClassScan.
func ClassScanRef(subject []byte, segSize int) []uint64 {
	if segSize <= 0 {
		segSize = 32
	}
	nseg := (len(subject) + segSize - 1) / segSize
	hv := make([]uint64, (nseg+63)/64)
	for s := 0; s < nseg; s++ {
		lo := s * segSize
		hi := lo + segSize
		if hi > len(subject) {
			hi = len(subject)
		}
		for i := lo; i < hi; i++ {
			if !IsRegular(subject[i]) {
				hv[s/64] |= 1 << uint(s%64)
				break
			}
		}
	}
	return hv
}
