package strlib

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

type recObs struct {
	ops   []Op
	bytes []int
}

func (r *recObs) OnStringOp(op Op, n int) {
	r.ops = append(r.ops, op)
	r.bytes = append(r.bytes, n)
}

func TestOpNames(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		if op.String() == "unknown" || op.String() == "" {
			t.Errorf("op %d has no name", op)
		}
	}
	if Op(200).String() != "unknown" {
		t.Errorf("out-of-range op should be unknown")
	}
}

func TestFind(t *testing.T) {
	var l Lib
	cases := []struct {
		subject, pattern string
		want             int
	}{
		{"babc", "abc", 1},
		{"hello world", "world", 6},
		{"hello", "hello", 0},
		{"hello", "", 0},
		{"hello", "x", -1},
		{"hi", "hello", -1},
		{"aaab", "aab", 1},
		{"", "", 0},
		{"", "a", -1},
	}
	for _, c := range cases {
		if got := l.Find([]byte(c.subject), []byte(c.pattern)); got != c.want {
			t.Errorf("Find(%q, %q) = %d, want %d", c.subject, c.pattern, got, c.want)
		}
	}
}

func TestFindMatchesStdlib(t *testing.T) {
	var l Lib
	f := func(s, p string) bool {
		if len(p) > 8 {
			p = p[:8]
		}
		return l.Find([]byte(s), []byte(p)) == strings.Index(s, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplace(t *testing.T) {
	var l Lib
	got, n := l.Replace([]byte("a-b-c"), []byte("-"), []byte("+"))
	if string(got) != "a+b+c" || n != 2 {
		t.Errorf("Replace = %q, %d", got, n)
	}
	got, n = l.Replace([]byte("aaaa"), []byte("aa"), []byte("b"))
	if string(got) != "bb" || n != 2 {
		t.Errorf("non-overlapping Replace = %q, %d", got, n)
	}
	got, n = l.Replace([]byte("xyz"), []byte(""), []byte("!"))
	if string(got) != "xyz" || n != 0 {
		t.Errorf("empty-pattern Replace = %q, %d", got, n)
	}
	got, n = l.Replace([]byte("<b>"), []byte("<b>"), []byte("<strong>"))
	if string(got) != "<strong>" || n != 1 {
		t.Errorf("whole-string Replace = %q, %d", got, n)
	}
}

func TestReplaceMatchesStdlib(t *testing.T) {
	var l Lib
	f := func(s string, oldRaw, newRaw uint8) bool {
		old := string(rune('a' + oldRaw%3))
		new := string(rune('x' + newRaw%3))
		got, _ := l.Replace([]byte(s), []byte(old), []byte(new))
		return string(got) == strings.ReplaceAll(s, old, new)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompare(t *testing.T) {
	var l Lib
	f := func(a, b string) bool {
		return l.Compare([]byte(a), []byte(b)) == strings.Compare(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTrim(t *testing.T) {
	var l Lib
	cases := map[string]string{
		"  hello  ":      "hello",
		"\t\n x \r\x00":  "x",
		"no-trim":        "no-trim",
		"":               "",
		"   ":            "",
		" inner  space ": "inner  space",
	}
	for in, want := range cases {
		if got := string(l.Trim([]byte(in))); got != want {
			t.Errorf("Trim(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCaseConversion(t *testing.T) {
	var l Lib
	f := func(s string) bool {
		// Restrict to ASCII to match PHP semantics.
		bs := []byte(s)
		for i := range bs {
			bs[i] &= 0x7f
		}
		up := string(l.ToUpper(bs))
		down := string(l.ToLower(bs))
		return up == strings.ToUpper(string(bs)) && down == strings.ToLower(string(bs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCaseConversionDoesNotAliasInput(t *testing.T) {
	var l Lib
	in := []byte("abc")
	out := l.ToUpper(in)
	out[0] = 'z'
	if in[0] != 'a' {
		t.Errorf("ToUpper aliased its input")
	}
}

func TestTranslate(t *testing.T) {
	var l Lib
	got := l.Translate([]byte("hello world"), []byte("lo"), []byte("01"))
	if string(got) != "he001 w1r0d" {
		t.Errorf("Translate = %q", got)
	}
	if string(l.Translate([]byte("abc"), nil, nil)) != "abc" {
		t.Errorf("empty-table Translate should copy")
	}
}

func TestTranslatePanicsOnLengthMismatch(t *testing.T) {
	var l Lib
	defer func() {
		if recover() == nil {
			t.Errorf("mismatched tables should panic")
		}
	}()
	l.Translate([]byte("x"), []byte("ab"), []byte("a"))
}

func TestHTMLSpecialChars(t *testing.T) {
	var l Lib
	got := l.HTMLSpecialChars([]byte(`<a href="x">&y</a>`))
	want := "&lt;a href=&quot;x&quot;&gt;&amp;y&lt;/a&gt;"
	if string(got) != want {
		t.Errorf("HTMLSpecialChars = %q, want %q", got, want)
	}
	if string(l.HTMLSpecialChars([]byte("plain"))) != "plain" {
		t.Errorf("plain text should pass through")
	}
}

func TestAddSlashes(t *testing.T) {
	var l Lib
	got := l.AddSlashes([]byte(`It's a "test" \ ` + "\x00"))
	want := `It\'s a \"test\" \\ ` + `\0`
	if string(got) != want {
		t.Errorf("AddSlashes = %q, want %q", got, want)
	}
}

func TestNL2BR(t *testing.T) {
	var l Lib
	cases := map[string]string{
		"a\nb":   "a<br />\nb",
		"a\r\nb": "a<br />\r\nb",
		"a\rb":   "a<br />\rb",
		"ab":     "ab",
		"\n":     "<br />\n",
	}
	for in, want := range cases {
		if got := string(l.NL2BR([]byte(in))); got != want {
			t.Errorf("NL2BR(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestConcat(t *testing.T) {
	var l Lib
	got := l.Concat([]byte("a"), []byte("bc"), nil, []byte("d"))
	if string(got) != "abcd" {
		t.Errorf("Concat = %q", got)
	}
}

func TestIsRegular(t *testing.T) {
	for _, c := range []byte("AZaz09_.,- ") {
		if !IsRegular(c) {
			t.Errorf("%q should be regular", c)
		}
	}
	for _, c := range []byte("'\"<>&\n!()[]{}/\\") {
		if IsRegular(c) {
			t.Errorf("%q should be special", c)
		}
	}
}

func TestClassScan(t *testing.T) {
	var l Lib
	// 3 segments of 4 bytes: "abcd" regular, "e'fg" special, "hi" regular.
	hv := l.ClassScan([]byte("abcde'fghi"), 4)
	if len(hv) != 1 {
		t.Fatalf("hv length %d", len(hv))
	}
	if hv[0] != 0b010 {
		t.Errorf("hv = %b, want 010", hv[0])
	}
}

func TestClassScanAllRegular(t *testing.T) {
	hv := ClassScanRef(bytes.Repeat([]byte("a"), 1000), 32)
	for _, w := range hv {
		if w != 0 {
			t.Errorf("all-regular content must produce an empty HV")
		}
	}
}

func TestClassScanDefaultSegSize(t *testing.T) {
	hv := ClassScanRef([]byte("<"), 0) // segSize <= 0 falls back to 32
	if len(hv) != 1 || hv[0] != 1 {
		t.Errorf("default segment scan wrong: %v", hv)
	}
}

func TestClassScanSegmentBoundaries(t *testing.T) {
	// Special char as the last byte of segment 0 and first byte of segment 1.
	in := make([]byte, 64)
	for i := range in {
		in[i] = 'a'
	}
	in[31] = '<'
	hv := ClassScanRef(in, 32)
	if hv[0] != 0b01 {
		t.Errorf("special at end of seg0: hv = %b", hv[0])
	}
	in[31] = 'a'
	in[32] = '<'
	hv = ClassScanRef(in, 32)
	if hv[0] != 0b10 {
		t.Errorf("special at start of seg1: hv = %b", hv[0])
	}
}

func TestObserverSeesEveryCall(t *testing.T) {
	obs := &recObs{}
	l := Lib{Obs: obs}
	l.Find([]byte("abcdef"), []byte("c"))
	l.Trim([]byte(" x "))
	l.Concat([]byte("ab"), []byte("cd"))
	if len(obs.ops) != 3 {
		t.Fatalf("observer saw %d ops, want 3", len(obs.ops))
	}
	if obs.ops[0] != OpFind || obs.bytes[0] != 6 {
		t.Errorf("find event wrong: %v %v", obs.ops[0], obs.bytes[0])
	}
	if obs.ops[2] != OpConcat || obs.bytes[2] != 4 {
		t.Errorf("concat event wrong: %v %v", obs.ops[2], obs.bytes[2])
	}
}

// TestFindMatchesNaiveReference checks the bytes.Index-backed find against
// the naive reference scan on random inputs.
func TestFindMatchesNaiveReference(t *testing.T) {
	f := func(subject []byte, pattern []byte) bool {
		if len(pattern) > 4 {
			pattern = pattern[:4] // keep match probability meaningful
		}
		return find(subject, pattern) == findRef(subject, pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFind1KB(b *testing.B) {
	var l Lib
	subject := bytes.Repeat([]byte("the quick brown fox "), 51)
	pattern := []byte("fox jumps")
	b.SetBytes(int64(len(subject)))
	for i := 0; i < b.N; i++ {
		l.Find(subject, pattern)
	}
}

// BenchmarkFindNaive1KB is the pre-optimization baseline for
// BenchmarkFind1KB: the naive O(n·m) scan over the same input.
func BenchmarkFindNaive1KB(b *testing.B) {
	subject := bytes.Repeat([]byte("the quick brown fox "), 51)
	pattern := []byte("fox jumps")
	b.SetBytes(int64(len(subject)))
	for i := 0; i < b.N; i++ {
		findRef(subject, pattern)
	}
}

func BenchmarkHTMLSpecialChars(b *testing.B) {
	var l Lib
	subject := bytes.Repeat([]byte(`plain text with <tags> & "quotes" `), 30)
	b.SetBytes(int64(len(subject)))
	for i := 0; i < b.N; i++ {
		l.HTMLSpecialChars(subject)
	}
}
