package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Errorf("out-of-range kind should be unknown")
	}
}

func TestRecorderUnbounded(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 100; i++ {
		r.Record(Event{Kind: KindAlloc, A: uint64(i)})
	}
	ev := r.Events()
	if len(ev) != 100 || r.Total() != 100 {
		t.Fatalf("len=%d total=%d", len(ev), r.Total())
	}
	if ev[42].A != 42 {
		t.Errorf("order broken: %v", ev[42])
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 20; i++ {
		r.Record(Event{Kind: KindFree, A: uint64(i)})
	}
	ev := r.Events()
	if len(ev) != 8 {
		t.Fatalf("ring kept %d events, want 8", len(ev))
	}
	for i, e := range ev {
		if e.A != uint64(12+i) {
			t.Errorf("ring event %d = %d, want %d", i, e.A, 12+i)
		}
	}
	if r.Total() != 20 {
		t.Errorf("Total = %d, want 20", r.Total())
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(4)
	r.Record(Event{})
	r.Reset()
	if len(r.Events()) != 0 || r.Total() != 0 {
		t.Errorf("Reset incomplete")
	}
}

func TestRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: KindRequest, Fn: "main", A: 1},
		{Kind: KindHashGet, Fn: "zend_hash_find", A: 77, B: 12, C: 1},
		{Kind: KindAlloc, Fn: "smart_malloc", A: 0x10000, B: 64},
		{Kind: KindStringOp, Fn: "strtoupper", A: 4, B: 1024},
		{Kind: KindRegexScan, Fn: "pcre_exec", A: 9, B: 4096},
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected empty trace, got %d events", len(got))
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTATRACE")); err == nil {
		t.Errorf("bad magic should fail")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	events := []Event{{Kind: KindAlloc, Fn: "f", A: 1, B: 2, C: 3}}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full)-1; cut++ {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d should fail", cut)
		}
	}
}

func TestRoundTripEveryKind(t *testing.T) {
	// One event of every defined kind plus unknown future kinds: all must
	// survive a Write/Read round trip bit-exactly. Forward compatibility
	// matters because the wire shape is kind-independent — a reader
	// predating a new kind still decodes the trace.
	var events []Event
	for k := Kind(0); k < numKinds; k++ {
		events = append(events, Event{Kind: k, Fn: k.String(), A: uint64(k), B: 2, C: 3})
	}
	for _, k := range []Kind{numKinds, numKinds + 1, 200, 255} {
		events = append(events, Event{Kind: k, Fn: "from_the_future", A: 9})
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("unknown kinds must read back without error: %v", err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Kind takes the raw byte, unreduced: the property covers unknown
	// (future) kinds as well as every defined one.
	f := func(kinds []uint8, fn string, a, b, c uint64) bool {
		var events []Event
		for _, k := range kinds {
			events = append(events, Event{
				Kind: Kind(k),
				Fn:   fn,
				A:    a, B: b, C: c,
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, events); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(events) {
			return false
		}
		for i := range got {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecorderMerge(t *testing.T) {
	a, b := NewRecorder(0), NewRecorder(0)
	a.Record(Event{Kind: KindHashGet, Fn: "a1"})
	b.Record(Event{Kind: KindHashSet, Fn: "b1"})
	b.Record(Event{Kind: KindAlloc, Fn: "b2"})
	a.Merge(b)
	ev := a.Events()
	if len(ev) != 3 || a.Total() != 3 {
		t.Fatalf("merged %d events (total %d), want 3", len(ev), a.Total())
	}
	if ev[0].Fn != "a1" || ev[1].Fn != "b1" || ev[2].Fn != "b2" {
		t.Errorf("merged order wrong: %+v", ev)
	}
	// b is unchanged.
	if b.Total() != 2 || len(b.Events()) != 2 {
		t.Errorf("Merge mutated its argument")
	}
}

func TestRecorderMergeBounded(t *testing.T) {
	a := NewRecorder(3)
	b := NewRecorder(2)
	for i := 0; i < 4; i++ {
		b.Record(Event{Kind: KindHashGet, A: uint64(i)}) // ring keeps 2, 3
	}
	a.Record(Event{Kind: KindHashSet, A: 100})
	a.Merge(b)
	ev := a.Events()
	if len(ev) != 3 {
		t.Fatalf("bounded merge kept %d events, want 3", len(ev))
	}
	if ev[1].A != 2 || ev[2].A != 3 {
		t.Errorf("bounded merge took wrong tail: %+v", ev)
	}
	// Total counts every event ever recorded on either side: 1 + 4.
	if a.Total() != 5 {
		t.Errorf("merged total %d, want 5", a.Total())
	}
}

func TestKindTotals(t *testing.T) {
	r := NewRecorder(2) // ring evicts, totals must not
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: KindHashGet})
	}
	r.Record(Event{Kind: KindRegexScan})
	kt := r.KindTotals()
	if kt[KindHashGet] != 5 || kt[KindRegexScan] != 1 {
		t.Errorf("kind totals = %v", kt)
	}
	var sum int64
	for _, n := range kt {
		sum += n
	}
	if sum != r.Total() {
		t.Errorf("kind totals sum %d != Total %d", sum, r.Total())
	}

	// Merge folds in the other recorder's full per-kind history, including
	// events its ring already evicted.
	o := NewRecorder(1)
	for i := 0; i < 3; i++ {
		o.Record(Event{Kind: KindAlloc}) // ring keeps 1 of 3
	}
	r.Merge(o)
	kt = r.KindTotals()
	if kt[KindAlloc] != 3 {
		t.Errorf("merged alloc total = %d, want 3", kt[KindAlloc])
	}
	if kt[KindHashGet] != 5 {
		t.Errorf("merge disturbed hash-get total: %d", kt[KindHashGet])
	}

	r.Reset()
	for _, n := range r.KindTotals() {
		if n != 0 {
			t.Errorf("Reset left kind totals %v", r.KindTotals())
			break
		}
	}
}
