// Package trace defines the operation trace that drives the simulator,
// mirroring the paper's trace-driven evaluation methodology (§5.1). The
// VM records one event per runtime activity (hash map access, heap
// operation, string function, regexp scan); the experiments replay or
// aggregate these traces, and cmd/tracedump decodes them for inspection.
//
// A Recorder is single-writer: each simulated core (vm.Runtime) owns one
// and records into it without locking. Fleet-level views are produced
// after the fact with Merge, which appends another recorder's retained
// events (grouped by worker, not interleaved by time) while preserving
// the total and per-kind counts past ring eviction — so KindTotals stays
// exact even when the bounded ring has dropped old events. The serving
// stack's /metrics endpoint exports those totals as event counters.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Kind is the event type.
type Kind uint8

const (
	KindHashGet Kind = iota
	KindHashSet
	KindHashDelete
	KindHashIterate
	KindAlloc
	KindFree
	KindStringOp
	KindRegexScan
	KindRequest // request boundary marker

	numKinds
)

// NumKinds is the number of event kinds, for dense per-kind count
// vectors indexed by Kind.
const NumKinds = int(numKinds)

// String names the event kind.
func (k Kind) String() string {
	switch k {
	case KindHashGet:
		return "hash-get"
	case KindHashSet:
		return "hash-set"
	case KindHashDelete:
		return "hash-delete"
	case KindHashIterate:
		return "hash-iterate"
	case KindAlloc:
		return "alloc"
	case KindFree:
		return "free"
	case KindStringOp:
		return "string-op"
	case KindRegexScan:
		return "regex-scan"
	case KindRequest:
		return "request"
	default:
		return "unknown"
	}
}

// Event is one traced runtime operation. Field meaning varies by kind:
//
//	hash ops:   A = map ID, B = key length, C = 1 if dynamic key
//	alloc/free: A = address, B = size
//	string op:  A = strlib op code, B = subject bytes
//	regex scan: A = regexp PC (pattern identity), B = bytes scanned
//	request:    A = request sequence number
type Event struct {
	Kind Kind
	Fn   string // leaf function attribution
	A    uint64
	B    uint64
	C    uint64
}

// Recorder collects events in memory with an optional capacity bound
// (0 = unbounded). When bounded it keeps the most recent events.
type Recorder struct {
	cap    int
	events []Event
	total  int64
	byKind [NumKinds]int64
	start  int
}

// NewRecorder creates a recorder holding at most capacity events
// (0 for unbounded).
func NewRecorder(capacity int) *Recorder {
	return &Recorder{cap: capacity}
}

// Record appends an event.
func (r *Recorder) Record(e Event) {
	r.total++
	if int(e.Kind) < NumKinds {
		r.byKind[e.Kind]++
	}
	if r.cap <= 0 {
		r.events = append(r.events, e)
		return
	}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start = (r.start + 1) % r.cap
}

// Total returns the number of events ever recorded.
func (r *Recorder) Total() int64 { return r.total }

// KindTotals returns how many events of each kind were ever recorded,
// including events a bounded ring has since evicted. Merge folds the
// source recorder's full history in, so fleet-level totals stay exact.
func (r *Recorder) KindTotals() [NumKinds]int64 { return r.byKind }

// Events returns the retained events in record order.
func (r *Recorder) Events() []Event {
	if r.cap <= 0 || len(r.events) < r.cap {
		return append([]Event(nil), r.events...)
	}
	out := make([]Event, 0, r.cap)
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Merge appends another recorder's retained events to this one (honoring
// this recorder's capacity bound) and folds in its total count. Workers
// record privately while serving; the pool merges the per-worker traces
// after the goroutines join, so merged events are grouped by worker, not
// interleaved by time.
func (r *Recorder) Merge(o *Recorder) {
	dropped := o.total - int64(len(o.events))
	var retained [NumKinds]int64
	for _, e := range o.Events() {
		r.Record(e)
		if int(e.Kind) < NumKinds {
			retained[e.Kind]++
		}
	}
	r.total += dropped // events o's ring already evicted still count
	for i := range r.byKind {
		// Record counted the retained events; top up with o's evicted ones
		// so per-kind totals reflect o's full history.
		r.byKind[i] += o.byKind[i] - retained[i]
	}
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.events = r.events[:0]
	r.start = 0
	r.total = 0
	r.byKind = [NumKinds]int64{}
}

const magic = "PHPT1\n"

// Write encodes events to w in the binary trace format.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(events))); err != nil {
		return err
	}
	for _, e := range events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(e.Fn))); err != nil {
			return err
		}
		if _, err := bw.WriteString(e.Fn); err != nil {
			return err
		}
		for _, v := range [3]uint64{e.A, e.B, e.C} {
			if err := putUvarint(v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read decodes a trace previously encoded with Write.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, errors.New("trace: bad magic")
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxEvents = 1 << 28
	if n > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", n)
	}
	events := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		var e Event
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		// Unknown kinds decode without error: every event has the same
		// wire shape regardless of kind, so a trace written by a newer
		// producer (with kinds this reader predates) still reads back —
		// the unknown events stringify as "unknown" and aggregate outside
		// the known per-kind counters.
		e.Kind = Kind(kb)
		fl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if fl > 1<<16 {
			return nil, fmt.Errorf("trace: implausible function name length %d", fl)
		}
		fn := make([]byte, fl)
		if _, err := io.ReadFull(br, fn); err != nil {
			return nil, err
		}
		e.Fn = string(fn)
		for _, dst := range [3]*uint64{&e.A, &e.B, &e.C} {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			*dst = v
		}
		events = append(events, e)
	}
	return events, nil
}
