package benchrec

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// quickOpts is the matrix configuration every test runs (the full scale
// is for committed records, not unit tests).
func quickOpts() Options { return Options{Scale: "quick", Seed: 7} }

// runOnce caches one quick matrix run for the whole test file — the
// matrix is seconds of work and several tests only need any valid
// record.
var cachedRec *Record

func matrixRecord(t *testing.T) Record {
	t.Helper()
	if cachedRec == nil {
		rec, err := RunMatrix(quickOpts())
		if err != nil {
			t.Fatal(err)
		}
		cachedRec = &rec
	}
	return *cachedRec
}

func TestMatrixShape(t *testing.T) {
	rec := matrixRecord(t)
	if rec.Schema != SchemaVersion {
		t.Errorf("schema = %d, want %d", rec.Schema, SchemaVersion)
	}
	if rec.GoVersion == "" || rec.GOOS == "" || rec.GOARCH == "" || rec.CreatedAt == "" {
		t.Errorf("environment fields missing: %+v", rec)
	}
	if len(rec.Scenarios) != len(ScenarioNames()) {
		t.Fatalf("got %d scenarios, want %d", len(rec.Scenarios), len(ScenarioNames()))
	}
	for i, name := range ScenarioNames() {
		sc := rec.Scenarios[i]
		if sc.Name != name {
			t.Fatalf("scenario %d = %q, want %q (matrix order is part of the schema)", i, sc.Name, name)
		}
		if sc.Served != sc.Requests {
			t.Errorf("%s: served %d of %d (unexpected sheds: %d/%d/%d/%d)", name,
				sc.Served, sc.Requests, sc.ShedOverload, sc.ShedDeadline, sc.ShedCanceled, sc.ShedDraining)
		}
		if sc.ReqPerSec <= 0 || sc.WallMS <= 0 || sc.P99US <= 0 {
			t.Errorf("%s: timing fields empty: req/s %.1f wall %.1fms p99 %.1fus", name, sc.ReqPerSec, sc.WallMS, sc.P99US)
		}
		if sc.SimCyclesPerReq <= 0 {
			t.Errorf("%s: no simulated cycles", name)
		}
		for _, cat := range []string{"hash", "heap", "string", "regex", "other"} {
			if _, ok := sc.SimCategoryCycles[cat]; !ok {
				t.Errorf("%s: category %q missing from breakdown", name, cat)
			}
		}
	}

	// The accelerator sweep must show the paper's direction: the
	// accelerated config simulates fewer cycles per request.
	on, _ := rec.Scenario("direct")
	off, _ := rec.Scenario("accel_off")
	if on.SimCyclesPerReq >= off.SimCyclesPerReq {
		t.Errorf("accelerated %.0f cycles/req not below baseline %.0f", on.SimCyclesPerReq, off.SimCyclesPerReq)
	}

	// The cached scenario must actually exercise the cache at a
	// meaningful hit ratio (128 entries over 512 Zipf(1.0) pages gives
	// an analytic ceiling near 0.8).
	cz, _ := rec.Scenario("cache_zipf")
	if cz.CacheHits == 0 || cz.CacheHitRatio < 0.3 {
		t.Errorf("cache scenario hit ratio %.2f (hits %d) too low to be meaningful", cz.CacheHitRatio, cz.CacheHits)
	}
	if cz.CacheHits+cz.CacheMisses+cz.CacheCoalesced != cz.Served {
		t.Errorf("cache outcomes don't partition served: %+v", cz)
	}

	// Cluster sweep: the backend count and stall must be recorded (they
	// gate comparability), every request must be served, and splitting
	// the fixed cache budget across hash-partitioned backends must keep
	// the aggregate hit ratio near the one-backend figure. The scaling
	// claim itself (throughput up with backends) is wall-clock-dependent
	// and is gated by bench-check against the committed record, not here.
	single, _ := rec.Scenario("cluster_zipf_1")
	if single.Backends != 1 || single.DBWaitMS <= 0 {
		t.Errorf("cluster_zipf_1 config not recorded: backends %d dbwait %.1fms", single.Backends, single.DBWaitMS)
	}
	for _, name := range []string{"cluster_zipf_2", "cluster_zipf_4"} {
		sc, ok := rec.Scenario(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		if sc.Workers != 1 || sc.Backends != sc.Clients || sc.CacheCapacity != single.CacheCapacity {
			t.Errorf("%s config: %+v", name, sc)
		}
		drift := sc.CacheHitRatio - single.CacheHitRatio
		if drift < 0 {
			drift = -drift
		}
		if drift > 0.05 {
			t.Errorf("%s hit ratio %.3f vs single-backend %.3f: drift %.3f > 0.05",
				name, sc.CacheHitRatio, single.CacheHitRatio, drift)
		}
	}

	// Scripted tier pair: the interp baseline must stay on the
	// tree-walker, the auto side must have promoted during warmup and
	// served the measured phase (mostly) from the bytecode tier, and the
	// promotion must show up as cheaper simulated dispatch. Both record
	// the Fig. 1 profile gauges so the trajectory captures the flat
	// profile reshaping under tier-up.
	si, _ := rec.Scenario("scripted_zipf_interp")
	sa, _ := rec.Scenario("scripted_zipf")
	if si.Tier != "interp" || si.TierBytecodeCalls != 0 || si.TierInterpCalls == 0 {
		t.Errorf("scripted_zipf_interp should run entirely on the interpreter: %+v", si)
	}
	if sa.Tier != "auto" || sa.TierPromotions == 0 || sa.TierPromotedFunctions == 0 {
		t.Errorf("scripted_zipf should promote under the default policy: %+v", sa)
	}
	if sa.TierBytecodeCalls == 0 || sa.TierICHits == 0 {
		t.Errorf("scripted_zipf should serve bytecode calls with inline-cache hits: %+v", sa)
	}
	if si.ProfileHottestFrac <= 0 || si.ProfileFuncsFor65 <= 0 ||
		sa.ProfileHottestFrac <= 0 || sa.ProfileFuncsFor65 <= 0 {
		t.Errorf("scripted scenarios should record the Fig. 1 profile gauges: interp %+v auto %+v", si, sa)
	}
	if sa.SimCyclesPerReq >= si.SimCyclesPerReq {
		t.Errorf("bytecode tier should simulate cheaper dispatch: auto %.0f cycles/req vs interp %.0f",
			sa.SimCyclesPerReq, si.SimCyclesPerReq)
	}
}

// TestMatrixDeterministic is the record-identity property: two runs
// with the same seed and scale must serialize to byte-identical
// canonical JSON (everything except the documented timing fields).
func TestMatrixDeterministic(t *testing.T) {
	a := matrixRecord(t)
	b, err := RunMatrix(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	ja, err := a.Canonical().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Canonical().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed+scale produced different canonical records:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
	}

	// A different seed must actually change the canonical record
	// (otherwise the property above would be vacuous).
	c, err := RunMatrix(Options{Scale: "quick", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := c.Canonical().MarshalIndent()
	if bytes.Equal(ja, jc) {
		t.Error("different seeds produced identical canonical records")
	}
}

// TestMergeBestTrial: the trial fold keeps each wall-clock metric's
// best observed value per scenario and rejects trials whose
// deterministic remainder diverged.
func TestMergeBestTrial(t *testing.T) {
	base := matrixRecord(t)
	trial := matrixRecord(t) // same underlying record: deterministic fields agree

	best := base
	best.Scenarios = append([]Scenario(nil), base.Scenarios...)
	// Doctor the trial's wall-clock fields both ways on scenario 0:
	// faster throughput and allocs must be taken, slower p99 must not.
	trial.Scenarios = append([]Scenario(nil), trial.Scenarios...)
	trial.Scenarios[0].ReqPerSec = base.Scenarios[0].ReqPerSec * 2
	trial.Scenarios[0].AllocsPerOp = base.Scenarios[0].AllocsPerOp - 1
	trial.Scenarios[0].P99US = base.Scenarios[0].P99US * 2
	if err := mergeBestTrial(&best, trial); err != nil {
		t.Fatal(err)
	}
	if got, want := best.Scenarios[0].ReqPerSec, base.Scenarios[0].ReqPerSec*2; got != want {
		t.Errorf("req/s not upgraded: got %g want %g", got, want)
	}
	if got, want := best.Scenarios[0].AllocsPerOp, base.Scenarios[0].AllocsPerOp-1; got != want {
		t.Errorf("allocs not upgraded: got %g want %g", got, want)
	}
	if got, want := best.Scenarios[0].P99US, base.Scenarios[0].P99US; got != want {
		t.Errorf("worse p99 leaked into best: got %g want %g", got, want)
	}

	// A deterministic-field divergence is a nondeterminism bug, not
	// noise to merge over.
	bad := base
	bad.Scenarios = append([]Scenario(nil), base.Scenarios...)
	bad.Scenarios[1].SimCyclesPerReq++
	if err := mergeBestTrial(&best, bad); err == nil {
		t.Fatal("merge accepted a trial with diverged deterministic fields")
	}
}

func TestCanonicalZeroesTimingFields(t *testing.T) {
	rec := matrixRecord(t)
	can := rec.Canonical()
	if can.Seq != 0 || can.CreatedAt != "" {
		t.Errorf("canonical kept identity fields: seq %d, created_at %q", can.Seq, can.CreatedAt)
	}
	for _, sc := range can.Scenarios {
		if sc.ReqPerSec != 0 || sc.WallMS != 0 || sc.P50US != 0 || sc.P95US != 0 || sc.P99US != 0 || sc.AllocsPerOp != 0 {
			t.Errorf("canonical kept timing fields in %s: %+v", sc.Name, sc)
		}
		if sc.SimCyclesPerReq == 0 {
			t.Errorf("canonical dropped simulated fields in %s", sc.Name)
		}
	}
	// Canonical must not mutate the original.
	if rec.Scenarios[0].ReqPerSec == 0 {
		t.Error("Canonical mutated its receiver")
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := matrixRecord(t)
	rec.Seq = 3
	path, err := Write(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_3.json" {
		t.Errorf("wrote %s, want BENCH_3.json", path)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(rec)
	jb, _ := json.Marshal(got)
	if !bytes.Equal(ja, jb) {
		t.Error("record did not round-trip")
	}
	if _, err := Write(dir, rec); err == nil {
		t.Error("overwriting an existing record must fail (append-only trajectory)")
	}
	seq, err := LatestSeq(dir)
	if err != nil || seq != 3 {
		t.Errorf("LatestSeq = %d, %v; want 3", seq, err)
	}
}

func TestLatestSeqEmpty(t *testing.T) {
	seq, err := LatestSeq(t.TempDir())
	if err != nil || seq != 0 {
		t.Errorf("LatestSeq on empty dir = %d, %v; want 0, nil", seq, err)
	}
}

func TestLoadRejectsNonRecords(t *testing.T) {
	if _, err := Load("/nonexistent/BENCH_1.json"); err == nil {
		t.Error("missing file must error")
	}
}

func TestCompareCleanSelf(t *testing.T) {
	rec := matrixRecord(t)
	regs, err := Compare(rec, rec, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("self-comparison reported regressions: %v", regs)
	}
}

// TestCompareCatchesInjectedRegressions doctors a copy of a real record
// past each tolerance and checks every gate trips — the synthetic
// failure path `make bench-check`'s short mode exercises.
func TestCompareCatchesInjectedRegressions(t *testing.T) {
	base := matrixRecord(t)
	fresh := base.Canonical() // deep-ish copy of scenarios
	// Canonical zeroed the timing fields; restore them from base, then
	// doctor three different scenarios three different ways.
	fresh.Scale, fresh.Seed = base.Scale, base.Seed
	for i := range fresh.Scenarios {
		fresh.Scenarios[i].ReqPerSec = base.Scenarios[i].ReqPerSec
		fresh.Scenarios[i].P50US = base.Scenarios[i].P50US
		fresh.Scenarios[i].P95US = base.Scenarios[i].P95US
		fresh.Scenarios[i].P99US = base.Scenarios[i].P99US
		fresh.Scenarios[i].AllocsPerOp = base.Scenarios[i].AllocsPerOp
	}
	fresh.Scenarios[0].ReqPerSec *= 0.80 // −20% throughput: beyond −5%
	fresh.Scenarios[1].P99US *= 1.50     // +50% p99: beyond +10%
	fresh.Scenarios[2].AllocsPerOp += 1  // +1 alloc/op: beyond the 0.5 slack

	regs, err := Compare(base, fresh, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		base.Scenarios[0].Name + "/req_per_sec":   true,
		base.Scenarios[1].Name + "/p99_us":        true,
		base.Scenarios[2].Name + "/allocs_per_op": true,
	}
	got := map[string]bool{}
	for _, r := range regs {
		got[r.Scenario+"/"+r.Metric] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("injected regression %s not reported (got %v)", k, regs)
		}
	}
	if len(regs) != len(want) {
		t.Errorf("reported %d regressions, want %d: %v", len(regs), len(want), regs)
	}

	table := RenderTable(base, fresh, regs)
	if !strings.Contains(table, "FAIL") || !strings.Contains(table, "req_per_sec") {
		t.Errorf("table does not mark failures:\n%s", table)
	}

	// Moves within tolerance must stay clean.
	ok := fresh
	ok.Scenarios = append([]Scenario(nil), fresh.Scenarios...)
	ok.Scenarios[0] = base.Scenarios[0]
	ok.Scenarios[1] = base.Scenarios[1]
	ok.Scenarios[2] = base.Scenarios[2]
	ok.Scenarios[0].ReqPerSec *= 0.97 // −3%: inside −5%
	ok.Scenarios[1].P99US *= 1.05     // +5%: inside +10%
	regs, err = Compare(base, ok, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("within-tolerance drift reported as regression: %v", regs)
	}
}

// TestCompareCalibrationRelaxes: a calibrated host slowdown widens the
// wall-clock limits by the measured factor (so a slower shared host
// cannot fake a regression), while a *faster* fresh host never
// tightens them — and uncalibrated records compare unnormalized.
func TestCompareCalibrationRelaxes(t *testing.T) {
	base := matrixRecord(t)
	base.CalibOpsPerSec = 1000

	// Fresh host measured 2x slower; every wall-clock metric 2x worse.
	// Without calibration this fails throughput and p99 everywhere;
	// with it, the doubled limits absorb the slowdown exactly.
	fresh := base
	fresh.CalibOpsPerSec = 500
	fresh.Scenarios = append([]Scenario(nil), base.Scenarios...)
	for i := range fresh.Scenarios {
		fresh.Scenarios[i].ReqPerSec /= 2
		fresh.Scenarios[i].P99US *= 2
	}
	regs, err := Compare(base, fresh, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("calibrated 2x slowdown reported as regression: %v", regs)
	}

	// The same numbers without calibration must fail.
	uncal, uncalFresh := base, fresh
	uncal.CalibOpsPerSec, uncalFresh.CalibOpsPerSec = 0, 0
	regs, err = Compare(uncal, uncalFresh, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) == 0 {
		t.Error("uncalibrated 2x slowdown compared clean")
	}

	// A genuine regression beyond the slowdown still trips.
	bad := fresh
	bad.Scenarios = append([]Scenario(nil), fresh.Scenarios...)
	bad.Scenarios[0].ReqPerSec = base.Scenarios[0].ReqPerSec / 4
	regs, err = Compare(base, bad, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Metric != "req_per_sec" {
		t.Errorf("regression beyond calibrated slowdown not isolated: %v", regs)
	}

	// A faster fresh host (ratio > 1) must not tighten the gates:
	// identical wall-clock numbers stay clean.
	faster := base
	faster.CalibOpsPerSec = 4000
	faster.Scenarios = append([]Scenario(nil), base.Scenarios...)
	regs, err = Compare(base, faster, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("faster host tightened the gate: %v", regs)
	}
}

func TestCompareRejectsIncomparable(t *testing.T) {
	rec := matrixRecord(t)
	other := rec
	other.Seed++
	if _, err := Compare(rec, other, DefaultTolerances()); err == nil {
		t.Error("seed mismatch must error, not pass")
	}
	other = rec
	other.Schema++
	if _, err := Compare(rec, other, DefaultTolerances()); err == nil {
		t.Error("schema mismatch must error")
	}
	other = rec
	other.Scenarios = append([]Scenario(nil), rec.Scenarios...)
	other.Scenarios[0].Requests++
	if _, err := Compare(rec, other, DefaultTolerances()); err == nil {
		t.Error("config drift must error")
	}
	other = rec
	other.Scenarios = rec.Scenarios[:1]
	if _, err := Compare(rec, other, DefaultTolerances()); err == nil {
		t.Error("missing scenario must error")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := RunMatrix(Options{Scale: "huge"}); err == nil {
		t.Error("unknown scale must error")
	}
	o := Options{}
	if err := o.normalize(); err != nil || o.Scale != "full" || o.Seed != 1 {
		t.Errorf("defaults = %+v, %v; want full/1", o, err)
	}
}
