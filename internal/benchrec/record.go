// Package benchrec makes the repo's performance trajectory a reviewed
// artifact instead of folklore. It runs a pinned scenario matrix — the
// direct pool loop, the scheduler path, the cached Zipf path, and the
// accelerator on/off sweep EXPERIMENTS.md documents — and serializes
// one schema-versioned Record per run into BENCH_<n>.json at the repo
// root. Committed records form the trajectory; scripts/bench_compare.go
// diffs a fresh run against the latest committed record and fails CI on
// regressions beyond the documented tolerances.
//
// Records mix two kinds of fields. Simulated fields (per-category cycle
// totals, cache hit ratios, shed counts) are deterministic for a given
// seed+scale: the matrix uses a single closed-loop client over the
// pool's FIFO worker rotation, so same inputs give byte-identical
// values, which TestMatrixDeterministic pins. Timing fields (req/s,
// latency percentiles, allocs/op, timestamps) vary run to run; they are
// what Compare applies tolerances to and what Canonical zeroes.
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
)

// SchemaVersion is the record schema this package writes. Compare
// refuses to diff records with mismatched schemas instead of guessing.
const SchemaVersion = 1

// Record is one benchmark run: the environment it ran in, the knobs
// that pin the matrix, and one Scenario per matrix entry.
type Record struct {
	// Schema is the record format version (SchemaVersion at write time).
	Schema int `json:"schema"`
	// Seq is the record's position in the committed trajectory — the n
	// in BENCH_<n>.json.
	Seq int `json:"seq"`
	// CreatedAt is the RFC3339 wall-clock instant the run started.
	CreatedAt string `json:"created_at"`
	// GoVersion, GOOS, GOARCH identify the toolchain and platform, so a
	// regression can be told apart from an environment change.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Scale names the pinned matrix size: "full" (the paper's 300
	// warmup / 200 measured methodology) or "quick" (CI-sized).
	Scale string `json:"scale"`
	// Seed is the base RNG seed every scenario derives its streams from.
	Seed int64 `json:"seed"`
	// CalibOpsPerSec is the host-speed calibration: iterations/sec of a
	// pinned pure-CPU spin loop measured alongside the matrix (best
	// pass kept). Compare divides the committed value by the fresh one
	// to cancel host speed out of the wall-clock gates — a shared host
	// that got slower since record time relaxes the limits by exactly
	// the measured factor, and can no longer fake a code regression.
	// Zero in records written before calibration existed; those compare
	// unnormalized.
	CalibOpsPerSec float64 `json:"calib_ops_per_sec,omitempty"`
	// Scenarios holds one entry per matrix scenario, in matrix order.
	Scenarios []Scenario `json:"scenarios"`
}

// Scenario is one pinned workload configuration and what it measured.
type Scenario struct {
	// Name identifies the scenario within the matrix: "direct",
	// "accel_off", "scheduler", "cache_zipf", the cluster sweep
	// "cluster_zipf_<n>" at 1, 2, and 4 backends, or the scripted
	// bytecode-tier pair "scripted_zipf_interp"/"scripted_zipf".
	Name string `json:"name"`
	// App is the workload application served (wordpress throughout).
	App string `json:"app"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Warmup and Requests are the discarded and measured request counts.
	Warmup   int `json:"warmup"`
	Requests int `json:"requests"`
	// Clients is the closed-loop client count on scheduler-driven
	// scenarios (0 for direct pool scenarios).
	Clients int `json:"clients"`
	// QueueDepth and TimeoutMS echo the scheduler config (0 when the
	// scenario bypasses the scheduler).
	QueueDepth int     `json:"queue_depth"`
	TimeoutMS  float64 `json:"timeout_ms"`
	// Accelerated reports whether the paper's accelerators (and
	// mitigations) were enabled for this scenario's VM config.
	Accelerated bool `json:"accelerated"`
	// CacheCapacity, ZipfPages, ZipfS pin the cached scenario's response
	// cache size and popularity distribution (0 when uncached).
	CacheCapacity int     `json:"cache_capacity"`
	ZipfPages     int     `json:"zipf_pages"`
	ZipfS         float64 `json:"zipf_s"`
	// Backends is the cluster scenario's backend count (0 for
	// single-process scenarios); CacheCapacity is then the TOTAL budget
	// split across backends by key-range ownership.
	Backends int `json:"backends"`
	// DBWaitMS is the cluster scenario's simulated per-render database
	// stall, held FPM-style on the worker (0 when disabled).
	DBWaitMS float64 `json:"db_wait_ms"`

	// ReqPerSec is measured throughput: served requests per wall second.
	ReqPerSec float64 `json:"req_per_sec"`
	// WallMS is the measured phase's wall-clock duration.
	WallMS float64 `json:"wall_ms"`
	// P50US, P95US, P99US are client-visible per-request latency
	// percentiles (nearest-rank), in microseconds.
	P50US float64 `json:"p50_us"`
	P95US float64 `json:"p95_us"`
	P99US float64 `json:"p99_us"`
	// AllocsPerOp is heap allocations per served request across the
	// measured phase (runtime.MemStats Mallocs delta / served).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Served counts requests that completed; the four shed counts
	// partition the rejected remainder by reason.
	Served       int `json:"served"`
	ShedOverload int `json:"shed_overload"`
	ShedDeadline int `json:"shed_deadline"`
	ShedCanceled int `json:"shed_canceled"`
	ShedDraining int `json:"shed_draining"`
	// CacheHits, CacheMisses, CacheCoalesced partition served requests
	// by response-cache outcome; CacheHitRatio is hits over lookups.
	CacheHits      int     `json:"cache_hits"`
	CacheMisses    int     `json:"cache_misses"`
	CacheCoalesced int     `json:"cache_coalesced"`
	CacheHitRatio  float64 `json:"cache_hit_ratio"`
	// SimCyclesPerReq and SimEnergyPJPerReq are the simulated cost
	// model's per-request averages for the measured phase.
	SimCyclesPerReq   float64 `json:"sim_cycles_per_req"`
	SimEnergyPJPerReq float64 `json:"sim_energy_pj_per_req"`
	// SimCategoryCycles is the simulated cycle total per activity
	// category (hash, heap, string, regex, ...) over the measured phase,
	// including the response cache's lookup charges when present.
	SimCategoryCycles map[string]float64 `json:"sim_category_cycles"`

	// Tier names the script execution tier on scripted scenarios
	// ("interp", "auto", "bytecode"; empty elsewhere). The tier counters
	// below are fleet totals merged across pool workers and are
	// deterministic for a given seed+scale (single closed-loop client,
	// FIFO worker rotation, request-count promotion windows).
	Tier                  string `json:"tier,omitempty"`
	TierPromotions        int64  `json:"tier_promotions,omitempty"`
	TierPromotedFunctions int    `json:"tier_promoted_functions,omitempty"`
	TierBytecodeCalls     int64  `json:"tier_bytecode_calls,omitempty"`
	TierInterpCalls       int64  `json:"tier_interp_calls,omitempty"`
	TierICHits            int64  `json:"tier_ic_hits,omitempty"`
	// ProfileHottestFrac and ProfileFuncsFor65 are the paper's Fig. 1
	// headline numbers computed over the scenario's merged profile —
	// recorded on scripted scenarios so the trajectory shows the flat
	// profile shifting as the tier promotes hot functions.
	ProfileHottestFrac float64 `json:"profile_hottest_frac,omitempty"`
	ProfileFuncsFor65  int     `json:"profile_funcs_for_65,omitempty"`
}

// Canonical returns a copy of the record with every timing-dependent
// field zeroed: CreatedAt, Seq, and the calibration on the record, and
// throughput, wall, latency percentiles, and allocs/op on each
// scenario. Two runs with
// the same seed and scale must produce byte-identical canonical JSON —
// the determinism property TestMatrixDeterministic enforces.
func (r Record) Canonical() Record {
	out := r
	out.Seq = 0
	out.CreatedAt = ""
	out.CalibOpsPerSec = 0
	out.Scenarios = make([]Scenario, len(r.Scenarios))
	for i, sc := range r.Scenarios {
		sc.ReqPerSec = 0
		sc.WallMS = 0
		sc.P50US = 0
		sc.P95US = 0
		sc.P99US = 0
		sc.AllocsPerOp = 0
		out.Scenarios[i] = sc
	}
	return out
}

// Scenario returns the named scenario and whether it exists.
func (r Record) Scenario(name string) (Scenario, bool) {
	for _, sc := range r.Scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// MarshalIndent renders the record as stable, human-reviewable JSON
// (map keys sort, so the output is deterministic).
func (r Record) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Filename returns the trajectory filename for sequence number seq.
func Filename(seq int) string { return "BENCH_" + strconv.Itoa(seq) + ".json" }

// benchFileRE matches trajectory filenames and captures the sequence.
var benchFileRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// LatestSeq scans dir for BENCH_<n>.json files and returns the highest
// sequence number present (0 when there are none).
func LatestSeq(dir string) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	latest := 0
	for _, ent := range ents {
		m := benchFileRE.FindStringSubmatch(ent.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > latest {
			latest = n
		}
	}
	return latest, nil
}

// Load reads and validates one record file.
func Load(path string) (Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return Record{}, fmt.Errorf("benchrec: parse %s: %w", path, err)
	}
	if r.Schema == 0 || len(r.Scenarios) == 0 {
		return Record{}, fmt.Errorf("benchrec: %s is not a benchmark record (schema %d, %d scenarios)",
			path, r.Schema, len(r.Scenarios))
	}
	return r, nil
}

// Write stores rec as dir/BENCH_<rec.Seq>.json. It refuses to
// overwrite an existing file — the trajectory is append-only.
func Write(dir string, rec Record) (string, error) {
	path := filepath.Join(dir, Filename(rec.Seq))
	if _, err := os.Stat(path); err == nil {
		return "", fmt.Errorf("benchrec: %s already exists; the trajectory is append-only", path)
	}
	b, err := rec.MarshalIndent()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ScenarioNames lists the matrix scenario names in matrix order.
func ScenarioNames() []string {
	return []string{"direct", "accel_off", "scheduler", "cache_zipf",
		"cluster_zipf_1", "cluster_zipf_2", "cluster_zipf_4",
		"scripted_zipf_interp", "scripted_zipf"}
}
