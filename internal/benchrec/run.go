package benchrec

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/php"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Matrix knobs pinned per scale. The full scale matches the paper's
// serving methodology (300 warmup, 200 measured — EXPERIMENTS.md);
// quick is sized for CI.
const (
	fullWarmup  = 300
	fullMeasure = 200

	quickWarmup  = 40
	quickMeasure = 80

	matrixApp     = "wordpress"
	matrixWorkers = 2

	// Scheduler scenario: a deep queue and a generous timeout keep shed
	// counts deterministically zero — overload behaviour is covered by
	// the serve package's own tests, not the trajectory.
	schedQueueDepth = 64
	schedTimeout    = 30 * time.Second

	// Cached scenario: 128 cached responses over 512 Zipf(1.0) pages.
	// The analytic steady-state top-128 share is ~80%; the recorded
	// ratio sits lower (~0.5 at full scale) because the cache starts
	// cold, but the exact value is pinned by the seed.
	cacheCapacity = 128
	zipfPages     = 512
	zipfExponent  = 1.0

	// Cluster sweep: 1/2/4 single-worker backends behind the affinity
	// ring, sharing the SAME total cache budget and page universe as
	// cache_zipf so the aggregate hit ratio is directly comparable. The
	// simulated database stall is what the extra backends overlap — on a
	// one-core host, CPU render time serializes regardless of backend
	// count, so cluster scaling is an I/O-overlap claim, exactly like
	// real FPM fleets sized for database-bound pages. 2048 ring replicas
	// keep the distinct-page split close to even at 4 backends (the
	// straggler backend's share of misses bounds cluster speedup, and
	// coarser rings measurably widen it); the 45ms stall makes I/O
	// overlap dominate the serialized CPU renders.
	clusterWorkers      = 1
	clusterRingReplicas = 2048
	clusterDBWaitFull   = 45 * time.Millisecond
	clusterDBWaitQuick  = 2 * time.Millisecond
	clusterMeasureFull  = 400
	clusterMeasureQuick = 80

	// Scripted scenario: the PHP blog script served page-keyed (uncached)
	// over the same Zipf page universe as cache_zipf, once pinned to the
	// tree-walking interpreter and once with profile-guided tier
	// promotion. The pair is the trajectory's view of the bytecode tier:
	// same requests, same pages, same output bytes, different execution
	// engine once the hot functions cross the promotion threshold.
	scriptedApp = "phpscript-blog"
)

// Options selects the matrix size and base seed for one run.
type Options struct {
	// Scale is "full" (default) or "quick".
	Scale string
	// Seed is the base RNG seed (default 1, the seed EXPERIMENTS.md
	// figures use).
	Seed int64
	// Trials is how many times the whole matrix runs (<= 0 means 1).
	// Wall-clock metrics (throughput, latency percentiles, allocs/op)
	// keep the best value observed across trials, per scenario and
	// metric; the deterministic fields must agree exactly across trials
	// or RunMatrix errors. Contention on a shared host only ever slows
	// a trial down, so the per-metric best is the estimate of the
	// machine's unloaded speed — the same alternating best-of-trials
	// defence the wall-clock overhead guards use. bench-record and
	// bench-check both run 5 trials so the committed and fresh sides
	// estimate the same statistic. (Three trials sufficed while the
	// serve path allocated ~1700 objects/request; the arena/recycling
	// work made requests fast enough that tail percentiles over a
	// 200-request window need the larger sample to stabilize.)
	Trials int
}

func (o *Options) normalize() error {
	if o.Scale == "" {
		o.Scale = "full"
	}
	if o.Scale != "full" && o.Scale != "quick" {
		return fmt.Errorf("benchrec: unknown scale %q (want full or quick)", o.Scale)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	return nil
}

// counts returns (warmup, measured) for the scale.
func (o Options) counts() (int, int) {
	if o.Scale == "quick" {
		return quickWarmup, quickMeasure
	}
	return fullWarmup, fullMeasure
}

// RunMatrix runs the pinned scenario matrix opts.Trials times, merges
// the trials metric-wise best (see Options.Trials), and returns the
// resulting record with Seq 0 (the caller assigns the trajectory
// position).
//
// Determinism: every scenario drives the pool from a single closed-loop
// client (or the pool's own statically partitioned loop), so the
// per-worker request streams — and with them every simulated cost,
// cache outcome, and shed count — depend only on Seed and Scale.
// Canonical() strips the remaining wall-clock-dependent fields.
func RunMatrix(opts Options) (Record, error) {
	if err := opts.normalize(); err != nil {
		return Record{}, err
	}
	best, err := runMatrixOnce(opts)
	if err != nil {
		return Record{}, err
	}
	best.CalibOpsPerSec = calibrate()
	for trial := 1; trial < opts.Trials; trial++ {
		rec, err := runMatrixOnce(opts)
		if err != nil {
			return Record{}, err
		}
		if err := mergeBestTrial(&best, rec); err != nil {
			return Record{}, err
		}
		if c := calibrate(); c > best.CalibOpsPerSec {
			best.CalibOpsPerSec = c
		}
	}
	return best, nil
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// calibrate measures the host's current pure-CPU speed: a fixed xorshift
// spin (no allocation, no memory traffic beyond one register-resident
// word) timed over several short passes, best pass kept. The loop's
// iterations/sec depend only on how much CPU the host actually grants,
// which is exactly the factor Compare wants to cancel out of the
// wall-clock gates.
func calibrate() float64 {
	const (
		iters  = 1 << 23
		passes = 3
	)
	var best float64
	for p := 0; p < passes; p++ {
		x := uint64(0x9E3779B97F4A7C15)
		start := time.Now()
		for i := 0; i < iters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		elapsed := time.Since(start)
		calibSink += x
		if ops := iters / elapsed.Seconds(); ops > best {
			best = ops
		}
	}
	return best
}

// mergeBestTrial folds one trial into the running best: wall-clock
// metrics keep their best observed value per scenario, and the
// deterministic remainder must match exactly (a divergence means the
// matrix itself went nondeterministic, which is a bug, not noise).
func mergeBestTrial(best *Record, trial Record) error {
	b, t := best.Canonical(), trial.Canonical()
	if len(b.Scenarios) != len(t.Scenarios) {
		return fmt.Errorf("benchrec: trial scenario count drifted: %d vs %d", len(b.Scenarios), len(t.Scenarios))
	}
	for i := range b.Scenarios {
		if !reflect.DeepEqual(b.Scenarios[i], t.Scenarios[i]) {
			return fmt.Errorf("benchrec: scenario %s is nondeterministic across trials:\n  %+v\nvs\n  %+v",
				b.Scenarios[i].Name, b.Scenarios[i], t.Scenarios[i])
		}
	}
	for i := range best.Scenarios {
		bs, ts := &best.Scenarios[i], trial.Scenarios[i]
		if ts.ReqPerSec > bs.ReqPerSec {
			bs.ReqPerSec = ts.ReqPerSec
		}
		if ts.WallMS < bs.WallMS {
			bs.WallMS = ts.WallMS
		}
		if ts.P50US < bs.P50US {
			bs.P50US = ts.P50US
		}
		if ts.P95US < bs.P95US {
			bs.P95US = ts.P95US
		}
		if ts.P99US < bs.P99US {
			bs.P99US = ts.P99US
		}
		if ts.AllocsPerOp < bs.AllocsPerOp {
			bs.AllocsPerOp = ts.AllocsPerOp
		}
	}
	return nil
}

// runMatrixOnce runs every scenario once and assembles one record.
func runMatrixOnce(opts Options) (Record, error) {
	rec := Record{
		Schema:    SchemaVersion,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     opts.Scale,
		Seed:      opts.Seed,
	}
	warmup, measure := opts.counts()

	for _, name := range ScenarioNames() {
		var (
			sc  Scenario
			err error
		)
		switch name {
		case "direct":
			sc, err = runDirect(opts, warmup, measure, true)
		case "accel_off":
			sc, err = runDirect(opts, warmup, measure, false)
		case "scheduler":
			sc, err = runScheduler(opts, warmup, measure)
		case "cache_zipf":
			sc, err = runCacheZipf(opts, warmup, measure)
		case "cluster_zipf_1":
			sc, err = runCluster(opts, warmup, 1)
		case "cluster_zipf_2":
			sc, err = runCluster(opts, warmup, 2)
		case "cluster_zipf_4":
			sc, err = runCluster(opts, warmup, 4)
		case "scripted_zipf_interp":
			sc, err = runScriptedZipf(opts, warmup, measure, php.TierInterp)
		case "scripted_zipf":
			sc, err = runScriptedZipf(opts, warmup, measure, php.TierAuto)
		}
		if err != nil {
			return Record{}, fmt.Errorf("benchrec: scenario %s: %w", name, err)
		}
		sc.Name = name
		rec.Scenarios = append(rec.Scenarios, sc)
	}
	return rec, nil
}

// vmConfig builds the scenario VM config: mitigations always on (the
// paper's §3 baseline for the serving experiments), accelerators per
// the on/off sweep. The trace is bounded: benchmark scenarios never
// read the event ring (per-kind totals stay exact past eviction), and
// an unbounded ring's growth dominated the recorded allocs/op without
// informing any metric.
func vmConfig(accelerated bool) vm.Config {
	cfg := vm.Config{Mitigations: sim.AllMitigations(), TraceCapacity: 4096}
	if accelerated {
		cfg.Features = isa.AllAccelerators()
	}
	return cfg
}

// measureAllocs runs f and returns heap allocations per request across
// it. A forced GC on each side keeps the Mallocs delta from absorbing a
// neighbouring scenario's garbage.
func measureAllocs(requests int, f func()) float64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if requests <= 0 {
		return 0
	}
	return float64(after.Mallocs-before.Mallocs) / float64(requests)
}

// baseScenario fills the config half of a Scenario.
func baseScenario(workers, warmup, measure int, accelerated bool) Scenario {
	return Scenario{
		App:         matrixApp,
		Workers:     workers,
		Warmup:      warmup,
		Requests:    measure,
		Accelerated: accelerated,
	}
}

// simFields fills the simulated-cost fields from a merged meter. Totals
// are summed in deterministic order — the dense category vector for
// cycles, the sorted function list for energy — because float addition
// is order-sensitive and Meter's map-walking totals would smear the
// last few bits differently run to run, breaking the byte-identical
// canonical record property.
func (sc *Scenario) simFields(mt *sim.Meter, requests int) {
	if requests <= 0 {
		return
	}
	vec := mt.CategoryCyclesVec()
	sc.SimCyclesPerReq = vec.Total() / float64(requests)
	var energy float64
	for _, f := range mt.Functions() {
		energy += f.Energy(&mt.Model)
	}
	sc.SimEnergyPJPerReq = energy / float64(requests)
	sc.SimCategoryCycles = make(map[string]float64, sim.NumCategories)
	for _, c := range sim.Categories() {
		sc.SimCategoryCycles[c.String()] = vec[c]
	}
}

// latencyFields fills the client-visible latency percentiles.
func (sc *Scenario) latencyFields(l workload.LatencyStats) {
	sc.P50US = float64(l.P50) / float64(time.Microsecond)
	sc.P95US = float64(l.P95) / float64(time.Microsecond)
	sc.P99US = float64(l.P99) / float64(time.Microsecond)
}

// runDirect is the direct pool loop (no scheduler): Pool.Run with the
// static request partition, accelerators on or off. The on/off pair is
// the trajectory's view of the EXPERIMENTS.md accelerator sweep.
func runDirect(opts Options, warmup, measure int, accelerated bool) (Scenario, error) {
	pool, err := workload.NewPool(matrixWorkers, vmConfig(accelerated), matrixApp, opts.Seed)
	if err != nil {
		return Scenario{}, err
	}
	// Warmup separately so the allocation window covers only the
	// measured phase.
	pool.Run(workload.LoadGenerator{Warmup: warmup}, 0)
	var res workload.Result
	allocs := measureAllocs(measure, func() {
		res = pool.Run(workload.LoadGenerator{Requests: measure}, 0)
	})

	sc := baseScenario(matrixWorkers, warmup, measure, accelerated)
	sc.Served = res.Requests
	sc.ReqPerSec = res.Throughput()
	sc.WallMS = float64(res.Wall) / float64(time.Millisecond)
	sc.AllocsPerOp = allocs
	sc.latencyFields(res.Latency)
	sc.simFields(pool.MergedMeter(), res.Requests)
	return sc, nil
}

// runScheduler drives the measured phase through serve.Scheduler with a
// queue and timeout, from one closed-loop client (determinism: the FIFO
// free list rotates workers in a fixed order).
func runScheduler(opts Options, warmup, measure int) (Scenario, error) {
	pool, err := workload.NewPool(matrixWorkers, vmConfig(true), matrixApp, opts.Seed)
	if err != nil {
		return Scenario{}, err
	}
	pool.Run(workload.LoadGenerator{Warmup: warmup}, 0)
	s := serve.NewScheduler(pool, serve.Config{QueueDepth: schedQueueDepth, Timeout: schedTimeout})
	var ls serve.LoadStats
	allocs := measureAllocs(measure, func() {
		ls = serve.RunLoad(context.Background(), s, serve.LoadOptions{Requests: measure, Clients: 1})
	})

	sc := baseScenario(matrixWorkers, warmup, measure, true)
	sc.Clients = 1
	sc.QueueDepth = schedQueueDepth
	sc.TimeoutMS = float64(schedTimeout) / float64(time.Millisecond)
	sc.fillLoadStats(ls)
	sc.AllocsPerOp = allocs
	sc.simFields(pool.MergedMeter(), ls.Served)
	return sc, nil
}

// runCacheZipf is the cached serving path: shared-seed pool (page
// identity), response cache, Zipf page popularity, one client.
func runCacheZipf(opts Options, warmup, measure int) (Scenario, error) {
	pool, err := workload.NewPoolSharedSeed(matrixWorkers, vmConfig(true), matrixApp, opts.Seed)
	if err != nil {
		return Scenario{}, err
	}
	pool.Run(workload.LoadGenerator{Warmup: warmup}, 0)
	s := serve.NewScheduler(pool, serve.Config{QueueDepth: schedQueueDepth, Timeout: schedTimeout})
	c := cache.New(cache.Config{Capacity: cacheCapacity})
	keys, err := workload.NewZipfKeys(opts.Seed, zipfExponent, zipfPages)
	if err != nil {
		return Scenario{}, err
	}
	var ls serve.LoadStats
	allocs := measureAllocs(measure, func() {
		ls = serve.RunLoad(context.Background(), s, serve.LoadOptions{
			Requests: measure,
			Clients:  1,
			Cache:    c,
			PageKey:  keys.Next,
		})
	})

	sc := baseScenario(matrixWorkers, warmup, measure, true)
	sc.Clients = 1
	sc.QueueDepth = schedQueueDepth
	sc.TimeoutMS = float64(schedTimeout) / float64(time.Millisecond)
	sc.CacheCapacity = cacheCapacity
	sc.ZipfPages = zipfPages
	sc.ZipfS = zipfExponent
	sc.fillLoadStats(ls)
	sc.AllocsPerOp = allocs
	mt := pool.MergedMeter()
	c.MergeMeter(mt) // hits cost lookup cycles too; keep the totals exact
	sc.simFields(mt, ls.Served)
	return sc, nil
}

// runCluster is the FPM-style cluster sweep: `backends` single-worker
// stacks behind the consistent-hash ring, serving the shared Zipf
// stream partitioned by key ownership, each miss stalling dbwait on its
// worker. The 1/2/4 points committed together are the scaling claim:
// throughput grows near-linearly (stall overlap) while the aggregate
// hit ratio stays within a few points of the single-process figure
// (affinity keeps each page's cache entry on exactly one backend).
func runCluster(opts Options, warmup, backends int) (Scenario, error) {
	measure, dbWait := clusterMeasureFull, clusterDBWaitFull
	if opts.Scale == "quick" {
		measure, dbWait = clusterMeasureQuick, clusterDBWaitQuick
	}
	cl, err := serve.NewCluster(serve.ClusterOptions{
		Backends:          backends,
		WorkersPerBackend: clusterWorkers,
		Config:            vmConfig(true),
		App:               matrixApp,
		Seed:              opts.Seed,
		QueueDepth:        schedQueueDepth,
		Timeout:           schedTimeout,
		CacheCapacity:     cacheCapacity,
		Pages:             zipfPages,
		ZipfS:             zipfExponent,
		DBWait:            dbWait,
		RingReplicas:      clusterRingReplicas,
	})
	if err != nil {
		return Scenario{}, err
	}
	cl.Warm(warmup)
	var cs serve.ClusterStats
	var runErr error
	allocs := measureAllocs(measure, func() {
		cs, runErr = cl.RunZipf(context.Background(), measure)
	})
	if runErr != nil {
		return Scenario{}, runErr
	}

	sc := baseScenario(clusterWorkers, warmup, measure, true)
	sc.Clients = backends
	sc.Backends = backends
	sc.DBWaitMS = float64(dbWait) / float64(time.Millisecond)
	sc.QueueDepth = schedQueueDepth
	sc.TimeoutMS = float64(schedTimeout) / float64(time.Millisecond)
	sc.CacheCapacity = cacheCapacity
	sc.ZipfPages = zipfPages
	sc.ZipfS = zipfExponent
	sc.fillLoadStats(cs.Aggregate)
	sc.AllocsPerOp = allocs
	sc.simFields(cl.MergedMeter(), cs.Aggregate.Served)
	return sc, nil
}

// runScriptedZipf serves the scripted blog workload page-keyed (no
// response cache — every request renders) through the scheduler, with
// the execution tier pinned to the interpreter or free to promote
// (TierAuto with the default policy). Warmup drives each worker's
// per-worker interpreter through the promotion window in auto mode, so
// the measured phase runs mostly in the bytecode tier; the recorded
// tier counters and Fig. 1 profile gauges pin that state in the
// trajectory.
func runScriptedZipf(opts Options, warmup, measure int, mode php.TierMode) (Scenario, error) {
	pool, err := workload.NewPoolSharedSeed(matrixWorkers, vmConfig(true), scriptedApp, opts.Seed)
	if err != nil {
		return Scenario{}, err
	}
	supported, err := pool.ConfigureScriptTier(mode, php.DefaultTierPolicy())
	if err != nil {
		return Scenario{}, err
	}
	if !supported {
		return Scenario{}, fmt.Errorf("%s does not support script tiering", scriptedApp)
	}
	pool.Run(workload.LoadGenerator{Warmup: warmup}, 0)
	s := serve.NewScheduler(pool, serve.Config{QueueDepth: schedQueueDepth, Timeout: schedTimeout})
	keys, err := workload.NewZipfKeys(opts.Seed, zipfExponent, zipfPages)
	if err != nil {
		return Scenario{}, err
	}
	var ls serve.LoadStats
	allocs := measureAllocs(measure, func() {
		ls = serve.RunLoad(context.Background(), s, serve.LoadOptions{
			Requests: measure,
			Clients:  1,
			PageKey:  keys.Next,
		})
	})

	sc := baseScenario(matrixWorkers, warmup, measure, true)
	sc.App = scriptedApp
	sc.Clients = 1
	sc.QueueDepth = schedQueueDepth
	sc.TimeoutMS = float64(schedTimeout) / float64(time.Millisecond)
	sc.ZipfPages = zipfPages
	sc.ZipfS = zipfExponent
	sc.fillLoadStats(ls)
	sc.AllocsPerOp = allocs
	mt := pool.MergedMeter()
	sc.simFields(mt, ls.Served)

	snap := pool.TierSnapshot()
	sc.Tier = snap.Mode
	sc.TierPromotions = snap.Promotions
	sc.TierPromotedFunctions = snap.PromotedFunctions
	sc.TierBytecodeCalls = snap.BytecodeCalls
	sc.TierInterpCalls = snap.InterpCalls
	sc.TierICHits = snap.ICHits
	p := profile.FromMeter(mt)
	sc.ProfileHottestFrac = p.HottestFrac()
	sc.ProfileFuncsFor65 = p.FuncsForFrac(0.65)
	return sc, nil
}

// fillLoadStats copies a RunLoad result into the scenario's measured
// fields.
func (sc *Scenario) fillLoadStats(ls serve.LoadStats) {
	sc.Served = ls.Served
	sc.ShedOverload = ls.ShedOverload
	sc.ShedDeadline = ls.ShedDeadline
	sc.ShedCanceled = ls.ShedCanceled
	sc.ShedDraining = ls.ShedDraining
	sc.CacheHits = ls.CacheHits
	sc.CacheMisses = ls.CacheMisses
	sc.CacheCoalesced = ls.CacheCoalesced
	sc.CacheHitRatio = ls.CacheHitRatio()
	if ls.Wall > 0 {
		sc.ReqPerSec = float64(ls.Served) / ls.Wall.Seconds()
	}
	sc.WallMS = float64(ls.Wall) / float64(time.Millisecond)
	sc.latencyFields(ls.Latency)
}
