package benchrec

import (
	"fmt"
	"strings"
)

// Tolerances bound how far a fresh run may drift from the committed
// record before Compare reports a regression. Throughput and p99 are
// fractional; allocs/op gets a small absolute slack instead — the
// runtime's own background allocations (timers, GC bookkeeping) shift
// the per-op mean by a few hundredths run to run even on identical
// code (visible in the committed trajectory: BENCH_1's scheduler
// records 1753.98, BENCH_2's 1753.99), while any real added allocation
// on the request path costs at least +1 per op. The slack must
// therefore sit well below 1.
type Tolerances struct {
	// ThroughputDrop is the allowed fractional throughput decrease
	// (0.05 = fail below 95% of the committed req/s).
	ThroughputDrop float64
	// P99Rise is the allowed fractional p99 latency increase
	// (0.10 = fail above 110% of the committed p99).
	P99Rise float64
	// AllocsSlack is the allowed absolute allocs/op increase
	// (0.5 = fail above committed + 0.5 allocations per request) on
	// direct pool scenarios (Clients == 0).
	AllocsSlack float64
	// ServeAllocsSlack is the (tighter) allocs/op slack applied to
	// scheduler-driven scenarios (Clients > 0) — the arena-backed serve
	// path holds steady-state allocations near zero per request, so its
	// gate must catch even a single stray allocation amortized across a
	// run; 0.1 sits above run-to-run MemStats jitter but well below the
	// +1 any real added allocation per request costs.
	ServeAllocsSlack float64
}

// DefaultTolerances returns the documented regression gates:
// throughput −5%, p99 +10%, allocs/op +0.5 absolute on direct
// scenarios and +0.1 on serve (scheduler/cache/cluster) scenarios.
func DefaultTolerances() Tolerances {
	return Tolerances{ThroughputDrop: 0.05, P99Rise: 0.10, AllocsSlack: 0.5, ServeAllocsSlack: 0.1}
}

// Regression is one metric that moved past its tolerance.
type Regression struct {
	// Scenario and Metric locate the failure.
	Scenario string
	Metric   string
	// Base and Fresh are the committed and fresh values.
	Base  float64
	Fresh float64
	// Limit is the threshold the fresh value crossed.
	Limit float64
}

// String renders the violation as "scenario/metric: base -> fresh".
func (r Regression) String() string {
	return fmt.Sprintf("%s/%s: %.2f -> %.2f (limit %.2f)", r.Scenario, r.Metric, r.Base, r.Fresh, r.Limit)
}

// Compare diffs fresh against base and returns every tolerance
// violation. It errors (rather than reporting a bogus clean pass) when
// the records are not comparable: schema, scale, or seed mismatch, or a
// scenario configuration drift — those need a new committed baseline,
// not a regression verdict.
//
// When both records carry a calibration (Record.CalibOpsPerSec), the
// wall-clock limits are relaxed by the measured host slowdown: a fresh
// side running on a host the calibration shows to be k× slower gets its
// throughput floor divided and its p99 ceiling multiplied by k, so
// shared-host speed shifts cannot fake a code regression. The factor
// only ever relaxes (a *faster* fresh host never tightens the gate):
// sleep-bound scenarios like the cluster sweep do not speed up with the
// CPU, and a tightened ceiling would fail them spuriously.
func Compare(base, fresh Record, tol Tolerances) ([]Regression, error) {
	if base.Schema != fresh.Schema {
		return nil, fmt.Errorf("benchrec: schema mismatch: committed %d vs fresh %d", base.Schema, fresh.Schema)
	}
	if base.Scale != fresh.Scale || base.Seed != fresh.Seed {
		return nil, fmt.Errorf("benchrec: records not comparable: committed scale=%s seed=%d vs fresh scale=%s seed=%d",
			base.Scale, base.Seed, fresh.Scale, fresh.Seed)
	}
	slow := 1.0
	if base.CalibOpsPerSec > 0 && fresh.CalibOpsPerSec > 0 {
		if r := base.CalibOpsPerSec / fresh.CalibOpsPerSec; r > 1 {
			slow = r
		}
	}
	var regs []Regression
	for _, b := range base.Scenarios {
		f, ok := fresh.Scenario(b.Name)
		if !ok {
			return nil, fmt.Errorf("benchrec: fresh run is missing scenario %q", b.Name)
		}
		if b.App != f.App || b.Workers != f.Workers || b.Warmup != f.Warmup || b.Requests != f.Requests ||
			b.Accelerated != f.Accelerated || b.CacheCapacity != f.CacheCapacity ||
			b.ZipfPages != f.ZipfPages || b.Backends != f.Backends || b.DBWaitMS != f.DBWaitMS ||
			b.Tier != f.Tier {
			return nil, fmt.Errorf("benchrec: scenario %q configuration drifted; commit a new baseline", b.Name)
		}
		if limit := b.ReqPerSec * (1 - tol.ThroughputDrop) / slow; f.ReqPerSec < limit {
			regs = append(regs, Regression{b.Name, "req_per_sec", b.ReqPerSec, f.ReqPerSec, limit})
		}
		if limit := b.P99US * (1 + tol.P99Rise) * slow; f.P99US > limit {
			regs = append(regs, Regression{b.Name, "p99_us", b.P99US, f.P99US, limit})
		}
		slack := tol.AllocsSlack
		if b.Clients > 0 && tol.ServeAllocsSlack > 0 {
			slack = tol.ServeAllocsSlack
		}
		if limit := b.AllocsPerOp + slack; f.AllocsPerOp > limit {
			regs = append(regs, Regression{b.Name, "allocs_per_op", b.AllocsPerOp, f.AllocsPerOp, limit})
		}
	}
	return regs, nil
}

// RenderTable renders a side-by-side committed-vs-fresh table for every
// scenario and gated metric, marking tolerance violations — the
// human-readable half of a failed bench-check.
func RenderTable(base, fresh Record, regs []Regression) string {
	failed := map[string]bool{}
	for _, r := range regs {
		failed[r.Scenario+"/"+r.Metric] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %14s %14s %8s\n", "scenario", "metric", "committed", "fresh", "status")
	for _, bs := range base.Scenarios {
		fs, ok := fresh.Scenario(bs.Name)
		if !ok {
			continue
		}
		rows := []struct {
			metric      string
			base, fresh float64
		}{
			{"req_per_sec", bs.ReqPerSec, fs.ReqPerSec},
			{"p99_us", bs.P99US, fs.P99US},
			{"allocs_per_op", bs.AllocsPerOp, fs.AllocsPerOp},
			{"cache_hit_ratio", bs.CacheHitRatio, fs.CacheHitRatio},
			{"sim_cycles_per_req", bs.SimCyclesPerReq, fs.SimCyclesPerReq},
		}
		for _, row := range rows {
			status := "ok"
			if failed[bs.Name+"/"+row.metric] {
				status = "FAIL"
			}
			fmt.Fprintf(&b, "%-12s %-18s %14.2f %14.2f %8s\n", bs.Name, row.metric, row.base, row.fresh, status)
		}
	}
	if len(regs) > 0 {
		fmt.Fprintf(&b, "\n%d regression(s) beyond tolerance:\n", len(regs))
		for _, r := range regs {
			fmt.Fprintf(&b, "  %s\n", r)
		}
	}
	return b.String()
}
