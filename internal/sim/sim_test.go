package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		CatOther:     "other",
		CatHash:      "hash",
		CatHeap:      "heap",
		CatString:    "string",
		CatRegex:     "regex",
		CatTypeCheck: "typecheck",
		CatRefCount:  "refcount",
		CatKernel:    "kernel",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	if Category(200).String() != "unknown" {
		t.Errorf("out-of-range category should stringify to unknown")
	}
}

func TestCategoriesCoverAll(t *testing.T) {
	cats := Categories()
	if len(cats) != int(numCategories) {
		t.Fatalf("Categories() returned %d entries, want %d", len(cats), numCategories)
	}
	seen := map[Category]bool{}
	for _, c := range cats {
		if seen[c] {
			t.Errorf("duplicate category %v", c)
		}
		seen[c] = true
	}
}

func TestAcceleratedCategories(t *testing.T) {
	for _, c := range Categories() {
		want := c == CatHash || c == CatHeap || c == CatString || c == CatRegex
		if c.Accelerated() != want {
			t.Errorf("%v.Accelerated() = %v, want %v", c, c.Accelerated(), want)
		}
	}
}

func TestAccelKindStrings(t *testing.T) {
	if len(AccelKinds()) != int(numAccelKinds) {
		t.Fatalf("AccelKinds() incomplete")
	}
	for _, k := range AccelKinds() {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestHashWalkCostMatchesPaperAverage(t *testing.T) {
	m := DefaultCostModel()
	// The workload-typical walk (2 probes, ~12-byte key) must land near the
	// paper's 90.66 micro-op average.
	got := m.HashWalkCost(2, 12)
	if got < 80 || got < m.HashWalkBase {
		t.Errorf("typical hash walk cost %.2f, want near 90.66", got)
	}
	if math.Abs(got-90.66) > 15 {
		t.Errorf("typical hash walk cost %.2f too far from paper's 90.66", got)
	}
}

func TestHashWalkCostMonotonic(t *testing.T) {
	m := DefaultCostModel()
	f := func(p, k uint8) bool {
		probes, keyB := int(p%16)+1, int(k)
		base := m.HashWalkCost(probes, keyB)
		return m.HashWalkCost(probes+1, keyB) > base && m.HashWalkCost(probes, keyB+8) > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashWalkCostClampsProbes(t *testing.T) {
	m := DefaultCostModel()
	if got, want := m.HashWalkCost(0, 0), m.HashWalkCost(1, 0); got != want {
		t.Errorf("probes<1 should clamp to 1: got %v want %v", got, want)
	}
}

func TestStringCostChunks(t *testing.T) {
	m := DefaultCostModel()
	if m.StringCost(0) != m.StringFixed+m.StringPerChunk {
		t.Errorf("empty string should still cost one chunk")
	}
	if m.StringCost(16) != m.StringFixed+m.StringPerChunk {
		t.Errorf("16 bytes is one SSE chunk")
	}
	if m.StringCost(17) != m.StringFixed+2*m.StringPerChunk {
		t.Errorf("17 bytes is two SSE chunks")
	}
}

func TestStringAccelCyclesBlocks(t *testing.T) {
	m := DefaultCostModel()
	one := m.StringAccelCycles(1)
	if one != m.StrInvokeCycles+m.StrBlockCycles {
		t.Errorf("1 byte should be one block: %v", one)
	}
	if m.StringAccelCycles(64) != one {
		t.Errorf("64 bytes should still be one block")
	}
	if m.StringAccelCycles(65) != m.StrInvokeCycles+2*m.StrBlockCycles {
		t.Errorf("65 bytes should be two blocks")
	}
}

func TestStringAccelBeatsSoftwareOnLargeInputs(t *testing.T) {
	// The accelerator processes 64 bytes in <=3 cycles; SSE software needs
	// several micro-ops per 16-byte chunk. For any non-trivial length the
	// accelerated cycle count must win (this is the paper's Fig. 15 string
	// benefit in miniature).
	m := DefaultCostModel()
	for _, n := range []int{64, 256, 1024, 65536} {
		sw := m.Cycles(m.StringCost(n))
		hw := m.StringAccelCycles(n)
		if hw >= sw {
			t.Errorf("n=%d: accel %.1f cycles not faster than software %.1f", n, hw, sw)
		}
	}
}

func TestRegexScanCostLinear(t *testing.T) {
	m := DefaultCostModel()
	d1 := m.RegexScanCost(100) - m.RegexScanCost(0)
	d2 := m.RegexScanCost(200) - m.RegexScanCost(100)
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("regex scan cost not linear: %v vs %v", d1, d2)
	}
}

func TestCyclesIPC(t *testing.T) {
	m := DefaultCostModel()
	if got := m.Cycles(m.IPC * 100); math.Abs(got-100) > 1e-9 {
		t.Errorf("Cycles(IPC*100) = %v, want 100", got)
	}
	var zero CostModel
	if zero.Cycles(42) != 42 {
		t.Errorf("zero-IPC model should pass uops through")
	}
}

func TestMeterAttribution(t *testing.T) {
	mt := NewMeter(DefaultCostModel())
	mt.AddUops("zend_hash_find", CatHash, 90)
	mt.AddUops("zend_hash_find", CatHash, 90)
	mt.AddUops("memcpy", CatString, 10)

	fns := mt.Functions()
	if len(fns) != 2 {
		t.Fatalf("got %d functions, want 2", len(fns))
	}
	if fns[0].Name != "zend_hash_find" || fns[0].Uops != 180 || fns[0].Calls != 2 {
		t.Errorf("hottest function wrong: %+v", fns[0])
	}
	cc := mt.CategoryCycles()
	if cc[CatHash] <= cc[CatString] {
		t.Errorf("hash category should dominate: %v", cc)
	}
	if math.Abs(mt.TotalUops()-190) > 1e-9 {
		t.Errorf("TotalUops = %v, want 190", mt.TotalUops())
	}
}

func TestMeterAccelAccounting(t *testing.T) {
	mt := NewMeter(DefaultCostModel())
	mt.AddAccel("hashtableget", CatHash, AccelHashTable, 3)
	mt.AddAccel("hashtableget", CatHash, AccelHashTable, 3)
	if mt.AccelCycles(AccelHashTable) != 6 {
		t.Errorf("AccelCycles = %v, want 6", mt.AccelCycles(AccelHashTable))
	}
	if mt.AccelCalls(AccelHashTable) != 2 {
		t.Errorf("AccelCalls = %v, want 2", mt.AccelCalls(AccelHashTable))
	}
	wantE := 6 * mt.Model.EnergyPerAccelCycle[AccelHashTable]
	if math.Abs(mt.TotalEnergy()-wantE) > 1e-9 {
		t.Errorf("TotalEnergy = %v, want %v", mt.TotalEnergy(), wantE)
	}
	// Accelerator cycles bypass the IPC divisor.
	if math.Abs(mt.TotalCycles()-6) > 1e-9 {
		t.Errorf("TotalCycles = %v, want 6", mt.TotalCycles())
	}
}

func TestMeterMitigationsSuppressOverheads(t *testing.T) {
	base := NewMeter(DefaultCostModel())
	base.AddRefCount(1000)
	base.AddTypeCheck(1000)
	if base.TotalUops() == 0 {
		t.Fatalf("unmitigated meter should record overhead")
	}

	mit := NewMeter(DefaultCostModel())
	mit.Mit = AllMitigations()
	mit.AddRefCount(1000)
	mit.AddTypeCheck(1000)
	if mit.TotalUops() != 0 {
		t.Errorf("mitigated meter recorded %v uops, want 0", mit.TotalUops())
	}
}

func TestMeterReset(t *testing.T) {
	mt := NewMeter(DefaultCostModel())
	mt.AddUops("f", CatOther, 10)
	mt.AddAccel("g", CatHash, AccelHashTable, 2)
	mt.Reset()
	if mt.TotalUops() != 0 || mt.TotalCycles() != 0 || mt.AccelCalls(AccelHashTable) != 0 {
		t.Errorf("Reset did not clear meter")
	}
}

func TestMeterReport(t *testing.T) {
	mt := NewMeter(DefaultCostModel())
	mt.AddUops("f", CatHash, 100)
	r := mt.Report()
	if !strings.Contains(r, "hash") || !strings.Contains(r, "total cycles") {
		t.Errorf("report missing fields:\n%s", r)
	}
}

func TestFnStatsEnergy(t *testing.T) {
	m := DefaultCostModel()
	f := FnStats{Uops: 10, AccelEng: 5}
	want := 10*m.EnergyPerUop + 5
	if got := f.Energy(&m); math.Abs(got-want) > 1e-9 {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}

func TestAllMitigations(t *testing.T) {
	m := AllMitigations()
	if !m.InlineCaching || !m.CheckedLoad || !m.HardwareRefCount || !m.TunedAllocator {
		t.Errorf("AllMitigations should enable everything: %+v", m)
	}
}

func TestFunctionsSortedDeterministically(t *testing.T) {
	mt := NewMeter(DefaultCostModel())
	mt.AddUops("b", CatOther, 10)
	mt.AddUops("a", CatOther, 10)
	fns := mt.Functions()
	if fns[0].Name != "a" || fns[1].Name != "b" {
		t.Errorf("equal-cost functions should sort by name: %v, %v", fns[0].Name, fns[1].Name)
	}
}

func TestMeterMerge(t *testing.T) {
	model := DefaultCostModel()
	a, b := NewMeter(model), NewMeter(model)
	a.AddUops("shared_fn", CatHash, 100)
	b.AddUops("shared_fn", CatHash, 50)
	b.AddUops("b_only_fn", CatString, 30)
	a.AddAccel("accel_fn", CatHash, AccelHashTable, 10)
	b.AddAccel("accel_fn", CatHash, AccelHashTable, 5)

	wantCycles := a.TotalCycles() + b.TotalCycles()
	wantUops := a.TotalUops() + b.TotalUops()
	wantEnergy := a.TotalEnergy() + b.TotalEnergy()
	bCyclesBefore := b.TotalCycles()

	a.Merge(b)
	if got := a.TotalCycles(); math.Abs(got-wantCycles) > 1e-9 {
		t.Errorf("merged cycles %g, want %g", got, wantCycles)
	}
	if got := a.TotalUops(); math.Abs(got-wantUops) > 1e-9 {
		t.Errorf("merged uops %g, want %g", got, wantUops)
	}
	if got := a.TotalEnergy(); math.Abs(got-wantEnergy) > 1e-9 {
		t.Errorf("merged energy %g, want %g", got, wantEnergy)
	}
	if got := a.AccelCycles(AccelHashTable); got != 15 {
		t.Errorf("merged accel cycles %g, want 15", got)
	}
	if got := a.AccelCalls(AccelHashTable); got != 2 {
		t.Errorf("merged accel calls %d, want 2", got)
	}
	// Per-function stats must sum, and calls must be preserved.
	for _, f := range a.Functions() {
		switch f.Name {
		case "shared_fn":
			if f.Uops != 150 || f.Calls != 2 {
				t.Errorf("shared_fn merged wrong: %+v", f)
			}
		case "b_only_fn":
			if f.Uops != 30 || f.Calls != 1 {
				t.Errorf("b_only_fn merged wrong: %+v", f)
			}
		}
	}
	// The source meter is untouched.
	if b.TotalCycles() != bCyclesBefore {
		t.Errorf("Merge mutated its argument")
	}
}
