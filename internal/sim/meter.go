package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Mitigations selects which prior-work optimizations from §3 are applied.
// The paper applies all four together to expose the fundamental dominant
// activities before adding its own accelerators.
type Mitigations struct {
	// InlineCaching enables inline caching and hash map inlining, which
	// specialize hash map accesses with static or predictable key names
	// into offset accesses.
	InlineCaching bool
	// CheckedLoad enables hardware type checking in the cache subsystem.
	CheckedLoad bool
	// HardwareRefCount enables hardware-assisted reference counting.
	HardwareRefCount bool
	// TunedAllocator reduces kernel involvement in allocation slab refill.
	TunedAllocator bool
}

// AllMitigations returns the §3 configuration with every prior-work
// optimization applied.
func AllMitigations() Mitigations {
	return Mitigations{
		InlineCaching:    true,
		CheckedLoad:      true,
		HardwareRefCount: true,
		TunedAllocator:   true,
	}
}

// FnStats aggregates the cost attributed to one leaf function.
type FnStats struct {
	Name     string
	Category Category
	Uops     float64 // micro-ops executed on the general-purpose core
	AccelCyc float64 // cycles spent inside accelerator datapaths
	AccelEng float64 // accelerator energy, pJ
	Calls    int64
}

// Cycles returns the function's total cycle cost under the given model.
func (f *FnStats) Cycles(m *CostModel) float64 {
	return m.Cycles(f.Uops) + f.AccelCyc
}

// Energy returns the function's total energy in picojoules.
func (f *FnStats) Energy(m *CostModel) float64 {
	return f.Uops*m.EnergyPerUop + f.AccelEng
}

// Meter accumulates simulation cost, attributed to leaf functions and
// activity categories. It is the Go analogue of the paper's trace-driven
// simulator counters. Meter is not safe for concurrent use; each simulated
// core owns one.
type Meter struct {
	Model CostModel
	Mit   Mitigations

	fns map[fnKey]*FnStats

	// catUops and catAccelCyc are running per-category totals maintained
	// on every charge, so CategoryCyclesVec is O(NumCategories) instead
	// of a walk over every leaf function. The cycle conversion is linear
	// in uops (CostModel.Cycles), so the incremental totals are exact.
	// Span hooks snapshot this vector twice per span, which is why it
	// must not cost a map iteration.
	catUops     [numCategories]float64
	catAccelCyc [numCategories]float64

	accelCycles [numAccelKinds]float64
	accelEnergy [numAccelKinds]float64
	accelCalls  [numAccelKinds]int64
}

// fnKey separates attribution by function and category: a leaf function
// that performs work in more than one activity (a VM helper that both
// walks a hash map and allocates) gets one row per activity, keeping the
// category breakdowns (Figs. 4, 5, 15) exact.
type fnKey struct {
	name string
	cat  Category
}

// NewMeter returns a Meter using the given cost model.
func NewMeter(model CostModel) *Meter {
	return &Meter{Model: model, fns: make(map[fnKey]*FnStats)}
}

// Reset clears all accumulated statistics but keeps the model and
// mitigation configuration.
func (mt *Meter) Reset() {
	mt.fns = make(map[fnKey]*FnStats)
	mt.catUops = [numCategories]float64{}
	mt.catAccelCyc = [numCategories]float64{}
	mt.accelCycles = [numAccelKinds]float64{}
	mt.accelEnergy = [numAccelKinds]float64{}
	mt.accelCalls = [numAccelKinds]int64{}
}

func (mt *Meter) fn(name string, cat Category) *FnStats {
	k := fnKey{name, cat}
	f := mt.fns[k]
	if f == nil {
		f = &FnStats{Name: name, Category: cat}
		mt.fns[k] = f
	}
	return f
}

// Merge folds another meter's accumulated statistics into this one:
// per-function uops, accelerator cycles/energy, and call counts all sum.
// It is the fleet-aggregation primitive for multi-worker runs — each
// worker owns a private Meter while serving, and the pool merges them
// after the goroutines join. The other meter is read-only during the
// merge and is left unchanged; models and mitigation flags are not
// merged (the receiver keeps its own).
func (mt *Meter) Merge(o *Meter) {
	for k, f := range o.fns {
		dst := mt.fn(k.name, k.cat)
		dst.Uops += f.Uops
		dst.AccelCyc += f.AccelCyc
		dst.AccelEng += f.AccelEng
		dst.Calls += f.Calls
	}
	for i := 0; i < int(numCategories); i++ {
		mt.catUops[i] += o.catUops[i]
		mt.catAccelCyc[i] += o.catAccelCyc[i]
	}
	for i := 0; i < int(numAccelKinds); i++ {
		mt.accelCycles[i] += o.accelCycles[i]
		mt.accelEnergy[i] += o.accelEnergy[i]
		mt.accelCalls[i] += o.accelCalls[i]
	}
}

// AddUops charges uops micro-ops of core work to the named leaf function.
func (mt *Meter) AddUops(name string, cat Category, uops float64) {
	f := mt.fn(name, cat)
	f.Uops += uops
	f.Calls++
	mt.catUops[cat] += uops
}

// AddAccel charges cycles of accelerator datapath time (and the matching
// energy) to the named leaf function and the per-accelerator totals.
func (mt *Meter) AddAccel(name string, cat Category, kind AccelKind, cycles float64) {
	f := mt.fn(name, cat)
	eng := cycles * mt.Model.EnergyPerAccelCycle[kind]
	f.AccelCyc += cycles
	f.AccelEng += eng
	f.Calls++
	mt.catAccelCyc[cat] += cycles
	mt.accelCycles[kind] += cycles
	mt.accelEnergy[kind] += eng
	mt.accelCalls[kind]++
}

// AddRefCount charges n reference count operations, honoring the hardware
// reference counting mitigation.
func (mt *Meter) AddRefCount(n int) {
	if n <= 0 || mt.Mit.HardwareRefCount {
		return
	}
	mt.AddUops("refcount_helper", CatRefCount, float64(n)*mt.Model.RefCountUops)
}

// AddTypeCheck charges n dynamic type checks, honoring the checked-load
// mitigation.
func (mt *Meter) AddTypeCheck(n int) {
	if n <= 0 || mt.Mit.CheckedLoad {
		return
	}
	mt.AddUops("type_check", CatTypeCheck, float64(n)*mt.Model.TypeCheckUops)
}

// TotalUops returns the total micro-ops executed on the core.
func (mt *Meter) TotalUops() float64 {
	var t float64
	for _, f := range mt.fns {
		t += f.Uops
	}
	return t
}

// TotalCycles returns core cycles plus accelerator cycles.
func (mt *Meter) TotalCycles() float64 {
	var t float64
	for _, f := range mt.fns {
		t += f.Cycles(&mt.Model)
	}
	return t
}

// TotalEnergy returns total energy in picojoules.
func (mt *Meter) TotalEnergy() float64 {
	var t float64
	for _, f := range mt.fns {
		t += f.Energy(&mt.Model)
	}
	return t
}

// CategoryCycles returns the cycle total attributed to each category.
func (mt *Meter) CategoryCycles() map[Category]float64 {
	out := make(map[Category]float64, int(numCategories))
	for _, f := range mt.fns {
		out[f.Category] += f.Cycles(&mt.Model)
	}
	return out
}

// CategoryVec is a dense per-category cycle vector indexed by Category.
// Being a value type, it snapshots cheaply (no map allocation), which is
// what the observability layer's per-request spans diff around a render.
type CategoryVec [NumCategories]float64

// Sub returns v - o element-wise: the cycles charged between two
// snapshots of the same meter.
func (v CategoryVec) Sub(o CategoryVec) CategoryVec {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// Add returns v + o element-wise: merging two processes' category
// vectors (e.g. grafting a backend's span tree under a router span).
func (v CategoryVec) Add(o CategoryVec) CategoryVec {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Total sums the vector across categories.
func (v CategoryVec) Total() float64 {
	var t float64
	for _, c := range v {
		t += c
	}
	return t
}

// CategoryCyclesVec returns the per-category cycle totals as a dense
// vector. It reads the incrementally maintained per-category totals —
// O(NumCategories), no allocation, no function-map walk — so it is
// cheap enough to snapshot not just per request (obs.Span) but per
// span-tree node (obs.TreeBuilder), which diffs it twice per span.
func (mt *Meter) CategoryCyclesVec() CategoryVec {
	var out CategoryVec
	for i := 0; i < int(numCategories); i++ {
		out[i] = mt.Model.Cycles(mt.catUops[i]) + mt.catAccelCyc[i]
	}
	return out
}

// AccelCycles returns the datapath cycles spent in the given accelerator.
func (mt *Meter) AccelCycles(kind AccelKind) float64 { return mt.accelCycles[kind] }

// AccelCalls returns the number of invocations of the given accelerator.
func (mt *Meter) AccelCalls(kind AccelKind) int64 { return mt.accelCalls[kind] }

// Functions returns per-function statistics sorted by descending cycles.
func (mt *Meter) Functions() []*FnStats {
	out := make([]*FnStats, 0, len(mt.fns))
	for _, f := range mt.fns {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := out[i].Cycles(&mt.Model), out[j].Cycles(&mt.Model)
		if ci != cj {
			return ci > cj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Report renders a human-readable per-category summary, used by cmd/phpsim.
func (mt *Meter) Report() string {
	var b strings.Builder
	total := mt.TotalCycles()
	fmt.Fprintf(&b, "total cycles: %.0f  total uops: %.0f  energy: %.1f uJ\n",
		total, mt.TotalUops(), mt.TotalEnergy()/1e6)
	cc := mt.CategoryCycles()
	for _, c := range Categories() {
		if cc[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %12.0f cycles (%5.2f%%)\n", c, cc[c], 100*cc[c]/total)
	}
	return b.String()
}
