package sim

// CostModel holds the micro-op and latency constants of the simulated
// platform. The software-path costs come from measurements quoted in the
// paper (§5.2): malloc and free average 69 and 37 x86 micro-ops, and a
// software hash map walk averages 90.66 micro-ops, all assuming cache
// hits. The accelerator latencies come from §5.1: the hardware hash table
// answers in 1 cycle after the hash computation, the hardware heap manager
// in 1 cycle, and the synthesized string accelerator needs at most 3
// cycles per 64-character block at 2 GHz.
//
// A zero CostModel is not useful; call DefaultCostModel.
type CostModel struct {
	// --- Software baseline costs, in micro-ops. ---

	// HashWalkBase is the fixed cost of entering the software hash map
	// lookup path (hash computation, bucket indexing, call overhead).
	HashWalkBase float64
	// HashWalkPerProbe is charged for each hash table entry examined
	// while chasing the collision chain.
	HashWalkPerProbe float64
	// HashWalkPerKeyByte is charged per key byte compared.
	HashWalkPerKeyByte float64
	// HashInsertExtra is the additional cost of an insertion over a
	// lookup (link maintenance, size bookkeeping, possible growth check).
	HashInsertExtra float64
	// HashResizePerSlot is charged per slot when the table grows.
	HashResizePerSlot float64

	// MallocUops is the average software malloc cost (paper: 69).
	MallocUops float64
	// FreeUops is the average software free cost (paper: 37).
	FreeUops float64
	// KernelAllocUops is the cost of falling through to an OS-level
	// allocation (mmap/brk path) when a slab has to be refilled.
	KernelAllocUops float64

	// StringFixed is the call/setup overhead of an SSE-optimized string
	// routine; StringPerChunk is charged per 16-byte SSE chunk touched.
	StringFixed    float64
	StringPerChunk float64
	// StringChunkBytes is the SSE chunk width in bytes.
	StringChunkBytes int

	// RegexCompileFixed and RegexCompilePerState cost the one-time FSM
	// construction; RegexFixed and RegexPerChar cost the interpreted
	// character-at-a-time scan (PCRE-style, §4.5).
	RegexCompileFixed    float64
	RegexCompilePerState float64
	RegexFixed           float64
	RegexPerChar         float64

	// RefCountUops is charged per reference count increment/decrement
	// when hardware reference counting (§3) is disabled.
	RefCountUops float64
	// TypeCheckUops is charged per dynamic type check when checked-load
	// hardware (§3) is disabled.
	TypeCheckUops float64
	// ICHitUops is the cost of a hash map access that inline caching or
	// hash map inlining (§3) specialized into an offset access.
	ICHitUops float64

	// --- Accelerator costs, in cycles per invocation. ---

	// HTHashCycles is the hash-computation latency preceding the 1-cycle
	// hardware hash table lookup.
	HTHashCycles float64
	// HTLookupCycles is the parallel probe-window access (§5.1: constant
	// 1 cycle for 4 consecutive entries accessed in parallel).
	HTLookupCycles float64
	// HMCycles is the hardware heap manager's free-list pop/push latency.
	HMCycles float64
	// StrInvokeCycles is the stringop issue overhead; StrBlockCycles is
	// charged per block of StrBlockBytes subject bytes (paper: at most 3
	// cycles per 64-character block).
	StrInvokeCycles float64
	StrBlockCycles  float64
	StrBlockBytes   int
	// ReuseLookupCycles is the content reuse table probe latency.
	ReuseLookupCycles float64
	// HVWordCycles is charged per hint-vector word the shadow regexp
	// consults (the count-leading-zeros stepping).
	HVWordCycles float64

	// --- Software-handler costs for accelerator fallback paths. ---

	// HTWritebackUops is the software cost of writing one dirty hash
	// table entry back to the map's ordered table.
	HTWritebackUops float64
	// HMMissUops is the software handler cost when hmmalloc finds an
	// empty hardware free list and pulls the next block from memory.
	HMMissUops float64
	// HMSpillUops is the software cost of linking one overflowed hmfree
	// block back into the memory free list (a single pointer store).
	HMSpillUops float64
	// FlushPerEntryUops is the context-switch cost per flushed
	// accelerator entry (hmflush / hash table flush).
	FlushPerEntryUops float64

	// --- Pipeline model. ---

	// IPC is the sustained micro-ops per cycle of the modeled 4-wide
	// out-of-order server core on these front-end-bound workloads.
	IPC float64

	// --- Energy model (picojoules). ---

	// EnergyPerUop is the average core energy per executed micro-op; the
	// paper uses dynamic instruction reduction as the energy proxy, so
	// only the ratio between this and the accelerator energies matters.
	EnergyPerUop float64
	// EnergyPerAccelCycle is charged per cycle spent inside any
	// accelerator datapath (CACTI-derived structures are small: the four
	// accelerators total 0.22 mm^2, 0.89% of a Nehalem-class core).
	EnergyPerAccelCycle [numAccelKinds]float64
}

// DefaultCostModel returns the constants used throughout the evaluation.
// Software-path numbers marked "paper" are taken directly from the text;
// the remaining constants are calibrated so that aggregate behaviour
// (execution-time shares, Fig. 5; improvement totals, Figs. 14–15)
// reproduces the paper's reported shape.
func DefaultCostModel() CostModel {
	m := CostModel{
		HashWalkBase:       38,
		HashWalkPerProbe:   22,
		HashWalkPerKeyByte: 1.25,
		HashInsertExtra:    24,
		HashResizePerSlot:  6,

		MallocUops:      69, // paper §5.2
		FreeUops:        37, // paper §5.2
		KernelAllocUops: 900,

		StringFixed:      28,
		StringPerChunk:   4,
		StringChunkBytes: 16,

		RegexCompileFixed:    400,
		RegexCompilePerState: 30,
		RegexFixed:           46,
		RegexPerChar:         7.5,

		RefCountUops:  2.0,
		TypeCheckUops: 2.0,
		ICHitUops:     9,

		HTHashCycles:      2,
		HTLookupCycles:    1, // paper §5.1
		HMCycles:          1, // paper §5.1
		StrInvokeCycles:   2,
		StrBlockCycles:    3, // paper §5.1: <=3 cycles per 64-char block
		StrBlockBytes:     64,
		ReuseLookupCycles: 1,
		HVWordCycles:      1,

		HTWritebackUops:   28,
		HMMissUops:        35,
		HMSpillUops:       2,
		FlushPerEntryUops: 4,

		IPC: 1.55,

		EnergyPerUop: 100,
	}
	m.EnergyPerAccelCycle[AccelHashTable] = 18
	m.EnergyPerAccelCycle[AccelHeapMgr] = 9
	m.EnergyPerAccelCycle[AccelString] = 35
	m.EnergyPerAccelCycle[AccelRegex] = 8
	return m
}

// HashWalkCost returns the software hash map walk cost for a lookup that
// examined probes entries and compared keyBytes bytes of key material in
// total. With the calibrated constants, the workload-average cost matches
// the paper's 90.66 micro-ops.
func (m *CostModel) HashWalkCost(probes int, keyBytes int) float64 {
	if probes < 1 {
		probes = 1
	}
	return m.HashWalkBase + float64(probes)*m.HashWalkPerProbe + float64(keyBytes)*m.HashWalkPerKeyByte
}

// StringCost returns the SSE-optimized software cost of a string routine
// touching n subject bytes.
func (m *CostModel) StringCost(n int) float64 {
	chunks := (n + m.StringChunkBytes - 1) / m.StringChunkBytes
	if chunks < 1 {
		chunks = 1
	}
	return m.StringFixed + float64(chunks)*m.StringPerChunk
}

// RegexScanCost returns the software character-at-a-time scan cost over n
// input bytes.
func (m *CostModel) RegexScanCost(n int) float64 {
	return m.RegexFixed + float64(n)*m.RegexPerChar
}

// StringAccelCycles returns the accelerator cycles to stream n subject
// bytes through the matching matrix.
func (m *CostModel) StringAccelCycles(n int) float64 {
	blocks := (n + m.StrBlockBytes - 1) / m.StrBlockBytes
	if blocks < 1 {
		blocks = 1
	}
	return m.StrInvokeCycles + float64(blocks)*m.StrBlockCycles
}

// Cycles converts a micro-op count into core cycles through the pipeline
// throughput model.
func (m *CostModel) Cycles(uops float64) float64 {
	if m.IPC <= 0 {
		return uops
	}
	return uops / m.IPC
}
