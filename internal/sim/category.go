// Package sim provides the cycle, micro-op, and energy accounting model
// that underlies the trace-driven simulation methodology of the paper
// "Architectural Support for Server-Side PHP Processing" (ISCA 2017).
//
// The paper evaluates its accelerators with an in-house trace-driven
// simulator configured like a 4-wide out-of-order Intel Xeon, using
// dynamic micro-op counts as the primary cost currency and instruction
// reduction as the proxy for energy savings (§5.1–5.2). This package
// reproduces that methodology: runtime operations report micro-ops to a
// Meter, which attributes them to leaf functions and activity categories,
// converts them to cycles through a pipeline throughput model, and charges
// energy per micro-op plus per-accelerator-access energies.
package sim

// Category classifies a leaf function (or a slice of its work) into the
// activity groups used throughout the paper's analysis (Figs. 4, 5, 15).
type Category uint8

const (
	// CatOther covers JIT-compiled application code and VM functions that
	// do not belong to the four accelerated activities.
	CatOther Category = iota
	// CatHash is hash map access work (§4.2).
	CatHash
	// CatHeap is memory allocation and deallocation work (§4.3).
	CatHeap
	// CatString is string searching/modifying/copying work (§4.4).
	CatString
	// CatRegex is regular expression processing work (§4.5).
	CatRegex
	// CatTypeCheck is dynamic type-check abstraction overhead (§3).
	CatTypeCheck
	// CatRefCount is reference-counting abstraction overhead (§3).
	CatRefCount
	// CatKernel is kernel time from expensive memory allocation and
	// deallocation calls to the operating system (§3).
	CatKernel

	numCategories
)

// NumCategories is the number of activity categories, for dense
// per-category vectors (CategoryVec) indexed by Category.
const NumCategories = int(numCategories)

// String returns the short name used in figures and reports.
func (c Category) String() string {
	switch c {
	case CatOther:
		return "other"
	case CatHash:
		return "hash"
	case CatHeap:
		return "heap"
	case CatString:
		return "string"
	case CatRegex:
		return "regex"
	case CatTypeCheck:
		return "typecheck"
	case CatRefCount:
		return "refcount"
	case CatKernel:
		return "kernel"
	default:
		return "unknown"
	}
}

// CategoryByName maps a short name back to its Category — the inverse
// of String, for decoding serialized profiles (a router rebuilding a
// backend's /profilez JSON). Unknown names report false.
func CategoryByName(name string) (Category, bool) {
	for _, c := range Categories() {
		if c.String() == name {
			return c, true
		}
	}
	return CatOther, false
}

// Categories lists every category in presentation order.
func Categories() []Category {
	return []Category{
		CatOther, CatHash, CatHeap, CatString, CatRegex,
		CatTypeCheck, CatRefCount, CatKernel,
	}
}

// Accelerated reports whether the category is one of the four activities
// targeted by the paper's specialized hardware.
func (c Category) Accelerated() bool {
	switch c {
	case CatHash, CatHeap, CatString, CatRegex:
		return true
	}
	return false
}

// AccelKind identifies one of the four proposed accelerators, for
// per-accelerator energy and cycle attribution (Fig. 15).
type AccelKind uint8

const (
	AccelHashTable AccelKind = iota
	AccelHeapMgr
	AccelString
	AccelRegex

	numAccelKinds
)

// String returns the accelerator's name as used in the paper.
func (k AccelKind) String() string {
	switch k {
	case AccelHashTable:
		return "hash-table"
	case AccelHeapMgr:
		return "heap-manager"
	case AccelString:
		return "string-accelerator"
	case AccelRegex:
		return "regexp-accelerator"
	default:
		return "unknown"
	}
}

// AccelKinds lists all accelerator kinds in presentation order.
func AccelKinds() []AccelKind {
	return []AccelKind{AccelHashTable, AccelHeapMgr, AccelString, AccelRegex}
}
