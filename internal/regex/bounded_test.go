package regex

import (
	"regexp"
	"strings"
	"testing"
)

func TestBoundedRepetition(t *testing.T) {
	cases := []struct {
		pattern, input string
		want           bool
	}{
		{"a{3}", "aaa", true},
		{"a{3}", "aa", false},
		{"^a{3}$", "aaaa", false},
		{"a{2,4}", "aa", true},
		{"^a{2,4}$", "aaaaa", false},
		{"a{0,2}b", "b", true},
		{"a{2,}", "aaaaaa", true},
		{"^a{2,}$", "a", false},
		{"(ab){2}", "abab", true},
		{"(ab){2}", "abxab", false},
		{`\d{4}-\d{2}`, "2017-06", true},
		{`\d{4}-\d{2}`, "201-06", false},
		{"[a-c]{2,3}x", "abx", true},
	}
	for _, c := range cases {
		r := MustCompile(c.pattern)
		if got := r.Match([]byte(c.input)); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestBoundedLeftmostLongest(t *testing.T) {
	r := MustCompile("a{2,4}")
	s, e := r.Find([]byte("aaaaa"))
	if s != 0 || e != 4 {
		t.Errorf("Find = (%d,%d), want (0,4) leftmost-longest", s, e)
	}
}

func TestLiteralBraceNotAQuantifier(t *testing.T) {
	// PCRE treats a brace that doesn't form a quantifier as a literal.
	cases := []struct {
		pattern, input string
		want           bool
	}{
		{"a{", "a{", true},
		{"a{x}", "a{x}", true},
		{"a{,3}", "a{,3}", true}, // {,n} is not a PCRE quantifier
		{"{3}", "{3}", true},     // nothing to repeat: literal
	}
	for _, c := range cases {
		r, err := Compile(c.pattern)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.pattern, err)
			continue
		}
		if got := r.Match([]byte(c.input)); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestBoundedRepetitionErrors(t *testing.T) {
	if _, err := Compile("a{4,2}"); err == nil {
		t.Errorf("inverted bounds should fail")
	}
	if _, err := Compile("a{9999}"); err == nil {
		t.Errorf("huge repetition should fail")
	}
}

func TestBoundedAgainstStdlib(t *testing.T) {
	patterns := []string{"a{2}", "a{1,3}b", "(ab){2,}", "x{0,2}y", `\d{2,3}`}
	inputs := []string{"", "a", "aa", "aaa", "aaab", "ab", "abab", "ababab", "xy", "xxy", "xxxy", "12", "123", "1234"}
	for _, p := range patterns {
		std := regexp.MustCompile("^(?:" + p + ")$")
		mine := MustCompile("^" + p + "$")
		for _, in := range inputs {
			want := std.MatchString(in)
			got := mine.Match([]byte(in))
			if got != want {
				t.Errorf("pattern %q input %q: got %v, stdlib %v", p, in, got, want)
			}
		}
	}
}

func TestWikitextStylePattern(t *testing.T) {
	// A MediaWiki-flavored pattern exercising bounds: heading markers.
	r := MustCompile("={2,6}[a-z ]+={2,6}")
	in := []byte("intro ==section one== body ======deep====== tail")
	ms := r.FindAll(in)
	if len(ms) != 2 {
		t.Fatalf("FindAll = %v", ms)
	}
	if string(in[ms[0].Start:ms[0].End]) != "==section one==" {
		t.Errorf("first match = %q", in[ms[0].Start:ms[0].End])
	}
}

func TestBoundedFixedLenLookbehind(t *testing.T) {
	// {n} inside a lookbehind keeps a fixed length.
	r := MustCompile(`(?<=[a-z]{2})'`)
	if !r.Match([]byte("ab'")) {
		t.Errorf("lookbehind with {2} should match after two letters")
	}
	if r.Match([]byte("a'")) {
		t.Errorf("only one preceding letter: no match")
	}
	if r.LookbehindLen() != 2 {
		t.Errorf("LookbehindLen = %d, want 2", r.LookbehindLen())
	}
}

func TestBoundedRepetitionStress(t *testing.T) {
	// Large-but-legal expansion compiles and matches.
	r := MustCompile("^a{200}$")
	if !r.Match([]byte(strings.Repeat("a", 200))) {
		t.Errorf("a{200} should match 200 a's")
	}
	if r.Match([]byte(strings.Repeat("a", 199))) {
		t.Errorf("a{200} must not match 199 a's")
	}
}
