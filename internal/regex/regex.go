package regex

import (
	"fmt"
)

// Observer receives cost events from regex operations so the simulation
// can charge the software character-at-a-time scan cost.
type Observer interface {
	// OnScan fires after a match attempt scanned n input bytes.
	OnScan(n int)
	// OnCompile fires once per compilation with the FSM table size.
	OnCompile(states int)
}

// Regex is a compiled pattern.
type Regex struct {
	pattern      string
	dfa          *DFA
	lbDFA        *DFA // fixed-length lookbehind assertion, or nil
	lbLen        int
	anchored     bool
	endAnchored  bool
	matchesEmpty bool
	firstBytes   [256]bool
	Obs          Observer
}

// Compile parses and compiles a pattern into its FSM table.
func Compile(pattern string) (*Regex, error) {
	p, err := parse(pattern)
	if err != nil {
		return nil, err
	}
	dfa, err := buildDFA(buildNFA(p.root))
	if err != nil {
		return nil, fmt.Errorf("%w (pattern %q)", err, pattern)
	}
	r := &Regex{
		pattern:     pattern,
		dfa:         dfa,
		anchored:    p.anchored,
		endAnchored: p.endAnchored,
		lbLen:       p.lbLen,
	}
	if p.lookbehind != nil {
		lb, err := buildDFA(buildNFA(p.lookbehind))
		if err != nil {
			return nil, fmt.Errorf("%w (lookbehind of %q)", err, pattern)
		}
		r.lbDFA = lb
	}
	r.matchesEmpty = dfa.Accepting(dfa.Start())
	for b := 0; b < 256; b++ {
		r.firstBytes[b] = dfa.Step(dfa.Start(), byte(b)) != Dead
	}
	return r, nil
}

// MustCompile is Compile that panics on error, for statically known
// patterns in workloads and tests.
func MustCompile(pattern string) *Regex {
	r, err := Compile(pattern)
	if err != nil {
		panic(err)
	}
	return r
}

// Pattern returns the source pattern.
func (r *Regex) Pattern() string { return r.pattern }

// FSM returns the compiled DFA ("FSM table").
func (r *Regex) FSM() *DFA { return r.dfa }

// NumStates returns the FSM table size.
func (r *Regex) NumStates() int { return r.dfa.NumStates() }

// Anchored reports whether the pattern begins with ^.
func (r *Regex) Anchored() bool { return r.anchored }

// MatchesEmpty reports whether the pattern matches the empty string.
func (r *Regex) MatchesEmpty() bool { return r.matchesEmpty }

// LookbehindLen returns the fixed length of the leading lookbehind
// assertion, or 0.
func (r *Regex) LookbehindLen() int { return r.lbLen }

func (r *Regex) emitScan(n int) {
	if r.Obs != nil {
		r.Obs.OnScan(n)
	}
}

// Match reports whether the pattern matches anywhere in input.
func (r *Regex) Match(input []byte) bool {
	s, _ := r.Find(input)
	return s >= 0
}

// Find returns the leftmost-longest match [start, end) in input, or
// (-1, -1). Cost: one Observer scan event covering the bytes examined.
func (r *Regex) Find(input []byte) (start, end int) {
	start, end, scanned := r.findFrom(input, 0)
	r.emitScan(scanned)
	return start, end
}

// FindFrom behaves like Find but starts the search at byte offset from.
func (r *Regex) FindFrom(input []byte, from int) (start, end int) {
	start, end, scanned := r.findFrom(input, from)
	r.emitScan(scanned)
	return start, end
}

// FindInRange returns the leftmost-longest match whose start position
// lies in [from, to); the match itself may extend past to. The content
// sifting shadow scan uses this to confine match attempts to candidate
// windows around flagged segments.
func (r *Regex) FindInRange(input []byte, from, to int) (start, end int) {
	start, end, scanned := r.findBounded(input, from, to)
	r.emitScan(scanned)
	return start, end
}

// FindInRangeScanned is FindInRange that also returns the engine's
// scanned-byte cost metric without emitting an observer event; callers
// that batch many bounded searches into one logical scan aggregate the
// costs themselves.
func (r *Regex) FindInRangeScanned(input []byte, from, to int) (start, end, scanned int) {
	return r.findBounded(input, from, to)
}

// findFrom implements the sequential search. It returns the bytes it
// examined so the cost model can charge them. Matching the paper's
// characterization of software engines as a character-at-a-time
// sequential processing model (§4.5), every byte the scan passes over is
// charged, including bytes consumed by the first-byte skip loop (the
// skip only avoids re-walking the DFA, not touching the byte).
func (r *Regex) findFrom(input []byte, from int) (int, int, int) {
	return r.findBounded(input, from, len(input))
}

// findBounded is findFrom with match starts restricted to [from, to].
func (r *Regex) findBounded(input []byte, from, to int) (int, int, int) {
	scanned := 0
	if from < 0 {
		from = 0
	}
	if to > len(input) {
		to = len(input)
	}
	for s := from; s <= to; s++ {
		if r.anchored && s > 0 {
			break
		}
		// First-byte skip: cheap scan while no match can start here.
		// Anchored patterns must not slide the start position.
		// The skip loop must not run past the caller's start bound:
		// bounded searches (content sifting windows) would otherwise be
		// charged for the bytes they exist to skip.
		if !r.matchesEmpty && !r.anchored {
			skipped := 0
			for s < len(input) && s <= to && !r.firstBytes[input[s]] {
				s++
				skipped++
			}
			scanned += skipped
			if s >= len(input) || s > to {
				break
			}
		}
		st := r.dfa.Start()
		best := -1
		if r.dfa.Accepting(st) && (!r.endAnchored || s == len(input)) {
			best = s
		}
		for i := s; i < len(input); i++ {
			st = r.dfa.Step(st, input[i])
			scanned++
			if st == Dead {
				break
			}
			if r.dfa.Accepting(st) && (!r.endAnchored || i+1 == len(input)) {
				best = i + 1
			}
		}
		if best >= 0 && r.lookbehindOK(input, s) {
			return s, best, scanned
		}
	}
	return -1, -1, scanned
}

// lookbehindOK verifies the fixed-length lookbehind assertion against the
// lbLen bytes preceding the match start.
func (r *Regex) lookbehindOK(input []byte, start int) bool {
	if r.lbDFA == nil {
		return true
	}
	if start < r.lbLen {
		return false
	}
	st := r.lbDFA.Run(r.lbDFA.Start(), input[start-r.lbLen:start])
	return r.lbDFA.Accepting(st)
}

// MatchRange is one match occurrence.
type MatchRange struct{ Start, End int }

// FindAll returns all non-overlapping leftmost-longest matches.
func (r *Regex) FindAll(input []byte) []MatchRange {
	return r.FindAllAppend(nil, input)
}

// FindAllAppend is FindAll appending into dst — callers on hot paths
// pass a reused scratch slice (typically dst[:0]) to avoid allocating a
// fresh result per scan. The scan cost reported to the observer is
// identical to FindAll's.
func (r *Regex) FindAllAppend(dst []MatchRange, input []byte) []MatchRange {
	out := dst
	pos := 0
	total := 0
	for pos <= len(input) {
		s, e, scanned := r.findFrom(input, pos)
		total += scanned
		if s < 0 {
			break
		}
		out = append(out, MatchRange{s, e})
		if e == s { // empty match: advance to avoid looping
			pos = s + 1
		} else {
			pos = e
		}
		if r.anchored {
			break
		}
	}
	r.emitScan(total)
	return out
}

// ReplaceAll substitutes every match with repl, returning a fresh slice
// and the number of replacements.
func (r *Regex) ReplaceAll(input, repl []byte) ([]byte, int) {
	ms := r.FindAll(input)
	if len(ms) == 0 {
		out := make([]byte, len(input))
		copy(out, input)
		return out, 0
	}
	var out []byte
	prev := 0
	for _, m := range ms {
		out = append(out, input[prev:m.Start]...)
		out = append(out, repl...)
		prev = m.End
	}
	out = append(out, input[prev:]...)
	return out, len(ms)
}

// RequiresSpecial reports whether every possible match must contain at
// least one "special" character under the isRegular classification. A
// true result makes the pattern eligible for content sifting: segments
// containing only regular characters cannot contain a match and can be
// skipped wholesale (§4.5).
func (r *Regex) RequiresSpecial(isRegular func(byte) bool) bool {
	if r.matchesEmpty {
		return false
	}
	return !r.dfa.acceptsOnly(isRegular)
}

// CompileObserved compiles a pattern, attaches the observer, and reports
// the FSM construction cost through it.
func CompileObserved(pattern string, obs Observer) (*Regex, error) {
	r, err := Compile(pattern)
	if err != nil {
		return nil, err
	}
	r.Obs = obs
	if obs != nil {
		obs.OnCompile(r.NumStates())
	}
	return r, nil
}
