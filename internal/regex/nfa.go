package regex

// Thompson NFA construction. Each AST node becomes a fragment with one
// start state and one accept state connected by epsilon and character-set
// transitions; the DFA subset construction in dfa.go consumes this.

type nfaTrans struct {
	set charSet
	to  int
}

type nfaState struct {
	eps   []int
	trans []nfaTrans
}

type nfa struct {
	states []nfaState
	start  int
	accept int
}

type nfaBuilder struct {
	states []nfaState
}

func (b *nfaBuilder) newState() int {
	b.states = append(b.states, nfaState{})
	return len(b.states) - 1
}

func (b *nfaBuilder) eps(from, to int) {
	b.states[from].eps = append(b.states[from].eps, to)
}

func (b *nfaBuilder) char(from int, set charSet, to int) {
	b.states[from].trans = append(b.states[from].trans, nfaTrans{set: set, to: to})
}

// frag is an NFA fragment with single entry and exit states.
type frag struct{ in, out int }

func (b *nfaBuilder) build(n *node) frag {
	switch n.kind {
	case nEmpty:
		s := b.newState()
		return frag{s, s}
	case nChar:
		in, out := b.newState(), b.newState()
		b.char(in, n.set, out)
		return frag{in, out}
	case nConcat:
		f := b.build(n.subs[0])
		for _, sub := range n.subs[1:] {
			g := b.build(sub)
			b.eps(f.out, g.in)
			f.out = g.out
		}
		return f
	case nAlt:
		in, out := b.newState(), b.newState()
		for _, sub := range n.subs {
			g := b.build(sub)
			b.eps(in, g.in)
			b.eps(g.out, out)
		}
		return frag{in, out}
	case nStar:
		in, out := b.newState(), b.newState()
		g := b.build(n.subs[0])
		b.eps(in, g.in)
		b.eps(in, out)
		b.eps(g.out, g.in)
		b.eps(g.out, out)
		return frag{in, out}
	case nPlus:
		g := b.build(n.subs[0])
		out := b.newState()
		b.eps(g.out, g.in)
		b.eps(g.out, out)
		return frag{g.in, out}
	case nQuest:
		in, out := b.newState(), b.newState()
		g := b.build(n.subs[0])
		b.eps(in, g.in)
		b.eps(in, out)
		b.eps(g.out, out)
		return frag{in, out}
	default:
		panic("regex: unknown node kind")
	}
}

func buildNFA(root *node) *nfa {
	b := &nfaBuilder{}
	f := b.build(root)
	return &nfa{states: b.states, start: f.in, accept: f.out}
}
