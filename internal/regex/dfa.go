package regex

import (
	"errors"
	"sort"
)

// DFA is the compiled FSM table: the structure a software regexp engine
// interprets character-at-a-time and whose state indexes the paper's
// content reuse table stores as "Next FSM State" values (§4.5, Fig. 13).
//
// Bytes are first mapped through classOf into equivalence classes so the
// transition table stays small.
type DFA struct {
	classOf  [256]uint16
	nclasses int
	trans    [][]int32 // [state][class] -> next state, Dead if none
	accept   []bool
}

// Dead is the DFA's reject state index.
const Dead int32 = -1

// maxDFAStates bounds subset construction; the paper's application
// regexps are small, so hitting this indicates a pathological pattern.
const maxDFAStates = 8192

var errTooManyStates = errors.New("regex: DFA state limit exceeded")

// epsClosure expands a set of NFA states through epsilon edges in place.
func epsClosure(n *nfa, set map[int]bool) {
	stack := make([]int, 0, len(set))
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.states[s].eps {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
}

func setKey(set map[int]bool) string {
	ids := make([]int, 0, len(set))
	for s := range set {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	key := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		key = append(key, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(key)
}

// buildDFA performs subset construction over byte equivalence classes.
func buildDFA(n *nfa) (*DFA, error) {
	d := &DFA{}
	d.computeClasses(n)

	// Per-class charSet membership test: pick one representative byte.
	repr := make([]byte, d.nclasses)
	seen := make([]bool, d.nclasses)
	for b := 0; b < 256; b++ {
		c := d.classOf[b]
		if !seen[c] {
			seen[c] = true
			repr[c] = byte(b)
		}
	}

	startSet := map[int]bool{n.start: true}
	epsClosure(n, startSet)

	ids := map[string]int32{}
	var sets []map[int]bool
	add := func(set map[int]bool) (int32, error) {
		key := setKey(set)
		if id, ok := ids[key]; ok {
			return id, nil
		}
		if len(sets) >= maxDFAStates {
			return Dead, errTooManyStates
		}
		id := int32(len(sets))
		ids[key] = id
		sets = append(sets, set)
		d.trans = append(d.trans, make([]int32, d.nclasses))
		d.accept = append(d.accept, set[n.accept])
		return id, nil
	}

	if _, err := add(startSet); err != nil {
		return nil, err
	}
	for work := 0; work < len(sets); work++ {
		cur := sets[work]
		for c := 0; c < d.nclasses; c++ {
			b := repr[c]
			next := map[int]bool{}
			for s := range cur {
				for _, tr := range n.states[s].trans {
					if tr.set.contains(b) {
						next[tr.to] = true
					}
				}
			}
			if len(next) == 0 {
				d.trans[work][c] = Dead
				continue
			}
			epsClosure(n, next)
			id, err := add(next)
			if err != nil {
				return nil, err
			}
			d.trans[work][c] = id
		}
	}
	return d, nil
}

// computeClasses partitions bytes into equivalence classes: two bytes are
// equivalent when every character set in the NFA treats them identically.
func (d *DFA) computeClasses(n *nfa) {
	// Signature per byte: membership bit per distinct charSet.
	var sets []charSet
	seen := map[charSet]bool{}
	for _, st := range n.states {
		for _, tr := range st.trans {
			if !seen[tr.set] {
				seen[tr.set] = true
				sets = append(sets, tr.set)
			}
		}
	}
	sig := make([]string, 256)
	buf := make([]byte, (len(sets)+7)/8)
	for b := 0; b < 256; b++ {
		for i := range buf {
			buf[i] = 0
		}
		for i, s := range sets {
			if s.contains(byte(b)) {
				buf[i/8] |= 1 << (i % 8)
			}
		}
		sig[b] = string(buf)
	}
	classIDs := map[string]uint16{}
	for b := 0; b < 256; b++ {
		id, ok := classIDs[sig[b]]
		if !ok {
			id = uint16(len(classIDs))
			classIDs[sig[b]] = id
		}
		d.classOf[b] = id
	}
	d.nclasses = len(classIDs)
}

// Start returns the DFA start state.
func (d *DFA) Start() int32 { return 0 }

// Step advances the DFA by one input byte. Stepping from Dead stays Dead.
func (d *DFA) Step(state int32, b byte) int32 {
	if state == Dead {
		return Dead
	}
	return d.trans[state][d.classOf[b]]
}

// Accepting reports whether the state is accepting.
func (d *DFA) Accepting(state int32) bool {
	return state != Dead && d.accept[state]
}

// NumStates returns the number of DFA states (the FSM table size).
func (d *DFA) NumStates() int { return len(d.trans) }

// Run consumes input from the given state, returning the final state.
// This is the primitive the content reuse table builds on: running the
// FSM over a remembered prefix yields the state to jump to (§4.5).
func (d *DFA) Run(state int32, input []byte) int32 {
	for _, b := range input {
		state = d.Step(state, b)
		if state == Dead {
			return Dead
		}
	}
	return state
}

// acceptsOnly reports whether some non-empty string drawn entirely from
// allowed bytes reaches an accepting state. Content sifting uses the
// negation: if no regular-bytes-only string can match, segments with no
// special characters are safe to skip (§4.5).
func (d *DFA) acceptsOnly(allowed func(byte) bool) bool {
	visited := make([]bool, len(d.trans))
	stack := []int32{0}
	visited[0] = true
	steps := 0
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for b := 0; b < 256; b++ {
			if !allowed(byte(b)) {
				continue
			}
			t := d.trans[s][d.classOf[b]]
			if t == Dead {
				continue
			}
			if d.accept[t] {
				return true
			}
			if !visited[t] {
				visited[t] = true
				stack = append(stack, t)
			}
		}
		steps++
		if steps > maxDFAStates {
			break
		}
	}
	return false
}
