// Package regex implements the regular expression engine the PHP
// workloads run on: a PCRE-style pattern subset compiled through a
// Thompson NFA into a DFA — the "FSM table" the paper's regexp
// accelerator stores state indexes into (§4.5). The baseline matcher is
// deliberately a character-at-a-time sequential scan, matching the
// processing model whose cost the paper's Content Sifting and Content
// Reuse techniques avoid.
//
// Supported syntax: literals, '.', escapes (\d \D \w \W \s \S \n \r \t
// and escaped metacharacters), character classes with ranges and
// negation, grouping '()', alternation '|', the quantifiers '*' '+' '?',
// the anchors '^' (pattern start) and '$' (pattern end), and a
// fixed-length lookbehind '(?<=...)' at the start of the pattern, which
// is the form the paper's WordPress code snippet (Fig. 11) uses.
package regex

import (
	"errors"
	"fmt"
)

// charSet is a 256-bit byte-class bitmap.
type charSet [4]uint64

func (s *charSet) add(b byte)           { s[b>>6] |= 1 << (b & 63) }
func (s *charSet) contains(b byte) bool { return s[b>>6]&(1<<(b&63)) != 0 }

func (s *charSet) addRange(lo, hi byte) {
	for b := int(lo); b <= int(hi); b++ {
		s.add(byte(b))
	}
}

func (s *charSet) negate() {
	for i := range s {
		s[i] = ^s[i]
	}
}

func (s *charSet) union(o charSet) {
	for i := range s {
		s[i] |= o[i]
	}
}

func (s *charSet) empty() bool { return s[0]|s[1]|s[2]|s[3] == 0 }

func singleton(b byte) charSet {
	var s charSet
	s.add(b)
	return s
}

func anyChar() charSet {
	var s charSet
	s.negate() // '.' in PCRE without DOTALL excludes \n
	s[uint8('\n')>>6] &^= 1 << ('\n' & 63)
	return s
}

// AST node kinds.
type nodeKind uint8

const (
	nEmpty nodeKind = iota
	nChar           // character class (single bytes are one-bit classes)
	nConcat
	nAlt
	nStar
	nPlus
	nQuest
)

type node struct {
	kind nodeKind
	set  charSet // nChar
	subs []*node // nConcat, nAlt, nStar/nPlus/nQuest (one sub)
}

// parsed is the output of the parser.
type parsed struct {
	root        *node
	anchored    bool  // leading ^
	endAnchored bool  // trailing $
	lookbehind  *node // fixed-length assertion preceding the match
	lbLen       int
}

type parser struct {
	src []byte
	pos int
}

var errUnexpectedEnd = errors.New("regex: unexpected end of pattern")

func parse(pattern string) (*parsed, error) {
	p := &parser{src: []byte(pattern)}
	out := &parsed{}

	if p.peek() == '^' {
		p.pos++
		out.anchored = true
	}
	if p.hasPrefix("(?<=") {
		p.pos += 4
		lb, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, errors.New("regex: unterminated lookbehind")
		}
		p.pos++
		n, ok := fixedLen(lb)
		if !ok {
			return nil, errors.New("regex: lookbehind must have fixed length")
		}
		out.lookbehind = lb
		out.lbLen = n
	}

	root, err := p.alternation()
	if err != nil {
		return nil, err
	}
	// A trailing $ anchors the match end. (Only supported at the very end.)
	if len(p.src) > 0 && p.pos == len(p.src)-1 && p.src[p.pos] == '$' {
		p.pos++
		out.endAnchored = true
	}
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("regex: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	out.root = root
	return out, nil
}

func (p *parser) hasPrefix(s string) bool {
	return p.pos+len(s) <= len(p.src) && string(p.src[p.pos:p.pos+len(s)]) == s
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) alternation() (*node, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	subs := []*node{first}
	for p.peek() == '|' {
		p.pos++
		nxt, err := p.concat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, nxt)
	}
	if len(subs) == 1 {
		return first, nil
	}
	return &node{kind: nAlt, subs: subs}, nil
}

func (p *parser) concat() (*node, error) {
	var subs []*node
	for {
		c := p.peek()
		if c == 0 && p.pos >= len(p.src) {
			break
		}
		if c == '|' || c == ')' {
			break
		}
		if c == '$' && p.pos == len(p.src)-1 {
			break // handled as end anchor by parse
		}
		atom, err := p.repeat()
		if err != nil {
			return nil, err
		}
		subs = append(subs, atom)
	}
	switch len(subs) {
	case 0:
		return &node{kind: nEmpty}, nil
	case 1:
		return subs[0], nil
	}
	return &node{kind: nConcat, subs: subs}, nil
}

func (p *parser) repeat() (*node, error) {
	atom, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			atom = &node{kind: nStar, subs: []*node{atom}}
		case '+':
			p.pos++
			atom = &node{kind: nPlus, subs: []*node{atom}}
		case '?':
			p.pos++
			atom = &node{kind: nQuest, subs: []*node{atom}}
		case '{':
			rep, ok, err := p.bounded(atom)
			if err != nil {
				return nil, err
			}
			if !ok {
				// Not a quantifier ('{' as a literal, PCRE-compatible).
				return atom, nil
			}
			atom = rep
		default:
			return atom, nil
		}
	}
}

// maxBoundedRepeat caps {n,m} expansion so pathological patterns cannot
// blow up the NFA.
const maxBoundedRepeat = 256

// bounded parses a {n}, {n,}, or {n,m} quantifier applied to atom,
// expanding it into concatenated copies (the standard construction).
// Returns ok=false without consuming input when the brace does not start
// a well-formed quantifier.
func (p *parser) bounded(atom *node) (*node, bool, error) {
	start := p.pos
	p.pos++ // consume '{'
	readInt := func() (int, bool) {
		begin := p.pos
		v := 0
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			if v <= maxBoundedRepeat { // clamp, keep consuming digits
				v = v*10 + int(p.src[p.pos]-'0')
			}
			p.pos++
		}
		return v, p.pos > begin
	}
	lo, ok := readInt()
	if !ok {
		p.pos = start
		return nil, false, nil
	}
	hi := lo
	unbounded := false
	if p.peek() == ',' {
		p.pos++
		if p.peek() == '}' {
			unbounded = true
		} else {
			hi, ok = readInt()
			if !ok {
				p.pos = start
				return nil, false, nil
			}
		}
	}
	if p.peek() != '}' {
		p.pos = start
		return nil, false, nil
	}
	p.pos++
	if lo > maxBoundedRepeat || hi > maxBoundedRepeat {
		return nil, false, fmt.Errorf("regex: repetition count exceeds %d", maxBoundedRepeat)
	}
	if !unbounded && hi < lo {
		return nil, false, fmt.Errorf("regex: invalid repetition {%d,%d}", lo, hi)
	}
	// Expansion: atom{lo} followed by (hi-lo) optional copies, or atom*
	// for an unbounded tail.
	var subs []*node
	for i := 0; i < lo; i++ {
		subs = append(subs, cloneNode(atom))
	}
	if unbounded {
		subs = append(subs, &node{kind: nStar, subs: []*node{cloneNode(atom)}})
	} else {
		for i := lo; i < hi; i++ {
			subs = append(subs, &node{kind: nQuest, subs: []*node{cloneNode(atom)}})
		}
	}
	switch len(subs) {
	case 0:
		return &node{kind: nEmpty}, true, nil
	case 1:
		return subs[0], true, nil
	}
	return &node{kind: nConcat, subs: subs}, true, nil
}

// cloneNode deep-copies an AST node for quantifier expansion.
func cloneNode(n *node) *node {
	out := &node{kind: n.kind, set: n.set}
	for _, s := range n.subs {
		out.subs = append(out.subs, cloneNode(s))
	}
	return out
}

func (p *parser) atom() (*node, error) {
	if p.pos >= len(p.src) {
		return nil, errUnexpectedEnd
	}
	c := p.src[p.pos]
	switch c {
	case '(':
		p.pos++
		// Tolerate the non-capturing group marker.
		if p.hasPrefix("?:") {
			p.pos += 2
		}
		sub, err := p.alternation()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, errors.New("regex: missing )")
		}
		p.pos++
		return sub, nil
	case '[':
		p.pos++
		set, err := p.class()
		if err != nil {
			return nil, err
		}
		return &node{kind: nChar, set: set}, nil
	case '.':
		p.pos++
		return &node{kind: nChar, set: anyChar()}, nil
	case '\\':
		p.pos++
		set, err := p.escape()
		if err != nil {
			return nil, err
		}
		return &node{kind: nChar, set: set}, nil
	case '*', '+', '?':
		return nil, fmt.Errorf("regex: dangling quantifier %q at %d", c, p.pos)
	case '^':
		return nil, errors.New("regex: ^ is only supported at the pattern start")
	case '$':
		return nil, errors.New("regex: $ is only supported at the pattern end")
	default:
		p.pos++
		return &node{kind: nChar, set: singleton(c)}, nil
	}
}

func (p *parser) escape() (charSet, error) {
	if p.pos >= len(p.src) {
		return charSet{}, errUnexpectedEnd
	}
	c := p.src[p.pos]
	p.pos++
	var s charSet
	switch c {
	case 'd':
		s.addRange('0', '9')
	case 'D':
		s.addRange('0', '9')
		s.negate()
	case 'w':
		s.addRange('a', 'z')
		s.addRange('A', 'Z')
		s.addRange('0', '9')
		s.add('_')
	case 'W':
		s.addRange('a', 'z')
		s.addRange('A', 'Z')
		s.addRange('0', '9')
		s.add('_')
		s.negate()
	case 's':
		for _, b := range []byte(" \t\n\r\f\v") {
			s.add(b)
		}
	case 'S':
		for _, b := range []byte(" \t\n\r\f\v") {
			s.add(b)
		}
		s.negate()
	case 'n':
		s.add('\n')
	case 'r':
		s.add('\r')
	case 't':
		s.add('\t')
	case 'f':
		s.add('\f')
	case 'v':
		s.add('\v')
	case '0':
		s.add(0)
	default:
		// Escaped metacharacter or punctuation: a literal.
		s.add(c)
	}
	return s, nil
}

func (p *parser) class() (charSet, error) {
	var s charSet
	negate := false
	if p.peek() == '^' {
		negate = true
		p.pos++
	}
	first := true
	for {
		if p.pos >= len(p.src) {
			return s, errors.New("regex: unterminated character class")
		}
		c := p.src[p.pos]
		if c == ']' && !first {
			p.pos++
			break
		}
		first = false
		var lo charSet
		if c == '\\' {
			p.pos++
			e, err := p.escape()
			if err != nil {
				return s, err
			}
			lo = e
		} else {
			p.pos++
			lo = singleton(c)
		}
		// Range? Only when the left side was a single literal byte.
		if p.peek() == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] != ']' && c != '\\' && popcount(lo) == 1 {
			p.pos++ // consume '-'
			hiC := p.src[p.pos]
			if hiC == '\\' {
				p.pos++
				e, err := p.escape()
				if err != nil {
					return s, err
				}
				if popcount(e) != 1 {
					return s, errors.New("regex: invalid range endpoint")
				}
				hiC = lowestByte(e)
			} else {
				p.pos++
			}
			if hiC < c {
				return s, fmt.Errorf("regex: inverted range %c-%c", c, hiC)
			}
			s.addRange(c, hiC)
			continue
		}
		s.union(lo)
	}
	if negate {
		s.negate()
	}
	return s, nil
}

func popcount(s charSet) int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func lowestByte(s charSet) byte {
	for b := 0; b < 256; b++ {
		if s.contains(byte(b)) {
			return byte(b)
		}
	}
	return 0
}

// fixedLen computes the exact match length of an AST if it is fixed,
// used to validate lookbehind assertions.
func fixedLen(n *node) (int, bool) {
	switch n.kind {
	case nEmpty:
		return 0, true
	case nChar:
		return 1, true
	case nConcat:
		total := 0
		for _, s := range n.subs {
			l, ok := fixedLen(s)
			if !ok {
				return 0, false
			}
			total += l
		}
		return total, true
	case nAlt:
		first, ok := fixedLen(n.subs[0])
		if !ok {
			return 0, false
		}
		for _, s := range n.subs[1:] {
			l, ok := fixedLen(s)
			if !ok || l != first {
				return 0, false
			}
		}
		return first, true
	default: // quantifiers are variable-length
		return 0, false
	}
}
