package regex

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func mustFind(t *testing.T, pattern, input string) (int, int) {
	t.Helper()
	r := MustCompile(pattern)
	return r.Find([]byte(input))
}

func TestLiteralMatch(t *testing.T) {
	cases := []struct {
		pattern, input string
		start, end     int
	}{
		{"abc", "babc", 1, 4},
		{"abc", "abc", 0, 3},
		{"abc", "ab", -1, -1},
		{"a", "", -1, -1},
		{"", "xyz", 0, 0},
	}
	for _, c := range cases {
		s, e := mustFind(t, c.pattern, c.input)
		if s != c.start || e != c.end {
			t.Errorf("Find(%q, %q) = (%d,%d), want (%d,%d)", c.pattern, c.input, s, e, c.start, c.end)
		}
	}
}

func TestQuantifiers(t *testing.T) {
	cases := []struct {
		pattern, input string
		start, end     int
	}{
		{"ab*c", "ac", 0, 2},
		{"ab*c", "abbbc", 0, 5},
		{"ab+c", "ac", -1, -1},
		{"ab+c", "abbc", 0, 4},
		{"ab?c", "abc", 0, 3},
		{"ab?c", "ac", 0, 2},
		{"ab?c", "abbc", -1, -1},
		{"a*", "aaa", 0, 3}, // leftmost-longest
	}
	for _, c := range cases {
		s, e := mustFind(t, c.pattern, c.input)
		if s != c.start || e != c.end {
			t.Errorf("Find(%q, %q) = (%d,%d), want (%d,%d)", c.pattern, c.input, s, e, c.start, c.end)
		}
	}
}

func TestAlternationAndGroups(t *testing.T) {
	cases := []struct {
		pattern, input string
		want           bool
	}{
		{"cat|dog", "hotdog", true},
		{"cat|dog", "catfish", true},
		{"cat|dog", "bird", false},
		{"(ab|cd)+", "abcdab", true},
		{"(?:ab|cd)e", "cde", true},
		{"x(y|z)w", "xzw", true},
		{"x(y|z)w", "xw", false},
	}
	for _, c := range cases {
		r := MustCompile(c.pattern)
		if got := r.Match([]byte(c.input)); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestCharClasses(t *testing.T) {
	cases := []struct {
		pattern, input string
		want           bool
	}{
		{"[abc]", "zzbzz", true},
		{"[abc]", "zzz", false},
		{"[a-f]+", "deadbeef", true},
		{"[^a-z]", "abc!", true},
		{"[^a-z]", "abc", false},
		{`\d+`, "item42", true},
		{`\d+`, "item", false},
		{`\w+`, "__x9", true},
		{`\s`, "a b", true},
		{`\S+`, "   x", true},
		{`[\d-]`, "a-b", true}, // escape then literal dash
		{"[]a]", "]", true},    // ] first in class is a literal
		{`\.`, "a.b", true},    // escaped metachar
		{`\.`, "axb", false},
		{"a.c", "abc", true},   // dot
		{"a.c", "a\nc", false}, // dot excludes newline
	}
	for _, c := range cases {
		r := MustCompile(c.pattern)
		if got := r.Match([]byte(c.input)); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestAnchors(t *testing.T) {
	cases := []struct {
		pattern, input string
		want           bool
	}{
		{"^abc", "abcdef", true},
		{"^abc", "xabc", false},
		{"xyz$", "wxyz", true},
		{"xyz$", "xyzw", false},
		{"^only$", "only", true},
		{"^only$", "only ", false},
	}
	for _, c := range cases {
		r := MustCompile(c.pattern)
		if got := r.Match([]byte(c.input)); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.input, got, c.want)
		}
	}
}

func TestLookbehind(t *testing.T) {
	// Match a quote only when preceded by a word character, the Fig. 11
	// WordPress idiom.
	r := MustCompile(`(?<=\w)'`)
	s, e := r.Find([]byte("don't"))
	if s != 3 || e != 4 {
		t.Errorf("lookbehind Find = (%d,%d), want (3,4)", s, e)
	}
	if r.Match([]byte("'start")) {
		t.Errorf("lookbehind should reject quote at position 0")
	}
	if r.Match([]byte(" 'x")) {
		t.Errorf("lookbehind should reject quote after space")
	}
	if r.LookbehindLen() != 1 {
		t.Errorf("LookbehindLen = %d, want 1", r.LookbehindLen())
	}
}

func TestLookbehindVariableLengthRejected(t *testing.T) {
	if _, err := Compile(`(?<=a*)b`); err == nil {
		t.Errorf("variable-length lookbehind should fail to compile")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"(", ")x(", "[abc", "*a", "+", "?", "a**b(", "(?<=x", "[z-a]", "a^b", "a$b"}
	for _, p := range bad {
		if _, err := Compile(p); err == nil {
			t.Errorf("Compile(%q) should fail", p)
		}
	}
}

func TestFindAll(t *testing.T) {
	r := MustCompile(`\d+`)
	ms := r.FindAll([]byte("a1b22c333"))
	want := []MatchRange{{1, 2}, {3, 5}, {6, 9}}
	if len(ms) != len(want) {
		t.Fatalf("FindAll = %v, want %v", ms, want)
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Errorf("match %d = %v, want %v", i, ms[i], want[i])
		}
	}
}

func TestFindAllEmptyMatches(t *testing.T) {
	r := MustCompile("x*")
	ms := r.FindAll([]byte("ab"))
	// Empty matches at every position must not loop forever.
	if len(ms) != 3 {
		t.Errorf("FindAll(x*, ab) = %v, want 3 empty matches", ms)
	}
}

func TestReplaceAll(t *testing.T) {
	r := MustCompile(`\s+`)
	out, n := r.ReplaceAll([]byte("a  b\t\tc"), []byte(" "))
	if string(out) != "a b c" || n != 2 {
		t.Errorf("ReplaceAll = %q, %d", out, n)
	}
	out, n = r.ReplaceAll([]byte("nochange"), []byte("-"))
	if string(out) != "nochange" || n != 0 {
		t.Errorf("no-match ReplaceAll = %q, %d", out, n)
	}
}

func TestReplaceAllHTMLishWorkload(t *testing.T) {
	// The paper's workloads wrap special characters in HTML entities.
	r := MustCompile(`<`)
	out, n := r.ReplaceAll([]byte(`a<b<c`), []byte("&lt;"))
	if string(out) != "a&lt;b&lt;c" || n != 2 {
		t.Errorf("ReplaceAll = %q, %d", out, n)
	}
}

func TestFSMRunAndStateJump(t *testing.T) {
	// Content reuse relies on running the FSM over a remembered prefix and
	// resuming from the stored state.
	r := MustCompile(`https://[a-z]+/\?author=[a-z]+`)
	d := r.FSM()
	prefix := []byte("https://localhost/?author=")
	st := d.Run(d.Start(), prefix)
	if st == Dead {
		t.Fatalf("prefix should keep the FSM alive")
	}
	// Resuming with the changed tail must reach acceptance.
	st2 := d.Run(st, []byte("xyz"))
	if !d.Accepting(st2) {
		t.Errorf("resumed run should accept")
	}
	// Equivalent to running the whole thing at once.
	whole := d.Run(d.Start(), append(append([]byte{}, prefix...), []byte("xyz")...))
	if st2 != whole {
		t.Errorf("resumed state %d != full-run state %d", st2, whole)
	}
}

func TestDFADeterminismProperty(t *testing.T) {
	// Running input i through Run must equal stepping byte by byte.
	r := MustCompile(`[a-c]+(x|y)?[0-9]`)
	d := r.FSM()
	f := func(input []byte) bool {
		st := d.Start()
		for _, b := range input {
			st = d.Step(st, b)
			if st == Dead {
				break
			}
		}
		return st == d.Run(d.Start(), input) ||
			(st == Dead && d.Run(d.Start(), input) == Dead)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func isRegularByte(c byte) bool {
	switch {
	case c >= 'A' && c <= 'Z', c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '.' || c == ',' || c == '-' || c == ' ':
		return true
	}
	return false
}

func TestRequiresSpecial(t *testing.T) {
	cases := []struct {
		pattern string
		want    bool
	}{
		{`'`, true},        // apostrophe: special
		{`"[^"]*"`, true},  // quoted span
		{`<[a-z]+>`, true}, // HTML tag
		{`\n`, true},       // newline
		{`[a-z]+`, false},  // pure regular text can match
		{`cat|<`, false},   // one branch is all-regular
		{`a*`, false},      // matches empty
		{`&[a-z]+;`, true}, // entity
	}
	for _, c := range cases {
		r := MustCompile(c.pattern)
		if got := r.RequiresSpecial(isRegularByte); got != c.want {
			t.Errorf("RequiresSpecial(%q) = %v, want %v", c.pattern, got, c.want)
		}
	}
}

// TestAgainstStdlib cross-checks Find against Go's regexp on a random but
// stdlib-compatible pattern subset. Go's regexp is leftmost-first; for the
// alternation-free patterns generated here it agrees with our
// leftmost-longest semantics.
func TestAgainstStdlib(t *testing.T) {
	atoms := []string{"a", "b", "c", "[ab]", "[^c]", `\d`, "a*", "b+", "c?", "."}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			sb.WriteString(atoms[rng.Intn(len(atoms))])
		}
		pattern := sb.String()

		std, err := regexp.CompilePOSIX(pattern)
		if err != nil {
			continue
		}
		mine, err := Compile(pattern)
		if err != nil {
			t.Fatalf("Compile(%q): %v", pattern, err)
		}

		// Note: no newline in the alphabet — RE2 negated classes exclude
		// \n by default while our engine follows PCRE and includes it.
		inputBytes := make([]byte, rng.Intn(20))
		alphabet := "abc1 !"
		for i := range inputBytes {
			inputBytes[i] = alphabet[rng.Intn(len(alphabet))]
		}

		loc := std.FindIndex(inputBytes)
		s, e := mine.Find(inputBytes)
		if loc == nil {
			if s != -1 {
				t.Errorf("pattern %q input %q: stdlib no match, ours (%d,%d)", pattern, inputBytes, s, e)
			}
			continue
		}
		if s != loc[0] || e != loc[1] {
			t.Errorf("pattern %q input %q: stdlib %v, ours (%d,%d)", pattern, inputBytes, loc, s, e)
		}
	}
}

type scanRec struct {
	scans    []int
	compiles []int
}

func (s *scanRec) OnScan(n int)    { s.scans = append(s.scans, n) }
func (s *scanRec) OnCompile(n int) { s.compiles = append(s.compiles, n) }

func TestObserverScanAccounting(t *testing.T) {
	obs := &scanRec{}
	r, err := CompileObserved("needle", obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.compiles) != 1 || obs.compiles[0] != r.NumStates() {
		t.Fatalf("compile event missing: %v", obs.compiles)
	}
	input := []byte(strings.Repeat("x", 1000) + "needle")
	if !r.Match(input) {
		t.Fatalf("should match")
	}
	if len(obs.scans) != 1 {
		t.Fatalf("scan events = %v", obs.scans)
	}
	// Character-at-a-time model: every byte up to the match is charged.
	if obs.scans[0] < 1000 || obs.scans[0] > len(input) {
		t.Errorf("scan cost %d out of range (input %d)", obs.scans[0], len(input))
	}
}

func TestPatternAccessors(t *testing.T) {
	r := MustCompile("^ab")
	if r.Pattern() != "^ab" || !r.Anchored() || r.MatchesEmpty() {
		t.Errorf("accessors wrong: %q %v %v", r.Pattern(), r.Anchored(), r.MatchesEmpty())
	}
	if r.NumStates() < 2 {
		t.Errorf("NumStates = %d", r.NumStates())
	}
}

func TestAnchoredFindFrom(t *testing.T) {
	r := MustCompile("^ab")
	if s, _ := r.FindFrom([]byte("xxab"), 2); s != -1 {
		t.Errorf("anchored pattern must not match at offset 2")
	}
	if s, _ := r.FindFrom([]byte("abxx"), 0); s != 0 {
		t.Errorf("anchored pattern should match at 0")
	}
}

func BenchmarkFindLiteral(b *testing.B) {
	r := MustCompile("quick brown")
	input := []byte(strings.Repeat("the lazy dog sat. ", 100) + "the quick brown fox")
	b.SetBytes(int64(len(input)))
	for i := 0; i < b.N; i++ {
		r.Find(input)
	}
}

func BenchmarkFindClass(b *testing.B) {
	r := MustCompile(`<[a-z]+ href="[^"]*">`)
	input := []byte(strings.Repeat(`some text <a href="https://example.com/page">link</a> `, 40))
	b.SetBytes(int64(len(input)))
	for i := 0; i < b.N; i++ {
		r.FindAll(input)
	}
}

func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustCompile(`<(a|img|div)[^>]*>|&[a-z]+;|\d+`)
	}
}
