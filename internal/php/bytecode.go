package php

// The bytecode tier compiles the parsed AST into a compact opcode
// stream executed by a stack machine (bcexec.go). The motivation is the
// paper's §3 "future core" baseline: a profile-guided runtime that
// replaces per-node tree dispatch with threaded opcodes, polymorphic
// inline caches at hash-access sites, and type feedback at arithmetic
// sites. Every array access, string op, and regexp still flows through
// the same vm.Runtime / isa.CPU helpers as the tree-walker, so the
// simulated accelerator accounting is exact — only the modeled
// interpreter-dispatch overhead (CatOther uops) shrinks, which is what
// moves the Fig. 1 gauges the way §3 predicts.

type opcode uint8

const (
	opConst      opcode = iota // push consts[a]
	opLoadVar                  // push slots[a]
	opStoreVar                 // slots[a] = pop
	opDup                      // duplicate top of stack
	opPop                      // drop top of stack
	opJump                     // pc = a
	opJumpIfFalse              // pop; if !truthy pc = a
	opAndJump                  // pop l; if !truthy push false, pc = a
	opOrJump                   // pop l; if truthy push true, pc = a
	opToBool                   // pop; push truthy as bool
	opNot                      // pop; push !truthy
	opNeg                      // pop; push typed negation
	opBinary                   // a = binKind, b = type-feedback site (-1 none); pop r, l
	opEcho                     // pop; write toString to output buffer
	opInlineHTML               // write consts[a] (string) verbatim
	opIndexNil                 // peek subject: nil → pop, push nil, pc = a; array/string → fall through; else error
	opIndexGet                 // pop key, pop subject; a = IC site (-1), b = 1 when dynamic
	opVivCheck                 // pop subj; array → push, pc = a; nil → push new array, fall through; else error
	opStoreIndex               // pop key, pop arr, pop val; a = IC site (-1), b = 1 when dynamic
	opAppendSet                // pop arr, pop val; ASet at the next auto-index
	opCombine                  // a = combineKind; pop cur, pop val; push val <op> cur-style compound result
	opIncDec                   // pop cur; push cur ± 1 (a = +1/-1)
	opNewArray                 // push a fresh request-owned array
	opArrAppend                // pop val; peek arr; ASet at next auto-index
	opArrSet                   // pop key, pop val; peek arr; b = 1 when dynamic
	opLoopInit                 // loops[a] = 0
	opLoopTick                 // loops[a]++; over the limit → iteration-limit error (b = 0 while, 1 for)
	opForeachStart             // pop subject; must be array; push iterator; pc = a (the opForeachNext)
	opForeachNext              // a = end target; b = (keySlot+1)<<16 | valSlot; advance or exit
	opIterPop                  // pop one foreach iterator (break)
	opCallUser                 // a = function index, b = argc; args on stack
	opCallBuiltin              // a = call-site index into calls; args on stack
	opIsSet                    // pop; push v != nil
	opUnsetVar                 // slots[a] = nil; push nil
	opUnsetSubj                // pop; array → push, fall through; else push nil, pc = a
	opADelete                  // pop key, pop arr; delete; push nil
	opExtract                  // pop; import string keys into slots; push count
	opReturn                   // pop; return value from the activation
	opErr                      // fail with errs[a]
)

// binKind selects the operator for opBinary.
type binKind int32

const (
	bkConcat binKind = iota
	bkAdd
	bkSub
	bkMul
	bkDiv
	bkMod
	bkEq
	bkNe
	bkSeq
	bkSne
	bkLt
	bkGt
	bkLe
	bkGe
	bkCmp
)

// combineKind selects the compound-assignment operator for opCombine.
type combineKind int32

const (
	ckConcat combineKind = iota
	ckAdd
	ckSub
	ckMul
	ckDiv
)

// instr is one opcode with operands. line carries the source line for
// instructions that can raise positioned errors.
type instr struct {
	op   opcode
	a, b int32
	line int32
}

// callSite is the metadata an opCallBuiltin needs: the original call
// node (builtins format arity errors from it) and the resolved name.
type callSite struct {
	node *callExpr
}

// compiledFn is one function (or the script main) lowered to bytecode.
// It is immutable after Compile and safe to share across interpreters;
// all mutable execution state (stack, slots, inline caches) lives on
// the Interp.
type compiledFn struct {
	name   string
	decl   *funcDecl // nil for main
	params []int32   // slot index per declared parameter
	nSlots int
	slotOf map[string]int32 // variable name → slot
	code   []instr
	consts []interface{}
	errs   []string    // preformatted runtime error messages for opErr
	calls  []*callSite // opCallBuiltin metadata
	nLoops int         // while/for iteration-limit counters
}

// Compiled is a whole program lowered to bytecode: the main body plus
// every declared function, with global counts for the inline-cache and
// type-feedback site tables each executing Interp instantiates.
type Compiled struct {
	main      *compiledFn
	fns       []*compiledFn // sorted by name
	fnIndex   map[string]int32
	numICs    int // polymorphic inline-cache sites (dynamic hash get/set)
	numTFs    int // type-feedback sites (arithmetic/comparison)
	numFuncs  int
	srcHint   string // first function name, for diagnostics
	totalInst int
}

// Funcs returns the number of compiled user functions (main excluded).
func (c *Compiled) Funcs() int { return c.numFuncs }

// ICSites returns the number of polymorphic inline-cache sites.
func (c *Compiled) ICSites() int { return c.numICs }

// TypeSites returns the number of type-feedback sites.
func (c *Compiled) TypeSites() int { return c.numTFs }

// Instructions returns the total opcode count across all functions.
func (c *Compiled) Instructions() int { return c.totalInst }

// --- per-Interp mutable execution state ---

// icWays is the associativity of one polymorphic inline cache: how many
// distinct string keys a site may specialize on before it goes
// megamorphic and reverts to generic dynamic lookups.
const icWays = 4

// icSite is one polymorphic inline cache at a dynamic-key hash access.
// After observing a stable set of string keys it treats further hits as
// monomorphic accesses, which the isa.CPU prices as IC hits when the
// InlineCaching mitigation is enabled.
type icSite struct {
	keys [icWays]string
	n    uint8
	mega bool
}

// lookup reports whether key is cached, recording it when a way is
// free. A site that overflows its ways goes megamorphic permanently.
func (s *icSite) lookup(key string) bool {
	for i := uint8(0); i < s.n; i++ {
		if s.keys[i] == key {
			return true
		}
	}
	if s.mega {
		return false
	}
	if s.n < icWays {
		s.keys[s.n] = key
		s.n++
		return false
	}
	s.mega = true
	return false
}

// tfSite is one type-feedback site: it remembers the operand-type pair
// last observed so stable sites cost a single (checked-load-elidable)
// type check instead of a generic dispatch.
type tfSite struct {
	pair uint16
	seen bool
}

// typeTag classifies a PHP value for type feedback.
func typeTag(v interface{}) uint16 {
	switch v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int64:
		return 2
	case float64:
		return 3
	case string:
		return 4
	default:
		return 5
	}
}
