package php

import "testing"

// TestLooseEqCompareConsistency is the regression matrix for the
// numeric-string fallthrough bug: "10" == "1e1" used to be false while
// compare() ordered the same pair numerically ("10" <= "1e1" true), so
// == and the relational operators disagreed. PHP 8 semantics: a pair of
// numeric strings compares numerically everywhere.
func TestLooseEqCompareConsistency(t *testing.T) {
	cases := []struct {
		name    string
		l, r    interface{}
		eq      bool
		cmpSign int // sign of compare(l, r): -1, 0, +1
	}{
		// Numeric-string pairs: numeric comparison on both paths.
		{"numstr-eq-exp", "10", "1e1", true, 0},
		{"numstr-eq-float", "1.5", "1.50", true, 0},
		{"numstr-eq-sign", "+5", "5", true, 0},
		{"numstr-lt", "9", "10", false, -1},
		{"numstr-gt", "2e2", "30", false, 1},
		// Number vs numeric string: numeric.
		{"int-numstr", int64(10), "1e1", true, 0},
		{"float-numstr", 1.5, "1.5", true, 0},
		{"int-numstr-lt", int64(9), "10", false, -1},
		// Number vs non-numeric string: looseEq compares the printed
		// forms; compare() coerces the string through toFloat (0), so
		// 10 > "10abc" — unequal on both paths.
		{"int-str", int64(10), "10abc", false, 1},
		{"int-str-eq", int64(10), "10", true, 0},
		// Non-numeric string pairs: plain string semantics.
		{"str-eq", "abc", "abc", true, 0},
		{"str-lt", "abc", "abd", false, -1},
		// Mixed-case sanity: one numeric string, one not.
		{"numstr-str", "10", "10abc", false, -1},
		// Bools and nil keep truthy semantics.
		{"bool-int", true, int64(1), true, 0},
		{"nil-zero", nil, int64(0), true, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := looseEq(tc.l, tc.r); got != tc.eq {
				t.Errorf("looseEq(%#v, %#v) = %v, want %v", tc.l, tc.r, got, tc.eq)
			}
			if got := looseEq(tc.r, tc.l); got != tc.eq {
				t.Errorf("looseEq(%#v, %#v) = %v, want %v (symmetry)", tc.r, tc.l, got, tc.eq)
			}
			c := compare(tc.l, tc.r)
			sign := 0
			if c < 0 {
				sign = -1
			} else if c > 0 {
				sign = 1
			}
			if sign != tc.cmpSign {
				t.Errorf("compare(%#v, %#v) sign = %d, want %d", tc.l, tc.r, sign, tc.cmpSign)
			}
			// The consistency requirement itself: == iff compare says equal.
			if (sign == 0) != tc.eq {
				t.Errorf("looseEq/compare disagree for (%#v, %#v): eq=%v cmp=%d", tc.l, tc.r, tc.eq, sign)
			}
		})
	}
}

// TestLooseEqScriptLevel checks the fix end to end through the
// interpreter's == and <= operators.
func TestLooseEqScriptLevel(t *testing.T) {
	out := runSrc(t, `<?php
if ("10" == "1e1") { echo "eq "; } else { echo "ne "; }
if ("10" <= "1e1") { echo "le"; } else { echo "gt"; }
`)
	if out != "eq le" {
		t.Fatalf("numeric-string ==/<= mismatch: got %q, want %q", out, "eq le")
	}
}
