package php

import (
	"fmt"
	"sort"
)

// Compile lowers a parsed program to bytecode. The result is immutable
// and safe to share across interpreters and goroutines; per-execution
// state (value stack, variable slots, inline caches) lives on each
// Interp. Compilation mirrors the tree-walker's evaluation order and
// error behavior exactly — constructs the tree-walker rejects at
// runtime compile to opErr instructions that fire only when reached.
func Compile(prog *Program) (*Compiled, error) {
	c := &Compiled{fnIndex: map[string]int32{}}
	names := make([]string, 0, len(prog.funcs))
	for name := range prog.funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		c.fnIndex[name] = int32(i)
	}
	for _, name := range names {
		cf, err := compileFunc(c, prog, prog.funcs[name])
		if err != nil {
			return nil, err
		}
		c.fns = append(c.fns, cf)
	}
	main, err := compileBody(c, prog, "php_main", nil, nil, prog.stmts)
	if err != nil {
		return nil, err
	}
	c.main = main
	c.numFuncs = len(c.fns)
	c.totalInst = len(main.code)
	for _, f := range c.fns {
		c.totalInst += len(f.code)
	}
	if len(names) > 0 {
		c.srcHint = names[0]
	}
	return c, nil
}

func compileFunc(c *Compiled, prog *Program, fd *funcDecl) (*compiledFn, error) {
	return compileBody(c, prog, fd.name, fd, fd.params, fd.body)
}

// fnc is the single-function compiler state.
type fnc struct {
	c     *Compiled
	prog  *Program
	fn    *compiledFn
	loops []loopFrame
}

// loopFrame tracks the innermost enclosing loop's jump targets while
// its body compiles. Continue/break sites are emitted as placeholder
// jumps and patched when the targets are known.
type loopFrame struct {
	breakPatches []int
	contPatches  []int
	contTarget   int // -1 until known (for-loop post section, foreach next)
	isForeach    bool
}

func compileBody(c *Compiled, prog *Program, name string, decl *funcDecl, params []string, body []stmt) (*compiledFn, error) {
	fn := &compiledFn{name: name, decl: decl, slotOf: map[string]int32{}}
	fc := &fnc{c: c, prog: prog, fn: fn}
	for _, p := range params {
		fn.params = append(fn.params, fc.slot(p))
	}
	collectVars(body, func(v string) { fc.slot(v) })
	if err := fc.stmts(body); err != nil {
		return nil, err
	}
	// Implicit return null at the end of every body.
	fc.emit(opConst, fc.konst(nil), 0, 0)
	fc.emit(opReturn, 0, 0, 0)
	return fn, nil
}

// slot returns (allocating on first use) the slot index for a variable.
func (fc *fnc) slot(name string) int32 {
	if s, ok := fc.fn.slotOf[name]; ok {
		return s
	}
	s := int32(fc.fn.nSlots)
	fc.fn.slotOf[name] = s
	fc.fn.nSlots++
	return s
}

func (fc *fnc) emit(op opcode, a, b int32, line int) int {
	fc.fn.code = append(fc.fn.code, instr{op: op, a: a, b: b, line: int32(line)})
	return len(fc.fn.code) - 1
}

func (fc *fnc) patch(pc int, target int) { fc.fn.code[pc].a = int32(target) }

func (fc *fnc) here() int { return len(fc.fn.code) }

func (fc *fnc) konst(v interface{}) int32 {
	fc.fn.consts = append(fc.fn.consts, v)
	return int32(len(fc.fn.consts) - 1)
}

// errIdx interns a preformatted runtime error message.
func (fc *fnc) errIdx(msg string) int32 {
	fc.fn.errs = append(fc.fn.errs, msg)
	return int32(len(fc.fn.errs) - 1)
}

// icSite allocates a polymorphic inline-cache site id.
func (fc *fnc) icSite() int32 {
	id := int32(fc.c.numICs)
	fc.c.numICs++
	return id
}

// tfSite allocates a type-feedback site id.
func (fc *fnc) tfSite() int32 {
	id := int32(fc.c.numTFs)
	fc.c.numTFs++
	return id
}

func (fc *fnc) stmts(list []stmt) error {
	for _, s := range list {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *fnc) stmt(s stmt) error {
	switch n := s.(type) {
	case *inlineHTMLStmt:
		fc.emit(opInlineHTML, fc.konst(n.html), 0, 0)
	case *echoStmt:
		for _, a := range n.args {
			if err := fc.expr(a); err != nil {
				return err
			}
			fc.emit(opEcho, 0, 0, n.line)
		}
	case *exprStmt:
		if err := fc.expr(n.e); err != nil {
			return err
		}
		fc.emit(opPop, 0, 0, 0)
	case *ifStmt:
		if err := fc.expr(n.cond); err != nil {
			return err
		}
		jElse := fc.emit(opJumpIfFalse, 0, 0, n.line)
		if err := fc.stmts(n.then); err != nil {
			return err
		}
		jEnd := fc.emit(opJump, 0, 0, 0)
		fc.patch(jElse, fc.here())
		if err := fc.stmts(n.els); err != nil {
			return err
		}
		fc.patch(jEnd, fc.here())
	case *whileStmt:
		loopID := int32(fc.fn.nLoops)
		fc.fn.nLoops++
		fc.emit(opLoopInit, loopID, 0, 0)
		tick := fc.here()
		fc.emit(opLoopTick, loopID, 0, n.line)
		if err := fc.expr(n.cond); err != nil {
			return err
		}
		jEnd := fc.emit(opJumpIfFalse, 0, 0, n.line)
		fc.pushLoop(tick, false)
		if err := fc.stmts(n.body); err != nil {
			return err
		}
		fc.emit(opJump, int32(tick), 0, 0)
		fc.popLoop(fc.here(), tick)
		fc.patch(jEnd, fc.here())
	case *forStmt:
		if n.init != nil {
			if err := fc.expr(n.init); err != nil {
				return err
			}
			fc.emit(opPop, 0, 0, 0)
		}
		loopID := int32(fc.fn.nLoops)
		fc.fn.nLoops++
		fc.emit(opLoopInit, loopID, 0, 0)
		tick := fc.here()
		fc.emit(opLoopTick, loopID, 1, n.line)
		jEnd := -1
		if n.cond != nil {
			if err := fc.expr(n.cond); err != nil {
				return err
			}
			jEnd = fc.emit(opJumpIfFalse, 0, 0, n.line)
		}
		fc.pushLoop(-1, false) // continue target is the post section
		if err := fc.stmts(n.body); err != nil {
			return err
		}
		post := fc.here()
		if n.post != nil {
			if err := fc.expr(n.post); err != nil {
				return err
			}
			fc.emit(opPop, 0, 0, 0)
		}
		fc.emit(opJump, int32(tick), 0, 0)
		fc.popLoop(fc.here(), post)
		if jEnd >= 0 {
			fc.patch(jEnd, fc.here())
		}
	case *foreachStmt:
		if err := fc.expr(n.subject); err != nil {
			return err
		}
		fc.emit(opForeachStart, 0, 0, n.line)
		next := fc.here()
		keySlot := int32(0) // encoded as slot+1; 0 means "no key var"
		if n.keyVar != "" {
			keySlot = fc.slot(n.keyVar) + 1
		}
		packed := keySlot<<16 | fc.slot(n.valVar)
		jNext := fc.emit(opForeachNext, 0, packed, n.line)
		fc.pushLoop(next, true)
		if err := fc.stmts(n.body); err != nil {
			return err
		}
		fc.emit(opJump, int32(next), 0, 0)
		fc.popLoop(fc.here(), next)
		fc.patch(jNext, fc.here())
	case *returnStmt:
		if n.val != nil {
			if err := fc.expr(n.val); err != nil {
				return err
			}
		} else {
			fc.emit(opConst, fc.konst(nil), 0, 0)
		}
		fc.emit(opReturn, 0, 0, n.line)
	case *breakStmt:
		if len(fc.loops) == 0 {
			// Inside a function this silently exits with null (the
			// tree-walker's callUser ignores a propagated break); at main
			// scope it is the tree-walker's outside-a-loop error.
			if fc.fn.decl != nil {
				fc.emit(opConst, fc.konst(nil), 0, 0)
				fc.emit(opReturn, 0, 0, n.line)
			} else {
				fc.emit(opErr, fc.errIdx("php: break/continue outside a loop"), 0, n.line)
			}
			return nil
		}
		lf := &fc.loops[len(fc.loops)-1]
		if lf.isForeach {
			fc.emit(opIterPop, 0, 0, 0)
		}
		lf.breakPatches = append(lf.breakPatches, fc.emit(opJump, 0, 0, n.line))
	case *continueStmt:
		if len(fc.loops) == 0 {
			if fc.fn.decl != nil {
				fc.emit(opConst, fc.konst(nil), 0, 0)
				fc.emit(opReturn, 0, 0, n.line)
			} else {
				fc.emit(opErr, fc.errIdx("php: break/continue outside a loop"), 0, n.line)
			}
			return nil
		}
		lf := &fc.loops[len(fc.loops)-1]
		if lf.contTarget >= 0 {
			fc.emit(opJump, int32(lf.contTarget), 0, n.line)
		} else {
			lf.contPatches = append(lf.contPatches, fc.emit(opJump, 0, 0, n.line))
		}
	case *funcDecl:
		fc.emit(opErr, fc.errIdx(fmt.Sprintf("php: line %d: nested function declarations unsupported", n.line)), 0, n.line)
	default:
		return fmt.Errorf("php: cannot compile statement %T", s)
	}
	return nil
}

func (fc *fnc) pushLoop(contTarget int, isForeach bool) {
	fc.loops = append(fc.loops, loopFrame{contTarget: contTarget, isForeach: isForeach})
}

// popLoop patches the loop's pending break jumps to breakTarget and its
// pending continue jumps to contTarget.
func (fc *fnc) popLoop(breakTarget, contTarget int) {
	lf := fc.loops[len(fc.loops)-1]
	fc.loops = fc.loops[:len(fc.loops)-1]
	for _, pc := range lf.breakPatches {
		fc.patch(pc, breakTarget)
	}
	for _, pc := range lf.contPatches {
		fc.patch(pc, contTarget)
	}
}

func (fc *fnc) expr(e expr) error {
	switch n := e.(type) {
	case *litExpr:
		fc.emit(opConst, fc.konst(n.val), 0, 0)
	case *varExpr:
		fc.emit(opLoadVar, fc.slot(n.name), 0, n.line)
	case *assignExpr:
		return fc.assign(n, true)
	case *indexExpr:
		return fc.indexRead(n)
	case *binaryExpr:
		return fc.binary(n)
	case *unaryExpr:
		if err := fc.expr(n.e); err != nil {
			return err
		}
		if n.op == "!" {
			fc.emit(opNot, 0, 0, n.line)
		} else {
			fc.emit(opNeg, 0, 0, n.line)
		}
	case *callExpr:
		return fc.call(n)
	case *arrayLit:
		return fc.arrayLit(n)
	case *ternaryExpr:
		if err := fc.expr(n.cond); err != nil {
			return err
		}
		jElse := fc.emit(opJumpIfFalse, 0, 0, n.line)
		if err := fc.expr(n.then); err != nil {
			return err
		}
		jEnd := fc.emit(opJump, 0, 0, 0)
		fc.patch(jElse, fc.here())
		if err := fc.expr(n.els); err != nil {
			return err
		}
		fc.patch(jEnd, fc.here())
	case *incDecExpr:
		// Mirror the tree-walker: read the target as an rvalue, bump,
		// then store (re-evaluating the target's subject path).
		if err := fc.expr(n.target); err != nil {
			return err
		}
		delta := int32(1)
		if n.op == "--" {
			delta = -1
		}
		fc.emit(opIncDec, delta, 0, n.line)
		fc.emit(opDup, 0, 0, 0)
		return fc.store(n.target)
	default:
		return fmt.Errorf("php: cannot compile expression %T", e)
	}
	return nil
}

func (fc *fnc) assign(n *assignExpr, wantValue bool) error {
	// Tree-walker order: the value first, then (for compound ops) the
	// target's current value, then the store.
	if err := fc.expr(n.value); err != nil {
		return err
	}
	if n.op != "=" {
		if err := fc.expr(n.target); err != nil {
			return err
		}
		var ck combineKind
		switch n.op {
		case ".=":
			ck = ckConcat
		case "+=":
			ck = ckAdd
		case "-=":
			ck = ckSub
		case "*=":
			ck = ckMul
		case "/=":
			ck = ckDiv
		}
		fc.emit(opCombine, int32(ck), 0, n.line)
	}
	if wantValue {
		fc.emit(opDup, 0, 0, 0)
	}
	return fc.store(n.target)
}

// store compiles a write of the value on top of the stack into target,
// mirroring the tree-walker's store(): subject evaluated (and
// auto-vivified) per level, key evaluated after vivification.
func (fc *fnc) store(target expr) error {
	switch t := target.(type) {
	case *varExpr:
		fc.emit(opStoreVar, fc.slot(t.name), 0, t.line)
	case *indexExpr:
		if err := fc.expr(t.subject); err != nil {
			return err
		}
		jOK := fc.emit(opVivCheck, 0, 0, t.line)
		// Vivified: a fresh array is on the stack; store a second handle
		// back into the subject path (recursively auto-vivifying it).
		fc.emit(opDup, 0, 0, 0)
		if err := fc.store(t.subject); err != nil {
			return err
		}
		fc.patch(jOK, fc.here())
		if t.key == nil { // $a[] = v
			fc.emit(opAppendSet, 0, 0, t.line)
			return nil
		}
		dyn, site := fc.keyInfo(t.key)
		if err := fc.expr(t.key); err != nil {
			return err
		}
		fc.emit(opStoreIndex, site, dyn, t.line)
	default:
		fc.emit(opErr, fc.errIdx(fmt.Sprintf("php: invalid assignment target %T", target)), 0, 0)
	}
	return nil
}

// keyInfo reports whether a key expression is dynamic (anything but a
// literal) and allocates an inline-cache site for dynamic keys.
func (fc *fnc) keyInfo(key expr) (dyn int32, site int32) {
	if _, isLit := key.(*litExpr); isLit {
		return 0, -1
	}
	return 1, fc.icSite()
}

func (fc *fnc) indexRead(n *indexExpr) error {
	if err := fc.expr(n.subject); err != nil {
		return err
	}
	if n.key == nil {
		// The tree-walker evaluates the subject, then rejects the read.
		fc.emit(opPop, 0, 0, 0)
		fc.emit(opErr, fc.errIdx(fmt.Sprintf("php: line %d: cannot read the append form $a[]", n.line)), 0, n.line)
		return nil
	}
	jNil := fc.emit(opIndexNil, 0, 0, n.line)
	dyn, site := fc.keyInfo(n.key)
	if err := fc.expr(n.key); err != nil {
		return err
	}
	fc.emit(opIndexGet, site, dyn, n.line)
	fc.patch(jNil, fc.here())
	return nil
}

func (fc *fnc) binary(n *binaryExpr) error {
	if n.op == "&&" || n.op == "||" {
		if err := fc.expr(n.l); err != nil {
			return err
		}
		op := opAndJump
		if n.op == "||" {
			op = opOrJump
		}
		jEnd := fc.emit(op, 0, 0, n.line)
		if err := fc.expr(n.r); err != nil {
			return err
		}
		fc.emit(opToBool, 0, 0, n.line)
		fc.patch(jEnd, fc.here())
		return nil
	}
	if err := fc.expr(n.l); err != nil {
		return err
	}
	if err := fc.expr(n.r); err != nil {
		return err
	}
	var bk binKind
	feedback := true
	switch n.op {
	case ".":
		bk, feedback = bkConcat, false
	case "+":
		bk = bkAdd
	case "-":
		bk = bkSub
	case "*":
		bk = bkMul
	case "/":
		bk = bkDiv
	case "%":
		bk = bkMod
	case "==":
		bk = bkEq
	case "!=":
		bk = bkNe
	case "===":
		bk = bkSeq
	case "!==":
		bk = bkSne
	case "<":
		bk = bkLt
	case ">":
		bk = bkGt
	case "<=":
		bk = bkLe
	case ">=":
		bk = bkGe
	case "<=>":
		bk = bkCmp
	default:
		// The tree-walker evaluates both operands before rejecting.
		fc.emit(opErr, fc.errIdx(fmt.Sprintf("php: line %d: unknown operator %q", n.line, n.op)), 0, n.line)
		return nil
	}
	site := int32(-1)
	if feedback {
		site = fc.tfSite()
	}
	fc.emit(opBinary, int32(bk), site, n.line)
	return nil
}

func (fc *fnc) call(n *callExpr) error {
	if _, ok := fc.prog.funcs[n.name]; ok {
		for _, a := range n.args {
			if err := fc.expr(a); err != nil {
				return err
			}
		}
		fc.emit(opCallUser, fc.c.fnIndex[n.name], int32(len(n.args)), n.line)
		return nil
	}
	switch n.name {
	case "isset":
		if len(n.args) != 1 {
			fc.emit(opErr, fc.errIdx(errArity(n, 1).Error()), 0, n.line)
			return nil
		}
		if err := fc.expr(n.args[0]); err != nil {
			return err
		}
		fc.emit(opIsSet, 0, 0, n.line)
		return nil
	case "unset":
		if len(n.args) != 1 {
			fc.emit(opErr, fc.errIdx(errArity(n, 1).Error()), 0, n.line)
			return nil
		}
		switch t := n.args[0].(type) {
		case *varExpr:
			fc.emit(opUnsetVar, fc.slot(t.name), 0, n.line)
		case *indexExpr:
			if err := fc.expr(t.subject); err != nil {
				return err
			}
			jEnd := fc.emit(opUnsetSubj, 0, 0, n.line)
			if err := fc.expr(t.key); err != nil {
				return err
			}
			fc.emit(opADelete, 0, 0, n.line)
			fc.patch(jEnd, fc.here())
		default:
			fc.emit(opErr, fc.errIdx(fmt.Sprintf("php: line %d: unset expects a variable or element", n.line)), 0, n.line)
		}
		return nil
	case "extract":
		if len(n.args) != 1 {
			fc.emit(opErr, fc.errIdx(errArity(n, 1).Error()), 0, n.line)
			return nil
		}
		if err := fc.expr(n.args[0]); err != nil {
			return err
		}
		fc.emit(opExtract, 0, 0, n.line)
		return nil
	}
	for _, a := range n.args {
		if err := fc.expr(a); err != nil {
			return err
		}
	}
	fc.fn.calls = append(fc.fn.calls, &callSite{node: n})
	fc.emit(opCallBuiltin, int32(len(fc.fn.calls)-1), int32(len(n.args)), n.line)
	return nil
}

func (fc *fnc) arrayLit(n *arrayLit) error {
	fc.emit(opNewArray, 0, 0, n.line)
	for i := range n.vals {
		if err := fc.expr(n.vals[i]); err != nil {
			return err
		}
		if n.keys[i] == nil {
			fc.emit(opArrAppend, 0, 0, n.line)
			continue
		}
		// Literal-construction sites get no inline cache: a keyed array
		// literal writes each key exactly once per evaluation.
		dyn := int32(1)
		if _, isLit := n.keys[i].(*litExpr); isLit {
			dyn = 0
		}
		if err := fc.expr(n.keys[i]); err != nil {
			return err
		}
		fc.emit(opArrSet, 0, dyn, n.line)
	}
	return nil
}

// collectVars walks a body and reports every variable name in
// deterministic first-encounter order, so slot numbering is stable.
func collectVars(list []stmt, add func(string)) {
	var walkE func(e expr)
	walkE = func(e expr) {
		switch n := e.(type) {
		case *varExpr:
			add(n.name)
		case *assignExpr:
			walkE(n.value)
			walkE(n.target)
		case *indexExpr:
			walkE(n.subject)
			if n.key != nil {
				walkE(n.key)
			}
		case *binaryExpr:
			walkE(n.l)
			walkE(n.r)
		case *unaryExpr:
			walkE(n.e)
		case *callExpr:
			for _, a := range n.args {
				walkE(a)
			}
		case *arrayLit:
			for i := range n.vals {
				if n.keys[i] != nil {
					walkE(n.keys[i])
				}
				walkE(n.vals[i])
			}
		case *ternaryExpr:
			walkE(n.cond)
			walkE(n.then)
			walkE(n.els)
		case *incDecExpr:
			walkE(n.target)
		}
	}
	var walkS func(list []stmt)
	walkS = func(list []stmt) {
		for _, s := range list {
			switch n := s.(type) {
			case *echoStmt:
				for _, a := range n.args {
					walkE(a)
				}
			case *exprStmt:
				walkE(n.e)
			case *ifStmt:
				walkE(n.cond)
				walkS(n.then)
				walkS(n.els)
			case *whileStmt:
				walkE(n.cond)
				walkS(n.body)
			case *forStmt:
				if n.init != nil {
					walkE(n.init)
				}
				if n.cond != nil {
					walkE(n.cond)
				}
				walkS(n.body)
				if n.post != nil {
					walkE(n.post)
				}
			case *foreachStmt:
				walkE(n.subject)
				if n.keyVar != "" {
					add(n.keyVar)
				}
				add(n.valVar)
				walkS(n.body)
			case *returnStmt:
				if n.val != nil {
					walkE(n.val)
				}
			}
		}
	}
	walkS(list)
}
