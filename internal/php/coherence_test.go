package php

import (
	"testing"
)

// These are regression tests for hardware hash table coherence: a
// dynamic-key SET buffers the pair dirty in the accelerator without
// updating the software map (§4.2), so every software-side read of the
// map — an IC-specialized static access, count()'s size read, array
// truthiness, the append auto-index watermark — must snoop or flush the
// table first. Each case once diverged between swRT and hwRT.
func TestHardwareCoherence(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		// array_merge inserts string keys with dynamic key names; the
		// static count()/$m["k"] reads must see the buffered pairs.
		{"merge-then-static-read", `<?php
$m = array_merge([1, 2], ["k" => "v"], [3]);
echo count($m), " ", $m["k"], " ", $m[2];
`},
		// A dynamic-key store followed by a static read of the same key.
		{"dynamic-store-static-read", `<?php
$a = [];
$keys = ["alpha", "beta"];
foreach ($keys as $k) { $a[$k] = strtoupper($k); }
echo $a["alpha"], " ", $a["beta"], " ", count($a);
`},
		// A static store after a dynamic store of the same key must not
		// leave a stale hardware copy for a later dynamic read.
		{"static-store-after-dynamic", `<?php
$a = [];
$k = "x";
$a[$k] = "old";
$a["x"] = "new";
$probe = "x";
echo $a[$probe], " ", $a["x"];
`},
		// Truthiness of an array built entirely through dynamic keys.
		{"dynamic-array-truthiness", `<?php
$a = [];
$k = "only";
$a[$k] = 1;
if ($a) { echo "nonempty"; } else { echo "empty"; }
`},
		// The append watermark must advance past an int key inserted
		// with a dynamic key name.
		{"append-after-dynamic-int-key", `<?php
$a = [];
$i = 5;
$a[$i] = "x";
$a[] = "y";
foreach ($a as $k => $v) { echo $k, "=", $v, " "; }
`},
		// extract() is the paper's canonical dynamic-key writer; isset
		// and static reads on the target must see its stores.
		{"extract-then-static-read", `<?php
$vars = ["title" => "hi", "n" => 3];
$sym = [];
extract($vars);
echo $title, " ", $n;
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw, err := RunScript(swRT(), tc.src)
			if err != nil {
				t.Fatalf("sw: %v", err)
			}
			hw, err := RunScript(hwRT(), tc.src)
			if err != nil {
				t.Fatalf("hw: %v", err)
			}
			if string(sw) != string(hw) {
				t.Errorf("sw/hw diverge:\n sw %q\n hw %q", sw, hw)
			}
		})
	}
}
