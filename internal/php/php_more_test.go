package php

import (
	"strings"
	"testing"
)

func TestSetGlobalInjection(t *testing.T) {
	prog := MustParse(`<?php echo "request #$req by $user";`)
	rt := swRT()
	in := New(rt, prog)
	in.SetGlobal("req", int64(7))
	in.SetGlobal("user", "alice")
	out, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "request #7 by alice" {
		t.Errorf("output = %q", out)
	}
	// Presets persist across runs.
	out2, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(out2) != string(out) {
		t.Errorf("second run differs: %q", out2)
	}
}

func TestCloseTagAndReenterPHP(t *testing.T) {
	got := runSrc(t, `<?php echo "a"; ?>HTML<?php echo "b";`)
	if got != "aHTML b"[0:1]+"HTML"+"b" && got != "aHTMLb" {
		t.Errorf("output = %q", got)
	}
}

func TestCommentsSkipped(t *testing.T) {
	got := runSrc(t, `<?php
// line comment
# hash comment
/* block
   comment */
echo "ok"; // trailing
`)
	if got != "ok" {
		t.Errorf("output = %q", got)
	}
}

func TestFloatsAndUnary(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<?php echo 1.25 * 4;`, "5"},
		{`<?php echo -1.5;`, "-1.5"},
		{`<?php $x = 2.0; $x *= 3; echo $x;`, "6"},
		{`<?php $x = 9; $x /= 2; echo $x;`, "4.5"},
		{`<?php $x = 5; echo --$x, $x;`, "44"},
		{`<?php $x = 5; echo ++$x;`, "6"},
	}
	for _, c := range cases {
		if got := runSrc(t, c.src); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestStringIndexing(t *testing.T) {
	got := runSrc(t, `<?php $s = "abc"; echo $s[0], $s[2], $s[9];`)
	if got != "ac" {
		t.Errorf("output = %q", got)
	}
}

func TestMaxMinAbsIntvalStrval(t *testing.T) {
	got := runSrc(t, `<?php
echo max(3, 9, 1), min(3, 9, 1), "|";
echo abs(-4), abs(4), abs(-2.5), "|";
echo intval("12abc"), intval("-3"), intval(true), "|";
echo strval(15) . strval(false);
`)
	if got != "91|442.5|12-31|15" {
		t.Errorf("output = %q", got)
	}
}

func TestTruthiness(t *testing.T) {
	got := runSrc(t, `<?php
function b($v) { return $v ? "1" : "0"; }
echo b(0), b(1), b(""), b("0"), b("x"), b(0.0), b(2.5), b([]), b([1]), b(null);
`)
	if got != "0100101010" {
		t.Errorf("output = %q", got)
	}
}

func TestStrictEqualityOnArrays(t *testing.T) {
	got := runSrc(t, `<?php
$a = [1];
$b = $a;
$c = [1];
echo $a === $b ? "t" : "f";
echo $a === $c ? "t" : "f";
`)
	// Arrays are handles in this model: same handle strict-equal, fresh
	// literal not.
	if got != "tf" {
		t.Errorf("output = %q", got)
	}
}

func TestNumericStringArithmetic(t *testing.T) {
	got := runSrc(t, `<?php echo "5" + "3", "|", "5" . "3", "|", "2" * "4";`)
	if got != "8|53|8" {
		t.Errorf("output = %q", got)
	}
}

func TestArityErrors(t *testing.T) {
	for _, src := range []string{
		`<?php strtoupper();`,
		`<?php strtoupper("a", "b");`,
		`<?php strpos("a");`,
		`<?php count();`,
		`<?php max();`,
	} {
		if _, err := RunScript(swRT(), src); err == nil {
			t.Errorf("%q should fail with an arity error", src)
		} else if !strings.Contains(err.Error(), "argument") {
			t.Errorf("%q error should mention arguments: %v", src, err)
		}
	}
}

func TestDivisionAndModuloByZero(t *testing.T) {
	// PHP8 throws; our model returns 0 rather than crashing the request.
	got := runSrc(t, `<?php echo 5 % 0, "|", 1 / 0, "|", 5.0 / 0;`)
	if got != "0|0|0" {
		t.Errorf("output = %q", got)
	}
}

func TestForeachValueOnlyForm(t *testing.T) {
	got := runSrc(t, `<?php foreach ([3, 1, 2] as $v) { echo $v; }`)
	if got != "312" {
		t.Errorf("output = %q", got)
	}
}

func TestForeachBreakInside(t *testing.T) {
	got := runSrc(t, `<?php
foreach ([1, 2, 3, 4] as $v) {
	if ($v == 3) { break; }
	echo $v;
}
`)
	if got != "12" {
		t.Errorf("output = %q", got)
	}
}

func TestReturnInsideLoopExitsFunction(t *testing.T) {
	got := runSrc(t, `<?php
function firstEven($a) {
	foreach ($a as $v) {
		if ($v % 2 == 0) { return $v; }
	}
	return -1;
}
echo firstEven([3, 7, 8, 9]), firstEven([1, 3]);
`)
	if got != "8-1" {
		t.Errorf("output = %q", got)
	}
}

func TestMustParsePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParse should panic on bad source")
		}
	}()
	MustParse(`<?php if (`)
}

func TestNestedFunctionDeclarationRejected(t *testing.T) {
	_, err := RunScript(swRT(), `<?php
function outer() {
	function inner() { return 1; }
}
outer();
`)
	if err == nil {
		t.Errorf("nested function declarations should be rejected")
	}
}

func TestWhileIterationLimit(t *testing.T) {
	t.Skip("exercises the 10M iteration guard; too slow for the default suite")
}

func TestEchoMultipleWithCommas(t *testing.T) {
	got := runSrc(t, `<?php echo "a", 1, "b", 2.5;`)
	if got != "a1b2.5" {
		t.Errorf("output = %q", got)
	}
}
