package php

import (
	"fmt"
	"strconv"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse compiles PHP source into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{funcs: map[string]*funcDecl{}}
	for !p.at(tEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if fd, ok := s.(*funcDecl); ok {
			if _, dup := prog.funcs[fd.name]; dup {
				return nil, fmt.Errorf("php: line %d: function %s redeclared", fd.line, fd.name)
			}
			prog.funcs[fd.name] = fd
			continue
		}
		prog.stmts = append(prog.stmts, s)
	}
	return prog, nil
}

// MustParse is Parse that panics on error, for fixtures.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) line() int   { return p.cur().line }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, fmt.Errorf("php: line %d: expected %q, found %s", p.line(), text, p.cur())
	}
	return p.next(), nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.at(tIdent, kw)
}

// statement parses one statement (or function declaration).
func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tInlineHTML:
		p.next()
		return &inlineHTMLStmt{html: t.text}, nil
	case p.isKeyword("echo"):
		return p.echoStatement()
	case p.isKeyword("if"):
		return p.ifStatement()
	case p.isKeyword("while"):
		return p.whileStatement()
	case p.isKeyword("for"):
		return p.forStatement()
	case p.isKeyword("foreach"):
		return p.foreachStatement()
	case p.isKeyword("function"):
		return p.functionDecl()
	case p.isKeyword("return"):
		line := p.next().line
		if p.accept(tOp, ";") {
			return &returnStmt{line: line}, nil
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tOp, ";"); err != nil {
			return nil, err
		}
		return &returnStmt{val: e, line: line}, nil
	case p.isKeyword("break"):
		line := p.next().line
		if _, err := p.expect(tOp, ";"); err != nil {
			return nil, err
		}
		return &breakStmt{line: line}, nil
	case p.isKeyword("continue"):
		line := p.next().line
		if _, err := p.expect(tOp, ";"); err != nil {
			return nil, err
		}
		return &continueStmt{line: line}, nil
	default:
		line := p.line()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tOp, ";"); err != nil {
			return nil, err
		}
		return &exprStmt{e: e, line: line}, nil
	}
}

func (p *parser) echoStatement() (stmt, error) {
	line := p.next().line // 'echo'
	var args []expr
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if !p.accept(tOp, ",") {
			break
		}
	}
	if _, err := p.expect(tOp, ";"); err != nil {
		return nil, err
	}
	return &echoStmt{args: args, line: line}, nil
}

func (p *parser) block() ([]stmt, error) {
	if _, err := p.expect(tOp, "{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.at(tOp, "}") {
		if p.at(tEOF, "") {
			return nil, fmt.Errorf("php: unexpected EOF in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.next() // '}'
	return out, nil
}

func (p *parser) ifStatement() (stmt, error) {
	line := p.next().line // 'if'
	if _, err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &ifStmt{cond: cond, then: then, line: line}
	switch {
	case p.isKeyword("elseif"):
		els, err := p.ifStatement()
		if err != nil {
			return nil, err
		}
		node.els = []stmt{els}
	case p.isKeyword("else"):
		p.next()
		if p.isKeyword("if") {
			els, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			node.els = []stmt{els}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			node.els = els
		}
	}
	return node, nil
}

func (p *parser) whileStatement() (stmt, error) {
	line := p.next().line
	if _, err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &whileStmt{cond: cond, body: body, line: line}, nil
}

func (p *parser) forStatement() (stmt, error) {
	line := p.next().line
	if _, err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	node := &forStmt{line: line}
	var err error
	if !p.at(tOp, ";") {
		if node.init, err = p.expression(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tOp, ";"); err != nil {
		return nil, err
	}
	if !p.at(tOp, ";") {
		if node.cond, err = p.expression(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tOp, ";"); err != nil {
		return nil, err
	}
	if !p.at(tOp, ")") {
		if node.post, err = p.expression(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	if node.body, err = p.block(); err != nil {
		return nil, err
	}
	return node, nil
}

func (p *parser) foreachStatement() (stmt, error) {
	line := p.next().line
	if _, err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	subject, err := p.expression()
	if err != nil {
		return nil, err
	}
	if !p.accept(tIdent, "as") {
		return nil, fmt.Errorf("php: line %d: foreach requires 'as'", p.line())
	}
	first, err := p.expect(tVar, "")
	if err != nil {
		return nil, err
	}
	node := &foreachStmt{subject: subject, valVar: first.text, line: line}
	if p.accept(tOp, "=>") {
		second, err := p.expect(tVar, "")
		if err != nil {
			return nil, err
		}
		node.keyVar = first.text
		node.valVar = second.text
	}
	if _, err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node.body = body
	return node, nil
}

func (p *parser) functionDecl() (stmt, error) {
	line := p.next().line
	name, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tOp, "("); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(tOp, ")") {
		v, err := p.expect(tVar, "")
		if err != nil {
			return nil, err
		}
		params = append(params, v.text)
		if !p.accept(tOp, ",") {
			break
		}
	}
	if _, err := p.expect(tOp, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &funcDecl{name: name.text, params: params, body: body, line: line}, nil
}

// --- Expressions, precedence climbing ---

// binaryPrec maps operators to precedence (higher binds tighter).
var binaryPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3, "===": 3, "!==": 3, "<": 3, ">": 3, "<=": 3, ">=": 3, "<=>": 3,
	".": 4, "+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

func (p *parser) expression() (expr, error) {
	return p.assignment()
}

func (p *parser) assignment() (expr, error) {
	line := p.line()
	lhs, err := p.ternary()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", ".=", "+=", "-=", "*=", "/="} {
		if p.at(tOp, op) {
			switch lhs.(type) {
			case *varExpr, *indexExpr:
			default:
				return nil, fmt.Errorf("php: line %d: invalid assignment target", line)
			}
			p.next()
			rhs, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &assignExpr{target: lhs, op: op, value: rhs, line: line}, nil
		}
	}
	return lhs, nil
}

func (p *parser) ternary() (expr, error) {
	cond, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(tOp, "?") {
		return cond, nil
	}
	line := p.line()
	then, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tOp, ":"); err != nil {
		return nil, err
	}
	els, err := p.expression()
	if err != nil {
		return nil, err
	}
	return &ternaryExpr{cond: cond, then: then, els: els, line: line}, nil
}

func (p *parser) binary(minPrec int) (expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tOp {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: t.text, l: lhs, r: rhs, line: t.line}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	if t.kind == tOp && (t.text == "!" || t.text == "-") {
		p.next()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.text, e: e, line: t.line}, nil
	}
	if t.kind == tOp && (t.text == "++" || t.text == "--") {
		p.next()
		e, err := p.postfix()
		if err != nil {
			return nil, err
		}
		return &incDecExpr{target: e, op: t.text, line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tOp, "["):
			line := p.next().line
			if p.accept(tOp, "]") {
				e = &indexExpr{subject: e, key: nil, line: line} // $a[] append form
				continue
			}
			key, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tOp, "]"); err != nil {
				return nil, err
			}
			e = &indexExpr{subject: e, key: key, line: line}
		case p.at(tOp, "++") || p.at(tOp, "--"):
			t := p.next()
			e = &incDecExpr{target: e, op: t.text, line: t.line}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("php: line %d: bad integer %q", t.line, t.text)
		}
		return &litExpr{val: v}, nil
	case tFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("php: line %d: bad float %q", t.line, t.text)
		}
		return &litExpr{val: v}, nil
	case tString:
		p.next()
		return &litExpr{val: t.text}, nil
	case tVar:
		p.next()
		return &varExpr{name: t.text, line: t.line}, nil
	case tIdent:
		switch t.text {
		case "true":
			p.next()
			return &litExpr{val: true}, nil
		case "false":
			p.next()
			return &litExpr{val: false}, nil
		case "null":
			p.next()
			return &litExpr{val: nil}, nil
		case "array":
			p.next()
			if _, err := p.expect(tOp, "("); err != nil {
				return nil, err
			}
			return p.arrayItems(")")
		default:
			// Function call.
			p.next()
			if _, err := p.expect(tOp, "("); err != nil {
				return nil, err
			}
			var args []expr
			for !p.at(tOp, ")") {
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tOp, ",") {
					break
				}
			}
			if _, err := p.expect(tOp, ")"); err != nil {
				return nil, err
			}
			return &callExpr{name: t.text, args: args, line: t.line}, nil
		}
	case tOp:
		switch t.text {
		case "(":
			p.next()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.next()
			return p.arrayItems("]")
		}
	}
	return nil, fmt.Errorf("php: line %d: unexpected token %s", t.line, t)
}

// arrayItems parses the body of [...] or array(...), up to the closer.
func (p *parser) arrayItems(closer string) (expr, error) {
	lit := &arrayLit{line: p.line()}
	for !p.at(tOp, closer) {
		first, err := p.expression()
		if err != nil {
			return nil, err
		}
		if p.accept(tOp, "=>") {
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			lit.keys = append(lit.keys, first)
			lit.vals = append(lit.vals, val)
		} else {
			lit.keys = append(lit.keys, nil)
			lit.vals = append(lit.vals, first)
		}
		if !p.accept(tOp, ",") {
			break
		}
	}
	if _, err := p.expect(tOp, closer); err != nil {
		return nil, err
	}
	return lit, nil
}
