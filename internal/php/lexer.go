// Package php implements an interpreter for a PHP subset, executing on
// top of the vm.Runtime so that every hash map access, allocation,
// string function, and regexp call a script performs flows through the
// simulated (and optionally accelerated) machinery — the same shape as
// HHVM executing the paper's applications.
//
// Supported language: variables, integers/floats/strings/booleans/null,
// arrays (ordered maps, literal `[...]` and `array(...)`), arithmetic,
// comparison and logical operators, string concatenation with `.`,
// `if`/`elseif`/`else`, `while`, `foreach ($a as $k => $v)`, user
// function declarations with positional parameters and `return`, `echo`,
// and a library of built-ins mapped onto the runtime's accelerated
// operations (strtoupper, str_replace, preg_replace, extract, ...).
package php

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tEOF   tokenKind = iota
	tVar             // $name
	tIdent           // identifier or keyword
	tInt
	tFloat
	tString // quoted string literal (decoded)
	tOp     // operator or punctuation
	tInlineHTML
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

func (t token) String() string {
	return fmt.Sprintf("%q@%d", t.text, t.line)
}

// lexer scans PHP source. Text outside <?php ... ?> is inline HTML,
// emitted verbatim (as PHP does).
type lexer struct {
	src    string
	pos    int
	line   int
	inPHP  bool
	tokens []token
}

// lex tokenizes the whole source.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for l.pos < len(l.src) {
		if !l.inPHP {
			if err := l.lexHTML(); err != nil {
				return nil, err
			}
			continue
		}
		if err := l.lexPHP(); err != nil {
			return nil, err
		}
	}
	l.emit(tEOF, "")
	return l.tokens, nil
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: l.pos, line: l.line})
}

func (l *lexer) lexHTML() error {
	start := l.pos
	idx := strings.Index(l.src[l.pos:], "<?php")
	if idx < 0 {
		html := l.src[start:]
		if html != "" {
			l.countLines(html)
			l.emit(tInlineHTML, html)
		}
		l.pos = len(l.src)
		return nil
	}
	html := l.src[start : start+idx]
	if html != "" {
		l.countLines(html)
		l.emit(tInlineHTML, html)
	}
	l.pos = start + idx + len("<?php")
	l.inPHP = true
	return nil
}

func (l *lexer) countLines(s string) {
	l.line += strings.Count(s, "\n")
}

func (l *lexer) lexPHP() error {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//") || strings.HasPrefix(l.src[l.pos:], "#"):
			nl := strings.IndexByte(l.src[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += nl
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return fmt.Errorf("php: line %d: unterminated comment", l.line)
			}
			l.countLines(l.src[l.pos : l.pos+2+end+2])
			l.pos += 2 + end + 2
		default:
			goto body
		}
	}
	return nil
body:
	if l.pos >= len(l.src) {
		return nil
	}
	if strings.HasPrefix(l.src[l.pos:], "?>") {
		l.pos += 2
		// PHP eats one newline directly after ?>.
		if l.pos < len(l.src) && l.src[l.pos] == '\n' {
			l.pos++
			l.line++
		}
		l.inPHP = false
		return nil
	}
	c := l.src[l.pos]
	switch {
	case c == '$':
		return l.lexVar()
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '\'' || c == '"':
		return l.lexString(c)
	case isIdentStart(c):
		return l.lexIdent()
	default:
		return l.lexOp()
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexVar() error {
	start := l.pos
	l.pos++ // '$'
	if l.pos >= len(l.src) || !isIdentStart(l.src[l.pos]) {
		return fmt.Errorf("php: line %d: bad variable name", l.line)
	}
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.emit(tVar, l.src[start+1:l.pos])
	return nil
}

func (l *lexer) lexNumber() error {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !isFloat && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isFloat = true
			l.pos++
			continue
		}
		break
	}
	if isFloat {
		l.emit(tFloat, l.src[start:l.pos])
	} else {
		l.emit(tInt, l.src[start:l.pos])
	}
	return nil
}

func (l *lexer) lexString(quote byte) error {
	if quote == '"' {
		return l.lexInterpolated()
	}
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.emit(tString, sb.String())
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			n := l.src[l.pos+1]
			l.pos += 2
			if quote == '"' {
				switch n {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '"', '\\', '$':
					sb.WriteByte(n)
				default:
					sb.WriteByte('\\')
					sb.WriteByte(n)
				}
			} else {
				switch n {
				case '\'', '\\':
					sb.WriteByte(n)
				default:
					sb.WriteByte('\\')
					sb.WriteByte(n)
				}
			}
			continue
		}
		if c == '\n' {
			l.line++
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("php: line %d: unterminated string", l.line)
}

func (l *lexer) lexIdent() error {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.emit(tIdent, l.src[start:l.pos])
	return nil
}

// multi-character operators, longest first.
var operators = []string{
	"===", "!==", "<=>", "=>", "==", "!=", "<=", ">=", "&&", "||", "++", "--", ".=", "+=", "-=", "*=", "/=",
	"(", ")", "[", "]", "{", "}", ";", ",", "=", ".", "+", "-", "*", "/", "%", "<", ">", "!", "?", ":", "&",
}

func (l *lexer) lexOp() error {
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.emit(tOp, op)
			l.pos += len(op)
			return nil
		}
	}
	return fmt.Errorf("php: line %d: unexpected character %q", l.line, l.src[l.pos])
}

// lexInterpolated scans a double-quoted string with $var interpolation,
// emitting synthetic concatenation tokens: "a$x b" becomes
// ( "a" . $x . " b" ). Emitting tokens (rather than a dedicated AST node)
// keeps the parser unaware of interpolation while preserving precedence.
func (l *lexer) lexInterpolated() error {
	l.pos++ // opening quote
	type part struct {
		isVar bool
		text  string
	}
	var parts []part
	var sb strings.Builder
	flush := func() {
		parts = append(parts, part{text: sb.String()})
		sb.Reset()
	}
	for {
		if l.pos >= len(l.src) {
			return fmt.Errorf("php: line %d: unterminated string", l.line)
		}
		c := l.src[l.pos]
		switch {
		case c == '"':
			l.pos++
			flush()
			goto done
		case c == '\\' && l.pos+1 < len(l.src):
			n := l.src[l.pos+1]
			l.pos += 2
			switch n {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '"', '\\', '$':
				sb.WriteByte(n)
			default:
				sb.WriteByte('\\')
				sb.WriteByte(n)
			}
		case c == '$' && l.pos+1 < len(l.src) && isIdentStart(l.src[l.pos+1]):
			flush()
			l.pos++
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			parts = append(parts, part{isVar: true, text: l.src[start:l.pos]})
		default:
			if c == '\n' {
				l.line++
			}
			sb.WriteByte(c)
			l.pos++
		}
	}
done:
	// Fast path: no interpolation.
	if len(parts) == 1 {
		l.emit(tString, parts[0].text)
		return nil
	}
	l.emit(tOp, "(")
	first := true
	for _, p := range parts {
		if p.text == "" && !p.isVar {
			continue
		}
		if !first {
			l.emit(tOp, ".")
		}
		first = false
		if p.isVar {
			l.emit(tVar, p.text)
		} else {
			l.emit(tString, p.text)
		}
	}
	if first { // string was entirely empty pieces, e.g. "$" edge handled above
		l.emit(tString, "")
	}
	l.emit(tOp, ")")
	return nil
}
