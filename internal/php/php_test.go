package php

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
)

func swRT() *vm.Runtime { return vm.New(vm.Config{TraceCapacity: -1}) }

func hwRT() *vm.Runtime {
	return vm.New(vm.Config{Features: isa.AllAccelerators(), Mitigations: sim.AllMitigations(), TraceCapacity: -1})
}

// runSrc executes src on a software runtime and returns the output.
func runSrc(t *testing.T, src string) string {
	t.Helper()
	out, err := RunScript(swRT(), src)
	if err != nil {
		t.Fatalf("RunScript: %v", err)
	}
	return string(out)
}

func TestInlineHTMLPassthrough(t *testing.T) {
	got := runSrc(t, "<h1>Title</h1>\n<?php echo 'x'; ?>\n<p>tail</p>")
	if got != "<h1>Title</h1>\nx<p>tail</p>" {
		t.Errorf("output = %q", got)
	}
}

func TestEchoAndArithmetic(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<?php echo 1 + 2 * 3;`, "7"},
		{`<?php echo (1 + 2) * 3;`, "9"},
		{`<?php echo 10 / 4;`, "2.5"},
		{`<?php echo 10 / 5;`, "2"},
		{`<?php echo 10 % 3;`, "1"},
		{`<?php echo -5 + 2;`, "-3"},
		{`<?php echo "a" . "b" . 3;`, "ab3"},
		{`<?php echo 1.5 + 1;`, "2.5"},
		{`<?php echo true, false, null;`, "1"},
	}
	for _, c := range cases {
		if got := runSrc(t, c.src); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestVariablesAndAssignment(t *testing.T) {
	got := runSrc(t, `<?php
$x = 3;
$y = $x * 2;
$y += 4;
$s = "v=";
$s .= $y;
echo $s;
`)
	if got != "v=10" {
		t.Errorf("output = %q", got)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `<?php
$n = %s;
if ($n > 10) { echo "big"; }
elseif ($n > 5) { echo "mid"; }
else { echo "small"; }
`
	for n, want := range map[string]string{"20": "big", "7": "mid", "1": "small"} {
		if got := runSrc(t, strings.Replace(src, "%s", n, 1)); got != want {
			t.Errorf("n=%s => %q, want %q", n, got, want)
		}
	}
}

func TestWhileLoopAndIncDec(t *testing.T) {
	got := runSrc(t, `<?php
$i = 0;
$sum = 0;
while ($i < 5) {
	$sum += $i;
	$i++;
}
echo $sum;
`)
	if got != "10" {
		t.Errorf("output = %q", got)
	}
}

func TestBreakContinue(t *testing.T) {
	got := runSrc(t, `<?php
$i = 0;
while (true) {
	$i++;
	if ($i == 3) { continue; }
	if ($i > 5) { break; }
	echo $i;
}
`)
	if got != "1245" {
		t.Errorf("output = %q", got)
	}
}

func TestArraysLiteralIndexForeach(t *testing.T) {
	got := runSrc(t, `<?php
$a = ['x' => 1, 'y' => 2, 5 => "five", "tail"];
echo $a['x'], $a['y'], $a[5], $a[6];
echo "|";
foreach ($a as $k => $v) {
	echo $k, "=", $v, ";";
}
echo "|", count($a);
`)
	want := "12fivetail|x=1;y=2;5=five;6=tail;|4"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestArrayAppendAndUnset(t *testing.T) {
	got := runSrc(t, `<?php
$a = [];
$a[] = "p";
$a[] = "q";
unset($a[0]);
$a[] = "r";
foreach ($a as $k => $v) { echo $k, $v; }
`)
	if got != "1q2r" {
		t.Errorf("output = %q", got)
	}
}

func TestAutoVivification(t *testing.T) {
	got := runSrc(t, `<?php
$a['first']['second'] = 7;
echo $a['first']['second'];
`)
	if got != "7" {
		t.Errorf("output = %q", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	got := runSrc(t, `<?php
function fib($n) {
	if ($n < 2) { return $n; }
	return fib($n - 1) + fib($n - 2);
}
echo fib(10);
`)
	if got != "55" {
		t.Errorf("fib(10) = %q", got)
	}
}

func TestFunctionLocalsAreScoped(t *testing.T) {
	got := runSrc(t, `<?php
$x = "global";
function f() {
	$x = "local";
	return $x;
}
echo f(), "|", $x;
`)
	if got != "local|global" {
		t.Errorf("output = %q", got)
	}
}

func TestStringBuiltins(t *testing.T) {
	got := runSrc(t, `<?php
echo strtoupper("abc"), "|";
echo strtolower("XYZ"), "|";
echo trim("  pad  "), "|";
echo str_replace("o", "0", "foo bar"), "|";
echo strpos("hello world", "world"), "|";
echo substr("abcdef", 1, 3), "|";
echo substr("abcdef", -2), "|";
echo strlen("abcd"), "|";
echo htmlspecialchars("<a href=\"x\">"), "|";
echo nl2br("a
b"), "|";
echo implode(",", ["p", "q", "r"]), "|";
echo str_repeat("ab", 3), "|";
echo sprintf("%s=%d", "n", 42);
`)
	want := `ABC|xyz|pad|f00 bar|6|bcd|ef|4|&lt;a href=&quot;x&quot;&gt;|a<br />
b|p,q,r|ababab|n=42`
	if got != want {
		t.Errorf("output = %q\nwant %q", got, want)
	}
}

func TestExplodeImplodeRoundTrip(t *testing.T) {
	got := runSrc(t, `<?php
$parts = explode("/", "a/b/c");
echo count($parts), "|", implode("-", $parts);
`)
	if got != "3|a-b-c" {
		t.Errorf("output = %q", got)
	}
}

func TestPregBuiltins(t *testing.T) {
	got := runSrc(t, `<?php
echo preg_replace('/<\/?[a-z]+>/', "[tag]", "a <em>b</em> c"), "|";
echo preg_match('/[0-9]+/', "id 42"), preg_match('/z/', "abc"), "|";
echo preg_match_all('/a/', "banana"), "|";
$bits = preg_split('/,\s*/', "x, y,z");
echo implode("|", $bits);
`)
	want := "a [tag]b[tag] c|10|3|x|y|z"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestExtractDynamicKeys(t *testing.T) {
	got := runSrc(t, `<?php
$vars = ['title' => "Hello", 'author' => "gope"];
extract($vars);
echo $title, " by ", $author;
`)
	if got != "Hello by gope" {
		t.Errorf("output = %q", got)
	}
}

func TestIssetAndTernary(t *testing.T) {
	got := runSrc(t, `<?php
$a = ['k' => 1];
echo isset($a['k']) ? "yes" : "no";
echo isset($a['missing']) ? "yes" : "no";
echo isset($undefined) ? "yes" : "no";
`)
	if got != "yesnono" {
		t.Errorf("output = %q", got)
	}
}

func TestComparisonSemantics(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<?php echo 1 == "1" ? "t" : "f";`, "t"},
		{`<?php echo 1 === "1" ? "t" : "f";`, "f"},
		{`<?php echo "abc" == "abc" ? "t" : "f";`, "t"},
		{`<?php echo 2 < 10 ? "t" : "f";`, "t"},
		{`<?php echo "2" < "10" ? "t" : "f";`, "t"}, // numeric strings compare numerically
		{`<?php echo "b" > "a" ? "t" : "f";`, "t"},
		{`<?php echo 1 <=> 2;`, "-1"},
		{`<?php echo !false ? "t" : "f";`, "t"},
		{`<?php echo (1 && 0) ? "t" : "f";`, "f"},
		{`<?php echo (0 || 3) ? "t" : "f";`, "t"},
	}
	for _, c := range cases {
		if got := runSrc(t, c.src); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestArrayHelpers(t *testing.T) {
	got := runSrc(t, `<?php
$a = ['x' => 1, 'y' => 2];
echo implode(",", array_keys($a)), "|";
echo implode(",", array_values($a)), "|";
echo array_key_exists('x', $a) ? "t" : "f";
echo in_array(2, $a) ? "t" : "f";
echo in_array(9, $a) ? "t" : "f";
$m = array_merge(["a"], ["b", 'k' => "c"]);
echo "|", implode(",", $m), "|", $m['k'];
`)
	want := "x,y|1,2|ttf|a,b,c|c"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<?php echo ;`,
		`<?php if (1) { echo 1;`,
		`<?php $x = ;`,
		`<?php foreach ($a) {}`,
		`<?php function f( {}`,
		`<?php 1 = 2;`,
		`<?php echo "unterminated;`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestRuntimeErrors(t *testing.T) {
	bad := []string{
		`<?php nosuchfunction();`,
		`<?php foreach (42 as $v) {}`,
		`<?php $x = 1; $x['k'];`,
		`<?php echo preg_replace('/[/', "x", "y");`,
	}
	for _, src := range bad {
		if _, err := RunScript(swRT(), src); err == nil {
			t.Errorf("RunScript(%q) should fail", src)
		}
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	_, err := RunScript(swRT(), `<?php
function loop($n) { return loop($n + 1); }
echo loop(0);
`)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("unbounded recursion should hit the depth limit: %v", err)
	}
}

// TestAcceleratedEquivalence runs a template-style script on the software
// and accelerated runtimes; output must match modulo sifting whitespace.
func TestAcceleratedEquivalence(t *testing.T) {
	src := `<?php
function render_item($meta) {
	$title = htmlspecialchars(strtoupper(trim($meta['title'])));
	$body = preg_replace('/"/', "&quot;", $meta['body']);
	return "<h2>" . $title . "</h2><p>" . nl2br($body) . "</p>";
}
$posts = [
	['title' => " it's a start ", 'body' => "line one
with a \"quote\" inside"],
	['title' => "second post", 'body' => "plain body text"],
];
foreach ($posts as $p) {
	echo render_item($p);
}
`
	sw, err := RunScript(swRT(), src)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := RunScript(hwRT(), src)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(b []byte) string { return strings.ReplaceAll(string(b), " ", "") }
	if norm(sw) != norm(hw) {
		t.Errorf("accelerated output differs:\n sw %q\n hw %q", sw, hw)
	}
	if !strings.Contains(string(sw), "<h2>IT&#039;S A START</h2>") &&
		!strings.Contains(string(sw), "IT'S A START") {
		t.Logf("output: %s", sw)
	}
}

func TestCostsAreCharged(t *testing.T) {
	rt := swRT()
	_, err := RunScript(rt, `<?php
$a = ['k' => "v"];
echo strtoupper($a['k']);
`)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Meter().TotalCycles() <= 0 {
		t.Errorf("script execution must charge the meter")
	}
	cc := rt.Meter().CategoryCycles()
	if cc[sim.CatString] == 0 || cc[sim.CatHash] == 0 || cc[sim.CatHeap] == 0 {
		t.Errorf("script should exercise string, hash, and heap categories: %v", cc)
	}
}

func TestRequestTeardownFreesArrays(t *testing.T) {
	rt := swRT()
	if _, err := RunScript(rt, `<?php $a = [1, 2, 3]; $b = ['x' => $a];`); err != nil {
		t.Fatal(err)
	}
	if live := rt.CPU().Alloc.LiveCount(); live != 0 {
		t.Errorf("request teardown leaked %d allocations", live)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	src := `<?php
$out = "";
$i = 0;
while ($i < 20) { $out .= $i . ","; $i++; }
echo $out;
`
	a := runSrc(t, src)
	b := runSrc(t, src)
	if a != b {
		t.Errorf("script output not deterministic")
	}
}

func TestForLoop(t *testing.T) {
	got := runSrc(t, `<?php
for ($i = 0; $i < 5; $i++) { echo $i; }
echo "|";
for ($i = 10; $i > 0; $i -= 3) { echo $i, ","; }
echo "|";
$n = 0;
for (;;) { $n++; if ($n >= 3) { break; } }
echo $n;
`)
	if got != "01234|10,7,4,1,|3" {
		t.Errorf("output = %q", got)
	}
}

func TestForLoopNestedWithContinue(t *testing.T) {
	got := runSrc(t, `<?php
for ($i = 0; $i < 3; $i++) {
	for ($j = 0; $j < 3; $j++) {
		if ($j == 1) { continue; }
		echo $i, $j, " ";
	}
}
`)
	if got != "00 02 10 12 20 22 " {
		t.Errorf("output = %q", got)
	}
}

func TestStringInterpolation(t *testing.T) {
	cases := []struct{ src, want string }{
		{`<?php $name = "world"; echo "hello $name!";`, "hello world!"},
		{`<?php $a = 1; $b = 2; echo "$a+$b";`, "1+2"},
		{`<?php $x = "v"; echo "start $x";`, "start v"},
		{`<?php $x = "v"; echo "$x end";`, "v end"},
		{`<?php echo "no vars here";`, "no vars here"},
		{`<?php $x = 5; echo "escaped \$x is $x";`, "escaped $x is 5"},
		{`<?php $x = 2; echo "a" . "$x" . "b";`, "a2b"},
		{`<?php $x = 3; $s = "pre $x post"; echo strlen($s);`, "10"},
		{`<?php echo "just a $ sign";`, "just a $ sign"},
	}
	for _, c := range cases {
		if got := runSrc(t, c.src); got != c.want {
			t.Errorf("%s => %q, want %q", c.src, got, c.want)
		}
	}
}

func TestInterpolationPrecedence(t *testing.T) {
	// The synthetic parenthesized concat must not disturb surrounding
	// operator precedence.
	got := runSrc(t, `<?php $x = "b"; echo "a$x" . "c" == "abc" ? "t" : "f";`)
	if got != "t" {
		t.Errorf("output = %q", got)
	}
}

func TestSingleQuotesDoNotInterpolate(t *testing.T) {
	got := runSrc(t, `<?php $x = 1; echo '$x stays';`)
	if got != "$x stays" {
		t.Errorf("output = %q", got)
	}
}
