package php

import (
	"errors"
	"fmt"

	"repro/internal/hashmap"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Modeled dispatch costs for the bytecode tier. A threaded opcode costs
// half an interpreter uop against the tree-walker's 1–4 per AST node,
// and a compiled prologue costs 4 against the tree-walker's 8 — this is
// the §3 "future core" interpreter-overhead reduction, and it is what
// shifts CatOther cycles (and the Fig. 1 profile gauges) after tier-up.
const (
	bcUopsPerInstr   = 0.5
	bcCallEntryUops  = 4
	bcTypeMissPenalty = 2 // generic-dispatch uops when type feedback misses
)

// bcMachine is one Interp's mutable bytecode execution state: the
// shared value stack, the slot/loop/iterator stacks (windowed per
// activation), and this worker's inline-cache and type-feedback tables.
type bcMachine struct {
	stack []interface{}
	sp    int
	slots []interface{}
	loops []int
	iters []bcIter

	ics []icSite
	tfs []tfSite

	icHits, icMisses   int64
	megamorphic        int64 // sites that overflowed their ways (cumulative marks)
	tfStable, tfMisses int64
	bcCalls            int64
}

// bcIter is a foreach iterator over a snapshot of the array's pairs in
// insertion order (PHP iterates a copy).
type bcIter struct {
	keys []hashmap.Key
	vals []interface{}
	idx  int
}

func newBCMachine(c *Compiled) *bcMachine {
	return &bcMachine{
		ics: make([]icSite, c.numICs),
		tfs: make([]tfSite, c.numTFs),
	}
}

func (m *bcMachine) push(v interface{}) {
	if m.sp == len(m.stack) {
		m.stack = append(m.stack, v)
		m.sp++
		return
	}
	m.stack[m.sp] = v
	m.sp++
}

func (m *bcMachine) pop() interface{} {
	m.sp--
	v := m.stack[m.sp]
	m.stack[m.sp] = nil
	return v
}

// popN drops the top n values (post-call argument cleanup).
func (m *bcMachine) popN(n int) {
	for i := 0; i < n; i++ {
		m.sp--
		m.stack[m.sp] = nil
	}
}

// bcKey converts a value to an array key with the tree-walker's
// evalKey coercions.
func bcKey(v interface{}) (hashmap.Key, error) {
	switch k := v.(type) {
	case int64:
		return hashmap.IntKey(k), nil
	case bool:
		if k {
			return hashmap.IntKey(1), nil
		}
		return hashmap.IntKey(0), nil
	case float64:
		return hashmap.IntKey(int64(k)), nil
	case string:
		return hashmap.StrKey(k), nil
	case nil:
		return hashmap.StrKey(""), nil
	default:
		return hashmap.Key{}, fmt.Errorf("php: illegal array key type %T", v)
	}
}

// bcCall invokes a compiled function: depth check, tracing span, a slot
// window for locals, then the opcode loop. args may alias the caller's
// stack; they are copied into slots before anything else executes.
func (in *Interp) bcCall(fn *compiledFn, args []interface{}) (interface{}, error) {
	if in.depth >= maxCallDepth {
		return nil, fmt.Errorf("php: call depth limit exceeded in %s", fn.name)
	}
	in.depth++
	if in.rt.Tracing() { // skip the name concat on the unsampled path
		in.rt.BeginSpan("php:" + fn.name)
	}
	m := in.bc
	m.bcCalls++
	sbase, lbase, ibase, spBase := len(m.slots), len(m.loops), len(m.iters), m.sp
	for i := 0; i < fn.nSlots; i++ {
		m.slots = append(m.slots, nil)
	}
	for i := 0; i < fn.nLoops; i++ {
		m.loops = append(m.loops, 0)
	}
	for i, p := range fn.params {
		if i < len(args) {
			m.slots[sbase+int(p)] = args[i]
		}
	}
	ret, err := in.bcExec(fn, sbase, lbase, ibase)
	for i := sbase; i < len(m.slots); i++ {
		m.slots[i] = nil
	}
	m.slots = m.slots[:sbase]
	m.loops = m.loops[:lbase]
	m.iters = m.iters[:ibase]
	m.popN(m.sp - spBase)
	if in.rt.Tracing() {
		in.rt.EndSpan()
	}
	in.depth--
	return ret, err
}

// bcRunMain executes the compiled script main as one request, mirroring
// the tree-walking Run: fresh output buffer, preset globals, owned
// arrays freed at teardown.
func (in *Interp) bcRunMain() ([]byte, error) {
	in.rt.BeginRequest()
	in.ob = in.rt.NewOutputBuffer("php_main")
	in.owned = in.owned[:0]
	defer func() {
		for _, a := range in.owned {
			in.rt.FreeArray("php_main", a)
		}
		in.owned = in.owned[:0]
	}()
	m := in.bc
	fn := in.comp.main
	sbase, lbase, ibase, spBase := len(m.slots), len(m.loops), len(m.iters), m.sp
	for i := 0; i < fn.nSlots; i++ {
		m.slots = append(m.slots, nil)
	}
	for i := 0; i < fn.nLoops; i++ {
		m.loops = append(m.loops, 0)
	}
	for k, v := range in.preset {
		if s, ok := fn.slotOf[k]; ok {
			m.slots[sbase+int(s)] = v
		}
	}
	in.rt.BeginSpan("php:exec")
	_, err := in.bcExec(fn, sbase, lbase, ibase)
	in.rt.EndSpan()
	for i := sbase; i < len(m.slots); i++ {
		m.slots[i] = nil
	}
	m.slots = m.slots[:sbase]
	m.loops = m.loops[:lbase]
	m.iters = m.iters[:ibase]
	m.popN(m.sp - spBase)
	if err != nil {
		return nil, err
	}
	return in.ob.Bytes(), nil
}

// bcExec is the opcode loop. Every array/string/regexp operation goes
// through the same vm.Runtime calls as the tree-walker, so accelerator
// and mitigation accounting is identical; only the interpreter-dispatch
// charge differs (one batched CatOther flush per activation).
func (in *Interp) bcExec(fn *compiledFn, sbase, lbase, ibase int) (ret interface{}, err error) {
	m := in.bc
	f := frame{fn: fn.name}
	code := fn.code
	ni := 0
	extra := 0.0
	defer func() {
		in.rt.Meter().AddUops(fn.name, sim.CatOther, bcCallEntryUops+float64(ni)*bcUopsPerInstr+extra)
	}()
	for pc := 0; pc < len(code); pc++ {
		ins := code[pc]
		ni++
		switch ins.op {
		case opConst:
			m.push(fn.consts[ins.a])
		case opLoadVar:
			m.push(m.slots[sbase+int(ins.a)])
		case opStoreVar:
			m.slots[sbase+int(ins.a)] = m.pop()
		case opDup:
			m.push(m.stack[m.sp-1])
		case opPop:
			m.pop()
		case opJump:
			pc = int(ins.a) - 1
		case opJumpIfFalse:
			if !in.truthy(&f, m.pop()) {
				pc = int(ins.a) - 1
			}
		case opAndJump:
			if !in.truthy(&f, m.pop()) {
				m.push(false)
				pc = int(ins.a) - 1
			}
		case opOrJump:
			if in.truthy(&f, m.pop()) {
				m.push(true)
				pc = int(ins.a) - 1
			}
		case opToBool:
			m.push(in.truthy(&f, m.pop()))
		case opNot:
			m.push(!in.truthy(&f, m.pop()))
		case opNeg:
			switch x := m.pop().(type) {
			case int64:
				m.push(-x)
			case float64:
				m.push(-x)
			default:
				m.push(-toFloat(x))
			}
		case opBinary:
			r := m.pop()
			l := m.pop()
			if ins.b >= 0 {
				// Type feedback: a site observing the same operand-type
				// pair as last time runs as one (checked-load-elidable)
				// type check; a changing site pays generic dispatch.
				tag := typeTag(l)<<8 | typeTag(r)
				s := &m.tfs[ins.b]
				if s.seen && s.pair == tag {
					m.tfStable++
					in.rt.Meter().AddTypeCheck(1)
				} else {
					s.pair, s.seen = tag, true
					m.tfMisses++
					extra += bcTypeMissPenalty
				}
			}
			switch binKind(ins.a) {
			case bkConcat:
				m.push(in.concat(l, r, &f))
			case bkAdd:
				m.push(arith("+", l, r))
			case bkSub:
				m.push(arith("-", l, r))
			case bkMul:
				m.push(arith("*", l, r))
			case bkDiv:
				m.push(arith("/", l, r))
			case bkMod:
				m.push(arith("%", l, r))
			case bkEq:
				m.push(looseEq(l, r))
			case bkNe:
				m.push(!looseEq(l, r))
			case bkSeq:
				m.push(strictEq(l, r))
			case bkSne:
				m.push(!strictEq(l, r))
			case bkLt:
				m.push(compare(l, r) < 0)
			case bkGt:
				m.push(compare(l, r) > 0)
			case bkLe:
				m.push(compare(l, r) <= 0)
			case bkGe:
				m.push(compare(l, r) >= 0)
			case bkCmp:
				m.push(int64(compare(l, r)))
			}
		case opEcho:
			in.ob.Write([]byte(in.toString(m.pop(), &f)))
		case opInlineHTML:
			in.ob.WriteString(fn.consts[ins.a].(string))
		case opIndexNil:
			switch v := m.stack[m.sp-1].(type) {
			case *vm.Array, string:
				// fall through to the key code
			case nil:
				pc = int(ins.a) - 1 // the nil stays as the read's result
			default:
				return nil, fmt.Errorf("php: line %d: cannot index %T", ins.line, v)
			}
		case opIndexGet:
			key := m.pop()
			switch subj := m.pop().(type) {
			case *vm.Array:
				k, kerr := bcKey(key)
				if kerr != nil {
					return nil, kerr
				}
				dynamic := ins.b == 1
				if dynamic && ins.a >= 0 && !k.IsInt {
					if m.ics[ins.a].lookupCounted(m, k.Str) {
						dynamic = false // IC hit: monomorphic access
					}
				}
				v, _ := in.rt.AGet(f.fn, subj, k, dynamic)
				m.push(v)
			case string:
				i := toInt(key)
				if i < 0 || i >= int64(len(subj)) {
					m.push("")
				} else {
					m.push(string(subj[i]))
				}
			}
		case opVivCheck:
			switch v := m.pop().(type) {
			case *vm.Array:
				m.push(v)
				pc = int(ins.a) - 1
			case nil:
				m.push(in.newArray(&f)) // auto-vivification
			default:
				return nil, fmt.Errorf("php: line %d: cannot index non-array", ins.line)
			}
		case opStoreIndex:
			key := m.pop()
			arr := m.pop().(*vm.Array)
			val := m.pop()
			k, kerr := bcKey(key)
			if kerr != nil {
				return nil, kerr
			}
			dynamic := ins.b == 1
			if dynamic && ins.a >= 0 && !k.IsInt {
				if m.ics[ins.a].lookupCounted(m, k.Str) {
					dynamic = false
				}
			}
			in.rt.ASet(f.fn, arr, k, val, dynamic)
		case opAppendSet:
			arr := m.pop().(*vm.Array)
			val := m.pop()
			in.rt.ASet(f.fn, arr, hashmap.IntKey(arr.Map().NextIntKey()), val, false)
		case opCombine:
			cur := m.pop()
			val := m.pop()
			switch combineKind(ins.a) {
			case ckConcat:
				m.push(in.concat(cur, val, &f))
			case ckAdd:
				m.push(arith("+", cur, val))
			case ckSub:
				m.push(arith("-", cur, val))
			case ckMul:
				m.push(arith("*", cur, val))
			case ckDiv:
				m.push(arith("/", cur, val))
			}
		case opIncDec:
			delta := int64(ins.a)
			switch x := m.pop().(type) {
			case int64:
				m.push(x + delta)
			case float64:
				m.push(x + float64(delta))
			case nil:
				m.push(delta)
			default:
				m.push(toInt(x) + delta)
			}
		case opNewArray:
			m.push(in.newArray(&f))
		case opArrAppend:
			val := m.pop()
			arr := m.stack[m.sp-1].(*vm.Array)
			in.rt.ASet(f.fn, arr, hashmap.IntKey(arr.Map().NextIntKey()), val, false)
		case opArrSet:
			key := m.pop()
			val := m.pop()
			arr := m.stack[m.sp-1].(*vm.Array)
			k, kerr := bcKey(key)
			if kerr != nil {
				return nil, kerr
			}
			in.rt.ASet(f.fn, arr, k, val, ins.b == 1)
		case opLoopInit:
			m.loops[lbase+int(ins.a)] = 0
		case opLoopTick:
			idx := lbase + int(ins.a)
			iter := m.loops[idx]
			m.loops[idx] = iter + 1
			if iter > 10_000_000 {
				kind := "while"
				if ins.b == 1 {
					kind = "for"
				}
				return nil, fmt.Errorf("php: line %d: %s loop exceeded iteration limit", ins.line, kind)
			}
		case opForeachStart:
			arr, ok := m.pop().(*vm.Array)
			if !ok {
				return nil, fmt.Errorf("php: line %d: foreach over non-array", ins.line)
			}
			var it bcIter
			in.rt.AForeach(f.fn, arr, func(k hashmap.Key, v interface{}) bool {
				it.keys = append(it.keys, k)
				it.vals = append(it.vals, v)
				return true
			})
			m.iters = append(m.iters, it)
		case opForeachNext:
			it := &m.iters[len(m.iters)-1]
			if it.idx >= len(it.keys) {
				m.iters = m.iters[:len(m.iters)-1]
				pc = int(ins.a) - 1
				break
			}
			k, v := it.keys[it.idx], it.vals[it.idx]
			it.idx++
			if keySlot := ins.b >> 16; keySlot > 0 {
				m.slots[sbase+int(keySlot)-1] = keyValue(k)
			}
			m.slots[sbase+int(ins.b&0xffff)] = v
		case opIterPop:
			m.iters = m.iters[:len(m.iters)-1]
		case opCallUser:
			argc := int(ins.b)
			callee := in.comp.fns[ins.a]
			args := m.stack[m.sp-argc : m.sp]
			v, cerr := in.callFn(callee.decl, args)
			if cerr != nil {
				return nil, cerr
			}
			m.popN(argc)
			m.push(v)
		case opCallBuiltin:
			cs := fn.calls[ins.a]
			argc := int(ins.b)
			args := m.stack[m.sp-argc : m.sp]
			bfn, ok := builtins[cs.node.name]
			if !ok {
				return nil, fmt.Errorf("php: line %d: call to undefined function %s()", cs.node.line, cs.node.name)
			}
			if in.rt.Tracing() {
				in.rt.BeginSpan("php:" + cs.node.name)
			}
			v, cerr := bfn(in, &f, cs.node, args)
			if in.rt.Tracing() {
				in.rt.EndSpan()
			}
			if cerr != nil {
				return nil, cerr
			}
			m.popN(argc)
			m.push(v)
		case opIsSet:
			m.push(m.pop() != nil)
		case opUnsetVar:
			m.slots[sbase+int(ins.a)] = nil
			m.push(nil)
		case opUnsetSubj:
			v := m.pop()
			if arr, ok := v.(*vm.Array); ok {
				m.push(arr)
			} else {
				m.push(nil)
				pc = int(ins.a) - 1
			}
		case opADelete:
			key := m.pop()
			arr := m.pop().(*vm.Array)
			k, kerr := bcKey(key)
			if kerr != nil {
				return nil, kerr
			}
			in.rt.ADelete(f.fn, arr, k)
			m.push(nil)
		case opExtract:
			v := m.pop()
			arr, ok := v.(*vm.Array)
			if !ok {
				m.push(int64(0))
				break
			}
			count := int64(0)
			in.rt.AForeach("extract", arr, func(k hashmap.Key, v interface{}) bool {
				if !k.IsInt {
					if s, ok := fn.slotOf[k.Str]; ok {
						m.slots[sbase+int(s)] = v
					}
					count++
				}
				return true
			})
			m.push(count)
		case opReturn:
			return m.pop(), nil
		case opErr:
			return nil, errors.New(fn.errs[ins.a])
		}
	}
	return nil, nil
}

// lookupCounted is lookup plus hit/miss/megamorphic accounting.
func (s *icSite) lookupCounted(m *bcMachine, key string) bool {
	wasMega := s.mega
	if s.lookup(key) {
		m.icHits++
		return true
	}
	m.icMisses++
	if s.mega && !wasMega {
		m.megamorphic++
	}
	return false
}
