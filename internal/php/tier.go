package php

import (
	"fmt"
	"sort"
)

// TierMode selects how a script executes: always tree-walking, always
// bytecode, or profile-guided promotion of hot functions mid-run.
type TierMode uint8

const (
	// TierInterp runs everything through the tree-walker (the seed
	// behavior).
	TierInterp TierMode = iota
	// TierAuto starts in the tree-walker and promotes functions whose
	// invocation counts stay hot across profile windows (with hysteresis
	// against flapping), the paper's §3 profile-guided baseline.
	TierAuto
	// TierBytecode runs everything through the bytecode tier from the
	// first request.
	TierBytecode
)

func (m TierMode) String() string {
	switch m {
	case TierAuto:
		return "auto"
	case TierBytecode:
		return "bytecode"
	default:
		return "interp"
	}
}

// ParseTierMode parses the -tier flag values.
func ParseTierMode(s string) (TierMode, error) {
	switch s {
	case "interp":
		return TierInterp, nil
	case "auto":
		return TierAuto, nil
	case "bytecode":
		return TierBytecode, nil
	}
	return TierInterp, fmt.Errorf("php: unknown tier mode %q (want interp, auto, or bytecode)", s)
}

// TierPolicy is the promotion policy for TierAuto. Windows are counted
// in requests (Run calls), not wall time, so promotion decisions are
// deterministic for a given request sequence — the property the
// benchmark regression gate and the CI determinism guard rely on.
type TierPolicy struct {
	// WindowRequests is the profile-window length in requests.
	WindowRequests int
	// HotCalls is the per-window invocation count at or above which a
	// window counts as hot for a function.
	HotCalls int
	// HotWindows is how many consecutive hot windows promote a function.
	HotWindows int
	// ColdCalls is the per-window count at or below which a promoted
	// function's window counts as cold (the hysteresis band between
	// ColdCalls and HotCalls prevents flapping).
	ColdCalls int
	// ColdWindows is how many consecutive cold windows demote.
	ColdWindows int
}

// DefaultTierPolicy returns the serving default: promote after two
// consecutive 16-request windows with ≥32 calls, demote only after four
// consecutive near-idle windows.
func DefaultTierPolicy() TierPolicy {
	return TierPolicy{WindowRequests: 16, HotCalls: 32, HotWindows: 2, ColdCalls: 4, ColdWindows: 4}
}

// tierFn is the per-function tier state.
type tierFn struct {
	name        string
	calls       int64
	windowCalls int64
	hotStreak   int
	coldStreak  int
	promoted    bool
	promotions  int64
	demotions   int64
}

// tierState is one Interp's (one worker's) tier controller.
type tierState struct {
	mode     TierMode
	policy   TierPolicy
	requests int64
	inWindow int
	fns      map[string]*tierFn
	names    []string // sorted; deterministic window sweeps

	promotions, demotions int64
	bcCalls, interpCalls  int64
}

// EnableTier switches the interpreter to the given tier mode. comp may
// be a pre-compiled program shared across workers (it is immutable);
// pass nil to compile this interpreter's program here. Inline-cache and
// type-feedback state is always private to this Interp.
func (in *Interp) EnableTier(comp *Compiled, mode TierMode, policy TierPolicy) error {
	if comp == nil {
		var err error
		comp, err = Compile(in.prog)
		if err != nil {
			return err
		}
	}
	in.comp = comp
	in.bc = newBCMachine(comp)
	if policy.WindowRequests <= 0 {
		policy = DefaultTierPolicy()
	}
	t := &tierState{mode: mode, policy: policy, fns: map[string]*tierFn{}}
	t.names = append(t.names, "php_main")
	for name := range in.prog.funcs {
		t.names = append(t.names, name)
	}
	sort.Strings(t.names)
	for _, name := range t.names {
		t.fns[name] = &tierFn{name: name, promoted: mode == TierBytecode}
	}
	in.tier = t
	return nil
}

// Compiled returns the compiled program installed by EnableTier (nil
// when the tier is disabled), for sharing across workers.
func (in *Interp) Compiled() *Compiled { return in.comp }

// beginRequest advances the request counter and, in auto mode, rolls
// the profile window when it fills.
func (t *tierState) beginRequest() {
	t.requests++
	t.inWindow++
	if t.mode == TierAuto && t.inWindow >= t.policy.WindowRequests {
		t.inWindow = 0
		t.rollWindow()
	}
}

// rollWindow applies the promotion policy to every function's window
// counters, in sorted-name order for determinism.
func (t *tierState) rollWindow() {
	for _, name := range t.names {
		fn := t.fns[name]
		wc := fn.windowCalls
		fn.windowCalls = 0
		if !fn.promoted {
			if wc >= int64(t.policy.HotCalls) {
				fn.hotStreak++
				if fn.hotStreak >= t.policy.HotWindows {
					fn.promoted = true
					fn.promotions++
					t.promotions++
					fn.hotStreak, fn.coldStreak = 0, 0
				}
			} else {
				fn.hotStreak = 0
			}
			continue
		}
		if wc <= int64(t.policy.ColdCalls) {
			fn.coldStreak++
			if fn.coldStreak >= t.policy.ColdWindows {
				fn.promoted = false
				fn.demotions++
				t.demotions++
				fn.hotStreak, fn.coldStreak = 0, 0
			}
		} else {
			fn.coldStreak = 0
		}
	}
}

// count records one invocation of name on the given tier.
func (t *tierState) count(name string, bc bool) {
	if fn := t.fns[name]; fn != nil {
		fn.calls++
		fn.windowCalls++
	}
	if bc {
		t.bcCalls++
	} else {
		t.interpCalls++
	}
}

// useBytecode reports whether the named function currently executes on
// the bytecode tier.
func (in *Interp) useBytecode(name string) bool {
	t := in.tier
	if t == nil || in.comp == nil {
		return false
	}
	switch t.mode {
	case TierBytecode:
		return true
	case TierInterp:
		return false
	}
	fn := t.fns[name]
	return fn != nil && fn.promoted
}

// callFn dispatches a user-function call to whichever tier the function
// currently runs on. Both tiers route here, so interp code calls
// promoted functions on bytecode and vice versa.
func (in *Interp) callFn(fd *funcDecl, args []interface{}) (interface{}, error) {
	bc := in.useBytecode(fd.name)
	if t := in.tier; t != nil {
		t.count(fd.name, bc)
	}
	if bc {
		return in.bcCall(in.comp.fns[in.comp.fnIndex[fd.name]], args)
	}
	return in.callUser(fd, args)
}

// TierFnStat is one function's row in a tier snapshot.
type TierFnStat struct {
	Name       string
	Tier       string // "bytecode", "interp", or "mixed" after merging
	Calls      int64
	Promotions int64
	Demotions  int64
}

// TierSnapshot is a point-in-time view of one interpreter's (or, after
// Merge, a worker pool's) tier and inline-cache state — the data behind
// /tierz and the phpserve_tier_* metrics.
type TierSnapshot struct {
	Enabled           bool
	Mode              string
	Requests          int64
	Promotions        int64
	Demotions         int64
	BytecodeCalls     int64
	InterpCalls       int64
	ICHits            int64
	ICMisses          int64
	ICSites           int
	MegamorphicSites  int64
	TypeStableHits    int64
	TypeMisses        int64
	PromotedFunctions int
	Fns               []TierFnStat
}

// TierSnapshot captures the current tier state. Safe only from the
// goroutine running the interpreter (or while its worker is parked).
func (in *Interp) TierSnapshot() TierSnapshot {
	t := in.tier
	if t == nil {
		return TierSnapshot{}
	}
	s := TierSnapshot{
		Enabled:       true,
		Mode:          t.mode.String(),
		Requests:      t.requests,
		Promotions:    t.promotions,
		Demotions:     t.demotions,
		BytecodeCalls: t.bcCalls,
		InterpCalls:   t.interpCalls,
	}
	if m := in.bc; m != nil {
		s.ICHits = m.icHits
		s.ICMisses = m.icMisses
		s.ICSites = len(m.ics)
		s.MegamorphicSites = m.megamorphic
		s.TypeStableHits = m.tfStable
		s.TypeMisses = m.tfMisses
	}
	for _, name := range t.names {
		fn := t.fns[name]
		tier := "interp"
		if in.useBytecode(name) {
			tier = "bytecode"
		}
		if tier == "bytecode" {
			s.PromotedFunctions++
		}
		s.Fns = append(s.Fns, TierFnStat{
			Name:       name,
			Tier:       tier,
			Calls:      fn.calls,
			Promotions: fn.promotions,
			Demotions:  fn.demotions,
		})
	}
	return s
}

// Merge folds another snapshot (another worker) into s for a
// fleet-aggregate view.
func (s *TierSnapshot) Merge(o TierSnapshot) {
	if !o.Enabled {
		return
	}
	if !s.Enabled {
		*s = o
		return
	}
	if s.Mode != o.Mode {
		s.Mode = "mixed"
	}
	s.Requests += o.Requests
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
	s.BytecodeCalls += o.BytecodeCalls
	s.InterpCalls += o.InterpCalls
	s.ICHits += o.ICHits
	s.ICMisses += o.ICMisses
	if o.ICSites > s.ICSites {
		s.ICSites = o.ICSites // sites are per-program, not additive
	}
	s.MegamorphicSites += o.MegamorphicSites
	s.TypeStableHits += o.TypeStableHits
	s.TypeMisses += o.TypeMisses
	byName := map[string]int{}
	for i, fn := range s.Fns {
		byName[fn.Name] = i
	}
	for _, fn := range o.Fns {
		i, ok := byName[fn.Name]
		if !ok {
			s.Fns = append(s.Fns, fn)
			continue
		}
		dst := &s.Fns[i]
		dst.Calls += fn.Calls
		dst.Promotions += fn.Promotions
		dst.Demotions += fn.Demotions
		if dst.Tier != fn.Tier {
			dst.Tier = "mixed"
		}
	}
	sort.Slice(s.Fns, func(i, j int) bool { return s.Fns[i].Name < s.Fns[j].Name })
	s.PromotedFunctions = 0
	for _, fn := range s.Fns {
		if fn.Tier == "bytecode" {
			s.PromotedFunctions++
		}
	}
}

// PromotedSet returns the sorted names currently on the bytecode tier —
// what the CI determinism guard compares across same-seed runs.
func (s TierSnapshot) PromotedSet() []string {
	var out []string
	for _, fn := range s.Fns {
		if fn.Tier == "bytecode" {
			out = append(out, fn.Name)
		}
	}
	return out
}
