package php

// AST node types. Statements and expressions are separate interfaces so
// the interpreter can switch exhaustively over each.

type stmt interface{ stmtNode() }

type expr interface{ exprNode() }

// --- Statements ---

// echoStmt prints its arguments to the output buffer.
type echoStmt struct {
	args []expr
	line int
}

// inlineHTMLStmt emits literal HTML outside <?php ?>.
type inlineHTMLStmt struct {
	html string
}

// exprStmt evaluates an expression for its side effects.
type exprStmt struct {
	e    expr
	line int
}

// ifStmt covers if / elseif / else.
type ifStmt struct {
	cond expr
	then []stmt
	els  []stmt // nil, or the else/elseif chain
	line int
}

// whileStmt loops while cond is truthy.
type whileStmt struct {
	cond expr
	body []stmt
	line int
}

// forStmt is the classic for(init; cond; post) loop.
type forStmt struct {
	init, cond, post expr // each may be nil
	body             []stmt
	line             int
}

// foreachStmt iterates an array in insertion order.
type foreachStmt struct {
	subject expr
	keyVar  string // "" when no `$k =>` form
	valVar  string
	body    []stmt
	line    int
}

// funcDecl declares a user function.
type funcDecl struct {
	name   string
	params []string
	body   []stmt
	line   int
}

// returnStmt exits the enclosing function.
type returnStmt struct {
	val  expr // nil for bare return
	line int
}

// breakStmt exits the innermost loop.
type breakStmt struct{ line int }

// continueStmt skips to the next loop iteration.
type continueStmt struct{ line int }

func (*echoStmt) stmtNode()       {}
func (*inlineHTMLStmt) stmtNode() {}
func (*exprStmt) stmtNode()       {}
func (*ifStmt) stmtNode()         {}
func (*whileStmt) stmtNode()      {}
func (*forStmt) stmtNode()        {}
func (*foreachStmt) stmtNode()    {}
func (*funcDecl) stmtNode()       {}
func (*returnStmt) stmtNode()     {}
func (*breakStmt) stmtNode()      {}
func (*continueStmt) stmtNode()   {}

// --- Expressions ---

// litExpr is a literal constant (nil, bool, int64, float64, or string).
type litExpr struct {
	val interface{}
}

// varExpr reads a variable.
type varExpr struct {
	name string
	line int
}

// assignExpr writes a variable or array element: target = value. op is
// "=" or a compound form (".=", "+=", ...).
type assignExpr struct {
	target expr // varExpr or indexExpr
	op     string
	value  expr
	line   int
}

// indexExpr reads an array element: subject[key]. A nil key is the
// append form `$a[] = v` (valid only as an assignment target).
type indexExpr struct {
	subject expr
	key     expr
	line    int
}

// binaryExpr is a binary operation.
type binaryExpr struct {
	op   string
	l, r expr
	line int
}

// unaryExpr is !x or -x.
type unaryExpr struct {
	op   string
	e    expr
	line int
}

// callExpr invokes a builtin or user function.
type callExpr struct {
	name string
	args []expr
	line int
}

// arrayLit is `[...]` or `array(...)`, items optionally keyed.
type arrayLit struct {
	keys []expr // nil entries mean auto-index
	vals []expr
	line int
}

// ternaryExpr is cond ? a : b.
type ternaryExpr struct {
	cond, then, els expr
	line            int
}

// incDecExpr is $x++ / $x-- / ++$x / --$x (value semantics simplified to
// post-evaluation of the new value).
type incDecExpr struct {
	target expr
	op     string // "++" or "--"
	line   int
}

func (*litExpr) exprNode()     {}
func (*varExpr) exprNode()     {}
func (*assignExpr) exprNode()  {}
func (*indexExpr) exprNode()   {}
func (*binaryExpr) exprNode()  {}
func (*unaryExpr) exprNode()   {}
func (*callExpr) exprNode()    {}
func (*arrayLit) exprNode()    {}
func (*ternaryExpr) exprNode() {}
func (*incDecExpr) exprNode()  {}

// Program is a parsed PHP script.
type Program struct {
	stmts []stmt
	funcs map[string]*funcDecl
}
