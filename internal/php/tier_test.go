package php

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/vm"
)

// runTier parses src and runs it on the given runtime at the given
// tier, with optional preset globals.
func runTier(t *testing.T, rt *vm.Runtime, src string, mode TierMode, globals map[string]interface{}) (string, error) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	in := New(rt, prog)
	if mode != TierInterp {
		if err := in.EnableTier(nil, mode, DefaultTierPolicy()); err != nil {
			t.Fatalf("EnableTier: %v", err)
		}
	}
	for k, v := range globals {
		in.SetGlobal(k, v)
	}
	out, err := in.Run()
	return string(out), err
}

// tierCases exercises every statement and expression form the
// interpreter supports, plus the edge cases whose evaluation order the
// compiler must mirror (auto-vivification, nil-subject reads, loose
// equality, foreach over snapshots, break/continue, extract).
var tierCases = []struct {
	name string
	src  string
}{
	{"echo-and-html", "<p>head</p>\n<?php echo 'a', 1, 2.5, true, null; ?>\n<p>tail</p>"},
	{"arith-types", `<?php echo 1 + 2, " ", 7 % 3, " ", 7 / 2, " ", 6 / 2, " ", 2 * 3.5, " ", 1 - 9; ?>`},
	{"compare-ops", `<?php echo (3 < 5) ? "lt" : "ge", " ", 3 <=> 5, " ", "10" == "1e1" ? "eq" : "ne", " ", "abc" === "abc" ? "s" : "d"; ?>`},
	{"logic-shortcircuit", `<?php $x = 0; $r = ($x != 0) && ($x / $x > 0); echo $r ? "t" : "f"; $y = 1 || $x; echo $y ? "t" : "f"; ?>`},
	{"strings", `<?php $s = "  Mixed Case  "; echo strtoupper(trim($s)), "|", strlen($s), "|", substr($s, 2, 5), "|", str_replace("Case", "X", $s); ?>`},
	{"concat-compound", `<?php $s = "a"; $s .= "b"; $s .= 1; $n = 10; $n += 5; $n -= 3; $n *= 2; $n /= 4; echo $s, " ", $n; ?>`},
	{"arrays-literal", `<?php $a = ["x" => 1, 5 => "five", "y", 2 => "two", "z"]; foreach ($a as $k => $v) { echo $k, "=", $v, ";"; } ?>`},
	{"array-autoviv", `<?php $m["a"]["b"] = 1; $m["a"]["c"] = 2; echo $m["a"]["b"] + $m["a"]["c"]; $q[] = "first"; $q[] = "second"; echo " ", $q[0], " ", $q[1]; ?>`},
	{"array-dynamic-keys", `<?php $post = ["title" => "T", "author" => "A", "id" => 7]; $out = ""; foreach (["author", "id", "title"] as $fld) { $out .= $post[$fld] . ";"; } echo $out; ?>`},
	{"nil-subject-read", `<?php echo $nothing["k"] === null ? "null" : "set"; echo "|", $nothing === null ? "still-null" : "vivified"; ?>`},
	{"string-index", `<?php $s = "hello"; echo $s[0], $s[4], $s[99], $s[-1] === "" ? "oob" : "?"; ?>`},
	{"while-break-continue", `<?php $i = 0; while (true) { $i++; if ($i % 2 == 0) { continue; } if ($i > 7) { break; } echo $i, ","; } echo "done", $i; ?>`},
	{"for-nested", `<?php for ($i = 0; $i < 3; $i++) { for ($j = 0; $j < 3; $j++) { if ($j == 2) { continue; } echo $i * 3 + $j, " "; } } ?>`},
	{"foreach-break-nested", `<?php foreach ([1, 2, 3] as $a) { foreach (["x", "y"] as $b) { if ($b == "y" && $a == 2) { break; } echo $a, $b, " "; } } ?>`},
	{"functions-recursion", `<?php function fib($n) { if ($n < 2) { return $n; } return fib($n - 1) + fib($n - 2); } echo fib(10); ?>`},
	{"functions-defaults", `<?php function greet($who, $extra) { return "hi " . $who . ($extra === null ? "" : "!"); } echo greet("ann"), "|", greet("bob", 1); ?>`},
	{"isset-unset", `<?php $a = ["k" => 1]; echo isset($a["k"]) ? "y" : "n"; unset($a["k"]); echo isset($a["k"]) ? "y" : "n"; $v = 3; echo isset($v) ? "y" : "n"; unset($v); echo isset($v) ? "y" : "n"; ?>`},
	{"extract", `<?php function render($post) { extract($post); return $title . "/" . $author; } echo render(["title" => "T1", "author" => "A1"]), " ", render(["title" => "T2", "author" => "A2", 0 => "skipped"]); ?>`},
	{"incdec", `<?php $i = 5; echo $i++, " ", $i, " ", $i--, " ", --$i, " "; $a = ["n" => 1]; $a["n"]++; echo $a["n"]; ?>`},
	{"ternary-nested", `<?php $n = 7; echo $n > 10 ? "big" : ($n > 5 ? "mid" : "small"); ?>`},
	{"builtins-array", `<?php $a = ["b" => 2, "a" => 1, "c" => 3]; echo count($a), " ", implode(",", array_keys($a)), " ", implode(",", array_values($a)), " ", in_array(2, $a) ? "y" : "n", " ", array_key_exists("c", $a) ? "y" : "n"; ?>`},
	{"builtins-merge-explode", `<?php $m = array_merge([1, 2], ["k" => "v"], [3]); echo count($m), " ", $m[2], " ", $m["k"], " "; $parts = explode("-", "a-b-c"); echo $parts[1], " ", implode("+", $parts); ?>`},
	{"regex", `<?php $t = "the \"quick\" fox\njumps <b>high</b>"; $t = preg_replace('/"/', "&quot;", $t); $t = preg_replace('/</', "&lt;", $t); echo $t, "|", preg_match('/fox/', $t), preg_match_all('/h/', $t); ?>`},
	{"sprintf-misc", `<?php echo sprintf("%s has %d items (%f)", "cart", 3, 2.5), " ", intval("42x"), " ", strval(9), " ", abs(-7), " ", max(1, 9, 4), " ", min(2, 8); ?>`},
	{"numeric-strings", `<?php echo "10" == "1e1" ? "eq" : "ne", " ", "10" <= "1e1" ? "le" : "gt", " ", "abc" == "abd" ? "eq" : "ne"; ?>`},
	{"global-preset", `<?php echo "req=", $req, " next=", $req + 1; ?>`},
	{"mixed-key-types", `<?php $a = []; $a[true] = "t"; $a[2.9] = "f"; $a[null] = "n"; $a["s"] = "s"; foreach ($a as $k => $v) { echo $k === "" ? "(empty)" : $k, ":", $v, " "; } ?>`},
}

// TestTierOutputEquivalence requires byte-identical output from the
// tree-walker and the bytecode tier within each runtime, on software and
// accelerated runtimes — and, across runtimes, identical output modulo
// the regex accelerator's by-design alignment padding (§4.5), the same
// whitespace-sifting convention TestAcceleratedEquivalence uses.
func TestTierOutputEquivalence(t *testing.T) {
	norm := func(s string) string { return strings.ReplaceAll(s, " ", "") }
	for _, tc := range tierCases {
		t.Run(tc.name, func(t *testing.T) {
			globals := map[string]interface{}{"req": int64(3)}
			ref, refErr := runTier(t, swRT(), tc.src, TierInterp, globals)
			if refErr != nil {
				t.Fatalf("interp/sw: %v", refErr)
			}
			bcSW, err := runTier(t, swRT(), tc.src, TierBytecode, globals)
			if err != nil {
				t.Fatalf("bytecode/sw: %v", err)
			}
			if bcSW != ref {
				t.Errorf("bytecode/sw diverges:\n ref: %q\n got: %q", ref, bcSW)
			}
			hwRef, err := runTier(t, hwRT(), tc.src, TierInterp, globals)
			if err != nil {
				t.Fatalf("interp/hw: %v", err)
			}
			if norm(hwRef) != norm(ref) {
				t.Errorf("interp/hw diverges beyond regex padding:\n ref: %q\n got: %q", ref, hwRef)
			}
			bcHW, err := runTier(t, hwRT(), tc.src, TierBytecode, globals)
			if err != nil {
				t.Fatalf("bytecode/hw: %v", err)
			}
			if bcHW != hwRef {
				t.Errorf("bytecode/hw diverges from interp/hw:\n ref: %q\n got: %q", hwRef, bcHW)
			}
		})
	}
}

// TestTierErrorEquivalence requires the bytecode tier to reproduce the
// tree-walker's runtime errors, message for message.
func TestTierErrorEquivalence(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"index-non-array", `<?php $x = 5; echo $x["k"]; ?>`},
		{"store-non-array", `<?php $x = "str"; $x["k"] = 1; ?>`},
		{"foreach-non-array", `<?php foreach (42 as $v) { echo $v; } ?>`},
		{"undefined-function", `<?php no_such_fn(1); ?>`},
		{"append-read", `<?php $a = [1]; echo $a[]; ?>`},
		{"illegal-key", `<?php $a = [1]; $b = [2]; echo $a[$b]; ?>`},
		{"break-at-top", `<?php break; ?>`},
		{"unset-non-lvalue", `<?php unset(5); ?>`},
		{"arity", `<?php echo strlen(); ?>`},
		{"depth-limit", `<?php function dive($n) { return dive($n + 1); } echo dive(0); ?>`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, refErr := runTier(t, swRT(), tc.src, TierInterp, nil)
			if refErr == nil {
				t.Fatalf("interp: expected an error")
			}
			_, bcErr := runTier(t, swRT(), tc.src, TierBytecode, nil)
			if bcErr == nil {
				t.Fatalf("bytecode: expected an error, interp said %q", refErr)
			}
			if refErr.Error() != bcErr.Error() {
				t.Errorf("error mismatch:\n interp:   %q\n bytecode: %q", refErr, bcErr)
			}
		})
	}
}

// TestBreakInsideFunctionReturnsNull mirrors the tree-walker's quiet
// handling of break/continue escaping a function body.
func TestBreakInsideFunctionReturnsNull(t *testing.T) {
	src := `<?php function odd() { break; return 1; } echo odd() === null ? "null" : "other"; ?>`
	ref, err := runTier(t, swRT(), src, TierInterp, nil)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	got, err := runTier(t, swRT(), src, TierBytecode, nil)
	if err != nil {
		t.Fatalf("bytecode: %v", err)
	}
	if got != ref || ref != "null" {
		t.Fatalf("ref %q, bytecode %q", ref, got)
	}
}

// TestInlineCachesSpecialize drives a dynamic-key access site hot and
// checks the per-worker polymorphic inline caches converge: after the
// first pass over the shapes, subsequent passes hit.
func TestInlineCachesSpecialize(t *testing.T) {
	src := `<?php
$post = ["title" => "T", "author" => "A", "href" => "/p", "body" => "B"];
for ($i = 0; $i < 50; $i++) {
	foreach (["title", "author", "href", "body"] as $fld) {
		$x = $post[$fld];
	}
}
echo "ok";
?>`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(hwRT(), prog)
	if err := in.EnableTier(nil, TierBytecode, DefaultTierPolicy()); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	snap := in.TierSnapshot()
	if snap.ICHits == 0 {
		t.Fatal("expected inline-cache hits on a stable 4-shape site")
	}
	if snap.ICMisses > 8 {
		t.Errorf("stable site should miss only while warming: %d misses", snap.ICMisses)
	}
	if snap.MegamorphicSites != 0 {
		t.Errorf("no site should go megamorphic: %d", snap.MegamorphicSites)
	}
	if snap.ICHits < 150 {
		t.Errorf("expected ≥150 IC hits over 200 accesses, got %d", snap.ICHits)
	}
}

// TestMegamorphicSiteFallsBack drives one site past its ways.
func TestMegamorphicSiteFallsBack(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`<?php $m = [`)
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&sb, `"k%d" => %d,`, i, i)
	}
	sb.WriteString(`]; foreach (array_keys($m) as $k) { echo $m[$k]; } echo "|done";`)
	prog, err := Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	in := New(hwRT(), prog)
	if err := in.EnableTier(nil, TierBytecode, DefaultTierPolicy()); err != nil {
		t.Fatal(err)
	}
	out, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "01234567|done" {
		t.Fatalf("output %q", out)
	}
	if snap := in.TierSnapshot(); snap.MegamorphicSites == 0 {
		t.Error("an 8-key dynamic site should overflow its 4 ways")
	}
}

// TestTierAutoPromotesHotFunctions runs enough identical requests for
// the auto policy to promote the script's hot functions, and verifies
// promotion changes the executing tier without changing output.
func TestTierAutoPromotesHotFunctions(t *testing.T) {
	src := `<?php
function hot($n) { return $n * 2 + 1; }
$sum = 0;
for ($i = 0; $i < 40; $i++) { $sum += hot($i); }
echo $sum;
?>`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := New(swRT(), prog)
	policy := TierPolicy{WindowRequests: 4, HotCalls: 32, HotWindows: 2, ColdCalls: 1, ColdWindows: 4}
	if err := in.EnableTier(nil, TierAuto, policy); err != nil {
		t.Fatal(err)
	}
	var first, last string
	for i := 0; i < 20; i++ {
		out, err := in.Run()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = string(out)
		}
		last = string(out)
	}
	if first != last {
		t.Fatalf("output changed across tier-up: %q vs %q", first, last)
	}
	snap := in.TierSnapshot()
	if snap.Promotions == 0 {
		t.Fatalf("expected promotions after 20 hot requests: %+v", snap)
	}
	promoted := snap.PromotedSet()
	want := map[string]bool{"hot": true, "php_main": true}
	for _, name := range promoted {
		if !want[name] {
			t.Errorf("unexpected promotion: %s", name)
		}
	}
	if len(promoted) == 0 {
		t.Fatal("promoted set empty")
	}
	if snap.BytecodeCalls == 0 || snap.InterpCalls == 0 {
		t.Errorf("expected mixed-tier execution across the run: bc=%d interp=%d", snap.BytecodeCalls, snap.InterpCalls)
	}
}

// TestTierDeterminism: same program, same request sequence → identical
// promotion sets and identical IC counters on two fresh interpreters.
func TestTierDeterminism(t *testing.T) {
	src := `<?php
function render($post) { $s = ""; foreach (["a", "b", "c"] as $f) { $s .= $post[$f]; } return $s; }
echo render(["a" => $req, "b" => "x", "c" => "y"]);
?>`
	run := func() TierSnapshot {
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		in := New(hwRT(), prog)
		if err := in.EnableTier(nil, TierAuto, TierPolicy{WindowRequests: 4, HotCalls: 1, HotWindows: 2, ColdCalls: 0, ColdWindows: 4}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			in.SetGlobal("req", int64(i))
			if _, err := in.Run(); err != nil {
				t.Fatal(err)
			}
		}
		return in.TierSnapshot()
	}
	a, b := run(), run()
	if fmt.Sprint(a.PromotedSet()) != fmt.Sprint(b.PromotedSet()) {
		t.Errorf("promotion sets differ: %v vs %v", a.PromotedSet(), b.PromotedSet())
	}
	if a.ICHits != b.ICHits || a.ICMisses != b.ICMisses {
		t.Errorf("IC counters differ: %d/%d vs %d/%d", a.ICHits, a.ICMisses, b.ICHits, b.ICMisses)
	}
	if a.Promotions != b.Promotions || a.Requests != b.Requests {
		t.Errorf("tier counters differ: %+v vs %+v", a, b)
	}
}

// TestBytecodeCheaperDispatch: the tier's raison d'être — the same
// script charges fewer CatOther (interpreter dispatch) cycles compiled
// than tree-walked, with all accelerator-visible work unchanged.
func TestBytecodeCheaperDispatch(t *testing.T) {
	src := `<?php
function work($n) {
	$a = [];
	for ($i = 0; $i < $n; $i++) { $a["k" . $i] = $i * 2; }
	$sum = 0;
	foreach ($a as $k => $v) { $sum += $v; }
	return $sum;
}
echo work(60);
?>`
	measure := func(mode TierMode) float64 {
		rt := swRT()
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		in := New(rt, prog)
		if mode != TierInterp {
			if err := in.EnableTier(nil, mode, DefaultTierPolicy()); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := in.Run(); err != nil {
			t.Fatal(err)
		}
		// Dispatch overhead lands in CatOther (charge / the bytecode
		// loop); hash and string work is identical across tiers.
		var other float64
		for _, fstat := range rt.Meter().Functions() {
			if fstat.Category != sim.CatOther {
				continue
			}
			if fstat.Name == "php_main" || fstat.Name == "work" {
				other += fstat.Uops
			}
		}
		return other
	}
	interp := measure(TierInterp)
	bc := measure(TierBytecode)
	if bc >= interp {
		t.Fatalf("bytecode dispatch should be cheaper: interp=%.0f bytecode=%.0f uops", interp, bc)
	}
	if bc > interp*0.8 {
		t.Errorf("expected ≥20%% dispatch reduction: interp=%.0f bytecode=%.0f", interp, bc)
	}
}
