package php

import (
	"fmt"
	"strconv"

	"repro/internal/hashmap"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Values are represented as: nil, bool, int64, float64, string, and
// *vm.Array. Arrays are handles (reference semantics) rather than PHP's
// copy-on-write value semantics — a documented simplification; scripts in
// this repository treat arrays as objects.

// Interp executes a parsed Program against a vm.Runtime, so every array
// access, allocation, string function, and regexp the script performs is
// metered (and accelerated when the runtime has hardware).
type Interp struct {
	rt   *vm.Runtime
	prog *Program
	ob   *vm.OutputBuffer

	globals frame
	depth   int
	preset  map[string]interface{}

	// Content-locality tracking for consecutive regexps over the same
	// text: the dynamic equivalent of the paper's function-level dataflow
	// analysis (§4.5). When a preg_* call sees the content produced by
	// the previous one, it runs as a shadow under the cached hint vector.
	lastContent string
	lastHV      *isa.HV

	// arrays allocated by the script, freed when Run returns (request
	// teardown, the short-lived map pattern).
	owned []*vm.Array

	// Bytecode tier (tier.go / bcexec.go): the shared compiled program,
	// this worker's private execution machine (value stack, inline
	// caches, type feedback), and the promotion controller.
	comp *Compiled
	bc   *bcMachine
	tier *tierState
}

// frame is one function activation's variable bindings. Plain-variable
// access models JIT frame slots (cheap); only symbol-table operations
// like extract() touch hash maps.
type frame struct {
	vars map[string]interface{}
	fn   string
}

// control is the non-local exit signal used for return/break/continue.
type control struct {
	kind controlKind
	val  interface{}
}

type controlKind uint8

const (
	ctrlNone controlKind = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

// maxCallDepth bounds recursion.
const maxCallDepth = 128

// New prepares an interpreter for one program on one runtime.
func New(rt *vm.Runtime, prog *Program) *Interp {
	return &Interp{rt: rt, prog: prog}
}

// SetGlobal presets a global variable for subsequent Run calls — the
// host's way of injecting request parameters (PHP's superglobals).
func (in *Interp) SetGlobal(name string, v interface{}) {
	if in.preset == nil {
		in.preset = map[string]interface{}{}
	}
	in.preset[name] = v
}

// Run executes the script as one request and returns the response body.
func (in *Interp) Run() ([]byte, error) {
	if t := in.tier; t != nil {
		t.beginRequest()
		bc := in.useBytecode("php_main")
		t.count("php_main", bc)
		if bc {
			return in.bcRunMain()
		}
	}
	in.rt.BeginRequest()
	in.ob = in.rt.NewOutputBuffer("php_main")
	in.globals = frame{vars: map[string]interface{}{}, fn: "php_main"}
	for k, v := range in.preset {
		in.globals.vars[k] = v
	}
	in.owned = in.owned[:0]
	defer func() {
		// Request teardown: script-allocated arrays are short-lived maps.
		for _, a := range in.owned {
			in.rt.FreeArray(in.globals.fn, a)
		}
		in.owned = in.owned[:0]
	}()
	in.rt.BeginSpan("php:exec")
	ctl, err := in.execBlock(in.prog.stmts, &in.globals)
	in.rt.EndSpan()
	if err != nil {
		return nil, err
	}
	if ctl.kind == ctrlBreak || ctl.kind == ctrlContinue {
		return nil, fmt.Errorf("php: break/continue outside a loop")
	}
	return in.ob.Bytes(), nil
}

// RunScript parses and runs src on rt in one call.
func RunScript(rt *vm.Runtime, src string) ([]byte, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return New(rt, prog).Run()
}

// charge accounts interpreter/JIT dispatch work for one AST node.
func (in *Interp) charge(f *frame, uops float64) {
	in.rt.Meter().AddUops(f.fn, sim.CatOther, uops)
}

func (in *Interp) execBlock(stmts []stmt, f *frame) (control, error) {
	for _, s := range stmts {
		ctl, err := in.execStmt(s, f)
		if err != nil {
			return control{}, err
		}
		if ctl.kind != ctrlNone {
			return ctl, nil
		}
	}
	return control{}, nil
}

func (in *Interp) execStmt(s stmt, f *frame) (control, error) {
	switch n := s.(type) {
	case *inlineHTMLStmt:
		in.ob.WriteString(n.html)
		return control{}, nil
	case *echoStmt:
		in.charge(f, 4)
		for _, a := range n.args {
			v, err := in.eval(a, f)
			if err != nil {
				return control{}, err
			}
			in.ob.Write([]byte(in.toString(v, f)))
		}
		return control{}, nil
	case *exprStmt:
		in.charge(f, 2)
		_, err := in.eval(n.e, f)
		return control{}, err
	case *ifStmt:
		in.charge(f, 3)
		cond, err := in.eval(n.cond, f)
		if err != nil {
			return control{}, err
		}
		if in.truthy(f, cond) {
			return in.execBlock(n.then, f)
		}
		return in.execBlock(n.els, f)
	case *whileStmt:
		for iter := 0; ; iter++ {
			if iter > 10_000_000 {
				return control{}, fmt.Errorf("php: line %d: while loop exceeded iteration limit", n.line)
			}
			in.charge(f, 3)
			cond, err := in.eval(n.cond, f)
			if err != nil {
				return control{}, err
			}
			if !in.truthy(f, cond) {
				return control{}, nil
			}
			ctl, err := in.execBlock(n.body, f)
			if err != nil {
				return control{}, err
			}
			switch ctl.kind {
			case ctrlBreak:
				return control{}, nil
			case ctrlReturn:
				return ctl, nil
			}
		}
	case *forStmt:
		if n.init != nil {
			if _, err := in.eval(n.init, f); err != nil {
				return control{}, err
			}
		}
		for iter := 0; ; iter++ {
			if iter > 10_000_000 {
				return control{}, fmt.Errorf("php: line %d: for loop exceeded iteration limit", n.line)
			}
			in.charge(f, 3)
			if n.cond != nil {
				cond, err := in.eval(n.cond, f)
				if err != nil {
					return control{}, err
				}
				if !in.truthy(f, cond) {
					return control{}, nil
				}
			}
			ctl, err := in.execBlock(n.body, f)
			if err != nil {
				return control{}, err
			}
			if ctl.kind == ctrlBreak {
				return control{}, nil
			}
			if ctl.kind == ctrlReturn {
				return ctl, nil
			}
			if n.post != nil {
				if _, err := in.eval(n.post, f); err != nil {
					return control{}, err
				}
			}
		}
	case *foreachStmt:
		subject, err := in.eval(n.subject, f)
		if err != nil {
			return control{}, err
		}
		arr, ok := subject.(*vm.Array)
		if !ok {
			return control{}, fmt.Errorf("php: line %d: foreach over non-array", n.line)
		}
		// Iterate a snapshot in insertion order (PHP iterates a copy).
		type pair struct {
			k hashmap.Key
			v interface{}
		}
		var pairs []pair
		in.rt.AForeach(f.fn, arr, func(k hashmap.Key, v interface{}) bool {
			pairs = append(pairs, pair{k, v})
			return true
		})
		for _, kv := range pairs {
			in.charge(f, 3)
			if n.keyVar != "" {
				f.vars[n.keyVar] = keyValue(kv.k)
			}
			f.vars[n.valVar] = kv.v
			ctl, err := in.execBlock(n.body, f)
			if err != nil {
				return control{}, err
			}
			switch ctl.kind {
			case ctrlBreak:
				return control{}, nil
			case ctrlReturn:
				return ctl, nil
			}
		}
		return control{}, nil
	case *returnStmt:
		in.charge(f, 2)
		if n.val == nil {
			return control{kind: ctrlReturn}, nil
		}
		v, err := in.eval(n.val, f)
		if err != nil {
			return control{}, err
		}
		return control{kind: ctrlReturn, val: v}, nil
	case *breakStmt:
		return control{kind: ctrlBreak}, nil
	case *continueStmt:
		return control{kind: ctrlContinue}, nil
	case *funcDecl:
		return control{}, fmt.Errorf("php: line %d: nested function declarations unsupported", n.line)
	default:
		return control{}, fmt.Errorf("php: unknown statement %T", s)
	}
}

func keyValue(k hashmap.Key) interface{} {
	if k.IsInt {
		return k.Int
	}
	return k.Str
}

func (in *Interp) eval(e expr, f *frame) (interface{}, error) {
	switch n := e.(type) {
	case *litExpr:
		return n.val, nil
	case *varExpr:
		in.charge(f, 1)
		return f.vars[n.name], nil // undefined variables read as null
	case *assignExpr:
		return in.evalAssign(n, f)
	case *indexExpr:
		return in.evalIndex(n, f)
	case *binaryExpr:
		return in.evalBinary(n, f)
	case *unaryExpr:
		in.charge(f, 1)
		v, err := in.eval(n.e, f)
		if err != nil {
			return nil, err
		}
		if n.op == "!" {
			return !in.truthy(f, v), nil
		}
		switch x := v.(type) {
		case int64:
			return -x, nil
		case float64:
			return -x, nil
		}
		return -toFloat(v), nil
	case *callExpr:
		return in.evalCall(n, f)
	case *arrayLit:
		return in.evalArrayLit(n, f)
	case *ternaryExpr:
		in.charge(f, 2)
		c, err := in.eval(n.cond, f)
		if err != nil {
			return nil, err
		}
		if in.truthy(f, c) {
			return in.eval(n.then, f)
		}
		return in.eval(n.els, f)
	case *incDecExpr:
		in.charge(f, 2)
		cur, err := in.eval(n.target, f)
		if err != nil {
			return nil, err
		}
		delta := int64(1)
		if n.op == "--" {
			delta = -1
		}
		var next interface{}
		switch x := cur.(type) {
		case int64:
			next = x + delta
		case float64:
			next = x + float64(delta)
		case nil:
			next = delta
		default:
			next = toInt(cur) + delta
		}
		if err := in.store(n.target, next, f); err != nil {
			return nil, err
		}
		return next, nil
	default:
		return nil, fmt.Errorf("php: unknown expression %T", e)
	}
}

func (in *Interp) evalAssign(n *assignExpr, f *frame) (interface{}, error) {
	in.charge(f, 2)
	val, err := in.eval(n.value, f)
	if err != nil {
		return nil, err
	}
	if n.op != "=" {
		cur, err := in.eval(n.target, f)
		if err != nil {
			return nil, err
		}
		switch n.op {
		case ".=":
			val = in.concat(cur, val, f)
		case "+=":
			val = arith("+", cur, val)
		case "-=":
			val = arith("-", cur, val)
		case "*=":
			val = arith("*", cur, val)
		case "/=":
			val = arith("/", cur, val)
		}
	}
	if err := in.store(n.target, val, f); err != nil {
		return nil, err
	}
	return val, nil
}

// store writes to a variable or array element target.
func (in *Interp) store(target expr, val interface{}, f *frame) error {
	switch t := target.(type) {
	case *varExpr:
		f.vars[t.name] = val
		return nil
	case *indexExpr:
		subject, err := in.eval(t.subject, f)
		if err != nil {
			return err
		}
		arr, ok := subject.(*vm.Array)
		if !ok {
			// Auto-vivification: assigning into null creates an array.
			if subject == nil {
				arr = in.newArray(f)
				if err := in.store(t.subject, arr, f); err != nil {
					return err
				}
			} else {
				return fmt.Errorf("php: line %d: cannot index non-array", t.line)
			}
		}
		if t.key == nil { // $a[] = v: PHP's next auto-index
			in.rt.ASet(f.fn, arr, hashmap.IntKey(arr.Map().NextIntKey()), val, false)
			return nil
		}
		k, dynamic, err := in.evalKey(t.key, f)
		if err != nil {
			return err
		}
		in.rt.ASet(f.fn, arr, k, val, dynamic)
		return nil
	default:
		return fmt.Errorf("php: invalid assignment target %T", target)
	}
}

func (in *Interp) evalIndex(n *indexExpr, f *frame) (interface{}, error) {
	in.charge(f, 1)
	subject, err := in.eval(n.subject, f)
	if err != nil {
		return nil, err
	}
	if n.key == nil {
		return nil, fmt.Errorf("php: line %d: cannot read the append form $a[]", n.line)
	}
	switch s := subject.(type) {
	case *vm.Array:
		k, dynamic, err := in.evalKey(n.key, f)
		if err != nil {
			return nil, err
		}
		v, _ := in.rt.AGet(f.fn, s, k, dynamic)
		return v, nil
	case string:
		kv, err := in.eval(n.key, f)
		if err != nil {
			return nil, err
		}
		i := toInt(kv)
		if i < 0 || i >= int64(len(s)) {
			return "", nil
		}
		return string(s[i]), nil
	case nil:
		return nil, nil
	default:
		return nil, fmt.Errorf("php: line %d: cannot index %T", n.line, subject)
	}
}

// evalKey computes an array key and whether it counts as a dynamic key
// name (anything but a literal — the distinction §4.2 builds on).
func (in *Interp) evalKey(e expr, f *frame) (hashmap.Key, bool, error) {
	_, isLit := e.(*litExpr)
	v, err := in.eval(e, f)
	if err != nil {
		return hashmap.Key{}, false, err
	}
	switch k := v.(type) {
	case int64:
		return hashmap.IntKey(k), !isLit, nil
	case bool:
		if k {
			return hashmap.IntKey(1), !isLit, nil
		}
		return hashmap.IntKey(0), !isLit, nil
	case float64:
		return hashmap.IntKey(int64(k)), !isLit, nil
	case string:
		return hashmap.StrKey(k), !isLit, nil
	case nil:
		return hashmap.StrKey(""), !isLit, nil
	default:
		return hashmap.Key{}, false, fmt.Errorf("php: illegal array key type %T", v)
	}
}

func (in *Interp) evalBinary(n *binaryExpr, f *frame) (interface{}, error) {
	// Short-circuit logical operators.
	if n.op == "&&" || n.op == "||" {
		in.charge(f, 1)
		l, err := in.eval(n.l, f)
		if err != nil {
			return nil, err
		}
		if n.op == "&&" && !in.truthy(f, l) {
			return false, nil
		}
		if n.op == "||" && in.truthy(f, l) {
			return true, nil
		}
		r, err := in.eval(n.r, f)
		if err != nil {
			return nil, err
		}
		return in.truthy(f, r), nil
	}
	in.charge(f, 1)
	l, err := in.eval(n.l, f)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(n.r, f)
	if err != nil {
		return nil, err
	}
	switch n.op {
	case ".":
		return in.concat(l, r, f), nil
	case "+", "-", "*", "/", "%":
		return arith(n.op, l, r), nil
	case "==":
		return looseEq(l, r), nil
	case "!=":
		return !looseEq(l, r), nil
	case "===":
		return strictEq(l, r), nil
	case "!==":
		return !strictEq(l, r), nil
	case "<", ">", "<=", ">=", "<=>":
		c := compare(l, r)
		switch n.op {
		case "<":
			return c < 0, nil
		case ">":
			return c > 0, nil
		case "<=":
			return c <= 0, nil
		case ">=":
			return c >= 0, nil
		default:
			return int64(c), nil
		}
	}
	return nil, fmt.Errorf("php: line %d: unknown operator %q", n.line, n.op)
}

// concat runs string concatenation through the runtime so it is charged
// (and traced) as string work.
func (in *Interp) concat(l, r interface{}, f *frame) string {
	return string(in.rt.Concat(f.fn, []byte(in.toString(l, f)), []byte(in.toString(r, f))))
}

func (in *Interp) evalArrayLit(n *arrayLit, f *frame) (interface{}, error) {
	arr := in.newArray(f)
	auto := int64(0)
	for i := range n.vals {
		v, err := in.eval(n.vals[i], f)
		if err != nil {
			return nil, err
		}
		if n.keys[i] == nil {
			in.rt.ASet(f.fn, arr, hashmap.IntKey(auto), v, false)
			auto++
			continue
		}
		k, dynamic, err := in.evalKey(n.keys[i], f)
		if err != nil {
			return nil, err
		}
		if k.IsInt && k.Int >= auto {
			auto = k.Int + 1
		}
		in.rt.ASet(f.fn, arr, k, v, dynamic)
	}
	return arr, nil
}

// newArray allocates a script array, owned by the request.
func (in *Interp) newArray(f *frame) *vm.Array {
	a := in.rt.NewArray(f.fn)
	in.owned = append(in.owned, a)
	return a
}

// callUser invokes a user-declared function.
func (in *Interp) callUser(fd *funcDecl, args []interface{}) (interface{}, error) {
	if in.depth >= maxCallDepth {
		return nil, fmt.Errorf("php: call depth limit exceeded in %s", fd.name)
	}
	in.depth++
	defer func() { in.depth-- }()
	if in.rt.Tracing() { // skip the name concat on the unsampled path
		in.rt.BeginSpan("php:" + fd.name)
		defer in.rt.EndSpan()
	}

	local := frame{vars: map[string]interface{}{}, fn: fd.name}
	for i, p := range fd.params {
		if i < len(args) {
			local.vars[p] = args[i]
		}
	}
	// Call overhead: frame setup, arg shuffling.
	in.charge(&local, 8)
	ctl, err := in.execBlock(fd.body, &local)
	if err != nil {
		return nil, err
	}
	if ctl.kind == ctrlReturn {
		return ctl.val, nil
	}
	return nil, nil
}

// --- conversions and operators ---

// truthy applies PHP boolean conversion. Arrays go through the runtime
// size read so inserts still buffered in the hardware hash table count
// toward non-emptiness.
func (in *Interp) truthy(f *frame, v interface{}) bool {
	if a, ok := v.(*vm.Array); ok {
		return in.rt.ASize(f.fn, a) > 0
	}
	return truthyScalar(v)
}

func truthyScalar(v interface{}) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case float64:
		return x != 0
	case string:
		return x != "" && x != "0"
	default:
		return true
	}
}

func (in *Interp) toString(v interface{}, f *frame) string {
	switch x := v.(type) {
	case nil:
		return ""
	case bool:
		if x {
			return "1"
		}
		return ""
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'G', 14, 64)
	case string:
		return x
	case *vm.Array:
		return "Array"
	default:
		return fmt.Sprint(x)
	}
}

func toInt(v interface{}) int64 {
	switch x := v.(type) {
	case nil:
		return 0
	case bool:
		if x {
			return 1
		}
		return 0
	case int64:
		return x
	case float64:
		return int64(x)
	case string:
		n, _ := strconv.ParseInt(leadingInt(x), 10, 64)
		return n
	default:
		return 0
	}
}

func leadingInt(s string) string {
	i := 0
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		i++
	}
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return s[:i]
}

func toFloat(v interface{}) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	case string:
		f, _ := strconv.ParseFloat(x, 64)
		return f
	default:
		return float64(toInt(v))
	}
}

func isNumeric(v interface{}) bool {
	switch v.(type) {
	case int64, float64:
		return true
	}
	return false
}

func arith(op string, l, r interface{}) interface{} {
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri
		case "-":
			return li - ri
		case "*":
			return li * ri
		case "%":
			if ri == 0 {
				return int64(0)
			}
			return li % ri
		case "/":
			if ri != 0 && li%ri == 0 {
				return li / ri
			}
		}
	}
	lf, rf := toFloat(l), toFloat(r)
	switch op {
	case "+":
		return lf + rf
	case "-":
		return lf - rf
	case "*":
		return lf * rf
	case "/":
		if rf == 0 {
			return 0.0
		}
		return lf / rf
	case "%":
		ri := toInt(r)
		if ri == 0 {
			return int64(0)
		}
		return toInt(l) % ri
	}
	return nil
}

func looseEq(l, r interface{}) bool {
	ls, lIsStr := l.(string)
	rs, rIsStr := r.(string)
	if isNumeric(l) || isNumeric(r) {
		// PHP8-style: numeric vs numeric-string compares numerically;
		// otherwise string comparison.
		if (lIsStr && !numericString(ls)) || (rIsStr && !numericString(rs)) {
			return fmt.Sprint(l) == fmt.Sprint(r)
		}
		return toFloat(l) == toFloat(r)
	}
	// Two numeric strings compare numerically (PHP 8), keeping == and
	// the relational operators (compare) consistent: "10" == "1e1".
	if lIsStr && rIsStr && numericString(ls) && numericString(rs) {
		return toFloat(l) == toFloat(r)
	}
	return strictEq(l, r)
}

func numericString(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func strictEq(l, r interface{}) bool {
	switch lv := l.(type) {
	case *vm.Array:
		rv, ok := r.(*vm.Array)
		return ok && lv == rv
	default:
		return l == r
	}
}

func compare(l, r interface{}) int {
	ls, lIsStr := l.(string)
	rs, rIsStr := r.(string)
	if lIsStr && rIsStr && !(numericString(ls) && numericString(rs)) {
		switch {
		case ls < rs:
			return -1
		case ls > rs:
			return 1
		}
		return 0
	}
	lf, rf := toFloat(l), toFloat(r)
	switch {
	case lf < rf:
		return -1
	case lf > rf:
		return 1
	}
	return 0
}
