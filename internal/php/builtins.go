package php

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hashmap"
	"repro/internal/isa"
	"repro/internal/regex"
	"repro/internal/vm"
)

// evalCall dispatches a call expression: user functions first, then the
// built-in library. Built-ins route through the vm.Runtime so the string,
// hash, heap, and regexp work they do is metered and accelerated.
func (in *Interp) evalCall(n *callExpr, f *frame) (interface{}, error) {
	if fd, ok := in.prog.funcs[n.name]; ok {
		args, err := in.evalArgs(n.args, f)
		if err != nil {
			return nil, err
		}
		return in.callFn(fd, args)
	}
	if in.rt.Tracing() { // skip the name concat on the unsampled path
		in.rt.BeginSpan("php:" + n.name)
		defer in.rt.EndSpan()
	}

	// Special forms that inspect their argument expressions.
	switch n.name {
	case "isset":
		if len(n.args) != 1 {
			return nil, errArity(n, 1)
		}
		v, err := in.eval(n.args[0], f)
		if err != nil {
			return nil, err
		}
		return v != nil, nil
	case "unset":
		if len(n.args) != 1 {
			return nil, errArity(n, 1)
		}
		ix, ok := n.args[0].(*indexExpr)
		if !ok {
			if v, ok := n.args[0].(*varExpr); ok {
				delete(f.vars, v.name)
				return nil, nil
			}
			return nil, fmt.Errorf("php: line %d: unset expects a variable or element", n.line)
		}
		subject, err := in.eval(ix.subject, f)
		if err != nil {
			return nil, err
		}
		arr, ok := subject.(*vm.Array)
		if !ok {
			return nil, nil
		}
		k, _, err := in.evalKey(ix.key, f)
		if err != nil {
			return nil, err
		}
		in.rt.ADelete(f.fn, arr, k)
		return nil, nil
	case "extract":
		// The §4.2 pattern: import an array's pairs into the local scope
		// using dynamic key names.
		if len(n.args) != 1 {
			return nil, errArity(n, 1)
		}
		v, err := in.eval(n.args[0], f)
		if err != nil {
			return nil, err
		}
		arr, ok := v.(*vm.Array)
		if !ok {
			return int64(0), nil
		}
		count := int64(0)
		in.rt.AForeach("extract", arr, func(k hashmap.Key, v interface{}) bool {
			if !k.IsInt {
				f.vars[k.Str] = v
				count++
			}
			return true
		})
		return count, nil
	}

	args, err := in.evalArgs(n.args, f)
	if err != nil {
		return nil, err
	}
	fn, ok := builtins[n.name]
	if !ok {
		return nil, fmt.Errorf("php: line %d: call to undefined function %s()", n.line, n.name)
	}
	return fn(in, f, n, args)
}

func (in *Interp) evalArgs(args []expr, f *frame) ([]interface{}, error) {
	out := make([]interface{}, len(args))
	for i, a := range args {
		v, err := in.eval(a, f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func errArity(n *callExpr, want int) error {
	return fmt.Errorf("php: line %d: %s() expects %d argument(s), got %d", n.line, n.name, want, len(n.args))
}

type builtinFn func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error)

// builtins maps PHP function names to implementations. String and regexp
// functions call the runtime's accelerated operations; array functions
// operate on vm.Array handles.
var builtins = map[string]builtinFn{
	// --- strings (accelerated) ---
	"strlen": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, errArity(n, 1)
		}
		return int64(len(in.str(args[0], f))), nil
	},
	"strtoupper": stringOp1(func(in *Interp, f *frame, s []byte) []byte { return in.rt.ToUpper(f.fn, s) }),
	"strtolower": stringOp1(func(in *Interp, f *frame, s []byte) []byte { return in.rt.ToLower(f.fn, s) }),
	"trim":       stringOp1(func(in *Interp, f *frame, s []byte) []byte { return in.rt.Trim(f.fn, s) }),
	"nl2br":      stringOp1(func(in *Interp, f *frame, s []byte) []byte { return in.rt.NL2BR(f.fn, s) }),
	"addslashes": stringOp1(func(in *Interp, f *frame, s []byte) []byte { return in.rt.AddSlashes(f.fn, s) }),
	"htmlspecialchars": stringOp1(func(in *Interp, f *frame, s []byte) []byte {
		return in.rt.EscapeHTML(f.fn, s)
	}),
	"str_replace": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 3 {
			return nil, errArity(n, 3)
		}
		search, repl, subject := in.str(args[0], f), in.str(args[1], f), in.str(args[2], f)
		return string(in.rt.Replace(f.fn, []byte(subject), []byte(search), []byte(repl))), nil
	},
	"strpos": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		pos := in.rt.Find(f.fn, []byte(in.str(args[0], f)), []byte(in.str(args[1], f)))
		if pos < 0 {
			return false, nil
		}
		return int64(pos), nil
	},
	"strcmp": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		return int64(in.rt.Compare(f.fn, []byte(in.str(args[0], f)), []byte(in.str(args[1], f)))), nil
	},
	"strtr": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 3 {
			return nil, errArity(n, 3)
		}
		from, to := in.str(args[1], f), in.str(args[2], f)
		if len(from) != len(to) {
			return nil, fmt.Errorf("php: line %d: strtr tables must have equal length", n.line)
		}
		return string(in.rt.Translate(f.fn, []byte(in.str(args[0], f)), []byte(from), []byte(to))), nil
	},
	"substr": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) < 2 || len(args) > 3 {
			return nil, errArity(n, 2)
		}
		s := in.str(args[0], f)
		start := int(toInt(args[1]))
		if start < 0 {
			start += len(s)
		}
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return "", nil
		}
		end := len(s)
		if len(args) == 3 {
			l := int(toInt(args[2]))
			if l < 0 {
				end += l
			} else if start+l < end {
				end = start + l
			}
		}
		if end < start {
			end = start
		}
		return s[start:end], nil
	},
	"str_repeat": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		count := int(toInt(args[1]))
		if count < 0 || count > 1<<20 {
			return nil, fmt.Errorf("php: line %d: str_repeat count out of range", n.line)
		}
		return strings.Repeat(in.str(args[0], f), count), nil
	},
	"implode": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		glue := in.str(args[0], f)
		arr, ok := args[1].(*vm.Array)
		if !ok {
			return nil, fmt.Errorf("php: line %d: implode expects an array", n.line)
		}
		var parts [][]byte
		in.rt.AForeach(f.fn, arr, func(k hashmap.Key, v interface{}) bool {
			if len(parts) > 0 {
				parts = append(parts, []byte(glue))
			}
			parts = append(parts, []byte(in.toString(v, f)))
			return true
		})
		return string(in.rt.Concat(f.fn, parts...)), nil
	},
	"explode": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		delim, s := in.str(args[0], f), in.str(args[1], f)
		if delim == "" {
			return nil, fmt.Errorf("php: line %d: explode with empty delimiter", n.line)
		}
		arr := in.newArray(f)
		for i, part := range strings.Split(s, delim) {
			in.rt.ASet(f.fn, arr, hashmap.IntKey(int64(i)), part, false)
		}
		return arr, nil
	},
	"sprintf": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) < 1 {
			return nil, errArity(n, 1)
		}
		return phpSprintf(in, f, in.str(args[0], f), args[1:]), nil
	},

	// --- regexps (accelerated) ---
	"preg_replace": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 3 {
			return nil, errArity(n, 3)
		}
		re, err := in.compilePattern(in.str(args[0], f), n.line)
		if err != nil {
			return nil, err
		}
		subject := in.str(args[2], f)
		cpu := in.rt.CPU()
		if cpu.RA == nil {
			out, _ := cpu.RegexReplaceAll(f.fn, re, []byte(subject), []byte(in.str(args[1], f)))
			return string(out), nil
		}
		hv := in.hintFor(f, re, subject)
		out, newHV, _ := cpu.RegexShadowReplace(f.fn, re, []byte(subject), []byte(in.str(args[1], f)), hv)
		in.lastContent, in.lastHV = string(out), newHV
		return string(out), nil
	},
	"preg_match": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		re, err := in.compilePattern(in.str(args[0], f), n.line)
		if err != nil {
			return nil, err
		}
		if len(in.pregMatches(f, re, in.str(args[1], f))) > 0 {
			return int64(1), nil
		}
		return int64(0), nil
	},
	"preg_match_all": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		re, err := in.compilePattern(in.str(args[0], f), n.line)
		if err != nil {
			return nil, err
		}
		return int64(len(in.pregMatches(f, re, in.str(args[1], f)))), nil
	},
	"preg_split": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		re, err := in.compilePattern(in.str(args[0], f), n.line)
		if err != nil {
			return nil, err
		}
		subject := []byte(in.str(args[1], f))
		ms := in.rt.CPU().RegexFindAll(f.fn, re, subject)
		arr := in.newArray(f)
		prev, idx := 0, int64(0)
		for _, m := range ms {
			in.rt.ASet(f.fn, arr, hashmap.IntKey(idx), string(subject[prev:m.Start]), false)
			idx++
			prev = m.End
		}
		in.rt.ASet(f.fn, arr, hashmap.IntKey(idx), string(subject[prev:]), false)
		return arr, nil
	},

	// --- arrays ---
	"count": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, errArity(n, 1)
		}
		if arr, ok := args[0].(*vm.Array); ok {
			return int64(in.rt.ASize(f.fn, arr)), nil
		}
		return int64(1), nil
	},
	"array_keys": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, errArity(n, 1)
		}
		arr, ok := args[0].(*vm.Array)
		if !ok {
			return nil, fmt.Errorf("php: line %d: array_keys expects an array", n.line)
		}
		out := in.newArray(f)
		i := int64(0)
		in.rt.AForeach(f.fn, arr, func(k hashmap.Key, v interface{}) bool {
			in.rt.ASet(f.fn, out, hashmap.IntKey(i), keyValue(k), false)
			i++
			return true
		})
		return out, nil
	},
	"array_values": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, errArity(n, 1)
		}
		arr, ok := args[0].(*vm.Array)
		if !ok {
			return nil, fmt.Errorf("php: line %d: array_values expects an array", n.line)
		}
		out := in.newArray(f)
		i := int64(0)
		in.rt.AForeach(f.fn, arr, func(k hashmap.Key, v interface{}) bool {
			in.rt.ASet(f.fn, out, hashmap.IntKey(i), v, false)
			i++
			return true
		})
		return out, nil
	},
	"array_key_exists": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		arr, ok := args[1].(*vm.Array)
		if !ok {
			return false, nil
		}
		k := toKey(args[0])
		_, found := in.rt.AGet("array_key_exists", arr, k, true)
		return found, nil
	},
	"in_array": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 2 {
			return nil, errArity(n, 2)
		}
		arr, ok := args[1].(*vm.Array)
		if !ok {
			return false, nil
		}
		found := false
		in.rt.AForeach(f.fn, arr, func(k hashmap.Key, v interface{}) bool {
			if looseEq(v, args[0]) {
				found = true
				return false
			}
			return true
		})
		return found, nil
	},
	"array_merge": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		out := in.newArray(f)
		auto := int64(0)
		for _, a := range args {
			arr, ok := a.(*vm.Array)
			if !ok {
				return nil, fmt.Errorf("php: line %d: array_merge expects arrays", n.line)
			}
			in.rt.AForeach(f.fn, arr, func(k hashmap.Key, v interface{}) bool {
				if k.IsInt {
					in.rt.ASet(f.fn, out, hashmap.IntKey(auto), v, false)
					auto++
				} else {
					in.rt.ASet(f.fn, out, k, v, true)
				}
				return true
			})
		}
		return out, nil
	},

	// --- misc ---
	"intval": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, errArity(n, 1)
		}
		return toInt(args[0]), nil
	},
	"strval": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, errArity(n, 1)
		}
		return in.toString(args[0], f), nil
	},
	"abs": func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, errArity(n, 1)
		}
		if x, ok := args[0].(int64); ok {
			if x < 0 {
				return -x, nil
			}
			return x, nil
		}
		x := toFloat(args[0])
		if x < 0 {
			return -x, nil
		}
		return x, nil
	},
	"max": reduce2(func(a, b interface{}) bool { return compare(a, b) >= 0 }),
	"min": reduce2(func(a, b interface{}) bool { return compare(a, b) <= 0 }),
}

// stringOp1 adapts a one-subject runtime string op into a builtin.
func stringOp1(op func(in *Interp, f *frame, s []byte) []byte) builtinFn {
	return func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) != 1 {
			return nil, errArity(n, 1)
		}
		return string(op(in, f, []byte(in.str(args[0], f)))), nil
	}
}

// reduce2 adapts a binary keep-left predicate into max/min over args.
func reduce2(keepLeft func(a, b interface{}) bool) builtinFn {
	return func(in *Interp, f *frame, n *callExpr, args []interface{}) (interface{}, error) {
		if len(args) == 0 {
			return nil, errArity(n, 1)
		}
		best := args[0]
		for _, a := range args[1:] {
			if !keepLeft(best, a) {
				best = a
			}
		}
		return best, nil
	}
}

// str coerces a value to string for builtin arguments.
func (in *Interp) str(v interface{}, f *frame) string { return in.toString(v, f) }

func toKey(v interface{}) hashmap.Key {
	switch k := v.(type) {
	case int64:
		return hashmap.IntKey(k)
	case string:
		return hashmap.StrKey(k)
	default:
		return hashmap.StrKey(fmt.Sprint(v))
	}
}

// compilePattern strips PHP's pattern delimiters (/.../ with optional
// trailing flags, which are rejected except the no-op 'u') and compiles
// through the runtime's regexp manager.
func (in *Interp) compilePattern(pat string, line int) (*regexHandle, error) {
	if len(pat) < 2 {
		return nil, fmt.Errorf("php: line %d: malformed pattern %q", line, pat)
	}
	delim := pat[0]
	end := strings.LastIndexByte(pat[1:], delim)
	if end < 0 {
		return nil, fmt.Errorf("php: line %d: unterminated pattern %q", line, pat)
	}
	body := pat[1 : 1+end]
	flags := pat[2+end:]
	for _, fl := range flags {
		if fl != 'u' {
			return nil, fmt.Errorf("php: line %d: unsupported pattern flag %q", line, fl)
		}
	}
	return in.rt.Regex("pcre_compile", body)
}

// regexHandle aliases the engine's compiled pattern type.
type regexHandle = regex.Regex

// hintFor returns the hint vector for subject, generating it with a
// sieve scan when the content was not produced by the previous regexp.
func (in *Interp) hintFor(f *frame, re *regexHandle, subject string) *isa.HV {
	if subject == in.lastContent && in.lastHV != nil && in.lastHV.Covers(len(subject)) {
		return in.lastHV
	}
	_, hv := in.rt.CPU().RegexSieve(f.fn, re, []byte(subject))
	in.lastContent, in.lastHV = subject, hv
	return hv
}

// pregMatches runs a scan, sifted when a hint vector is available.
func (in *Interp) pregMatches(f *frame, re *regexHandle, subject string) []regex.MatchRange {
	cpu := in.rt.CPU()
	if cpu.RA == nil {
		return cpu.RegexFindAll(f.fn, re, []byte(subject))
	}
	hv := in.hintFor(f, re, subject)
	return cpu.RegexShadow(f.fn, re, []byte(subject), hv)
}

// phpSprintf implements a %s/%d/%f/%% subset of sprintf.
func phpSprintf(in *Interp, f *frame, format string, args []interface{}) string {
	var sb strings.Builder
	ai := 0
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' || i+1 >= len(format) {
			sb.WriteByte(c)
			continue
		}
		i++
		switch format[i] {
		case '%':
			sb.WriteByte('%')
		case 's':
			if ai < len(args) {
				sb.WriteString(in.toString(args[ai], f))
				ai++
			}
		case 'd':
			if ai < len(args) {
				sb.WriteString(strconv.FormatInt(toInt(args[ai]), 10))
				ai++
			}
		case 'f':
			if ai < len(args) {
				sb.WriteString(strconv.FormatFloat(toFloat(args[ai]), 'f', 6, 64))
				ai++
			}
		default:
			sb.WriteByte('%')
			sb.WriteByte(format[i])
		}
	}
	return sb.String()
}
