package php

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vm"
)

// examplesDir locates the repository's examples/*.php scripts from the
// package directory.
const examplesDir = "../../examples"

func exampleScripts(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(examplesDir, "*.php"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no example scripts under %s", examplesDir)
	}
	return paths
}

// TestExamplesGolden runs every examples/*.php under all four
// configurations — interpreter and bytecode tier, software and
// accelerated runtime — and requires byte-identical output, pinned to a
// committed golden file. Regenerate goldens with UPDATE_GOLDEN=1.
func TestExamplesGolden(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") == "1"
	for _, path := range exampleScripts(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".php")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := runTier(t, swRT(), string(src), TierInterp, nil)
			if err != nil {
				t.Fatalf("interp/sw: %v", err)
			}
			goldenPath := filepath.Join(examplesDir, "golden", name+".golden")
			if update {
				if err := os.WriteFile(goldenPath, []byte(ref), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_GOLDEN=1): %v", err)
			}
			if ref != string(golden) {
				t.Errorf("interp/sw diverges from golden:\n want %q\n got  %q", golden, ref)
			}
			configs := []struct {
				name string
				rt   *vm.Runtime
				mode TierMode
			}{
				{"bytecode/sw", swRT(), TierBytecode},
				{"interp/hw", hwRT(), TierInterp},
				{"bytecode/hw", hwRT(), TierBytecode},
			}
			for _, cfg := range configs {
				got, err := runTier(t, cfg.rt, string(src), cfg.mode, nil)
				if err != nil {
					t.Fatalf("%s: %v", cfg.name, err)
				}
				if got != ref {
					t.Errorf("%s diverges:\n want %q\n got  %q", cfg.name, ref, got)
				}
			}
		})
	}
}

// TestExamplesTierAutoConverges drives each example through repeated
// requests in auto mode and checks the output stays stable before,
// during, and after tier promotion.
func TestExamplesTierAutoConverges(t *testing.T) {
	for _, path := range exampleScripts(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".php")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			in := New(swRT(), prog)
			policy := TierPolicy{WindowRequests: 4, HotCalls: 1, HotWindows: 1, ColdCalls: 0, ColdWindows: 4}
			if err := in.EnableTier(nil, TierAuto, policy); err != nil {
				t.Fatal(err)
			}
			var first string
			for i := 0; i < 24; i++ {
				out, err := in.Run()
				if err != nil {
					t.Fatalf("request %d: %v", i, err)
				}
				if i == 0 {
					first = string(out)
				} else if string(out) != first {
					t.Fatalf("request %d output changed across tier-up:\n want %q\n got  %q", i, first, out)
				}
			}
			snap := in.TierSnapshot()
			if snap.Promotions == 0 {
				t.Errorf("expected promotions after 24 hot requests: %+v", snap)
			}
			if snap.BytecodeCalls == 0 {
				t.Errorf("expected bytecode-tier calls after promotion")
			}
		})
	}
}
