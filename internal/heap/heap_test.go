package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type recObs struct {
	allocs, frees, refills, huges int
}

func (r *recObs) OnAlloc(int)       { r.allocs++ }
func (r *recObs) OnFree(int)        { r.frees++ }
func (r *recObs) OnRefill(int, int) { r.refills++ }
func (r *recObs) OnHuge(int)        { r.huges++ }

func TestClassFor(t *testing.T) {
	cases := []struct {
		size, class int
	}{
		{0, 0}, {1, 0}, {16, 0}, {17, 1}, {32, 1}, {33, 2},
		{128, 7}, {129, 8}, {192, 8}, {4096, 15}, {4097, -1}, {1 << 20, -1},
	}
	for _, c := range cases {
		if got := ClassFor(c.size); got != c.class {
			t.Errorf("ClassFor(%d) = %d, want %d", c.size, got, c.class)
		}
	}
}

func TestClassSizesCoverHardwareRange(t *testing.T) {
	if NumSmallClasses != 8 {
		t.Fatalf("the paper's heap manager uses 8 slabs")
	}
	for c := 0; c < NumSmallClasses; c++ {
		if ClassSize(c) > MaxSmallSize {
			t.Errorf("class %d size %d exceeds hardware max %d", c, ClassSize(c), MaxSmallSize)
		}
	}
	if ClassSize(NumSmallClasses-1) != MaxSmallSize {
		t.Errorf("largest small class should be exactly %dB", MaxSmallSize)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	a := NewAllocator(nil, 0)
	b := a.Alloc(24)
	if b.Class != 1 || b.Size != 24 {
		t.Errorf("Alloc(24) = %+v", b)
	}
	if a.LiveCount() != 1 {
		t.Errorf("LiveCount = %d", a.LiveCount())
	}
	a.Free(b)
	if a.LiveCount() != 0 {
		t.Errorf("LiveCount after free = %d", a.LiveCount())
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := NewAllocator(nil, 0)
	b := a.Alloc(16)
	a.Free(b)
	defer func() {
		if recover() == nil {
			t.Errorf("double free should panic")
		}
	}()
	a.Free(b)
}

func TestWrongClassFreePanics(t *testing.T) {
	a := NewAllocator(nil, 0)
	b := a.Alloc(16)
	b.Class = 3
	defer func() {
		if recover() == nil {
			t.Errorf("wrong-class free should panic")
		}
	}()
	a.Free(b)
}

func TestMemoryReuse(t *testing.T) {
	// The paper's key observation: these workloads recycle small blocks, so
	// a freed address must be handed out again (LIFO) for the same class.
	a := NewAllocator(nil, 0)
	b1 := a.Alloc(64)
	a.Free(b1)
	b2 := a.Alloc(64)
	if b1.Addr != b2.Addr {
		t.Errorf("freed block not reused: %#x then %#x", b1.Addr, b2.Addr)
	}
}

func TestNoOverlapAcrossClasses(t *testing.T) {
	a := NewAllocator(nil, 0)
	seen := map[uint64]bool{}
	for i := 0; i < 500; i++ {
		b := a.Alloc(16 + (i%8)*16)
		if seen[b.Addr] {
			t.Fatalf("address %#x handed out twice", b.Addr)
		}
		seen[b.Addr] = true
	}
}

func TestHugeAllocations(t *testing.T) {
	obs := &recObs{}
	a := NewAllocator(obs, 0)
	b := a.Alloc(1 << 16)
	if b.Class != -1 {
		t.Errorf("huge block class = %d, want -1", b.Class)
	}
	if obs.huges != 1 {
		t.Errorf("huge observer count = %d", obs.huges)
	}
	a.Free(b)
	if a.LiveCount() != 0 {
		t.Errorf("huge block not released")
	}
}

func TestRefillObserved(t *testing.T) {
	obs := &recObs{}
	a := NewAllocator(obs, 0)
	a.Alloc(16)
	if obs.refills != 1 {
		t.Errorf("first alloc should trigger one refill, got %d", obs.refills)
	}
	// A chunk has 64 segments; 64 allocations need no second refill.
	for i := 0; i < 63; i++ {
		a.Alloc(16)
	}
	if obs.refills != 1 {
		t.Errorf("64 allocs should fit one chunk, refills = %d", obs.refills)
	}
	a.Alloc(16)
	if obs.refills != 2 {
		t.Errorf("65th alloc should refill, refills = %d", obs.refills)
	}
}

func TestPopPushFree(t *testing.T) {
	a := NewAllocator(nil, 0)
	addrs := a.PopFree(2, 8, nil)
	if len(addrs) != 8 {
		t.Fatalf("PopFree returned %d addrs", len(addrs))
	}
	dedup := map[uint64]bool{}
	for _, ad := range addrs {
		if dedup[ad] {
			t.Fatalf("PopFree returned duplicate %#x", ad)
		}
		dedup[ad] = true
	}
	before := a.FreeListLen(2)
	a.PushFree(2, addrs)
	if a.FreeListLen(2) != before+8 {
		t.Errorf("PushFree did not grow free list")
	}
}

func TestMarkLiveMarkDead(t *testing.T) {
	a := NewAllocator(nil, 0)
	addrs := a.PopFree(0, 1, nil)
	a.MarkLive(addrs[0], 0)
	if a.LiveCount() != 1 {
		t.Errorf("MarkLive not reflected")
	}
	a.MarkDead(addrs[0], 0)
	if a.LiveCount() != 0 {
		t.Errorf("MarkDead not reflected")
	}
}

func TestMarkLiveDoublePanics(t *testing.T) {
	a := NewAllocator(nil, 0)
	addrs := a.PopFree(0, 1, nil)
	a.MarkLive(addrs[0], 0)
	defer func() {
		if recover() == nil {
			t.Errorf("double MarkLive should panic")
		}
	}()
	a.MarkLive(addrs[0], 0)
}

func TestStatsAndCumulativeFraction(t *testing.T) {
	a := NewAllocator(nil, 0)
	for i := 0; i < 90; i++ {
		a.Alloc(16) // class 0
	}
	for i := 0; i < 10; i++ {
		a.Alloc(256) // class 9
	}
	st := a.Stats()
	if st.AllocsByClass[0] != 90 || st.AllocsByClass[9] != 10 {
		t.Errorf("alloc counts wrong: %v", st.AllocsByClass)
	}
	frac := a.CumulativeSmallFraction()
	if frac[0] != 0.9 {
		t.Errorf("cumulative fraction at class 0 = %v, want 0.9", frac[0])
	}
	if frac[len(frac)-1] != 1.0 {
		t.Errorf("cumulative fraction must end at 1.0: %v", frac)
	}
	// Monotonic non-decreasing.
	for i := 1; i < len(frac); i++ {
		if frac[i] < frac[i-1] {
			t.Errorf("cumulative fraction decreasing at %d: %v", i, frac)
		}
	}
}

func TestTimelineSampling(t *testing.T) {
	a := NewAllocator(nil, 10)
	var blocks []Block
	for i := 0; i < 100; i++ {
		blocks = append(blocks, a.Alloc(32))
	}
	for _, b := range blocks {
		a.Free(b)
	}
	tl := a.Timeline()
	if len(tl) != 20 {
		t.Fatalf("timeline has %d samples, want 20", len(tl))
	}
	// Live bytes in the 32B band must rise then fall back to zero.
	if tl[9].Bands[0] <= tl[0].Bands[0] {
		t.Errorf("live bytes should grow during allocation phase: %v vs %v", tl[9], tl[0])
	}
	last := tl[len(tl)-1]
	if last.Bands[0] != 0 {
		t.Errorf("all freed: final live bytes = %d, want 0", last.Bands[0])
	}
}

func TestPeakTracking(t *testing.T) {
	a := NewAllocator(nil, 0)
	bs := []Block{a.Alloc(16), a.Alloc(16), a.Alloc(16)}
	for _, b := range bs {
		a.Free(b)
	}
	st := a.Stats()
	if st.PeakLiveBytesByClass[0] != 48 {
		t.Errorf("peak live bytes = %d, want 48", st.PeakLiveBytesByClass[0])
	}
}

// TestAllocatorIntegrityProperty runs random alloc/free sequences and
// verifies that live accounting stays consistent and no address is ever
// handed out twice concurrently.
func TestAllocatorIntegrityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator(nil, 0)
		live := map[uint64]Block{}
		for step := 0; step < 500; step++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				size := 1 + rng.Intn(200)
				b := a.Alloc(size)
				if _, dup := live[b.Addr]; dup {
					return false
				}
				live[b.Addr] = b
			} else {
				for addr, b := range live {
					a.Free(b)
					delete(live, addr)
					break
				}
			}
			if a.LiveCount() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := NewAllocator(nil, 0)
	for i := 0; i < b.N; i++ {
		blk := a.Alloc(64)
		a.Free(blk)
	}
}
