// Package heap implements the VM's software dynamic memory manager using
// the slab allocation technique the paper describes (§4.3): the VM
// allocates large chunks of memory, breaks them into fixed-size segments
// according to each slab class's size, and keeps the segment pointers in
// per-class free lists.
//
// The allocator simulates an address space (blocks are modeled addresses,
// no real memory is handed out) while enforcing real allocator invariants:
// no double allocation, no double free, free-list integrity. It records
// the statistics behind Fig. 8 — per-slab usage distribution and live
// memory over time — and reports events to an Observer so the simulation
// can charge the software costs (paper: malloc 69 µops, free 37 µops,
// kernel involvement on slab refill).
package heap

import (
	"fmt"
	"sort"
)

// sizeClasses lists the slab segment sizes. The first eight classes use
// 16-byte granularity up to 128 bytes — exactly the range the hardware
// heap manager covers (§4.3: "It uses only 8 memory allocation slabs") —
// followed by geometric classes for larger objects.
var sizeClasses = []int{
	16, 32, 48, 64, 80, 96, 112, 128, // hardware-eligible classes 0..7
	192, 256, 384, 512, 768, 1024, 2048, 4096,
}

// NumSmallClasses is the number of slab classes the hardware heap manager
// can serve (requests of at most 128 bytes).
const NumSmallClasses = 8

// MaxSmallSize is the largest request the hardware heap manager accepts.
const MaxSmallSize = 128

// MaxSlabSize is the largest slab-managed request; anything bigger goes
// straight to the kernel.
const MaxSlabSize = 4096

// chunkSegments is how many segments a slab refill carves from a chunk.
const chunkSegments = 64

// NumClasses returns the total number of slab classes.
func NumClasses() int { return len(sizeClasses) }

// ClassSize returns the segment size of slab class c.
func ClassSize(c int) int { return sizeClasses[c] }

// ClassFor returns the slab class index for a request of size bytes, or
// -1 if the request exceeds MaxSlabSize and must go to the kernel.
func ClassFor(size int) int {
	if size > MaxSlabSize {
		return -1
	}
	i := sort.SearchInts(sizeClasses, size)
	if size <= 0 {
		return 0
	}
	return i
}

// Block is an allocated segment: a modeled address plus its slab class.
type Block struct {
	Addr  uint64
	Class int // -1 for huge (kernel-direct) blocks
	Size  int // requested size
}

// Observer receives allocation cost events. Implementations must be cheap.
type Observer interface {
	// OnAlloc fires for each allocation served from a slab free list.
	OnAlloc(class int)
	// OnFree fires for each deallocation returned to a slab free list.
	OnFree(class int)
	// OnRefill fires when a slab class exhausts its free list and a new
	// chunk is carved (the kernel-involved path the paper tuned in §3).
	OnRefill(class int, segments int)
	// OnHuge fires for requests above MaxSlabSize (direct kernel call).
	OnHuge(size int)
}

// Stats aggregates the allocator behaviour behind Fig. 8.
type Stats struct {
	// AllocsByClass counts allocations per slab class.
	AllocsByClass []int64
	// FreesByClass counts deallocations per slab class.
	FreesByClass []int64
	// LiveByClass is the current number of live segments per class.
	LiveByClass []int64
	// PeakLiveBytesByClass is the high-water mark of live bytes per class.
	PeakLiveBytesByClass []int64
	// Refills counts slab refills (kernel involvement).
	Refills int64
	// HugeAllocs counts kernel-direct allocations.
	HugeAllocs int64
}

// Allocator is the software slab allocator. Not safe for concurrent use;
// PHP requests are process-private (§4.2), so each simulated request
// context owns one.
type Allocator struct {
	free     [][]uint64 // per-class free lists (LIFO)
	live     map[uint64]int
	nextAddr uint64
	obs      Observer
	stats    Stats

	// timeline sampling for Fig. 8b/c
	sampleEvery int
	opCount     int64
	timeline    []Sample
}

// Sample is one point of the live-memory timeline (Fig. 8b/c): live bytes
// in each of the four smallest 32-byte slab bands plus everything larger.
type Sample struct {
	Op    int64
	Bands [5]int64 // 0-32, 32-64, 64-96, 96-128, >128 bytes
}

// NewAllocator creates an allocator. obs may be nil. sampleEvery sets the
// timeline sampling period in operations (0 disables sampling).
func NewAllocator(obs Observer, sampleEvery int) *Allocator {
	a := &Allocator{
		free:        make([][]uint64, len(sizeClasses)),
		live:        make(map[uint64]int),
		nextAddr:    0x10000,
		obs:         obs,
		sampleEvery: sampleEvery,
	}
	a.stats.AllocsByClass = make([]int64, len(sizeClasses))
	a.stats.FreesByClass = make([]int64, len(sizeClasses))
	a.stats.LiveByClass = make([]int64, len(sizeClasses))
	a.stats.PeakLiveBytesByClass = make([]int64, len(sizeClasses))
	return a
}

// Alloc returns a block of at least size bytes.
func (a *Allocator) Alloc(size int) Block {
	defer a.tick()
	c := ClassFor(size)
	if c < 0 {
		a.stats.HugeAllocs++
		if a.obs != nil {
			a.obs.OnHuge(size)
		}
		addr := a.carve(uint64(size))
		a.live[addr] = -1
		return Block{Addr: addr, Class: -1, Size: size}
	}
	if len(a.free[c]) == 0 {
		a.refill(c)
	}
	fl := a.free[c]
	addr := fl[len(fl)-1]
	a.free[c] = fl[:len(fl)-1]
	a.live[addr] = c
	a.stats.AllocsByClass[c]++
	a.stats.LiveByClass[c]++
	liveBytes := a.stats.LiveByClass[c] * int64(sizeClasses[c])
	if liveBytes > a.stats.PeakLiveBytesByClass[c] {
		a.stats.PeakLiveBytesByClass[c] = liveBytes
	}
	if a.obs != nil {
		a.obs.OnAlloc(c)
	}
	return Block{Addr: addr, Class: c, Size: size}
}

// Free returns a block to its slab free list. Freeing an address that is
// not live panics: that is allocator corruption, not a recoverable error.
func (a *Allocator) Free(b Block) {
	defer a.tick()
	c, ok := a.live[b.Addr]
	if !ok {
		panic(fmt.Sprintf("heap: double free or wild free of %#x", b.Addr))
	}
	if c != b.Class {
		panic(fmt.Sprintf("heap: block %#x freed with class %d, allocated as %d", b.Addr, b.Class, c))
	}
	delete(a.live, b.Addr)
	if c < 0 {
		return // huge block goes back to the kernel
	}
	a.free[c] = append(a.free[c], b.Addr)
	a.stats.FreesByClass[c]++
	a.stats.LiveByClass[c]--
	if a.obs != nil {
		a.obs.OnFree(c)
	}
}

// PopFree removes up to n segment addresses from class c's free list and
// appends them to dst, returning the extended slice (append semantics —
// steady-state callers pass a reused buffer and pay no allocation). This
// is the refill source the hardware heap manager's prefetcher pulls from
// (§4.3). It refills from a fresh chunk if empty.
func (a *Allocator) PopFree(c int, n int, dst []uint64) []uint64 {
	if len(a.free[c]) < n {
		a.refill(c)
	}
	fl := a.free[c]
	if n > len(fl) {
		n = len(fl)
	}
	dst = append(dst, fl[len(fl)-n:]...)
	a.free[c] = fl[:len(fl)-n]
	return dst
}

// PushFree returns segment addresses to class c's free list; the hardware
// heap manager's flush/overflow path uses it (§4.3 lazy writeback).
func (a *Allocator) PushFree(c int, addrs []uint64) {
	a.free[c] = append(a.free[c], addrs...)
}

// MarkLive registers addr as a live allocation of class c on behalf of the
// hardware heap manager, preserving the no-double-alloc invariant across
// the hardware/software boundary.
func (a *Allocator) MarkLive(addr uint64, c int) {
	if old, ok := a.live[addr]; ok {
		panic(fmt.Sprintf("heap: address %#x already live (class %d)", addr, old))
	}
	a.live[addr] = c
	a.stats.AllocsByClass[c]++
	a.stats.LiveByClass[c]++
	liveBytes := a.stats.LiveByClass[c] * int64(sizeClasses[c])
	if liveBytes > a.stats.PeakLiveBytesByClass[c] {
		a.stats.PeakLiveBytesByClass[c] = liveBytes
	}
	a.tick()
}

// MarkDead unregisters a live allocation on behalf of the hardware heap
// manager. The address stays owned by the hardware free list until it is
// flushed back via PushFree.
func (a *Allocator) MarkDead(addr uint64, c int) {
	got, ok := a.live[addr]
	if !ok || got != c {
		panic(fmt.Sprintf("heap: MarkDead of non-live %#x (class %d)", addr, c))
	}
	delete(a.live, addr)
	a.stats.FreesByClass[c]++
	a.stats.LiveByClass[c]--
	a.tick()
}

// LiveCount returns the number of live blocks.
func (a *Allocator) LiveCount() int { return len(a.live) }

// FreeListLen returns the length of class c's free list.
func (a *Allocator) FreeListLen(c int) int { return len(a.free[c]) }

// Stats returns a snapshot of the allocator statistics.
func (a *Allocator) Stats() Stats {
	s := a.stats
	s.AllocsByClass = append([]int64(nil), a.stats.AllocsByClass...)
	s.FreesByClass = append([]int64(nil), a.stats.FreesByClass...)
	s.LiveByClass = append([]int64(nil), a.stats.LiveByClass...)
	s.PeakLiveBytesByClass = append([]int64(nil), a.stats.PeakLiveBytesByClass...)
	return s
}

// Timeline returns the sampled live-memory series (Fig. 8b/c).
func (a *Allocator) Timeline() []Sample { return a.timeline }

// CumulativeSmallFraction returns, per slab class, the cumulative fraction
// of all slab allocations served by classes 0..c (Fig. 8a).
func (a *Allocator) CumulativeSmallFraction() []float64 {
	var total int64
	for _, n := range a.stats.AllocsByClass {
		total += n
	}
	out := make([]float64, len(sizeClasses))
	var run int64
	for c, n := range a.stats.AllocsByClass {
		run += n
		if total > 0 {
			out[c] = float64(run) / float64(total)
		}
	}
	return out
}

func (a *Allocator) refill(c int) {
	a.stats.Refills++
	if a.obs != nil {
		a.obs.OnRefill(c, chunkSegments)
	}
	seg := uint64(sizeClasses[c])
	base := a.carve(seg * chunkSegments)
	for i := chunkSegments - 1; i >= 0; i-- {
		a.free[c] = append(a.free[c], base+uint64(i)*seg)
	}
}

// carve allocates address space for a new chunk, 16-byte aligned.
func (a *Allocator) carve(size uint64) uint64 {
	addr := a.nextAddr
	a.nextAddr += (size + 15) &^ 15
	return addr
}

func (a *Allocator) tick() {
	a.opCount++
	if a.sampleEvery <= 0 || a.opCount%int64(a.sampleEvery) != 0 {
		return
	}
	var s Sample
	s.Op = a.opCount
	for c := range sizeClasses {
		bytes := a.stats.LiveByClass[c] * int64(sizeClasses[c])
		switch {
		case sizeClasses[c] <= 32:
			s.Bands[0] += bytes
		case sizeClasses[c] <= 64:
			s.Bands[1] += bytes
		case sizeClasses[c] <= 96:
			s.Bands[2] += bytes
		case sizeClasses[c] <= 128:
			s.Bands[3] += bytes
		default:
			s.Bands[4] += bytes
		}
	}
	a.timeline = append(a.timeline, s)
}
