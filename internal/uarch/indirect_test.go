package uarch

import (
	"math/rand"
	"testing"
)

func TestRASBalancedCallsNeverMiss(t *testing.T) {
	r := NewRAS(16)
	for depth := 0; depth < 12; depth++ {
		r.Push(uint64(0x1000 + depth*8))
	}
	for depth := 11; depth >= 0; depth-- {
		if got := r.Pop(uint64(0x1000 + depth*8)); got != uint64(0x1000+depth*8) {
			t.Fatalf("pop at depth %d predicted %#x", depth, got)
		}
	}
	if r.Mispredicts != 0 {
		t.Errorf("balanced call tree should not mispredict: %d", r.Mispredicts)
	}
}

func TestRASOverflowCorruptsOldEntries(t *testing.T) {
	r := NewRAS(4)
	for i := 0; i < 8; i++ { // overflows by 4
		r.Push(uint64(0x2000 + i*8))
	}
	// The newest 4 survive...
	for i := 7; i >= 4; i-- {
		if got := r.Pop(uint64(0x2000 + i*8)); got != uint64(0x2000+i*8) {
			t.Fatalf("recent entry %d corrupted: %#x", i, got)
		}
	}
	// ...the older 4 were overwritten: pops underflow or mispredict.
	before := r.Mispredicts
	for i := 3; i >= 0; i-- {
		r.Pop(uint64(0x2000 + i*8))
	}
	if r.Mispredicts == before {
		t.Errorf("overflowed entries should mispredict")
	}
}

func TestRASUnderflow(t *testing.T) {
	r := NewRAS(8)
	if got := r.Pop(0x42); got != 0 {
		t.Errorf("underflow pop should predict 0, got %#x", got)
	}
	if r.Underflows != 1 || r.MispredictRate() != 1 {
		t.Errorf("underflow not counted: %+v", r)
	}
}

func TestITTAGEMonomorphicSite(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	miss := 0
	for i := 0; i < 1000; i++ {
		if !it.PredictAndUpdate(0x7f0000, 0x400100) {
			miss++
		}
	}
	if miss > 2 {
		t.Errorf("monomorphic site missed %d times, want ~1 (cold)", miss)
	}
}

func TestITTAGELearnsPathCorrelatedTargets(t *testing.T) {
	// A dispatch site whose target depends on the previous target — the
	// pattern path history captures and a plain BTB cannot.
	it := NewITTAGE(DefaultITTAGEConfig())
	targets := []uint64{0x400100, 0x400200, 0x400300}
	miss := 0
	cur := 0
	for i := 0; i < 6000; i++ {
		next := (cur + 1) % len(targets) // deterministic rotation
		ok := it.PredictAndUpdate(0x7f0008, targets[next])
		if i > 2000 && !ok {
			miss++
		}
		cur = next
	}
	rate := float64(miss) / 4000
	if rate > 0.10 {
		t.Errorf("rotating-target miss rate %0.3f after warmup, want < 0.10", rate)
	}
}

func TestITTAGEBeatsLastTargetOnAlternation(t *testing.T) {
	// Alternating targets defeat a last-target BTB (100% miss) but are
	// trivially path-predictable.
	it := NewITTAGE(DefaultITTAGEConfig())
	miss := 0
	for i := 0; i < 4000; i++ {
		tgt := uint64(0x400100)
		if i%2 == 1 {
			tgt = 0x400200
		}
		if !it.PredictAndUpdate(0x7f0010, tgt) && i > 1000 {
			miss++
		}
	}
	if rate := float64(miss) / 3000; rate > 0.15 {
		t.Errorf("alternating targets miss rate %0.3f, want well under 0.5 (last-target)", rate)
	}
}

func TestITTAGERandomTargetsNearChance(t *testing.T) {
	it := NewITTAGE(DefaultITTAGEConfig())
	rng := rand.New(rand.NewSource(5))
	targets := []uint64{0x1, 0x2, 0x3, 0x4}
	for i := 0; i < 4000; i++ {
		it.PredictAndUpdate(0x7f0018, targets[rng.Intn(4)])
	}
	if r := it.MispredictRate(); r < 0.5 {
		t.Errorf("uniform random over 4 targets should miss >= 50%%: %0.3f", r)
	}
}

func TestCharacterizeWithITTAGEReducesBubbles(t *testing.T) {
	cfg := DefaultCharacterizeConfig()
	cfg.Instructions = 1_000_000
	base := Characterize(PHPProfile("wordpress"), cfg)

	cfg.WithITTAGE = true
	ext := Characterize(PHPProfile("wordpress"), cfg)

	if ext.Stats.BTBMissPKI > base.Stats.BTBMissPKI {
		t.Errorf("ITTAGE should not increase front-end bubbles: %0.3f vs %0.3f",
			ext.Stats.BTBMissPKI, base.Stats.BTBMissPKI)
	}
	if base.Stats.IndirectPerKI <= 0 {
		t.Errorf("workload should contain indirect dispatch")
	}
	if ext.Stats.ITTAGEMiss >= base.Stats.IndirectBTBMiss {
		t.Errorf("ITTAGE should beat the BTB on dispatch sites: %0.3f vs %0.3f",
			ext.Stats.ITTAGEMiss, base.Stats.IndirectBTBMiss)
	}
}

func TestCharacterizeRASBehavesWell(t *testing.T) {
	cfg := DefaultCharacterizeConfig()
	cfg.Instructions = 800_000
	ch := Characterize(PHPProfile("wordpress"), cfg)
	// Returns are overwhelmingly predicted; only deep chains overflow.
	if ch.Stats.RASMispredicts > 0.25 {
		t.Errorf("RAS mispredict rate %0.3f implausibly high", ch.Stats.RASMispredicts)
	}
}
