package uarch

import (
	"math"
	"math/rand"
	"testing"
)

// --- TAGE ---

func TestTAGELearnsAlwaysTaken(t *testing.T) {
	bp := NewTAGE(DefaultTAGEConfig())
	for i := 0; i < 1000; i++ {
		bp.Predict(0x1000)
		bp.Update(0x1000, true)
	}
	if rate := bp.MispredictRate(); rate > 0.02 {
		t.Errorf("always-taken branch mispredict rate %0.3f, want ~0", rate)
	}
}

func TestTAGELearnsAlternatingPattern(t *testing.T) {
	// A T/NT alternation is trivially history-predictable; a bimodal
	// predictor alone would miss half of them.
	bp := NewTAGE(DefaultTAGEConfig())
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		bp.Predict(0x2000)
		bp.Update(0x2000, taken)
	}
	if rate := bp.MispredictRate(); rate > 0.10 {
		t.Errorf("alternating pattern mispredict rate %0.3f, want < 0.10", rate)
	}
}

func TestTAGELearnsLongPeriodPattern(t *testing.T) {
	// Period-7 loop branch: needs history, the tagged tables' job.
	bp := NewTAGE(DefaultTAGEConfig())
	mis := 0
	for i := 0; i < 20000; i++ {
		taken := i%7 != 6
		got := bp.Predict(0x3000)
		if got != taken && i > 4000 {
			mis++
		}
		bp.Update(0x3000, taken)
	}
	if rate := float64(mis) / 16000; rate > 0.05 {
		t.Errorf("period-7 mispredict rate after warmup %0.3f, want < 0.05", rate)
	}
}

func TestTAGECannotPredictRandom(t *testing.T) {
	bp := NewTAGE(DefaultTAGEConfig())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		bp.Predict(0x4000)
		bp.Update(0x4000, rng.Intn(2) == 0)
	}
	rate := bp.MispredictRate()
	if rate < 0.4 || rate > 0.6 {
		t.Errorf("random branch mispredict rate %0.3f, want ~0.5", rate)
	}
}

func TestTAGEMPKI(t *testing.T) {
	bp := NewTAGE(DefaultTAGEConfig())
	bp.Mispredicts = 50
	if got := bp.MPKI(10000); got != 5 {
		t.Errorf("MPKI = %v, want 5", got)
	}
	if (&TAGE{}).MPKI(0) != 0 {
		t.Errorf("zero instructions should give zero MPKI")
	}
}

// --- BTB ---

func TestBTBBasicHitMiss(t *testing.T) {
	b := NewBTB(1024, 2)
	if b.Lookup(0x100, 0x500) {
		t.Errorf("cold lookup should miss")
	}
	if !b.Lookup(0x100, 0x500) {
		t.Errorf("second lookup should hit")
	}
	if b.Lookup(0x100, 0x600) {
		t.Errorf("changed target should miss")
	}
	if !b.Lookup(0x100, 0x600) {
		t.Errorf("updated target should hit")
	}
}

func TestBTBCapacityPressure(t *testing.T) {
	small := NewBTB(256, 2)
	large := NewBTB(16384, 2)
	rng := rand.New(rand.NewSource(8))
	sites := make([]uint64, 2000)
	for i := range sites {
		sites[i] = uint64(0x1000 + i*4)
	}
	for i := 0; i < 100000; i++ {
		pc := sites[rng.Intn(len(sites))]
		small.Lookup(pc, pc+64)
		large.Lookup(pc, pc+64)
	}
	if small.HitRate() >= large.HitRate() {
		t.Errorf("larger BTB must have higher hit rate: %0.3f vs %0.3f",
			small.HitRate(), large.HitRate())
	}
	if large.HitRate() < 0.95 {
		t.Errorf("16K-entry BTB should capture a 2K working set: %0.3f", large.HitRate())
	}
}

func TestBTBEntries(t *testing.T) {
	if NewBTB(4096, 2).Entries() != 4096 {
		t.Errorf("Entries() wrong")
	}
}

// --- Caches ---

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache("L1", 32<<10, 64, 8, false, nil)
	if c.Access(0x1000) {
		t.Errorf("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Errorf("warm access should hit")
	}
	if !c.Access(0x1004) {
		t.Errorf("same line should hit")
	}
	if c.MissRate() != 1.0/3 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2-way, 2 sets: lines mapping to set 0 are multiples of 2*64.
	c := NewCache("tiny", 256, 64, 2, false, nil)
	c.Access(0x0000)
	c.Access(0x0080) // same set, second way
	c.Access(0x0000) // refresh LRU of first
	c.Access(0x0100) // evicts 0x0080
	if !c.Access(0x0000) {
		t.Errorf("recently used line evicted")
	}
	if c.Access(0x0080) {
		t.Errorf("LRU line should have been evicted")
	}
}

func TestNextLinePrefetch(t *testing.T) {
	c := NewCache("L1", 32<<10, 64, 8, true, nil)
	c.Access(0x1000) // miss, prefetches 0x1040
	if !c.Access(0x1040) {
		t.Errorf("sequential access should hit via prefetch")
	}
	if c.Prefetches == 0 {
		t.Errorf("prefetch counter not incremented")
	}
}

func TestHierarchyFiltersL2(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	rng := rand.New(rand.NewSource(3))
	// Small instruction working set: L1I captures it, L2 sees few misses.
	for i := 0; i < 200000; i++ {
		h.L1I.Access(uint64(0x400000 + rng.Intn(16<<10)))
	}
	if h.L1I.MissRate() > 0.01 {
		t.Errorf("16KB working set should fit 32KB L1I: %0.4f", h.L1I.MissRate())
	}
	if h.L2.Accesses > h.L1I.Misses+h.L2.Prefetches+1000 {
		t.Errorf("L2 sees more accesses than L1 misses: %d vs %d", h.L2.Accesses, h.L1I.Misses)
	}
}

// --- Synthesizer + characterization ---

func TestSynthDeterminism(t *testing.T) {
	p := PHPProfile("wordpress")
	count := func() (int64, uint64) {
		s := NewSynth(p, 42)
		var branches int64
		var sum uint64
		s.Run(100000, Hooks{
			OnCondBranch: func(pc uint64, taken bool) { branches++; sum += pc },
		})
		return branches, sum
	}
	b1, s1 := count()
	b2, s2 := count()
	if b1 != b2 || s1 != s2 {
		t.Errorf("synthesizer not deterministic: (%d,%d) vs (%d,%d)", b1, s1, b2, s2)
	}
}

func TestSynthBranchDensity(t *testing.T) {
	for _, tc := range []struct {
		p    Profile
		want float64
	}{
		{PHPProfile("wordpress"), 0.22},
		{SPECProfile(), 0.12},
	} {
		s := NewSynth(tc.p, 7)
		var branches, instrs int64
		instrs = s.Run(300000, Hooks{
			OnCondBranch: func(uint64, bool) { branches++ },
		})
		got := float64(branches) / float64(instrs)
		if math.Abs(got-tc.want) > 0.02 {
			t.Errorf("%s branch density %0.3f, want ~%0.2f", tc.p.Name, got, tc.want)
		}
	}
}

func TestCharacterizePHPBranchMPKINearPaper(t *testing.T) {
	// §2: branch MPKI of 17.26 / 14.48 / 15.14 for the three apps.
	want := map[string]float64{"wordpress": 17.26, "drupal": 14.48, "mediawiki": 15.14}
	for app, target := range want {
		cfg := DefaultCharacterizeConfig()
		cfg.Instructions = 1_500_000
		ch := Characterize(PHPProfile(app), cfg)
		if math.Abs(ch.Stats.BranchMPKI-target) > 4.5 {
			t.Errorf("%s branch MPKI %0.2f, want near %0.2f", app, ch.Stats.BranchMPKI, target)
		}
	}
}

func TestCharacterizeSPECFarMorePredictable(t *testing.T) {
	cfg := DefaultCharacterizeConfig()
	cfg.Instructions = 1_000_000
	php := Characterize(PHPProfile("wordpress"), cfg)
	spec := Characterize(SPECProfile(), cfg)
	if spec.Stats.BranchMPKI >= php.Stats.BranchMPKI/2 {
		t.Errorf("SPEC should be far more predictable: %0.2f vs %0.2f",
			spec.Stats.BranchMPKI, php.Stats.BranchMPKI)
	}
	if spec.Stats.BranchMPKI > 6 {
		t.Errorf("SPEC-like MPKI %0.2f, want near 2.9", spec.Stats.BranchMPKI)
	}
}

func TestSweepBTBMonotonicHitRate(t *testing.T) {
	points := SweepBTB(PHPProfile("wordpress"), []int{4096, 16384, 65536}, []int{32 << 10}, 800_000)
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].BTBHitRate < points[i-1].BTBHitRate {
			t.Errorf("BTB hit rate should grow with entries: %+v", points)
		}
		if points[i].ExecCycles > points[i-1].ExecCycles {
			t.Errorf("exec time should fall with bigger BTB: %+v", points)
		}
	}
}

func TestSweepCoresShape(t *testing.T) {
	// Fig. 2c: in-order -> OoO is a big jump, 2->4 wide helps, 4->8 is
	// nearly flat (<3% in the paper; we allow <6%).
	points := SweepCores(PHPProfile("wordpress"), 800_000)
	if len(points) != 4 {
		t.Fatalf("got %d core points", len(points))
	}
	io2, ooo2, ooo4, ooo8 := points[0].ExecCycles, points[1].ExecCycles, points[2].ExecCycles, points[3].ExecCycles
	if ooo2 >= io2 {
		t.Errorf("OoO should beat in-order: %0.0f vs %0.0f", ooo2, io2)
	}
	if ooo4 >= ooo2 {
		t.Errorf("4-wide should beat 2-wide: %0.0f vs %0.0f", ooo4, ooo2)
	}
	gain := (ooo4 - ooo8) / ooo4
	if gain < 0 || gain > 0.06 {
		t.Errorf("8-wide gain should be tiny: %0.3f", gain)
	}
}

func BenchmarkCharacterize(b *testing.B) {
	p := PHPProfile("wordpress")
	cfg := DefaultCharacterizeConfig()
	cfg.Instructions = 200_000
	for i := 0; i < b.N; i++ {
		Characterize(p, cfg)
	}
}
