// Package uarch implements the microarchitectural models behind the
// paper's Section 2 characterization: a TAGE branch predictor, a
// set-associative branch target buffer, a multi-level cache hierarchy
// with next-line prefetchers, and an analytical pipeline throughput model
// for in-order and out-of-order cores. A trace synthesizer generates
// instruction streams with the statistical character the paper reports
// for real-world PHP applications (22% branches, heavily data-dependent;
// hundreds of compact leaf functions) and for SPEC-like workloads.
package uarch

// TAGE is a tagged-geometric-history branch predictor (Seznec, the
// paper's §2 configuration with a 32KB storage budget). It implements
// the standard provider/alternate prediction, useful counters, and
// allocate-on-mispredict policy.
type TAGE struct {
	base []int8 // bimodal base predictor, 2-bit counters

	tables []tageTable
	ghist  uint64 // global history (newest bit = LSB)

	// prediction bookkeeping between Predict and Update
	provider    int // table index of provider, -1 = base
	providerIdx uint32
	altPred     bool
	predTaken   bool

	useAltOnNA int8 // use-alt-on-newly-allocated counter

	// Stats
	Lookups     int64
	Mispredicts int64
}

type tageTable struct {
	histLen int
	tagBits uint32
	entries []tageEntry
	mask    uint32
}

type tageEntry struct {
	ctr    int8 // 3-bit signed counter
	tag    uint16
	useful int8
}

// TAGEConfig sizes the predictor.
type TAGEConfig struct {
	BaseEntries  int   // bimodal table entries
	TableEntries int   // entries per tagged table
	HistLens     []int // geometric history lengths
}

// DefaultTAGEConfig approximates a 32KB TAGE: 16K-entry bimodal plus six
// tagged tables of 2K entries with geometric histories.
func DefaultTAGEConfig() TAGEConfig {
	return TAGEConfig{
		BaseEntries:  16384,
		TableEntries: 2048,
		HistLens:     []int{4, 9, 18, 35, 70, 130},
	}
}

// NewTAGE builds a predictor.
func NewTAGE(cfg TAGEConfig) *TAGE {
	if cfg.BaseEntries <= 0 {
		cfg = DefaultTAGEConfig()
	}
	t := &TAGE{base: make([]int8, cfg.BaseEntries)}
	for i := range t.base {
		t.base[i] = 1 // weakly not-taken... start weakly taken below
	}
	for _, hl := range cfg.HistLens {
		t.tables = append(t.tables, tageTable{
			histLen: hl,
			tagBits: 11,
			entries: make([]tageEntry, cfg.TableEntries),
			mask:    uint32(cfg.TableEntries - 1),
		})
	}
	return t
}

// foldHistory folds histLen bits of global history into width bits.
func (t *TAGE) foldHistory(histLen, width int) uint32 {
	var f uint32
	h := t.ghist
	for bits := 0; bits < histLen; bits += width {
		take := width
		if histLen-bits < take {
			take = histLen - bits
		}
		f ^= uint32(h) & ((1 << uint(take)) - 1)
		h >>= uint(take)
	}
	return f
}

func (t *TAGE) index(ti int, pc uint64) uint32 {
	tbl := &t.tables[ti]
	h := t.foldHistory(tbl.histLen, 11)
	return (uint32(pc>>2) ^ uint32(pc>>13) ^ h ^ uint32(ti)*0x9e37) & tbl.mask
}

func (t *TAGE) tag(ti int, pc uint64) uint16 {
	tbl := &t.tables[ti]
	h := t.foldHistory(tbl.histLen, int(tbl.tagBits))
	return uint16((uint32(pc>>2) ^ h*3 ^ uint32(ti)*0x811c) & ((1 << tbl.tagBits) - 1))
}

func (t *TAGE) baseIndex(pc uint64) int {
	return int(pc>>2) & (len(t.base) - 1)
}

// Predict returns the predicted direction for the branch at pc.
func (t *TAGE) Predict(pc uint64) bool {
	t.Lookups++
	t.provider = -1
	alt := -1
	for i := len(t.tables) - 1; i >= 0; i-- {
		idx := t.index(i, pc)
		e := &t.tables[i].entries[idx]
		if e.tag == t.tag(i, pc) {
			if t.provider < 0 {
				t.provider = i
				t.providerIdx = idx
			} else if alt < 0 {
				alt = i
			}
		}
	}
	basePred := t.base[t.baseIndex(pc)] >= 2
	t.altPred = basePred
	if alt >= 0 {
		e := &t.tables[alt].entries[t.index(alt, pc)]
		t.altPred = e.ctr >= 0
	}
	if t.provider >= 0 {
		e := &t.tables[t.provider].entries[t.providerIdx]
		// Newly allocated, weak entries may defer to the alternate.
		weak := e.ctr == 0 || e.ctr == -1
		if weak && e.useful == 0 && t.useAltOnNA >= 0 {
			t.predTaken = t.altPred
		} else {
			t.predTaken = e.ctr >= 0
		}
		return t.predTaken
	}
	t.predTaken = basePred
	return t.predTaken
}

// Update trains the predictor with the branch outcome. Call immediately
// after Predict for the same branch.
func (t *TAGE) Update(pc uint64, taken bool) {
	if t.predTaken != taken {
		t.Mispredicts++
	}
	// Provider update.
	if t.provider >= 0 {
		e := &t.tables[t.provider].entries[t.providerIdx]
		provPred := e.ctr >= 0
		if provPred != t.altPred {
			if provPred == taken && e.useful < 3 {
				e.useful++
			} else if provPred != taken && e.useful > 0 {
				e.useful--
			}
		}
		if weakNA := (e.ctr == 0 || e.ctr == -1) && e.useful == 0; weakNA {
			if t.altPred == taken && t.useAltOnNA < 7 {
				t.useAltOnNA++
			} else if t.altPred != taken && t.useAltOnNA > -8 {
				t.useAltOnNA--
			}
		}
		e.ctr = satUpdate3(e.ctr, taken)
	} else {
		bi := t.baseIndex(pc)
		t.base[bi] = satUpdate2(t.base[bi], taken)
	}

	// Allocate on misprediction in a longer-history table.
	if t.predTaken != taken && t.provider < len(t.tables)-1 {
		allocated := false
		for i := t.provider + 1; i < len(t.tables); i++ {
			idx := t.index(i, pc)
			e := &t.tables[i].entries[idx]
			if e.useful == 0 {
				e.tag = t.tag(i, pc)
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				e.useful = 0
				allocated = true
				break
			}
		}
		if !allocated {
			// Decay useful bits so future allocations succeed.
			for i := t.provider + 1; i < len(t.tables); i++ {
				idx := t.index(i, pc)
				if e := &t.tables[i].entries[idx]; e.useful > 0 {
					e.useful--
				}
			}
		}
	}

	// History update.
	t.ghist = t.ghist<<1 | b2u(taken)
}

// MPKI returns mispredictions per kilo-instruction given the total
// instruction count the branch stream was drawn from.
func (t *TAGE) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(t.Mispredicts) / float64(instructions)
}

// MispredictRate returns the per-branch misprediction rate.
func (t *TAGE) MispredictRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Mispredicts) / float64(t.Lookups)
}

func satUpdate3(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > -4 {
		return c - 1
	}
	return c
}

func satUpdate2(c int8, taken bool) int8 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
