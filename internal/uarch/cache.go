package uarch

// Cache is one set-associative cache level with LRU replacement and an
// optional next-line prefetcher, matching the paper's "aggressive memory
// system with prefetchers at every cache level".
type Cache struct {
	name     string
	lineBits uint
	sets     int
	ways     int
	tags     [][]uint64
	lru      [][]uint64
	clock    uint64
	prefetch bool
	next     *Cache // next level (nil = memory)

	Accesses   int64
	Misses     int64
	Prefetches int64
}

// NewCache builds a cache of size bytes with the given line size and
// associativity, forwarding misses to next (nil for memory).
func NewCache(name string, size, lineSize, ways int, prefetch bool, next *Cache) *Cache {
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	sets := size / lineSize / ways
	if sets <= 0 {
		sets = 1
	}
	c := &Cache{name: name, lineBits: lineBits, sets: sets, ways: ways, prefetch: prefetch, next: next}
	c.tags = make([][]uint64, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Access touches addr, recursing into lower levels on a miss. It returns
// true on hit at this level.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	hit := c.touch(line, true)
	if !hit {
		c.Misses++
		if c.next != nil {
			c.next.Access(addr)
		}
		if c.prefetch {
			c.Prefetches++
			c.touch(line+1, false)
			if c.next != nil && !c.present(line+1) {
				// Prefetch fill from below without polluting miss stats.
				c.next.touch((line+1)<<c.lineBits>>c.next.lineBits, false)
			}
		}
	}
	return hit
}

// touch looks up and installs a line. countAccess controls whether the
// access statistics are charged (prefetches are not).
func (c *Cache) touch(line uint64, countAccess bool) bool {
	if countAccess {
		c.Accesses++
	}
	c.clock++
	s := int(line % uint64(c.sets))
	tag := line/uint64(c.sets) + 1 // +1 so 0 means invalid
	for w := 0; w < c.ways; w++ {
		if c.tags[s][w] == tag {
			c.lru[s][w] = c.clock
			return true
		}
	}
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.lru[s][w] < c.lru[s][victim] {
			victim = w
		}
	}
	c.tags[s][victim] = tag
	c.lru[s][victim] = c.clock
	return false
}

func (c *Cache) present(line uint64) bool {
	s := int(line % uint64(c.sets))
	tag := line/uint64(c.sets) + 1
	for w := 0; w < c.ways; w++ {
		if c.tags[s][w] == tag {
			return true
		}
	}
	return false
}

// MPKI returns misses per kilo-instruction.
func (c *Cache) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(c.Misses) / float64(instructions)
}

// MissRate returns the per-access miss rate.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy is the simulated L1I/L1D/shared-L2 memory system.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
}

// HierarchyConfig sizes the memory system.
type HierarchyConfig struct {
	L1ISize, L1DSize, L2Size int
	LineSize                 int
	L1Ways, L2Ways           int
}

// DefaultHierarchyConfig matches the simulated Xeon-like server core.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1ISize: 32 << 10, L1DSize: 32 << 10, L2Size: 1 << 20,
		LineSize: 64, L1Ways: 8, L2Ways: 16,
	}
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.LineSize == 0 {
		cfg = DefaultHierarchyConfig()
	}
	l2 := NewCache("L2", cfg.L2Size, cfg.LineSize, cfg.L2Ways, true, nil)
	return &Hierarchy{
		L1I: NewCache("L1I", cfg.L1ISize, cfg.LineSize, cfg.L1Ways, true, l2),
		L1D: NewCache("L1D", cfg.L1DSize, cfg.LineSize, cfg.L1Ways, true, l2),
		L2:  l2,
	}
}
