package uarch

// RAS is a return address stack: the structure that predicts return
// targets so they never burden the BTB. The model includes the classic
// failure mode — overflow on deep call chains wraps around and corrupts
// the oldest entries.
type RAS struct {
	stack []uint64
	top   int // index of next push slot
	depth int // live entries (<= cap)

	Pushes      int64
	Pops        int64
	Mispredicts int64 // popped target != actual return target
	Underflows  int64
}

// NewRAS builds a return address stack with the given capacity
// (16 entries is typical of server cores).
func NewRAS(entries int) *RAS {
	if entries <= 0 {
		entries = 16
	}
	return &RAS{stack: make([]uint64, entries)}
}

// Push records a call's return address.
func (r *RAS) Push(returnAddr uint64) {
	r.Pushes++
	r.stack[r.top] = returnAddr
	r.top = (r.top + 1) % len(r.stack)
	if r.depth < len(r.stack) {
		r.depth++
	}
	// else: overflow silently overwrote the oldest entry
}

// Pop predicts a return target and checks it against the actual one.
// It returns the prediction (0 on underflow).
func (r *RAS) Pop(actual uint64) uint64 {
	r.Pops++
	if r.depth == 0 {
		r.Underflows++
		r.Mispredicts++
		return 0
	}
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	pred := r.stack[r.top]
	if pred != actual {
		r.Mispredicts++
	}
	return pred
}

// MispredictRate returns the fraction of pops that mispredicted.
func (r *RAS) MispredictRate() float64 {
	if r.Pops == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Pops)
}

// ITTAGE is a tagged geometric-history indirect target predictor — the
// class of front-end improvement the paper's §2 points to for the
// megamorphic dispatch sites that defeat a plain BTB. A base table
// (last-target per site) is backed by tagged tables indexed with
// progressively longer global path history.
type ITTAGE struct {
	base      map[uint64]uint64 // site pc -> last target
	tbls      []ittageTable
	phist     uint64 // path history of recent indirect targets
	allocTick uint64 // round-robin allocation cursor

	Lookups     int64
	Mispredicts int64
}

type ittageTable struct {
	histLen int
	entries []ittageEntry
	mask    uint32
}

type ittageEntry struct {
	tag    uint16
	target uint64
	conf   int8 // confidence counter
}

// ITTAGEConfig sizes the predictor.
type ITTAGEConfig struct {
	TableEntries int
	HistLens     []int
}

// DefaultITTAGEConfig returns a small, server-core-sized predictor.
func DefaultITTAGEConfig() ITTAGEConfig {
	return ITTAGEConfig{TableEntries: 1024, HistLens: []int{1, 2, 3, 6}}
}

// NewITTAGE builds the predictor.
func NewITTAGE(cfg ITTAGEConfig) *ITTAGE {
	if cfg.TableEntries <= 0 {
		cfg = DefaultITTAGEConfig()
	}
	it := &ITTAGE{base: make(map[uint64]uint64)}
	for _, hl := range cfg.HistLens {
		it.tbls = append(it.tbls, ittageTable{
			histLen: hl,
			entries: make([]ittageEntry, cfg.TableEntries),
			mask:    uint32(cfg.TableEntries - 1),
		})
	}
	return it
}

// fold compresses the last histLen targets (8 bits each) of path history
// into 16 bits. Masking to the table's history length is what gives the
// short tables their generalization: the shortest table keys on just the
// previous target, exactly the context a dispatch-loop transition needs.
func (it *ITTAGE) fold(histLen int) uint32 {
	bits := uint(histLen * 8)
	h := it.phist
	if bits < 64 {
		h &= (1 << bits) - 1
	}
	var f uint32
	for h != 0 {
		f ^= uint32(h) & 0xffff
		h >>= 16
	}
	return f
}

func (it *ITTAGE) index(ti int, pc uint64) uint32 {
	t := &it.tbls[ti]
	return (uint32(pc>>3) ^ it.fold(t.histLen)*2654435761 ^ uint32(ti)<<7) & t.mask
}

func (it *ITTAGE) tag(ti int, pc uint64) uint16 {
	return uint16((pc>>3)^uint64(it.fold(it.tbls[ti].histLen))*31^uint64(ti)<<11) | 1
}

// PredictAndUpdate predicts the target of the indirect branch at pc,
// trains on the actual target, and reports whether the prediction was
// correct.
func (it *ITTAGE) PredictAndUpdate(pc, actual uint64) bool {
	it.Lookups++
	// Longest matching tagged table provides.
	provider := -1
	var pidx uint32
	for i := len(it.tbls) - 1; i >= 0; i-- {
		idx := it.index(i, pc)
		if it.tbls[i].entries[idx].tag == it.tag(i, pc) {
			provider = i
			pidx = idx
			break
		}
	}
	var pred uint64
	if provider >= 0 {
		pred = it.tbls[provider].entries[pidx].target
	} else {
		pred = it.base[pc]
	}
	correct := pred == actual
	if !correct {
		it.Mispredicts++
	}

	// Train.
	if provider >= 0 {
		e := &it.tbls[provider].entries[pidx]
		if e.target == actual {
			if e.conf < 7 {
				e.conf++
			}
		} else {
			if e.conf > 0 {
				e.conf--
			} else {
				e.target = actual
				e.conf = 1
			}
		}
	}
	it.base[pc] = actual
	if !correct && provider < len(it.tbls)-1 {
		// Allocate in ONE longer-history table (round-robin), decaying
		// only that slot if it is still useful. Allocating or decaying
		// everywhere would let irreducible mispredictions churn out the
		// entries that are doing their job.
		it.allocTick++
		span := len(it.tbls) - provider - 1
		i := provider + 1 + int(it.allocTick%uint64(span))
		idx := it.index(i, pc)
		e := &it.tbls[i].entries[idx]
		if e.conf <= 0 {
			e.tag = it.tag(i, pc)
			e.target = actual
			e.conf = 1
		} else {
			e.conf--
		}
	}
	// Path history: fold in a hash of the target so that targets
	// differing only in high bits still produce distinct history.
	h := actual * 0x9e3779b97f4a7c15
	it.phist = it.phist<<8 | (h>>56)&0xff
	return correct
}

// MispredictRate returns the per-lookup misprediction rate.
func (it *ITTAGE) MispredictRate() float64 {
	if it.Lookups == 0 {
		return 0
	}
	return float64(it.Mispredicts) / float64(it.Lookups)
}
