package uarch

// Characterization runs a synthesized workload stream through the full
// model set — TAGE, BTB, cache hierarchy — and collects the Section 2
// statistics.
type Characterization struct {
	Profile Profile
	Stats   StreamStats
}

// CharacterizeConfig parameterizes one characterization run.
type CharacterizeConfig struct {
	Instructions int64
	Seed         int64
	BTBEntries   int
	BTBWays      int
	TAGE         TAGEConfig
	Hierarchy    HierarchyConfig
	RASEntries   int
	WithITTAGE   bool // add the indirect target predictor (§2 extension)
	ITTAGE       ITTAGEConfig
}

// DefaultCharacterizeConfig is the baseline server-core configuration:
// 32KB TAGE, 4K-entry 2-way BTB, 32K/32K/1M caches.
func DefaultCharacterizeConfig() CharacterizeConfig {
	return CharacterizeConfig{
		Instructions: 2_000_000,
		Seed:         1,
		BTBEntries:   4096,
		BTBWays:      2,
		TAGE:         DefaultTAGEConfig(),
		Hierarchy:    DefaultHierarchyConfig(),
		RASEntries:   16,
		ITTAGE:       DefaultITTAGEConfig(),
	}
}

// Characterize runs the models over a synthesized stream.
func Characterize(p Profile, cfg CharacterizeConfig) Characterization {
	if cfg.Instructions == 0 {
		cfg = DefaultCharacterizeConfig()
	}
	bp := NewTAGE(cfg.TAGE)
	btb := NewBTB(cfg.BTBEntries, cfg.BTBWays)
	hier := NewHierarchy(cfg.Hierarchy)
	ras := NewRAS(cfg.RASEntries)
	var itp *ITTAGE
	if cfg.WithITTAGE {
		itp = NewITTAGE(cfg.ITTAGE)
	}
	synth := NewSynth(p, cfg.Seed)

	var btbMisses, indirect, indirectBTBMiss int64
	n := synth.Run(cfg.Instructions, Hooks{
		OnFetch: func(pc uint64) { hier.L1I.Access(pc) },
		OnCondBranch: func(pc uint64, taken bool) {
			bp.Predict(pc)
			bp.Update(pc, taken)
		},
		OnTakenBranch: func(pc, target uint64) {
			if !btb.Lookup(pc, target) {
				btbMisses++
				if pc >= dispatchBase {
					indirectBTBMiss++
				}
			}
		},
		OnData:   func(addr uint64, write bool) { hier.L1D.Access(addr) },
		OnCall:   func(ret uint64) { ras.Push(ret) },
		OnReturn: func(actual uint64) { ras.Pop(actual) },
		OnIndirect: func(site, target uint64) {
			indirect++
			if itp != nil {
				itp.PredictAndUpdate(site, target)
			}
		},
	})

	st := StreamStats{
		Instructions:    n,
		BranchMPKI:      bp.MPKI(n),
		BTBMissPKI:      1000 * float64(btbMisses) / float64(n),
		L1IMPKI:         hier.L1I.MPKI(n),
		L1DMPKI:         hier.L1D.MPKI(n),
		L2MPKI:          hier.L2.MPKI(n),
		BTBHitRate:      btb.HitRate(),
		RASMispredicts:  ras.MispredictRate(),
		IndirectPerKI:   1000 * float64(indirect) / float64(n),
		IndirectBTBMiss: rate(indirectBTBMiss, indirect),
	}
	if itp != nil {
		st.ITTAGEMiss = itp.MispredictRate()
		// An indirect target predictor replaces the BTB for dispatch
		// sites: rescued misses come off the front-end bubble count.
		rescued := float64(indirectBTBMiss) - float64(itp.Mispredicts)
		if rescued > 0 {
			st.BTBMissPKI -= 1000 * rescued / float64(n)
		}
	}
	return Characterization{Profile: p, Stats: st}
}

// dispatchBase is the code address region of the megamorphic dispatch
// sites the synthesizer emits.
const dispatchBase = 0x7f0000

func rate(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// BTBSweepPoint is one cell of the Fig. 2a surface.
type BTBSweepPoint struct {
	BTBEntries int
	L1ISize    int
	ExecCycles float64
	BTBHitRate float64
}

// SweepBTB reproduces Fig. 2a: execution time as the BTB grows from 4K to
// 64K entries for several instruction cache sizes, on the 4-wide OoO
// baseline core.
func SweepBTB(p Profile, btbSizes []int, icacheSizes []int, instructions int64) []BTBSweepPoint {
	var out []BTBSweepPoint
	costs := DefaultPipelineCosts()
	core := CoreModels()[2] // 4-wide OoO
	for _, ic := range icacheSizes {
		for _, be := range btbSizes {
			cfg := DefaultCharacterizeConfig()
			cfg.Instructions = instructions
			cfg.BTBEntries = be
			cfg.Hierarchy.L1ISize = ic
			ch := Characterize(p, cfg)
			out = append(out, BTBSweepPoint{
				BTBEntries: be,
				L1ISize:    ic,
				ExecCycles: ExecCycles(core, p.ILP, ch.Stats, costs),
				BTBHitRate: ch.Stats.BTBHitRate,
			})
		}
	}
	return out
}

// CoreSweepPoint is one bar of Fig. 2c.
type CoreSweepPoint struct {
	Core       CoreModel
	ExecCycles float64
}

// SweepCores reproduces Fig. 2c: execution time across the four core
// configurations.
func SweepCores(p Profile, instructions int64) []CoreSweepPoint {
	cfg := DefaultCharacterizeConfig()
	cfg.Instructions = instructions
	ch := Characterize(p, cfg)
	costs := DefaultPipelineCosts()
	var out []CoreSweepPoint
	for _, core := range CoreModels() {
		out = append(out, CoreSweepPoint{Core: core, ExecCycles: ExecCycles(core, p.ILP, ch.Stats, costs)})
	}
	return out
}
