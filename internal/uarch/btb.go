package uarch

// BTB is a set-associative branch target buffer with LRU replacement,
// configured like the one the paper simulates ("resembles the BTB found
// in modern Intel server cores with 4K entries and 2-way set
// associativity", swept up to 64K entries for Fig. 2a).
type BTB struct {
	sets  int
	ways  int
	tags  [][]uint64
	tgt   [][]uint64
	lru   [][]uint64
	clock uint64

	Lookups int64
	Hits    int64
}

// NewBTB builds a BTB with the given total entries and associativity.
func NewBTB(entries, ways int) *BTB {
	if ways <= 0 {
		ways = 2
	}
	sets := entries / ways
	if sets <= 0 {
		sets = 1
	}
	b := &BTB{sets: sets, ways: ways}
	b.tags = make([][]uint64, sets)
	b.tgt = make([][]uint64, sets)
	b.lru = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		b.tags[i] = make([]uint64, ways)
		b.tgt[i] = make([]uint64, ways)
		b.lru[i] = make([]uint64, ways)
	}
	return b
}

// Entries returns the BTB capacity.
func (b *BTB) Entries() int { return b.sets * b.ways }

func (b *BTB) set(pc uint64) int {
	return int((pc >> 2) % uint64(b.sets))
}

// Lookup predicts the target of the branch at pc. It returns the
// predicted target and whether the entry was present with the correct
// target recorded.
func (b *BTB) Lookup(pc, actualTarget uint64) bool {
	b.Lookups++
	b.clock++
	s := b.set(pc)
	for w := 0; w < b.ways; w++ {
		if b.tags[s][w] == pc && b.tags[s][w] != 0 {
			b.lru[s][w] = b.clock
			if b.tgt[s][w] == actualTarget {
				b.Hits++
				return true
			}
			// Target mispredict: update in place.
			b.tgt[s][w] = actualTarget
			return false
		}
	}
	// Miss: install, evicting LRU.
	victim := 0
	for w := 1; w < b.ways; w++ {
		if b.lru[s][w] < b.lru[s][victim] {
			victim = w
		}
	}
	b.tags[s][victim] = pc
	b.tgt[s][victim] = actualTarget
	b.lru[s][victim] = b.clock
	return false
}

// HitRate returns the fraction of lookups that hit with correct targets.
func (b *BTB) HitRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Lookups)
}
