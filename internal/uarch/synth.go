package uarch

import (
	"math"
	"math/rand"
)

// Profile parameterizes the trace synthesizer with the statistical
// character of a workload class. The PHP numbers follow the paper's §2
// measurements: about 22% of dynamic instructions are branches (versus
// 12% for SPEC CPU2006), a large fraction of them data-dependent with
// outcomes driven by unpredictable request data, spread over hundreds of
// compact leaf functions with a flat invocation profile.
type Profile struct {
	Name string

	Funcs    int // distinct leaf functions
	BodyMin  int // instructions per function body
	BodyMax  int
	CallZipf float64 // function popularity skew (small = flat profile)

	BranchFrac    float64 // fraction of instructions that are branches
	DataDepFrac   float64 // fraction of branches that are data-dependent
	DataDepTakenP float64 // taken probability of data-dependent branches
	BiasP         float64 // taken probability of biased branches

	IndirectFrac float64 // fraction of calls through megamorphic dispatch
	DispatchFan  int     // distinct targets per indirect dispatch site
	CallFan      int     // static call sites per function (direct-call out-degree)

	DataWorkingSet int     // bytes of data touched
	DataLocality   float64 // probability a data access stays near the last

	ILP float64 // exploitable instruction-level parallelism
}

// PHPProfile returns the synthesizer profile for one of the studied
// applications. The three differ slightly in measured branch MPKI
// (17.26 / 14.48 / 15.14 in §2), which maps to data-dependence fractions.
func PHPProfile(app string) Profile {
	p := Profile{
		Name:           app,
		Funcs:          500,
		BodyMin:        20,
		BodyMax:        90,
		CallZipf:       0.95,
		BranchFrac:     0.22,
		DataDepFrac:    0.10,
		DataDepTakenP:  0.5,
		BiasP:          0.97,
		IndirectFrac:   0.15,
		DispatchFan:    24,
		CallFan:        6,
		DataWorkingSet: 4 << 20,
		DataLocality:   0.98,
		ILP:            3.1,
	}
	// Calibrated so TAGE lands near the paper's measured MPKI of
	// 17.26 / 14.48 / 15.14 for the three applications.
	switch app {
	case "wordpress":
		p.DataDepFrac = 0.113
	case "drupal":
		p.DataDepFrac = 0.086
	case "mediawiki":
		p.DataDepFrac = 0.092
	}
	return p
}

// SPECProfile returns a SPEC-CPU2006-like profile: fewer branches, far
// more predictable, a hot-spotted function profile.
func SPECProfile() Profile {
	return Profile{
		Name:           "spec",
		Funcs:          60,
		BodyMin:        80,
		BodyMax:        400,
		CallZipf:       1.3,
		BranchFrac:     0.12,
		DataDepFrac:    0.02,
		DataDepTakenP:  0.5,
		BiasP:          0.985,
		IndirectFrac:   0.02,
		DispatchFan:    3,
		CallFan:        3,
		DataWorkingSet: 2 << 20,
		DataLocality:   0.98,
		ILP:            3.6,
	}
}

// SPECWebProfile returns a SPECWeb2005-like profile: web-server code with
// JIT-compiled hotspots (Fig. 1's banking/e-commerce contrast).
func SPECWebProfile(kind string) Profile {
	p := SPECProfile()
	p.Name = "specweb-" + kind
	p.Funcs = 120
	p.CallZipf = 1.5
	p.BranchFrac = 0.15
	p.DataDepFrac = 0.05
	return p
}

// instrKind classifies one static instruction slot.
type instrKind uint8

const (
	kindALU instrKind = iota
	kindBranchBiased
	kindBranchDataDep
	kindMem
)

// instr is one static instruction of the synthetic program. The program
// structure is fixed at construction — each PC has one kind and each
// branch site one bias — so the predictor sees realistic per-site
// behaviour instead of noise.
type instr struct {
	kind   instrKind
	takenP float64 // biased branches: per-site taken probability
	wrP    float64 // memory: write probability
}

// Synth walks a synthetic program built from the profile and feeds the
// microarchitectural models. It is deterministic for a given seed.
type Synth struct {
	p   Profile
	rng *rand.Rand

	funcPC   []uint64  // code base address per function
	bodies   [][]instr // static instruction slots per function
	callee   [][]int   // static direct-call targets per function (one per call site)
	zipfCum  []float64
	lastData uint64

	// Megamorphic dispatch sites: each cycles through a short target
	// sequence most of the time (repeated bytecode runs — predictable
	// from path history) with occasional data-dependent jumps.
	dispatchSeq  [][]int
	dispatchPos  []int
	lastDispatch int // current bursty dispatch site, -1 when none
}

// NewSynth builds a synthesizer.
func NewSynth(p Profile, seed int64) *Synth {
	s := &Synth{p: p, rng: rand.New(rand.NewSource(seed)), lastDispatch: -1}
	s.funcPC = make([]uint64, p.Funcs)
	s.bodies = make([][]instr, p.Funcs)
	pc := uint64(0x400000)
	for i := 0; i < p.Funcs; i++ {
		s.funcPC[i] = pc
		bodyLen := p.BodyMin + s.rng.Intn(p.BodyMax-p.BodyMin+1)
		body := make([]instr, bodyLen)
		for j := range body {
			r := s.rng.Float64()
			switch {
			case r < p.BranchFrac*p.DataDepFrac:
				body[j] = instr{kind: kindBranchDataDep, takenP: p.DataDepTakenP}
			case r < p.BranchFrac:
				// Per-site bias: most sites are near-deterministic (loop
				// exits, error checks), the rest follow BiasP.
				tp := p.BiasP
				if s.rng.Intn(5) != 0 {
					tp = 0.998
				}
				if s.rng.Intn(8) == 0 {
					tp = 1 - tp // some mostly-not-taken sites
				}
				body[j] = instr{kind: kindBranchBiased, takenP: tp}
			case r < p.BranchFrac+0.30:
				body[j] = instr{kind: kindMem, wrP: 0.35}
			default:
				body[j] = instr{kind: kindALU}
			}
		}
		s.bodies[i] = body
		pc += uint64(bodyLen*4) + 64 // padding between functions
	}
	// Static direct-call targets: each function has CallFan call sites and
	// each site's target never changes between executions (varying-callee
	// transfers are returns, which the return address stack predicts, not
	// the BTB). Execution picks among a function's sites, a random walk
	// over the static call graph.
	fan := p.CallFan
	if fan <= 0 {
		fan = 4
	}
	s.callee = make([][]int, p.Funcs)
	for i := range s.callee {
		s.callee[i] = make([]int, fan)
		for j := range s.callee[i] {
			s.callee[i][j] = s.rng.Intn(p.Funcs)
		}
	}
	// Dispatch site target sequences: a handful of central dispatch
	// sites, as in an interpreter/VM dispatch loop.
	s.dispatchSeq = make([][]int, 8)
	s.dispatchPos = make([]int, 8)
	for i := range s.dispatchSeq {
		fanOut := p.DispatchFan
		if fanOut <= 0 {
			fanOut = 4
		}
		if fanOut > 6 {
			fanOut = 6
		}
		seq := make([]int, fanOut)
		for j := range seq {
			seq[j] = s.rng.Intn(p.Funcs)
		}
		s.dispatchSeq[i] = seq
	}
	// Zipf CDF over function popularity.
	s.zipfCum = make([]float64, p.Funcs)
	sum := 0.0
	for i := 0; i < p.Funcs; i++ {
		sum += 1 / math.Pow(float64(i+1), p.CallZipf)
		s.zipfCum[i] = sum
	}
	for i := range s.zipfCum {
		s.zipfCum[i] /= sum
	}
	return s
}

func (s *Synth) pickFunc() int {
	x := s.rng.Float64()
	lo, hi := 0, len(s.zipfCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.zipfCum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Hooks receives the synthesized event stream.
type Hooks struct {
	// OnFetch fires for every instruction fetch address.
	OnFetch func(pc uint64)
	// OnCondBranch fires for conditional branches with their outcome.
	OnCondBranch func(pc uint64, taken bool)
	// OnTakenBranch fires for every taken control transfer with its
	// target (what the BTB must predict).
	OnTakenBranch func(pc, target uint64)
	// OnData fires for data accesses.
	OnData func(addr uint64, write bool)
	// OnCall fires when a call pushes a return address (RAS push).
	OnCall func(returnAddr uint64)
	// OnReturn fires when a return consumes a return address (RAS pop);
	// actual is the true return target.
	OnReturn func(actual uint64)
	// OnIndirect fires for megamorphic dispatch transfers with their
	// resolved target — the stream an indirect target predictor sees.
	OnIndirect func(site, target uint64)
}

// Run synthesizes approximately n instructions through the hooks,
// returning the exact count executed.
func (s *Synth) Run(n int64, h Hooks) int64 {
	var executed int64
	// Call-stack walk: calls push return addresses, returns pop them, so
	// the RAS model sees a realistic push/pop stream. Depth is bounded;
	// bursts beyond the RAS capacity exercise its overflow wraparound.
	type frame struct {
		fi      int
		retAddr uint64
	}
	var stack []frame
	fi := s.pickFunc()
	for executed < n {
		base := s.funcPC[fi]
		body := s.bodies[fi]
		for i := 0; i < len(body) && executed < n; i++ {
			pc := base + uint64(i*4)
			if h.OnFetch != nil {
				h.OnFetch(pc)
			}
			executed++
			ins := &body[i]
			switch ins.kind {
			case kindBranchBiased, kindBranchDataDep:
				taken := s.rng.Float64() < ins.takenP
				if h.OnCondBranch != nil {
					h.OnCondBranch(pc, taken)
				}
				if taken && h.OnTakenBranch != nil {
					// Short forward branch within the body.
					h.OnTakenBranch(pc, pc+uint64(8+(i%10)*4))
				}
			case kindMem:
				if h.OnData != nil {
					h.OnData(s.nextDataAddr(), s.rng.Float64() < ins.wrP)
				}
			}
		}
		// Control transfer: return to the caller, or call the next
		// function (directly or through megamorphic dispatch).
		callPC := base + uint64(len(body)*4)
		if h.OnFetch != nil {
			h.OnFetch(callPC)
		}
		executed++
		doReturn := len(stack) > 0 && (s.rng.Float64() < 0.45 || len(stack) >= 48)
		if doReturn {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if h.OnReturn != nil {
				h.OnReturn(top.retAddr)
			}
			fi = top.fi
			continue
		}
		if h.OnCall != nil {
			h.OnCall(callPC + 4)
		}
		stack = append(stack, frame{fi: fi, retAddr: callPC + 4})
		if s.rng.Float64() < s.p.IndirectFrac {
			// Dispatch site shared by many targets — VM handler dispatch.
			// Most transfers follow the site's recurring sequence (repeated
			// bytecode runs, path-predictable); the rest are data-dependent.
			// Interpreter-style burstiness: dispatch loops re-execute the
			// same site many times in a row, so the global path history an
			// indirect predictor folds is dominated by that site's targets.
			sid := fi % len(s.dispatchSeq)
			if s.lastDispatch >= 0 && s.rng.Float64() < 0.90 {
				sid = s.lastDispatch
			}
			s.lastDispatch = sid
			var next int
			if s.rng.Float64() < 0.85 {
				seq := s.dispatchSeq[sid]
				s.dispatchPos[sid] = (s.dispatchPos[sid] + 1) % len(seq)
				next = seq[s.dispatchPos[sid]]
			} else {
				next = s.pickFunc()
			}
			site := uint64(0x7f0000) + uint64(sid)*8
			if h.OnTakenBranch != nil {
				h.OnTakenBranch(site, s.funcPC[next])
			}
			if h.OnIndirect != nil {
				h.OnIndirect(site, s.funcPC[next])
			}
			fi = next
		} else {
			s.lastDispatch = -1
			// Direct call through one of the function's static call sites;
			// each site's target is fixed, so the BTB hits after warmup.
			j := s.rng.Intn(len(s.callee[fi]))
			sitePC := callPC + uint64(j*4)
			target := s.callee[fi][j]
			if h.OnTakenBranch != nil {
				h.OnTakenBranch(sitePC, s.funcPC[target])
			}
			fi = target
		}
	}
	return executed
}

// nextDataAddr models region-based data locality: accesses cluster in a
// small window (an object or hash map) that occasionally jumps to a new
// random spot in the working set.
func (s *Synth) nextDataAddr() uint64 {
	if s.lastData == 0 || s.rng.Float64() > s.p.DataLocality {
		s.lastData = uint64(s.rng.Intn(s.p.DataWorkingSet)) &^ 63
	}
	return 0x10000000 + s.lastData + uint64(s.rng.Intn(128))
}
