package uarch

// CoreModel describes one pipeline configuration for the Fig. 2c sweep:
// 2-wide in-order, and 2/4/8-wide out-of-order.
type CoreModel struct {
	Name       string
	Width      int
	OutOfOrder bool
}

// CoreModels returns the four configurations the paper compares.
func CoreModels() []CoreModel {
	return []CoreModel{
		{Name: "2-wide in-order", Width: 2, OutOfOrder: false},
		{Name: "2-wide OoO", Width: 2, OutOfOrder: true},
		{Name: "4-wide OoO", Width: 4, OutOfOrder: true},
		{Name: "8-wide OoO", Width: 8, OutOfOrder: true},
	}
}

// PipelineCosts holds the penalty constants of the analytical throughput
// model.
type PipelineCosts struct {
	BranchMispredict float64 // full pipeline flush
	BTBMissBubble    float64 // fetch redirect bubble for a taken branch
	L1Miss           float64 // L1 miss, L2 hit latency
	L2Miss           float64 // memory latency
}

// DefaultPipelineCosts returns Xeon-like penalties.
func DefaultPipelineCosts() PipelineCosts {
	return PipelineCosts{BranchMispredict: 14, BTBMissBubble: 7, L1Miss: 11, L2Miss: 95}
}

// StreamStats aggregates per-instruction event rates measured by the
// models on a synthesized stream.
type StreamStats struct {
	Instructions int64
	BranchMPKI   float64 // conditional branch mispredicts per 1K instrs
	BTBMissPKI   float64 // taken-branch target misses per 1K instrs
	L1IMPKI      float64
	L1DMPKI      float64
	L2MPKI       float64
	BTBHitRate   float64

	// Extension metrics (not part of the paper's baseline tables).
	RASMispredicts  float64 // per-pop return mispredict rate
	IndirectPerKI   float64 // megamorphic dispatches per 1K instructions
	IndirectBTBMiss float64 // BTB miss rate on dispatch sites
	ITTAGEMiss      float64 // ITTAGE miss rate on the same sites (if present)
}

// ExecCycles estimates execution cycles for the stream on the given core.
// Out-of-order cores overlap a large share of data-miss and bubble
// latency; in-order cores expose it. The ILP parameter caps the useful
// issue width, which is what makes the 4-to-8-wide step nearly flat
// (<3% in the paper).
func ExecCycles(core CoreModel, ilp float64, s StreamStats, costs PipelineCosts) float64 {
	n := float64(s.Instructions)

	// Base throughput: the narrower of machine width and program ILP.
	effWidth := float64(core.Width)
	if ilp < effWidth {
		effWidth = ilp
	}
	if !core.OutOfOrder {
		// In-order issue loses slots to dependency stalls.
		effWidth *= 0.62
	}
	cycles := n / effWidth

	// Front-end penalties are exposed on any core.
	cycles += n / 1000 * s.BranchMPKI * costs.BranchMispredict
	cycles += n / 1000 * s.BTBMissPKI * costs.BTBMissBubble
	cycles += n / 1000 * s.L1IMPKI * costs.L1Miss

	// Data-side penalties are partially hidden by out-of-order execution.
	hide := 0.25
	if core.OutOfOrder {
		hide = 0.25 + 0.12*float64(core.Width) // deeper windows hide more
		if hide > 0.75 {
			hide = 0.75
		}
	}
	cycles += n / 1000 * s.L1DMPKI * costs.L1Miss * (1 - hide)
	cycles += n / 1000 * s.L2MPKI * costs.L2Miss * (1 - hide)
	return cycles
}
