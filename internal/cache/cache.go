// Package cache is a sharded, bounded, TTL'd in-memory response cache
// with singleflight request coalescing — the serving-scale analogue of
// the paper's content-reuse observation (§4.5, Figs. 12/13): the same
// work recurs, so recognize it and skip it. It sits between
// serve.Scheduler admission and Pool worker acquisition, so a cache hit
// is answered without consuming a worker slot, and concurrent misses
// for the same key render once while the rest wait for that render
// (dogpile protection).
//
// Hits are not free in the simulated cost model: every lookup charges a
// fixed cost (a hash probe plus response handoff) to the cache's own
// sim.Meter, which frontends merge into the fleet meter at scrape time.
// That keeps the /metrics per-category cycle totals exact — a hit
// contributes exactly the lookup cost, a miss contributes the lookup
// cost plus the full render charged on the worker that performed it.
//
// Ownership contract: a successful fill TRANSFERS its returned slice to
// the cache — the filler must hand over stable bytes it will never
// write again (render paths that recycle buffers copy before handing
// over; serve.DoCached does exactly that while it still holds the
// rendering worker). In exchange, every GetOrFill return — hit, miss,
// or coalesced — is the cache-owned slice itself, which callers must
// treat as READ-ONLY. This makes the steady-state hit path
// allocation-free: no per-hit defensive copy, because the stored bytes
// can never change underneath a reader.
package cache

import (
	"container/list"
	"context"
	"sync"
	"time"

	"repro/internal/sim"
)

// LookupFn is the leaf function name the fixed per-lookup cost is
// charged to; it shows up in flat profiles and flamegraphs like any
// other runtime function.
const LookupFn = "response_cache_lookup"

// DefaultLookupUops is the fixed simulated micro-op cost of one cache
// lookup: a key hash, one bucket probe, and the response handoff. It is
// deliberately of the same magnitude as a hardware-missed hash map GET —
// a cache hit is cheap, not free.
const DefaultLookupUops = 220

// DefaultShards is the shard count used when Config.Shards is not set.
const DefaultShards = 16

// Outcome classifies how one GetOrFill call was answered.
type Outcome int

// GetOrFill outcomes.
const (
	// Hit means the response was already cached and fresh.
	Hit Outcome = iota
	// Miss means this caller rendered the response and filled the cache.
	Miss
	// Coalesced means another in-flight render for the same key produced
	// the response while this caller waited (a dogpile-absorbed miss).
	Coalesced
	// Bypass means no cache was consulted (disabled or uncacheable); the
	// cache package never returns it, but frontends use it to label the
	// uncached path in shared reporting code.
	Bypass
)

// String returns the outcome name used in logs and headers.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	case Bypass:
		return "bypass"
	}
	return "unknown"
}

// Config sizes the cache.
type Config struct {
	// Capacity is the maximum number of cached responses across all
	// shards (<= 0 selects 1024). Eviction is LRU per shard.
	Capacity int
	// Shards is the number of independently locked shards, rounded up to
	// a power of two (<= 0 selects DefaultShards).
	Shards int
	// TTL is each entry's time to live (0 means entries never expire).
	TTL time.Duration
	// LookupUops overrides the fixed simulated micro-op cost charged per
	// lookup (<= 0 selects DefaultLookupUops).
	LookupUops float64
	// Model is the cost model the lookup charge is converted with; the
	// zero value selects sim.DefaultCostModel. It should match the
	// serving runtimes' model so merged totals stay in one currency.
	Model sim.CostModel
	// Clock overrides the time source for TTL decisions (tests). Nil
	// selects time.Now.
	Clock func() time.Time
}

// Stats is a consistent snapshot of the cache's lifetime counters and
// current occupancy.
type Stats struct {
	// Hits counts lookups answered from a fresh cached entry.
	Hits int64
	// Misses counts lookups that rendered and filled (fill errors
	// included — the render was attempted).
	Misses int64
	// Coalesced counts lookups that waited on another caller's in-flight
	// render instead of rendering themselves.
	Coalesced int64
	// Evictions counts entries removed by the LRU capacity bound.
	Evictions int64
	// Expired counts entries dropped because their TTL had passed.
	Expired int64
	// Entries is the current number of cached responses.
	Entries int
	// Bytes is the current sum of cached response body sizes.
	Bytes int64
}

// Lookups returns the total GetOrFill calls the stats cover.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses + s.Coalesced }

// HitRatio returns the fraction of lookups answered from a cached entry
// (coalesced waiters excluded; 0 when there were no lookups).
func (s Stats) HitRatio() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits) / float64(l)
	}
	return 0
}

// ServedFromCache returns the fraction of lookups that did not render —
// hits plus coalesced waiters (0 when there were no lookups).
func (s Stats) ServedFromCache() float64 {
	if l := s.Lookups(); l > 0 {
		return float64(s.Hits+s.Coalesced) / float64(l)
	}
	return 0
}

// entry is one cached response, linked into its shard's LRU list.
type entry struct {
	key     string
	val     []byte
	expires time.Time // zero means never
}

// flight is one in-progress fill other callers for the same key wait
// on. val is the fill's returned slice — stable, cache-owned bytes
// under the ownership contract — published to the waiters when the
// flight completes; like every GetOrFill return it is read-only.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// shard is one independently locked slice of the key space.
type shard struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *entry
	entries map[string]*list.Element
	flights map[string]*flight
	bytes   int64

	hits, misses, coalesced, evictions, expired int64
}

// Cache is the sharded response cache. Safe for concurrent use.
type Cache struct {
	shards []*shard
	mask   uint64
	ttl    time.Duration
	now    func() time.Time

	// meter accumulates the fixed lookup charges; meterMu guards it
	// (sim.Meter itself is single-owner).
	meterMu      sync.Mutex
	meter        *sim.Meter
	lookupUops   float64
	lookupCycles float64
}

// New builds a cache from cfg (zero values select the documented
// defaults).
func New(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	if shards > cfg.Capacity {
		// More shards than capacity would round some shards to zero
		// entries; shrink to the largest power of two that still gives
		// every shard at least one slot.
		for shards > 1 && shards > cfg.Capacity {
			shards >>= 1
		}
	}
	if cfg.LookupUops <= 0 {
		cfg.LookupUops = DefaultLookupUops
	}
	if cfg.Model.IPC == 0 {
		cfg.Model = sim.DefaultCostModel()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	c := &Cache{
		shards:       make([]*shard, shards),
		mask:         uint64(shards - 1),
		ttl:          cfg.TTL,
		now:          cfg.Clock,
		meter:        sim.NewMeter(cfg.Model),
		lookupUops:   cfg.LookupUops,
		lookupCycles: cfg.Model.Cycles(cfg.LookupUops),
	}
	per := (cfg.Capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i] = &shard{
			cap:     per,
			lru:     list.New(),
			entries: make(map[string]*list.Element),
			flights: make(map[string]*flight),
		}
	}
	return c
}

// shard maps a key to its shard with FNV-1a.
func (c *Cache) shard(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h&c.mask]
}

// GetOrFill answers key from the cache, or renders it exactly once: the
// first caller for an absent key runs fill synchronously and stores a
// successful result; concurrent callers for the same key wait for that
// fill (Coalesced) instead of rendering again; later callers get the
// stored bytes (Hit). A waiting caller whose ctx expires returns the
// context's error without disturbing the fill. Fill errors are returned
// to the filling caller and every waiter, and nothing is cached.
//
// The returned slice is cache-owned on every path and must be treated
// as read-only (see the package ownership contract); a successful
// fill's return transfers to the cache, so the filler must hand over
// stable bytes it will never write again.
//
// Every call charges the fixed lookup cost to the cache's meter, so a
// hit costs exactly that — and allocates nothing — in the simulated
// totals and on the Go heap alike.
func (c *Cache) GetOrFill(ctx context.Context, key string, fill func() ([]byte, error)) ([]byte, Outcome, error) {
	c.chargeLookup()
	sh := c.shard(key)

	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*entry)
		if e.expires.IsZero() || c.now().Before(e.expires) {
			sh.lru.MoveToFront(el)
			sh.hits++
			val := e.val
			sh.mu.Unlock()
			return val, Hit, nil
		}
		sh.removeLocked(el)
		sh.expired++
	}
	if f, ok := sh.flights[key]; ok {
		sh.coalesced++
		sh.mu.Unlock()
		select {
		case <-f.done:
			return f.val, Coalesced, f.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.misses++
	sh.mu.Unlock()

	body, ferr := fill()

	// Ownership of body transfers to the cache here: the entry and the
	// waiters publish the same stable slice.
	sh.mu.Lock()
	delete(sh.flights, key)
	if ferr == nil {
		sh.insertLocked(key, body, c.entryExpiry())
	}
	sh.mu.Unlock()
	f.val = body
	f.err = ferr
	close(f.done)
	return body, Miss, ferr
}

// entryExpiry returns the expiry instant for an entry stored now (zero
// when TTL is disabled).
func (c *Cache) entryExpiry() time.Time {
	if c.ttl <= 0 {
		return time.Time{}
	}
	return c.now().Add(c.ttl)
}

// insertLocked stores (or refreshes) key with val, whose ownership the
// caller has transferred to the cache (no copy is made), evicting LRU
// entries past the shard capacity. Caller holds sh.mu.
func (sh *shard) insertLocked(key string, val []byte, expires time.Time) {
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*entry)
		sh.bytes += int64(len(val)) - int64(len(e.val))
		e.val, e.expires = val, expires
		sh.lru.MoveToFront(el)
		return
	}
	el := sh.lru.PushFront(&entry{key: key, val: val, expires: expires})
	sh.entries[key] = el
	sh.bytes += int64(len(val))
	for sh.lru.Len() > sh.cap {
		oldest := sh.lru.Back()
		sh.removeLocked(oldest)
		sh.evictions++
	}
}

// removeLocked unlinks an entry from the LRU and the index. Caller
// holds sh.mu.
func (sh *shard) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	sh.lru.Remove(el)
	delete(sh.entries, e.key)
	sh.bytes -= int64(len(e.val))
}

// chargeLookup adds the fixed per-lookup cost to the cache's meter.
func (c *Cache) chargeLookup() {
	c.meterMu.Lock()
	c.meter.AddUops(LookupFn, sim.CatHash, c.lookupUops)
	c.meterMu.Unlock()
}

// MergeMeter folds the cache's accumulated lookup charges into dst —
// how frontends make /metrics category totals cover hits exactly. dst
// must not be the cache's own meter.
func (c *Cache) MergeMeter(dst *sim.Meter) {
	c.meterMu.Lock()
	dst.Merge(c.meter)
	c.meterMu.Unlock()
}

// LookupCycles returns the fixed simulated cycle cost one lookup
// charges, for synthetic cache-hit spans.
func (c *Cache) LookupCycles() float64 { return c.lookupCycles }

// LookupCostVec returns the per-category cycle vector of one lookup
// (all of it in the hash category), the breakdown a cache-hit span
// carries.
func (c *Cache) LookupCostVec() sim.CategoryVec {
	var v sim.CategoryVec
	v[sim.CatHash] = c.lookupCycles
	return v
}

// Shards returns the number of shards actually in use (after rounding).
func (c *Cache) Shards() int { return len(c.shards) }

// Capacity returns the total entry capacity across all shards (the
// configured capacity rounded up to a multiple of the shard count).
func (c *Cache) Capacity() int {
	total := 0
	for _, sh := range c.shards {
		total += sh.cap
	}
	return total
}

// Stats sums every shard's counters and occupancy into one snapshot.
func (c *Cache) Stats() Stats {
	var s Stats
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Hits += sh.hits
		s.Misses += sh.misses
		s.Coalesced += sh.coalesced
		s.Evictions += sh.evictions
		s.Expired += sh.expired
		s.Entries += sh.lru.Len()
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}
