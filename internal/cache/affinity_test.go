package cache

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("page:%d", i)
	}
	return keys
}

func assignAll(r *Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		m, ok := r.Owner(k)
		if !ok {
			continue
		}
		out[k] = m
	}
	return out
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("page:1"); ok {
		t.Fatal("empty ring returned an owner")
	}
	if got := r.Owners("page:1", 3); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
	r.Add("b0")
	for _, k := range ringKeys(100) {
		m, ok := r.Owner(k)
		if !ok || m != "b0" {
			t.Fatalf("single-member ring: Owner(%s) = %q, %v", k, m, ok)
		}
	}
	if r.Size() != 1 {
		t.Fatalf("Size = %d, want 1", r.Size())
	}
}

// TestRingStableAssignment is the core consistency property: removing a
// member moves only that member's keys, and re-adding it restores the
// original assignment exactly.
func TestRingStableAssignment(t *testing.T) {
	r := NewRing(128)
	members := []string{"b0", "b1", "b2", "b3"}
	for _, m := range members {
		r.Add(m)
	}
	keys := ringKeys(10000)
	before := assignAll(r, keys)

	r.Remove("b2")
	after := assignAll(r, keys)
	for _, k := range keys {
		if before[k] != "b2" && after[k] != before[k] {
			t.Fatalf("key %s moved from %s to %s though its owner stayed up", k, before[k], after[k])
		}
		if before[k] == "b2" && after[k] == "b2" {
			t.Fatalf("key %s still assigned to removed member", k)
		}
	}

	r.Add("b2")
	restored := assignAll(r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("key %s = %s after re-add, want original owner %s", k, restored[k], before[k])
		}
	}
}

// TestRingAddMovesAboutOneOverN: growing from 4 to 5 members moves only
// keys that land on the new member, and that share is ~1/5.
func TestRingAddMovesAboutOneOverN(t *testing.T) {
	r := NewRing(128)
	for i := 0; i < 4; i++ {
		r.Add(fmt.Sprintf("b%d", i))
	}
	keys := ringKeys(10000)
	before := assignAll(r, keys)

	r.Add("b4")
	after := assignAll(r, keys)
	moved := 0
	for _, k := range keys {
		if after[k] != before[k] {
			moved++
			if after[k] != "b4" {
				t.Fatalf("key %s moved to %s, not the new member", k, after[k])
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.08 || frac > 0.40 {
		t.Fatalf("add moved %.1f%% of keys, want roughly 1/5 (8%%-40%% band)", 100*frac)
	}
}

// TestRingBalance: with enough virtual nodes no member owns a wildly
// disproportionate key share.
func TestRingBalance(t *testing.T) {
	r := NewRing(128)
	n := 4
	for i := 0; i < n; i++ {
		r.Add(fmt.Sprintf("b%d", i))
	}
	counts := make(map[string]int)
	for _, k := range ringKeys(10000) {
		m, _ := r.Owner(k)
		counts[m]++
	}
	for m, c := range counts {
		frac := float64(c) / 10000
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys, want near %.0f%%", m, 100*frac, 100.0/float64(n))
		}
	}
}

func TestRingOwnersFallbackOrder(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("b%d", i))
	}
	for _, k := range ringKeys(200) {
		owner, _ := r.Owner(k)
		seq := r.Owners(k, 3)
		if len(seq) != 3 {
			t.Fatalf("Owners(%s, 3) = %v, want 3 distinct members", k, seq)
		}
		if seq[0] != owner {
			t.Fatalf("Owners(%s)[0] = %s, want Owner %s", k, seq[0], owner)
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("Owners(%s) repeats member %s: %v", k, m, seq)
			}
			seen[m] = true
		}
	}
	if got := r.Owners("page:1", 10); len(got) != 3 {
		t.Fatalf("Owners capped at member count: got %v", got)
	}
}

func TestRingIdempotentMembership(t *testing.T) {
	r := NewRing(32)
	r.Add("b0")
	points := len(r.points)
	r.Add("b0")
	if len(r.points) != points {
		t.Fatal("double Add grew the point table")
	}
	r.Remove("missing")
	if len(r.points) != points {
		t.Fatal("Remove of absent member changed the point table")
	}
	if got := r.Members(); len(got) != 1 || got[0] != "b0" {
		t.Fatalf("Members = %v", got)
	}
}
