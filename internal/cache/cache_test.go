package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

func fillConst(val string, calls *int64) func() ([]byte, error) {
	return func() ([]byte, error) {
		if calls != nil {
			atomic.AddInt64(calls, 1)
		}
		return []byte(val), nil
	}
}

func TestHitMissSequence(t *testing.T) {
	c := New(Config{Capacity: 8})
	ctx := context.Background()
	var calls int64

	v, out, err := c.GetOrFill(ctx, "k", fillConst("body", &calls))
	if err != nil || out != Miss || string(v) != "body" {
		t.Fatalf("first lookup = %q, %v, %v; want body, Miss, nil", v, out, err)
	}
	v, out, err = c.GetOrFill(ctx, "k", fillConst("other", &calls))
	if err != nil || out != Hit || string(v) != "body" {
		t.Fatalf("second lookup = %q, %v, %v; want cached body, Hit, nil", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("fill ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 4 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry, 4 bytes", s)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c := New(Config{Capacity: 8, TTL: 10 * time.Second, Clock: clock})
	ctx := context.Background()

	if _, out, _ := c.GetOrFill(ctx, "k", fillConst("v1", nil)); out != Miss {
		t.Fatalf("initial fill outcome = %v, want Miss", out)
	}
	now = now.Add(9 * time.Second)
	if _, out, _ := c.GetOrFill(ctx, "k", fillConst("v2", nil)); out != Hit {
		t.Fatalf("lookup inside TTL = %v, want Hit", out)
	}
	now = now.Add(2 * time.Second)
	v, out, _ := c.GetOrFill(ctx, "k", fillConst("v2", nil))
	if out != Miss || string(v) != "v2" {
		t.Fatalf("lookup past TTL = %q, %v; want refreshed v2, Miss", v, out)
	}
	if s := c.Stats(); s.Expired != 1 {
		t.Fatalf("expired = %d, want 1", s.Expired)
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard so the capacity bound is exact and recency is global.
	c := New(Config{Capacity: 2, Shards: 1})
	ctx := context.Background()

	c.GetOrFill(ctx, "a", fillConst("A", nil))
	c.GetOrFill(ctx, "b", fillConst("B", nil))
	c.GetOrFill(ctx, "a", fillConst("A", nil)) // touch a: b is now LRU
	c.GetOrFill(ctx, "c", fillConst("C", nil)) // evicts b

	if _, out, _ := c.GetOrFill(ctx, "a", fillConst("A", nil)); out != Hit {
		t.Errorf("a should have survived eviction, got %v", out)
	}
	if _, out, _ := c.GetOrFill(ctx, "b", fillConst("B", nil)); out != Miss {
		t.Errorf("b should have been evicted, got %v", out)
	}
	s := c.Stats()
	if s.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Errorf("entries = %d, want capacity bound 2", s.Entries)
	}
}

func TestCoalescingSingleFill(t *testing.T) {
	c := New(Config{Capacity: 8})
	const waiters = 16
	var calls int64
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	var wg sync.WaitGroup
	outcomes := make([]Outcome, waiters+1)
	vals := make([][]byte, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], outcomes[0], _ = c.GetOrFill(context.Background(), "k", func() ([]byte, error) {
			atomic.AddInt64(&calls, 1)
			close(leaderIn)
			<-release
			return []byte("rendered"), nil
		})
	}()
	<-leaderIn // leader is inside fill; everyone else must coalesce
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], outcomes[i], _ = c.GetOrFill(context.Background(), "k", func() ([]byte, error) {
				atomic.AddInt64(&calls, 1)
				return []byte("duplicate"), nil
			})
		}(i)
	}
	// Give the waiters a moment to reach the flight wait, then let the
	// leader finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("fill ran %d times, want exactly 1 (coalescing)", calls)
	}
	if outcomes[0] != Miss {
		t.Errorf("leader outcome = %v, want Miss", outcomes[0])
	}
	for i := 1; i <= waiters; i++ {
		if string(vals[i]) != "rendered" {
			t.Errorf("waiter %d got %q, want leader's render", i, vals[i])
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != int64(waiters) {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced", s, waiters)
	}
}

func TestCoalescedWaiterHonorsContext(t *testing.T) {
	c := New(Config{Capacity: 8})
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go c.GetOrFill(context.Background(), "k", func() ([]byte, error) {
		close(leaderIn)
		<-release
		return []byte("v"), nil
	})
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrFill(ctx, "k", fillConst("v", nil))
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
	close(release)
}

func TestFillErrorNotCachedUnlessAsked(t *testing.T) {
	c := New(Config{Capacity: 8})
	ctx := context.Background()
	boom := errors.New("render failed")
	var calls int64

	_, out, err := c.GetOrFill(ctx, "k", func() ([]byte, error) {
		atomic.AddInt64(&calls, 1)
		return nil, boom
	})
	if out != Miss || !errors.Is(err, boom) {
		t.Fatalf("failed fill = %v, %v; want Miss, boom", out, err)
	}
	// The failure is not stored: the next lookup renders again and can
	// succeed.
	v, out, err := c.GetOrFill(ctx, "k", fillConst("ok", &calls))
	if err != nil || out != Miss || string(v) != "ok" {
		t.Fatalf("retry after failure = %q, %v, %v; want ok, Miss, nil", v, out, err)
	}
	if calls != 2 {
		t.Fatalf("fill ran %d times, want 2", calls)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d, want only the successful fill", s.Entries)
	}
}

func TestMeterChargesFixedLookupCost(t *testing.T) {
	c := New(Config{Capacity: 8})
	ctx := context.Background()
	c.GetOrFill(ctx, "k", fillConst("v", nil)) // miss
	c.GetOrFill(ctx, "k", fillConst("v", nil)) // hit
	c.GetOrFill(ctx, "k", fillConst("v", nil)) // hit

	dst := sim.NewMeter(sim.DefaultCostModel())
	c.MergeMeter(dst)
	vec := dst.CategoryCyclesVec()
	want := 3 * c.LookupCycles()
	if got := vec[sim.CatHash]; !closeEnough(got, want) {
		t.Errorf("hash-category cycles = %g, want %g (3 lookups)", got, want)
	}
	if got := vec.Total(); !closeEnough(got, want) {
		t.Errorf("total cycles = %g, want lookups only %g", got, want)
	}
	if lv := c.LookupCostVec(); !closeEnough(lv.Total(), c.LookupCycles()) || !closeEnough(lv[sim.CatHash], c.LookupCycles()) {
		t.Errorf("LookupCostVec = %v, want all cycles in CatHash", lv)
	}
}

func TestShardRounding(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{}, DefaultShards},
		{Config{Shards: 3}, 4},
		{Config{Shards: 16}, 16},
		{Config{Capacity: 4, Shards: 64}, 4}, // capped to capacity
	}
	for _, tc := range cases {
		if got := New(tc.cfg).Shards(); got != tc.want {
			t.Errorf("New(%+v).Shards() = %d, want %d", tc.cfg, got, tc.want)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{Hit: "hit", Miss: "miss", Coalesced: "coalesced", Bypass: "bypass", Outcome(99): "unknown"} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	// Race-detector workout: many goroutines over a keyspace larger than
	// capacity so hits, misses, evictions, and coalescing all interleave.
	c := New(Config{Capacity: 32, Shards: 4, TTL: time.Hour})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("page-%d", (g*7+i)%64)
				v, _, err := c.GetOrFill(ctx, key, fillConst(key, nil))
				if err != nil || string(v) != key {
					t.Errorf("GetOrFill(%s) = %q, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Lookups() != 8*400 {
		t.Fatalf("lookups = %d, want %d", s.Lookups(), 8*400)
	}
	if s.Entries > 32 {
		t.Fatalf("entries = %d, exceeds capacity 32", s.Entries)
	}
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6
}

// TestFillOwnershipTransfer pins the ownership contract: a successful
// fill's slice transfers to the cache, and every later hit returns that
// very slice (read-only) — no per-hit copy. The transfer is observable
// as pointer identity between the stored fill and the hit.
func TestFillOwnershipTransfer(t *testing.T) {
	c := New(Config{Capacity: 8})
	ctx := context.Background()

	filled := []byte("pristine")
	miss, out, err := c.GetOrFill(ctx, "k", func() ([]byte, error) { return filled, nil })
	if err != nil || out != Miss {
		t.Fatalf("first lookup = %v, %v; want Miss, nil", out, err)
	}
	if &miss[0] != &filled[0] {
		t.Fatal("miss did not return the fill's own slice")
	}
	hit, out, err := c.GetOrFill(ctx, "k", fillConst("other", nil))
	if err != nil || out != Hit {
		t.Fatalf("second lookup = %v, %v; want Hit, nil", out, err)
	}
	if string(hit) != "pristine" {
		t.Fatalf("hit = %q, want the filled bytes", hit)
	}
	if &hit[0] != &filled[0] {
		t.Fatal("hit copied the entry; the contract says hits return the cache-owned slice")
	}
}

// TestHitPathAllocationFree pins the tentpole property the ownership
// transfer buys: a steady-state hit performs zero Go heap allocations.
func TestHitPathAllocationFree(t *testing.T) {
	c := New(Config{Capacity: 8})
	ctx := context.Background()
	if _, _, err := c.GetOrFill(ctx, "k", fillConst("body", nil)); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, out, _ := c.GetOrFill(ctx, "k", fillConst("dup", nil)); out != Hit {
			t.Fatal("expected hit")
		}
	})
	if n != 0 {
		t.Fatalf("cache hit allocates %v/op, want 0", n)
	}
}

// TestCoalescedWaiterSeesLeaderRender covers the coalesced corner of
// the ownership contract: a waiter receives the leader's transferred
// (now cache-owned, read-only) bytes — under -race this also proves
// the publish through flight.val is properly ordered by the done
// channel.
func TestCoalescedWaiterSeesLeaderRender(t *testing.T) {
	c := New(Config{Capacity: 8})
	release := make(chan struct{})
	leaderIn := make(chan struct{})

	waiterVal := make(chan []byte, 1)
	go func() {
		c.GetOrFill(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-release
			return []byte("rendered"), nil
		})
	}()
	<-leaderIn
	go func() {
		v, _, _ := c.GetOrFill(context.Background(), "k", fillConst("dup", nil))
		waiterVal <- v
	}()
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)

	wv := <-waiterVal
	if string(wv) != "rendered" {
		t.Fatalf("waiter bytes = %q, want the leader's render", wv)
	}
	hit, out, err := c.GetOrFill(context.Background(), "k", fillConst("other", nil))
	if err != nil || out != Hit {
		t.Fatalf("post-coalesce lookup = %v, %v; want Hit, nil", out, err)
	}
	if string(hit) != "rendered" {
		t.Fatalf("stored entry = %q, want the leader's render", hit)
	}
}
