package cache

import (
	"sort"
	"strconv"
	"sync"
)

// DefaultRingReplicas is the virtual-node count per member used when
// NewRing is given a non-positive count. More virtual nodes smooth the key-range
// split across members (the per-member share concentrates around 1/N)
// at the cost of a larger sorted point table.
const DefaultRingReplicas = 128

// Ring is a consistent-hash ring mapping cache keys to named members —
// the affinity helper a cluster front (cmd/phprouter) uses to give each
// backend's response cache a stable slice of the key space. Stability
// is the point: adding or removing one member moves only the keys that
// member owns (about 1/N of the space), so every other backend's cache
// stays hot through membership churn — exactly the property a
// per-backend response cache needs during rolling restarts.
//
// Hashing builds on the cache's own shard hash (FNV-1a 64, see
// ringHash), so a key's ring position and its in-cache shard derive
// from the same function family. Safe for concurrent use.
type Ring struct {
	replicas int

	mu      sync.RWMutex
	members map[string]bool
	points  []ringPoint // sorted by hash, ascending
}

// ringPoint is one virtual node: a hash position owned by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<= 0 selects DefaultRingReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	return &Ring{replicas: replicas, members: make(map[string]bool)}
}

// ringHash positions a string on the ring: FNV-1a (the cache's shard
// hash family) followed by a 64-bit avalanche finalizer. The finalizer
// matters: raw FNV over near-identical short strings ("b0#1", "b0#2",
// ...) leaves enough low-bit structure to skew the per-member key share
// badly at realistic virtual-node counts.
func ringHash(s string) uint64 {
	h := fnv64(s)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fnv64 is FNV-1a over s — the same hash family Cache uses for shard
// selection.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Add inserts a member's virtual nodes. Adding a present member is a
// no-op, so health-driven re-admission is idempotent.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{ringHash(member + "#" + strconv.Itoa(i)), member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member's virtual nodes; its key range redistributes
// to the ring-order successors while every other assignment stays put.
// Removing an absent member is a no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current members in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size returns the current member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key — the first virtual node at or
// clockwise after the key's hash — and false when the ring is empty.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(key)].member, true
}

// Owners returns up to n distinct members in ring order starting from
// key's owner — the fallback sequence a router walks when the owner is
// down or mid-restart, so rerouted keys land deterministically instead
// of scattering.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise after
// key's hash. Caller holds at least the read lock and has checked the
// ring is non-empty.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the ring's start
	}
	return i
}
