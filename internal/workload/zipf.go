package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// ZipfKeys draws page indices from a Zipf popularity distribution over a
// finite page set: page rank k (0-based) has weight 1/(k+1)^s. It is the
// request-identity generator for cache experiments — a seeded instance
// produces the same page sequence every run, so hit ratios reproduce
// exactly. Unlike math/rand's Zipf it supports the classic web-traffic
// exponent s = 1.0 (and any s > 0), by inverse-CDF sampling over the
// finite normalized weight table. Safe for concurrent use.
type ZipfKeys struct {
	mu  sync.Mutex
	rng *rand.Rand
	cdf []float64 // cumulative popularity, cdf[len-1] == 1
}

// NewZipfKeys builds a sampler over pages pages with exponent s. It
// errors on a non-positive page count or exponent rather than producing
// a degenerate distribution.
func NewZipfKeys(seed int64, s float64, pages int) (*ZipfKeys, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("workload: zipf needs at least 1 page, got %d", pages)
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("workload: zipf exponent must be positive and finite, got %g", s)
	}
	cdf := make([]float64, pages)
	var sum float64
	for k := 0; k < pages; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[pages-1] = 1 // guard against rounding leaving the tail unreachable
	return &ZipfKeys{rng: rand.New(rand.NewSource(seed)), cdf: cdf}, nil
}

// Next draws the next page index in [0, pages): rank 0 is the most
// popular page.
func (z *ZipfKeys) Next() int {
	z.mu.Lock()
	u := z.rng.Float64()
	z.mu.Unlock()
	return z.pick(u)
}

// pick maps one uniform draw u to a page rank: the smallest rank whose
// cumulative popularity is >= u. Split from Next so CDF boundary values
// (a draw landing exactly on a step, or arbitrarily close to 1) are
// testable without steering the RNG. Any u in [0, 1] maps into range —
// the pinned tail (cdf[pages-1] == 1) guarantees it.
func (z *ZipfKeys) pick(u float64) int {
	return sort.SearchFloat64s(z.cdf, u)
}

// Pages returns the size of the page set.
func (z *ZipfKeys) Pages() int { return len(z.cdf) }

// TopShare returns the fraction of draws expected to land on the n most
// popular pages — the analytic hit-rate ceiling for a cache holding n
// entries under this distribution.
func (z *ZipfKeys) TopShare(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n >= len(z.cdf) {
		return 1
	}
	return z.cdf[n-1]
}
