package workload

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/vm"
)

// pageApps is every built-in workload name; all must have page identity.
var pageApps = []string{
	"wordpress", "drupal", "mediawiki", "laravel", "symfony",
	"specweb-banking", "specweb-ecommerce", "phpscript-blog",
}

func TestEveryAppImplementsPageApp(t *testing.T) {
	for _, name := range pageApps {
		app, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if _, ok := app.(PageApp); !ok {
			t.Errorf("%s does not implement PageApp", name)
		}
	}
}

// TestServePageMatchesServeRequest is the page-identity contract: the
// n-th ServeRequest and ServePage(n) on an identically seeded app must
// produce the same bytes, so a cache keyed on page index returns exactly
// what a fresh render would.
func TestServePageMatchesServeRequest(t *testing.T) {
	for _, name := range pageApps {
		seqApp, err := ByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		pageApp, err := ByName(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		seqRT := vm.New(vm.Config{})
		pageRT := vm.New(vm.Config{})
		pa := pageApp.(PageApp)
		for n := 1; n <= 4; n++ {
			seq := seqApp.ServeRequest(seqRT)
			byPage := pa.ServePage(pageRT, n)
			if !bytes.Equal(seq, byPage) {
				t.Errorf("%s request %d: ServeRequest and ServePage differ (%d vs %d bytes)",
					name, n, len(seq), len(byPage))
				break
			}
		}
	}
}

// TestServePageDeterministicAcrossWorkers checks the shared-seed pool
// premise: two independently constructed app instances with the same
// seed render identical bytes for the same page, with accelerators on
// and off.
func TestServePageDeterministicAcrossWorkers(t *testing.T) {
	configs := map[string]vm.Config{
		"baseline":    {},
		"accelerated": {Mitigations: sim.AllMitigations(), Features: isa.AllAccelerators()},
	}
	for cfgName, cfg := range configs {
		a1, _ := ByName("wordpress", 7)
		a2, _ := ByName("wordpress", 7)
		rt1, rt2 := vm.New(cfg), vm.New(cfg)
		for _, page := range []int{1, 3, 120, 7} {
			b1 := a1.(PageApp).ServePage(rt1, page)
			b2 := a2.(PageApp).ServePage(rt2, page)
			if !bytes.Equal(b1, b2) {
				t.Errorf("%s page %d: same-seed workers render different bytes", cfgName, page)
			}
		}
	}
}

func TestSharedSeedPool(t *testing.T) {
	p, err := NewPoolSharedSeed(2, vm.Config{}, "wordpress", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !p.SupportsPages() {
		t.Fatal("wordpress pool must support pages")
	}
	w1 := p.Acquire()
	b1, _, err := w1.ServePageSpanCtx(context.Background(), 9, false)
	p.Release(w1)
	if err != nil {
		t.Fatal(err)
	}
	w2 := p.Acquire()
	var b2 []byte
	for w2 == w1 { // make sure a different worker renders the same page
		p.Release(w2)
		w2 = p.Acquire()
	}
	b2, _, err = w2.ServePageSpanCtx(context.Background(), 9, false)
	p.Release(w2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("shared-seed workers rendered different bytes for the same page")
	}
}

// TestProfiledWallMatchesTreeDur is the clock-alignment regression test:
// the tree root's Dur must equal the span's Wall (it used to exceed it
// because the tree clock started before the wall clock).
func TestProfiledWallMatchesTreeDur(t *testing.T) {
	p, err := NewPool(1, vm.Config{}, "wordpress", 1)
	if err != nil {
		t.Fatal(err)
	}
	w := p.Acquire()
	defer p.Release(w)
	for i := 0; i < 5; i++ {
		_, sp := w.ServeOneProfiled()
		if !sp.Sampled || sp.Tree == nil {
			t.Fatal("profiled serve must carry a tree")
		}
		if sp.Tree.Root.Dur != sp.Wall {
			t.Fatalf("request %d: tree root Dur %v != span Wall %v", i, sp.Tree.Root.Dur, sp.Wall)
		}
		// Children still nest within the root interval.
		for _, c := range sp.Tree.Root.Children {
			if c.Start+c.Dur > sp.Wall+sp.Wall/10 {
				t.Errorf("child %s [%v +%v] extends past wall %v", c.Name, c.Start, c.Dur, sp.Wall)
			}
		}
	}
}

func TestZipfKeysDeterministicAndSkewed(t *testing.T) {
	z1, err := NewZipfKeys(3, 1.0, 256) // s = 1.0: unsupported by math/rand's Zipf
	if err != nil {
		t.Fatal(err)
	}
	z2, _ := NewZipfKeys(3, 1.0, 256)
	const draws = 20000
	counts := make([]int, 256)
	for i := 0; i < draws; i++ {
		a, b := z1.Next(), z2.Next()
		if a != b {
			t.Fatalf("draw %d: same-seed samplers disagree (%d vs %d)", i, a, b)
		}
		if a < 0 || a >= 256 {
			t.Fatalf("draw out of range: %d", a)
		}
		counts[a]++
	}
	if counts[0] <= counts[1] || counts[1] <= counts[4] {
		t.Errorf("popularity not monotone: top counts %v", counts[:6])
	}
	// Under Zipf(1.0, 256) the head of the distribution carries most
	// draws; the top-32 analytic share is ~66%, so the empirical share
	// over 20k draws lands near it.
	var top32 int
	for _, c := range counts[:32] {
		top32 += c
	}
	got := float64(top32) / draws
	want := z1.TopShare(32)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("top-32 share = %.3f, analytic %.3f", got, want)
	}
	if want < 0.6 {
		t.Errorf("Zipf(1.0) top-32 analytic share = %.3f, expected skew >= 0.6", want)
	}
}

func TestZipfKeysRejectsBadParams(t *testing.T) {
	if _, err := NewZipfKeys(1, 1.0, 0); err == nil {
		t.Error("zero pages must error")
	}
	if _, err := NewZipfKeys(1, 0, 10); err == nil {
		t.Error("zero exponent must error")
	}
	if _, err := NewZipfKeys(1, -2, 10); err == nil {
		t.Error("negative exponent must error")
	}
}

// TestZipfKeysPickBoundaries pins the inverse-CDF lookup at its exact
// boundary values: a draw landing precisely on a CDF step belongs to
// that step's rank (SearchFloat64s finds the first cdf >= u), u = 0
// maps to the most popular page, and draws at or arbitrarily close to 1
// stay in range because the tail is pinned to exactly 1.
func TestZipfKeysPickBoundaries(t *testing.T) {
	z, err := NewZipfKeys(1, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := z.pick(0); got != 0 {
		t.Errorf("pick(0) = %d, want rank 0", got)
	}
	for k := 0; k < 4; k++ {
		// Exactly on the step: the step's own rank.
		if got := z.pick(z.cdf[k]); got != k {
			t.Errorf("pick(cdf[%d]=%v) = %d, want %d", k, z.cdf[k], got, k)
		}
		// Just above the step: the next rank (except past the pinned tail).
		if k < 3 {
			u := math.Nextafter(z.cdf[k], 2)
			if got := z.pick(u); got != k+1 {
				t.Errorf("pick(just above cdf[%d]) = %d, want %d", k, got, k+1)
			}
		}
	}
	if z.cdf[3] != 1 {
		t.Fatalf("tail not pinned: cdf[3] = %v", z.cdf[3])
	}
	if got := z.pick(math.Nextafter(1, 0)); got != 3 {
		t.Errorf("pick(1-ulp) = %d, want last rank 3", got)
	}
	if got := z.pick(1); got != 3 {
		t.Errorf("pick(1) = %d, want last rank 3", got)
	}

	// Degenerate one-page set: every draw is page 0.
	one, err := NewZipfKeys(1, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0, 0.5, math.Nextafter(1, 0), 1} {
		if got := one.pick(u); got != 0 {
			t.Errorf("one-page pick(%v) = %d, want 0", u, got)
		}
	}
	if got := one.Next(); got != 0 {
		t.Errorf("one-page Next() = %d, want 0", got)
	}
}
