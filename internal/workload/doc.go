// Package workload holds the synthetic applications and the serving
// harness that drive the simulated runtime the way oss-performance
// drives HHVM in the paper's evaluation (§5.1).
//
// It has three layers:
//
//   - Applications. App implementations (wordpress, drupal, mediawiki,
//     the SPECWeb-like hotspots, and the framework workloads) are
//     deterministic request generators calibrated to the paper's
//     measured activity mix — hash/heap/string/regex traffic per page,
//     key-size and SET-ratio distributions, the Fig. 11 texturize chain.
//     ByName constructs one.
//
//   - Load generation. LoadGenerator runs warmup (costs discarded,
//     accelerator state kept warm) then a measured phase, producing a
//     Result: simulated cycles/µops/energy, per-category cycle
//     breakdown, hash-key statistics, wall latency quantiles
//     (LatencyStatsFrom), and throughput.
//
//   - Serving. Pool owns N Workers, each with a private vm.Runtime, and
//     hands them out one goroutine at a time (Acquire/Release); Pool.Run
//     statically partitions a measured run across workers so simulated
//     metrics stay deterministic under concurrency. Fleet totals are
//     produced by merging per-worker meters and traces (Pool.Snapshot,
//     sim.Meter.Merge, trace.Recorder.Merge). Attaching an
//     obs.Collector (SetCollector) makes served requests flow through
//     the observability layer: sampled requests carry per-request
//     category-attribution spans (Worker.ServeOneProfiled).
package workload
