package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/hashmap"
	"repro/internal/vm"
)

// The paper's conclusion argues that the behavioral characteristics found
// in WordPress, Drupal, and MediaWiki "exist across a wide-range of other
// PHP applications such as Laravel, Symfony, Yii, Phalcon etc. and hence
// will all gain execution efficiency when using our proposed
// accelerators". These two framework-flavored workloads exercise that
// claim: different activity mixes (Laravel: Blade-style templating with
// heavy escaping; Symfony: routing/container-heavy hash traffic) built
// from the same request skeleton.

// NewLaravel builds a Laravel-like workload: Blade template rendering
// with pervasive `{{ }}` auto-escaping (string heavy) and middleware
// symbol-table traffic.
func NewLaravel(seed int64) App {
	return &appBase{
		p: params{
			name:         "laravel",
			prefix:       "blade_",
			items:        5,
			attrsPerItem: 5,
			textLen:      700,
			comments:     3,
			optionReads:  45,
			symtabOps:    14,
			urlScans:     8,
			metaReads:    30,
			churn:        55,
			stringOps:    22,
			excerptLen:   160,
			chain:        fig11Chain()[:3],
			otherFns:     160,
			otherUops:    165000,
			jitUops:      44000,
		},
		corpus: NewCorpus(seed+100, 56, 700),
		cat:    newCatalog("blade_", 160),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// NewSymfony builds a Symfony-like workload: router and service-container
// lookups dominate (hash heavy), with Twig-style escaping on smaller
// bodies.
func NewSymfony(seed int64) App {
	return &symfonyApp{appBase{
		p: params{
			name:         "symfony",
			prefix:       "sf_",
			items:        4,
			attrsPerItem: 3,
			textLen:      420,
			comments:     2,
			optionReads:  70,
			symtabOps:    18,
			urlScans:     10,
			metaReads:    55,
			churn:        48,
			stringOps:    8,
			excerptLen:   120,
			chain:        fig11Chain()[:2],
			otherFns:     180,
			otherUops:    190000,
			jitUops:      50000,
		},
		corpus: NewCorpus(seed+200, 56, 420),
		cat:    newCatalog("sf_", 180),
		rng:    rand.New(rand.NewSource(seed)),
	}}
}

// symfonyApp adds container/service resolution hash traffic.
type symfonyApp struct {
	appBase
}

func (s *symfonyApp) ServeRequest(rt *vm.Runtime) []byte {
	s.reqSeq++
	return s.renderSymfonyPage(rt, s.reqSeq)
}

// ServePage renders the Symfony page with the given index (see PageApp).
func (s *symfonyApp) ServePage(rt *vm.Runtime, page int) []byte {
	return s.renderSymfonyPage(rt, page)
}

func (s *symfonyApp) renderSymfonyPage(rt *vm.Runtime, page int) []byte {
	out := s.renderPage(rt, page)
	// Service container: dynamic-key service id lookups against the
	// persistent cache (the container is built once per worker).
	for i := 0; i < 25; i++ {
		k := hashmap.StrKey(fmt.Sprintf("meta_%s_%d", pick(templateVars, page+i), (page+i)%48))
		rt.AGet("sf_container_get", s.dbCache, k, true)
	}
	return out
}
